#!/bin/sh
# Regenerates results/BENCH_tuner.json, the committed baseline for the
# tuner experiment (E19): the controller's observation->actuation loop
# run end to end against two deliberately mistuned pools.
#
# Phase A replays E14's scan-mix trace through an over-sharded SEQ pool
# and lets the controller reshard down; the committed figure is the
# fraction of the sharding-induced hit-ratio loss it recovers. Phase B
# replays a loop trace through a misconfigured 2Q pool and lets the
# ghost scorer hot-swap the policy.
#
# The run is fully deterministic: single-goroutine replay, direct
# commits, null device, and a controller stepped at fixed access counts
# rather than on a wall-clock ticker. Re-running on any machine
# reproduces the committed file byte-for-byte; a diff after a change to
# internal/control, internal/buffer or internal/replacer is a real
# behavioural difference, not noise.
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp tuner -format json -seed 1 \
    > results/BENCH_tuner.json
echo "wrote results/BENCH_tuner.json"
