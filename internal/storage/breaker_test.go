package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/page"
)

// manualClock is an injectable clock for breaker tests: time moves only
// when the test says so, plus an optional per-call auto-step for
// simulating slow operations.
type manualClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration // advance per Now() call
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	clk := newManualClock()
	bd := NewBreakerDevice(fd, BreakerConfig{
		Window: 8, MinSamples: 4, ErrorThreshold: 0.5, Now: clk.Now,
	})
	var p page.Page
	sawOpen := false
	for i := 0; i < 20; i++ {
		err := bd.ReadPage(pid(uint64(i+1)), &p)
		if err == nil {
			t.Fatalf("op %d unexpectedly succeeded", i)
		}
		if errors.Is(err, ErrBreakerOpen) {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened under 100% error rate")
	}
	if got := bd.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Once open, the backing device must see no more traffic.
	before, _, _ := fd.Injected()
	for i := 0; i < 10; i++ {
		if err := bd.ReadPage(pid(100), &p); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
		}
	}
	after, _, _ := fd.Injected()
	if after != before {
		t.Fatalf("open breaker let %d operations through", after-before)
	}
	st := bd.BreakerStats()
	if st.Trips != 1 || st.Rejections == 0 {
		t.Fatalf("stats = %+v, want 1 trip and >0 rejections", st)
	}
	if got := bd.Stats().BreakerRejections; got != st.Rejections {
		t.Fatalf("DeviceStats.BreakerRejections = %d, want %d", got, st.Rejections)
	}
}

func TestBreakerTripsOnLatencySLO(t *testing.T) {
	clk := newManualClock()
	clk.step = 10 * time.Millisecond // every Now() call moves 10ms: all ops look slow
	bd := NewBreakerDevice(NewMemDevice(), BreakerConfig{
		Window: 8, MinSamples: 4,
		LatencySLO: time.Millisecond, SLOThreshold: 0.5,
		Now: clk.Now,
	})
	var p page.Page
	for i := 0; i < 20 && bd.State() != BreakerOpen; i++ {
		_ = bd.ReadPage(pid(uint64(i+1)), &p)
	}
	if got := bd.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after sustained SLO violations", got)
	}
	if st := bd.BreakerStats(); st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	clk := newManualClock()
	var transitions []string
	var tmu sync.Mutex
	bd := NewBreakerDevice(fd, BreakerConfig{
		Window: 8, MinSamples: 4, ErrorThreshold: 0.5,
		OpenTimeout: 100 * time.Millisecond, HalfOpenProbes: 3, ProbeProb: 1,
		Now: clk.Now,
		OnStateChange: func(from, to BreakerState) {
			tmu.Lock()
			transitions = append(transitions, from.String()+">"+to.String())
			tmu.Unlock()
		},
	})
	var p page.Page
	for i := 0; i < 10; i++ {
		_ = bd.ReadPage(pid(uint64(i+1)), &p)
	}
	if bd.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// Device heals, but the breaker stays open until the timeout elapses.
	fd.SetReadFailRate(0)
	if err := bd.ReadPage(pid(1), &p); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("pre-timeout op returned %v, want ErrBreakerOpen", err)
	}
	clk.Advance(150 * time.Millisecond)
	// ProbeProb 1: the next three ops are probes; all succeed → closed.
	for i := 0; i < 3; i++ {
		if err := bd.ReadPage(pid(uint64(i+1)), &p); err != nil {
			t.Fatalf("probe %d failed: %v", i, err)
		}
	}
	if got := bd.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after %d probe successes", got, 3)
	}
	st := bd.BreakerStats()
	if st.Probes != 3 || st.ProbeFails != 0 {
		t.Fatalf("probes = %d fails = %d, want 3/0", st.Probes, st.ProbeFails)
	}
	if st.WindowLen != 0 {
		t.Fatalf("window not reset on close: len %d", st.WindowLen)
	}
	tmu.Lock()
	defer tmu.Unlock()
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	clk := newManualClock()
	bd := NewBreakerDevice(fd, BreakerConfig{
		Window: 8, MinSamples: 4, ErrorThreshold: 0.5,
		OpenTimeout: 100 * time.Millisecond, ProbeProb: 1,
		Now: clk.Now,
	})
	var p page.Page
	for i := 0; i < 10; i++ {
		_ = bd.ReadPage(pid(uint64(i+1)), &p)
	}
	if bd.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	clk.Advance(150 * time.Millisecond)
	// Device still sick: the probe fails and the circuit reopens.
	if err := bd.ReadPage(pid(1), &p); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe returned %v, want an injected fault", err)
	}
	if got := bd.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want reopened", got)
	}
	st := bd.BreakerStats()
	if st.Trips != 2 || st.ProbeFails != 1 {
		t.Fatalf("trips = %d probeFails = %d, want 2/1", st.Trips, st.ProbeFails)
	}
}

// TestBreakerProbeSelectionSeeded: with ProbeProb < 1, which half-open
// operations are admitted as probes is drawn from the seeded generator,
// so two breakers with the same seed make identical decisions.
func TestBreakerProbeSelectionSeeded(t *testing.T) {
	run := func() []bool {
		fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
		clk := newManualClock()
		bd := NewBreakerDevice(fd, BreakerConfig{
			Window: 8, MinSamples: 4, ErrorThreshold: 0.5,
			OpenTimeout: 10 * time.Millisecond, ProbeProb: 0.5, Seed: 42,
			Now: clk.Now,
		})
		var p page.Page
		for i := 0; i < 10; i++ {
			_ = bd.ReadPage(pid(uint64(i+1)), &p)
		}
		var pattern []bool
		for i := 0; i < 40; i++ {
			clk.Advance(20 * time.Millisecond) // re-arm half-open each op
			err := bd.ReadPage(pid(uint64(i+1)), &p)
			pattern = append(pattern, errors.Is(err, ErrBreakerOpen))
		}
		return pattern
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe selection diverged at op %d despite identical seeds", i)
		}
	}
}

// TestBreakerIgnoresInvalidPage: caller bugs are not device sickness.
func TestBreakerIgnoresInvalidPage(t *testing.T) {
	bd := NewBreakerDevice(NewMemDevice(), BreakerConfig{Window: 8, MinSamples: 2})
	var p page.Page
	for i := 0; i < 20; i++ {
		if err := bd.ReadPage(page.InvalidPageID, &p); !errors.Is(err, ErrInvalidPage) {
			t.Fatalf("got %v, want ErrInvalidPage", err)
		}
	}
	if got := bd.State(); got != BreakerClosed {
		t.Fatalf("state = %v: invalid-argument errors must not trip the breaker", got)
	}
	if st := bd.BreakerStats(); st.WindowLen != 0 {
		t.Fatalf("window len = %d, want 0", st.WindowLen)
	}
}

func TestBreakerOpenErrorNotRetryable(t *testing.T) {
	if Retryable(ErrBreakerOpen) {
		t.Fatal("ErrBreakerOpen must not be retryable")
	}
	if Retryable(ErrDeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded must not be retryable")
	}
	if Retryable(ErrCanceled) {
		t.Fatal("ErrCanceled must not be retryable")
	}
}

// TestFindStackWalkers: the Find* helpers locate layers from the
// outermost wrapper of an assembled stack.
func TestFindStackWalkers(t *testing.T) {
	mem := NewMemDevice()
	fd := NewFaultDevice(mem, FaultConfig{})
	cd := NewChecksumDevice(fd)
	rd := NewRetryDevice(cd, RetryConfig{Sleep: func(time.Duration) {}})
	dd := NewDeadlineDevice(rd, DeadlineConfig{})
	bd := NewBreakerDevice(dd, BreakerConfig{})

	if got, ok := FindBreaker(bd); !ok || got != bd {
		t.Fatal("FindBreaker failed on full stack")
	}
	if got, ok := FindDeadline(bd); !ok || got != dd {
		t.Fatal("FindDeadline failed on full stack")
	}
	if got, ok := FindFault(bd); !ok || got != fd {
		t.Fatal("FindFault failed on full stack")
	}
	if _, ok := FindBreaker(mem); ok {
		t.Fatal("FindBreaker found a breaker on a bare MemDevice")
	}
	if _, ok := FindDeadline(rd); ok {
		t.Fatal("FindDeadline found a deadline below the retry layer")
	}
}
