#!/bin/sh
# Regenerates results/BENCH_shard.json, the committed baseline for the
# shard experiment (E14): the hit-ratio cost of fragmenting replacement
# history across per-shard policy instances.
#
# The run is fully deterministic: the hit sweep replays one recorded
# trace sequentially through a real pool with direct commits and a null
# device, so there is no timing, no scheduling, and no throughput in the
# output. Re-running on any machine reproduces the committed file
# byte-for-byte; a diff after a change to internal/buffer or
# internal/replacer is a real behavioural difference, not noise.
# (The throughput half of E14 needs -mode real and is inherently
# machine-dependent, so it is never committed.)
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp shard -format json -seed 1 \
    > results/BENCH_shard.json
echo "wrote results/BENCH_shard.json"
