// Command bpserver serves a BP-Wrapper buffer pool over TCP: a
// standalone page-cache service speaking the length-prefixed binary
// protocol of internal/server (GET/PUT/INVALIDATE/FLUSH/STATS,
// pipelined). Remote clients map onto pool sessions one-to-one, so the
// paper's batching protocol sees the same access pattern it would see
// in-process.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, the
// pool drops to its read-only floor, in-flight clients finish their
// tails against resident pages, and the pool flushes every dirty page
// before exit. A second signal forces an immediate close.
//
// Examples:
//
//	bpserver -addr :7071 -frames 4096 -policy lirs
//	bpserver -addr :7071 -obs :6060        # /metrics for bpstat
//	bpserver -addr :7071 -controller       # self-tuning obs→control loop
//	bpserver -addr :7071 -reshard 4,2      # online reshard under live traffic
//	bpserver -addr :7071 -obs :6060 -trace # request tracing at /debug/traces
//	bpload -remote 127.0.0.1:7071 -workload tpcc -workers 16
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bpwrapper"
	"bpwrapper/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7071", "TCP listen address")
		policyName  = flag.String("policy", "2q", "replacement algorithm")
		frames      = flag.Int("frames", 4096, "buffer frames")
		shards      = flag.Int("shards", 1, "pool shards")
		batching    = flag.Bool("batching", true, "BP-Wrapper batching")
		prefetching = flag.Bool("prefetching", true, "BP-Wrapper prefetching")
		adaptive    = flag.Bool("adaptive", false, "adaptive batch threshold")
		diskLat     = flag.Duration("disk", 0, "simulated disk read latency (0 = instant memory device)")
		bgwriter    = flag.Bool("bgwriter", true, "run the background writer")
		maxConns    = flag.Int("max-conns", 1024, "concurrent connection limit")
		writeTO     = flag.Duration("write-timeout", 10*time.Second, "per-connection write backpressure timeout")
		drainGrace  = flag.Duration("drain-grace", 50*time.Millisecond, "graceful-drain serving window")
		drainBudget = flag.Duration("drain-budget", 30*time.Second, "total graceful-drain budget (incl. dirty flush)")
		obsAddr     = flag.String("obs", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :6060)")
		recorder    = flag.Int("recorder", 4096, "per-shard flight-recorder ring size (0 disables)")
		controller  = flag.Bool("controller", false, "run the self-tuning controller (policy hot-swap, resharding, threshold and bgwriter steering)")
		reshard     = flag.String("reshard", "", "comma-separated shard-count schedule applied online under live traffic (e.g. 4,2)")
		reshardIvl  = flag.Duration("reshard-interval", 2*time.Second, "delay before each -reshard step")
		traceOn     = flag.Bool("trace", false, "arm request tracing (head-sampled spans + tail-kept slow requests, served at /debug/traces)")
		traceSample = flag.Int("trace-sample", 0, "with -trace: head-sample every Nth request (0 = default 1024)")
		traceSLO    = flag.Duration("trace-slo", 0, "with -trace: keep any request slower than this in the tail ring (0 = default 1ms)")
	)
	flag.Parse()

	schedule, err := parseShardSchedule(*reshard)
	if err != nil {
		fatal(err)
	}

	factory, ok := bpwrapper.PolicyFactories()[*policyName]
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	var device bpwrapper.Device = bpwrapper.NewMemDevice()
	if *diskLat > 0 {
		device = bpwrapper.NewSimDisk(bpwrapper.NewMemDevice(), bpwrapper.SimDiskConfig{ReadLatency: *diskLat})
	}
	pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
		Frames:        *frames,
		Shards:        *shards,
		PolicyFactory: factory,
		Wrapper: bpwrapper.WrapperConfig{
			Batching:          *batching,
			Prefetching:       *prefetching,
			AdaptiveThreshold: *adaptive,
		},
		Device:       device,
		RecorderSize: *recorder,
		Trace: bpwrapper.TraceConfig{
			Enable:      *traceOn,
			SampleEvery: *traceSample,
			SLO:         *traceSLO,
		},
	})
	var bw *bpwrapper.BackgroundWriter
	if *bgwriter {
		bw = pool.StartBackgroundWriter(bpwrapper.BackgroundWriterConfig{})
	}

	var ctl *bpwrapper.Controller
	if *controller {
		ctl = bpwrapper.NewController(bpwrapper.ControllerConfig{Pool: pool, Writer: bw})
		ctl.Start()
		fmt.Println("bpserver: self-tuning controller running")
	}

	srv, err := server.New(server.Config{
		Pool:         pool,
		Addr:         *addr,
		MaxConns:     *maxConns,
		WriteTimeout: *writeTO,
		DrainGrace:   *drainGrace,
	})
	if err != nil {
		fatal(err)
	}

	if *obsAddr != "" {
		reg := bpwrapper.NewObsRegistry()
		pool.RegisterObs(reg)
		if bw != nil {
			bw.RegisterObs(reg)
		}
		if ctl != nil {
			ctl.RegisterObs(reg)
		}
		srv.RegisterObs(reg)
		osrv, err := bpwrapper.NewObsServer(*obsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer osrv.Close()
		fmt.Printf("bpserver: obs on http://%s/metrics\n", osrv.Addr())
	}

	fmt.Printf("bpserver: serving %d frames (%s, %d shard(s), batching=%v) on %s\n",
		*frames, *policyName, *shards, *batching, srv.Addr())

	// Walk the -reshard schedule under whatever traffic is live: each step
	// is a full online migration (seal, publish, migrate, finalize) with
	// clients still being served. A refused step (degraded shard) is
	// reported and skipped, not fatal.
	if len(schedule) > 0 {
		go func() {
			for _, n := range schedule {
				time.Sleep(*reshardIvl)
				if err := pool.Reshard(n); err != nil {
					fmt.Fprintf(os.Stderr, "bpserver: reshard to %d: %v\n", n, err)
					continue
				}
				fmt.Printf("bpserver: resharded to %d shard(s)\n", n)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("bpserver: draining (grace %v, budget %v)\n", *drainGrace, *drainBudget)
	if ctl != nil {
		ctl.Stop()
	}
	if bw != nil {
		bw.Stop()
	}
	done := make(chan error, 1)
	go func() { done <- srv.Drain(*drainBudget) }()
	select {
	case err := <-done:
		if err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Println("bpserver: drained clean, all dirty pages flushed")
	case <-sig:
		fmt.Fprintln(os.Stderr, "bpserver: second signal, forcing close")
		srv.Close()
		os.Exit(1)
	}
}

// parseShardSchedule turns "4,2" into []int{4, 2}. Empty input is an
// empty schedule, not an error.
func parseShardSchedule(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -reshard step %q: want a positive shard count", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpserver:", err)
	os.Exit(1)
}
