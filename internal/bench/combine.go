package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"bpwrapper/internal/sim"
	"bpwrapper/internal/txn"
	"bpwrapper/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment E12 — commit-path comparison: baseline (one lock acquisition
// per access) vs batched (the paper's TryLock-or-block protocol) vs
// flat-combined (combine.go) across processor counts.
//
// The sweep deliberately runs a small queue (8) and threshold (4): a commit
// every four accesses keeps the policy lock busy enough for the commit
// protocol to matter. At the paper's 64/32 tuning both batched protocols
// sit at the contention-free ceiling and the comparison is a wash — that
// regime is covered by Figures 6/7.

// CombineQueueSize and CombineThreshold are the queue tuning of the
// combine experiment.
const (
	CombineQueueSize = 8
	CombineThreshold = 4
)

// CombineRow is one (workload, system, procs) point of the commit-path
// comparison.
type CombineRow struct {
	Workload       string  `json:"workload"`
	System         string  `json:"system"` // pg2Q, pgBat, pgBatFC
	Procs          int     `json:"procs"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	ContentionPerM float64 `json:"contention_per_m"`

	// Flat-combining activity (pgBatFC rows only).
	HandoffSaved    int64 `json:"handoff_saved,omitempty"`
	CombinedBatches int64 `json:"combined_batches,omitempty"`
	CombinedEntries int64 `json:"combined_entries,omitempty"`
}

// CombineExperiment measures the three commit paths for every workload and
// processor count, fully cached and pre-warmed (pure lock-scalability
// differences, as in the paper's scalability methodology).
func CombineExperiment(procsList []int, o Options) ([]CombineRow, error) {
	o = o.withDefaults()
	if len(procsList) == 0 {
		procsList = []int{1, 2, 4, 8, 16}
	}
	systems := []System{System2Q, SystemBat, SystemFC}
	var rows []CombineRow
	for _, wl := range o.Workloads {
		for _, procs := range procsList {
			for _, sys := range systems {
				row, err := combinePoint(sys, wl, procs, o)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p=%d: %w", wl.Name(), sys.Name, procs, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// combinePoint measures one combination. It bypasses runPoint because the
// combining activity counters are not part of the generic Point.
func combinePoint(sys System, wl workload.Workload, procs int, o Options) (CombineRow, error) {
	row := CombineRow{Workload: wl.Name(), System: sys.Name, Procs: procs}
	if o.Mode == ModeReal {
		pool, err := buildPoolObs(sys, wl.DataPages(), sys.WrapperConfig(CombineQueueSize, CombineThreshold), o)
		if err != nil {
			return CombineRow{}, err
		}
		if err := pool.Prewarm(wl.Pages()); err != nil {
			return CombineRow{}, err
		}
		cfg := txn.Config{
			Pool:          pool,
			Workload:      wl,
			Workers:       o.WorkersPerProc * procs,
			Procs:         procs,
			Seed:          o.Seed,
			TouchBytes:    true,
			Duration:      o.Duration,
			TxnsPerWorker: o.TxnsPerWorker,
		}
		if o.TxnsPerWorker > 0 {
			cfg.Duration = 0
		}
		res, err := txn.Run(cfg)
		if err != nil {
			return CombineRow{}, err
		}
		row.ThroughputTPS = res.ThroughputTPS
		row.ContentionPerM = res.ContentionPerM
		row.HandoffSaved = res.Wrapper.HandoffSaved
		row.CombinedBatches = res.Wrapper.CombinedBatches
		row.CombinedEntries = res.Wrapper.CombinedEntries
		return row, nil
	}
	params := o.simParamsFor(wl)
	res, err := sim.Run(sim.Config{
		Procs:          procs,
		Workers:        o.WorkersPerProc * procs,
		Policy:         sys.Policy,
		Batching:       sys.Batching,
		Prefetching:    sys.Prefetching,
		FlatCombining:  sys.FlatCombining,
		QueueSize:      CombineQueueSize,
		BatchThreshold: CombineThreshold,
		Workload:       wl,
		Prewarm:        true,
		Duration:       sim.Time(o.Duration),
		Seed:           o.Seed,
		Params:         &params,
	})
	if err != nil {
		return CombineRow{}, err
	}
	row.ThroughputTPS = res.ThroughputTPS
	row.ContentionPerM = res.ContentionPerM
	row.HandoffSaved = res.HandoffSaved
	row.CombinedBatches = res.CombinedBatches
	row.CombinedEntries = res.CombinedEntries
	return row, nil
}

// CombineReport is the JSON shape committed as results/BENCH_combine.json —
// the benchmark baseline future changes are compared against.
type CombineReport struct {
	Experiment     string       `json:"experiment"`
	Mode           string       `json:"mode"`
	Seed           int64        `json:"seed"`
	DurationMS     int64        `json:"duration_ms"`
	QueueSize      int          `json:"queue_size"`
	BatchThreshold int          `json:"batch_threshold"`
	Rows           []CombineRow `json:"rows"`
}

// JSONCombine writes the committed-baseline JSON document.
func JSONCombine(w io.Writer, o Options, rows []CombineRow) error {
	o = o.withDefaults()
	rep := CombineReport{
		Experiment:     "combine",
		Mode:           string(o.Mode),
		Seed:           o.Seed,
		DurationMS:     o.Duration.Milliseconds(),
		QueueSize:      CombineQueueSize,
		BatchThreshold: CombineThreshold,
		Rows:           rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintCombine renders the comparison per workload, one processor count per
// line, systems side by side.
func PrintCombine(w io.Writer, rows []CombineRow) {
	fmt.Fprintf(w, "Commit-path comparison — baseline vs batched vs flat-combined (queue %d, threshold %d)\n",
		CombineQueueSize, CombineThreshold)
	type key struct {
		wl    string
		procs int
	}
	byPoint := map[key]map[string]CombineRow{}
	var order []key
	for _, r := range rows {
		k := key{r.Workload, r.Procs}
		if byPoint[k] == nil {
			byPoint[k] = map[string]CombineRow{}
			order = append(order, k)
		}
		byPoint[k][r.System] = r
	}
	lastWl := ""
	for _, k := range order {
		if k.wl != lastWl {
			fmt.Fprintf(w, "\n%s\n", k.wl)
			fmt.Fprintf(w, "  %5s  %12s  %12s  %12s  %8s  %9s  %9s\n",
				"procs", "pg2Q tps", "pgBat tps", "pgBatFC tps", "FC/Bat", "handoffs", "combined")
			lastWl = k.wl
		}
		m := byPoint[k]
		base, bat, fc := m[System2Q.Name], m[SystemBat.Name], m[SystemFC.Name]
		ratio := 0.0
		if bat.ThroughputTPS > 0 {
			ratio = fc.ThroughputTPS / bat.ThroughputTPS
		}
		fmt.Fprintf(w, "  %5d  %12.0f  %12.0f  %12.0f  %8.3f  %9d  %9d\n",
			k.procs, base.ThroughputTPS, bat.ThroughputTPS, fc.ThroughputTPS, ratio,
			fc.HandoffSaved, fc.CombinedBatches)
	}
}

// CSVCombine writes the rows in long form.
func CSVCombine(w io.Writer, rows []CombineRow) error {
	if _, err := fmt.Fprintln(w, "workload,system,procs,throughput_tps,contention_per_m,handoff_saved,combined_batches,combined_entries"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.1f,%.2f,%d,%d,%d\n",
			r.Workload, r.System, r.Procs, r.ThroughputTPS, r.ContentionPerM,
			r.HandoffSaved, r.CombinedBatches, r.CombinedEntries); err != nil {
			return err
		}
	}
	return nil
}
