package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/core"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
	"bpwrapper/internal/trace"
	"bpwrapper/internal/txn"
	"bpwrapper/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment E14 — the sharded pool: hash-partitioned shards, each with its
// own BP-Wrapper + policy instance (buffer.Config.Shards).
//
// The paper rejects distributed-lock designs because they fragment the
// replacement algorithm's access history (Section V-A); E10 measures that
// cost in the simulator behind a single pool lock. The sharded pool is the
// production-shaped variant: the pool *infrastructure* (frames, page
// table, free list, quarantine) shards trivially, and each shard's policy
// lock + batching queue is private. E14 answers the open question in two
// sweeps:
//
//   - throughput: shards × {pg2Q, pgBat, pgBatFC} on real goroutines —
//     does batching still pay once sharding has divided the lock, or does
//     sharding alone dissolve the contention? (Nondeterministic; real
//     mode only — the simulator cannot model per-shard batching.)
//   - hit ratio: shards × ghost-history policies on one recorded trace,
//     replayed sequentially through the REAL sharded pool — the history-
//     fragmentation cost, exactly reproducible and therefore the part
//     committed as the results/BENCH_shard.json CI baseline.

// Shard-experiment tuning: the contended queue tuning of the combine
// experiment (a commit every four accesses keeps per-shard locks busy
// enough to compare commit protocols), and an undersized hit-sweep pool
// (eviction pressure is what exercises ghost history).
const (
	ShardQueueSize    = CombineQueueSize
	ShardThreshold    = CombineThreshold
	ShardHitFrames    = 1024
	shardHitTraceTxns = 120 // ~65k accesses: enough eviction churn, regenerates in well under a minute
)

// ShardThroughputRow is one (workload, system, shards) point of the
// throughput sweep.
type ShardThroughputRow struct {
	Workload       string  `json:"workload"`
	System         string  `json:"system"` // pg2Q, pgBat, pgBatFC
	Shards         int     `json:"shards"`
	Procs          int     `json:"procs"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	ContentionPerM float64 `json:"contention_per_m"`
}

// ShardHitRow is one (policy, shards) point of the deterministic hit-ratio
// sweep.
type ShardHitRow struct {
	Policy   string  `json:"policy"`
	Shards   int     `json:"shards"`
	Accesses int64   `json:"accesses"`
	HitRatio float64 `json:"hit_ratio"`
}

// ShardReport is the full E14 result; HitRows is always present (and is
// the committed baseline), ThroughputRows only in real mode.
type ShardReport struct {
	Experiment     string               `json:"experiment"`
	Mode           string               `json:"mode"`
	Seed           int64                `json:"seed"`
	QueueSize      int                  `json:"queue_size"`
	BatchThreshold int                  `json:"batch_threshold"`
	HitFrames      int                  `json:"hit_frames"`
	HitRows        []ShardHitRow        `json:"hit_rows"`
	ThroughputRows []ShardThroughputRow `json:"throughput_rows,omitempty"`
}

// ShardExperiment runs E14. The hit-ratio sweep always runs (it is
// deterministic regardless of mode); the throughput sweep runs only in
// real mode, at the given processor count — the simulator models lock
// partitioning only without batching (sim.Config.LockPartitions), so a
// per-shard batched pool has no sim counterpart.
func ShardExperiment(shardCounts []int, procs int, o Options) (*ShardReport, error) {
	o = o.withDefaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	rep := &ShardReport{
		Experiment:     "shard",
		Mode:           string(o.Mode),
		Seed:           o.Seed,
		QueueSize:      ShardQueueSize,
		BatchThreshold: ShardThreshold,
		HitFrames:      ShardHitFrames,
	}

	hitRows, err := shardHitSweep(shardCounts, o.Seed)
	if err != nil {
		return nil, err
	}
	rep.HitRows = hitRows

	if o.Mode == ModeReal {
		systems := []System{System2Q, SystemBat, SystemFC}
		for _, wl := range o.Workloads {
			for _, shards := range shardCounts {
				for _, sys := range systems {
					row, err := shardThroughputPoint(sys, wl, shards, procs, o)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/shards=%d: %w", wl.Name(), sys.Name, shards, err)
					}
					rep.ThroughputRows = append(rep.ThroughputRows, row)
				}
			}
		}
	}
	return rep, nil
}

// shardHitSweep replays one recorded scan-plus-point-lookup trace (the E10
// access shape, where ghost history and sequence detection earn their
// keep) sequentially through real sharded pools. One goroutine, one
// session, direct commits, an in-memory device: byte-identical results on
// every run, which is what lets the JSON land in the repository as a CI
// drift check.
func shardHitSweep(shardCounts []int, seed int64) ([]ShardHitRow, error) {
	wl := scanMixWorkload{
		scanTable: workload.NewTable(1, 1<<22),
		scanLen:   200,
		point:     workload.NewZipf(workload.SyntheticConfig{Pages: 1 << 14, TxnLen: 24, TableID: 100}),
	}
	tr := trace.Record(wl, 8, shardHitTraceTxns, seed)
	policies := []string{"lru", "2q", "lirs", "arc", "seq"}
	factories := replacer.Factories()
	var rows []ShardHitRow
	for _, name := range policies {
		f, ok := factories[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown policy %q", name)
		}
		for _, shards := range shardCounts {
			row, err := shardHitPoint(name, f, shards, tr)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// shardHitPoint drives one sharded pool over the trace.
func shardHitPoint(policy string, f replacer.Factory, shards int, tr *trace.Trace) (ShardHitRow, error) {
	cfg := buffer.Config{
		Frames:  ShardHitFrames,
		Shards:  shards,
		Wrapper: core.Config{}, // direct commits: the sweep measures history, not locks
		Device:  storage.NewNullDevice(),
	}
	if shards > 1 {
		cfg.PolicyFactory = f
	} else {
		cfg.Policy = f(ShardHitFrames)
	}
	pool := buffer.New(cfg)
	s := pool.NewSession()
	for _, a := range tr.Accesses {
		ref, err := pool.Get(s, a.Page)
		if err != nil {
			return ShardHitRow{}, fmt.Errorf("shard hit sweep %s/shards=%d: %w", policy, shards, err)
		}
		ref.Release()
	}
	s.Flush()
	st := pool.AccessStats()
	return ShardHitRow{
		Policy:   policy,
		Shards:   shards,
		Accesses: st.Accesses(),
		HitRatio: st.HitRatio(),
	}, nil
}

// shardThroughputPoint measures one (system, workload, shards) point on
// real goroutines, fully cached and pre-warmed like the combine
// experiment, so differences are pure commit-path-times-shard-count
// differences.
func shardThroughputPoint(sys System, wl workload.Workload, shards, procs int, o Options) (ShardThroughputRow, error) {
	frames := wl.DataPages()
	f, ok := replacer.Factories()[sys.Policy]
	if !ok {
		return ShardThroughputRow{}, fmt.Errorf("bench: system %s uses unknown policy %q", sys.Name, sys.Policy)
	}
	cfg := buffer.Config{
		Frames:  frames,
		Shards:  shards,
		Wrapper: sys.WrapperConfig(ShardQueueSize, ShardThreshold),
		Device:  storage.NewNullDevice(),
	}
	if shards > 1 {
		cfg.PolicyFactory = f
	} else {
		cfg.Policy = f(frames)
	}
	pool := buffer.New(cfg)
	if err := pool.Prewarm(wl.Pages()); err != nil {
		return ShardThroughputRow{}, err
	}
	tcfg := txn.Config{
		Pool:          pool,
		Workload:      wl,
		Workers:       o.WorkersPerProc * procs,
		Procs:         procs,
		Seed:          o.Seed,
		TouchBytes:    true,
		Duration:      o.Duration,
		TxnsPerWorker: o.TxnsPerWorker,
	}
	if o.TxnsPerWorker > 0 {
		tcfg.Duration = 0
	}
	res, err := txn.Run(tcfg)
	if err != nil {
		return ShardThroughputRow{}, err
	}
	return ShardThroughputRow{
		Workload:       wl.Name(),
		System:         sys.Name,
		Shards:         shards,
		Procs:          procs,
		ThroughputTPS:  res.ThroughputTPS,
		ContentionPerM: res.ContentionPerM,
	}, nil
}

// JSONShard writes the report as the committed-baseline JSON document.
// Only HitRows are deterministic; scripts/bench_shard.sh therefore runs
// this experiment in sim mode, where ThroughputRows are absent and the
// document is byte-stable.
func JSONShard(w io.Writer, rep *ShardReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintShard renders both sweeps in paper shape.
func PrintShard(w io.Writer, rep *ShardReport) {
	fmt.Fprintln(w, "Sharded pool (E14) — per-shard BP-Wrapper vs shard count")
	fmt.Fprintf(w, "\nHit-ratio cost of fragmenting the policy history (scan+point trace, %d frames)\n", rep.HitFrames)
	fmt.Fprintf(w, "  %-8s %8s %12s %12s\n", "policy", "shards", "accesses", "hit ratio")
	for _, r := range rep.HitRows {
		fmt.Fprintf(w, "  %-8s %8d %12d %11.2f%%\n", r.Policy, r.Shards, r.Accesses, 100*r.HitRatio)
	}
	if len(rep.ThroughputRows) == 0 {
		fmt.Fprintln(w, "\n(throughput sweep requires -mode real: the simulator cannot model per-shard batching)")
		return
	}
	fmt.Fprintf(w, "\nThroughput — batching benefit vs shard count (queue %d, threshold %d)\n",
		rep.QueueSize, rep.BatchThreshold)
	type key struct {
		wl     string
		shards int
	}
	byPoint := map[key]map[string]ShardThroughputRow{}
	var order []key
	for _, r := range rep.ThroughputRows {
		k := key{r.Workload, r.Shards}
		if byPoint[k] == nil {
			byPoint[k] = map[string]ShardThroughputRow{}
			order = append(order, k)
		}
		byPoint[k][r.System] = r
	}
	lastWl := ""
	for _, k := range order {
		if k.wl != lastWl {
			fmt.Fprintf(w, "\n%s\n", k.wl)
			fmt.Fprintf(w, "  %6s  %12s  %12s  %12s  %8s  %8s\n",
				"shards", "pg2Q tps", "pgBat tps", "pgBatFC tps", "Bat/2Q", "FC/Bat")
			lastWl = k.wl
		}
		m := byPoint[k]
		base, bat, fc := m[System2Q.Name], m[SystemBat.Name], m[SystemFC.Name]
		batRatio, fcRatio := 0.0, 0.0
		if base.ThroughputTPS > 0 {
			batRatio = bat.ThroughputTPS / base.ThroughputTPS
		}
		if bat.ThroughputTPS > 0 {
			fcRatio = fc.ThroughputTPS / bat.ThroughputTPS
		}
		fmt.Fprintf(w, "  %6d  %12.0f  %12.0f  %12.0f  %8.3f  %8.3f\n",
			k.shards, base.ThroughputTPS, bat.ThroughputTPS, fc.ThroughputTPS, batRatio, fcRatio)
	}
}

// CSVShard writes both sweeps in long form, hit rows first.
func CSVShard(w io.Writer, rep *ShardReport) error {
	if _, err := fmt.Fprintln(w, "kind,workload,system,policy,shards,procs,throughput_tps,contention_per_m,accesses,hit_ratio"); err != nil {
		return err
	}
	for _, r := range rep.HitRows {
		if _, err := fmt.Fprintf(w, "hit,,,%s,%d,,,,%d,%.6f\n",
			r.Policy, r.Shards, r.Accesses, r.HitRatio); err != nil {
			return err
		}
	}
	for _, r := range rep.ThroughputRows {
		if _, err := fmt.Fprintf(w, "throughput,%s,%s,,%d,%d,%.1f,%.2f,,\n",
			r.Workload, r.System, r.Shards, r.Procs, r.ThroughputTPS, r.ContentionPerM); err != nil {
			return err
		}
	}
	return nil
}
