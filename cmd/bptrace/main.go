// Command bptrace records page-access traces from the built-in workloads
// and replays them through the replacement algorithms, printing hit-ratio
// tables. Its -compare mode runs the batching-fidelity experiment: the
// same trace replayed with and without BP-Wrapper's deferred batches,
// verifying the hit-ratio overlap the paper reports in Figure 8.
//
// Its -addr fetch mode targets a live observability endpoint instead
// (bpload/bpserver started with -obs) and pulls the request traces the
// reqtrace layer retained: the slowest-N text view by default, or the
// Chrome trace_event JSON (-chrome) for chrome://tracing / Perfetto.
//
// Usage:
//
//	bptrace -workload tpcw -record trace.bin          # capture a trace
//	bptrace -replay trace.bin -policies lru,2q,lirs   # hit-ratio sweep
//	bptrace -workload tpcc -sweep                     # record + sweep in one go
//	bptrace -workload tpcw -compare                   # batched vs plain fidelity
//	bptrace -addr 127.0.0.1:6060 -n 5                 # slowest 5 request traces
//	bptrace -addr 127.0.0.1:6060 -chrome out.json     # Perfetto-loadable spans
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"bpwrapper/internal/replacer"
	"bpwrapper/internal/trace"
	"bpwrapper/internal/workload"
)

// fetchTraces pulls /debug/traces from a live obs endpoint: the slowest-n
// text view to stdout, or — when chromeOut is set — the trace_event JSON
// into that file.
func fetchTraces(addr string, n int, chromeOut string) error {
	url := fmt.Sprintf("http://%s/debug/traces?n=%d", addr, n)
	var dst io.Writer = os.Stdout
	if chromeOut != "" {
		url = "http://" + addr + "/debug/traces?format=chrome"
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if _, err := io.Copy(dst, resp.Body); err != nil {
		return err
	}
	if chromeOut != "" {
		fmt.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", chromeOut)
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "", "fetch request traces from this obs endpoint (host:port) instead of recording a workload")
		slowestN = flag.Int("n", 10, "with -addr: how many of the slowest traces to print")
		chrome   = flag.String("chrome", "", "with -addr: write Chrome trace_event JSON to this file")
		wlName   = flag.String("workload", "tpcw", "workload to record: tpcw, tpcc, tablescan, zipf, uniform, hotspot, loop")
		workers  = flag.Int("workers", 16, "streams interleaved into the trace")
		txns     = flag.Int("txns", 500, "transactions per stream")
		seed     = flag.Int64("seed", 1, "workload seed")
		record   = flag.String("record", "", "write the recorded trace to this file")
		replay   = flag.String("replay", "", "read the trace from this file instead of recording")
		policies = flag.String("policies", "lru,clock,2q,lirs,mq,arc", "policies for -sweep/-compare")
		caps     = flag.String("capacities", "", "comma-separated buffer capacities (default: 1/64..1/2 of distinct pages)")
		sweep    = flag.Bool("sweep", false, "replay the trace under each policy and capacity")
		compare  = flag.Bool("compare", false, "compare batched vs unbatched hit ratios (BP-Wrapper fidelity)")
	)
	flag.Parse()

	if *addr != "" {
		check(fetchTraces(*addr, *slowestN, *chrome))
		return
	}

	var tr trace.Trace
	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		check(err)
		_, err = tr.ReadFrom(f)
		f.Close()
		check(err)
	default:
		wl, err := workload.ByName(*wlName)
		check(err)
		tr = *trace.Record(wl, *workers, *txns, *seed)
	}
	fmt.Printf("trace: %d accesses over %d distinct pages\n", tr.Len(), tr.DistinctPages())

	if *record != "" {
		f, err := os.Create(*record)
		check(err)
		_, err = tr.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Printf("wrote %s\n", *record)
	}

	capacities := parseCaps(*caps, tr.DistinctPages())
	polNames := splitList(*policies)

	if *sweep || (!*compare && *record == "" && *replay != "") {
		rows, err := trace.Sweep(&tr, polNames, capacities)
		check(err)
		fmt.Printf("\n%-10s", "capacity")
		for _, p := range polNames {
			fmt.Printf(" %9s", p)
		}
		fmt.Println()
		for _, c := range capacities {
			fmt.Printf("%-10d", c)
			for _, p := range polNames {
				for _, r := range rows {
					if r.Policy == p && r.Capacity == c {
						fmt.Printf(" %8.2f%%", 100*r.Result.HitRatio())
					}
				}
			}
			fmt.Println()
		}
	}

	if *compare {
		fmt.Printf("\nBatching fidelity (queue 64, threshold 32):\n")
		fmt.Printf("%-8s %-10s %12s %12s %10s\n", "policy", "capacity", "plain hit%", "batched hit%", "delta")
		for _, p := range polNames {
			for _, c := range capacities {
				plain, ok := replacer.New(p, c)
				if !ok {
					fatal(fmt.Errorf("unknown policy %q", p))
				}
				batched, _ := replacer.New(p, c)
				a := trace.Replay(plain, &tr)
				b := trace.ReplayBatched(batched, &tr, 64, 32)
				fmt.Printf("%-8s %-10d %11.3f%% %11.3f%% %9.4f\n",
					p, c, 100*a.HitRatio(), 100*b.HitRatio(), b.HitRatio()-a.HitRatio())
			}
		}
	}
}

func parseCaps(s string, distinct int) []int {
	if s == "" {
		var caps []int
		for _, div := range []int{64, 32, 16, 8, 4, 2} {
			c := distinct / div
			if c >= 16 {
				caps = append(caps, c)
			}
		}
		if len(caps) == 0 {
			caps = []int{16}
		}
		return caps
	}
	var caps []int
	for _, part := range splitList(s) {
		c, err := strconv.Atoi(part)
		check(err)
		caps = append(caps, c)
	}
	return caps
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bptrace:", err)
	os.Exit(1)
}
