package bench

import (
	"bytes"
	"reflect"
	"testing"
)

// TestChaosDeterministic: the whole point of E16 is a committed baseline,
// so two runs at the same seed must be byte-identical.
func TestChaosDeterministic(t *testing.T) {
	a, err := ChaosExperiment(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosExperiment(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
	var ba, bb bytes.Buffer
	if err := JSONChaos(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := JSONChaos(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("same-seed JSON differs")
	}
}

// TestChaosScenarioShapes checks each scenario exercised the machinery it
// is scripted to exercise, and that no scenario lost a dirty page.
func TestChaosScenarioShapes(t *testing.T) {
	rep, err := ChaosExperiment(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChaosRow{}
	for _, r := range rep.Rows {
		byName[r.Scenario] = r
		if r.LostPages != 0 {
			t.Errorf("%s: lost %d dirty pages through fault+recovery", r.Scenario, r.LostPages)
		}
		if !r.Recovered {
			t.Errorf("%s: shard did not return to Healthy after healing: %+v", r.Scenario, r)
		}
	}
	for _, sc := range []string{"brownout", "harddown", "recovery"} {
		if byName[sc].BreakerTrips == 0 {
			t.Errorf("%s: breaker never tripped: %+v", sc, byName[sc])
		}
	}
	if byName["harddown"].Shed == 0 {
		t.Errorf("harddown: no miss shed while shard was down: %+v", byName["harddown"])
	}
	if byName["quarantine"].BreakerTrips != 0 {
		t.Errorf("quarantine: breaker should be parked, tripped anyway: %+v", byName["quarantine"])
	}
	if byName["quarantine"].PeakHealth == "healthy" {
		t.Errorf("quarantine: write-fault pressure never degraded the shard: %+v", byName["quarantine"])
	}
}
