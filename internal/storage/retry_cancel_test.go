package storage

import (
	"errors"
	"testing"
	"time"

	"bpwrapper/internal/page"
)

// TestRetryCancelAbortsBackoff is the regression test for the
// uncancellable backoff ladder: a close of Cancel mid-sleep must return
// the operation immediately with its last real error, not wait out the
// full jittered ladder.
func TestRetryCancelAbortsBackoff(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	cancel := make(chan struct{})
	rd := NewRetryDevice(fd, RetryConfig{
		MaxAttempts: 4,
		BaseBackoff: 30 * time.Second, // would hang ~90s without cancellation
		MaxBackoff:  30 * time.Second,
		Jitter:      -1,
		Cancel:      cancel,
	})
	done := make(chan error, 1)
	go func() {
		var p page.Page
		done <- rd.ReadPage(pid(1), &p)
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("got %v, want the last attempt's ErrTransient", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not abort the backoff sleep")
	}
	if rd.CanceledBackoffs() != 1 {
		t.Fatalf("canceled backoffs = %d, want 1", rd.CanceledBackoffs())
	}
}

// TestRetryCancelPreClosed: with Cancel already closed, a failing
// operation gets its one attempt and no retries.
func TestRetryCancelPreClosed(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	cancel := make(chan struct{})
	close(cancel)
	rd := NewRetryDevice(fd, RetryConfig{MaxAttempts: 5, Cancel: cancel})
	var p page.Page
	if err := rd.ReadPage(pid(1), &p); !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	reads, _, _ := fd.Injected()
	if reads != 1 {
		t.Fatalf("backing saw %d attempts, want exactly 1", reads)
	}
	if got := rd.Stats().Retries; got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

// TestRetryCancelWithCustomSleep: Cancel is honored between attempts
// even when a test injects its own Sleep.
func TestRetryCancelWithCustomSleep(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	cancel := make(chan struct{})
	sleeps := 0
	rd := NewRetryDevice(fd, RetryConfig{
		MaxAttempts: 5,
		Cancel:      cancel,
		Sleep: func(time.Duration) {
			sleeps++
			if sleeps == 2 {
				close(cancel)
			}
		},
	})
	var p page.Page
	if err := rd.ReadPage(pid(1), &p); !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	// Attempt 1 fails, sleep 1, attempt 2 fails, sleep 2 closes cancel,
	// ladder aborts: the backing device saw exactly 2 attempts.
	reads, _, _ := fd.Injected()
	if reads != 2 {
		t.Fatalf("backing saw %d attempts, want 2", reads)
	}
	if sleeps != 2 {
		t.Fatalf("sleeps = %d, want 2", sleeps)
	}
}

// TestRetryNoCancelStillSleeps: without Cancel the default sleep path
// still honors injected ladders end to end (behavioral backstop for the
// refactor from cfg.Sleep defaulting).
func TestRetryNoCancelStillSleeps(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{ReadFailProb: 1})
	rd := NewRetryDevice(fd, RetryConfig{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
	})
	var p page.Page
	if err := rd.ReadPage(pid(1), &p); !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	reads, _, _ := fd.Injected()
	if reads != 3 {
		t.Fatalf("backing saw %d attempts, want all 3", reads)
	}
	if rd.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", rd.Exhausted())
	}
}
