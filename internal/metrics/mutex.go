// Package metrics provides the measurement machinery used throughout the
// BP-Wrapper reproduction: a contention-instrumented mutex matching the
// paper's lock-contention definition, cheap atomic counters, and latency
// histograms for response-time reporting.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleEvery is the hold-time sampling period used when no
// LockProfile is installed (or the profile leaves SampleEvery at 0): the
// nanosecond clock is read on roughly 1 in 64 acquisitions and the result
// extrapolated, so the uncontended fast path stays two atomic operations.
const DefaultSampleEvery = 64

// defaultSamplerSeed seeds the xorshift sampler when no profile supplies
// one. Any non-zero constant works; xorshift64 has a single absorbing
// state at zero.
const defaultSamplerSeed = 0x9e3779b97f4a7c15

// LockProfile configures sampled lock profiling on a ContentionMutex.
// Install one with SetProfile to collect wait-time and hold-time
// distributions in addition to the always-on counters.
//
// Hold times are clocked only on a 1-in-SampleEvery pseudo-random sample
// of acquisitions (seeded, so runs are reproducible); wait times are
// recorded on every contention, where the clock has already been read to
// maintain the exact WaitTime counter.
type LockProfile struct {
	// SampleEvery is the hold-time sampling period: the clock is read on
	// roughly 1 in SampleEvery acquisitions. Values ≤ 1 clock every
	// acquisition (exact hold times, at fast-path cost); 0 means
	// DefaultSampleEvery.
	SampleEvery int64

	// Seed seeds the sampling PRNG so torture and benchmark runs are
	// reproducible. Zero selects a fixed default seed.
	Seed uint64

	// Wait, if non-nil, receives every contended wait duration.
	Wait *Histogram

	// Hold, if non-nil, receives every sampled hold duration.
	Hold *Histogram
}

func (p *LockProfile) every() int64 {
	if p == nil || p.SampleEvery == 0 {
		return DefaultSampleEvery
	}
	if p.SampleEvery < 1 {
		return 1
	}
	return p.SampleEvery
}

// ContentionMutex is a mutual-exclusion lock that counts how often a lock
// request could not be satisfied immediately, which is exactly the paper's
// definition of a lock contention ("a lock request cannot be immediately
// satisfied and a process context switch occurs", Section IV-D).
//
// Lock first attempts a non-blocking acquisition; if that fails it records
// one contention event, blocks, and accumulates the time spent waiting.
// Hold time is sampled: the nanosecond clock is read on a seeded
// 1-in-SampleEvery subset of acquisitions and the measured holds are
// extrapolated into HoldTime, so the uncontended fast path performs no
// clock reads — just the acquisition counter and one word store.
//
// The zero value is an unlocked mutex ready for use, profiling at
// DefaultSampleEvery with no histograms attached.
type ContentionMutex struct {
	mu sync.Mutex

	acquisitions atomic.Int64 // successful Lock/TryLock acquisitions
	contentions  atomic.Int64 // Lock calls that had to block
	tryFailures  atomic.Int64 // TryLock calls that returned false
	waitNanos    atomic.Int64 // total time blocked in Lock (exact)
	holdNanos    atomic.Int64 // extrapolated total hold time (sampled)
	holdSamples  atomic.Int64 // acquisitions whose hold was clocked

	// lockedAt is written only by the lock holder (between acquisition and
	// Unlock), so a plain field would be unsynchronized with the *next*
	// holder; an atomic keeps the race detector quiet at negligible cost.
	// Zero means the current hold is not being clocked.
	lockedAt atomic.Int64

	// sampler is the xorshift64 state deciding which acquisitions get a
	// hold-time clock read. It is advanced only while the mutex is held,
	// so the lock's own happens-before edge orders successive holders and
	// a plain field is race-free. SetProfile reseeds it and must only be
	// called at quiescence.
	sampler uint64

	profile atomic.Pointer[LockProfile]
}

// SetProfile installs (or, with nil, removes) a sampling profile and
// reseeds the sampler from it. It must be called at quiescence — before
// the mutex is shared or while no goroutine is locking it — because the
// sampler state is owned by lock holders.
func (m *ContentionMutex) SetProfile(p *LockProfile) {
	if p != nil && p.Seed != 0 {
		m.sampler = p.Seed
	} else {
		m.sampler = defaultSamplerSeed
	}
	m.profile.Store(p)
}

// Profile returns the currently installed profile, or nil.
func (m *ContentionMutex) Profile() *LockProfile { return m.profile.Load() }

// sampleNext advances the sampler and reports whether this acquisition's
// hold should be clocked. Called with the mutex held.
func (m *ContentionMutex) sampleNext(every int64) bool {
	x := m.sampler
	if x == 0 {
		x = defaultSamplerSeed
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.sampler = x
	return x%uint64(every) == 0
}

// beginHold starts hold-time tracking for an acquisition. now is a clock
// reading already in hand (the contended path has one from measuring the
// wait) or zero; the clock is read only if this acquisition is sampled.
// Called with the mutex held.
func (m *ContentionMutex) beginHold(p *LockProfile, now int64) {
	if every := p.every(); every > 1 && !m.sampleNext(every) {
		m.lockedAt.Store(0)
		return
	}
	if now == 0 {
		now = time.Now().UnixNano()
	}
	m.lockedAt.Store(now)
}

// Lock acquires the mutex, recording a contention event if the lock was not
// immediately available.
func (m *ContentionMutex) Lock() {
	if m.mu.TryLock() {
		m.acquisitions.Add(1)
		m.beginHold(m.profile.Load(), 0)
		return
	}
	m.contentions.Add(1)
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	wait := now.Sub(start)
	m.waitNanos.Add(wait.Nanoseconds())
	p := m.profile.Load()
	if p != nil && p.Wait != nil {
		p.Wait.Record(wait)
	}
	m.acquisitions.Add(1)
	m.beginHold(p, now.UnixNano())
}

// TryLock attempts to acquire the mutex without blocking and reports whether
// it succeeded. Failed attempts are counted separately from contentions:
// in the BP-Wrapper protocol a failed TryLock is an expected, cheap outcome
// (the access stays queued), not a blocking event.
func (m *ContentionMutex) TryLock() bool {
	if m.mu.TryLock() {
		m.acquisitions.Add(1)
		m.beginHold(m.profile.Load(), 0)
		return true
	}
	m.tryFailures.Add(1)
	return false
}

// Unlock releases the mutex. If this hold was sampled, the measured hold
// time is recorded and extrapolated into the HoldTime estimate.
func (m *ContentionMutex) Unlock() {
	if at := m.lockedAt.Load(); at != 0 {
		hold := time.Now().UnixNano() - at
		if hold < 0 {
			hold = 0
		}
		p := m.profile.Load()
		m.holdNanos.Add(hold * p.every())
		m.holdSamples.Add(1)
		if p != nil && p.Hold != nil {
			p.Hold.Record(time.Duration(hold))
		}
	}
	m.mu.Unlock()
}

// LockStats is a snapshot of a ContentionMutex's counters.
type LockStats struct {
	Acquisitions int64         // successful acquisitions (Lock + TryLock)
	Contentions  int64         // Lock calls that blocked
	TryFailures  int64         // TryLock calls that failed
	WaitTime     time.Duration // total time blocked in Lock (exact)
	HoldTime     time.Duration // estimated total hold time, extrapolated from sampled holds
	HoldSamples  int64         // acquisitions whose hold was actually clocked
}

// Plus returns the field-wise sum of two snapshots, for aggregating the
// per-shard policy locks of a sharded pool into one figure.
func (s LockStats) Plus(o LockStats) LockStats {
	s.Acquisitions += o.Acquisitions
	s.Contentions += o.Contentions
	s.TryFailures += o.TryFailures
	s.WaitTime += o.WaitTime
	s.HoldTime += o.HoldTime
	s.HoldSamples += o.HoldSamples
	return s
}

// Stats returns a snapshot of the mutex's counters. It may be called
// concurrently with lock operations; the fields are individually consistent.
func (m *ContentionMutex) Stats() LockStats {
	return LockStats{
		Acquisitions: m.acquisitions.Load(),
		Contentions:  m.contentions.Load(),
		TryFailures:  m.tryFailures.Load(),
		WaitTime:     time.Duration(m.waitNanos.Load()),
		HoldTime:     time.Duration(m.holdNanos.Load()),
		HoldSamples:  m.holdSamples.Load(),
	}
}

// Reset zeroes all counters and any attached profile histograms. It must
// not be called while the mutex is held or being acquired.
func (m *ContentionMutex) Reset() {
	m.acquisitions.Store(0)
	m.contentions.Store(0)
	m.tryFailures.Store(0)
	m.waitNanos.Store(0)
	m.holdNanos.Store(0)
	m.holdSamples.Store(0)
	if p := m.profile.Load(); p != nil {
		if p.Wait != nil {
			p.Wait.Reset()
		}
		if p.Hold != nil {
			p.Hold.Reset()
		}
	}
}

// ContentionPerMillion converts raw contention and access counts into the
// paper's reporting unit: lock contentions per million page accesses.
func ContentionPerMillion(contentions, accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(contentions) * 1e6 / float64(accesses)
}
