package metrics

import "sync/atomic"

// CountDist is a lock-free linear histogram of small non-negative integer
// counts — batch sizes, combiner run lengths — cheap enough to record on
// every commit. Values 0..cap-1 land in their own bucket; anything larger
// goes to the shared overflow bucket (tracked exactly by Max).
//
// The zero value is unusable; create with NewCountDist. All methods are
// safe for concurrent use.
type CountDist struct {
	buckets []atomic.Int64 // buckets[cap] is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewCountDist returns a distribution with dedicated buckets for values
// 0..cap-1 plus an overflow bucket. cap must be positive.
func NewCountDist(cap int) *CountDist {
	if cap <= 0 {
		panic("metrics: CountDist cap must be positive")
	}
	return &CountDist{buckets: make([]atomic.Int64, cap+1)}
}

// Observe records one value. Negative values are clamped to 0.
func (d *CountDist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	idx := v
	if idx >= len(d.buckets)-1 {
		idx = len(d.buckets) - 1
	}
	d.buckets[idx].Add(1)
	d.count.Add(1)
	d.sum.Add(int64(v))
	for {
		cur := d.max.Load()
		if int64(v) <= cur || d.max.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// Reset zeroes the distribution. Like the other metrics resets it is
// quiescent-only: concurrent Observe calls can be partially lost.
func (d *CountDist) Reset() {
	for i := range d.buckets {
		d.buckets[i].Store(0)
	}
	d.count.Store(0)
	d.sum.Store(0)
	d.max.Store(0)
}

// CountDistSnapshot is a point-in-time copy of a CountDist. Buckets[i]
// counts observations of value i; the final element counts overflow
// (values ≥ len(Buckets)-1).
type CountDistSnapshot struct {
	Buckets []int64
	Count   int64
	Sum     int64
	Max     int64
}

// Snapshot copies the distribution. Buckets are loaded individually, so a
// snapshot under load is approximate in the same one-sided way as the
// other hot-path metrics; at quiescence it is exact.
func (d *CountDist) Snapshot() CountDistSnapshot {
	s := CountDistSnapshot{
		Buckets: make([]int64, len(d.buckets)),
		Count:   d.count.Load(),
		Sum:     d.sum.Load(),
		Max:     d.max.Load(),
	}
	for i := range d.buckets {
		s.Buckets[i] = d.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed value, or 0 with no observations.
func (s CountDistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Plus returns the element-wise sum of two snapshots for per-shard
// aggregation. Both must come from distributions of the same capacity.
func (s CountDistSnapshot) Plus(o CountDistSnapshot) CountDistSnapshot {
	if len(o.Buckets) == 0 {
		return s
	}
	if len(s.Buckets) == 0 {
		return o
	}
	if len(s.Buckets) != len(o.Buckets) {
		panic("metrics: Plus of CountDist snapshots with different capacity")
	}
	out := CountDistSnapshot{
		Buckets: make([]int64, len(s.Buckets)),
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
		Max:     s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}
