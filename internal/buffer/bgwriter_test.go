package buffer

import (
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

func TestBackgroundWriterFlushesDirtyPages(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 16, Policy: replacer.NewLRU(16), Device: dev})
	s := p.NewSession()
	for i := uint64(1); i <= 8; i++ {
		r, err := p.GetWrite(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Data()[0] = byte(i)
		r.MarkDirty()
		r.Release()
	}
	if d := p.DirtyCount(); d != 8 {
		t.Fatalf("dirty count %d, want 8", d)
	}
	w := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: 5 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for p.DirtyCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	w.Stop()
	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("dirty count %d after background writer", d)
	}
	st := w.Stats()
	if st.Rounds == 0 || st.Written != 8 {
		t.Fatalf("rounds=%d written=%d, want >0/8", st.Rounds, st.Written)
	}
	for i := uint64(1); i <= 8; i++ {
		var back page.Page
		if err := dev.ReadPage(pid(i), &back); err != nil {
			t.Fatal(err)
		}
		if back.Data[0] != byte(i) {
			t.Fatalf("page %d not written back", i)
		}
	}
}

func TestBackgroundWriterSkipsPinned(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()
	r, _ := p.GetWrite(s, pid(1))
	r.Data()[0] = 0x5A
	r.MarkDirty()
	// Pinned: the writer must leave it alone.
	w := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: 2 * time.Millisecond})
	time.Sleep(20 * time.Millisecond)
	if d := p.DirtyCount(); d != 1 {
		t.Fatalf("pinned dirty page count %d, want 1", d)
	}
	r.Release()
	deadline := time.Now().Add(2 * time.Second)
	for p.DirtyCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	w.Stop()
	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("dirty count %d after unpin", d)
	}
}

func TestBackgroundWriterFinalSweepOnStop(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 8, Policy: replacer.NewLRU(8), Device: dev})
	s := p.NewSession()
	w := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Hour}) // never ticks
	r, _ := p.GetWrite(s, pid(3))
	r.Data()[0] = 0x77
	r.MarkDirty()
	r.Release()
	w.Stop() // final sweep must flush
	var back page.Page
	dev.ReadPage(pid(3), &back)
	if back.Data[0] != 0x77 {
		t.Fatal("Stop's final sweep did not write back")
	}
}

func TestBackgroundWriterConcurrentWithTraffic(t *testing.T) {
	p := New(Config{
		Frames:  32,
		Policy:  replacer.NewTwoQ(32),
		Wrapper: core.Config{Batching: true},
		Device:  storage.NewMemDevice(),
	})
	w := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Millisecond, MaxPagesPerRound: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := p.NewSession()
			defer s.Flush()
			for i := 0; i < 2000; i++ {
				id := pid(uint64((g + i*7) % 100))
				if i%3 == 0 {
					ref, err := p.GetWrite(s, id)
					if err != nil {
						t.Error(err)
						return
					}
					ref.Data()[1] = byte(i)
					ref.MarkDirty()
					ref.Release()
				} else {
					ref, err := p.Get(s, id)
					if err != nil {
						t.Error(err)
						return
					}
					ref.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	w.Stop()
	if st := w.Stats(); st.Written == 0 {
		t.Fatal("background writer wrote nothing under write traffic")
	}
}
