package replacer

import (
	"math/rand"
	"testing"
)

// refLRU is an obviously-correct LRU model used to verify the real one.
type refLRU struct {
	capacity int
	order    []PageID // order[0] = LRU end
}

func (m *refLRU) indexOf(id PageID) int {
	for i, x := range m.order {
		if x == id {
			return i
		}
	}
	return -1
}

func (m *refLRU) access(id PageID) (victim PageID, evicted, hit bool) {
	if i := m.indexOf(id); i >= 0 {
		m.order = append(append(append([]PageID{}, m.order[:i]...), m.order[i+1:]...), id)
		return 0, false, true
	}
	if len(m.order) == m.capacity {
		victim, evicted = m.order[0], true
		m.order = m.order[1:]
	}
	m.order = append(m.order, id)
	return victim, evicted, false
}

// TestLRUExact cross-checks LRU against the reference model access by
// access, including victim identity.
func TestLRUExact(t *testing.T) {
	p := NewLRU(16)
	m := &refLRU{capacity: 16}
	trace := append(zipfTrace(3, 30000, 200), loopTrace(5000, 40)...)
	for i, id := range trace {
		wantVictim, wantEvicted, wantHit := m.access(id)
		if gotHit := p.Contains(id); gotHit != wantHit {
			t.Fatalf("step %d: hit=%v want %v", i, gotHit, wantHit)
		}
		if wantHit {
			p.Hit(id)
			continue
		}
		victim, evicted := p.Admit(id)
		if evicted != wantEvicted || (evicted && victim != wantVictim) {
			t.Fatalf("step %d: victim=(%v,%v) want (%v,%v)", i, victim, evicted, wantVictim, wantEvicted)
		}
	}
}

// TestLRUVictimOrder checks textbook behaviour on a tiny example.
func TestLRUVictimOrder(t *testing.T) {
	p := NewLRU(3)
	p.Admit(tid(1))
	p.Admit(tid(2))
	p.Admit(tid(3))
	p.Hit(tid(1)) // order now 2,3,1 (LRU first)
	v, ev := p.Admit(tid(4))
	if !ev || v != tid(2) {
		t.Fatalf("victim=%v,%v want %v", v, ev, tid(2))
	}
	v, ev = p.Admit(tid(5))
	if !ev || v != tid(3) {
		t.Fatalf("victim=%v,%v want %v", v, ev, tid(3))
	}
}

// TestFIFOIgnoresHits checks FIFO's defining property: hits do not save a
// page from eviction.
func TestFIFOIgnoresHits(t *testing.T) {
	p := NewFIFO(3)
	p.Admit(tid(1))
	p.Admit(tid(2))
	p.Admit(tid(3))
	for i := 0; i < 10; i++ {
		p.Hit(tid(1))
	}
	v, ev := p.Admit(tid(4))
	if !ev || v != tid(1) {
		t.Fatalf("victim=%v,%v want %v (FIFO must ignore hits)", v, ev, tid(1))
	}
}

// TestLFUVictims checks frequency-ordered eviction with LRU tie-break.
func TestLFUVictims(t *testing.T) {
	p := NewLFU(3)
	p.Admit(tid(1))
	p.Admit(tid(2))
	p.Admit(tid(3))
	p.Hit(tid(1))
	p.Hit(tid(1))
	p.Hit(tid(2))
	// freqs: 1→3, 2→2, 3→1
	if v, _ := p.Admit(tid(4)); v != tid(3) {
		t.Fatalf("victim=%v want %v", v, tid(3))
	}
	// freqs: 1→3, 2→2, 4→1
	if v, _ := p.Admit(tid(5)); v != tid(4) {
		t.Fatalf("victim=%v want %v", v, tid(4))
	}
	// 5 and... freqs: 1→3, 2→2, 5→1; tie-break: evict 5 (oldest at freq 1)
	p.Hit(tid(5))
	// freqs: 1→3, 2→2, 5→2; evict 2 (same freq as 5, older arrival)
	if v, _ := p.Admit(tid(6)); v != tid(2) {
		t.Fatalf("victim=%v want %v (LRU tie-break)", v, tid(2))
	}
}

// TestClockSecondChance checks the reference bit grants exactly one
// additional sweep.
func TestClockSecondChance(t *testing.T) {
	p := NewClock(3)
	p.Admit(tid(1))
	p.Admit(tid(2))
	p.Admit(tid(3))
	p.Hit(tid(1)) // ref bit set on 1
	// Sweep starts at 1 (oldest): 1 has ref → cleared, spared; 2 evicted.
	v, ev := p.Admit(tid(4))
	if !ev || v != tid(2) {
		t.Fatalf("victim=%v,%v want %v", v, ev, tid(2))
	}
	if !p.Contains(tid(1)) {
		t.Fatal("referenced page 1 was evicted despite second chance")
	}
	// No new references: next sweep evicts 3.
	if v, _ := p.Admit(tid(5)); v != tid(3) {
		t.Fatalf("victim=%v want %v", v, tid(3))
	}
	// Then 1 (its bit was consumed).
	if v, _ := p.Admit(tid(6)); v != tid(1) {
		t.Fatalf("victim=%v want %v", v, tid(1))
	}
}

// TestGClockCounterSaturation checks the usage counter caps at maxCount and
// each sweep decrements once.
func TestGClockCounterSaturation(t *testing.T) {
	p := NewGClock(2, 2)
	p.Admit(tid(1))
	p.Admit(tid(2))
	for i := 0; i < 50; i++ {
		p.Hit(tid(1)) // saturates at 2
	}
	// Evictions sweep: 1 has count 2, 2 has count 0 → 2 evicted first.
	if v, _ := p.Admit(tid(3)); v != tid(2) {
		t.Fatalf("victim=%v want %v", v, tid(2))
	}
	// Now 1 (count 2), 3 (count 0): 3 evicted.
	if v, _ := p.Admit(tid(4)); v != tid(3) {
		t.Fatalf("victim=%v want %v", v, tid(3))
	}
	// 1's counter (saturated at 2) was decremented by each of the two
	// sweeps above, so the next sweep finds it at zero and evicts it.
	if v, _ := p.Admit(tid(5)); v != tid(1) {
		t.Fatalf("victim=%v want %v (counter drained)", v, tid(1))
	}
	if v, _ := p.Admit(tid(6)); v != tid(4) {
		t.Fatalf("victim=%v want %v", v, tid(4))
	}
}

// TestTwoQStructure checks the A1in/A1out/Am partition behaviour.
func TestTwoQStructure(t *testing.T) {
	p := NewTwoQTuned(8, 2, 4)
	// Fill A1in beyond Kin; early pages spill to A1out as ghosts.
	for i := uint64(1); i <= 8; i++ {
		p.Admit(tid(i))
	}
	a1in, a1out, am := p.QueueLengths()
	if a1in != 8 || a1out != 0 || am != 0 {
		t.Fatalf("after fill: (%d,%d,%d) want (8,0,0)", a1in, a1out, am)
	}
	// Next miss evicts from A1in (over Kin), ghosting the victim.
	v, _ := p.Admit(tid(9))
	if v != tid(1) {
		t.Fatalf("victim=%v want %v (A1in FIFO order)", v, tid(1))
	}
	if p.Contains(tid(1)) {
		t.Fatal("ghost counted as resident")
	}
	// Re-reference the ghost: it must enter Am directly.
	p.Admit(tid(1))
	_, a1out, am = p.QueueLengths()
	if am != 1 {
		t.Fatalf("ghost hit did not promote to Am (am=%d)", am)
	}
	if a1out != 1 {
		t.Fatalf("a1out=%d want 1 (promotion consumes ghost, eviction adds one)", a1out)
	}
	// A hit on an A1in page must NOT move it (correlated-reference filter):
	// the A1in FIFO order decides victims regardless of hits.
	p2 := NewTwoQTuned(4, 4, 4)
	for i := uint64(1); i <= 4; i++ {
		p2.Admit(tid(i))
	}
	p2.Hit(tid(1))
	if v, _ := p2.Admit(tid(5)); v != tid(1) {
		t.Fatalf("victim=%v want %v (hits must not reorder A1in)", v, tid(1))
	}
}

// TestTwoQGhostBound checks A1out never exceeds Kout.
func TestTwoQGhostBound(t *testing.T) {
	p := NewTwoQTuned(4, 2, 3)
	for i := uint64(0); i < 1000; i++ {
		if !p.Contains(tid(i)) {
			p.Admit(tid(i))
		}
	}
	if _, a1out, _ := p.QueueLengths(); a1out > 3 {
		t.Fatalf("a1out=%d exceeds Kout=3", a1out)
	}
}

// TestLIRSInvariants checks the LIR-set bound and the stack-bottom
// invariant across a messy trace.
func TestLIRSInvariants(t *testing.T) {
	p := NewLIRSTuned(64, 4, 128)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		id := tid(r.Uint64() % 300)
		if p.Contains(id) {
			p.Hit(id)
		} else {
			p.Admit(id)
		}
		if p.LIRCount() > 60 {
			t.Fatalf("step %d: LIR count %d exceeds target %d", i, p.LIRCount(), 60)
		}
		if g := p.GhostCount(); g > 128 {
			t.Fatalf("step %d: ghost count %d exceeds bound", i, g)
		}
	}
}

// TestLIRSLoopBeatsLRU demonstrates LIRS's defining advantage: on a loop
// slightly larger than the buffer LRU gets ~0% hits while LIRS retains most
// of the loop (this is Figure 1 territory of the LIRS paper and the kind of
// hit-ratio advantage BP-Wrapper exists to preserve).
func TestLIRSLoopBeatsLRU(t *testing.T) {
	const capacity, span, length = 100, 110, 50000
	trace := loopTrace(length, span)

	lru := NewLRU(capacity)
	lruHits := simulate(t, lru, trace)

	lirs := NewLIRS(capacity)
	lirsHits := simulate(t, lirs, trace)

	if lruHits > length/50 {
		t.Fatalf("LRU got %d hits on a pathological loop; expected ~0", lruHits)
	}
	if lirsHits < length/2 {
		t.Fatalf("LIRS got only %d/%d hits on the loop; expected most of it", lirsHits, length)
	}
}

// TestARCBounds checks the Megiddo–Modha directory invariants.
func TestARCBounds(t *testing.T) {
	const c = 32
	p := NewARC(c)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		id := tid(r.Uint64() % 120)
		if p.Contains(id) {
			p.Hit(id)
		} else {
			p.Admit(id)
		}
		t1, t2, b1, b2 := p.ListLengths()
		if t1+t2 > c {
			t.Fatalf("step %d: |T1|+|T2| = %d > c", i, t1+t2)
		}
		if t1+b1 > c {
			t.Fatalf("step %d: |T1|+|B1| = %d > c", i, t1+b1)
		}
		if t1+t2+b1+b2 > 2*c {
			t.Fatalf("step %d: directory size %d > 2c", i, t1+t2+b1+b2)
		}
		if p.Target() < 0 || p.Target() > c {
			t.Fatalf("step %d: p = %d out of [0, c]", i, p.Target())
		}
	}
}

// TestARCHitPromotes checks a second access moves a page from T1 to T2.
func TestARCHitPromotes(t *testing.T) {
	p := NewARC(4)
	p.Admit(tid(1))
	t1, t2, _, _ := p.ListLengths()
	if t1 != 1 || t2 != 0 {
		t.Fatalf("after admit: t1=%d t2=%d", t1, t2)
	}
	p.Hit(tid(1))
	t1, t2, _, _ = p.ListLengths()
	if t1 != 0 || t2 != 1 {
		t.Fatalf("after hit: t1=%d t2=%d (want promotion to T2)", t1, t2)
	}
}

// TestCARBounds checks CAR's equivalents of the ARC invariants.
func TestCARBounds(t *testing.T) {
	const c = 32
	p := NewCAR(c)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 100000; i++ {
		id := tid(r.Uint64() % 120)
		if p.Contains(id) {
			p.Hit(id)
		} else {
			p.Admit(id)
		}
		t1, t2, b1, b2 := p.ListLengths()
		if t1+t2 > c {
			t.Fatalf("step %d: |T1|+|T2| = %d > c", i, t1+t2)
		}
		if t1+t2+b1+b2 > 2*c+1 {
			t.Fatalf("step %d: directory size %d > 2c", i, t1+t2+b1+b2)
		}
		if p.Target() < 0 || p.Target() > c {
			t.Fatalf("step %d: p = %d out of range", i, p.Target())
		}
	}
}

// TestClockProCounts checks resident and non-resident metadata bounds.
func TestClockProCounts(t *testing.T) {
	const c = 32
	p := NewClockPro(c)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		id := tid(r.Uint64() % 120)
		if p.Contains(id) {
			p.Hit(id)
		} else {
			p.Admit(id)
		}
		hot, cold, nr := p.Counts()
		if hot+cold > c {
			t.Fatalf("step %d: resident %d > capacity", i, hot+cold)
		}
		if nr > c+1 {
			t.Fatalf("step %d: non-resident %d > capacity bound", i, nr)
		}
	}
}

// TestMQFrequencyPromotion checks that frequently accessed pages climb
// queues and survive eviction pressure from one-shot pages.
func TestMQFrequencyPromotion(t *testing.T) {
	p := NewMQTuned(8, 4, 1000, 8)
	hot := tid(1)
	p.Admit(hot)
	for i := 0; i < 20; i++ {
		p.Hit(hot)
	}
	// Flood with one-shot pages; the hot page must survive.
	for i := uint64(100); i < 140; i++ {
		p.Admit(tid(i))
	}
	if !p.Contains(hot) {
		t.Fatal("frequently accessed page evicted by one-shot flood")
	}
}

// TestMQGhostFrequencyRestore checks Qout remembers frequency: a page
// re-admitted after eviction re-enters a high queue and outlives colder
// pages.
func TestMQGhostFrequencyRestore(t *testing.T) {
	p := NewMQTuned(4, 4, 10000, 16)
	hot := tid(1)
	p.Admit(hot)
	for i := 0; i < 20; i++ {
		p.Hit(hot)
	}
	// Force hot out (it is the only high-queue page; flood evicts the
	// lowest queue first, so fill with pages and then hit them to raise
	// them, starving queue 0... simpler: evict explicitly).
	for p.Contains(hot) {
		p.Evict()
	}
	// Ghost hit: frequency restored.
	p.Admit(hot)
	// Admit cold pages; hot must outlive them all.
	for i := uint64(100); i < 106; i++ {
		if !p.Contains(tid(i)) {
			p.Admit(tid(i))
		}
	}
	if !p.Contains(hot) {
		t.Fatal("ghost-restored page evicted before cold newcomers")
	}
}

// TestAdvancedBeatClockOnLoop checks the hit-ratio ordering the paper's
// Figure 8 depends on: on LRU-hostile traces the advanced algorithms beat
// the clock approximation.
func TestAdvancedBeatClockOnLoop(t *testing.T) {
	const capacity, span, length = 128, 160, 60000
	trace := loopTrace(length, span)
	hits := func(name string) int {
		p, _ := New(name, capacity)
		return simulate(t, p, trace)
	}
	clock := hits("clock")
	for _, adv := range []string{"lirs", "2q"} {
		if h := hits(adv); h <= clock+length/20 {
			t.Errorf("%s hits %d not clearly above clock %d on loop trace", adv, h, clock)
		}
	}
}
