package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"bpwrapper/internal/page"
)

// Client is one connection to a bpserver. It mirrors the pool's session
// contract: not safe for concurrent use — one client per worker — so the
// pipelining machinery needs no locks and the server can map the
// connection onto a single buffer.Session.
type Client struct {
	nc    net.Conn
	bw    *bufio.Writer
	fr    frameReader
	next  uint64 // next request ID
	wbuf  []byte // reused request-encoding buffer
	trace uint64 // trace ID attached to outgoing requests; 0 = untraced
}

// SetTraceID attaches a trace ID to every subsequent request (via the
// protocol's trace-context extension) until changed; zero clears it. The
// server adopts the ID for the request's pool access, so the client's
// trace and the server-side spans share one identity end to end.
func (c *Client) SetTraceID(id uint64) { c.trace = id }

// appendReq encodes one request frame, injecting the trace-context
// extension when a trace ID is set.
func (c *Client) appendReq(dst []byte, code byte, reqID uint64, payload ...[]byte) []byte {
	if c.trace == 0 {
		return appendFrame(dst, code, reqID, payload...)
	}
	var tb [8]byte
	be.PutUint64(tb[:], c.trace)
	parts := append(make([][]byte, 0, len(payload)+1), tb[:])
	return appendFrame(dst, code|TraceFlag, reqID, append(parts, payload...)...)
}

// Dial connects to a bpserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		nc: nc,
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	c.fr.r = bufio.NewReaderSize(nc, 32<<10)
	return c, nil
}

// Close hangs up. In-flight pipelined requests are abandoned.
func (c *Client) Close() error { return c.nc.Close() }

// roundTrip sends one request and reads its response, verifying the
// echoed ID. The returned payload aliases the reader's buffer: valid
// until the next call.
func (c *Client) roundTrip(code byte, payload ...[]byte) (status byte, resp []byte, err error) {
	id := c.next
	c.next++
	c.wbuf = c.appendReq(c.wbuf[:0], code, id, payload...)
	if _, err = c.bw.Write(c.wbuf); err != nil {
		return 0, nil, err
	}
	if err = c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	status, gotID, resp, err := c.fr.next()
	if err != nil {
		return 0, nil, err
	}
	if gotID != id {
		return 0, nil, fmt.Errorf("client: response ID %d for request %d (stream desynced)", gotID, id)
	}
	return status, resp, nil
}

// Get fetches page id. The returned bytes alias the client's read buffer
// and are valid only until the next call; copy to retain.
func (c *Client) Get(id page.PageID) ([]byte, error) {
	var pid [8]byte
	be.PutUint64(pid[:], uint64(id))
	status, resp, err := c.roundTrip(OpGet, pid[:])
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, errForStatus(status, resp)
	}
	if len(resp) != page.Size {
		return nil, fmt.Errorf("client: GET returned %d bytes, want %d", len(resp), page.Size)
	}
	return resp, nil
}

// Put overwrites page id with data (exactly page.Size bytes) and marks
// it dirty. A nil return means the server applied and acknowledged the
// write: it is resident-dirty there and a graceful drain will flush it.
func (c *Client) Put(id page.PageID, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("client: PUT data must be %d bytes, got %d", page.Size, len(data))
	}
	var pid [8]byte
	be.PutUint64(pid[:], uint64(id))
	status, resp, err := c.roundTrip(OpPut, pid[:], data)
	if err != nil {
		return err
	}
	return errForStatus(status, resp)
}

// Invalidate drops page id server-side, discarding dirty contents.
func (c *Client) Invalidate(id page.PageID) error {
	var pid [8]byte
	be.PutUint64(pid[:], uint64(id))
	status, resp, err := c.roundTrip(OpInvalidate, pid[:])
	if err != nil {
		return err
	}
	return errForStatus(status, resp)
}

// Flush asks the server to write every dirty page back, returning the
// number made durable.
func (c *Client) Flush() (int, error) {
	status, resp, err := c.roundTrip(OpFlush)
	if err != nil {
		return 0, err
	}
	if status != StatusOK {
		return 0, errForStatus(status, resp)
	}
	if len(resp) != 8 {
		return 0, fmt.Errorf("client: FLUSH returned %d bytes, want 8", len(resp))
	}
	return int(be.Uint64(resp)), nil
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats() (RemoteStats, error) {
	var rs RemoteStats
	status, resp, err := c.roundTrip(OpStats)
	if err != nil {
		return rs, err
	}
	if status != StatusOK {
		return rs, errForStatus(status, resp)
	}
	if err := json.Unmarshal(resp, &rs); err != nil {
		return rs, fmt.Errorf("client: STATS payload: %w", err)
	}
	return rs, nil
}

// Op is one operation in a pipelined batch.
type Op struct {
	Code byte
	Page page.PageID
	Data []byte // PUT page bytes; ignored for other ops
}

// OpResult is one pipelined operation's outcome. Data is an owned copy
// of a successful GET's page (batch results outlive the read buffer).
type OpResult struct {
	Status byte
	Err    error
	Data   []byte
}

// Do sends a batch of operations in one write — the client half of the
// server's batched decode: the whole burst lands in one (or few) kernel
// reads, is served as one batch through the connection's session, and
// comes back under one response flush. Results are positional. A
// transport error fails the whole batch; per-op failures (shed misses,
// invalid pages) land in their slot's Err.
func (c *Client) Do(ops []Op) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	base := c.next
	c.next += uint64(len(ops))
	buf := c.wbuf[:0]
	var pid [8]byte
	for i, op := range ops {
		be.PutUint64(pid[:], uint64(op.Page))
		switch op.Code {
		case OpPut:
			if len(op.Data) != page.Size {
				return nil, fmt.Errorf("client: Do[%d]: PUT data must be %d bytes", i, page.Size)
			}
			buf = c.appendReq(buf, OpPut, base+uint64(i), pid[:], op.Data)
		case OpFlush, OpStats:
			buf = c.appendReq(buf, op.Code, base+uint64(i))
		default:
			buf = c.appendReq(buf, op.Code, base+uint64(i), pid[:])
		}
	}
	c.wbuf = buf
	if _, err := c.bw.Write(buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make([]OpResult, len(ops))
	for i := range ops {
		status, gotID, resp, err := c.fr.next()
		if err != nil {
			return nil, fmt.Errorf("client: Do[%d]: %w", i, err)
		}
		if gotID != base+uint64(i) {
			return nil, fmt.Errorf("client: Do[%d]: response ID %d, want %d (stream desynced)", i, gotID, base+uint64(i))
		}
		out[i].Status = status
		if status != StatusOK {
			out[i].Err = errForStatus(status, resp)
			continue
		}
		if ops[i].Code == OpGet {
			out[i].Data = append([]byte(nil), resp...)
		}
	}
	return out, nil
}
