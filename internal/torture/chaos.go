// Chaos scenarios: targeted fault campaigns against the full resilience
// stack — Breaker(Deadline(Retry(Checksum(Fault(mem))))) per shard — that
// check the graceful-degradation contract end to end rather than the
// statistical churn RunPool applies. Each scenario sickens exactly one
// shard and asserts the blast radius: the sick shard degrades (misses
// shed fast with buffer.ErrOverloaded, resident pages keep serving, dirty
// data parks losslessly), every other shard stays Healthy, and after the
// fault lifts the pool recovers and the zero-lost-dirty-page oracle holds
// against the raw memory device.
package torture

import (
	"errors"
	"fmt"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// ChaosScenario names one fault campaign.
type ChaosScenario string

const (
	// ChaosBrownout: the sick shard's device stays up but every operation
	// takes longer than the breaker's latency SLO; the breaker must trip
	// on slowness alone.
	ChaosBrownout ChaosScenario = "brownout"

	// ChaosHardDown: every device operation on the sick shard fails
	// instantly; the breaker trips on error rate.
	ChaosHardDown ChaosScenario = "harddown"

	// ChaosStuckWrite: writes on the sick shard hang far past the write
	// deadline; the deadline layer abandons them, write-backs park in the
	// quarantine, and shutdown stays prompt and lossless.
	ChaosStuckWrite ChaosScenario = "stuckwrite"

	// ChaosRecovery: a hard-down episode followed by healing; half-open
	// probes must re-close the breaker and the shard must return to
	// Healthy with shedding stopped.
	ChaosRecovery ChaosScenario = "recovery"
)

// ChaosConfig shapes one scenario run.
type ChaosConfig struct {
	Scenario ChaosScenario
	Seed     int64
	Shards   int // hash partitions; 0 means 2 (one sick, the rest healthy)
	Frames   int // pool frames; 0 means 8 per shard
	HotSet   int // resident pages per shard; 0 means a quarter of the shard's frames
}

// ChaosReport summarizes what the scenario observed.
type ChaosReport struct {
	Scenario         ChaosScenario
	SickShard        int
	PeakHealth       buffer.HealthState // worst sick-shard health observed
	Shed             int64              // sick-shard misses refused with ErrOverloaded
	BreakerTrips     int64
	DeadlineTimeouts int64
	ResidentReads    int64         // hot-set reads served during the fault window
	HealthyMisses    int64         // cold misses served by healthy shards during the window
	MaxShedMicros    int64         // slowest shed, µs — the "fail fast" budget check
	CloseBounded     time.Duration // stuckwrite only: elapsed inside the bounded CloseWithin
}

// chaosStack is the per-shard resilience stack and the knobs the
// scenarios turn.
type chaosStack struct {
	fault    *storage.FaultDevice
	deadline *storage.DeadlineDevice
	breaker  *storage.BreakerDevice
}

const (
	chaosSLO           = 10 * time.Millisecond
	chaosReadDeadline  = 80 * time.Millisecond
	chaosWriteDeadline = 25 * time.Millisecond
	chaosOpenTimeout   = 150 * time.Millisecond
)

// buildChaosPool assembles the sharded pool with one full resilience
// stack per shard and preloads nothing: page content is seeded directly
// into the raw memory device so the breaker windows start empty.
func buildChaosPool(cfg ChaosConfig) (*buffer.Pool, *storage.MemDevice, []chaosStack) {
	mem := storage.NewMemDevice()
	stacks := make([]chaosStack, cfg.Shards)
	p := buffer.New(buffer.Config{
		Frames:        cfg.Frames,
		Shards:        cfg.Shards,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Device:        mem,
		QuarantineCap: 2 * cfg.Shards, // small: quarantine pressure is a scenario signal
		WrapShardDevice: func(shard int, base storage.Device) storage.Device {
			st := &stacks[shard]
			st.fault = storage.NewFaultDevice(base, storage.FaultConfig{Seed: cfg.Seed + int64(shard)})
			retry := storage.NewRetryDevice(storage.NewChecksumDevice(st.fault), storage.RetryConfig{
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				Seed:        cfg.Seed,
			})
			st.deadline = storage.NewDeadlineDevice(retry, storage.DeadlineConfig{
				ReadDeadline:  chaosReadDeadline,
				WriteDeadline: chaosWriteDeadline,
			})
			st.breaker = storage.NewBreakerDevice(st.deadline, storage.BreakerConfig{
				Window:         16,
				MinSamples:     4,
				LatencySLO:     chaosSLO,
				OpenTimeout:    chaosOpenTimeout,
				ProbeProb:      1, // deterministic: every half-open op probes
				HalfOpenProbes: 2,
				Seed:           cfg.Seed,
			})
			return st.breaker
		},
	})
	return p, mem, stacks
}

// chaosIDs partitions page ids by owning shard: ids[s] lists pages routed
// to shard s, generated until every shard has n.
func chaosIDs(p *buffer.Pool, shards, n int) [][]page.PageID {
	ids := make([][]page.PageID, shards)
	for b := uint64(0); ; b++ {
		id := page.NewPageID(tortureTable, b)
		s := p.ShardOf(id)
		if len(ids[s]) < n {
			ids[s] = append(ids[s], id)
		}
		full := true
		for _, l := range ids {
			if len(l) < n {
				full = false
				break
			}
		}
		if full {
			return ids
		}
	}
}

// RunChaos executes one scenario. Every oracle failure carries the seed
// and the pool's flight-recorder dump.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Scenario == "" {
		cfg.Scenario = ChaosHardDown
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 8 * cfg.Shards
	}
	framesPerShard := cfg.Frames / cfg.Shards
	if cfg.HotSet <= 0 {
		cfg.HotSet = framesPerShard / 4
	}
	if cfg.HotSet >= framesPerShard {
		return nil, fmt.Errorf("chaos seed %d: hot set %d must leave free frames in a %d-frame shard (free frames absorb failing misses without evicting)",
			cfg.Seed, cfg.HotSet, framesPerShard)
	}

	pool, mem, stacks := buildChaosPool(cfg)
	rep := &ChaosReport{Scenario: cfg.Scenario, SickShard: 0}
	fail := func(format string, args ...any) error {
		err := fmt.Errorf("chaos %s seed %d: "+format, append([]any{cfg.Scenario, cfg.Seed}, args...)...)
		if dump := pool.FlightDump(); dump != "" {
			err = fmt.Errorf("%w\n%s", err, dump)
		}
		return err
	}

	// Seed content directly into the raw device (below every wrapper) so
	// the breaker windows start clean, then load each shard's hot set and
	// dirty it to version 1. The shadow map tracks the last version
	// written per page for the end oracle.
	perShard := framesPerShard + 2 // hot set + cold ids used to provoke misses
	ids := chaosIDs(pool, cfg.Shards, perShard)
	versions := map[page.PageID]int{}
	for _, l := range ids {
		for _, id := range l {
			var pg page.Page
			pg.Stamp(stampID(int(id.Block()), 0))
			pg.ID = id
			if err := mem.WritePage(&pg); err != nil {
				return nil, fail("device preload: %v", err)
			}
			versions[id] = 0
		}
	}
	ses := pool.NewSession()
	writeVersion := func(id page.PageID, v int) error {
		ref, err := pool.GetWrite(ses, id)
		if err != nil {
			return err
		}
		var pg page.Page
		pg.Stamp(stampID(int(id.Block()), v))
		copy(ref.Data(), pg.Data[:])
		ref.MarkDirty()
		ref.Release()
		versions[id] = v
		return nil
	}
	for s := 0; s < cfg.Shards; s++ {
		for _, id := range ids[s][:cfg.HotSet] {
			if err := writeVersion(id, 1); err != nil {
				return nil, fail("hot-set load shard %d: %v", s, err)
			}
		}
	}

	sick := &stacks[0]
	cold := func(s, i int) page.PageID { return ids[s][cfg.HotSet+i%(perShard-cfg.HotSet)] }

	// observe folds one sick-shard health sample into the report.
	observe := func() buffer.HealthState {
		h := pool.Stats().PerShard[0].Health
		if h > rep.PeakHealth {
			rep.PeakHealth = h
		}
		return h
	}

	// inject arms the scenario's fault on the sick shard.
	switch cfg.Scenario {
	case ChaosBrownout:
		sick.fault.SetSpike(1, 3*chaosSLO)
	case ChaosHardDown, ChaosRecovery:
		sick.fault.SetReadFailRate(1)
		sick.fault.SetWriteFailRate(1)
	case ChaosStuckWrite:
		sick.fault.SetSpikeWriteOnly(true)
		sick.fault.SetSpike(1, 10*chaosWriteDeadline)
	default:
		return nil, fmt.Errorf("chaos: unknown scenario %q", cfg.Scenario)
	}
	heal := func() {
		sick.fault.SetReadFailRate(0)
		sick.fault.SetWriteFailRate(0)
		sick.fault.SetSpike(0, 0)
		sick.fault.SetSpikeWriteOnly(false)
	}

	// Phase 1 — trip: drive sick-shard misses until the breaker opens.
	// Failing loads draw frames from the free list and return them, so
	// the hot set's residency is never disturbed. Stuck writes trip
	// through eviction write-backs instead: dirty the shard's free-frame
	// pages and churn misses so dirty evictions hit the hung device.
	if cfg.Scenario == ChaosStuckWrite {
		// Dirty exactly the shard's free frames — no evictions, so the hot
		// set stays resident and every hung write comes from FlushDirty.
		for i := 0; i < framesPerShard-cfg.HotSet; i++ {
			if err := writeVersion(cold(0, i), 1); err != nil {
				return nil, fail("cold dirty load: %v", err)
			}
		}
		// FlushDirty pushes every dirty page into the hung device; the
		// deadline abandons each write, so this returns (with an error)
		// instead of hanging, and repeated rounds feed the breaker.
		for i := 0; i < 6 && sick.breaker.State() == storage.BreakerClosed; i++ {
			pool.FlushDirty() // errors expected: deadline-abandoned writes
			observe()
		}
		if sick.deadline.Timeouts() == 0 {
			return nil, fail("no write was abandoned at its deadline against a hung device")
		}
	} else {
		for i := 0; i < 4*16 && sick.breaker.State() == storage.BreakerClosed; i++ {
			ref, err := pool.Get(ses, cold(0, i))
			if err == nil {
				ref.Release() // pre-trip op may still succeed (brownout: slow, not failed)
			}
			observe()
		}
	}
	if st := sick.breaker.State(); st == storage.BreakerClosed {
		return nil, fail("breaker never left closed; trips=%d", sick.breaker.BreakerStats().Trips)
	}
	rep.BreakerTrips = sick.breaker.BreakerStats().Trips
	rep.DeadlineTimeouts = sick.deadline.Timeouts()

	// Phase 2 — degraded window: the contract assertions.
	if h := observe(); h == buffer.Healthy {
		return nil, fail("sick shard reports Healthy with its breaker tripped")
	}
	// (a) Sick-shard misses shed fast with ErrOverloaded.
	shedBefore := pool.Stats().Shed
	for i := 0; i < 8; i++ {
		start := time.Now()
		ref, err := pool.Get(ses, cold(0, i))
		lat := time.Since(start)
		if err == nil {
			ref.Release() // Degraded admits a bounded few; only ReadOnly sheds all
			continue
		}
		if !errors.Is(err, buffer.ErrOverloaded) {
			if cfg.Scenario == ChaosStuckWrite || storage.Retryable(err) ||
				errors.Is(err, storage.ErrDeadlineExceeded) || errors.Is(err, storage.ErrBreakerOpen) {
				continue // half-open probe that failed; still within contract
			}
			return nil, fail("sick-shard miss returned %v, want ErrOverloaded or a fast device error", err)
		}
		if us := lat.Microseconds(); us > rep.MaxShedMicros {
			rep.MaxShedMicros = us
		}
		if lat > chaosReadDeadline {
			return nil, fail("shed miss took %v, past the %v deadline budget — sheds must not queue", lat, chaosReadDeadline)
		}
	}
	rep.Shed = pool.Stats().Shed - shedBefore
	if cfg.Scenario != ChaosStuckWrite && rep.Shed == 0 {
		return nil, fail("no sick-shard miss was shed while the breaker was open")
	}
	// (b) Resident pages keep serving on every shard, sick included.
	for s := 0; s < cfg.Shards; s++ {
		for _, id := range ids[s][:cfg.HotSet] {
			ref, err := pool.Get(ses, id)
			if err != nil {
				return nil, fail("resident Get(%v) on shard %d failed during the fault: %v", id, s, err)
			}
			var got page.Page
			copy(got.Data[:], ref.Data())
			ref.Release()
			if !got.VerifyStamp(stampID(int(id.Block()), versions[id])) {
				return nil, fail("resident page %v served wrong content during the fault", id)
			}
			rep.ResidentReads++
		}
	}
	// (c) Resident writes on the sick shard still work (data is safe in
	// memory; the quarantine protocol keeps eviction lossless).
	for _, id := range ids[0][:cfg.HotSet] {
		if err := writeVersion(id, versions[id]+1); err != nil {
			return nil, fail("resident write on sick shard: %v", err)
		}
	}
	// (d) Healthy shards are untouched: misses flow, health stays Healthy.
	for s := 1; s < cfg.Shards; s++ {
		for i := 0; i < perShard-cfg.HotSet; i++ {
			ref, err := pool.Get(ses, cold(s, i))
			if err != nil {
				return nil, fail("healthy shard %d miss failed during the fault: %v", s, err)
			}
			ref.Release()
			rep.HealthyMisses++
		}
		if h := pool.Stats().PerShard[s].Health; h != buffer.Healthy {
			return nil, fail("healthy shard %d degraded to %v — blast radius leaked", s, h)
		}
	}
	// (e) Stuck writes: shutdown must be promptly bounded, and give up
	// without losing anything.
	if cfg.Scenario == ChaosStuckWrite {
		start := time.Now()
		err := pool.CloseWithin(50 * time.Millisecond)
		rep.CloseBounded = time.Since(start)
		if err == nil {
			return nil, fail("CloseWithin succeeded against a hung device")
		}
		if rep.CloseBounded > 2*time.Second {
			return nil, fail("CloseWithin(50ms) took %v against a hung device", rep.CloseBounded)
		}
	}

	// Phase 3 — heal and recover. The open timeout lapses, probes close
	// the circuit, and the shard walks back to Healthy.
	heal()
	wait := chaosOpenTimeout + 20*time.Millisecond
	if cfg.Scenario == ChaosStuckWrite {
		// Abandoned writes are still sleeping out the injected spike while
		// holding their per-page stripe locks; let them land (they carry
		// older content, ordered before any fresh write by the stripe)
		// before shutdown writes queue behind them under a tight deadline.
		wait += 10 * chaosWriteDeadline
	}
	time.Sleep(wait)
	if cfg.Scenario == ChaosRecovery {
		deadline := time.Now().Add(5 * time.Second)
		for sick.breaker.State() != storage.BreakerClosed {
			if time.Now().After(deadline) {
				return nil, fail("breaker never re-closed after healing (state %v)", sick.breaker.State())
			}
			if ref, err := pool.Get(ses, cold(0, int(time.Now().UnixNano())%4)); err == nil {
				ref.Release()
			}
		}
		if h := observe(); h != buffer.Healthy {
			return nil, fail("sick shard health=%v after breaker re-closed, want Healthy", h)
		}
		// Shedding must stop once healthy.
		shedAt := pool.Stats().Shed
		for i := 0; i < perShard-cfg.HotSet; i++ {
			ref, err := pool.Get(ses, cold(0, i))
			if err != nil {
				return nil, fail("post-recovery miss failed: %v", err)
			}
			ref.Release()
		}
		if d := pool.Stats().Shed - shedAt; d != 0 {
			return nil, fail("%d misses shed after full recovery", d)
		}
	}

	// Phase 4 — the zero-lost-dirty-page oracle: Close drains everything
	// (frames and quarantine) and the raw device must hold the last
	// version written to every page, fault campaign notwithstanding.
	if err := pool.Close(); err != nil {
		return nil, fail("Close after healing: %v", err)
	}
	for id, v := range versions {
		var pg page.Page
		if err := mem.ReadPage(id, &pg); err != nil {
			return nil, fail("post-close read of %v: %v", id, err)
		}
		if !pg.VerifyStamp(stampID(int(id.Block()), v)) {
			return nil, fail("page %v: device does not hold last written version %d — dirty page lost", id, v)
		}
	}
	return rep, nil
}
