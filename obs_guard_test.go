// The observability overhead guard: the flight recorder, lock profiling,
// and commit-shape distributions must stay off the per-access critical
// path. BenchmarkWrapperHitObs isolates the recorder's tax on the bare
// wrapper loop; TestObsOverheadGuard enforces the ≤3% budget on the
// system fast path (pool.Get) when explicitly asked to — timing
// assertions are opt-in so ordinary `go test ./...` stays
// machine-independent.
package bpwrapper_test

import (
	"math"
	"os"
	"strconv"
	"testing"

	"bpwrapper"
)

// obsGuardIDs is the hot set both guard variants cycle through.
func obsGuardIDs() []bpwrapper.PageID {
	ids := make([]bpwrapper.PageID, 1024)
	for i := range ids {
		ids[i] = bpwrapper.NewPageID(1, uint64(i))
	}
	return ids
}

// obsHitLoop drives the bare batched wrapper hit path — the narrowest
// loop the recorder sits on — with an optional flight recorder.
func obsHitLoop(b *testing.B, rec *bpwrapper.Recorder) {
	p, ok := bpwrapper.NewPolicy("2q", 1024)
	if !ok {
		b.Fatal("2q policy not registered")
	}
	w := bpwrapper.NewWrapper(p, bpwrapper.WrapperConfig{Batching: true, Events: rec})
	ids := obsGuardIDs()
	for _, id := range ids {
		p.Admit(id)
	}
	s := w.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%1024]
		s.Hit(id, bpwrapper.BufferTag{Page: id})
	}
	b.StopTimer()
	s.Flush()
}

// obsGuardPool builds the fully cached batched pool the guard loops
// over: observability off entirely, on (per-shard flight recorders plus
// a registered exposition registry, exactly what `-obs` enables in
// bpbench/bpload), or on with request tracing armed at the production
// default sampling rate.
func obsGuardPool(tb testing.TB, obsOn, traceOn bool) (*bpwrapper.Pool, *bpwrapper.PoolSession, []bpwrapper.PageID) {
	policy, ok := bpwrapper.NewPolicy("2q", 1024)
	if !ok {
		tb.Fatal("2q policy not registered")
	}
	cfg := bpwrapper.PoolConfig{
		Frames:  1024,
		Policy:  policy,
		Wrapper: bpwrapper.WrapperConfig{Batching: true},
		Device:  bpwrapper.NewMemDevice(),
	}
	if obsOn {
		cfg.RecorderSize = 4096
	}
	if traceOn {
		cfg.Trace = bpwrapper.TraceConfig{Enable: true}
	}
	pool := bpwrapper.NewPool(cfg)
	if obsOn {
		pool.RegisterObs(bpwrapper.NewObsRegistry())
	}
	ids := obsGuardIDs()
	if err := pool.Prewarm(ids); err != nil {
		tb.Fatal(err)
	}
	return pool, pool.NewSession(), ids
}

// obsGetLoop drives the system fast path — pool.Get on a fully cached
// batched pool — under one of the observability configurations above.
func obsGetLoop(b *testing.B, obsOn, traceOn bool) {
	pool, s, ids := obsGuardPool(b, obsOn, traceOn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := pool.Get(s, ids[i%1024])
		if err != nil {
			b.Fatal(err)
		}
		ref.Release()
	}
	b.StopTimer()
	s.Flush()
}

// BenchmarkWrapperHitObs measures the recorder's tax on the bare batched
// hit path: flight recorder attached vs detached. Lock profiling and the
// batch-size distribution are on in both cases — they are the production
// default — so the delta isolates the recorder's ring writes.
func BenchmarkWrapperHitObs(b *testing.B) {
	b.Run("recorder-off", func(b *testing.B) { obsHitLoop(b, nil) })
	b.Run("recorder-on", func(b *testing.B) { obsHitLoop(b, bpwrapper.NewRecorder(4096)) })
}

// BenchmarkPoolGetObs measures the same comparison on the system fast
// path, the quantity the guard below enforces — plus the tracing-armed
// variant, whose untraced iterations pay only a sampling-counter
// decrement.
func BenchmarkPoolGetObs(b *testing.B) {
	b.Run("obs-off", func(b *testing.B) { obsGetLoop(b, false, false) })
	b.Run("obs-on", func(b *testing.B) { obsGetLoop(b, true, false) })
	b.Run("trace-on", func(b *testing.B) { obsGetLoop(b, true, true) })
}

// TestObsOverheadGuard asserts the obs-on pool.Get path is within the
// observability budget of the obs-off path. Timing-based, so it only
// runs when BPW_OBS_GUARD=1 (CI sets it in the bench-smoke job); the
// budget defaults to 3% and can be widened with BPW_OBS_GUARD_PCT for
// noisy hosts.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("BPW_OBS_GUARD") == "" {
		t.Skip("timing guard; set BPW_OBS_GUARD=1 to run")
	}
	pct := 3.0
	if s := os.Getenv("BPW_OBS_GUARD_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BPW_OBS_GUARD_PCT: %v", err)
		}
		pct = v
	}

	// Best-of-N per variant to shed scheduler and frequency-scaling
	// noise: the minimum is the cleanest estimate of the true cost of a
	// tight uncontended loop.
	const rounds = 7
	best := func(obsOn, traceOn bool) float64 {
		min := math.MaxFloat64
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(func(b *testing.B) { obsGetLoop(b, obsOn, traceOn) })
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < min {
				min = ns
			}
		}
		return min
	}
	off := best(false, false)
	on := best(true, false)
	traced := best(true, true)

	overhead := (on - off) / off * 100
	t.Logf("pool.Get: obs-off %.2f ns/op, obs-on %.2f ns/op, overhead %.2f%% (budget %.1f%%)", off, on, overhead, pct)
	if on > off*(1+pct/100) {
		t.Errorf("observability overhead %.2f%% exceeds %.1f%% budget", overhead, pct)
	}
	tOverhead := (traced - off) / off * 100
	t.Logf("pool.Get: trace-on %.2f ns/op, overhead %.2f%% (budget %.1f%%)", traced, tOverhead, pct)
	if traced > off*(1+pct/100) {
		t.Errorf("tracing overhead %.2f%% exceeds %.1f%% budget", tOverhead, pct)
	}
}

// TestTraceHitPathZeroAlloc pins the tracing layer's untraced fast path
// at zero allocations: with tracing armed but the sampler set so no
// request in the loop is selected, a resident pool.Get must not allocate.
// Unlike the timing guard this is deterministic, so it always runs.
func TestTraceHitPathZeroAlloc(t *testing.T) {
	policy, ok := bpwrapper.NewPolicy("2q", 1024)
	if !ok {
		t.Fatal("2q policy not registered")
	}
	pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
		Frames:  1024,
		Policy:  policy,
		Wrapper: bpwrapper.WrapperConfig{Batching: true},
		Device:  bpwrapper.NewMemDevice(),
		// A sampling interval far beyond the loop below: tracing is live
		// but every one of these requests goes untraced.
		Trace: bpwrapper.TraceConfig{Enable: true, SampleEvery: 1 << 30},
	})
	ids := obsGuardIDs()
	if err := pool.Prewarm(ids); err != nil {
		t.Fatal(err)
	}
	s := pool.NewSession()
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		ref, err := pool.Get(s, ids[i%1024])
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
		i++
	})
	s.Flush()
	if allocs != 0 {
		t.Errorf("untraced resident Get allocates %.1f times per op, want 0", allocs)
	}
}
