package torture

import (
	"testing"

	"bpwrapper/internal/buffer"
)

// runChaos is the shared driver: run the scenario, fail with the full
// report (which carries the seed and flight dump) on any oracle
// violation.
func runChaos(t *testing.T, sc ChaosScenario) *ChaosReport {
	t.Helper()
	rep, err := RunChaos(ChaosConfig{Scenario: sc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChaosBrownout: latency above the SLO — with zero errors — must trip
// the breaker and degrade the shard.
func TestChaosBrownout(t *testing.T) {
	rep := runChaos(t, ChaosBrownout)
	if rep.BreakerTrips == 0 {
		t.Fatalf("no breaker trip on sustained SLO violation: %+v", rep)
	}
	if rep.PeakHealth == buffer.Healthy {
		t.Fatalf("shard never degraded under brownout: %+v", rep)
	}
	if rep.ResidentReads == 0 || rep.HealthyMisses == 0 {
		t.Fatalf("degraded-window service assertions never ran: %+v", rep)
	}
}

// TestChaosHardDown: a fully dead device must open the breaker, shed the
// shard's misses fast, and leave resident pages (all shards) serving.
func TestChaosHardDown(t *testing.T) {
	rep := runChaos(t, ChaosHardDown)
	if rep.BreakerTrips == 0 {
		t.Fatalf("no breaker trip on 100%% error rate: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("no miss was shed while the shard was down: %+v", rep)
	}
	if rep.PeakHealth != buffer.ReadOnly {
		t.Fatalf("peak health %v, want ReadOnly with the breaker open: %+v", rep.PeakHealth, rep)
	}
}

// TestChaosStuckWrite: writes that hang past their deadline must be
// abandoned (not waited out), park dirty data losslessly, and keep
// shutdown promptly bounded.
func TestChaosStuckWrite(t *testing.T) {
	rep := runChaos(t, ChaosStuckWrite)
	if rep.DeadlineTimeouts == 0 {
		t.Fatalf("no write abandoned at its deadline: %+v", rep)
	}
	if rep.CloseBounded <= 0 {
		t.Fatalf("bounded-close phase never ran: %+v", rep)
	}
}

// TestChaosRecovery: after the fault lifts, half-open probes must re-close
// the circuit and the shard must return to Healthy with shedding stopped
// (asserted inside RunChaos).
func TestChaosRecovery(t *testing.T) {
	rep := runChaos(t, ChaosRecovery)
	if rep.BreakerTrips == 0 || rep.Shed == 0 {
		t.Fatalf("recovery scenario never saw the outage: %+v", rep)
	}
}

// TestChaosSeeds sweeps a few seeds through the sharpest scenario so the
// assertions do not hinge on one lucky interleaving.
func TestChaosSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos sweep in -short mode")
	}
	for seed := int64(2); seed < 6; seed++ {
		if _, err := RunChaos(ChaosConfig{Scenario: ChaosHardDown, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
}
