// Package control closes the observation→actuation loop over a buffer
// pool: a controller goroutine consumes the pool's own telemetry (sampled
// access stream, windowed stats deltas, quarantine depth) and actuates the
// pool's runtime knobs — batch-threshold retuning, background write-back
// rate, replacement-policy hot-swap, and online resharding.
//
// Every decision is made in Step, which is deterministic given the pool's
// state: the goroutine merely calls Step on a ticker. Tests drive Step
// directly.
//
// The decision rules, in the order Step applies them:
//
//   - Policy hot-swap: shadow ghost caches (replacer.GhostScorer) replay
//     the pool's spatially-sampled access stream through every candidate
//     policy. When a challenger beats the incumbent's ghost score by
//     SwapMargin on SwapPatience consecutive steps, the pool's policy is
//     swapped in place (buffer.Pool.SwapPolicy).
//   - Resharding: sharding trades policy-lock contention against
//     replacement-history fragmentation (experiment E14). The controller
//     measures both sides: the incumbent's ghost score is an unsharded
//     simulation, so ghost-minus-actual hit ratio estimates what
//     fragmentation is costing, and lock wait per access measures what
//     contention is costing. A fragmentation gap above GapMargin shrinks
//     the topology (halving, floored at MinShards); lock wait above
//     WaitPerAccess grows it (doubling, capped at MaxShards) — but only
//     when per-shard load is reasonably balanced: a skewed shard means a
//     few hot pages, which more shards cannot spread (the hash pins a page
//     to one shard) while fragmenting everyone's history. Reshards are
//     separated by ReshardCooldown steps so each new topology's window is
//     measured before the next move.
//   - Batch threshold: forced (blocking) commits mean sessions fill their
//     queues before any TryLock lands — the threshold drops by a quarter
//     to start trying earlier. Windows with no forced commits let it climb
//     back toward the configured value.
//   - Write-back rate: quarantine depth above half the cap speeds the
//     background writer (quarter interval, quadruple burst) until the
//     quarantine drains, then restores the configured cadence.
package control

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// ActionKind classifies one actuation.
type ActionKind string

const (
	ActSwapPolicy   ActionKind = "swap-policy"
	ActReshardUp    ActionKind = "reshard-up"
	ActReshardDown  ActionKind = "reshard-down"
	ActThresholdCut ActionKind = "threshold-cut"
	ActThresholdUp  ActionKind = "threshold-raise"
	ActWriterFast   ActionKind = "bgwriter-fast"
	ActWriterRelax  ActionKind = "bgwriter-relax"
)

// actionKinds lists every kind, for zero-filled counter exposition.
var actionKinds = []ActionKind{
	ActSwapPolicy, ActReshardUp, ActReshardDown,
	ActThresholdCut, ActThresholdUp, ActWriterFast, ActWriterRelax,
}

// Action is one actuation taken by a Step, for logs and tests.
type Action struct {
	Kind   ActionKind
	Detail string
}

// Config tunes a Controller. The zero value of every optional field picks
// the documented default.
type Config struct {
	// Pool is the controlled pool. Required.
	Pool *buffer.Pool

	// Writer, when non-nil, lets the controller retune the background
	// write-back rate from quarantine depth.
	Writer *buffer.BackgroundWriter

	// Interval between Steps when running via Start. Default 500ms.
	Interval time.Duration

	// SampleRate is the spatial access-sampling rate fed to
	// Pool.EnableSampling: 1/SampleRate of the page-id space is shadowed.
	// Default 8. The ghost caches are sized Frames/SampleRate so they
	// emulate the full-size pool over the sampled slice.
	SampleRate int

	// RingSize is the sample ring capacity. Default 8192.
	RingSize int

	// Candidates are the policy names shadow-scored for hot-swap.
	// Default {"2q", "lirs", "clockpro"}. Unknown names are ignored.
	Candidates []string

	// GhostWindow is the scorer's decay period in sampled accesses (scores
	// halve every window, tracking the current phase). Default 4096.
	GhostWindow int64

	// SwapMargin and SwapPatience gate policy hot-swap: a challenger must
	// beat the incumbent's ghost score by SwapMargin on SwapPatience
	// consecutive steps. Defaults 0.05 and 3.
	SwapMargin   float64
	SwapPatience int

	// MinShards and MaxShards bound resharding. Defaults 1 and 8.
	MinShards, MaxShards int

	// ReshardCooldown is the number of Steps after a reshard during which
	// no further topology change is considered. Default 8.
	ReshardCooldown int

	// GapMargin is the ghost-vs-actual hit-ratio gap (fragmentation cost)
	// that triggers shrinking the topology. Default 0.02.
	GapMargin float64

	// WaitPerAccess is the policy-lock wait per access that triggers
	// growing the topology. Default 2µs.
	WaitPerAccess time.Duration

	// SkewLimit is the max-shard/mean access ratio above which growing is
	// suppressed (hot pages, not contention breadth). Default 3.0.
	SkewLimit float64

	// MinWindow is the minimum number of pool accesses a step's window
	// must contain before reshard/threshold decisions are made (tiny
	// windows are noise). Default 2048.
	MinWindow int64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 8
	}
	if c.RingSize <= 0 {
		c.RingSize = 8192
	}
	if len(c.Candidates) == 0 {
		c.Candidates = []string{"2q", "lirs", "clockpro"}
	}
	if c.GhostWindow == 0 {
		c.GhostWindow = 4096
	}
	if c.SwapMargin <= 0 {
		c.SwapMargin = 0.05
	}
	if c.SwapPatience <= 0 {
		c.SwapPatience = 3
	}
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 8
	}
	if c.MaxShards < c.MinShards {
		c.MaxShards = c.MinShards
	}
	if c.ReshardCooldown <= 0 {
		c.ReshardCooldown = 8
	}
	if c.GapMargin <= 0 {
		c.GapMargin = 0.02
	}
	if c.WaitPerAccess <= 0 {
		c.WaitPerAccess = 2 * time.Microsecond
	}
	if c.SkewLimit <= 0 {
		c.SkewLimit = 3.0
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 2048
	}
	return c
}

// Controller is the control loop. Step is single-threaded: either drive it
// from Start's goroutine or call it directly (tests), never both at once.
type Controller struct {
	cfg       Config
	pool      *buffer.Pool
	scorer    *replacer.GhostScorer
	factories map[string]replacer.Factory

	cursor uint64
	buf    []page.PageID

	last     buffer.Stats // previous step's snapshot, for windowed deltas
	hasLast  bool
	cooldown int

	// Background-writer base rate, remembered for relaxing after a fast
	// spell; fast tracks which mode the controller last commanded.
	baseInterval time.Duration
	baseBurst    int
	fast         bool

	// threshold is the controller's current override (0 = configured);
	// atomic because the obs collector reads it from scrape goroutines.
	threshold atomic.Int32

	// Exposition state (read by the obs collector from any goroutine).
	steps      atomic.Int64
	actions    map[ActionKind]*atomic.Int64
	mu         sync.Mutex
	lastAction Action
	scores     map[string]float64

	started  atomic.Bool
	stopOnce sync.Once
	doneOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// closeDone marks the control goroutine finished; safe to call from both
// the goroutine's exit and Stop-on-a-never-started controller.
func (c *Controller) closeDone() { c.doneOnce.Do(func() { close(c.done) }) }

// New builds a controller over cfg.Pool and enables the pool's access
// sampling at cfg.SampleRate. It does not start the loop; call Start, or
// drive Step directly.
func New(cfg Config) *Controller {
	if cfg.Pool == nil {
		panic("control: Config.Pool is required")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:       cfg,
		pool:      cfg.Pool,
		buf:       make([]page.PageID, 1024),
		factories: make(map[string]replacer.Factory),
		actions:   make(map[ActionKind]*atomic.Int64, len(actionKinds)),
		scores:    make(map[string]float64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, k := range actionKinds {
		c.actions[k] = new(atomic.Int64)
	}
	all := replacer.Factories()
	ghostCandidates := make(map[string]replacer.Factory)
	for _, name := range cfg.Candidates {
		if f, ok := all[name]; ok {
			c.factories[name] = f
			ghostCandidates[name] = f
		}
	}
	ghostCap := c.pool.Stats().Frames / cfg.SampleRate
	c.scorer = replacer.NewGhostScorer(ghostCap, ghostCandidates, cfg.GhostWindow)
	c.pool.EnableSampling(cfg.SampleRate, cfg.RingSize)
	if cfg.Writer != nil {
		c.baseInterval, c.baseBurst = cfg.Writer.Rate()
	}
	return c
}

// Start launches the control goroutine at the configured interval. Stop
// terminates it.
func (c *Controller) Start() {
	if c.started.Swap(true) {
		return
	}
	go func() {
		defer c.closeDone()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Step()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop terminates the control goroutine (idempotent; a controller that was
// never Started just closes its channels).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		if !c.started.Load() {
			// Start was never called: nothing will ever close done.
			c.closeDone()
		}
	})
	<-c.done
}

// Step runs one observe→decide→actuate cycle and reports the actions it
// took. It is deterministic given the pool's state and sample stream.
func (c *Controller) Step() []Action {
	c.steps.Add(1)
	c.drainSamples()
	st := c.pool.Stats()
	var acts []Action

	// Policy hot-swap, from ghost scores with hysteresis. The incumbent is
	// whatever shard 0 runs (shards share one policy by construction).
	incumbent := ""
	if len(st.PerShard) > 0 {
		incumbent = st.PerShard[0].Policy
	}
	c.publishScores()
	if c.scorer.Seen() >= int64(c.cfg.MinWindow) && incumbent != "" {
		if pick := c.scorer.Pick(incumbent, c.cfg.SwapMargin, c.cfg.SwapPatience); pick != incumbent {
			if f, ok := c.factories[pick]; ok {
				if from, to, err := c.pool.SwapPolicy(f); err == nil {
					acts = c.record(acts, ActSwapPolicy, fmt.Sprintf("%s->%s", from, to))
					// The old scores graded policies against the OLD
					// incumbent's era; start the new era clean so a
					// follow-up swap needs fresh evidence.
					c.scorer.Reset()
				}
			}
		}
	}

	// Windowed deltas need a previous snapshot of the SAME topology.
	if c.hasLast && st.Epoch == c.last.Epoch && len(st.PerShard) == len(c.last.PerShard) {
		acts = c.steer(acts, st)
	} else {
		c.hasLast = true
	}
	c.last = st

	// Write-back rate from quarantine depth (topology-independent).
	acts = c.steerWriter(acts, st)
	return acts
}

// steer makes the windowed decisions: resharding and batch threshold.
func (c *Controller) steer(acts []Action, st buffer.Stats) []Action {
	dHits := st.Hits - c.last.Hits
	dMisses := st.Misses - c.last.Misses
	window := dHits + dMisses
	if window < c.cfg.MinWindow {
		return acts
	}

	// Batch threshold: forced commits in the window mean queues filled
	// before TryLock landed — drop the threshold a quarter to start
	// earlier. Clean windows raise it back toward the configured value.
	wcfg := c.pool.Wrapper().Config()
	if wcfg.Batching && !wcfg.AdaptiveThreshold {
		base := wcfg.BatchThreshold
		cur := int(c.threshold.Load())
		if cur == 0 {
			cur = base
		}
		dForced := st.Wrapper.ForcedLocks - c.last.Wrapper.ForcedLocks
		dCommits := st.Wrapper.Commits - c.last.Wrapper.Commits
		if dCommits > 0 && dForced*4 > dCommits && cur > 1 {
			next := max(1, cur*3/4)
			c.threshold.Store(int32(next))
			c.pool.SetBatchThreshold(next)
			acts = c.record(acts, ActThresholdCut, fmt.Sprintf("%d->%d", cur, next))
		} else if over := int(c.threshold.Load()); dForced == 0 && over != 0 && over < base {
			next := over + max(1, base/8)
			if next >= base {
				c.threshold.Store(0)
				c.pool.SetBatchThreshold(0)
				acts = c.record(acts, ActThresholdUp, fmt.Sprintf("%d->configured(%d)", cur, base))
			} else {
				c.threshold.Store(int32(next))
				c.pool.SetBatchThreshold(next)
				acts = c.record(acts, ActThresholdUp, fmt.Sprintf("%d->%d", cur, next))
			}
		}
	}

	// Resharding, under cooldown.
	if c.cooldown > 0 {
		c.cooldown--
		return acts
	}
	shards := st.Shards
	actual := float64(dHits) / float64(window)
	ghost, _ := c.scorer.Score(policyOf(st))
	dWait := st.Wrapper.Lock.WaitTime - c.last.Wrapper.Lock.WaitTime
	waitPer := dWait / time.Duration(window)

	switch {
	case shards > c.cfg.MinShards && ghost-actual > c.cfg.GapMargin && waitPer < c.cfg.WaitPerAccess/2:
		// Fragmentation is costing hit ratio and the locks are quiet:
		// consolidate history by halving the shard count.
		n := max(c.cfg.MinShards, shards/2)
		if err := c.pool.Reshard(n); err == nil {
			acts = c.record(acts, ActReshardDown, fmt.Sprintf("%d->%d ghost=%.3f actual=%.3f", shards, n, ghost, actual))
			c.cooldown = c.cfg.ReshardCooldown
		}
	case shards < c.cfg.MaxShards && waitPer > c.cfg.WaitPerAccess && c.skew(st) <= c.cfg.SkewLimit:
		// The policy locks are the bottleneck and load is spread wide
		// enough that more shards will actually dilute it.
		n := min(c.cfg.MaxShards, shards*2)
		if err := c.pool.Reshard(n); err == nil {
			acts = c.record(acts, ActReshardUp, fmt.Sprintf("%d->%d wait/acc=%s", shards, n, waitPer))
			c.cooldown = c.cfg.ReshardCooldown
		}
	}
	return acts
}

// skew is the window's max-shard/mean access ratio (1.0 = perfectly
// balanced). Called only when st and c.last share a topology.
func (c *Controller) skew(st buffer.Stats) float64 {
	n := len(st.PerShard)
	if n <= 1 {
		return 1
	}
	var total, maxShard int64
	for i := range st.PerShard {
		d := (st.PerShard[i].Hits + st.PerShard[i].Misses) -
			(c.last.PerShard[i].Hits + c.last.PerShard[i].Misses)
		total += d
		if d > maxShard {
			maxShard = d
		}
	}
	if total <= 0 {
		return 1
	}
	mean := float64(total) / float64(n)
	return float64(maxShard) / mean
}

// steerWriter speeds up the background writer while the quarantine is
// deep and restores the configured cadence once it drains.
func (c *Controller) steerWriter(acts []Action, st buffer.Stats) []Action {
	w := c.cfg.Writer
	if w == nil || st.QuarantineCap <= 0 {
		return acts
	}
	deep := st.Quarantined*2 > st.QuarantineCap
	switch {
	case deep && !c.fast:
		iv := c.baseInterval / 4
		if iv < time.Millisecond {
			iv = time.Millisecond
		}
		w.SetRate(iv, c.baseBurst*4)
		c.fast = true
		acts = c.record(acts, ActWriterFast, fmt.Sprintf("quarantined=%d/%d", st.Quarantined, st.QuarantineCap))
	case !deep && st.Quarantined == 0 && c.fast:
		w.SetRate(c.baseInterval, c.baseBurst)
		c.fast = false
		acts = c.record(acts, ActWriterRelax, "quarantine drained")
	}
	return acts
}

// drainSamples feeds everything the pool sampled since the last step to
// the ghost scorer.
func (c *Controller) drainSamples() {
	for {
		n, next := c.pool.Samples(c.cursor, c.buf)
		c.cursor = next
		for _, id := range c.buf[:n] {
			c.scorer.Observe(id)
		}
		if n < len(c.buf) {
			return
		}
	}
}

func policyOf(st buffer.Stats) string {
	if len(st.PerShard) == 0 {
		return ""
	}
	return st.PerShard[0].Policy
}

// record counts an action and remembers it as the most recent.
func (c *Controller) record(acts []Action, kind ActionKind, detail string) []Action {
	a := Action{Kind: kind, Detail: detail}
	c.actions[kind].Add(1)
	c.mu.Lock()
	c.lastAction = a
	c.mu.Unlock()
	return append(acts, a)
}

// publishScores snapshots the ghost scores for the obs collector.
func (c *Controller) publishScores() {
	s := c.scorer.Scores()
	c.mu.Lock()
	c.scores = s
	c.mu.Unlock()
}

// LastAction returns the most recent actuation (zero Action if none yet).
func (c *Controller) LastAction() Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastAction
}

// Steps reports how many Steps have run.
func (c *Controller) Steps() int64 { return c.steps.Load() }

// Scores returns the latest published ghost scores.
func (c *Controller) Scores() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.scores))
	for k, v := range c.scores {
		out[k] = v
	}
	return out
}

// RegisterObs exposes the controller under bpw_control_*: step and
// per-kind action counters, the live ghost score per candidate policy, the
// current batch-threshold override, and the last action as a labeled info
// gauge (bpstat renders it verbatim).
func (c *Controller) RegisterObs(reg *obs.Registry) {
	reg.Register(func(emit func(obs.Metric)) {
		emit(obs.Metric{
			Name: "bpw_control_steps_total", Type: obs.Counter,
			Help:  "control-loop steps executed",
			Value: float64(c.steps.Load()),
		})
		for _, k := range actionKinds {
			emit(obs.Metric{
				Name: "bpw_control_actions_total", Type: obs.Counter,
				Help:   "control actuations by kind",
				Labels: [][2]string{{"kind", string(k)}},
				Value:  float64(c.actions[k].Load()),
			})
		}
		c.mu.Lock()
		scores := make(map[string]float64, len(c.scores))
		for k, v := range c.scores {
			scores[k] = v
		}
		last := c.lastAction
		c.mu.Unlock()
		for _, name := range c.cfg.Candidates {
			if v, ok := scores[name]; ok {
				emit(obs.Metric{
					Name: "bpw_control_policy_score", Type: obs.Gauge,
					Help:   "shadow ghost-cache hit ratio per candidate policy",
					Labels: [][2]string{{"policy", name}},
					Value:  v,
				})
			}
		}
		emit(obs.Metric{
			Name: "bpw_control_batch_threshold", Type: obs.Gauge,
			Help:  "controller batch-threshold override (0 = configured value)",
			Value: float64(c.thresholdNow()),
		})
		if last.Kind != "" {
			emit(obs.Metric{
				Name: "bpw_control_last_action", Type: obs.Gauge,
				Help:   "most recent control actuation (info gauge)",
				Labels: [][2]string{{"kind", string(last.Kind)}, {"detail", last.Detail}},
				Value:  1,
			})
		}
	})
}

// thresholdNow reads the current override for exposition.
func (c *Controller) thresholdNow() int { return int(c.threshold.Load()) }
