package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// drive advances a fresh sampler identical to the mutex's and returns how
// many of n acquisitions it samples at the given period.
func expectedSamples(seed uint64, every int64, n int) int {
	if seed == 0 {
		seed = defaultSamplerSeed
	}
	x := seed
	hits := 0
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x%uint64(every) == 0 {
			hits++
		}
	}
	return hits
}

func TestLockProfileSamplerDeterminism(t *testing.T) {
	const n = 10000
	const every = 16
	run := func(seed uint64) int64 {
		var m ContentionMutex
		m.SetProfile(&LockProfile{SampleEvery: every, Seed: seed})
		for i := 0; i < n; i++ {
			m.Lock()
			m.Unlock()
		}
		return m.Stats().HoldSamples
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed sampled %d then %d holds — sampler not deterministic", a, b)
	}
	if want := int64(expectedSamples(7, every, n)); a != want {
		t.Fatalf("sampled %d holds, reference sampler says %d", a, want)
	}
	// A different seed should pick a different subset (same expected rate).
	if c := run(8); c == 0 || c == int64(n) {
		t.Fatalf("seed 8 sampled %d of %d — sampling degenerate", c, n)
	}
}

func TestLockProfileSampledHoldEstimate(t *testing.T) {
	var m ContentionMutex
	hold := NewHistogram(time.Nanosecond, time.Second, 40)
	m.SetProfile(&LockProfile{SampleEvery: 4, Seed: 3, Hold: hold})
	const n = 4000
	for i := 0; i < n; i++ {
		m.Lock()
		m.Unlock()
	}
	s := m.Stats()
	if s.Acquisitions != n {
		t.Fatalf("acquisitions = %d", s.Acquisitions)
	}
	want := int64(expectedSamples(3, 4, n))
	if s.HoldSamples != want {
		t.Fatalf("HoldSamples = %d, want %d", s.HoldSamples, want)
	}
	if hold.Count() != want {
		t.Fatalf("hold histogram count = %d, want %d", hold.Count(), want)
	}
	// The estimate is extrapolated: total ≈ measured × every. With real
	// clocks we can only check structural consistency, not the value.
	if s.HoldTime < 0 {
		t.Fatalf("negative HoldTime estimate %v", s.HoldTime)
	}
	if want > 0 && hold.Count() > 0 && s.HoldTime == 0 && hold.Mean() > 0 {
		t.Fatalf("sampled holds recorded but HoldTime estimate is zero")
	}
}

func TestLockProfileAlwaysSampleIsExact(t *testing.T) {
	var m ContentionMutex
	m.SetProfile(&LockProfile{SampleEvery: 1})
	const n = 100
	for i := 0; i < n; i++ {
		m.Lock()
		m.Unlock()
	}
	if s := m.Stats(); s.HoldSamples != n {
		t.Fatalf("SampleEvery=1 sampled %d of %d", s.HoldSamples, n)
	}
}

func TestLockProfileWaitHistogramRecordsContentions(t *testing.T) {
	var m ContentionMutex
	wait := NewHistogram(time.Nanosecond, time.Second, 40)
	m.SetProfile(&LockProfile{SampleEvery: 1, Wait: wait})
	m.Lock()
	done := make(chan struct{})
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	m.Unlock()
	<-done
	if wait.Count() != 1 {
		t.Fatalf("wait histogram count = %d, want 1", wait.Count())
	}
	if wait.Max() < 5*time.Millisecond {
		t.Fatalf("recorded wait %v implausibly small", wait.Max())
	}
}

func TestLockProfileConcurrentSampling(t *testing.T) {
	// Exercise the sampled path under the race detector: plain sampler
	// state handed between holders, profile histograms shared.
	var m ContentionMutex
	m.SetProfile(&LockProfile{
		SampleEvery: 8,
		Seed:        11,
		Wait:        NewHistogram(time.Nanosecond, time.Second, 40),
		Hold:        NewHistogram(time.Nanosecond, time.Second, 40),
	})
	var wg sync.WaitGroup
	counter := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 40000 {
		t.Fatalf("counter = %d (mutual exclusion broken)", counter)
	}
	s := m.Stats()
	if s.Acquisitions != 40000 {
		t.Fatalf("acquisitions = %d", s.Acquisitions)
	}
	if s.HoldSamples == 0 || s.HoldSamples >= s.Acquisitions {
		t.Fatalf("HoldSamples = %d of %d — sampling degenerate", s.HoldSamples, s.Acquisitions)
	}
}

func TestLockProfileResetClearsHistograms(t *testing.T) {
	var m ContentionMutex
	p := &LockProfile{
		SampleEvery: 1,
		Hold:        NewHistogram(time.Nanosecond, time.Second, 40),
	}
	m.SetProfile(p)
	m.Lock()
	m.Unlock()
	if p.Hold.Count() == 0 {
		t.Fatal("hold histogram empty before reset")
	}
	m.Reset()
	if s := m.Stats(); s != (LockStats{}) {
		t.Fatalf("stats after reset: %+v", s)
	}
	if p.Hold.Count() != 0 {
		t.Fatal("Reset left observations in the profile histogram")
	}
}

func TestLockStatsPlusAggregation(t *testing.T) {
	a := LockStats{Acquisitions: 1, Contentions: 2, TryFailures: 3, WaitTime: 4, HoldTime: 5, HoldSamples: 6}
	b := LockStats{Acquisitions: 10, Contentions: 20, TryFailures: 30, WaitTime: 40, HoldTime: 50, HoldSamples: 60}
	got := a.Plus(b)
	want := LockStats{Acquisitions: 11, Contentions: 22, TryFailures: 33, WaitTime: 44, HoldTime: 55, HoldSamples: 66}
	if got != want {
		t.Fatalf("Plus = %+v, want %+v", got, want)
	}
	// Plus must not mutate its receiver (value semantics).
	if a.Acquisitions != 1 {
		t.Fatalf("Plus mutated receiver: %+v", a)
	}
}

func TestLockStatsPlusLargeValues(t *testing.T) {
	// Shard aggregation sums counters that can individually approach years
	// of nanoseconds; check the sum survives values far beyond any real
	// run without wrapping where it shouldn't.
	big := int64(math.MaxInt64 / 4)
	a := LockStats{Acquisitions: big, WaitTime: time.Duration(big), HoldTime: time.Duration(big)}
	got := a.Plus(a).Plus(LockStats{})
	if got.Acquisitions != 2*big || got.WaitTime != time.Duration(2*big) {
		t.Fatalf("large-value aggregation wrong: %+v", got)
	}
	if got.Acquisitions < 0 || got.WaitTime < 0 {
		t.Fatalf("aggregation overflowed to negative: %+v", got)
	}
}

func TestAccessSnapshotPlusLargeValues(t *testing.T) {
	big := int64(math.MaxInt64 / 4)
	a := AccessSnapshot{Hits: big, Misses: big}
	got := a.Plus(a)
	if got.Hits != 2*big || got.Misses != 2*big {
		t.Fatalf("Plus = %+v", got)
	}
	if got.Accesses() < 0 {
		// Accesses sums hits+misses: 4×(MaxInt64/4) stays in range; the
		// assertion documents the headroom contract for aggregators.
		t.Fatalf("Accesses overflowed: %d", got.Accesses())
	}
	if r := got.HitRatio(); r < 0.49 || r > 0.51 {
		t.Fatalf("hit ratio of balanced large counts = %v", r)
	}
}

func TestAccessSnapshotHitRatioEmpty(t *testing.T) {
	var a AccessSnapshot
	if a.HitRatio() != 0 || a.Accesses() != 0 {
		t.Fatalf("zero snapshot not zero: %+v", a)
	}
}

// BenchmarkContentionMutexUncontended guards the fast path: with default
// sampling the uncontended Lock/Unlock pair must not read the clock on
// most iterations. Compare against BenchmarkContentionMutexAlwaysClocked
// to see the sampling win.
func BenchmarkContentionMutexUncontended(b *testing.B) {
	var m ContentionMutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

func BenchmarkContentionMutexAlwaysClocked(b *testing.B) {
	var m ContentionMutex
	m.SetProfile(&LockProfile{SampleEvery: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}
