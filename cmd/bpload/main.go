// Command bpload drives the real (goroutine-based) buffer pool with a
// chosen workload and prints live statistics — the operational companion
// to the experiment harnesses, useful for eyeballing behaviour on the
// machine at hand.
//
// Examples:
//
//	bpload -workload tpcc -frames 4096 -policy lirs -duration 10s
//	bpload -workload ycsb-a -policy 2q -batching=false       # feel the lock
//	bpload -workload zipf -frames 512 -disk 250µs            # I/O bound
//	bpload -remote 127.0.0.1:7071 -workers 16                # drive a bpserver
//	bpload -workload tpcw -obs :6060 -trace 64               # request traces at /debug/traces
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bpwrapper"
	"bpwrapper/internal/server"
	"bpwrapper/internal/txn"
)

func main() {
	var (
		wlName      = flag.String("workload", "tpcw", "workload name (see bpwrapper.WorkloadByName)")
		policyName  = flag.String("policy", "2q", "replacement algorithm")
		frames      = flag.Int("frames", 0, "buffer frames (0 = full working set)")
		workers     = flag.Int("workers", 8, "concurrent backends")
		duration    = flag.Duration("duration", 5*time.Second, "run length")
		batching    = flag.Bool("batching", true, "BP-Wrapper batching")
		prefetching = flag.Bool("prefetching", true, "BP-Wrapper prefetching")
		adaptive    = flag.Bool("adaptive", false, "adaptive batch threshold")
		diskLat     = flag.Duration("disk", 0, "simulated disk read latency (0 = instant memory device)")
		bgwriter    = flag.Bool("bgwriter", true, "run the background writer")
		statsEvery  = flag.Duration("stats", time.Second, "live stats interval")
		seed        = flag.Int64("seed", 1, "workload seed")
		obsAddr     = flag.String("obs", "", "serve /metrics, /debug/vars, /debug/events and pprof on this address (e.g. :6060)")
		recorder    = flag.Int("recorder", 4096, "per-shard flight-recorder ring size (0 disables)")
		remote      = flag.String("remote", "", "drive a bpserver at this address instead of an in-process pool")
		txns        = flag.Int("txns", 0, "with -remote: stop after this many txns per worker (0 = run out -duration)")
		pipeline    = flag.Int("pipeline", 8, "with -remote: page accesses pipelined per burst")
		traceEvery  = flag.Int("trace", 0, "arm request tracing: locally, head-sample every Nth request (1 = all); with -remote, stamp a trace ID on every Nth burst so the server traces it end to end (0 disables)")
	)
	flag.Parse()

	wl, err := bpwrapper.WorkloadByName(*wlName)
	if err != nil {
		fatal(err)
	}
	if *remote != "" {
		runRemote(wl, *remote, *workers, *duration, *txns, *seed, *pipeline, *statsEvery, *traceEvery)
		return
	}
	nFrames := *frames
	if nFrames <= 0 {
		nFrames = wl.DataPages()
	}
	policy, ok := bpwrapper.NewPolicy(*policyName, nFrames)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	var device bpwrapper.Device = bpwrapper.NewMemDevice()
	if *diskLat > 0 {
		device = bpwrapper.NewSimDisk(bpwrapper.NewMemDevice(), bpwrapper.SimDiskConfig{ReadLatency: *diskLat})
	}
	pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
		Frames: nFrames,
		Policy: policy,
		Wrapper: bpwrapper.WrapperConfig{
			Batching:          *batching,
			Prefetching:       *prefetching,
			AdaptiveThreshold: *adaptive,
		},
		Device:       device,
		RecorderSize: *recorder,
		Trace: bpwrapper.TraceConfig{
			Enable:      *traceEvery > 0,
			SampleEvery: *traceEvery,
		},
	})
	var bw *bpwrapper.BackgroundWriter
	if *bgwriter {
		bw = pool.StartBackgroundWriter(bpwrapper.BackgroundWriterConfig{})
		defer bw.Stop()
	}
	if *obsAddr != "" {
		reg := bpwrapper.NewObsRegistry()
		pool.RegisterObs(reg)
		if bw != nil {
			bw.RegisterObs(reg)
		}
		srv, err := bpwrapper.NewObsServer(*obsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("obs: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	fmt.Printf("bpload: %s over %d frames (%s, batching=%v prefetching=%v), %d workers, %v\n",
		wl.Name(), nFrames, *policyName, *batching, *prefetching, *workers, *duration)

	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		var lastHits, lastMisses int64
		for {
			select {
			case <-ticker.C:
				st := pool.Stats()
				dh, dm := st.Hits-lastHits, st.Misses-lastMisses
				lastHits, lastMisses = st.Hits, st.Misses
				hr := 0.0
				if dh+dm > 0 {
					hr = float64(dh) / float64(dh+dm)
				}
				// Rate from the elapsed interval, not time.Second/interval:
				// that integer division is 0 for any interval over a second.
				fmt.Printf("  %8.0f acc/s  hit %5.1f%%  dirty %4d  free %4d  lock acq %d  contended %d\n",
					float64(dh+dm)/statsEvery.Seconds(), 100*hr,
					st.Dirty, st.Free, st.Wrapper.Lock.Acquisitions, st.Wrapper.Lock.Contentions)
			case <-stop:
				return
			}
		}
	}()

	res, err := txn.Run(txn.Config{
		Pool:       pool,
		Workload:   wl,
		Workers:    *workers,
		Duration:   *duration,
		Seed:       *seed,
		TouchBytes: true,
	})
	close(stop)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ncompleted %d txns in %v (%.0f tps)\n", res.Txns, res.Elapsed.Round(time.Millisecond), res.ThroughputTPS)
	fmt.Printf("accesses    %d (hit ratio %.2f%%)\n", res.Accesses, 100*res.HitRatio)
	fmt.Printf("response    mean %v  p50 %v  p99 %v\n",
		res.Response.Mean.Round(time.Microsecond),
		res.Response.P50.Round(time.Microsecond),
		res.Response.P99.Round(time.Microsecond))
	fmt.Printf("lock        %d acquisitions, %d contended, %d TryLock failures\n",
		res.Wrapper.Lock.Acquisitions, res.Wrapper.Lock.Contentions, res.Wrapper.Lock.TryFailures)
	fmt.Printf("batching    %d commits (%d TryLock, %d forced), %d stale dropped\n",
		res.Wrapper.Commits, res.Wrapper.TryCommits, res.Wrapper.ForcedLocks, res.Wrapper.Dropped)
	if n, err := pool.FlushDirty(); err == nil && n > 0 {
		fmt.Printf("flushed     %d dirty pages on shutdown\n", n)
	}
}

// runRemote drives a bpserver with a fleet of remote clients. The live
// ticker reads the lagging FleetLive view; the final summary comes from
// FleetResult's post-join fold, which is exact regardless of how the run
// ended (clock, -txns, or a server drain cutting the fleet off).
func runRemote(wl bpwrapper.Workload, addr string, workers int, duration time.Duration, txnsPerWorker int, seed int64, pipeline int, statsEvery time.Duration, traceEvery int) {
	fmt.Printf("bpload: %s against bpserver %s, %d workers, pipeline %d\n",
		wl.Name(), addr, workers, pipeline)

	live := &server.FleetLive{}
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		var lastTxns, lastReads, lastWrites int64
		for {
			select {
			case <-ticker.C:
				t, r, w := live.Txns.Load(), live.Reads.Load(), live.Writes.Load()
				fmt.Printf("  %8.0f txn/s  %8.0f reads/s  %8.0f writes/s  shed %d  errors %d\n",
					float64(t-lastTxns)/statsEvery.Seconds(),
					float64(r-lastReads)/statsEvery.Seconds(),
					float64(w-lastWrites)/statsEvery.Seconds(),
					live.Overloaded.Load(), live.Errors.Load())
				lastTxns, lastReads, lastWrites = t, r, w
			case <-stop:
				return
			}
		}
	}()

	res, err := server.RunFleet(server.FleetConfig{
		Addr:          addr,
		Workload:      wl,
		Workers:       workers,
		Duration:      duration,
		TxnsPerWorker: txnsPerWorker,
		Seed:          seed,
		PipelineDepth: pipeline,
		TraceEvery:    traceEvery,
		Live:          live,
	})
	close(stop)
	if err != nil {
		fatal(err)
	}

	c := res.Counters
	tps := 0.0
	if res.Elapsed > 0 {
		tps = float64(c.Txns) / res.Elapsed.Seconds()
	}
	fmt.Printf("\ncompleted %d txns in %v (%.0f tps)\n", c.Txns, res.Elapsed.Round(time.Millisecond), tps)
	fmt.Printf("operations  %d reads, %d writes\n", c.Reads, c.Writes)
	fmt.Printf("refusals    %d overloaded (shed), %d draining\n", c.Overloaded, c.Draining)
	fmt.Printf("errors      %d\n", c.Errors)
	if res.Latency.Count() > 0 {
		fmt.Printf("burst rtt   mean %v  p50 %v  p99 %v\n",
			res.Latency.Mean().Round(time.Microsecond),
			res.Latency.Quantile(0.50).Round(time.Microsecond),
			res.Latency.Quantile(0.99).Round(time.Microsecond))
	}
	if c.Errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpload:", err)
	os.Exit(1)
}
