package buffer

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/obs"
)

// BackgroundWriter periodically writes dirty, unpinned pages back to the
// device, the way PostgreSQL's bgwriter does, so that evictions mostly
// find clean victims and the miss path is not stalled by write-back I/O.
// It also drains the pool's dirty quarantine (pages whose eviction
// write-back failed), making it the retry engine of the fault-tolerance
// path. When a round makes no progress at all — every write failed — the
// writer backs off exponentially up to MaxInterval instead of hammering a
// device that is clearly down; the first successful round resets the
// cadence.
//
// The cadence and burst size are retunable at runtime (SetRate): the
// controller raises the write-back rate when quarantine depth climbs and
// relaxes it when the pool is clean.
type BackgroundWriter struct {
	pool        *Pool
	interval    atomic.Int64 // nanoseconds between rounds
	maxInterval time.Duration
	maxPages    atomic.Int64

	mu    sync.Mutex
	stats BackgroundWriterStats

	// lastPanic holds the most recent contained round panic (message,
	// stack, and a FlightDump of the pool at the moment of recovery).
	lastPanic atomic.Pointer[string]

	stop chan struct{}
	done chan struct{}
}

// BackgroundWriterStats counts the writer's activity.
type BackgroundWriterStats struct {
	Rounds          int64 // completed write-back rounds
	Written         int64 // pages made durable (frames + quarantine)
	WriteFailures   int64 // failed write attempts
	BackoffRounds   int64 // rounds that triggered a backoff (no progress)
	PanicRecoveries int64 // round panics contained (see LastPanic)
}

// BackgroundWriterConfig tunes a BackgroundWriter.
type BackgroundWriterConfig struct {
	// Interval between write-back rounds. Zero means 100ms.
	Interval time.Duration

	// MaxInterval caps the exponential backoff entered when a round's
	// writes all fail. Zero means 16×Interval.
	MaxInterval time.Duration

	// MaxPagesPerRound bounds each round's write burst so the writer
	// cannot monopolize the device. Zero means 64.
	MaxPagesPerRound int
}

// StartBackgroundWriter launches a write-back goroutine for the pool. Call
// Stop to terminate it; the final round runs before Stop returns.
func (p *Pool) StartBackgroundWriter(cfg BackgroundWriterConfig) *BackgroundWriter {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MaxInterval <= 0 {
		cfg.MaxInterval = 16 * cfg.Interval
	}
	if cfg.MaxPagesPerRound <= 0 {
		cfg.MaxPagesPerRound = 64
	}
	w := &BackgroundWriter{
		pool:        p,
		maxInterval: cfg.MaxInterval,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	w.interval.Store(int64(cfg.Interval))
	w.maxPages.Store(int64(cfg.MaxPagesPerRound))
	go w.run()
	return w
}

// SetRate retunes the writer live: interval is the new round cadence,
// maxPages the new per-round burst bound. Non-positive values leave the
// respective knob unchanged. The new cadence takes effect after the round
// currently being awaited (at most one old interval of lag).
func (w *BackgroundWriter) SetRate(interval time.Duration, maxPages int) {
	if interval > 0 {
		w.interval.Store(int64(interval))
	}
	if maxPages > 0 {
		w.maxPages.Store(int64(maxPages))
	}
}

// Rate reports the writer's current cadence and burst bound.
func (w *BackgroundWriter) Rate() (time.Duration, int) {
	return time.Duration(w.interval.Load()), int(w.maxPages.Load())
}

func (w *BackgroundWriter) run() {
	defer close(w.done)
	interval := time.Duration(w.interval.Load())
	timer := time.NewTimer(interval)
	defer timer.Stop()
	backingOff := false
	for {
		select {
		case <-timer.C:
			written, failed := w.safeRound()
			if failed > 0 && written == 0 {
				// The device refused everything: retrying at full cadence
				// only adds load to a struggling device. Back off.
				if !backingOff {
					interval = time.Duration(w.interval.Load())
				}
				backingOff = true
				interval *= 2
				if cap := w.backoffCap(); interval > cap {
					interval = cap
				}
				w.mu.Lock()
				w.stats.BackoffRounds++
				w.mu.Unlock()
			} else {
				backingOff = false
				interval = time.Duration(w.interval.Load())
			}
			timer.Reset(interval)
		case <-w.stop:
			w.safeRound() // final sweep so Stop leaves the pool clean-ish
			return
		}
	}
}

// backoffCap bounds the failure backoff: the configured MaxInterval, but
// never below the current (possibly retuned) base interval.
func (w *BackgroundWriter) backoffCap() time.Duration {
	cap := w.maxInterval
	if base := time.Duration(w.interval.Load()); base > cap {
		cap = base
	}
	return cap
}

// safeRound runs one round with panic containment: a panic anywhere in
// the sweep (a broken policy, a misbehaving device wrapper) is recovered
// instead of killing the writer goroutine — the pool's retry engine must
// outlive one bad round. The panic is counted, recorded in every shard's
// flight ring, and preserved with its stack and a FlightDump for
// post-mortem retrieval via LastPanic. The round's partial progress
// stands; pages it did not reach stay dirty or quarantined for the next
// round.
func (w *BackgroundWriter) safeRound() (written, failed int64) {
	defer func() {
		if r := recover(); r != nil {
			w.mu.Lock()
			w.stats.PanicRecoveries++
			w.mu.Unlock()
			for _, sh := range w.pool.liveShards() {
				sh.events.Record(obs.EvPanic, 1, 0)
			}
			msg := fmt.Sprintf("bgwriter: recovered round panic: %v\n%s\n%s",
				r, debug.Stack(), w.pool.FlightDump())
			w.lastPanic.Store(&msg)
			failed++
		}
	}()
	return w.round()
}

// LastPanic returns the most recent contained round panic — message,
// stack, and flight dump — or "" if none has occurred.
func (w *BackgroundWriter) LastPanic() string {
	if s := w.lastPanic.Load(); s != nil {
		return *s
	}
	return ""
}

// round walks the live shards — the current topology plus, during a
// reshard, the draining one, so a dirty page is retried whichever side of
// the migration holds it: for each shard it retries the quarantine, then
// writes back dirty, unpinned frames through shard.flushFrame (park in
// quarantine, clear the dirty bit, write, resolve — so no frame ever looks
// clean while its write-back is still in flight). Draining first frees
// quarantine capacity for the frame sweep's transient parking. The
// maxPages budget is global across shards, so the per-round device burst
// stays bounded regardless of shard count (for a single shard this is the
// old monolithic round verbatim). It reports pages made durable and
// failed attempts.
func (w *BackgroundWriter) round() (written, failed int64) {
	maxPages := w.maxPages.Load()
	for _, sh := range w.pool.liveShards() {
		qn, qfailed, _ := sh.drainQuarantine()
		written += int64(qn)
		failed += int64(qfailed)
		for i := range sh.frames {
			if written+failed >= maxPages {
				break
			}
			wrote, err := sh.flushFrame(&sh.frames[i])
			if err != nil {
				failed++
				continue
			}
			if wrote {
				written++
			}
		}
		if written+failed >= maxPages {
			break
		}
	}
	w.mu.Lock()
	w.stats.Rounds++
	w.stats.Written += written
	w.stats.WriteFailures += failed
	w.mu.Unlock()
	return written, failed
}

// Stop terminates the writer after a final write-back round.
func (w *BackgroundWriter) Stop() {
	close(w.stop)
	<-w.done
}

// Stats returns a snapshot of the writer's counters.
func (w *BackgroundWriter) Stats() BackgroundWriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
