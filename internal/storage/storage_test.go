package storage

import (
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/page"
)

func pid(n uint64) page.PageID { return page.NewPageID(1, n) }

func TestMemDeviceStampOnFirstRead(t *testing.T) {
	d := NewMemDevice()
	var p page.Page
	if err := d.ReadPage(pid(7), &p); err != nil {
		t.Fatal(err)
	}
	if !p.VerifyStamp(pid(7)) {
		t.Fatal("unwritten page did not return its deterministic stamp")
	}
}

func TestMemDeviceWriteReadBack(t *testing.T) {
	d := NewMemDevice()
	var w page.Page
	w.Stamp(pid(3))
	w.Data[0] = 0xAB
	w.Data[page.Size-1] = 0xCD
	if err := d.WritePage(&w); err != nil {
		t.Fatal(err)
	}
	var r page.Page
	if err := d.ReadPage(pid(3), &r); err != nil {
		t.Fatal(err)
	}
	if r.Data != w.Data {
		t.Fatal("read-back differs from written data")
	}
	if d.Len() != 1 {
		t.Fatalf("Len()=%d", d.Len())
	}
}

func TestMemDeviceWriteIsolation(t *testing.T) {
	// Mutating the caller's page after WritePage must not affect the store.
	d := NewMemDevice()
	var w page.Page
	w.Stamp(pid(5))
	d.WritePage(&w)
	w.Data[10] = ^w.Data[10]
	var r page.Page
	d.ReadPage(pid(5), &r)
	if r.Data[10] == w.Data[10] {
		t.Fatal("device aliases caller memory")
	}
}

func TestMemDeviceInvalidPage(t *testing.T) {
	d := NewMemDevice()
	var p page.Page
	if err := d.ReadPage(page.InvalidPageID, &p); err != ErrInvalidPage {
		t.Fatalf("read invalid: %v", err)
	}
	if err := d.WritePage(&p); err != ErrInvalidPage {
		t.Fatalf("write invalid: %v", err)
	}
}

func TestMemDeviceConcurrent(t *testing.T) {
	d := NewMemDevice()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var p page.Page
			for i := uint64(0); i < 500; i++ {
				id := pid(uint64(g)*1000 + i)
				p.Stamp(id)
				if err := d.WritePage(&p); err != nil {
					t.Error(err)
					return
				}
				var r page.Page
				if err := d.ReadPage(id, &r); err != nil {
					t.Error(err)
					return
				}
				if !r.VerifyStamp(id) {
					t.Errorf("corrupt read-back for %v", id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := d.Stats()
	if s.Reads != 4000 || s.Writes != 4000 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSimDiskLatency(t *testing.T) {
	d := NewSimDisk(NewMemDevice(), SimDiskConfig{ReadLatency: 2 * time.Millisecond, Parallelism: 1})
	var p page.Page
	start := time.Now()
	for i := uint64(0); i < 5; i++ {
		if err := d.ReadPage(pid(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 serial reads took %v, want >= 10ms", elapsed)
	}
	if d.Stats().Reads != 5 {
		t.Fatalf("reads=%d", d.Stats().Reads)
	}
}

func TestSimDiskParallelism(t *testing.T) {
	// With parallelism 4, eight 5 ms reads should take ~10 ms, not ~40 ms.
	d := NewSimDisk(NewMemDevice(), SimDiskConfig{ReadLatency: 5 * time.Millisecond, Parallelism: 4})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var p page.Page
			d.ReadPage(pid(uint64(i)), &p)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("parallelism bound not enforced: %v", elapsed)
	}
	if elapsed > 35*time.Millisecond {
		t.Fatalf("reads appear fully serialized: %v", elapsed)
	}
}

func TestSimDiskDelegatesData(t *testing.T) {
	mem := NewMemDevice()
	d := NewSimDisk(mem, SimDiskConfig{ReadLatency: time.Microsecond})
	var w page.Page
	w.Stamp(pid(9))
	w.Data[0] = 0x42
	if err := d.WritePage(&w); err != nil {
		t.Fatal(err)
	}
	var r page.Page
	if err := d.ReadPage(pid(9), &r); err != nil {
		t.Fatal(err)
	}
	if r.Data != w.Data {
		t.Fatal("SimDisk does not delegate to backing store")
	}
}

func TestNullDevice(t *testing.T) {
	d := NewNullDevice()
	var p page.Page
	if err := d.ReadPage(pid(1), &p); err != nil {
		t.Fatal(err)
	}
	if !p.VerifyStamp(pid(1)) {
		t.Fatal("NullDevice read is not the deterministic stamp")
	}
	if err := d.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	var bad page.Page
	if err := d.ReadPage(page.InvalidPageID, &bad); err != ErrInvalidPage {
		t.Fatalf("invalid read: %v", err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
}
