package server

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// gateDevice holds one armed page's next write at the device boundary so
// the drain-race test can open a write-in-flight window
// deterministically (the idiom from buffer's writeback_order tests): the
// entered channel closes when the held write has been issued, and the
// write completes only after release is closed.
type gateDevice struct {
	storage.Device
	mu      sync.Mutex
	target  page.PageID
	armed   bool
	entered chan struct{}
	release chan struct{}
}

func newGateDevice(d storage.Device) *gateDevice { return &gateDevice{Device: d} }

func (d *gateDevice) arm(id page.PageID) (entered, release chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.target, d.armed = id, true
	d.entered = make(chan struct{})
	d.release = make(chan struct{})
	return d.entered, d.release
}

func (d *gateDevice) WritePage(p *page.Page) error {
	d.mu.Lock()
	hold := d.armed && p.ID == d.target
	var entered, release chan struct{}
	if hold {
		d.armed = false
		entered, release = d.entered, d.release
	}
	d.mu.Unlock()
	if hold {
		close(entered)
		<-release
	}
	return d.Device.WritePage(p)
}

// TestChaosClientVanishMidPipeline cuts a connection with a pipelined
// burst half-delivered: a full batch of PUTs, then a truncated frame,
// then an abrupt socket close. The server must retire the connection
// without panic or goroutine leak, fold the session's history into the
// pool, and keep serving other clients.
func TestChaosClientVanishMidPipeline(t *testing.T) {
	srv, _, done := newTestServer(t, 32, 2, Config{})
	defer done()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var pg page.Page
	var raw []byte
	var pid [8]byte
	for i := uint64(0); i < 8; i++ {
		id := testPage(i)
		pg.Stamp(id)
		be.PutUint64(pid[:], uint64(id))
		raw = appendFrame(raw, OpPut, i, pid[:], pg.Data[:])
	}
	// Append half a frame: a believable length word, then silence.
	raw = append(raw, appendFrame(nil, OpPut, 99, pid[:], pg.Data[:])[:100]...)
	if _, err := nc.Write(raw); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	// Vanish without reading a single response.
	nc.Close()

	// The handler exits once it hits the cut; the pool keeps the eight
	// complete PUTs (they were applied when decoded, whether or not the
	// client ever read its acks).
	waitFor(t, 2*time.Second, func() bool { return srv.c.active.Load() == 0 })
	if got := srv.Pool().DirtyCount(); got < 1 {
		t.Fatalf("pool dirty count %d after applied PUTs, want ≥ 1", got)
	}

	// A fresh client is served as if nothing happened — and observes the
	// vanished client's applied writes.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c.Close()
	id := testPage(3)
	pg.Stamp(id)
	got, err := c.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, pg.Data[:]) {
		t.Fatal("vanished client's applied PUT not visible to a new client")
	}
	// And a graceful drain still completes cleanly with zero lost dirty.
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain after vanish: %v", err)
	}
}

// TestChaosSlowReaderBackpressure pins the write-backpressure valve: a
// client that pipelines hundreds of GETs and never reads must not park a
// handler goroutine forever. With a small write buffer and a short
// WriteTimeout the flush times out, the connection is abandoned and
// counted, and other clients are unaffected.
func TestChaosSlowReaderBackpressure(t *testing.T) {
	srv, _, done := newTestServer(t, 32, 1, Config{
		WriteBufSize: 4 << 10, // fills after a handful of 8 KB pages
		WriteTimeout: 200 * time.Millisecond,
	})
	defer done()

	slow, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer slow.Close()

	var raw []byte
	var pid [8]byte
	for i := uint64(0); i < 500; i++ {
		be.PutUint64(pid[:], uint64(testPage(i%8)))
		raw = appendFrame(raw, OpGet, i, pid[:])
	}
	if _, err := slow.Write(raw); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	// Never read. The server's write path must hit the deadline: 500
	// pages ≈ 4 MB swamps the socket buffer and the 4 KB bufio.
	waitFor(t, 5*time.Second, func() bool { return srv.c.writeTimeouts.Load() >= 1 })
	waitFor(t, 2*time.Second, func() bool { return srv.c.active.Load() == 0 })

	// A well-behaved client on a fresh connection is served normally.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c.Close()
	if _, err := c.Get(testPage(1)); err != nil {
		t.Fatalf("Get after slow-reader cutoff: %v", err)
	}
}

// TestChaosDrainRacesCloseWithin races a graceful server drain against a
// direct Pool.CloseWithin while a dirty page's write-back is held at the
// device gate. Both closers must come out clean — the quarantine
// protocol serializes the write-back — and the device must hold the last
// acknowledged content.
func TestChaosDrainRacesCloseWithin(t *testing.T) {
	mem := storage.NewMemDevice()
	gate := newGateDevice(mem)
	pool := buffer.New(buffer.Config{
		Frames: 8,
		Policy: replacer.NewLRU(8),
		Device: gate,
	})
	srv, err := New(Config{Pool: pool, Addr: "127.0.0.1:0", DrainGrace: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Dirty the armed page over the wire, acknowledged.
	id := testPage(1)
	var pg page.Page
	pg.Stamp(testPage(4242))
	entered, release := gate.arm(id)
	if err := c.Put(id, pg.Data[:]); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Drain in one goroutine; its pool flush will block at the gate.
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(10 * time.Second) }()
	<-entered // the drain's write-back is in flight and held

	// Race a direct CloseWithin against the in-flight drain flush.
	closeErr := make(chan error, 1)
	go func() { closeErr <- pool.CloseWithin(10 * time.Second) }()

	time.Sleep(20 * time.Millisecond) // let both closers lean on the gate
	close(release)

	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("CloseWithin: %v", err)
	}
	var onDisk page.Page
	if err := mem.ReadPage(id, &onDisk); err != nil {
		t.Fatalf("device read: %v", err)
	}
	if !onDisk.VerifyStamp(testPage(4242)) {
		t.Fatal("device does not hold the acknowledged write after the racing closes")
	}
	if pool.DirtyCount() != 0 || pool.QuarantineLen() != 0 {
		t.Fatalf("pool not clean: dirty=%d quarantined=%d", pool.DirtyCount(), pool.QuarantineLen())
	}
}

// TestChaosDrainUnderFireLosesNothing hammers the server with writer
// clients while a drain fires mid-burst, then verifies every PUT the
// server acknowledged OK is on the device — the over-the-wire statement
// of the zero-lost-dirty guarantee.
func TestChaosDrainUnderFireLosesNothing(t *testing.T) {
	mem := storage.NewMemDevice()
	pool := buffer.New(buffer.Config{
		Frames:        64,
		Shards:        2,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Device:        mem,
	})
	srv, err := New(Config{Pool: pool, Addr: "127.0.0.1:0", DrainGrace: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	const workers = 4
	type ack struct {
		id      page.PageID
		version int
	}
	acked := make([][]ack, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			var pg page.Page
			for v := 1; ; v++ {
				// Worker-owned pages: block w, w+workers, … so the last
				// acknowledged version per page is exact.
				id := page.NewPageID(2, uint64(w))
				pg.Stamp(page.NewPageID(uint32(0x200+v), uint64(w)))
				if err := c.Put(id, pg.Data[:]); err != nil {
					return // drain refused or cut us: stop, keep the acks
				}
				acked[w] = append(acked[w], ack{id: id, version: v})
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond) // let writes flow
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain under fire: %v", err)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if len(acked[w]) == 0 {
			continue // this worker never got an ack in; nothing to check
		}
		last := acked[w][len(acked[w])-1]
		var onDisk page.Page
		if err := mem.ReadPage(last.id, &onDisk); err != nil {
			t.Fatalf("worker %d: device read: %v", w, err)
		}
		if !onDisk.VerifyStamp(page.NewPageID(uint32(0x200+last.version), uint64(w))) {
			t.Fatalf("worker %d: device lost acknowledged version %d of page %v", w, last.version, last.id)
		}
	}
	if errors.Is(srv.Drain(time.Second), ErrDraining) == false {
		t.Fatal("second drain should be refused")
	}
}
