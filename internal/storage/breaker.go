package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/page"
)

// ErrBreakerOpen is returned by a BreakerDevice that is rejecting
// operations because its circuit is open. It is deliberately not
// Retryable: the whole point of the breaker is to fail fast instead of
// feeding more work to a sick device, and a RetryDevice layered above
// must not defeat that by spinning on it.
var ErrBreakerOpen = errors.New("storage: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// BreakerClosed: operations flow through; outcomes feed the sliding
	// window that decides whether to trip.
	BreakerClosed BreakerState = iota

	// BreakerOpen: operations are rejected immediately with
	// ErrBreakerOpen until OpenTimeout elapses.
	BreakerOpen

	// BreakerHalfOpen: a seeded fraction of operations are admitted as
	// probes; enough consecutive probe successes close the circuit, any
	// probe failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig tunes a BreakerDevice.
type BreakerConfig struct {
	// Window is the number of recent operation outcomes considered when
	// deciding whether to trip. Zero means 64.
	Window int

	// ErrorThreshold trips the breaker when the fraction of failed
	// operations in the window reaches it (and the window holds at least
	// MinSamples outcomes). Zero means 0.5.
	ErrorThreshold float64

	// LatencySLO, when positive, counts operations slower than it as SLO
	// violations; the breaker trips when the violating fraction reaches
	// SLOThreshold. Zero disables latency tripping.
	LatencySLO time.Duration

	// SLOThreshold is the slow-operation fraction that trips the breaker
	// when LatencySLO is set. Zero means 0.5.
	SLOThreshold float64

	// MinSamples is the minimum number of outcomes in the window before
	// either threshold is evaluated, so a single early failure cannot
	// trip a cold breaker. Zero means 16.
	MinSamples int

	// OpenTimeout is how long the breaker stays open before moving to
	// half-open and admitting probes. Zero means 100ms.
	OpenTimeout time.Duration

	// HalfOpenProbes is the number of consecutive probe successes needed
	// to close the circuit from half-open. Zero means 3.
	HalfOpenProbes int

	// ProbeProb is the probability that an operation arriving in
	// half-open is admitted as a probe (the rest are rejected), drawn
	// from the seeded generator. Zero means 0.25; 1 admits every
	// operation.
	ProbeProb float64

	// Seed feeds the deterministic probe-selection generator.
	Seed int64

	// Now replaces time.Now for the open-timeout clock, letting
	// deterministic benches drive state transitions without wall time.
	// Nil means time.Now.
	Now func() time.Time

	// OnStateChange, when non-nil, is called after every state
	// transition (outside the breaker's lock).
	OnStateChange func(from, to BreakerState)
}

// BreakerStats is a snapshot of a BreakerDevice's own counters,
// complementing the folded DeviceStats.
type BreakerStats struct {
	State       BreakerState
	Trips       int64 // transitions into BreakerOpen
	Rejections  int64 // operations rejected with ErrBreakerOpen
	Probes      int64 // operations admitted as half-open probes
	ProbeFails  int64 // probes that failed and reopened the circuit
	WindowLen   int   // outcomes currently in the sliding window
	WindowErrs  int   // failed outcomes in the window
	WindowSlow  int   // SLO-violating outcomes in the window
	Transitions int64 // total state transitions
}

// BreakerDevice wraps a Device with a per-device circuit breaker. While
// closed it records every operation's outcome (error and latency) in a
// sliding window; when the windowed error rate or latency-SLO violation
// rate crosses its threshold the circuit opens and subsequent operations
// fail immediately with ErrBreakerOpen — protecting callers from waiting
// on a device that is known to be sick, and protecting the device from a
// retry storm while it recovers. After OpenTimeout the breaker admits
// seeded probe operations; enough successes re-close it, a failure
// reopens it.
//
// Invalid-argument errors (ErrInvalidPage) are caller bugs, not device
// health, and do not count against the window.
//
// The outcome window is guarded by a mutex; every operation that reaches
// it is device-priced (microseconds at best), so the breaker's lock is
// never the bottleneck. The state itself is also mirrored in an atomic so
// observers (shard health checks, metrics scrapes) read it without
// touching the lock.
type BreakerDevice struct {
	backing Device
	cfg     BreakerConfig

	state atomic.Int32 // BreakerState mirror for lock-free observers

	mu        sync.Mutex
	outcomes  []outcome // ring buffer, len == cfg.Window
	winIdx    int       // next write position
	winLen    int       // filled entries
	winErrs   int       // failures currently in the window
	winSlow   int       // SLO violations currently in the window
	openUntil time.Time // when half-open probing may begin
	probeOK   int       // consecutive probe successes this half-open episode
	rng       uint64    // seeded probe-selection generator

	trips       atomic.Int64
	rejections  atomic.Int64
	probes      atomic.Int64
	probeFails  atomic.Int64
	transitions atomic.Int64
}

type outcome struct {
	failed bool
	slow   bool
}

// NewBreakerDevice wraps backing with a circuit breaker per cfg.
func NewBreakerDevice(backing Device, cfg BreakerConfig) *BreakerDevice {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.ErrorThreshold <= 0 {
		cfg.ErrorThreshold = 0.5
	}
	if cfg.SLOThreshold <= 0 {
		cfg.SLOThreshold = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = 100 * time.Millisecond
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 3
	}
	if cfg.ProbeProb <= 0 {
		cfg.ProbeProb = 0.25
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &BreakerDevice{
		backing:  backing,
		cfg:      cfg,
		outcomes: make([]outcome, cfg.Window),
		rng:      uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x3c6ef372fe94f82b,
	}
}

// Backing returns the wrapped device, letting callers walk a wrapper
// stack.
func (d *BreakerDevice) Backing() Device { return d.backing }

// State returns the breaker's current state. Closed and half-open read a
// single atomic. Open additionally checks the timeout clock under the
// lock and reports BreakerHalfOpen once OpenTimeout has elapsed, even
// though the automaton itself only transitions on the next admitted
// operation: observers that gate traffic on State() (the shard health
// machine sheds every miss while a breaker is open) would otherwise
// never send the operation that re-arms the breaker, leaving the circuit
// open forever.
func (d *BreakerDevice) State() BreakerState {
	st := BreakerState(d.state.Load())
	if st != BreakerOpen {
		return st
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if BreakerState(d.state.Load()) == BreakerOpen && !d.cfg.Now().Before(d.openUntil) {
		return BreakerHalfOpen
	}
	return BreakerState(d.state.Load())
}

// BreakerStats returns a snapshot of the breaker's own counters.
func (d *BreakerDevice) BreakerStats() BreakerStats {
	d.mu.Lock()
	winLen, winErrs, winSlow := d.winLen, d.winErrs, d.winSlow
	d.mu.Unlock()
	return BreakerStats{
		State:       d.State(),
		Trips:       d.trips.Load(),
		Rejections:  d.rejections.Load(),
		Probes:      d.probes.Load(),
		ProbeFails:  d.probeFails.Load(),
		WindowLen:   winLen,
		WindowErrs:  winErrs,
		WindowSlow:  winSlow,
		Transitions: d.transitions.Load(),
	}
}

// rand returns the next deterministic uniform variate in [0, 1).
// Callers must hold d.mu.
func (d *BreakerDevice) rand() float64 {
	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// transitionLocked moves the automaton to next and returns the callback
// to invoke once the lock is released. Callers must hold d.mu.
func (d *BreakerDevice) transitionLocked(next BreakerState) func() {
	prev := BreakerState(d.state.Load())
	if prev == next {
		return nil
	}
	d.state.Store(int32(next))
	d.transitions.Add(1)
	switch next {
	case BreakerOpen:
		d.trips.Add(1)
		d.openUntil = d.cfg.Now().Add(d.cfg.OpenTimeout)
	case BreakerHalfOpen:
		d.probeOK = 0
	case BreakerClosed:
		// A fresh window: the outcomes that tripped the breaker are
		// history, not evidence against the recovered device.
		d.winIdx, d.winLen, d.winErrs, d.winSlow = 0, 0, 0, 0
	}
	if cb := d.cfg.OnStateChange; cb != nil {
		return func() { cb(prev, next) }
	}
	return nil
}

// admission classifies one arriving operation.
type admission int

const (
	admitNormal admission = iota // closed: record outcome in the window
	admitProbe                   // half-open: outcome decides the circuit
	admitReject                  // open: fail fast
)

// admit decides what to do with an arriving operation and fires any
// state-change callback after releasing the lock.
func (d *BreakerDevice) admit() admission {
	d.mu.Lock()
	var cb func()
	state := BreakerState(d.state.Load())
	if state == BreakerOpen {
		if d.cfg.Now().Before(d.openUntil) {
			d.mu.Unlock()
			d.rejections.Add(1)
			return admitReject
		}
		cb = d.transitionLocked(BreakerHalfOpen)
		state = BreakerHalfOpen
	}
	var a admission
	switch state {
	case BreakerHalfOpen:
		if d.rand() < d.cfg.ProbeProb {
			a = admitProbe
		} else {
			a = admitReject
		}
	default:
		a = admitNormal
	}
	d.mu.Unlock()
	if cb != nil {
		cb()
	}
	if a == admitReject {
		d.rejections.Add(1)
	} else if a == admitProbe {
		d.probes.Add(1)
	}
	return a
}

// record feeds one closed-state outcome into the sliding window and
// trips the breaker if a threshold is crossed.
func (d *BreakerDevice) record(failed, slow bool) {
	d.mu.Lock()
	if BreakerState(d.state.Load()) != BreakerClosed {
		// The breaker tripped while this operation was in flight (a
		// concurrent operation crossed the threshold first). Its outcome
		// belongs to the episode that already tripped; dropping it keeps
		// the window a clean record of the next closed episode.
		d.mu.Unlock()
		return
	}
	if d.winLen == len(d.outcomes) {
		old := d.outcomes[d.winIdx]
		if old.failed {
			d.winErrs--
		}
		if old.slow {
			d.winSlow--
		}
	} else {
		d.winLen++
	}
	d.outcomes[d.winIdx] = outcome{failed: failed, slow: slow}
	d.winIdx = (d.winIdx + 1) % len(d.outcomes)
	if failed {
		d.winErrs++
	}
	if slow {
		d.winSlow++
	}
	var cb func()
	if d.winLen >= d.cfg.MinSamples {
		n := float64(d.winLen)
		if float64(d.winErrs)/n >= d.cfg.ErrorThreshold ||
			(d.cfg.LatencySLO > 0 && float64(d.winSlow)/n >= d.cfg.SLOThreshold) {
			cb = d.transitionLocked(BreakerOpen)
		}
	}
	d.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// probeResult settles one half-open probe: a success counts toward
// closing the circuit, a failure reopens it.
func (d *BreakerDevice) probeResult(ok bool) {
	d.mu.Lock()
	var cb func()
	if !ok {
		d.probeFails.Add(1)
		cb = d.transitionLocked(BreakerOpen)
	} else {
		d.probeOK++
		if d.probeOK >= d.cfg.HalfOpenProbes {
			cb = d.transitionLocked(BreakerClosed)
		}
	}
	d.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// do runs op under the breaker protocol. countable reports whether an
// error is evidence of device sickness (invalid-argument errors are
// not).
func (d *BreakerDevice) do(opName string, id page.PageID, op func() error) error {
	switch d.admit() {
	case admitReject:
		return fmt.Errorf("storage: %s of page %v rejected: %w", opName, id, ErrBreakerOpen)
	case admitProbe:
		start := d.cfg.Now()
		err := op()
		elapsed := d.cfg.Now().Sub(start)
		if errors.Is(err, ErrInvalidPage) {
			return err
		}
		slow := d.cfg.LatencySLO > 0 && elapsed > d.cfg.LatencySLO
		d.probeResult(err == nil && !slow)
		return err
	default:
		start := d.cfg.Now()
		err := op()
		elapsed := d.cfg.Now().Sub(start)
		if errors.Is(err, ErrInvalidPage) {
			return err
		}
		d.record(err != nil, d.cfg.LatencySLO > 0 && elapsed > d.cfg.LatencySLO)
		return err
	}
}

// ReadPage implements Device.
func (d *BreakerDevice) ReadPage(id page.PageID, p *page.Page) error {
	return d.do("read", id, func() error { return d.backing.ReadPage(id, p) })
}

// WritePage implements Device.
func (d *BreakerDevice) WritePage(p *page.Page) error {
	return d.do("write", p.ID, func() error { return d.backing.WritePage(p) })
}

// Stats implements Device: the backing device's counters plus the
// rejections issued by this layer.
func (d *BreakerDevice) Stats() DeviceStats {
	s := d.backing.Stats()
	s.BreakerRejections += d.rejections.Load()
	return s
}

// backer is implemented by every wrapper device in this package; Find*
// helpers use it to walk a stack from the outermost layer inward.
type backer interface{ Backing() Device }

// FindBreaker walks a wrapper stack looking for a BreakerDevice.
func FindBreaker(d Device) (*BreakerDevice, bool) {
	for d != nil {
		if b, ok := d.(*BreakerDevice); ok {
			return b, true
		}
		w, ok := d.(backer)
		if !ok {
			return nil, false
		}
		d = w.Backing()
	}
	return nil, false
}

// FindDeadline walks a wrapper stack looking for a DeadlineDevice.
func FindDeadline(d Device) (*DeadlineDevice, bool) {
	for d != nil {
		if dl, ok := d.(*DeadlineDevice); ok {
			return dl, true
		}
		w, ok := d.(backer)
		if !ok {
			return nil, false
		}
		d = w.Backing()
	}
	return nil, false
}

// FindFault walks a wrapper stack looking for a FaultDevice; chaos
// harnesses use it to reach the injector inside an assembled stack.
func FindFault(d Device) (*FaultDevice, bool) {
	for d != nil {
		if f, ok := d.(*FaultDevice); ok {
			return f, true
		}
		w, ok := d.(backer)
		if !ok {
			return nil, false
		}
		d = w.Backing()
	}
	return nil, false
}
