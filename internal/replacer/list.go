package replacer

// node is an intrusive doubly-linked list element carrying a page id plus
// the small per-page metadata the various algorithms need. Using one shared
// node type (rather than container/list's interface{} elements) avoids
// boxing on the hot path and lets Prefetch walk real pointers, which is the
// whole point of the prefetching technique.
type node struct {
	prev, next *node
	id         PageID

	// Per-algorithm metadata. Keeping these in the node (as PostgreSQL
	// keeps them in the buffer descriptor) is what makes the prefetch walk
	// meaningful: committing a batched hit touches exactly these fields.
	ref   bool  // CLOCK/CAR/CLOCK-Pro reference bit
	count int   // GCLOCK counter, LFU frequency, MQ frequency
	hot   bool  // LIRS: LIR page; CLOCK-Pro: hot page; 2Q: in Am
	ghost bool  // entry is history-only (non-resident)
	level int   // MQ queue index
	tick  int64 // MQ expiry time / LIRS recency aid
}

// list is a sentinel-based circular doubly-linked list of nodes.
// The zero value is not usable; call init first (newList does).
type list struct {
	root node
	n    int
}

func newList() *list {
	l := &list{}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

func (l *list) len() int { return l.n }

// front returns the first element or nil if the list is empty.
func (l *list) front() *node {
	if l.n == 0 {
		return nil
	}
	return l.root.next
}

// back returns the last element or nil if the list is empty.
func (l *list) back() *node {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}

// pushFront inserts nd at the front of the list.
func (l *list) pushFront(nd *node) {
	l.insertAfter(nd, &l.root)
}

// pushBack inserts nd at the back of the list.
func (l *list) pushBack(nd *node) {
	l.insertAfter(nd, l.root.prev)
}

// insertAfter links nd immediately after at.
func (l *list) insertAfter(nd, at *node) {
	nd.prev = at
	nd.next = at.next
	at.next.prev = nd
	at.next = nd
	l.n++
}

// remove unlinks nd from the list. nd must be an element of l.
func (l *list) remove(nd *node) {
	nd.prev.next = nd.next
	nd.next.prev = nd.prev
	nd.prev = nil
	nd.next = nil
	l.n--
}

// moveToFront moves an element of l to the front.
func (l *list) moveToFront(nd *node) {
	if l.root.next == nd {
		return
	}
	l.remove(nd)
	l.pushFront(nd)
}

// moveToBack moves an element of l to the back.
func (l *list) moveToBack(nd *node) {
	if l.root.prev == nd {
		return
	}
	l.remove(nd)
	l.pushBack(nd)
}

// popFront removes and returns the first element, or nil if empty.
func (l *list) popFront() *node {
	nd := l.front()
	if nd != nil {
		l.remove(nd)
	}
	return nd
}

// popBack removes and returns the last element, or nil if empty.
func (l *list) popBack() *node {
	nd := l.back()
	if nd != nil {
		l.remove(nd)
	}
	return nd
}

// each calls fn for every element from front to back. fn must not mutate
// the list.
func (l *list) each(fn func(*node)) {
	for nd := l.root.next; nd != &l.root; nd = nd.next {
		fn(nd)
	}
}
