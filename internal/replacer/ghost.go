// Ghost-cache policy scoring: shadow instances of candidate replacement
// algorithms run over a (sampled) access stream, and their simulated hit
// counts say which algorithm the real buffer pool SHOULD be running. This
// is the observation half of policy hot-swap — the control loop feeds the
// scorer the pool's spatially sampled accesses and swaps the pool's policy
// when a challenger beats the incumbent convincingly.
//
// SHARDS-style spatial sampling makes the shadows cheap: sampling a fixed
// pseudo-random 1/rate of the page-id space and keeping EVERY access to
// those pages preserves reuse distances within the sample, so a ghost of
// capacity/rate frames emulates a full-size cache at 1/rate the memory and
// update cost. The caller picks the scaled capacity; the scorer just runs
// the policies.
package replacer

import "sort"

// GhostScorer drives one shadow policy instance per candidate over the
// observed stream and scores each by exponentially-decayed hit ratio.
// Not safe for concurrent use: it belongs to a single control goroutine.
type GhostScorer struct {
	ghosts []*ghost
	window int64 // observations between decays (0 disables decay)
	seen   int64

	// Hysteresis state for Pick: the challenger currently on a winning
	// streak and how many consecutive Picks it has led by the margin.
	leader   string
	leadRuns int
}

// ghost is one candidate's shadow cache and score.
type ghost struct {
	name   string
	policy Policy
	hits   float64
	total  float64
}

// NewGhostScorer builds shadows of every candidate at ghostCap frames
// (pass capacity/sampleRate to emulate a full-size cache over a 1/rate
// spatial sample). window is the decay period: every window observations
// each ghost's hit and access counts are halved, so scores track the
// current phase of the workload instead of averaging over its whole
// history; 0 disables decay. Candidates iterate in sorted-name order, so
// scoring is deterministic for a given stream.
func NewGhostScorer(ghostCap int, candidates map[string]Factory, window int64) *GhostScorer {
	if ghostCap < 1 {
		ghostCap = 1
	}
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	g := &GhostScorer{window: window}
	for _, name := range names {
		g.ghosts = append(g.ghosts, &ghost{name: name, policy: candidates[name](ghostCap)})
	}
	return g
}

// Observe feeds one sampled access to every shadow: a resident page is a
// simulated hit, a missing one is admitted (evicting per that policy's
// rule). Periodic decay keeps the scores phase-local.
func (g *GhostScorer) Observe(id PageID) {
	g.seen++
	for _, c := range g.ghosts {
		c.total++
		if c.policy.Contains(id) {
			c.policy.Hit(id)
			c.hits++
		} else {
			c.policy.Admit(id)
		}
	}
	if g.window > 0 && g.seen%g.window == 0 {
		for _, c := range g.ghosts {
			c.hits /= 2
			c.total /= 2
		}
	}
}

// Seen reports how many accesses have been observed since construction.
func (g *GhostScorer) Seen() int64 { return g.seen }

// Score reports one candidate's decayed hit ratio (0 before any
// observation) and whether the candidate exists.
func (g *GhostScorer) Score(name string) (float64, bool) {
	for _, c := range g.ghosts {
		if c.name == name {
			return c.ratio(), true
		}
	}
	return 0, false
}

func (c *ghost) ratio() float64 {
	if c.total == 0 {
		return 0
	}
	return c.hits / c.total
}

// Scores returns every candidate's decayed hit ratio.
func (g *GhostScorer) Scores() map[string]float64 {
	m := make(map[string]float64, len(g.ghosts))
	for _, c := range g.ghosts {
		m[c.name] = c.ratio()
	}
	return m
}

// Best returns the top-scoring candidate (ties break to the first in
// sorted-name order, keeping the choice deterministic).
func (g *GhostScorer) Best() (string, float64) {
	best, ratio := "", -1.0
	for _, c := range g.ghosts {
		if r := c.ratio(); r > ratio {
			best, ratio = c.name, r
		}
	}
	return best, ratio
}

// Pick recommends a policy with hysteresis: it returns incumbent unless a
// single challenger has beaten the incumbent's score by at least margin on
// patience consecutive Pick calls. Any interruption — the lead shrinking
// below the margin, or a different challenger taking the lead — resets the
// streak, so score noise around the margin cannot flap the pool's policy
// back and forth. An incumbent that is not among the candidates scores 0,
// making it replaceable as soon as any ghost sustains margin.
func (g *GhostScorer) Pick(incumbent string, margin float64, patience int) string {
	best, ratio := g.Best()
	inc, _ := g.Score(incumbent)
	if best == incumbent || ratio < inc+margin {
		g.leader, g.leadRuns = "", 0
		return incumbent
	}
	if best != g.leader {
		g.leader, g.leadRuns = best, 1
	} else {
		g.leadRuns++
	}
	if patience > 0 && g.leadRuns < patience {
		return incumbent
	}
	g.leader, g.leadRuns = "", 0
	return best
}

// Reset zeroes every score and the hysteresis streak (the shadow resident
// sets are kept — they are the warmed state a fresh score window wants).
func (g *GhostScorer) Reset() {
	for _, c := range g.ghosts {
		c.hits, c.total = 0, 0
	}
	g.seen = 0
	g.leader, g.leadRuns = "", 0
}
