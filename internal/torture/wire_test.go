package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/server"
	"bpwrapper/internal/storage"
)

// wireExpectedLog replays a trace into the per-session record sequence a
// wire run must produce. Over the wire a session cannot address the
// policy directly — it addresses pages — so a Miss access i GETs the
// fresh page ID(s,i) (reaching the policy as Admit) and a hit access
// re-GETs the session's most recent fresh page (reaching the policy as a
// Hit on that identity). The E13 oracle clauses carry over intact:
// per-session order, exactly-once, and flavor all remain exact.
func wireExpectedLog(t *Trace) [][]Record {
	exp := make([][]Record, len(t.Sessions))
	for s, accs := range t.Sessions {
		lastFresh := uint64(0)
		for i, a := range accs {
			if a.Miss {
				lastFresh = uint64(i)
				exp[s] = append(exp[s], Record{Session: uint32(s), Seq: uint64(i), Miss: true})
			} else {
				exp[s] = append(exp[s], Record{Session: uint32(s), Seq: lastFresh, Miss: false})
			}
		}
	}
	return exp
}

// checkWireOracle verifies a policy-side log against the wire-adapted
// expectation: the projection of the log onto each session equals its
// expected sequence exactly — order preserved, nothing lost, nothing
// duplicated, every record the right flavor.
func checkWireOracle(t *Trace, log []Record, exp [][]Record) error {
	next := make([]int, len(exp))
	for i, rec := range log {
		s := int(rec.Session)
		if s < 0 || s >= len(exp) {
			return fmt.Errorf("seed %d: log[%d]: phantom session %d", t.Seed, i, rec.Session)
		}
		if next[s] >= len(exp[s]) {
			return fmt.Errorf("seed %d: log[%d]: session %d produced %d records, trace has %d",
				t.Seed, i, s, next[s]+1, len(exp[s]))
		}
		want := exp[s][next[s]]
		if rec != want {
			return fmt.Errorf("seed %d: log[%d]: session %d record %d is %+v, want %+v (order/flavour violation)",
				t.Seed, i, s, next[s], rec, want)
		}
		next[s]++
	}
	for s := range exp {
		if next[s] != len(exp[s]) {
			return fmt.Errorf("seed %d: session %d: %d of %d accesses lost through the wire",
				t.Seed, s, len(exp[s])-next[s], len(exp[s]))
		}
	}
	return nil
}

// runWireTrace drives one E13 trace through a loopback bpserver — one
// client connection per trace session, accesses pipelined in bursts —
// and returns the checker policy's log.
func runWireTrace(t *testing.T, trace *Trace, path Path, pipeline int) []Record {
	t.Helper()
	// Frames exceed the number of distinct pages: the checker policy
	// never evicts, so the free list must cover every fresh page.
	frames := trace.Total() + 64
	pol := &checkerPolicy{}
	pool := buffer.New(buffer.Config{
		Frames:  frames,
		Policy:  pol,
		Wrapper: configFor(path, 16),
		Device:  storage.NewMemDevice(),
	})
	srv, err := server.New(server.Config{Pool: pool, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(trace.Sessions))
	for s := range trace.Sessions {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := server.Dial(srv.Addr())
			if err != nil {
				errs[s] = err
				return
			}
			defer c.Close()
			lastFresh := trace.ID(s, 0)
			var ops []server.Op
			flush := func() bool {
				if len(ops) == 0 {
					return true
				}
				results, err := c.Do(ops)
				ops = ops[:0]
				if err != nil {
					errs[s] = err
					return false
				}
				for i := range results {
					if results[i].Err != nil {
						errs[s] = results[i].Err
						return false
					}
				}
				return true
			}
			for i, a := range trace.Sessions[s] {
				id := lastFresh
				if a.Miss {
					id = trace.ID(s, i)
					lastFresh = id
				}
				ops = append(ops, server.Op{Code: server.OpGet, Page: id})
				if len(ops) >= pipeline {
					if !flush() {
						return
					}
				}
			}
			flush()
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("seed %d: session %d: %v", trace.Seed, s, err)
		}
	}
	// Close waits for the handlers, whose exit paths flush the sessions:
	// after it, the log is complete and quiescent.
	srv.Close()
	if err := pool.Close(); err != nil {
		t.Fatalf("seed %d: pool.Close: %v", trace.Seed, err)
	}
	return pol.log
}

// TestWireTortureOrderOracle is the E13 order/exactly-once oracle run
// over the wire: the seeded trace travels through loopback TCP, the
// server's per-connection sessions, and the full batching commit path,
// and the policy-side log must still satisfy every oracle clause. The
// checker policy keeps its no-mutex race canary: any unserialized
// application introduced by the network layer fails -race runs.
func TestWireTortureOrderOracle(t *testing.T) {
	seed := SeedFromEnv(0x3173)
	sessions, length := 4, 200
	paths := []Path{PathDirect, PathBatch, PathFC}
	if LongMode() {
		sessions, length = 8, 1500
		paths = Paths()
	}
	trace := NewTrace(seed, sessions, length, 0.5)
	// A session's first access must be fresh: there is nothing resident
	// to re-GET before the first admission.
	for s := range trace.Sessions {
		trace.Sessions[s][0].Miss = true
	}
	exp := wireExpectedLog(trace)
	for _, path := range paths {
		path := path
		t.Run(string(path), func(t *testing.T) {
			log := runWireTrace(t, trace, path, 16)
			if err := checkWireOracle(trace, log, exp); err != nil {
				t.Fatalf("%v (%s)", err, ReportSeed(seed))
			}
		})
	}
}

// TestWireTortureDrainDifferential is the cross-layer content oracle of
// RunPool carried over the wire, with a graceful drain fired mid-trace:
// remote workers read with the version-window check and write their
// owned blocks through acknowledged PUTs while the server drains under
// them. Invariants:
//
//   - no read returns torn or stale-beyond-window content;
//   - workers end only via typed refusals (OVERLOADED/DRAINING) or a
//     transport cut, never corrupted frames;
//   - zero lost dirty pages: after the drain, every block's device copy
//     is a complete stamp of its last acknowledged version — or one
//     newer (an applied write whose ack died with the connection), never
//     older and never torn.
func TestWireTortureDrainDifferential(t *testing.T) {
	seed := SeedFromEnv(0x77171)
	workers, pages, frames := 4, 96, 32
	runFor := 60 * time.Millisecond
	if LongMode() {
		workers, pages, frames = 8, 512, 128
		runFor = 1500 * time.Millisecond
	}

	mem := storage.NewMemDevice()
	for b := 0; b < pages; b++ {
		var pg page.Page
		pg.Stamp(stampID(b, 0))
		pg.ID = poolPage(b)
		if err := mem.WritePage(&pg); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	pool := buffer.New(buffer.Config{
		Frames:        frames,
		Shards:        2,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Wrapper:       configFor(PathBatch, 16),
		Device:        mem,
	})
	srv, err := server.New(server.Config{Pool: pool, Addr: "127.0.0.1:0", DrainGrace: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	defer srv.Close()

	versions := make([]atomic.Int64, pages)
	var shed, drained atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(srv.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			r := rand.New(rand.NewSource(seed ^ int64(w)<<16))
			var pg page.Page
			for {
				b := r.Intn(pages)
				if r.Intn(10) < 6 { // read anywhere, verify the window
					v1 := versions[b].Load()
					data, err := c.Get(poolPage(b))
					if err != nil {
						if errors.Is(err, buffer.ErrOverloaded) {
							shed.Add(1)
							continue
						}
						if wireRunEnded(err) {
							drained.Add(1)
							return
						}
						errs[w] = fmt.Errorf("seed %d: worker %d: Get(%d): %w", seed, w, b, err)
						return
					}
					copy(pg.Data[:], data)
					v2 := versions[b].Load()
					ok := false
					for v := v1; v <= v2+1; v++ {
						if pg.VerifyStamp(stampID(b, int(v))) {
							ok = true
							break
						}
					}
					if !ok {
						errs[w] = fmt.Errorf("seed %d: worker %d: page %d matches no version in [%d, %d] — torn or lost write over the wire",
							seed, w, b, v1, v2+1)
						return
					}
				} else { // write an owned block
					b = b - b%workers + w
					if b >= pages {
						continue
					}
					next := int(versions[b].Load()) + 1
					pg.Stamp(stampID(b, next))
					err := c.Put(poolPage(b), pg.Data[:])
					if err != nil {
						if errors.Is(err, buffer.ErrOverloaded) {
							shed.Add(1)
							continue
						}
						if wireRunEnded(err) {
							drained.Add(1)
							return
						}
						errs[w] = fmt.Errorf("seed %d: worker %d: Put(%d): %w", seed, w, b, err)
						return
					}
					// Acknowledged: the server applied it. Bump the shadow
					// only now, so the device oracle below never demands an
					// unacknowledged write.
					versions[b].Store(int64(next))
				}
			}
		}(w)
	}

	time.Sleep(runFor)
	if err := srv.Drain(30 * time.Second); err != nil {
		t.Fatalf("seed %d: Drain under load: %v", seed, err)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("%v (%s)", err, ReportSeed(seed))
		}
	}
	if n := drained.Load(); n == 0 {
		t.Fatalf("seed %d: no worker observed the drain — the race never happened", seed)
	}

	// Zero-lost-dirty over the wire: every block's device copy is a
	// complete stamp of its last acknowledged version or the one write
	// that was applied but unacknowledged when the drain cut the
	// connection (sync round trips: at most one in flight per worker).
	for b := 0; b < pages; b++ {
		var pg page.Page
		if err := mem.ReadPage(poolPage(b), &pg); err != nil {
			t.Fatalf("seed %d: post-drain read of block %d: %v", seed, b, err)
		}
		v := int(versions[b].Load())
		if !pg.VerifyStamp(stampID(b, v)) && !pg.VerifyStamp(stampID(b, v+1)) {
			t.Fatalf("seed %d: block %d: device holds neither acked version %d nor in-flight %d — dirty page lost through drain (%s)",
				seed, b, v, v+1, ReportSeed(seed))
		}
	}
	if d, q := pool.DirtyCount(), pool.QuarantineLen(); d != 0 || q != 0 {
		t.Fatalf("seed %d: pool not clean after drain: dirty=%d quarantined=%d", seed, d, q)
	}
	if err := pool.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: post-drain invariants: %v", seed, err)
	}
}

// wireRunEnded reports whether a client error is a legal end-of-run
// signal during a drain: the typed DRAINING refusal or a transport cut.
func wireRunEnded(err error) bool {
	if errors.Is(err, server.ErrDraining) {
		return true
	}
	// Transport errors (poked/closed connections) surface as io/net
	// errors with no sentinel; anything that is NOT a typed pool error
	// counts as a cut.
	return !errors.Is(err, buffer.ErrOverloaded) &&
		!errors.Is(err, buffer.ErrNoUnpinnedBuffers) &&
		!errors.Is(err, storage.ErrInvalidPage)
}
