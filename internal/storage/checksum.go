package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bpwrapper/internal/page"
)

// ChecksumDevice wraps a Device with end-to-end data integrity: every
// successful write records the page's checksum in a side table, and every
// read of a page with a recorded checksum is verified against it. A
// mismatch — a torn write, bit rot, or injected corruption — returns an
// error wrapping ErrCorruptPage instead of silently serving bad bytes.
//
// Pages that were never written through this device (e.g. the deterministic
// pre-existing table data MemDevice synthesizes) have no recorded checksum
// and pass through unverified.
//
// The side table is sharded like MemDevice so verification does not become
// a lock hot spot of its own. Verification is not atomic with respect to a
// concurrent write of the same page; the buffer pool never issues those
// (write-back holds exclusive ownership of the page copy), and direct
// users must serialize same-page writes themselves.
type ChecksumDevice struct {
	backing Device
	shards  [64]sumShard
	corrupt atomic.Int64
}

type sumShard struct {
	mu   sync.RWMutex
	sums map[page.PageID]uint64
}

// NewChecksumDevice wraps backing with checksum stamping and verification.
func NewChecksumDevice(backing Device) *ChecksumDevice {
	d := &ChecksumDevice{backing: backing}
	for i := range d.shards {
		d.shards[i].sums = make(map[page.PageID]uint64)
	}
	return d
}

func (d *ChecksumDevice) shard(id page.PageID) *sumShard {
	return &d.shards[uint64(id)*0x9e3779b97f4a7c15>>58]
}

// Backing returns the wrapped device, letting callers walk a wrapper
// stack.
func (d *ChecksumDevice) Backing() Device { return d.backing }

// ReadPage implements Device: it delegates and then verifies the page
// against the checksum recorded at write time, if any.
func (d *ChecksumDevice) ReadPage(id page.PageID, p *page.Page) error {
	if err := d.backing.ReadPage(id, p); err != nil {
		return err
	}
	s := d.shard(id)
	s.mu.RLock()
	want, ok := s.sums[id]
	s.mu.RUnlock()
	if ok && p.Checksum() != want {
		d.corrupt.Add(1)
		return fmt.Errorf("storage: page %v read back with checksum %#x, want %#x: %w",
			id, p.Checksum(), want, ErrCorruptPage)
	}
	return nil
}

// WritePage implements Device: it delegates and, on success, records the
// page's checksum for future verification.
func (d *ChecksumDevice) WritePage(p *page.Page) error {
	if err := d.backing.WritePage(p); err != nil {
		return err
	}
	s := d.shard(p.ID)
	s.mu.Lock()
	s.sums[p.ID] = p.Checksum()
	s.mu.Unlock()
	return nil
}

// Stats implements Device: the backing device's counters plus the
// corruptions detected by this layer.
func (d *ChecksumDevice) Stats() DeviceStats {
	s := d.backing.Stats()
	s.CorruptPages += d.corrupt.Load()
	return s
}
