package workload

import (
	"math/rand"

	"bpwrapper/internal/page"
)

// SyntheticConfig tunes the single-table synthetic workloads used by the
// hit-ratio studies and the property tests.
type SyntheticConfig struct {
	// Pages is the data size in pages. Zero means 65536.
	Pages int

	// TxnLen is the number of accesses per transaction. Zero means 16.
	TxnLen int

	// WriteFraction is the probability an access is a write, in [0, 1].
	WriteFraction float64

	// ZipfS is the Zipf exponent for NewZipf. Values <= 1 mean 1.1 (a
	// realistic web/OLTP skew).
	ZipfS float64

	// HotFraction / HotProbability shape NewHotspot: HotProbability of the
	// accesses go to the first HotFraction of the pages. Zeros mean the
	// classic 80/20.
	HotFraction    float64
	HotProbability float64

	// TableID is the relation number the synthetic table occupies. Zero
	// means 1. Set it when composing a synthetic workload with others so
	// their page spaces do not collide.
	TableID uint32
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Pages <= 0 {
		c.Pages = 65536
	}
	if c.TxnLen <= 0 {
		c.TxnLen = 16
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.HotFraction <= 0 || c.HotFraction >= 1 {
		c.HotFraction = 0.2
	}
	if c.HotProbability <= 0 || c.HotProbability >= 1 {
		c.HotProbability = 0.8
	}
	if c.TableID == 0 {
		c.TableID = syntheticTableID
	}
	return c
}

// pickFunc selects the next block for a synthetic stream. i is the
// stream's running access counter (for deterministic patterns like loops).
type pickFunc func(r *rand.Rand, z *rand.Zipf, i uint64) uint64

// synthetic is the shared chassis for the single-table distributions.
type synthetic struct {
	name     string
	cfg      SyntheticConfig
	tab      Table
	needZipf bool
	pick     pickFunc
}

// syntheticTableID is the relation number used by all single-table
// synthetic workloads.
const syntheticTableID = 1

func newSynthetic(name string, cfg SyntheticConfig, needZipf bool, pick pickFunc) *synthetic {
	cfg = cfg.withDefaults()
	return &synthetic{
		name:     name,
		cfg:      cfg,
		tab:      NewTable(cfg.TableID, uint64(cfg.Pages)),
		needZipf: needZipf,
		pick:     pick,
	}
}

// Name implements Workload.
func (s *synthetic) Name() string { return s.name }

// DataPages implements Workload.
func (s *synthetic) DataPages() int { return int(s.tab.Pages()) }

// Pages implements Workload: the whole table is the working set.
func (s *synthetic) Pages() []page.PageID {
	return s.tab.appendAll(make([]page.PageID, 0, s.tab.Pages()))
}

// NewStream implements Workload.
func (s *synthetic) NewStream(w int, seed int64) Stream {
	r := newRand(seed, w)
	st := &syntheticStream{w: s, r: r}
	if s.needZipf {
		st.z = rand.NewZipf(r, s.cfg.ZipfS, 1, uint64(s.cfg.Pages-1))
	}
	return st
}

type syntheticStream struct {
	w *synthetic
	r *rand.Rand
	z *rand.Zipf
	i uint64
}

// NextTxn implements Stream.
func (st *syntheticStream) NextTxn(buf []Access) []Access {
	cfg := st.w.cfg
	for k := 0; k < cfg.TxnLen; k++ {
		b := st.w.pick(st.r, st.z, st.i)
		st.i++
		a := Access{Page: st.w.tab.Page(b)}
		if cfg.WriteFraction > 0 && st.r.Float64() < cfg.WriteFraction {
			a.Write = true
		}
		buf = append(buf, a)
	}
	return buf
}

// NewUniform returns a workload whose accesses are uniform over the table —
// the worst case for every caching policy and the baseline for hit-ratio
// comparisons.
func NewUniform(cfg SyntheticConfig) Workload {
	return newSynthetic("uniform", cfg, false, func(r *rand.Rand, _ *rand.Zipf, _ uint64) uint64 {
		return r.Uint64()
	})
}

// NewZipf returns a workload with Zipf-distributed page popularity, the
// skew shape of web catalogues and OLTP row access.
func NewZipf(cfg SyntheticConfig) Workload {
	return newSynthetic("zipf", cfg, true, func(_ *rand.Rand, z *rand.Zipf, _ uint64) uint64 {
		return z.Uint64()
	})
}

// NewHotspot returns the classic hotspot workload: HotProbability of the
// accesses fall uniformly in the first HotFraction of the pages.
func NewHotspot(cfg SyntheticConfig) Workload {
	c := cfg.withDefaults()
	hotPages := uint64(float64(c.Pages) * c.HotFraction)
	if hotPages == 0 {
		hotPages = 1
	}
	return newSynthetic("hotspot", cfg, false, func(r *rand.Rand, _ *rand.Zipf, _ uint64) uint64 {
		if r.Float64() < c.HotProbability {
			return r.Uint64() % hotPages
		}
		return hotPages + r.Uint64()%(uint64(c.Pages)-hotPages)
	})
}

// NewLoop returns a cyclic-sequential workload (each stream repeatedly
// scans the table in order). Loops one page larger than the buffer are the
// canonical LRU-pathological pattern that LIRS/2Q/ARC were designed to
// survive; the hit-ratio study uses it to separate the policy families.
func NewLoop(cfg SyntheticConfig) Workload {
	return newSynthetic("loop", cfg, false, func(_ *rand.Rand, _ *rand.Zipf, i uint64) uint64 {
		return i
	})
}
