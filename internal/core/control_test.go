package core

import (
	"testing"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// Tests for the control-loop hooks on the wrapper: the dynamic batch
// threshold override and online policy hot-swap.

func TestSetBatchThresholdOverride(t *testing.T) {
	w := New(replacer.NewLRU(8), Config{Batching: true, QueueSize: 16, BatchThreshold: 8})
	s := w.NewSession()
	if got := s.Threshold(); got != 8 {
		t.Fatalf("configured threshold=%d, want 8", got)
	}
	w.SetBatchThreshold(4)
	if got := s.Threshold(); got != 4 {
		t.Fatalf("threshold=%d after SetBatchThreshold(4), want 4", got)
	}
	if got := w.BatchThreshold(); got != 4 {
		t.Fatalf("BatchThreshold()=%d, want 4", got)
	}
	w.SetBatchThreshold(99) // clamps to QueueSize
	if got := s.Threshold(); got != 16 {
		t.Fatalf("threshold=%d after over-large override, want clamp to 16", got)
	}
	w.SetBatchThreshold(0) // clears the override
	if got := s.Threshold(); got != 8 {
		t.Fatalf("threshold=%d after clearing override, want configured 8", got)
	}
}

// TestAdaptiveThresholdShadowsOverride: a session whose adaptive state
// machine has taken over keeps its own threshold even when the control loop
// installs a wrapper-wide override — per-session adaptation has fresher,
// local information.
func TestAdaptiveThresholdShadowsOverride(t *testing.T) {
	w := New(replacer.NewLRU(8), Config{
		Batching: true, AdaptiveThreshold: true, QueueSize: 32, BatchThreshold: 16,
	})
	s := w.NewSession()
	w.SetBatchThreshold(5)
	if got := s.Threshold(); got != 5 {
		t.Fatalf("threshold=%d before any adaptation, want override 5", got)
	}
	s.adaptDown() // session takes over: 5 - 32/8 = 1, floored at the step (4)
	if got := s.Threshold(); got != 4 {
		t.Fatalf("threshold=%d after adaptDown, want 4", got)
	}
	w.SetBatchThreshold(9)
	if got := s.Threshold(); got != 4 {
		t.Fatalf("threshold=%d: wrapper override displaced the session's adaptive value", got)
	}
}

// TestSwapPolicyPreservesResidentsAndOrder: swapping LRU→LRU must carry the
// whole resident set over and keep the eviction order, because pages are
// drained least-valuable-first and re-admitted in that order.
func TestSwapPolicyPreservesResidentsAndOrder(t *testing.T) {
	w := New(replacer.NewLRU(4), Config{})
	for i := uint64(1); i <= 4; i++ {
		w.Policy().Admit(pid(i))
	}
	w.Policy().Hit(pid(2)) // eviction order now 1, 3, 4, 2

	from, to, residue := w.SwapPolicy(func(c int) replacer.Policy { return replacer.NewLRU(c) })
	if from != "lru" || to != "lru" {
		t.Fatalf("swap reported %q -> %q, want lru -> lru", from, to)
	}
	if len(residue) != 0 {
		t.Fatalf("LRU->LRU swap produced residue %v, want none", residue)
	}
	pol := w.Policy()
	if pol.Len() != 4 {
		t.Fatalf("resident count %d after swap, want 4", pol.Len())
	}
	for _, want := range []uint64{1, 3, 4, 2} {
		id, ok := pol.Evict()
		if !ok || id != pid(want) {
			t.Fatalf("post-swap eviction order: got %v (ok=%v), want %v", id, ok, pid(want))
		}
	}
}

// boundedStub is a Policy whose Admit enforces a queue-local bound tighter
// than its reported capacity (think 2Q's A1in): it evicts its oldest page
// whenever more than `bound` pages are resident, even though Cap is larger.
// None of the stock policies evict below total capacity during seeding, so
// this double is what exercises SwapPolicy's residue path.
type boundedStub struct {
	cap, bound int
	fifo       []replacer.PageID
}

func (p *boundedStub) Name() string { return "bounded-stub" }
func (p *boundedStub) Cap() int     { return p.cap }
func (p *boundedStub) Len() int     { return len(p.fifo) }
func (p *boundedStub) Contains(id replacer.PageID) bool {
	for _, v := range p.fifo {
		if v == id {
			return true
		}
	}
	return false
}
func (p *boundedStub) Hit(replacer.PageID) {}
func (p *boundedStub) Admit(id replacer.PageID) (victim replacer.PageID, evicted bool) {
	if len(p.fifo) >= p.bound {
		victim, evicted = p.fifo[0], true
		p.fifo = p.fifo[1:]
	}
	p.fifo = append(p.fifo, id)
	return victim, evicted
}
func (p *boundedStub) Evict() (replacer.PageID, bool) {
	if len(p.fifo) == 0 {
		return 0, false
	}
	v := p.fifo[0]
	p.fifo = p.fifo[1:]
	return v, true
}
func (p *boundedStub) Remove(id replacer.PageID) {
	for i, v := range p.fifo {
		if v == id {
			p.fifo = append(p.fifo[:i], p.fifo[i+1:]...)
			return
		}
	}
}

// TestSwapPolicyReturnsResidue: when the new policy's Admit evicts below
// total capacity (a queue-local bound), the evicted pages must come back as
// residue — their frames are still resident and the caller has to reclaim
// them through its normal victim path.
func TestSwapPolicyReturnsResidue(t *testing.T) {
	w := New(replacer.NewLRU(8), Config{})
	for i := uint64(1); i <= 8; i++ {
		w.Policy().Admit(pid(i))
	}
	_, to, residue := w.SwapPolicy(func(c int) replacer.Policy {
		return &boundedStub{cap: c, bound: 3}
	})
	if to != "bounded-stub" {
		t.Fatalf("swap target %q, want bounded-stub", to)
	}
	pol := w.Policy()
	if got := pol.Len() + len(residue); got != 8 {
		t.Fatalf("tracked (%d) + residue (%d) = %d pages, want 8 (none lost)", pol.Len(), len(residue), got)
	}
	if len(residue) != 5 {
		t.Fatalf("residue %v (len %d), want the 5 pages the bound pushed out", residue, len(residue))
	}
	for _, id := range residue {
		if pol.Contains(id) {
			t.Fatalf("page %v is both residue and tracked by the new policy", id)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("invariants after swap: %v", err)
	}
}

// TestSwapPolicyHotPathRepublished: after a swap, the lock-free-hit flag
// must match the NEW policy — swapping lru (locked hits) to clock (lock-free
// reference bits) has to enable the unlocked path atomically with the
// policy pointer, and the reverse swap has to disable it.
func TestSwapPolicyHotPathRepublished(t *testing.T) {
	w := New(replacer.NewLRU(4), Config{})
	if w.box.Load().lockFreeHit {
		t.Fatal("lru wrapper claims lock-free hits")
	}
	w.SwapPolicy(func(c int) replacer.Policy { return replacer.NewClock(c) })
	if !w.box.Load().lockFreeHit {
		t.Fatal("clock wrapper did not enable the lock-free hit path")
	}
	s := w.NewSession()
	w.Policy().Admit(pid(1))
	s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // must not need the lock
	w.SwapPolicy(func(c int) replacer.Policy { return replacer.NewLRU(c) })
	if w.box.Load().lockFreeHit {
		t.Fatal("lru wrapper kept the lock-free hit path after swap-back")
	}
}
