// Package storage models the disk subsystem beneath the buffer manager.
//
// The BP-Wrapper paper's scalability experiments (Figures 6 and 7) run with
// the working set fully cached, so the device is never touched; its overall-
// performance experiment (Figure 8) depends only on misses being orders of
// magnitude more expensive than hits. Accordingly the package provides a
// zero-cost device for the former and a latency-simulating device with
// bounded concurrency for the latter, both backed by a deterministic
// in-memory page store so data integrity can be verified end to end.
package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/page"
)

// ErrInvalidPage is returned when an operation names the invalid PageID.
var ErrInvalidPage = errors.New("storage: invalid page id")

// Device is the interface the buffer manager reads pages from and writes
// dirty pages back to. Implementations must be safe for concurrent use.
type Device interface {
	// ReadPage fills p with the content of the page identified by id.
	ReadPage(id page.PageID, p *page.Page) error

	// WritePage persists p's content under p.ID.
	WritePage(p *page.Page) error

	// Stats returns cumulative operation counters.
	Stats() DeviceStats
}

// DeviceStats counts device activity. The error counters are populated by
// the fault-tolerance wrappers (FaultDevice, RetryDevice, ChecksumDevice),
// which fold their backing device's stats into their own so that the whole
// stack's counters are visible from the outermost layer.
type DeviceStats struct {
	Reads     int64
	Writes    int64
	ReadTime  time.Duration // total wall time spent in ReadPage
	WriteTime time.Duration // total wall time spent in WritePage

	ReadErrors   int64 // failed page reads (injected or real)
	WriteErrors  int64 // failed page writes (injected or real)
	Retries      int64 // retry attempts performed by a RetryDevice
	CorruptPages int64 // checksum mismatches detected by a ChecksumDevice

	Timeouts          int64 // operations that missed a DeadlineDevice deadline
	BreakerRejections int64 // operations fast-failed by an open BreakerDevice
}

// deviceCounters is the shared atomic implementation behind Stats.
type deviceCounters struct {
	reads, writes         atomic.Int64
	readNanos, writeNanos atomic.Int64
}

func (c *deviceCounters) snapshot() DeviceStats {
	return DeviceStats{
		Reads:     c.reads.Load(),
		Writes:    c.writes.Load(),
		ReadTime:  time.Duration(c.readNanos.Load()),
		WriteTime: time.Duration(c.writeNanos.Load()),
	}
}

// MemDevice is an in-memory page store. Pages never written return a
// deterministic pattern derived from their id (page.Stamp), modelling
// pre-existing table data without materialising terabytes.
//
// The store is sharded to keep the device from becoming a lock hot spot of
// its own — the experiments are about the replacement-algorithm lock.
type MemDevice struct {
	shards [64]memShard
	deviceCounters
}

type memShard struct {
	mu    sync.RWMutex
	pages map[page.PageID]*[page.Size]byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice {
	d := &MemDevice{}
	for i := range d.shards {
		d.shards[i].pages = make(map[page.PageID]*[page.Size]byte)
	}
	return d
}

func (d *MemDevice) shard(id page.PageID) *memShard {
	return &d.shards[uint64(id)*0x9e3779b97f4a7c15>>58]
}

// ReadPage implements Device.
func (d *MemDevice) ReadPage(id page.PageID, p *page.Page) error {
	if !id.Valid() {
		return ErrInvalidPage
	}
	d.reads.Add(1)
	s := d.shard(id)
	s.mu.RLock()
	data, ok := s.pages[id]
	s.mu.RUnlock()
	if ok {
		p.ID = id
		p.Data = *data
		return nil
	}
	p.Stamp(id)
	return nil
}

// WritePage implements Device.
func (d *MemDevice) WritePage(p *page.Page) error {
	if !p.ID.Valid() {
		return ErrInvalidPage
	}
	d.writes.Add(1)
	data := p.Data
	s := d.shard(p.ID)
	s.mu.Lock()
	s.pages[p.ID] = &data
	s.mu.Unlock()
	return nil
}

// Stats implements Device.
func (d *MemDevice) Stats() DeviceStats { return d.snapshot() }

// Len returns the number of explicitly written pages; used by tests.
func (d *MemDevice) Len() int {
	n := 0
	for i := range d.shards {
		d.shards[i].mu.RLock()
		n += len(d.shards[i].pages)
		d.shards[i].mu.RUnlock()
	}
	return n
}

// SimDisk wraps another device, adding a fixed per-operation latency and a
// bound on in-flight operations (modelling a disk array's limited
// parallelism). It is the substitute for the paper's RAID5 arrays in the
// Figure 8 experiment; only the hit/miss cost ratio matters there, not
// absolute seek times.
type SimDisk struct {
	backing      Device
	readLatency  time.Duration
	writeLatency time.Duration
	slots        chan struct{} // limits in-flight operations
	deviceCounters
}

// SimDiskConfig tunes a SimDisk.
type SimDiskConfig struct {
	// ReadLatency is the simulated service time per page read.
	// Zero means 200µs, a fast disk array.
	ReadLatency time.Duration

	// WriteLatency is the simulated service time per page write.
	// Zero means ReadLatency.
	WriteLatency time.Duration

	// Parallelism bounds concurrently serviced operations (the number of
	// independent spindles). Zero means 8.
	Parallelism int
}

// NewSimDisk returns a latency-simulating device over backing.
func NewSimDisk(backing Device, cfg SimDiskConfig) *SimDisk {
	if cfg.ReadLatency <= 0 {
		cfg.ReadLatency = 200 * time.Microsecond
	}
	if cfg.WriteLatency <= 0 {
		cfg.WriteLatency = cfg.ReadLatency
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	return &SimDisk{
		backing:      backing,
		readLatency:  cfg.ReadLatency,
		writeLatency: cfg.WriteLatency,
		slots:        make(chan struct{}, cfg.Parallelism),
	}
}

// ReadPage implements Device: it acquires a service slot, sleeps the read
// latency, and delegates to the backing store.
func (d *SimDisk) ReadPage(id page.PageID, p *page.Page) error {
	start := time.Now()
	d.slots <- struct{}{}
	time.Sleep(d.readLatency)
	err := d.backing.ReadPage(id, p)
	<-d.slots
	d.reads.Add(1)
	d.readNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// WritePage implements Device.
func (d *SimDisk) WritePage(p *page.Page) error {
	start := time.Now()
	d.slots <- struct{}{}
	time.Sleep(d.writeLatency)
	err := d.backing.WritePage(p)
	<-d.slots
	d.writes.Add(1)
	d.writeNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// Stats implements Device.
func (d *SimDisk) Stats() DeviceStats { return d.snapshot() }

// NullDevice serves every read instantly with the deterministic stamp and
// discards writes. It is used by the scalability experiments, where the
// buffer is pre-warmed and sized to the working set so the device should
// never matter; any accidental miss is still served correctly.
type NullDevice struct {
	deviceCounters
}

// NewNullDevice returns a NullDevice.
func NewNullDevice() *NullDevice { return &NullDevice{} }

// ReadPage implements Device.
func (d *NullDevice) ReadPage(id page.PageID, p *page.Page) error {
	if !id.Valid() {
		return ErrInvalidPage
	}
	d.reads.Add(1)
	p.Stamp(id)
	return nil
}

// WritePage implements Device.
func (d *NullDevice) WritePage(p *page.Page) error {
	if !p.ID.Valid() {
		return ErrInvalidPage
	}
	d.writes.Add(1)
	return nil
}

// Stats implements Device.
func (d *NullDevice) Stats() DeviceStats { return d.snapshot() }
