package sim

import (
	"testing"
	"time"

	"bpwrapper/internal/workload"
)

// --- kernel tests -----------------------------------------------------------

func TestKernelSleepOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Spawn(func(p *Process) {
		p.Sleep(30)
		order = append(order, 3)
	})
	k.Spawn(func(p *Process) {
		p.Sleep(10)
		order = append(order, 1)
	})
	k.Spawn(func(p *Process) {
		p.Sleep(20)
		order = append(order, 2)
	})
	end := k.Run(0)
	if end != 30 {
		t.Fatalf("end time %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn(func(p *Process) {
			p.Sleep(10) // all wake at the same instant
			order = append(order, i)
		})
	}
	k.Run(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order %v", order)
		}
	}
}

func TestResourceLimitsParallelism(t *testing.T) {
	k := NewKernel()
	r := NewResource(2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn(func(p *Process) {
			r.Acquire(p)
			p.Sleep(100)
			r.Release(p)
			ends = append(ends, p.Now())
		})
	}
	k.Run(0)
	// Two run [0,100], two run [100,200].
	if len(ends) != 4 || ends[0] != 100 || ends[1] != 100 || ends[2] != 200 || ends[3] != 200 {
		t.Fatalf("ends %v", ends)
	}
}

func TestLockMutualExclusionAndStats(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	holders := 0
	maxHolders := 0
	for i := 0; i < 3; i++ {
		k.Spawn(func(p *Process) {
			for j := 0; j < 5; j++ {
				l.Acquire(p, 7)
				holders++
				if holders > maxHolders {
					maxHolders = holders
				}
				p.Sleep(10)
				holders--
				l.Release(p)
				p.Sleep(1)
			}
		})
	}
	k.Run(0)
	if maxHolders != 1 {
		t.Fatalf("mutual exclusion violated: %d simultaneous holders", maxHolders)
	}
	st := l.Stats()
	if st.Acquisitions != 15 {
		t.Fatalf("acquisitions %d, want 15", st.Acquisitions)
	}
	if st.Contentions == 0 {
		t.Fatal("three threads sharing one lock saw no contention")
	}
	if st.HoldTime < 150 {
		t.Fatalf("hold time %d, want >= 150", st.HoldTime)
	}
	if st.WaitTime == 0 {
		t.Fatal("no wait time recorded despite contention")
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	var gotWhileHeld, gotWhileFree bool
	k.Spawn(func(p *Process) {
		l.Acquire(p, 0)
		p.Sleep(100)
		l.Release(p)
	})
	k.Spawn(func(p *Process) {
		p.Sleep(50)
		gotWhileHeld = l.TryAcquire(p)
		p.Sleep(100) // now past the holder's release
		gotWhileFree = l.TryAcquire(p)
		if gotWhileFree {
			l.Release(p)
		}
	})
	k.Run(0)
	if gotWhileHeld {
		t.Fatal("TryAcquire succeeded on a held lock")
	}
	if !gotWhileFree {
		t.Fatal("TryAcquire failed on a free lock")
	}
	if l.Stats().TryFailures != 1 {
		t.Fatalf("tryFailures %d", l.Stats().TryFailures)
	}
}

func TestLockVersionAdvances(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	var v0, v1 uint64
	k.Spawn(func(p *Process) {
		v0 = l.Version()
		l.Acquire(p, 0)
		l.Release(p)
		l.Acquire(p, 0)
		l.Release(p)
		v1 = l.Version()
	})
	k.Run(0)
	if v1 != v0+2 {
		t.Fatalf("version advanced by %d, want 2", v1-v0)
	}
}

// --- model tests ------------------------------------------------------------

func smallWorkload() workload.Workload {
	return workload.NewTPCW(workload.TPCWConfig{Items: 500, Customers: 500, Workers: 64})
}

func simRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimDeterminism(t *testing.T) {
	cfg := Config{
		Procs: 4, Policy: "2q", Batching: true, Prefetching: true,
		Workload: smallWorkload(), Prewarm: true,
		Duration: Time(20 * time.Millisecond), Seed: 3,
	}
	a := simRun(t, cfg)
	b := simRun(t, cfg)
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSimZeroMissWhenPrewarmed(t *testing.T) {
	res := simRun(t, Config{
		Procs: 4, Policy: "2q", Workload: smallWorkload(), Prewarm: true,
		Duration: Time(10 * time.Millisecond), Seed: 1,
	})
	if res.Misses != 0 {
		t.Fatalf("%d misses in a prewarmed full-working-set run", res.Misses)
	}
	if res.HitRatio != 1 {
		t.Fatalf("hit ratio %v", res.HitRatio)
	}
	if res.Txns == 0 || res.ThroughputTPS <= 0 {
		t.Fatal("no progress")
	}
}

func TestSimClockScalesLinearly(t *testing.T) {
	tput := func(procs int) float64 {
		return simRun(t, Config{
			Procs: procs, Policy: "clock", Workload: smallWorkload(), Prewarm: true,
			Duration: Time(20 * time.Millisecond), Seed: 1,
		}).ThroughputTPS
	}
	t1, t16 := tput(1), tput(16)
	if t16 < 10*t1 {
		t.Fatalf("pgClock speedup at 16 procs only %.1fx", t16/t1)
	}
}

func TestSim2QCollapsesUnderContention(t *testing.T) {
	// The paper's headline: unwrapped 2Q saturates while batched 2Q tracks
	// clock. At 16 processors the gap should approach 2x.
	run := func(batching, prefetching bool, policy string) Result {
		return simRun(t, Config{
			Procs: 16, Policy: policy, Batching: batching, Prefetching: prefetching,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		})
	}
	clock := run(false, false, "clock")
	plain := run(false, false, "2q")
	bat := run(true, false, "2q")
	batpre := run(true, true, "2q")

	if plain.ThroughputTPS > 0.7*clock.ThroughputTPS {
		t.Errorf("pg2Q at %.0f tps is not clearly below pgClock's %.0f", plain.ThroughputTPS, clock.ThroughputTPS)
	}
	if bat.ThroughputTPS < 1.4*plain.ThroughputTPS {
		t.Errorf("pgBat %.0f tps not well above pg2Q %.0f (paper: ~2x)", bat.ThroughputTPS, plain.ThroughputTPS)
	}
	if bat.ThroughputTPS < 0.85*clock.ThroughputTPS {
		t.Errorf("pgBat %.0f tps does not track pgClock %.0f", bat.ThroughputTPS, clock.ThroughputTPS)
	}
	if bat.ContentionPerM*10 > plain.ContentionPerM {
		t.Errorf("batched contention %.1f/M not an order below plain %.1f/M", bat.ContentionPerM, plain.ContentionPerM)
	}
	if batpre.ContentionPerM > bat.ContentionPerM*1.5 {
		t.Errorf("pgBatPre contention %.1f/M above pgBat %.1f/M", batpre.ContentionPerM, bat.ContentionPerM)
	}
}

func TestSimPrefetchAloneHelpsLittle(t *testing.T) {
	// Figure 6/7's pgPre finding: prefetching alone cannot rescue
	// scalability at high processor counts.
	run := func(prefetch bool) Result {
		return simRun(t, Config{
			Procs: 16, Policy: "2q", Prefetching: prefetch,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		})
	}
	plain := run(false)
	pre := run(true)
	if pre.ThroughputTPS < plain.ThroughputTPS*0.9 {
		t.Errorf("pgPre %.0f tps worse than pg2Q %.0f", pre.ThroughputTPS, plain.ThroughputTPS)
	}
	if pre.ThroughputTPS > plain.ThroughputTPS*1.6 {
		t.Errorf("pgPre %.0f tps improbably above pg2Q %.0f (paper: marginal gain)", pre.ThroughputTPS, plain.ThroughputTPS)
	}
}

func TestSimBatchSizeSweepShape(t *testing.T) {
	// Figure 2's shape: per-access lock time falls steeply with batch size.
	lockTime := func(batch int) time.Duration {
		return simRun(t, Config{
			Procs: 16, Policy: "2q", Batching: true,
			QueueSize: batch, BatchThreshold: batch,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(20 * time.Millisecond), Seed: 1,
		}).LockTimePerAccess
	}
	b1, b16, b64 := lockTime(1), lockTime(16), lockTime(64)
	if b16*2 >= b1 {
		t.Errorf("batch16 lock time %v not well below batch1 %v", b16, b1)
	}
	if b64 > b16 {
		t.Errorf("lock time rose from batch16 %v to batch64 %v", b16, b64)
	}
}

func TestSimMissesAndIO(t *testing.T) {
	// Buffer at 10% of data: misses must occur, hit ratio in (0,1), and
	// throughput far below the fully cached run.
	wl := workload.NewZipf(workload.SyntheticConfig{Pages: 5000, TxnLen: 10})
	small := simRun(t, Config{
		Procs: 4, Policy: "2q", Batching: true, Workload: wl,
		Frames: 500, Duration: Time(50 * time.Millisecond), Seed: 2,
	})
	if small.Misses == 0 {
		t.Fatal("no misses with a small buffer")
	}
	if small.HitRatio <= 0 || small.HitRatio >= 1 {
		t.Fatalf("hit ratio %v", small.HitRatio)
	}
	full := simRun(t, Config{
		Procs: 4, Policy: "2q", Batching: true, Workload: wl,
		Prewarm: true, Duration: Time(50 * time.Millisecond), Seed: 2,
	})
	if full.ThroughputTPS <= small.ThroughputTPS {
		t.Fatalf("cached run (%.0f tps) not above I/O-bound run (%.0f tps)",
			full.ThroughputTPS, small.ThroughputTPS)
	}
}

func TestSimSharedQueueWorse(t *testing.T) {
	run := func(shared bool) Result {
		return simRun(t, Config{
			Procs: 16, Policy: "2q", Batching: true, SharedQueue: shared,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		})
	}
	private := run(false)
	shared := run(true)
	if shared.ThroughputTPS > private.ThroughputTPS {
		t.Errorf("shared queue %.0f tps beat private queues %.0f tps; Section III-A argues otherwise",
			shared.ThroughputTPS, private.ThroughputTPS)
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := Run(Config{Procs: 1}); err == nil {
		t.Fatal("missing workload accepted")
	}
	if _, err := Run(Config{Workload: smallWorkload()}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := Run(Config{Procs: 1, Policy: "nope", Workload: smallWorkload()}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimDistributedLocks(t *testing.T) {
	run := func(partitions int) Result {
		cfg := Config{
			Procs: 16, Policy: "2q", Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		}
		if partitions > 1 {
			cfg.LockPartitions = partitions
		}
		return simRun(t, cfg)
	}
	global := run(1)
	dist := run(16)
	if dist.ThroughputTPS <= global.ThroughputTPS {
		t.Errorf("16 lock partitions %.0f tps did not beat the global lock's %.0f",
			dist.ThroughputTPS, global.ThroughputTPS)
	}
	if dist.ContentionPerM >= global.ContentionPerM {
		t.Errorf("partitioned contention %.1f/M not below global %.1f/M",
			dist.ContentionPerM, global.ContentionPerM)
	}
}

func TestSimDistributedLocksExcludeBatching(t *testing.T) {
	_, err := Run(Config{
		Procs: 2, Policy: "2q", Batching: true, LockPartitions: 4,
		Workload: smallWorkload(), Duration: Time(time.Millisecond),
	})
	if err == nil {
		t.Fatal("LockPartitions with Batching accepted")
	}
}

func TestSimSingleProcLowContention(t *testing.T) {
	// The paper omits 1-processor contention from its plots because the
	// values are "too small to fit"; with quantum scheduling ours must be
	// near zero as well, even for the unbatched system.
	res := simRun(t, Config{
		Procs: 1, Policy: "2q", Workload: smallWorkload(), Prewarm: true,
		Duration: Time(30 * time.Millisecond), Seed: 1,
	})
	if res.ContentionPerM > 1000 {
		t.Fatalf("1-processor contention %.1f/M; expected near zero", res.ContentionPerM)
	}
}

func TestSimWarmupResetsStats(t *testing.T) {
	wl := workload.NewZipf(workload.SyntheticConfig{Pages: 3000, TxnLen: 10})
	noWarm := simRun(t, Config{
		Procs: 4, Policy: "2q", Workload: wl, Frames: 600,
		Duration: Time(40 * time.Millisecond), Seed: 2,
	})
	warm := simRun(t, Config{
		Procs: 4, Policy: "2q", Workload: wl, Frames: 600,
		Warmup: Time(80 * time.Millisecond), Duration: Time(40 * time.Millisecond), Seed: 2,
	})
	if warm.HitRatio <= noWarm.HitRatio {
		t.Fatalf("steady-state hit ratio %.4f not above cold-start %.4f",
			warm.HitRatio, noWarm.HitRatio)
	}
	if warm.Elapsed > time.Duration(41*time.Millisecond)*3 {
		t.Fatalf("measured elapsed %v should be ~ the post-warmup duration", warm.Elapsed)
	}
}

func TestLockBlockingAPI(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	var order []int
	k.Spawn(func(p *Process) {
		if !l.TryAcquireSilent() {
			t.Error("silent try failed on a free lock")
		}
		p.Sleep(50)
		order = append(order, 0)
		l.Release(p)
	})
	k.Spawn(func(p *Process) {
		p.Sleep(10)
		if l.TryAcquireSilent() {
			t.Error("silent try succeeded on a held lock")
		}
		l.AcquireBlocking(p)
		order = append(order, 1)
		l.Release(p)
	})
	k.Run(0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order %v", order)
	}
	st := l.Stats()
	if st.Contentions != 1 {
		t.Fatalf("contentions %d, want 1 (only the blocking acquire)", st.Contentions)
	}
	if st.TryFailures != 0 {
		t.Fatalf("silent try counted as a TryLock failure")
	}
	if st.WaitTime != 40 {
		t.Fatalf("wait time %d, want 40", st.WaitTime)
	}
}

func TestSimAdaptiveThreshold(t *testing.T) {
	// Adaptive must escape the threshold==queue pathology: contention far
	// below the fixed-64 setting, throughput on par.
	run := func(adaptive bool, threshold int) Result {
		return simRun(t, Config{
			Procs: 16, Policy: "2q", Batching: true,
			QueueSize: 64, BatchThreshold: threshold, AdaptiveThreshold: adaptive,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		})
	}
	fixed64 := run(false, 64)
	adaptive := run(true, 64) // starts at the pathological setting
	if adaptive.ContentionPerM*5 > fixed64.ContentionPerM {
		t.Errorf("adaptive contention %.1f/M not well below fixed-64's %.1f/M",
			adaptive.ContentionPerM, fixed64.ContentionPerM)
	}
	if adaptive.ThroughputTPS < 0.95*fixed64.ThroughputTPS {
		t.Errorf("adaptive throughput %.0f below fixed-64's %.0f",
			adaptive.ThroughputTPS, fixed64.ThroughputTPS)
	}
}

func TestSimWALBendsWriteHeavyClock(t *testing.T) {
	// The paper's DBT-2 observation: even pgClock grows sub-linearly at
	// high processor counts because the WAL lock (not the replacement
	// lock) contends. The read-mostly TPC-W workload stays near-linear.
	tput := func(wl workload.Workload, procs int) float64 {
		return simRun(t, Config{
			Procs: procs, Policy: "clock", Workload: wl, Prewarm: true,
			Duration: Time(20 * time.Millisecond), Seed: 1,
		}).ThroughputTPS
	}
	tpcc := workload.NewTPCC(workload.TPCCConfig{Warehouses: 2, Items: 500, Customers: 300, Workers: 64})
	tpcw := workload.NewTPCW(workload.TPCWConfig{Items: 500, Customers: 500, Workers: 64})

	speedup := func(wl workload.Workload) float64 { return tput(wl, 16) / tput(wl, 1) }
	su1, su2 := speedup(tpcw), speedup(tpcc)
	if su1 < 14 {
		t.Errorf("read-mostly clock speedup %.1fx; expected near-linear", su1)
	}
	if su2 >= su1-0.5 {
		t.Errorf("write-heavy clock speedup %.1fx not clearly below read-mostly %.1fx (WAL lock should bend it)", su2, su1)
	}
}

func TestSimAllFeaturesDeterministic(t *testing.T) {
	// Exercise prefetching + adaptive + warmup + partial buffer + the WAL
	// lock together, twice, demanding bitwise-identical results.
	wl := workload.NewTPCC(workload.TPCCConfig{Warehouses: 2, Items: 400, Customers: 200, Workers: 32})
	cfg := Config{
		Procs: 8, Policy: "lirs", Batching: true, Prefetching: true,
		AdaptiveThreshold: true, QueueSize: 32,
		Workload: wl, Frames: wl.DataPages() / 4,
		Warmup: Time(10 * time.Millisecond), Duration: Time(20 * time.Millisecond), Seed: 9,
	}
	a := simRun(t, cfg)
	b := simRun(t, cfg)
	if a != b {
		t.Fatalf("not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Misses == 0 || a.HitRatio <= 0 || a.HitRatio >= 1 {
		t.Fatalf("implausible result %+v", a)
	}
}

func TestSimSharedQueuePutback(t *testing.T) {
	// Shared queue with a tiny threshold under heavy contention exercises
	// the TryLock-failure putback path; the run must terminate and keep
	// full accounting.
	res := simRun(t, Config{
		Procs: 8, Policy: "2q", Batching: true, SharedQueue: true,
		QueueSize: 8, BatchThreshold: 2,
		Workload: smallWorkload(), Prewarm: true,
		Duration: Time(10 * time.Millisecond), Seed: 4,
	})
	if res.Committed+res.Dropped+int64(res.Workers*8) < res.Hits {
		t.Fatalf("hit accounting hole: committed=%d dropped=%d hits=%d",
			res.Committed, res.Dropped, res.Hits)
	}
}

func TestSimParamsNormalize(t *testing.T) {
	// A partial override must not zero the untouched cost constants.
	p := Params{UserWork: 1000}
	res, err := Run(Config{
		Procs: 2, Policy: "clock", Workload: smallWorkload(), Prewarm: true,
		Duration: Time(5 * time.Millisecond), Seed: 1, Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns == 0 {
		t.Fatal("no progress with partial Params")
	}
}

func TestSimPartitionedPrefetch(t *testing.T) {
	// Distributed locks with prefetching: per-partition lock versions must
	// be consulted; the run must complete with partition-count locks'
	// stats aggregated.
	res := simRun(t, Config{
		Procs: 8, Policy: "2q", Prefetching: true, LockPartitions: 8,
		Workload: smallWorkload(), Prewarm: true,
		Duration: Time(10 * time.Millisecond), Seed: 2,
	})
	if res.Lock.Acquisitions == 0 {
		t.Fatal("no lock activity")
	}
	// Hash imbalance makes some partitions overflow their 1/k capacity
	// during prewarm — the capacity-fragmentation drawback of partitioned
	// buffers — so a few misses are expected even with a full-size buffer.
	if res.HitRatio < 0.95 {
		t.Fatalf("hit ratio %v", res.HitRatio)
	}
}

func TestKernelHorizon(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn(func(p *Process) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			ticks++
		}
	})
	end := k.Run(55)
	if end != 55 {
		t.Fatalf("end=%d, want horizon 55", end)
	}
	if ticks != 5 {
		t.Fatalf("ticks=%d, want 5 (events past the horizon must not run)", ticks)
	}
}

func TestResourceQueueLen(t *testing.T) {
	k := NewKernel()
	r := NewResource(1)
	var maxQ int
	for i := 0; i < 3; i++ {
		k.Spawn(func(p *Process) {
			r.Acquire(p)
			if q := r.QueueLen(); q > maxQ {
				maxQ = q
			}
			p.Sleep(10)
			r.Release(p)
		})
	}
	k.Run(0)
	// The holder samples after its own grant: the first sees 0 waiters,
	// the second sees the third still queued.
	if maxQ != 1 {
		t.Fatalf("max observed queue length %d, want 1", maxQ)
	}
}

func TestLockExternalAccounting(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	k.Spawn(func(p *Process) {
		l.NoteContention()
		l.AddWait(123)
	})
	k.Run(0)
	st := l.Stats()
	if st.Contentions != 1 || st.WaitTime != 123 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLockReleaseUnheldPanics(t *testing.T) {
	k := NewKernel()
	l := NewLock(k)
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld lock not detected")
		}
	}()
	l.Release(nil)
}

// --- flat combining ---------------------------------------------------------

func TestSimFlatCombining(t *testing.T) {
	// Small queue/threshold: commits every 4 accesses keep the lock busy
	// enough for the commit protocol to matter. With the paper's default
	// 64/32 both protocols sit at the contention-free ceiling and the
	// comparison is a wash.
	run := func(fc bool) Result {
		return simRun(t, Config{
			Procs: 16, Policy: "2q", Batching: true, FlatCombining: fc,
			QueueSize: 8, BatchThreshold: 4,
			Workload: smallWorkload(), Prewarm: true,
			Duration: Time(30 * time.Millisecond), Seed: 1,
		})
	}
	bat := run(false)
	fc := run(true)

	// The protocol must actually run: batches handed off on busy locks and
	// drained by combiners.
	if fc.HandoffSaved == 0 {
		t.Error("no handoffs: flat combining never hit a busy lock at 16 procs")
	}
	if fc.CombinedBatches == 0 || fc.CombinedEntries == 0 {
		t.Errorf("no combined work (batches=%d entries=%d)", fc.CombinedBatches, fc.CombinedEntries)
	}
	// The acceptance shape: flat combining at least matches plain batching.
	if fc.ThroughputTPS < bat.ThroughputTPS {
		t.Errorf("flat combining %.0f tps below batched %.0f", fc.ThroughputTPS, bat.ThroughputTPS)
	}
	// Handed-off batches replace blocking waits, so contention per access
	// must not rise.
	if fc.ContentionPerM > bat.ContentionPerM*1.1 {
		t.Errorf("flat-combining contention %.1f/M above batched %.1f/M", fc.ContentionPerM, bat.ContentionPerM)
	}
	if bat.CombinedBatches != 0 || bat.HandoffSaved != 0 {
		t.Errorf("combining counters leaked into the batched run: %+v", bat)
	}
}

func TestSimFlatCombiningDeterministic(t *testing.T) {
	cfg := Config{
		Procs: 8, Policy: "2q", Batching: true, FlatCombining: true,
		Workload: smallWorkload(), Prewarm: true,
		Duration: Time(20 * time.Millisecond), Seed: 7,
	}
	if a, b := simRun(t, cfg), simRun(t, cfg); a != b {
		t.Fatalf("flat-combining simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSimFlatCombiningNormalization(t *testing.T) {
	// FlatCombining without Batching (or with SharedQueue) must behave as
	// if the flag were off, mirroring core.Config.withDefaults.
	res := simRun(t, Config{
		Procs: 4, Policy: "2q", FlatCombining: true,
		Workload: smallWorkload(), Prewarm: true,
		Duration: Time(10 * time.Millisecond), Seed: 1,
	})
	if res.CombinedBatches != 0 || res.HandoffSaved != 0 {
		t.Fatalf("flat combining ran without batching: %+v", res)
	}
}
