package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/page"
	"bpwrapper/internal/workload"
)

// FleetConfig drives a fleet of remote clients against one bpserver:
// Workers connections, each replaying its deterministic workload stream
// (the same generators the in-process drivers use), optionally batching
// accesses into pipelined frames.
type FleetConfig struct {
	Addr     string
	Workload workload.Workload
	Workers  int

	// Duration bounds the run in wall time; TxnsPerWorker in work. At
	// least one must be set; whichever ends first wins.
	Duration      time.Duration
	TxnsPerWorker int

	Seed int64

	// PipelineDepth batches up to this many page accesses into one
	// pipelined Do burst (one write, one flush, one response batch).
	// Zero or one means synchronous request/response.
	PipelineDepth int

	// TraceEvery, when positive, attaches a deterministic trace ID (via
	// the protocol's trace-context extension) to every TraceEvery-th
	// burst each worker sends — client-side head sampling, so a fleet run
	// seeds the server's tracer with end-to-end traces without flooding
	// it. Zero disables wire tracing.
	TraceEvery int

	// Live, when non-nil, receives periodic counter publications for a
	// progress ticker. It is NOT the result: a worker publishes every
	// livePublishEvery transactions, so Live lags and may miss the tail
	// of a fast run. FleetResult folds the per-worker counters exactly.
	Live *FleetLive
}

// livePublishEvery is how many transactions a worker completes between
// publications into FleetConfig.Live.
const livePublishEvery = 32

// FleetCounters is one worker's (or the folded) operation tally. Plain
// ints: each instance is owned by one goroutine until the final fold.
type FleetCounters struct {
	Txns       int64
	Reads      int64 // GETs answered OK
	Writes     int64 // PUTs answered OK
	Overloaded int64 // shed by admission control (typed OVERLOADED)
	Draining   int64 // refused past the drain grace
	Errors     int64 // transport or unexpected server errors
}

// add folds o into c.
func (c *FleetCounters) add(o FleetCounters) {
	c.Txns += o.Txns
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Overloaded += o.Overloaded
	c.Draining += o.Draining
	c.Errors += o.Errors
}

// FleetLive is the shared live view workers publish into for progress
// tickers. All fields are atomics; readers see a consistent-enough lagging
// snapshot, never the exact totals (those come from the final fold).
type FleetLive struct {
	Txns       atomic.Int64
	Reads      atomic.Int64
	Writes     atomic.Int64
	Overloaded atomic.Int64
	Errors     atomic.Int64
}

// publish adds the delta since the last publication to the live view.
func (l *FleetLive) publish(cur, last FleetCounters) {
	l.Txns.Add(cur.Txns - last.Txns)
	l.Reads.Add(cur.Reads - last.Reads)
	l.Writes.Add(cur.Writes - last.Writes)
	l.Overloaded.Add(cur.Overloaded - last.Overloaded)
	l.Errors.Add(cur.Errors - last.Errors)
}

// FleetResult is a completed fleet run. Counters is folded from
// PerWorker after every worker has joined — the summary can never drop a
// partial publication interval, however fast the run exited.
type FleetResult struct {
	Counters  FleetCounters
	PerWorker []FleetCounters
	Elapsed   time.Duration
	Latency   *metrics.Histogram // per-burst round-trip latency, merged
}

// RunFleet executes the fleet and blocks until every worker has joined
// and its counters are folded. Workers stop early — without error — when
// the server sheds into DRAINING or hangs up mid-run (that is the drain
// contract working); transport errors before any response are counted,
// not fatal, so a mid-run server drain never turns into a test failure
// here. The returned error is reserved for setup problems (bad config,
// nobody could connect).
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Workload == nil {
		return nil, errors.New("fleet: Workload is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Duration <= 0 && cfg.TxnsPerWorker <= 0 {
		return nil, errors.New("fleet: set Duration or TxnsPerWorker")
	}
	depth := cfg.PipelineDepth
	if depth <= 0 {
		depth = 1
	}

	// Connect everybody up front so a dead address fails fast instead of
	// producing a zero-work "success".
	clients := make([]*Client, cfg.Workers)
	for w := range clients {
		c, err := Dial(cfg.Addr)
		if err != nil {
			for _, cc := range clients[:w] {
				cc.Close()
			}
			return nil, fmt.Errorf("fleet: worker %d: %w", w, err)
		}
		clients[w] = c
	}

	var (
		wg        sync.WaitGroup
		perWorker = make([]FleetCounters, cfg.Workers)
		hists     = make([]*metrics.Histogram, cfg.Workers)
		stop      = make(chan struct{})
	)
	if cfg.Duration > 0 {
		t := time.AfterFunc(cfg.Duration, func() { close(stop) })
		defer t.Stop()
	}
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer clients[w].Close()
			hists[w] = metrics.NewLatencyHistogram()
			runFleetWorker(cfg, clients[w], w, depth, stop, &perWorker[w], hists[w])
		}(w)
	}
	wg.Wait()

	// The fold: totals come from the per-worker counters, summed only
	// after the owning goroutines have exited. Live publications are a
	// lagging view and play no part here.
	res := &FleetResult{
		PerWorker: perWorker,
		Elapsed:   time.Since(start),
		Latency:   metrics.NewLatencyHistogram(),
	}
	for w := range perWorker {
		res.Counters.add(perWorker[w])
		res.Latency.Merge(hists[w])
	}
	return res, nil
}

// runFleetWorker replays worker w's stream until its transaction budget,
// the duration stop, or the server's drain ends it.
func runFleetWorker(cfg FleetConfig, c *Client, w, depth int, stop <-chan struct{}, out *FleetCounters, lat *metrics.Histogram) {
	stream := cfg.Workload.NewStream(w, cfg.Seed)
	var (
		cur, last FleetCounters
		accBuf    []workload.Access
		ops       = make([]Op, 0, depth)
		// One page image per pipeline slot: every PUT queued in a batch
		// owns its bytes until the batch is encoded (a single shared
		// buffer would make all PUTs in one burst carry the last stamp).
		pages = make([]page.Page, depth)
	)
	defer func() {
		// Publish-then-own: the final counters land in *out regardless of
		// how the run ended; RunFleet folds them after the join.
		if cfg.Live != nil {
			cfg.Live.publish(cur, last)
		}
		*out = cur
	}()
	var burst uint64
	flushOps := func() bool {
		if len(ops) == 0 {
			return true
		}
		burst++
		if cfg.TraceEvery > 0 && burst%uint64(cfg.TraceEvery) == 0 {
			// Deterministic per-worker trace IDs: reruns produce the same
			// identities, so bench ledgers can be compared across runs.
			c.SetTraceID(uint64(w+1)<<32 | burst)
		} else {
			c.SetTraceID(0)
		}
		t0 := time.Now()
		results, err := c.Do(ops)
		lat.Record(time.Since(t0))
		ops = ops[:0]
		if err != nil {
			// Transport cut: a drain poke or vanished server. Count it
			// once and end the worker; the fold still sees everything
			// acknowledged before the cut.
			cur.Errors++
			return false
		}
		for i := range results {
			r := &results[i]
			switch {
			case r.Err == nil:
				if r.Data != nil {
					cur.Reads++
				} else {
					cur.Writes++
				}
			case errors.Is(r.Err, ErrDraining):
				cur.Draining++
			case isOverloaded(r.Err):
				cur.Overloaded++
			default:
				cur.Errors++
			}
		}
		// A drained server refuses everything from here on; stop cleanly.
		return cur.Draining == 0
	}
	for txn := 0; cfg.TxnsPerWorker <= 0 || txn < cfg.TxnsPerWorker; txn++ {
		select {
		case <-stop:
			return
		default:
		}
		accBuf = stream.NextTxn(accBuf[:0])
		for _, a := range accBuf {
			op := Op{Code: OpGet, Page: a.Page}
			if a.Write {
				pg := &pages[len(ops)]
				pg.Stamp(a.Page)
				op = Op{Code: OpPut, Page: a.Page, Data: pg.Data[:]}
			}
			ops = append(ops, op)
			if len(ops) >= depth {
				if !flushOps() {
					return
				}
			}
		}
		if !flushOps() {
			return
		}
		cur.Txns++
		if cfg.Live != nil && cur.Txns%livePublishEvery == 0 {
			cfg.Live.publish(cur, last)
			last = cur
		}
	}
}

// isOverloaded reports whether a per-op error is the typed shed.
func isOverloaded(err error) bool {
	return err != nil && errors.Is(err, buffer.ErrOverloaded)
}
