package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// TestCloseRacesConcurrentTraffic hammers Close while worker sessions keep
// reading, dirtying and flushing pages and a background writer sweeps at
// full cadence. Close's contract is that the pool stays usable and no
// dirty data is lost; mid-race Close calls may legitimately report a
// non-clean state, but must never panic, deadlock, or corrupt frames.
// Each worker owns a disjoint page range, so the last value it wrote is
// the exact durable value expected after the final quiesced Close.
func TestCloseRacesConcurrentTraffic(t *testing.T) {
	const (
		workers       = 4
		pagesPerW     = 8
		opsPerW       = 400
		flushEvery    = 50
		closeAttempts = 6
	)
	dev := storage.NewMemDevice()
	p := New(Config{
		Frames:  8, // smaller than the 32-page working set: constant eviction
		Policy:  replacer.NewLRU(8),
		Wrapper: core.Config{QueueSize: 16, BatchThreshold: 4},
		Device:  dev,
	})
	bw := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Millisecond})

	last := make([][]byte, workers) // last[w][i]: last value written to page w*pagesPerW+i
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		last[w] = make([]byte, pagesPerW)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.NewSession()
			defer s.Flush()
			for op := 0; op < opsPerW; op++ {
				i := op % pagesPerW
				id := page.NewPageID(1, uint64(w*pagesPerW+i))
				if op%3 == 0 {
					ref, err := p.GetWrite(s, id)
					if err != nil {
						failed.Store(true)
						t.Errorf("worker %d GetWrite(%v): %v", w, id, err)
						return
					}
					v := byte(op + w + 1)
					ref.Data()[0] = v
					last[w][i] = v
					ref.MarkDirty()
					ref.Release()
				} else {
					ref, err := p.Get(s, id)
					if err != nil {
						failed.Store(true)
						t.Errorf("worker %d Get(%v): %v", w, id, err)
						return
					}
					ref.Release()
				}
				if op%flushEvery == flushEvery-1 {
					if _, err := p.FlushDirty(); err != nil {
						failed.Store(true)
						t.Errorf("worker %d FlushDirty: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Race Close against the traffic. Errors are expected here (workers
	// keep re-dirtying pages faster than the retry budget drains them);
	// what must not happen is a panic, a deadlock, or lost data below.
	for i := 0; i < closeAttempts; i++ {
		_ = p.Close()
	}

	wg.Wait()
	bw.Stop()
	if failed.Load() {
		t.FailNow()
	}

	// Quiesced: the final Close must reach a clean state.
	if err := p.Close(); err != nil {
		t.Fatalf("Close after quiescence: %v", err)
	}
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after all sessions released", n)
	}
	if n := p.QuarantineLen(); n != 0 {
		t.Fatalf("%d pages still quarantined after clean Close", n)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Every page's last write must be durable on the device.
	for w := 0; w < workers; w++ {
		for i := 0; i < pagesPerW; i++ {
			if last[w][i] == 0 {
				continue // never written by its owner
			}
			id := page.NewPageID(1, uint64(w*pagesPerW+i))
			var back page.Page
			if err := dev.ReadPage(id, &back); err != nil {
				t.Fatalf("read back %v: %v", id, err)
			}
			if back.Data[0] != last[w][i] {
				t.Fatalf("page %v: device holds %#x, want last write %#x", id, back.Data[0], last[w][i])
			}
		}
	}
}

// TestCloseConcurrentWithFlushDirty runs Close and FlushDirty from
// separate goroutines over a dirty pool: both walk the same frames and
// drain the same quarantine, and must tolerate each other without losing
// pages or double-counting a clean state.
func TestCloseConcurrentWithFlushDirty(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 16, Policy: replacer.NewLRU(16), Device: dev})
	s := p.NewSession()
	for i := uint64(0); i < 16; i++ {
		ref, err := p.GetWrite(s, page.NewPageID(1, i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Data()[0] = byte(i + 1)
		ref.MarkDirty()
		ref.Release()
	}
	s.Flush()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := p.FlushDirty(); err != nil {
					t.Errorf("FlushDirty: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Close(); err != nil {
			t.Errorf("Close racing FlushDirty: %v", err)
		}
	}()
	wg.Wait()

	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("%d dirty pages after Close+FlushDirty", d)
	}
	for i := uint64(0); i < 16; i++ {
		var back page.Page
		if err := dev.ReadPage(page.NewPageID(1, i), &back); err != nil {
			t.Fatal(err)
		}
		if back.Data[0] != byte(i+1) {
			t.Fatalf("page %d: device holds %#x, want %#x", i, back.Data[0], byte(i+1))
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRacesBackgroundWriterStop interleaves Close with the
// background writer's final rounds and its Stop: the writer's sweep and
// Close's flush loop must not deadlock on the write-back locks, and Stop
// must return with the pool clean.
func TestCloseRacesBackgroundWriterStop(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 8, Policy: replacer.NewLRU(8), Device: dev})
	for round := 0; round < 10; round++ {
		bw := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Millisecond})
		s := p.NewSession()
		for i := uint64(0); i < 8; i++ {
			ref, err := p.GetWrite(s, page.NewPageID(2, uint64(round)*8+i))
			if err != nil {
				t.Fatal(err)
			}
			ref.MarkDirty()
			ref.Release()
		}
		s.Flush()
		done := make(chan error, 1)
		go func() { done <- p.Close() }()
		bw.Stop()
		if err := <-done; err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("%d dirty pages after final round", d)
	}
}
