// Per-shard health state machine and miss admission control.
//
// BP-Wrapper's contract is that nothing blocks the hot path; this file
// extends that contract to device failures. Hits never consult health at
// all — a resident page is served from memory regardless of how sick the
// device is. Misses, which must touch the device, pass an admission check
// driven by two signals the shard already has: the circuit-breaker state
// of its device stack and the depth of its dirty quarantine. A shard
// degrades in two steps instead of queueing unbounded work behind a dead
// device:
//
//	Healthy   — misses flow freely.
//	Degraded  — the breaker is probing (half-open) or the quarantine is
//	            half full: misses are admission-controlled to a bounded
//	            number in flight; the excess is shed with ErrOverloaded
//	            instead of queued.
//	ReadOnly  — the breaker is open or the quarantine is at capacity:
//	            every miss is shed immediately. Resident pages keep
//	            serving (including writes to them — the data is safe in
//	            memory and the quarantine protocol keeps eviction
//	            lossless), so one dead device degrades its shard to an
//	            in-memory cache instead of an error fountain.
//
// Health is computed pull-style on the miss path and at metrics scrapes —
// a couple of atomic loads plus the quarantine length — so there is no
// health-monitor goroutine to schedule, and the hit path pays nothing.
package buffer

import (
	"errors"
	"fmt"
	"sync/atomic"

	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/storage"
)

// ErrOverloaded is returned when a miss is shed by admission control
// because the owning shard is degraded or read-only. The page is not
// cached and the device was not touched; callers should back off or
// serve degraded results. It deliberately does not wrap ErrTransient:
// retrying immediately is exactly the load the shed exists to refuse.
var ErrOverloaded = errors.New("buffer: shard overloaded, miss shed by admission control")

// ErrQuarantineFull is returned when an operation fails because the
// dirty quarantine is at capacity, so every dirty eviction would risk
// exceeding the durability bound. It wraps ErrNoUnpinnedBuffers so
// existing errors.Is(err, ErrNoUnpinnedBuffers) checks keep matching;
// new callers can distinguish overload (quarantine pressure) from a
// genuinely over-pinned pool.
var ErrQuarantineFull = fmt.Errorf("buffer: dirty quarantine at capacity: %w", ErrNoUnpinnedBuffers)

// HealthState is a shard's position in the degradation ladder.
type HealthState int32

const (
	// Healthy: misses flow freely.
	Healthy HealthState = iota
	// Degraded: misses are bounded in flight; the excess is shed.
	Degraded
	// ReadOnly: every miss is shed; resident pages keep serving.
	ReadOnly
)

// String implements fmt.Stringer.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("HealthState(%d)", int32(h))
	}
}

// HealthConfig tunes the per-shard health machinery.
type HealthConfig struct {
	// MaxInflightMisses bounds concurrently admitted misses per shard
	// while the shard is Degraded (Healthy shards are unbounded —
	// backpressure there is the device's own concurrency limit). Zero
	// means 8; negative disables the bound (Degraded sheds nothing).
	MaxInflightMisses int

	// Disable turns the health machinery off entirely: shards report
	// Healthy forever and never shed. The quarantine cap still bounds
	// dirty evictions as before.
	Disable bool
}

// healthState holds a shard's health machinery. Embedded in shard.
type healthState struct {
	health       atomic.Int32 // HealthState, latched by evalHealth
	missInflight atomic.Int64 // admitted misses currently in flight
	maxInflight  int          // Degraded-mode bound (0 = disabled)
	disabled     bool

	// forced pins the shard at ReadOnly regardless of breaker or
	// quarantine state (Pool.SetReadOnly): the graceful-drain floor a
	// network front-end lowers before flushing, so misses shed with
	// ErrOverloaded while resident pages keep serving. An operator
	// action, not a health verdict — it overrides Disable too.
	forced atomic.Bool

	breaker  *storage.BreakerDevice  // nil when the shard's stack has none
	deadline *storage.DeadlineDevice // nil when the shard's stack has none

	shed              atomic.Int64 // misses refused with ErrOverloaded
	healthTransitions atomic.Int64
	quarRefusals      atomic.Int64 // dirty evictions/flushes refused by the cap
}

// wireHealth probes the shard's device stack for resilience layers and
// applies the pool-level config. Called once from Pool.New.
func (sh *shard) wireHealth(cfg HealthConfig) {
	sh.disabled = cfg.Disable
	sh.maxInflight = cfg.MaxInflightMisses
	if sh.maxInflight == 0 {
		sh.maxInflight = 8
	}
	if sh.maxInflight < 0 {
		sh.maxInflight = 0
	}
	sh.breaker, _ = storage.FindBreaker(sh.device)
	sh.deadline, _ = storage.FindDeadline(sh.device)
}

// evalHealth recomputes the shard's health from its two inputs and
// latches the result, recording a flight-recorder event on change. It
// is called on the miss path (where its cost — one quarantine-length
// mutex hop and an atomic breaker load — is noise next to the device
// read it gates) and at metrics scrapes.
func (sh *shard) evalHealth() HealthState {
	if sh.forced.Load() {
		return sh.latchHealth(ReadOnly)
	}
	if sh.disabled {
		return Healthy
	}
	st := Healthy
	q := sh.quarantineLen()
	switch {
	case q >= sh.quarCap:
		st = ReadOnly
	case 2*q >= sh.quarCap:
		st = Degraded
	}
	if sh.breaker != nil && st != ReadOnly {
		switch sh.breaker.State() {
		case storage.BreakerOpen:
			st = ReadOnly
		case storage.BreakerHalfOpen:
			st = Degraded
		}
	}
	return sh.latchHealth(st)
}

// latchHealth publishes a freshly evaluated health state, recording a
// flight-recorder event on change.
func (sh *shard) latchHealth(st HealthState) HealthState {
	for {
		old := sh.health.Load()
		if old == int32(st) {
			break
		}
		if sh.health.CompareAndSwap(old, int32(st)) {
			sh.healthTransitions.Add(1)
			sh.events.Record(obs.EvHealthChange, uint64(st), uint64(old))
			break
		}
	}
	return st
}

// lastHealth returns the most recently latched health state without
// recomputing it; evalHealth keeps it fresh from the miss path and
// metric scrapes.
func (sh *shard) lastHealth() HealthState {
	return HealthState(sh.health.Load())
}

// admitMiss is the admission check a miss passes after winning the
// single-flight race and before any frame is claimed or device I/O
// issued. It returns a release func the loader must call when the miss
// resolves (either way), or the shed error. The in-flight counter is
// maintained in every state so a transition into Degraded sees the true
// load immediately.
func (sh *shard) admitMiss(id page.PageID) (release func(), err error) {
	if sh.disabled && !sh.forced.Load() {
		return func() {}, nil
	}
	st := sh.evalHealth()
	switch st {
	case ReadOnly:
		sh.shed.Add(1)
		sh.events.Record(obs.EvShed, uint64(id), uint64(st))
		return nil, fmt.Errorf("buffer: page %v (shard read-only): %w", id, ErrOverloaded)
	case Degraded:
		if sh.maxInflight > 0 && sh.missInflight.Load() >= int64(sh.maxInflight) {
			sh.shed.Add(1)
			sh.events.Record(obs.EvShed, uint64(id), uint64(st))
			return nil, fmt.Errorf("buffer: page %v (%d misses in flight): %w", id, sh.maxInflight, ErrOverloaded)
		}
	}
	sh.missInflight.Add(1)
	return func() { sh.missInflight.Add(-1) }, nil
}
