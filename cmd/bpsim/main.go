// Command bpsim runs a single configuration on the deterministic
// multiprocessor simulator and prints its measurements — the low-level
// companion to cmd/bpbench for exploring parameter spaces the canned
// experiments do not sweep.
//
// Examples:
//
//	bpsim -procs 16 -policy 2q                         # pg2Q baseline
//	bpsim -procs 16 -policy 2q -batching -prefetching  # full BP-Wrapper
//	bpsim -procs 16 -policy clock                      # pgClock
//	bpsim -procs 16 -policy 2q -lock-partitions 16     # distributed locks
//	bpsim -procs 8 -policy lirs -frames 1000 -workload zipf   # I/O-bound
//	bpsim -procs 16 -policy 2q -batching -queue 16 -threshold 8
//	bpsim -procs 16 -policy 2q -batching -adaptive
//	bpsim -procs 32 -policy 2q -batching -userwork 4µs -ctxswitch 2µs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bpwrapper/internal/sim"
	"bpwrapper/internal/workload"
)

func main() {
	var (
		procs       = flag.Int("procs", 16, "virtual processors")
		workers     = flag.Int("workers", 0, "backend threads (0 = 2×procs)")
		policy      = flag.String("policy", "2q", "replacement algorithm")
		batching    = flag.Bool("batching", false, "enable BP-Wrapper batching")
		prefetching = flag.Bool("prefetching", false, "enable BP-Wrapper prefetching")
		queue       = flag.Int("queue", 64, "batching queue size")
		threshold   = flag.Int("threshold", 0, "batch threshold (0 = queue/2)")
		adaptive    = flag.Bool("adaptive", false, "self-tuning batch threshold")
		sharedQ     = flag.Bool("shared-queue", false, "single shared batching queue (ablation)")
		partitions  = flag.Int("lock-partitions", 0, "distributed locks: hash partitions (>1)")
		wlName      = flag.String("workload", "tpcw", "workload: tpcw, tpcc, tablescan, zipf, uniform, hotspot, loop")
		frames      = flag.Int("frames", 0, "buffer frames (0 = full working set)")
		prewarm     = flag.Bool("prewarm", true, "preload the working set when it fits")
		warmup      = flag.Duration("warmup", 0, "virtual warm-up before measurement")
		duration    = flag.Duration("duration", 500*time.Millisecond, "measured virtual time")
		seed        = flag.Int64("seed", 1, "workload seed")

		userWork  = flag.Duration("userwork", 0, "override: per-access transaction work")
		policyOp  = flag.Duration("policyop", 0, "override: per-access critical-section op")
		warmCost  = flag.Duration("lockwarmup", 0, "override: cache warm-up inside the CS")
		ctxSwitch = flag.Duration("ctxswitch", 0, "override: blocked-acquire dispatch cost")
		ioLatency = flag.Duration("iolatency", 0, "override: disk read service time")
		slice     = flag.Duration("timeslice", 0, "override: scheduler quantum")
	)
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	params := sim.DefaultParams()
	override := func(dst *sim.Time, v time.Duration) {
		if v > 0 {
			*dst = sim.Time(v)
		}
	}
	override(&params.UserWork, *userWork)
	override(&params.PolicyOp, *policyOp)
	override(&params.LockWarmup, *warmCost)
	override(&params.PrefetchWork, *warmCost)
	override(&params.CtxSwitch, *ctxSwitch)
	override(&params.IOLatency, *ioLatency)
	override(&params.TimeSlice, *slice)

	res, err := sim.Run(sim.Config{
		Procs:             *procs,
		Workers:           *workers,
		Policy:            *policy,
		Batching:          *batching,
		Prefetching:       *prefetching,
		QueueSize:         *queue,
		BatchThreshold:    *threshold,
		AdaptiveThreshold: *adaptive,
		SharedQueue:       *sharedQ,
		LockPartitions:    *partitions,
		Workload:          wl,
		Frames:            *frames,
		Prewarm:           *prewarm,
		Warmup:            sim.Time(*warmup),
		Duration:          sim.Time(*duration),
		Seed:              *seed,
		Params:            &params,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload            %s\n", wl.Name())
	fmt.Printf("processors          %d (%d workers)\n", res.Procs, res.Workers)
	fmt.Printf("virtual elapsed     %v\n", res.Elapsed)
	fmt.Printf("transactions        %d (%.0f tps)\n", res.Txns, res.ThroughputTPS)
	fmt.Printf("page accesses       %d (%.1f per txn)\n", res.Accesses, perTxn(res))
	fmt.Printf("avg response        %v\n", res.AvgResponse)
	fmt.Printf("hit ratio           %.4f (%d misses)\n", res.HitRatio, res.Misses)
	fmt.Printf("lock acquisitions   %d\n", res.Lock.Acquisitions)
	fmt.Printf("lock contentions    %d (%.1f per M accesses)\n", res.Lock.Contentions, res.ContentionPerM)
	fmt.Printf("trylock failures    %d\n", res.Lock.TryFailures)
	fmt.Printf("lock wait / hold    %v / %v\n", time.Duration(res.Lock.WaitTime), time.Duration(res.Lock.HoldTime))
	fmt.Printf("lock time / access  %v\n", res.LockTimePerAccess)
	if res.Committed+res.Dropped > 0 {
		fmt.Printf("batched commits     %d applied, %d dropped stale\n", res.Committed, res.Dropped)
	}
}

func perTxn(r sim.Result) float64 {
	if r.Txns == 0 {
		return 0
	}
	return float64(r.Accesses) / float64(r.Txns)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpsim:", err)
	os.Exit(1)
}
