package core

import (
	"sync"
	"testing"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// holdLock grabs the policy lock from a helper goroutine and returns a
// release func. The returned func blocks until the lock is dropped.
func holdLock(w *Wrapper) (release func()) {
	rel := make(chan struct{})
	held := make(chan struct{})
	done := make(chan struct{})
	go func() {
		w.Locked(func(replacer.Policy) {
			close(held)
			<-rel
		})
		close(done)
	}()
	<-held
	return func() {
		close(rel)
		<-done
	}
}

// TestFlatCombiningNeverBlocksAtThreshold is the acceptance criterion: with
// the policy lock held by someone else, a session crossing the batch
// threshold publishes and keeps going — synchronously, in this goroutine,
// with no channel games — all the way until both its buffers are full.
func TestFlatCombiningNeverBlocksAtThreshold(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 4})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})

	release := holdLock(w)

	// Threshold crossing #1: publishes the 4-entry batch, TryLock fails,
	// and — the point of the protocol — returns instead of re-accumulating
	// toward a blocking commit.
	for i := 0; i < 4; i++ {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	if got := w.Stats().HandoffSaved; got != 1 {
		t.Fatalf("HandoffSaved=%d, want 1 (publish with busy lock)", got)
	}
	// The session keeps recording into the spare buffer. Every further
	// access up to QueueSize-1 crosses the threshold again and must return
	// without blocking (slot still occupied, queue not yet full). If any of
	// these blocked, this single-goroutine test would deadlock.
	for i := 0; i < 7; i++ {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	if got := s.Pending(); got != 11 {
		t.Fatalf("pending=%d, want 11 (4 published + 7 recorded)", got)
	}
	if got := len(rec.ops); got != 1 {
		t.Fatalf("policy saw %d ops with the lock held, want 1 (the miss)", got)
	}
	st := w.Stats()
	if st.ForcedLocks != 0 {
		t.Fatalf("forcedLocks=%d, want 0: the session must not have blocked", st.ForcedLocks)
	}

	release()
	s.Flush()
	if got := len(rec.ops); got != 12 {
		t.Fatalf("policy saw %d ops after flush, want 12", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending=%d after flush", s.Pending())
	}
}

// TestFlatCombiningBoundedFallback drives a session until both its
// published batch and its recording queue are full; the next access must
// take the blocking forced-commit path and drain everything.
func TestFlatCombiningBoundedFallback(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 4})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})

	release := holdLock(w)
	for i := 0; i < 11; i++ { // 4 published + 7 queued
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	release()

	// 12th access: queue reaches QueueSize with the slot still occupied.
	// The lock is free again, so the forced fall-back applies the published
	// batch, then the queue, in order.
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	st := w.Stats()
	if st.ForcedLocks != 1 {
		t.Fatalf("forcedLocks=%d, want 1 (bounded-memory fall-back)", st.ForcedLocks)
	}
	if got := len(rec.ops); got != 13 { // miss + 12 hits
		t.Fatalf("policy saw %d ops, want 13", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending=%d after forced commit", s.Pending())
	}
}

// TestCombinerAppliesOtherSessionsBatches: session 1 publishes against a
// held lock; session 2 then commits normally and, as the combiner, applies
// session 1's batch too.
func TestCombinerAppliesOtherSessionsBatches(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 2})
	s1 := w.NewSession()
	s2 := w.NewSession()
	s1.Miss(pid(1), page.BufferTag{})
	s1.Miss(pid(2), page.BufferTag{})

	release := holdLock(w)
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)}) // threshold → publish, TryLock fails
	release()

	s2.Hit(pid(2), page.BufferTag{Page: pid(2)})
	s2.Hit(pid(2), page.BufferTag{Page: pid(2)}) // threshold → TryLock wins → combine

	st := w.Stats()
	if st.CombinedBatches != 1 || st.CombinedEntries != 2 {
		t.Fatalf("combined batches=%d entries=%d, want 1/2", st.CombinedBatches, st.CombinedEntries)
	}
	if got := len(rec.ops); got != 6 { // 2 misses + s2's 2 hits + s1's 2 hits
		t.Fatalf("policy saw %d ops, want 6: %v", got, rec.ops)
	}
	if s1.Pending() != 0 {
		t.Fatalf("s1 pending=%d: combiner did not drain its slot", s1.Pending())
	}
}

// TestFlatCombiningMissAppliesPublishedFirst checks the per-session
// ordering argument: on a miss, the session's published (older) batch is
// applied before its private (younger) queue, before the miss itself.
func TestFlatCombiningMissAppliesPublishedFirst(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 2})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Miss(pid(2), page.BufferTag{})

	release := holdLock(w)
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // published: [h1 h1]
	s.Hit(pid(2), page.BufferTag{Page: pid(2)}) // queued:    [h2]
	release()

	s.Miss(pid(3), page.BufferTag{})
	want := []string{
		"m" + pid(1).String(), "m" + pid(2).String(),
		"h" + pid(1).String(), "h" + pid(1).String(), // published batch first
		"h" + pid(2).String(), // then the younger queue
		"m" + pid(3).String(), // then the miss
	}
	if len(rec.ops) != len(want) {
		t.Fatalf("ops=%v want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("op[%d]=%s want %s (order not preserved)", i, rec.ops[i], want[i])
		}
	}
}

// TestFlatCombiningFlushDrainsPublished: Flush must apply a published
// batch the combiner never reached, plus the recording queue.
func TestFlatCombiningFlushDrainsPublished(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 2})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})

	release := holdLock(w)
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // published
	s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // queued
	release()

	s.Flush()
	if got := len(rec.ops); got != 4 {
		t.Fatalf("policy saw %d ops after flush, want 4", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending=%d after flush", s.Pending())
	}
	s.Flush() // idempotent: empty queue, empty slot → no lock acquisition
	if got := len(rec.ops); got != 4 {
		t.Fatalf("empty flush changed state: %v", rec.ops)
	}
}

// TestFlatCombiningSequenceEqualsUnbatched extends the paper's
// order-preservation property to the flat-combining path: a single
// session's operation sequence is identical to the unbatched one.
func TestFlatCombiningSequenceEqualsUnbatched(t *testing.T) {
	trace := make([]page.PageID, 0, 5000)
	for i := 0; i < 5000; i++ {
		trace = append(trace, pid(uint64(i*i)%97))
	}
	run := func(cfg Config) []string {
		rec := newRecording(32)
		w := New(rec, cfg)
		s := w.NewSession()
		for _, id := range trace {
			access(w, s, rec, id)
		}
		s.Flush()
		return rec.ops
	}
	plain := run(Config{})
	fc := run(Config{Batching: true, FlatCombining: true, QueueSize: 64, BatchThreshold: 32})
	if len(plain) != len(fc) {
		t.Fatalf("op counts differ: %d vs %d", len(plain), len(fc))
	}
	for i := range plain {
		if plain[i] != fc[i] {
			t.Fatalf("op[%d]: %s vs %s", i, plain[i], fc[i])
		}
	}
}

// TestFlatCombiningConfigNormalization: the flag is meaningless without
// batching and loses to SharedQueue.
func TestFlatCombiningConfigNormalization(t *testing.T) {
	if cfg := (Config{FlatCombining: true}).withDefaults(); cfg.FlatCombining {
		t.Fatal("FlatCombining survived without Batching")
	}
	if cfg := (Config{Batching: true, SharedQueue: true, FlatCombining: true}).withDefaults(); cfg.FlatCombining {
		t.Fatal("FlatCombining survived with SharedQueue")
	}
	w := New(replacer.NewLRU(8), Config{FlatCombining: true})
	if w.fc != nil || w.NewSession().slot != nil {
		t.Fatal("combiner allocated for a config that normalizes FlatCombining away")
	}
}

// TestFlatCombiningBufferRecycling: after the first full
// publish/combine/republish cycle, the slot rotation must reuse the
// drained buffer rather than allocating a new one.
func TestFlatCombiningBufferRecycling(t *testing.T) {
	w := New(replacer.NewLRU(64), Config{Batching: true, FlatCombining: true, QueueSize: 8, BatchThreshold: 2})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	// Warm the rotation: one publish+self-combine puts a buffer in done.
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Flush()

	allocs := testing.AllocsPerRun(100, func() {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // publish + combine (lock free)
	})
	if allocs > 0 {
		t.Fatalf("steady-state flat-combining commit allocates %.1f per cycle, want 0", allocs)
	}
}

// TestFlatCombiningConcurrent hammers the wrapper from many goroutines —
// correctness is checked by the policy's unguarded call counter under
// -race and by exact conservation of the entry counts.
func TestFlatCombiningConcurrent(t *testing.T) {
	const (
		goroutines = 8
		accesses   = 4000
	)
	rec := newRecording(128)
	w := New(rec, Config{Batching: true, FlatCombining: true, QueueSize: 16, BatchThreshold: 8})
	// Seed residency single-threaded so workers only produce hits.
	seed := w.NewSession()
	for i := 0; i < 64; i++ {
		seed.Miss(pid(uint64(i)), page.BufferTag{})
	}
	seed.Flush()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := w.NewSession()
			for i := 0; i < accesses; i++ {
				id := pid(uint64((g*31 + i) % 64))
				s.Hit(id, page.BufferTag{Page: id})
			}
			s.Flush()
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if st.Hits != goroutines*accesses {
		t.Fatalf("hits=%d, want %d", st.Hits, goroutines*accesses)
	}
	if st.Committed != goroutines*accesses {
		t.Fatalf("committed=%d, want %d: entries lost or duplicated", st.Committed, goroutines*accesses)
	}
	if rec.calls != goroutines*accesses+64 {
		t.Fatalf("policy calls=%d, want %d", rec.calls, goroutines*accesses+64)
	}
}
