package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// The chaos experiment (E16) drives the graceful-degradation machinery —
// per-shard circuit breakers, miss admission control, quarantine-pressure
// health — through four scripted fault scenarios and reports the
// machinery's event counts. Unlike the torture chaos scenarios (which use
// wall-clock deadlines and concurrency), E16 is built to be byte-for-byte
// reproducible: a scripted tick clock replaces time.Now inside the
// breaker, retry backoffs are no-op sleeps, fault rates are only 0 or 1,
// and one goroutine drives every operation in a fixed order. The
// committed results/BENCH_chaos.json is therefore a behavioural baseline:
// a diff after a change to internal/buffer or internal/storage is a real
// protocol difference, not scheduling noise.

// ChaosRow is one scenario's event ledger.
type ChaosRow struct {
	Scenario           string `json:"scenario"`
	Misses             int64  `json:"misses"`
	Shed               int64  `json:"shed"`
	BreakerTrips       int64  `json:"breaker_trips"`
	BreakerRejections  int64  `json:"breaker_rejections"`
	Probes             int64  `json:"probes"`
	QuarantineRefusals int64  `json:"quarantine_refusals"`
	PeakHealth         string `json:"peak_health"`
	FinalHealth        string `json:"final_health"`
	Recovered          bool   `json:"recovered"`
	LostPages          int    `json:"lost_pages"`
}

// ChaosReport is the committed E16 baseline shape.
type ChaosReport struct {
	Experiment string     `json:"experiment"`
	Seed       int64      `json:"seed"`
	Rows       []ChaosRow `json:"rows"`
}

// tickClock is a scripted clock: every reading advances a fixed step, so
// "latency" under it is a function of the operation sequence alone. The
// step is the scenario's brownout knob — raising it past the breaker's
// SLO makes every operation measure slow without any wall time passing.
type tickClock struct {
	t    time.Time
	step time.Duration
}

func newTickClock() *tickClock {
	return &tickClock{t: time.Unix(1000, 0), step: 100 * time.Microsecond}
}

func (c *tickClock) Now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

const (
	chaosTable  = 0x7e
	chaosSLO    = time.Millisecond // tick step 100µs is fast, 2ms is a brownout
	chaosShards = 2
	chaosHot    = 2 // resident pages per shard
	chaosCold   = 6 // miss-provoking pages per shard
)

func chaosPage(b uint64) page.PageID { return page.NewPageID(chaosTable, b) }

// chaosStamp encodes (block, version) as a stamp identity, like the
// torture harness does, so lost updates are detectable from raw bytes.
func chaosStamp(id page.PageID, version int) page.PageID {
	return page.NewPageID(uint32(0x200+version), id.Block())
}

// chaosRun is one scenario's assembled stack plus its shadow model.
type chaosRun struct {
	pool     *buffer.Pool
	mem      *storage.MemDevice
	clocks   []*tickClock // one per shard: a brownout slows only its shard
	faults   []*storage.FaultDevice
	breakers []*storage.BreakerDevice
	ids      [][]page.PageID // per shard: hot ids first, then cold
	versions map[page.PageID]int
	ses      *buffer.Session
	row      *ChaosRow
}

// buildChaosRun assembles the per-shard resilience stacks. minSamples
// lets the quarantine scenario park its breaker (a breaker that trips
// would shed the misses the quarantine ladder is supposed to drive).
func buildChaosRun(seed int64, scenario string, minSamples int) *chaosRun {
	r := &chaosRun{
		mem:      storage.NewMemDevice(),
		clocks:   make([]*tickClock, chaosShards),
		faults:   make([]*storage.FaultDevice, chaosShards),
		breakers: make([]*storage.BreakerDevice, chaosShards),
		versions: map[page.PageID]int{},
		row:      &ChaosRow{Scenario: scenario},
	}
	framesPerShard := chaosHot + chaosCold/2 // cold misses overflow the shard
	r.pool = buffer.New(buffer.Config{
		Frames:        framesPerShard * chaosShards,
		Shards:        chaosShards,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Device:        r.mem,
		QuarantineCap: 2 * chaosShards,
		WrapShardDevice: func(shard int, base storage.Device) storage.Device {
			r.clocks[shard] = newTickClock()
			r.faults[shard] = storage.NewFaultDevice(base, storage.FaultConfig{Seed: seed + int64(shard)})
			retry := storage.NewRetryDevice(storage.NewChecksumDevice(r.faults[shard]), storage.RetryConfig{
				MaxAttempts: 2,
				Sleep:       func(time.Duration) {}, // no wall time in the ladder
				Jitter:      -1,
				Seed:        seed,
			})
			dl := storage.NewDeadlineDevice(retry, storage.DeadlineConfig{
				ReadDeadline:  time.Hour, // present in the stack, never firing:
				WriteDeadline: time.Hour, // deadline timing is wall-clock, not scripted
			})
			r.breakers[shard] = storage.NewBreakerDevice(dl, storage.BreakerConfig{
				Window:         16,
				MinSamples:     minSamples,
				LatencySLO:     chaosSLO,
				OpenTimeout:    10 * time.Millisecond, // 100 ticks at the fast step
				ProbeProb:      1,
				HalfOpenProbes: 2,
				Seed:           seed,
				Now:            r.clocks[shard].Now,
			})
			return r.breakers[shard]
		},
	})
	// Partition ids by owning shard and seed version 0 below the stacks.
	r.ids = make([][]page.PageID, chaosShards)
	for b := uint64(0); ; b++ {
		id := chaosPage(b)
		s := r.pool.ShardOf(id)
		if len(r.ids[s]) < chaosHot+chaosCold {
			r.ids[s] = append(r.ids[s], id)
		}
		full := true
		for _, l := range r.ids {
			if len(l) < chaosHot+chaosCold {
				full = false
			}
		}
		if full {
			break
		}
	}
	for _, l := range r.ids {
		for _, id := range l {
			var pg page.Page
			pg.Stamp(chaosStamp(id, 0))
			pg.ID = id
			r.mem.WritePage(&pg)
			r.versions[id] = 0
		}
	}
	r.ses = r.pool.NewSession()
	return r
}

// write dirties id with the next version through the pool.
func (r *chaosRun) write(id page.PageID) error {
	ref, err := r.pool.GetWrite(r.ses, id)
	if err != nil {
		return err
	}
	v := r.versions[id] + 1
	var pg page.Page
	pg.Stamp(chaosStamp(id, v))
	copy(ref.Data(), pg.Data[:])
	ref.MarkDirty()
	ref.Release()
	r.versions[id] = v
	return nil
}

// observe folds the sick shard's health into the row's peak.
func (r *chaosRun) observe() buffer.HealthState {
	h := r.pool.Stats().PerShard[0].Health
	if peak := h.String(); r.row.PeakHealth == "" || h > parseHealth(r.row.PeakHealth) {
		r.row.PeakHealth = peak
	}
	return h
}

func parseHealth(s string) buffer.HealthState {
	switch s {
	case "degraded":
		return buffer.Degraded
	case "read-only":
		return buffer.ReadOnly
	default:
		return buffer.Healthy
	}
}

// finish heals, walks the breaker back closed, closes the pool, and
// scores the zero-lost-dirty oracle against the raw device.
func (r *chaosRun) finish() error {
	r.faults[0].SetReadFailRate(0)
	r.faults[0].SetWriteFailRate(0)
	r.clocks[0].step = 100 * time.Microsecond
	// Walk the open timeout off the scripted clock and feed probes until
	// the breaker re-closes (HalfOpenProbes successes; cap the walk so a
	// regression cannot loop forever).
	cold := r.ids[0][chaosHot:]
	for i := 0; i < 300 && r.breakers[0].State() != storage.BreakerClosed; i++ {
		if ref, err := r.pool.Get(r.ses, cold[i%len(cold)]); err == nil {
			ref.Release()
		}
	}
	recovered := r.breakers[0].State() == storage.BreakerClosed
	if _, err := r.pool.FlushDirty(); err != nil { // drain parked quarantine writes
		return fmt.Errorf("chaos %s: flush after healing: %w", r.row.Scenario, err)
	}
	st := r.pool.Stats()
	r.row.FinalHealth = st.PerShard[0].Health.String()
	r.row.Recovered = recovered && st.PerShard[0].Health == buffer.Healthy
	if err := r.pool.Close(); err != nil {
		return fmt.Errorf("chaos %s: close after healing: %w", r.row.Scenario, err)
	}
	for id, v := range r.versions {
		var pg page.Page
		if err := r.mem.ReadPage(id, &pg); err != nil {
			return fmt.Errorf("chaos %s: post-close read %v: %w", r.row.Scenario, id, err)
		}
		if !pg.VerifyStamp(chaosStamp(id, v)) {
			r.row.LostPages++
		}
	}
	bs := r.breakers[0].BreakerStats()
	r.row.BreakerTrips = bs.Trips
	r.row.BreakerRejections = bs.Rejections
	r.row.Probes = bs.Probes
	r.row.Misses = st.Misses
	r.row.Shed = st.Shed
	r.row.QuarantineRefusals = st.PerShard[0].QuarantineRefusals
	return nil
}

// chaosScenario runs one scripted campaign and returns its row.
func chaosScenario(seed int64, scenario string) (ChaosRow, error) {
	minSamples := 4
	if scenario == "quarantine" {
		minSamples = 1000 // breaker parked: quarantine depth drives health alone
	}
	r := buildChaosRun(seed, scenario, minSamples)

	// Warm the hot set (resident + dirty) on every shard.
	for s := 0; s < chaosShards; s++ {
		for _, id := range r.ids[s][:chaosHot] {
			if err := r.write(id); err != nil {
				return ChaosRow{}, fmt.Errorf("chaos %s: warmup: %w", scenario, err)
			}
		}
	}

	// Inject the scenario's fault on shard 0.
	switch scenario {
	case "brownout":
		r.clocks[0].step = 2 * chaosSLO // shard 0's ops now measure past the SLO
	case "harddown", "recovery":
		r.faults[0].SetReadFailRate(1)
		r.faults[0].SetWriteFailRate(1)
	case "quarantine":
		r.faults[0].SetWriteFailRate(1) // reads fine; dirty evictions park
	default:
		return ChaosRow{}, fmt.Errorf("chaos: unknown scenario %q", scenario)
	}

	// Scripted degraded window: a fixed budget of sick-shard cold misses
	// (errors and sheds are the measured behaviour), the quarantine
	// ladder for the write-fault scenario (dirty cold pages so evictions
	// must write back), and hot reads plus healthy-shard misses that must
	// keep serving throughout.
	cold := func(s, i int) page.PageID { return r.ids[s][chaosHot+i%chaosCold] }
	for i := 0; i < 24; i++ {
		if scenario == "quarantine" {
			if err := r.write(cold(0, i)); err == nil {
				// dirty page loaded; the next misses will evict it into a
				// failing write-back and park it
				_ = err
			}
		} else if ref, err := r.pool.Get(r.ses, cold(0, i)); err == nil {
			ref.Release()
		}
		r.observe()
		for _, id := range r.ids[0][:chaosHot] {
			ref, err := r.pool.Get(r.ses, id)
			if err != nil {
				return ChaosRow{}, fmt.Errorf("chaos %s: resident read failed mid-fault: %w", scenario, err)
			}
			ref.Release()
		}
		if ref, err := r.pool.Get(r.ses, cold(1, i)); err != nil {
			return ChaosRow{}, fmt.Errorf("chaos %s: healthy-shard miss failed mid-fault: %w", scenario, err)
		} else {
			ref.Release()
		}
	}

	if err := r.finish(); err != nil {
		return ChaosRow{}, err
	}
	return *r.row, nil
}

// ChaosExperiment runs every scenario at o.Seed.
func ChaosExperiment(o Options) (*ChaosReport, error) {
	o = o.withDefaults()
	rep := &ChaosReport{Experiment: "chaos", Seed: o.Seed}
	for _, sc := range []string{"brownout", "harddown", "quarantine", "recovery"} {
		row, err := chaosScenario(o.Seed, sc)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// JSONChaos writes the committed-baseline shape.
func JSONChaos(w io.Writer, rep *ChaosReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CSVChaos writes one row per scenario.
func CSVChaos(w io.Writer, rep *ChaosReport) error {
	if _, err := fmt.Fprintln(w, "scenario,misses,shed,breaker_trips,breaker_rejections,probes,quarantine_refusals,peak_health,final_health,recovered,lost_pages"); err != nil {
		return err
	}
	for _, r := range rep.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%s,%s,%v,%d\n",
			r.Scenario, r.Misses, r.Shed, r.BreakerTrips, r.BreakerRejections,
			r.Probes, r.QuarantineRefusals, r.PeakHealth, r.FinalHealth, r.Recovered, r.LostPages); err != nil {
			return err
		}
	}
	return nil
}

// PrintChaos renders the ledger as a table.
func PrintChaos(w io.Writer, rep *ChaosReport) {
	fmt.Fprintln(w, "Chaos scenarios (E16) — graceful-degradation event ledger (scripted clock, deterministic)")
	fmt.Fprintf(w, "  %-10s %7s %6s %6s %7s %7s %8s %-10s %-10s %-9s %5s\n",
		"scenario", "misses", "shed", "trips", "reject", "probes", "quarref", "peak", "final", "recovered", "lost")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "  %-10s %7d %6d %6d %7d %7d %8d %-10s %-10s %-9v %5d\n",
			r.Scenario, r.Misses, r.Shed, r.BreakerTrips, r.BreakerRejections,
			r.Probes, r.QuarantineRefusals, r.PeakHealth, r.FinalHealth, r.Recovered, r.LostPages)
	}
}
