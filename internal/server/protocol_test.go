package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/storage"
)

// TestFrameGoldenEncoding pins the wire format byte for byte: if any of
// these fail, the protocol changed incompatibly and every deployed client
// would desync. New fields mean a new opcode, not a reshaped frame.
func TestFrameGoldenEncoding(t *testing.T) {
	cases := []struct {
		name    string
		code    byte
		reqID   uint64
		payload [][]byte
		want    []byte
	}{
		{
			name:  "flush-empty-payload",
			code:  OpFlush,
			reqID: 0x0102030405060708,
			want: []byte{
				0x00, 0x00, 0x00, 0x09, // length = 9: header only
				0x04,                                           // OpFlush
				0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // reqID
			},
		},
		{
			name:    "get-pageid",
			code:    OpGet,
			reqID:   1,
			payload: [][]byte{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33}},
			want: []byte{
				0x00, 0x00, 0x00, 0x11, // length = 9 + 8
				0x01,                                           // OpGet
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, // reqID
				0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33, // PageID
			},
		},
		{
			name:    "response-overloaded",
			code:    StatusOverloaded,
			reqID:   7,
			payload: [][]byte{[]byte("shed")},
			want: []byte{
				0x00, 0x00, 0x00, 0x0d, // length = 9 + 4
				0x01,                                           // StatusOverloaded
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // reqID
				's', 'h', 'e', 'd',
			},
		},
		{
			name:    "split-payload-concatenates",
			code:    OpPut,
			reqID:   2,
			payload: [][]byte{{0xaa}, {0xbb, 0xcc}},
			want: []byte{
				0x00, 0x00, 0x00, 0x0c,
				0x02,
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02,
				0xaa, 0xbb, 0xcc,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := appendFrame(nil, tc.code, tc.reqID, tc.payload...)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("encoded frame\n got %#v\nwant %#v", got, tc.want)
			}
			// And the decoder inverts it.
			fr := frameReader{r: bufio.NewReader(bytes.NewReader(got))}
			code, id, payload, err := fr.next()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var flat []byte
			for _, p := range tc.payload {
				flat = append(flat, p...)
			}
			if code != tc.code || id != tc.reqID || !bytes.Equal(payload, flat) {
				t.Fatalf("decode: code=%d id=%d payload=%#v, want %d/%d/%#v",
					code, id, payload, tc.code, tc.reqID, flat)
			}
		})
	}
}

// TestFrameDecodeMalformed pins the decoder's failure taxonomy: length
// words below the header size and above the payload bound are typed
// errors, truncation mid-frame is ErrUnexpectedEOF, and a clean EOF is
// only legal on a frame boundary.
func TestFrameDecodeMalformed(t *testing.T) {
	frame := func(raw ...byte) *frameReader {
		return &frameReader{r: bufio.NewReader(bytes.NewReader(raw))}
	}
	t.Run("length-below-header", func(t *testing.T) {
		_, _, _, err := frame(0x00, 0x00, 0x00, 0x08).next()
		if !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("err = %v, want ErrMalformedFrame", err)
		}
	})
	t.Run("length-zero", func(t *testing.T) {
		_, _, _, err := frame(0x00, 0x00, 0x00, 0x00).next()
		if !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("err = %v, want ErrMalformedFrame", err)
		}
	})
	t.Run("length-over-bound", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], frameHeaderLen+MaxPayload+1)
		_, _, _, err := frame(hdr[:]...).next()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("length-maximum-uint32", func(t *testing.T) {
		_, _, _, err := frame(0xff, 0xff, 0xff, 0xff).next()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		_, _, _, err := frame(0x00, 0x00, 0x00, 0x09, 0x01).next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		raw := appendFrame(nil, OpGet, 1, make([]byte, 8))
		_, _, _, err := frame(raw[:len(raw)-3]...).next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("clean-eof-on-boundary", func(t *testing.T) {
		_, _, _, err := frame().next()
		if !errors.Is(err, io.EOF) {
			t.Fatalf("err = %v, want io.EOF", err)
		}
	})
	t.Run("truncated-length-word", func(t *testing.T) {
		_, _, _, err := frame(0x00, 0x00).next()
		// io.ReadFull on the length word itself: an UnexpectedEOF from
		// the stdlib, not our wrapper — both are acceptable cut signals.
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
}

// TestFrameDecoderReusesBuffer verifies the zero-alloc contract: decoding
// a pipelined burst grows the payload buffer once and never beyond
// MaxPayload, and each payload aliases that buffer.
func TestFrameDecoderReusesBuffer(t *testing.T) {
	var raw []byte
	big := make([]byte, page.Size)
	for i := 0; i < 64; i++ {
		raw = appendFrame(raw, OpPut, uint64(i), make([]byte, 8), big)
	}
	fr := frameReader{r: bufio.NewReader(bytes.NewReader(raw))}
	var capAfterFirst int
	for i := 0; i < 64; i++ {
		_, id, payload, err := fr.next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != uint64(i) {
			t.Fatalf("frame %d: id %d", i, id)
		}
		if len(payload) != 8+page.Size {
			t.Fatalf("frame %d: payload %d bytes", i, len(payload))
		}
		if i == 0 {
			capAfterFirst = cap(fr.buf)
		} else if cap(fr.buf) != capAfterFirst {
			t.Fatalf("frame %d: buffer reallocated (cap %d → %d)", i, capAfterFirst, cap(fr.buf))
		}
	}
	if cap(fr.buf) > MaxPayload {
		t.Fatalf("decoder buffer cap %d exceeds MaxPayload %d", cap(fr.buf), MaxPayload)
	}
}

// TestStatusErrorRoundTrip verifies the error taxonomy survives the wire:
// server-side statusForErr and client-side errForStatus compose to an
// error satisfying the same errors.Is checks as the original.
func TestStatusErrorRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		status   byte
		sentinel error
	}{
		{"overloaded", buffer.ErrOverloaded, StatusOverloaded, buffer.ErrOverloaded},
		{"invalid-page", storage.ErrInvalidPage, StatusInvalidPage, storage.ErrInvalidPage},
		{"no-buffers", buffer.ErrNoUnpinnedBuffers, StatusNoBuffers, buffer.ErrNoUnpinnedBuffers},
		{"quarantine-full-collapses-to-no-buffers", buffer.ErrQuarantineFull, StatusNoBuffers, buffer.ErrNoUnpinnedBuffers},
		{"wrapped-overloaded", errors.Join(errors.New("ctx"), buffer.ErrOverloaded), StatusOverloaded, buffer.ErrOverloaded},
		{"io-error", errors.New("disk on fire"), StatusIOError, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := statusForErr(tc.err)
			if st != tc.status {
				t.Fatalf("statusForErr = %s, want %s", statusName(st), statusName(tc.status))
			}
			back := errForStatus(st, []byte(tc.err.Error()))
			if back == nil {
				t.Fatal("errForStatus returned nil for a failure status")
			}
			if tc.sentinel != nil && !errors.Is(back, tc.sentinel) {
				t.Fatalf("round-tripped error %v does not satisfy %v", back, tc.sentinel)
			}
		})
	}
	if statusForErr(nil) != StatusOK {
		t.Fatal("statusForErr(nil) != StatusOK")
	}
	if errForStatus(StatusOK, nil) != nil {
		t.Fatal("errForStatus(StatusOK) != nil")
	}
	if !errors.Is(errForStatus(StatusDraining, nil), ErrDraining) {
		t.Fatal("StatusDraining does not map to ErrDraining")
	}
}

// FuzzFrameDecode feeds arbitrary byte streams — including mutated valid
// frames with duplicate request IDs — through the decoder. The decoder
// must never panic and never allocate beyond MaxPayload, whatever the
// length words claim.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x09, 0x04, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	// A valid GET, a duplicate-ID GET, then a truncated PUT.
	dup := appendFrame(nil, OpGet, 42, make([]byte, 8))
	dup = appendFrame(dup, OpGet, 42, make([]byte, 8))
	dup = append(dup, appendFrame(nil, OpPut, 43, make([]byte, 100))[:20]...)
	f.Add(dup)
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr := frameReader{r: bufio.NewReader(bytes.NewReader(raw))}
		seen := make(map[uint64]int)
		for {
			code, id, payload, err := fr.next()
			if err != nil {
				break // any error ends the stream; it must just not panic
			}
			if len(payload) > MaxPayload {
				t.Fatalf("payload %d bytes exceeds MaxPayload", len(payload))
			}
			_ = code
			seen[id]++
		}
		if cap(fr.buf) > MaxPayload {
			t.Fatalf("decoder retained %d-byte buffer, bound is %d", cap(fr.buf), MaxPayload)
		}
		// Duplicate IDs are legal at the framing layer (positional
		// matching); the decoder must simply deliver them all.
		_ = seen
	})
}
