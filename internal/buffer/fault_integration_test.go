package buffer

import (
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// TestEndToEndDurabilityUnderTransientFaults drives the pool through the
// full production fault stack — Retry(Checksum(Fault(Mem))) — under
// concurrent write traffic with random transient read/write faults, then
// evicts everything, drains with Close, and proves every acknowledged
// write survived to storage bit-for-bit. Run with -race; it exercises the
// quarantine, adoption, retry, and checksum paths concurrently.
func TestEndToEndDurabilityUnderTransientFaults(t *testing.T) {
	const (
		frames  = 16
		pages   = 64
		writers = 4
	)
	mem := storage.NewMemDevice()
	fault := storage.NewFaultDevice(mem, storage.FaultConfig{
		Seed:          7,
		ReadFailProb:  0.05,
		WriteFailProb: 0.30,
		CorruptProb:   0.02,
	})
	check := storage.NewChecksumDevice(fault)
	retry := storage.NewRetryDevice(check, storage.RetryConfig{
		MaxAttempts: 12,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  50 * time.Microsecond,
		Seed:        7,
	})
	p := New(Config{
		Frames:  frames,
		Policy:  replacer.NewLRU(frames),
		Wrapper: core.Config{Batching: true, QueueSize: 8, BatchThreshold: 4},
		Device:  retry,
	})

	// Concurrent writers fill pages 1..pages with shifted stamps (content
	// the device would never synthesize on its own) while faults fire.
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := p.NewSession()
			defer s.Flush()
			for i := g; i < pages; i += writers {
				id := pid(uint64(i + 1))
				ref, err := p.GetWrite(s, id)
				if err != nil {
					t.Errorf("GetWrite(%v): %v", id, err)
					return
				}
				var want page.Page
				want.Stamp(id + stampShift)
				copy(ref.Data(), want.Data[:])
				ref.MarkDirty()
				ref.Release()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Evict everything: read a disjoint page range larger than the pool.
	s := p.NewSession()
	for i := uint64(1000); i < 1000+3*frames; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatalf("evicting read: %v", err)
		}
		ref.Release()
	}
	s.Flush()

	// Stop injecting and drain whatever is still dirty or quarantined.
	fault.SetReadFailRate(0)
	fault.SetWriteFailRate(0)
	fault.SetCorruptRate(0)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every page must be durable with exactly the written bytes; read
	// through the checksum layer so verification is end-to-end.
	for i := uint64(1); i <= pages; i++ {
		var back page.Page
		if err := retry.ReadPage(pid(i), &back); err != nil {
			t.Fatalf("read-back of page %d: %v", i, err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("page %d content lost or corrupted across faulty eviction", i)
		}
	}

	// The observability counters must have seen the storm.
	st := p.Stats()
	if st.Device.Retries == 0 {
		t.Fatal("no retries recorded despite 30% write-fault rate")
	}
	if st.Device.WriteErrors == 0 && st.Device.ReadErrors == 0 {
		t.Fatal("no device errors recorded despite fault injection")
	}
	if st.Quarantined != 0 {
		t.Fatalf("%d pages left quarantined after Close", st.Quarantined)
	}
}

// TestCorruptionDetectedThroughPool checks a corrupted device read of a
// previously written page surfaces as ErrCorruptPage through the pool
// (without a retry layer to heal it) and is visible in Pool.Stats.
func TestCorruptionDetectedThroughPool(t *testing.T) {
	mem := storage.NewMemDevice()
	fault := storage.NewFaultDevice(mem, storage.FaultConfig{})
	check := storage.NewChecksumDevice(fault)
	p := New(Config{
		Frames: 4,
		Policy: replacer.NewLRU(4),
		Device: check,
	})
	s := p.NewSession()

	dirtyPage(t, p, s, pid(1))
	if _, err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// Evict page 1 so the next access reads the device.
	for i := uint64(10); i < 20; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	fault.SetCorruptRate(1)
	_, err := p.Get(s, pid(1))
	if !storage.Retryable(err) || err == nil {
		t.Fatalf("corrupted load err=%v, want retryable ErrCorruptPage", err)
	}
	if got := p.Stats().Device.CorruptPages; got == 0 {
		t.Fatal("CorruptPages not visible through Pool.Stats")
	}
	// Heal the device: the page loads again and carries the written bytes.
	fault.SetCorruptRate(0)
	ref, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatalf("pool did not recover from corruption: %v", err)
	}
	var got page.Page
	copy(got.Data[:], ref.Data())
	ref.Release()
	if !got.VerifyStamp(pid(1) + stampShift) {
		t.Fatal("recovered page has wrong contents")
	}
}
