package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestTunerExperiment runs E19 end to end and checks the acceptance
// criteria directly: phase A's controller must recover at least half of
// the SEQ hit-ratio loss that sharding inflicts (E14's measured gap), and
// phase B must hot-swap away from the misconfigured policy and beat its
// steady-state ratio decisively. The experiment is deterministic, so these
// are exact-replay assertions, not statistical ones.
func TestTunerExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuner replay skipped in -short")
	}
	rep, err := TunerExperiment(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	r := rep.Reshard
	if r.BaselineStart >= r.Baseline1 {
		t.Fatalf("trace does not show the fragmentation loss: 1-shard %.4f vs %d-shard %.4f",
			r.Baseline1, r.StartShards, r.BaselineStart)
	}
	if r.FinalShards >= r.StartShards {
		t.Fatalf("controller never resharded down: final %d shards (actions %v)", r.FinalShards, r.Actions)
	}
	if r.RecoveredFrac < 0.5 {
		t.Fatalf("tuned pool recovered %.0f%% of the loss, want >= 50%% (tuned %.4f, baselines %.4f/%.4f)",
			100*r.RecoveredFrac, r.TunedRatio, r.BaselineStart, r.Baseline1)
	}
	downs := 0
	for _, a := range r.Actions {
		if a.Kind == "reshard-down" {
			downs++
		}
	}
	if downs == 0 {
		t.Fatalf("no reshard-down action recorded: %v", r.Actions)
	}

	s := rep.Swap
	if s.FinalPolicy == s.Configured {
		t.Fatalf("controller kept the misconfigured policy %q (actions %v)", s.Configured, s.Actions)
	}
	if s.TunedRatio <= s.StaticRatio+0.1 {
		t.Fatalf("swap did not pay: static %.4f vs tuned %.4f", s.StaticRatio, s.TunedRatio)
	}

	// Output shapes render without error and carry the headline figures.
	var buf bytes.Buffer
	PrintTuner(&buf, rep)
	if !strings.Contains(buf.String(), "Phase A") || !strings.Contains(buf.String(), "Phase B") {
		t.Fatalf("print output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := CSVTuner(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 6 {
		t.Fatalf("csv has %d lines, want header + 5 rows", lines)
	}
	buf.Reset()
	if err := JSONTuner(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"experiment": "tuner"`) {
		t.Fatal("json missing experiment tag")
	}
}
