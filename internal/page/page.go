// Package page defines the fundamental page and buffer-tag types shared by
// the buffer manager, the replacement policies, and the BP-Wrapper core.
//
// A database file is modelled as a sequence of fixed-size pages. A page is
// identified globally by a PageID, which packs a table (relation) number and
// a block number within that table. The buffer manager additionally stamps
// each cached copy with a BufferTag so that deferred (batched) access records
// can detect that a frame was recycled between the access and its commit, as
// described in Section IV-B of the BP-Wrapper paper.
package page

import "fmt"

// Size is the size of a database page in bytes. PostgreSQL uses 8 KB pages;
// we follow suit. The value only matters for the simulated storage device
// and the buffer-size accounting in the Figure 8 experiment.
const Size = 8192

// PageID identifies a disk page globally. The high 20 bits hold the table
// (relation) number, the low 44 bits the block number within the table.
type PageID uint64

// InvalidPageID is the zero PageID; table numbers start at 1 so no valid
// page maps to it.
const InvalidPageID PageID = 0

const (
	blockBits = 44
	blockMask = (1 << blockBits) - 1
	maxTable  = 1<<20 - 1
)

// NewPageID packs a table number and a block number into a PageID.
// Table numbers must be in [1, 2^20-1]; block numbers in [0, 2^44-1].
func NewPageID(table uint32, block uint64) PageID {
	if table == 0 || table > maxTable {
		panic(fmt.Sprintf("page: table number %d out of range [1, %d]", table, maxTable))
	}
	if block > blockMask {
		panic(fmt.Sprintf("page: block number %d out of range", block))
	}
	return PageID(uint64(table)<<blockBits | block)
}

// Table returns the table (relation) number encoded in the PageID.
func (id PageID) Table() uint32 { return uint32(uint64(id) >> blockBits) }

// Block returns the block number within the table.
func (id PageID) Block() uint64 { return uint64(id) & blockMask }

// Valid reports whether the PageID identifies a real page.
func (id PageID) Valid() bool { return id != InvalidPageID }

// String renders the PageID as "table:block" for diagnostics.
func (id PageID) String() string {
	if !id.Valid() {
		return "invalid"
	}
	return fmt.Sprintf("%d:%d", id.Table(), id.Block())
}

// BufferTag identifies the logical page currently held by a buffer frame
// together with a generation number. The generation is bumped every time the
// frame is loaded with a different page, so a stale queued access record
// (whose tag no longer matches the frame's) can be discarded at commit time
// instead of corrupting the replacement algorithm's bookkeeping.
type BufferTag struct {
	Page PageID
	Gen  uint64
}

// Matches reports whether the tag still refers to the same cached copy.
func (t BufferTag) Matches(o BufferTag) bool { return t.Page == o.Page && t.Gen == o.Gen }

// Page is an in-memory copy of a disk page.
type Page struct {
	ID   PageID
	Data [Size]byte
}

// Checksum computes a cheap FNV-1a checksum over the page contents. The
// storage device and buffer-pool tests use it to verify data integrity
// across eviction/reload cycles.
func (p *Page) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range p.Data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Stamp fills the page with a deterministic pattern derived from the PageID,
// so tests and the simulated device can verify that the right bytes came
// back without storing golden copies.
func (p *Page) Stamp(id PageID) {
	p.ID = id
	x := uint64(id)*2654435761 + 0x9e3779b97f4a7c15
	for i := range p.Data {
		// xorshift64 keeps the pattern cheap but non-trivial.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.Data[i] = byte(x)
	}
}

// VerifyStamp reports whether the page holds exactly the pattern Stamp
// writes for the given id.
func (p *Page) VerifyStamp(id PageID) bool {
	var want Page
	want.Stamp(id)
	return p.Data == want.Data
}
