//go:build !torture

package metrics

// tortureChecks is false in release builds: the quiescence assertions are
// compile-time dead code and cost nothing on the hot paths.
const tortureChecks = false
