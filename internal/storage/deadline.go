package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/page"
)

// Deadline/cancellation sentinels. Like ErrBreakerOpen these are
// deliberately not Retryable: a deadline exists to bound how long a
// caller waits, and retrying the wait would unbound it again.
var (
	// ErrDeadlineExceeded is returned when a backing operation does not
	// complete within its deadline. The operation itself may still finish
	// later on its abandoned goroutine; see DeadlineDevice for the
	// ordering guarantees that make that safe.
	ErrDeadlineExceeded = errors.New("storage: device deadline exceeded")

	// ErrCanceled is returned when the device's Stop channel closes while
	// an operation is waiting.
	ErrCanceled = errors.New("storage: device operation canceled")
)

// DeadlineConfig tunes a DeadlineDevice.
type DeadlineConfig struct {
	// ReadDeadline bounds each ReadPage. Zero means 100ms.
	ReadDeadline time.Duration

	// WriteDeadline bounds each WritePage. Zero means ReadDeadline.
	WriteDeadline time.Duration

	// Stop, when non-nil, cancels every waiting caller when closed —
	// the shutdown path's escape hatch from a stuck device.
	Stop <-chan struct{}
}

// DeadlineDevice wraps a Device so that every ReadPage/WritePage returns
// within a deadline (or as soon as Stop closes), no matter how long the
// backing device blocks. The backing call runs on a private goroutine;
// if it misses the deadline the caller returns ErrDeadlineExceeded and
// the goroutine is abandoned to finish (and be discarded) on its own.
//
// Two hazards of abandonment are closed off:
//
//   - An abandoned read must not scribble into the caller's page after
//     the caller has moved on. Reads therefore fill a private buffer
//     that is copied out only on an in-deadline success.
//
//   - An abandoned write must not land on the device *after* a newer
//     write of the same page (the caller sees a timeout, re-dirties the
//     page, writes again — and the zombie would then clobber fresh data
//     with stale bytes). Operations on the same page are therefore
//     serialized through a striped lock held by the worker goroutine
//     across the backing call: a later write of the page queues behind
//     the zombie and lands after it.
//
// The abandoned goroutine holds its page stripe until the backing call
// returns, so a truly stuck device pins at most one goroutine per
// in-flight operation — bounded by the callers that were waiting — not
// an unbounded leak.
type DeadlineDevice struct {
	backing Device
	readD   time.Duration
	writeD  time.Duration
	stop    <-chan struct{}

	stripes [64]sync.Mutex // per-page-stripe order for abandoned ops

	timeouts atomic.Int64
	canceled atomic.Int64
}

// NewDeadlineDevice wraps backing with deadlines per cfg.
func NewDeadlineDevice(backing Device, cfg DeadlineConfig) *DeadlineDevice {
	if cfg.ReadDeadline <= 0 {
		cfg.ReadDeadline = 100 * time.Millisecond
	}
	if cfg.WriteDeadline <= 0 {
		cfg.WriteDeadline = cfg.ReadDeadline
	}
	return &DeadlineDevice{
		backing: backing,
		readD:   cfg.ReadDeadline,
		writeD:  cfg.WriteDeadline,
		stop:    cfg.Stop,
	}
}

// Backing returns the wrapped device, letting callers walk a wrapper
// stack.
func (d *DeadlineDevice) Backing() Device { return d.backing }

// Timeouts reports how many operations missed their deadline.
func (d *DeadlineDevice) Timeouts() int64 { return d.timeouts.Load() }

// Canceled reports how many operations were cut short by Stop closing.
func (d *DeadlineDevice) Canceled() int64 { return d.canceled.Load() }

func (d *DeadlineDevice) stripe(id page.PageID) *sync.Mutex {
	return &d.stripes[uint64(id)*0x9e3779b97f4a7c15>>58]
}

// await waits for res within the deadline. The worker goroutine always
// sends exactly one value into the buffered channel, so abandonment
// never leaks a blocked sender.
func (d *DeadlineDevice) await(res <-chan error, deadline time.Duration, opName string, id page.PageID) (error, bool) {
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case err := <-res:
		return err, true
	case <-t.C:
		d.timeouts.Add(1)
		return fmt.Errorf("storage: %s of page %v after %v: %w", opName, id, deadline, ErrDeadlineExceeded), false
	case <-d.stop:
		d.canceled.Add(1)
		return fmt.Errorf("storage: %s of page %v: %w", opName, id, ErrCanceled), false
	}
}

// ReadPage implements Device. On timeout the caller's page is left
// untouched.
func (d *DeadlineDevice) ReadPage(id page.PageID, p *page.Page) error {
	res := make(chan error, 1)
	buf := new(page.Page)
	go func() {
		mu := d.stripe(id)
		mu.Lock()
		defer mu.Unlock()
		res <- d.backing.ReadPage(id, buf)
	}()
	err, done := d.await(res, d.readD, "read", id)
	if done && err == nil {
		*p = *buf
	}
	return err
}

// WritePage implements Device. The page content is captured before the
// worker starts, so the caller may reuse p immediately regardless of
// outcome.
func (d *DeadlineDevice) WritePage(p *page.Page) error {
	res := make(chan error, 1)
	buf := new(page.Page)
	*buf = *p
	go func() {
		mu := d.stripe(buf.ID)
		mu.Lock()
		defer mu.Unlock()
		res <- d.backing.WritePage(buf)
	}()
	err, _ := d.await(res, d.writeD, "write", p.ID)
	return err
}

// Stats implements Device: the backing device's counters plus the
// timeouts recorded by this layer. Operations that timed out here but
// eventually completed underneath are counted by both layers — each
// layer reports its own truth.
func (d *DeadlineDevice) Stats() DeviceStats {
	s := d.backing.Stats()
	s.Timeouts += d.timeouts.Load()
	return s
}
