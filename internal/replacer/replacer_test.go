package replacer

import (
	"math/rand"
	"testing"
)

// simulate drives a policy with an access trace, admitting on miss, and
// returns the hit count. It checks the core residency invariants after
// every step.
func simulate(t *testing.T, p Policy, trace []PageID) int {
	t.Helper()
	hits := 0
	resident := make(map[PageID]bool)
	for i, id := range trace {
		if p.Contains(id) {
			if !resident[id] {
				t.Fatalf("step %d: policy claims %v resident, model disagrees", i, id)
			}
			p.Hit(id)
			hits++
		} else {
			if resident[id] {
				t.Fatalf("step %d: policy claims %v absent, model disagrees", i, id)
			}
			victim, evicted := p.Admit(id)
			if evicted {
				if victim == id {
					t.Fatalf("step %d: Admit(%v) evicted itself", i, id)
				}
				if !resident[victim] {
					t.Fatalf("step %d: evicted non-resident page %v", i, victim)
				}
				delete(resident, victim)
			}
			resident[id] = true
		}
		if p.Len() != len(resident) {
			t.Fatalf("step %d: Len()=%d, model has %d resident", i, p.Len(), len(resident))
		}
		if p.Len() > p.Cap() {
			t.Fatalf("step %d: Len()=%d exceeds Cap()=%d", i, p.Len(), p.Cap())
		}
	}
	return hits
}

// tracePageID builds a PageID for test traces.
func tid(n uint64) PageID { return PageID(1<<44 | n) }

// zipfTrace produces a skewed trace over span pages.
func zipfTrace(seed int64, length int, span uint64) []PageID {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.2, 1, span-1)
	trace := make([]PageID, length)
	for i := range trace {
		trace[i] = tid(z.Uint64())
	}
	return trace
}

// loopTrace produces a cyclic-sequential trace.
func loopTrace(length int, span uint64) []PageID {
	trace := make([]PageID, length)
	for i := range trace {
		trace[i] = tid(uint64(i) % span)
	}
	return trace
}

func uniformTrace(seed int64, length int, span uint64) []PageID {
	r := rand.New(rand.NewSource(seed))
	trace := make([]PageID, length)
	for i := range trace {
		trace[i] = tid(r.Uint64() % span)
	}
	return trace
}

// TestAllPoliciesInvariants drives every algorithm with three trace shapes
// through the model-checking simulator.
func TestAllPoliciesInvariants(t *testing.T) {
	traces := map[string][]PageID{
		"zipf":    zipfTrace(1, 20000, 2000),
		"loop":    loopTrace(20000, 300),
		"uniform": uniformTrace(2, 20000, 1500),
	}
	for name, factory := range Factories() {
		for traceName, trace := range traces {
			for _, capacity := range []int{1, 2, 7, 64, 256} {
				p := factory(capacity)
				t.Run(name+"/"+traceName+"/cap="+itoa(capacity), func(t *testing.T) {
					simulate(t, p, trace)
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestPoliciesRemove checks that Remove keeps every algorithm consistent:
// remove random residents mid-trace, then keep going.
func TestPoliciesRemove(t *testing.T) {
	for name, factory := range Factories() {
		t.Run(name, func(t *testing.T) {
			p := factory(32)
			r := rand.New(rand.NewSource(7))
			resident := make(map[PageID]bool)
			var order []PageID
			for i := 0; i < 30000; i++ {
				switch {
				case r.Intn(10) == 0 && len(order) > 0:
					// Remove a random page (resident or not; must not panic).
					id := order[r.Intn(len(order))]
					p.Remove(id)
					delete(resident, id)
					if p.Contains(id) {
						t.Fatalf("step %d: %v still resident after Remove", i, id)
					}
				default:
					id := tid(r.Uint64() % 200)
					if p.Contains(id) {
						p.Hit(id)
					} else {
						victim, evicted := p.Admit(id)
						if evicted {
							if !resident[victim] {
								t.Fatalf("step %d: evicted non-resident %v", i, victim)
							}
							delete(resident, victim)
						}
						resident[id] = true
						order = append(order, id)
					}
				}
				if p.Len() != len(resident) {
					t.Fatalf("step %d: Len()=%d want %d", i, p.Len(), len(resident))
				}
			}
		})
	}
}

// TestPoliciesEvict checks the no-admission eviction path used by the
// buffer manager's pinned-victim retries.
func TestPoliciesEvict(t *testing.T) {
	for name, factory := range Factories() {
		t.Run(name, func(t *testing.T) {
			p := factory(16)
			if _, ok := p.Evict(); ok {
				t.Fatal("Evict on empty policy returned a victim")
			}
			for i := uint64(0); i < 16; i++ {
				if _, ev := p.Admit(tid(i)); ev {
					t.Fatalf("eviction while filling (i=%d)", i)
				}
			}
			seen := make(map[PageID]bool)
			for i := 0; i < 16; i++ {
				v, ok := p.Evict()
				if !ok {
					t.Fatalf("Evict %d failed with %d resident", i, p.Len())
				}
				if seen[v] {
					t.Fatalf("Evict returned %v twice", v)
				}
				seen[v] = true
			}
			if p.Len() != 0 {
				t.Fatalf("Len()=%d after evicting everything", p.Len())
			}
			if _, ok := p.Evict(); ok {
				t.Fatal("Evict on emptied policy returned a victim")
			}
		})
	}
}

// TestHitOnNonResident checks the BP-Wrapper requirement that stale queued
// hits (pages already evicted) are ignored by every policy.
func TestHitOnNonResident(t *testing.T) {
	for name, factory := range Factories() {
		t.Run(name, func(t *testing.T) {
			p := factory(4)
			p.Hit(tid(99)) // never inserted: must not panic or corrupt
			for i := uint64(0); i < 8; i++ {
				if !p.Contains(tid(i)) {
					p.Admit(tid(i))
				}
			}
			// Pages 0..3 are evicted in some order; hitting them again must
			// be a no-op.
			for i := uint64(0); i < 8; i++ {
				if !p.Contains(tid(i)) {
					p.Hit(tid(i))
					if p.Contains(tid(i)) {
						t.Fatalf("Hit resurrected non-resident page %v", tid(i))
					}
				}
			}
			if p.Len() > 4 {
				t.Fatalf("Len()=%d exceeds capacity", p.Len())
			}
		})
	}
}

// TestAdmitResidentPanics checks that double-admission is loudly rejected.
func TestAdmitResidentPanics(t *testing.T) {
	for name, factory := range Factories() {
		t.Run(name, func(t *testing.T) {
			p := factory(4)
			p.Admit(tid(1))
			defer func() {
				if recover() == nil {
					t.Fatal("Admit of resident page did not panic")
				}
			}()
			p.Admit(tid(1))
		})
	}
}

// TestNewByName checks the registry.
func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		p, ok := New(name, 8)
		if !ok {
			t.Fatalf("New(%q) unknown", name)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
		if p.Cap() != 8 {
			t.Fatalf("New(%q).Cap() = %d", name, p.Cap())
		}
	}
	if _, ok := New("nonsense", 8); ok {
		t.Fatal("New accepted an unknown name")
	}
	if len(Names()) != len(Factories()) {
		t.Fatalf("Names()/Factories() size mismatch: %d vs %d", len(Names()), len(Factories()))
	}
}

// TestConstructorValidation checks that nonsense capacities are rejected.
func TestConstructorValidation(t *testing.T) {
	for name, factory := range Factories() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("zero capacity accepted")
				}
			}()
			factory(0)
		})
	}
}

// TestPrefetchSafety drives Prefetch concurrently with mutation; correctness
// here means "no crash and no behavioural effect". Run with and without
// -race (under -race the metadata walk is intentionally skipped).
func TestPrefetchSafety(t *testing.T) {
	for name, factory := range Factories() {
		p := factory(128)
		pf, ok := p.(Prefetcher)
		if !ok {
			t.Errorf("%s does not implement Prefetcher", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				ids := make([]PageID, 64)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := range ids {
						ids[i] = tid(uint64(i) * 3)
					}
					pf.Prefetch(ids)
				}
			}()
			trace := zipfTrace(11, 50000, 500)
			for _, id := range trace {
				if p.Contains(id) {
					p.Hit(id)
				} else {
					p.Admit(id)
				}
			}
			close(stop)
			<-done
		})
	}
}

// TestLockFreeHitMarkers checks which policies advertise lock-free hits.
func TestLockFreeHitMarkers(t *testing.T) {
	for name, factory := range Factories() {
		p := factory(8)
		wantLockFree := name == "clock" || name == "gclock"
		if got := !HitNeedsLock(p); got != wantLockFree {
			t.Errorf("%s: lock-free hit = %v, want %v", name, got, wantLockFree)
		}
	}
}
