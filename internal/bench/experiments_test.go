package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bpwrapper/internal/storage"
	"bpwrapper/internal/workload"
)

// tinyOptions keeps test runs fast: one small skewed workload and a short
// simulated interval (the default ModeSim is deterministic).
func tinyOptions() Options {
	return Options{
		Duration: 15 * time.Millisecond,
		Seed:     7,
		Workloads: []workload.Workload{
			workload.NewTPCW(workload.TPCWConfig{Items: 800, Customers: 800, Workers: 64}),
		},
	}
}

func TestSystemsTableI(t *testing.T) {
	sys := Systems()
	if len(sys) != 5 {
		t.Fatalf("got %d systems, want the paper's 5", len(sys))
	}
	want := map[string]struct{ batch, pre bool }{
		"pgClock":  {false, false},
		"pg2Q":     {false, false},
		"pgBat":    {true, false},
		"pgPre":    {false, true},
		"pgBatPre": {true, true},
	}
	for _, s := range sys {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected system %q", s.Name)
		}
		if s.Batching != w.batch || s.Prefetching != w.pre {
			t.Fatalf("%s: batching=%v prefetching=%v", s.Name, s.Batching, s.Prefetching)
		}
		if s.Name == "pgClock" && s.Policy != "clock" {
			t.Fatalf("pgClock uses %q", s.Policy)
		}
		if s.Name != "pgClock" && s.Policy != "2q" {
			t.Fatalf("%s uses %q", s.Name, s.Policy)
		}
	}
	if _, err := SystemByName("pgBat"); err != nil {
		t.Fatal(err)
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestFig2BatchingReducesLockTime(t *testing.T) {
	rows, err := Fig2BatchSize(16, []int{1, 16, 64}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// The paper's Figure 2 shape: per-access lock time falls steeply with
	// batch size and keeps falling (gently) to 64.
	if rows[1].LockTimePerAccess*2 >= rows[0].LockTimePerAccess {
		t.Errorf("batch=16 lock time %v not well below batch=1's %v",
			rows[1].LockTimePerAccess, rows[0].LockTimePerAccess)
	}
	// Past the knee both sizes sit on the amortized floor; allow noise but
	// no regression back toward the saturated regime.
	if rows[2].LockTimePerAccess > 2*rows[1].LockTimePerAccess {
		t.Errorf("lock time rose from batch=16 (%v) to batch=64 (%v)",
			rows[1].LockTimePerAccess, rows[2].LockTimePerAccess)
	}
}

func TestScalabilityPaperShape(t *testing.T) {
	rows, err := Scalability(nil, []int{1, 16}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(system string, procs int) ScalabilityRow {
		for _, r := range rows {
			if r.System == system && r.Procs == procs {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", system, procs)
		return ScalabilityRow{}
	}
	clock16 := get("pgClock", 16)
	plain16 := get("pg2Q", 16)
	bat16 := get("pgBat", 16)
	batpre16 := get("pgBatPre", 16)

	// pg2Q collapses; pgBat and pgBatPre track pgClock.
	if plain16.ThroughputTPS > 0.75*clock16.ThroughputTPS {
		t.Errorf("pg2Q@16 %.0f tps not clearly below pgClock's %.0f", plain16.ThroughputTPS, clock16.ThroughputTPS)
	}
	for _, sys := range []ScalabilityRow{bat16, batpre16} {
		if sys.ThroughputTPS < 0.85*clock16.ThroughputTPS {
			t.Errorf("%s@16 %.0f tps does not track pgClock's %.0f", sys.System, sys.ThroughputTPS, clock16.ThroughputTPS)
		}
	}
	// Contention ordering: pg2Q ≫ pgBat ≥≈ pgBatPre; pgClock ~0.
	if plain16.ContentionPerM < 10*bat16.ContentionPerM {
		t.Errorf("pg2Q contention %.1f/M not an order above pgBat's %.1f/M",
			plain16.ContentionPerM, bat16.ContentionPerM)
	}
	if clock16.ContentionPerM > 1 {
		t.Errorf("pgClock contention %.1f/M; expected ~0", clock16.ContentionPerM)
	}
	// Scaling: pgClock and pgBat throughput grow strongly with procs.
	clock1 := get("pgClock", 1)
	if clock16.ThroughputTPS < 8*clock1.ThroughputTPS {
		t.Errorf("pgClock speedup only %.1fx", clock16.ThroughputTPS/clock1.ThroughputTPS)
	}
	// Response time: pg2Q's average response at 16 procs is much longer
	// than pgBat's.
	if plain16.AvgResponse < bat16.AvgResponse {
		t.Errorf("pg2Q response %v below pgBat's %v at 16 procs", plain16.AvgResponse, bat16.AvgResponse)
	}
}

func TestTableIIQueueSizeShape(t *testing.T) {
	rows, err := TableIIQueueSize(16, []int{1, 8, 64}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Contention drops steeply as the queue grows (Table II's shape).
	if rows[1].ContentionPerM*2 > rows[0].ContentionPerM {
		t.Errorf("queue=8 contention %.1f/M not well below queue=1's %.1f/M",
			rows[1].ContentionPerM, rows[0].ContentionPerM)
	}
	if rows[2].ContentionPerM > rows[1].ContentionPerM {
		t.Errorf("contention rose from queue=8 (%.1f) to queue=64 (%.1f)",
			rows[1].ContentionPerM, rows[2].ContentionPerM)
	}
	if rows[2].ThroughputTPS < rows[0].ThroughputTPS {
		t.Errorf("throughput fell with bigger queue: %.0f vs %.0f",
			rows[2].ThroughputTPS, rows[0].ThroughputTPS)
	}
}

func TestTableIIIThresholdShape(t *testing.T) {
	rows, err := TableIIIThreshold(16, []int{32, 64}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Table III's key finding: threshold == queue size (64) removes the
	// TryLock path entirely and contends much more than threshold 32.
	if rows[1].ContentionPerM <= rows[0].ContentionPerM {
		t.Errorf("threshold=64 contention %.1f/M not above threshold=32's %.1f/M",
			rows[1].ContentionPerM, rows[0].ContentionPerM)
	}
}

func TestFig8OverallShape(t *testing.T) {
	o := tinyOptions()
	o.Duration = 100 * time.Millisecond
	o.Workloads = []workload.Workload{
		workload.NewZipf(workload.SyntheticConfig{Pages: 4000, TxnLen: 10}),
	}
	rows, err := Fig8Overall(8, []float64{0.05, 1}, storage.SimDiskConfig{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 fractions × 3 systems
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.HitRatio < 0 || r.HitRatio > 1 {
			t.Fatalf("hit ratio %v", r.HitRatio)
		}
		if r.ThroughputTPS <= 0 {
			t.Fatalf("throughput %v", r.ThroughputTPS)
		}
	}
	var small2Q, smallClock, big2Q, bigBatPre OverallRow
	for _, r := range rows {
		big := r.Frames >= 4000
		switch {
		case r.System == "pg2Q" && !big:
			small2Q = r
		case r.System == "pgClock" && !big:
			smallClock = r
		case r.System == "pg2Q" && big:
			big2Q = r
		case r.System == "pgBatPre" && big:
			bigBatPre = r
		}
	}
	// Small buffer (I/O bound): 2Q's hit ratio advantage over clock wins.
	if small2Q.HitRatio <= smallClock.HitRatio {
		t.Errorf("small buffer: 2Q hit ratio %.3f not above clock's %.3f",
			small2Q.HitRatio, smallClock.HitRatio)
	}
	// Large buffer (CPU bound): hit ratio near 1 and pgBatPre's throughput
	// beats the lock-bound pg2Q.
	if bigBatPre.HitRatio < 0.9 {
		t.Errorf("full-size buffer hit ratio %.3f", bigBatPre.HitRatio)
	}
	if bigBatPre.ThroughputTPS <= big2Q.ThroughputTPS {
		t.Errorf("large buffer: pgBatPre %.0f tps not above pg2Q's %.0f",
			bigBatPre.ThroughputTPS, big2Q.ThroughputTPS)
	}
}

func TestAblationSharedQueueShape(t *testing.T) {
	rows, err := AblationSharedQueue(16, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	var private, shared SharedQueueRow
	for _, r := range rows {
		if r.Design == "private" {
			private = r
		} else {
			shared = r
		}
	}
	if shared.ThroughputTPS > private.ThroughputTPS {
		t.Errorf("shared queue %.0f tps beat private queues %.0f", shared.ThroughputTPS, private.ThroughputTPS)
	}
}

func TestAblationPoliciesShape(t *testing.T) {
	rows, err := AblationPolicies(16, []string{"2q", "lirs", "mq"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	// For every policy, the wrapped system out-scales the plain one — the
	// "any replacement algorithm" claim.
	byPolicy := map[string]map[string]PolicyRow{}
	for _, r := range rows {
		if byPolicy[r.Policy] == nil {
			byPolicy[r.Policy] = map[string]PolicyRow{}
		}
		byPolicy[r.Policy][r.System] = r
	}
	for pol, m := range byPolicy {
		if m["bpwrapper"].ThroughputTPS < 1.3*m["plain"].ThroughputTPS {
			t.Errorf("%s: wrapped %.0f tps not well above plain %.0f",
				pol, m["bpwrapper"].ThroughputTPS, m["plain"].ThroughputTPS)
		}
	}
}

func TestRealModeSmoke(t *testing.T) {
	// The real-goroutine mode must run end to end; on arbitrary hosts we
	// assert only sanity, not contention shapes (see DESIGN.md).
	o := tinyOptions()
	o.Mode = ModeReal
	o.TxnsPerWorker = 100
	rows, err := Scalability([]System{System2Q, SystemBatPre}, []int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ThroughputTPS <= 0 {
			t.Fatalf("%s: zero throughput in real mode", r.System)
		}
		if r.AvgResponse <= 0 {
			t.Fatalf("%s: zero response time in real mode", r.System)
		}
	}
	frows, err := Fig2BatchSize(2, []int{8}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(frows) != 1 || frows[0].LockTimePerAccess <= 0 {
		t.Fatalf("real-mode fig2 rows: %+v", frows)
	}
}

func TestRealModeFig8Smoke(t *testing.T) {
	o := tinyOptions()
	o.Mode = ModeReal
	o.TxnsPerWorker = 40
	o.Workloads = []workload.Workload{
		workload.NewZipf(workload.SyntheticConfig{Pages: 2000, TxnLen: 8}),
	}
	rows, err := Fig8Overall(2, []float64{0.1}, storage.SimDiskConfig{ReadLatency: 50 * time.Microsecond}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.HitRatio <= 0 || r.HitRatio >= 1 {
			t.Errorf("%s: hit ratio %.3f out of (0,1)", r.System, r.HitRatio)
		}
	}
}

func TestRealModeAblations(t *testing.T) {
	o := tinyOptions()
	o.Mode = ModeReal
	o.TxnsPerWorker = 60
	rows, err := AblationSharedQueue(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("shared-queue rows=%d", len(rows))
	}
	prows, err := AblationPolicies(2, []string{"lirs"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 2 {
		t.Fatalf("policy rows=%d", len(prows))
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintFig2(&buf, []BatchSizeRow{{BatchSize: 1, LockTimePerAccess: time.Microsecond, ContentionPerM: 5}})
	PrintScalability(&buf, "Figure 6", []ScalabilityRow{{Workload: "tpcw", System: "pg2Q", Procs: 4, ThroughputTPS: 100, AvgResponse: time.Millisecond, ContentionPerM: 9}})
	PrintTableII(&buf, []QueueSizeRow{{Workload: "tpcw", QueueSize: 8, ThroughputTPS: 10, ContentionPerM: 1}})
	PrintTableIII(&buf, []ThresholdRow{{Workload: "tpcw", Threshold: 8, ThroughputTPS: 10, ContentionPerM: 1}})
	PrintFig8(&buf, []OverallRow{
		{Workload: "tpcw", System: "pgClock", Frames: 64, BufferMB: 0.5, HitRatio: 0.5, ThroughputTPS: 10},
		{Workload: "tpcw", System: "pgBatPre", Frames: 64, BufferMB: 0.5, HitRatio: 0.6, ThroughputTPS: 12},
	})
	PrintSharedQueue(&buf, []SharedQueueRow{{Workload: "tpcw", Design: "private", Procs: 4, ThroughputTPS: 10}})
	PrintPolicies(&buf, []PolicyRow{{Workload: "tpcw", Policy: "lirs", System: "bpwrapper", Procs: 4, ThroughputTPS: 10}})
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 6", "Table II", "Table III", "Figure 8", "Ablation", "pgBatPre", "1.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed report missing %q", want)
		}
	}
}
