package buffer

import (
	"testing"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
)

func TestPageRefAccessors(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()
	ref, err := p.Get(s, pid(3))
	if err != nil {
		t.Fatal(err)
	}
	if ref.ID() != pid(3) {
		t.Errorf("ID()=%v", ref.ID())
	}
	if ref.Tag().Page != pid(3) || ref.Tag().Gen == 0 {
		t.Errorf("Tag()=%+v", ref.Tag())
	}
	if len(ref.Data()) != page.Size {
		t.Errorf("Data() length %d", len(ref.Data()))
	}
	ref.Release()
}

func TestDataOnReleasedPanics(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()
	ref, _ := p.Get(s, pid(1))
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Data on released ref not detected")
		}
	}()
	ref.Data()
}

func TestMarkDirtyOnReleasedPanics(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()
	ref, _ := p.GetWrite(s, pid(1))
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty on released ref not detected")
		}
	}()
	ref.MarkDirty()
}

func TestFrameTagStableWhilePinned(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()
	ref, _ := p.Get(s, pid(1))
	tag := ref.Tag()
	// Churn the other frame heavily; the pinned frame's tag must not move.
	for i := uint64(10); i < 30; i++ {
		r, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	if got := ref.Frame().Tag(); !got.Matches(tag) {
		t.Fatalf("pinned frame's tag changed: %+v -> %+v", tag, got)
	}
	ref.Release()
}

func TestGenerationAdvancesOnReuse(t *testing.T) {
	p := newTestPool(1, core.Config{})
	s := p.NewSession()
	r1, _ := p.Get(s, pid(1))
	gen1 := r1.Tag().Gen
	r1.Release()
	r2, _ := p.Get(s, pid(2)) // evicts 1, reuses the frame
	gen2 := r2.Tag().Gen
	r2.Release()
	if gen2 <= gen1 {
		t.Fatalf("generation did not advance on frame reuse: %d -> %d", gen1, gen2)
	}
}
