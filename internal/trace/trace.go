// Package trace records page-access traces and replays them through
// replacement policies. It backs two parts of the reproduction:
//
//   - the hit-ratio fidelity experiment (E9 in DESIGN.md): the paper's
//     Figure 8 shows the hit-ratio curves of pg2Q and pgBatPre overlapping,
//     i.e. deferring hit records in bounded batches does not measurably
//     change replacement decisions; Replay vs ReplayBatched quantifies that
//     on identical traces;
//   - policy hit-ratio studies across buffer sizes (the classical way
//     replacement algorithms are compared).
//
// Traces serialize to a compact binary format so workloads can be captured
// once and replayed under many policies.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/workload"
)

// Trace is a sequence of page accesses in global interleaved order.
type Trace struct {
	Accesses []workload.Access
}

// Record captures a trace from a workload: `workers` streams are
// interleaved transaction-by-transaction in round-robin order, a
// deterministic stand-in for concurrent execution.
func Record(wl workload.Workload, workers, txnsPerWorker int, seed int64) *Trace {
	if workers <= 0 || txnsPerWorker <= 0 {
		panic("trace: workers and txnsPerWorker must be positive")
	}
	streams := make([]workload.Stream, workers)
	for w := range streams {
		streams[w] = wl.NewStream(w, seed)
	}
	t := &Trace{}
	buf := make([]workload.Access, 0, 512)
	for i := 0; i < txnsPerWorker; i++ {
		for _, s := range streams {
			buf = s.NextTxn(buf[:0])
			t.Accesses = append(t.Accesses, buf...)
		}
	}
	return t
}

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// DistinctPages returns the number of distinct pages referenced.
func (t *Trace) DistinctPages() int {
	seen := make(map[page.PageID]struct{})
	for _, a := range t.Accesses {
		seen[a.Page] = struct{}{}
	}
	return len(seen)
}

// traceMagic identifies the serialization format.
const traceMagic = uint32(0xB9E7_2009) // "BP-Wrapper, ICDE 2009"

// WriteTo serializes the trace. Each access is the PageID with the write
// flag folded into bit 63 (PageIDs use 64 bits but table numbers cap at
// 2^20, so bit 63 is always free).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], traceMagic)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(0)) // version
	if _, err := bw.Write(scratch[:]); err != nil {
		return n, err
	}
	n += 8
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(t.Accesses)))
	if _, err := bw.Write(scratch[:]); err != nil {
		return n, err
	}
	n += 8
	for _, a := range t.Accesses {
		v := uint64(a.Page)
		if a.Write {
			v |= 1 << 63
		}
		binary.LittleEndian.PutUint64(scratch[:], v)
		if _, err := bw.Write(scratch[:]); err != nil {
			return n, err
		}
		n += 8
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo, replacing t's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return n, err
	}
	n += 8
	if binary.LittleEndian.Uint32(scratch[:4]) != traceMagic {
		return n, errors.New("trace: bad magic")
	}
	if _, err := io.ReadFull(br, scratch[:]); err != nil {
		return n, err
	}
	n += 8
	count := binary.LittleEndian.Uint64(scratch[:])
	const maxTrace = 1 << 30
	if count > maxTrace {
		return n, fmt.Errorf("trace: implausible access count %d", count)
	}
	// Do not pre-allocate from the untrusted header: a short file with a
	// huge declared count must fail with io.ErrUnexpectedEOF, not exhaust
	// memory first. Grow with the data that actually arrives.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t.Accesses = make([]workload.Access, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return n, err
		}
		n += 8
		v := binary.LittleEndian.Uint64(scratch[:])
		t.Accesses = append(t.Accesses, workload.Access{
			Page:  page.PageID(v &^ (1 << 63)),
			Write: v>>63 == 1,
		})
	}
	return n, nil
}

// Result summarizes one replay.
type Result struct {
	Accesses int64
	Hits     int64
	Misses   int64
}

// HitRatio returns hits / accesses.
func (r Result) HitRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// Replay drives the policy with the trace, admitting on miss, and returns
// hit statistics. The policy is used unlocked and single-threaded.
func Replay(p replacer.Policy, t *Trace) Result {
	var res Result
	for _, a := range t.Accesses {
		res.Accesses++
		if p.Contains(a.Page) {
			res.Hits++
			p.Hit(a.Page)
		} else {
			res.Misses++
			p.Admit(a.Page)
		}
	}
	return res
}

// ReplayBatched replays the trace through a BP-Wrapper core with the given
// queue tuning, so hit records reach the policy in deferred batches exactly
// as they would in the live system. Used to verify that batching does not
// change hit ratios (the Figure 8 overlap).
func ReplayBatched(p replacer.Policy, t *Trace, queueSize, threshold int) Result {
	w := core.New(p, core.Config{
		Batching:       true,
		QueueSize:      queueSize,
		BatchThreshold: threshold,
	})
	s := w.NewSession()
	var res Result
	for _, a := range t.Accesses {
		res.Accesses++
		// Residency can be consulted directly: with a single session the
		// queue holds only hits, which never change residency.
		if p.Contains(a.Page) {
			res.Hits++
			s.Hit(a.Page, page.BufferTag{Page: a.Page})
		} else {
			res.Misses++
			s.Miss(a.Page, page.BufferTag{Page: a.Page})
		}
	}
	s.Flush()
	return res
}

// SweepRow is one (policy, capacity) hit-ratio measurement.
type SweepRow struct {
	Policy   string
	Capacity int
	Result   Result
}

// Sweep replays the trace under every named policy at every capacity,
// returning the hit-ratio grid used by the policy-comparison studies.
func Sweep(t *Trace, policies []string, capacities []int) ([]SweepRow, error) {
	var rows []SweepRow
	for _, name := range policies {
		for _, c := range capacities {
			p, ok := replacer.New(name, c)
			if !ok {
				return nil, fmt.Errorf("trace: unknown policy %q", name)
			}
			rows = append(rows, SweepRow{Policy: name, Capacity: c, Result: Replay(p, t)})
		}
	}
	return rows, nil
}
