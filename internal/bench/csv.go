package bench

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV emitters for every experiment's rows, for plotting pipelines. Each
// writes a header line followed by one record per row; durations are in
// nanoseconds, ratios in [0,1].

func writeCSV(w io.Writer, header []string, n int, record func(int) []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := cw.Write(record(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
func d(n int64) string   { return strconv.FormatInt(n, 10) }

// CSVFig2 writes the Figure 2 rows as CSV.
func CSVFig2(w io.Writer, rows []BatchSizeRow) error {
	return writeCSV(w, []string{"batch_size", "lock_ns_per_access", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{d(int64(r.BatchSize)), d(r.LockTimePerAccess.Nanoseconds()), f(r.ContentionPerM)}
	})
}

// CSVScalability writes Figure 6/7 rows as CSV.
func CSVScalability(w io.Writer, rows []ScalabilityRow) error {
	return writeCSV(w, []string{"workload", "system", "procs", "tps", "avg_response_ns", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.System, d(int64(r.Procs)), f(r.ThroughputTPS), d(r.AvgResponse.Nanoseconds()), f(r.ContentionPerM)}
	})
}

// CSVTableII writes Table II rows as CSV.
func CSVTableII(w io.Writer, rows []QueueSizeRow) error {
	return writeCSV(w, []string{"workload", "queue_size", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, d(int64(r.QueueSize)), f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}

// CSVTableIII writes Table III rows as CSV.
func CSVTableIII(w io.Writer, rows []ThresholdRow) error {
	return writeCSV(w, []string{"workload", "threshold", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, d(int64(r.Threshold)), f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}

// CSVFig8 writes Figure 8 rows as CSV.
func CSVFig8(w io.Writer, rows []OverallRow) error {
	return writeCSV(w, []string{"workload", "system", "frames", "buffer_mb", "hit_ratio", "tps"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.System, d(int64(r.Frames)), f(r.BufferMB), f(r.HitRatio), f(r.ThroughputTPS)}
	})
}

// CSVSharedQueue writes the E7 ablation rows as CSV.
func CSVSharedQueue(w io.Writer, rows []SharedQueueRow) error {
	return writeCSV(w, []string{"workload", "design", "procs", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.Design, d(int64(r.Procs)), f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}

// CSVPolicies writes the E8 ablation rows as CSV.
func CSVPolicies(w io.Writer, rows []PolicyRow) error {
	return writeCSV(w, []string{"workload", "policy", "system", "procs", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.Policy, r.System, d(int64(r.Procs)), f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}

// CSVDistributed writes the E10 scalability rows as CSV.
func CSVDistributed(w io.Writer, rows []DistributedRow) error {
	return writeCSV(w, []string{"workload", "system", "procs", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.System, d(int64(r.Procs)), f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}

// CSVPartitionHitRatio writes the E10 history rows as CSV.
func CSVPartitionHitRatio(w io.Writer, rows []PartitionHitRow) error {
	return writeCSV(w, []string{"policy", "partitions", "hit_ratio"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Policy, d(int64(r.Partitions)), f(r.HitRatio)}
	})
}

// CSVAdaptive writes the E11 rows as CSV.
func CSVAdaptive(w io.Writer, rows []AdaptiveRow) error {
	return writeCSV(w, []string{"workload", "config", "tps", "contention_per_m"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.Config, f(r.ThroughputTPS), f(r.ContentionPerM)}
	})
}
