// Tablescan: the paper's synthetic benchmark, and the classic case for
// scan-resistant replacement. Concurrent queries each scan whole tables;
// interleaved with skewed point lookups, the scans flush an LRU/CLOCK
// buffer again and again while 2Q, LIRS and ARC protect the hot set. The
// example records one deterministic trace and replays it under every
// algorithm at several buffer sizes — the hit-ratio methodology behind the
// paper's Figure 8.
package main

import (
	"fmt"

	"bpwrapper"
)

// mixedWorkload interleaves TableScan streams with a Zipf point-lookup
// stream over a separate hot table.
type mixedWorkload struct {
	scans bpwrapper.Workload
	point bpwrapper.Workload
}

func (m mixedWorkload) Name() string { return "scan+point" }

func (m mixedWorkload) DataPages() int { return m.scans.DataPages() + m.point.DataPages() }

func (m mixedWorkload) Pages() []bpwrapper.PageID {
	return append(m.scans.Pages(), m.point.Pages()...)
}

func (m mixedWorkload) NewStream(w int, seed int64) bpwrapper.Stream {
	return &mixedStream{
		scan:  m.scans.NewStream(w, seed),
		point: m.point.NewStream(w, seed+1),
	}
}

type mixedStream struct {
	scan, point bpwrapper.Stream
	n           int
}

func (s *mixedStream) NextTxn(buf []bpwrapper.Access) []bpwrapper.Access {
	s.n++
	if s.n%4 == 0 { // every fourth transaction is a full scan
		return s.scan.NextTxn(buf)
	}
	return s.point.NextTxn(buf)
}

func main() {
	wl := mixedWorkload{
		scans: bpwrapper.NewTableScan(bpwrapper.TableScanConfig{Tables: 8, PagesPerTable: 400}),
		// The point-lookup table gets its own relation number so its page
		// space cannot collide with the scanned tables'.
		point: bpwrapper.NewZipf(bpwrapper.SyntheticConfig{Pages: 1 << 14, TxnLen: 24, TableID: 100}),
	}
	tr := bpwrapper.RecordTrace(wl, 8, 300, 7)
	fmt.Printf("trace: %d accesses, %d distinct pages\n\n", tr.Len(), tr.DistinctPages())

	policies := []string{"lru", "clock", "arc", "2q", "lirs"}
	capacities := []int{256, 512, 1024, 2048, 4096}

	fmt.Printf("hit ratio by buffer size (pages):\n%-8s", "policy")
	for _, c := range capacities {
		fmt.Printf(" %8d", c)
	}
	fmt.Println()
	for _, name := range policies {
		fmt.Printf("%-8s", name)
		for _, c := range capacities {
			p, _ := bpwrapper.NewPolicy(name, c)
			res := bpwrapper.ReplayTrace(p, tr)
			fmt.Printf(" %7.2f%%", 100*res.HitRatio())
		}
		fmt.Println()
	}

	fmt.Println("\nThe scan-resistant algorithms (2Q, LIRS, ARC) hold the point-lookup")
	fmt.Println("working set through the scans; LRU and CLOCK let every scan evict it.")
	fmt.Println("BP-Wrapper exists so a DBMS can afford the former at high concurrency.")
}
