package storage

import (
	"testing"
	"time"

	"bpwrapper/internal/page"
)

// spikePattern drives n reads and records, per operation, whether a
// latency spike was injected (observed through the Spikes counter).
func spikePattern(d *FaultDevice, n int) []bool {
	var p page.Page
	pattern := make([]bool, n)
	prev := d.Spikes()
	for i := 0; i < n; i++ {
		_ = d.ReadPage(pid(uint64(i+1)), &p)
		now := d.Spikes()
		pattern[i] = now != prev
		prev = now
	}
	return pattern
}

// TestFaultSpikeSeededDeterminism: the same seed and op sequence injects
// spikes at exactly the same operations.
func TestFaultSpikeSeededDeterminism(t *testing.T) {
	mk := func() *FaultDevice {
		return NewFaultDevice(NewMemDevice(), FaultConfig{
			Seed: 77, SpikeProb: 0.3, SpikeLatency: time.Microsecond,
		})
	}
	a := spikePattern(mk(), 200)
	b := spikePattern(mk(), 200)
	spikes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spike pattern diverged at op %d despite identical seeds", i)
		}
		if a[i] {
			spikes++
		}
	}
	// ~30% of 200 ops; a deterministic sequence, so the exact count is
	// stable — just sanity-check it is in a plausible band.
	if spikes < 30 || spikes > 90 {
		t.Fatalf("%d spikes over 200 ops at p=0.3 is implausible", spikes)
	}
}

// TestFaultSpikeAndFailJointDeterminism: with spikes and failures both
// probabilistic, the joint (spike, fail) outcome sequence is a pure
// function of the seed — the two injections share one deterministic
// variate stream with a fixed per-op draw order (spike before fail).
func TestFaultSpikeAndFailJointDeterminism(t *testing.T) {
	run := func() (spikes []bool, fails []bool) {
		d := NewFaultDevice(NewMemDevice(), FaultConfig{
			Seed: 9, SpikeProb: 0.4, SpikeLatency: time.Microsecond, ReadFailProb: 0.5,
		})
		var p page.Page
		prev := d.Spikes()
		for i := 0; i < 200; i++ {
			err := d.ReadPage(pid(uint64(i+1)), &p)
			now := d.Spikes()
			spikes = append(spikes, now != prev)
			fails = append(fails, err != nil)
			prev = now
		}
		return spikes, fails
	}
	s1, f1 := run()
	s2, f2 := run()
	for i := range s1 {
		if s1[i] != s2[i] || f1[i] != f2[i] {
			t.Fatalf("joint spike/fail outcome diverged at op %d despite identical seeds", i)
		}
	}
	// Independence sanity: some ops spike without failing and some fail
	// without spiking — the draws are distinct variates, not one shared
	// coin.
	var spikeOnly, failOnly bool
	for i := range s1 {
		if s1[i] && !f1[i] {
			spikeOnly = true
		}
		if f1[i] && !s1[i] {
			failOnly = true
		}
	}
	if !spikeOnly || !failOnly {
		t.Fatalf("spike and fail outcomes are not independent (spikeOnly=%v failOnly=%v)", spikeOnly, failOnly)
	}
}

// TestFaultSpikeAndFailBothApply: an operation that rolls both a spike
// and a failure stalls first and then fails — both are counted.
func TestFaultSpikeAndFailBothApply(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{
		SpikeProb: 1, SpikeLatency: time.Microsecond, ReadFailProb: 1,
	})
	var p page.Page
	const ops = 10
	for i := 0; i < ops; i++ {
		if err := d.ReadPage(pid(uint64(i+1)), &p); err == nil {
			t.Fatalf("op %d succeeded with ReadFailProb 1", i)
		}
	}
	reads, _, _ := d.Injected()
	if reads != ops {
		t.Fatalf("injected read faults = %d, want %d", reads, ops)
	}
	if d.Spikes() != ops {
		t.Fatalf("spikes = %d, want %d (spike applies even when the op then fails)", d.Spikes(), ops)
	}
}

// TestFaultSpikeLatencyApplied: SpikeProb 1 really stalls operations for
// at least SpikeLatency.
func TestFaultSpikeLatencyApplied(t *testing.T) {
	const lat = 5 * time.Millisecond
	d := NewFaultDevice(NewMemDevice(), FaultConfig{SpikeProb: 1, SpikeLatency: lat})
	var p page.Page
	start := time.Now()
	const ops = 3
	for i := 0; i < ops; i++ {
		if err := d.ReadPage(pid(uint64(i+1)), &p); err != nil {
			t.Fatalf("read failed: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < ops*lat {
		t.Fatalf("3 spiked ops took %v, want >= %v", elapsed, ops*lat)
	}
	if d.Spikes() != ops {
		t.Fatalf("spikes = %d, want %d", d.Spikes(), ops)
	}
}

// TestFaultSpikeWriteOnly: with SpikeWriteOnly, reads never stall but
// writes do, and counters reflect only applied spikes.
func TestFaultSpikeWriteOnly(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{
		SpikeProb: 1, SpikeLatency: time.Microsecond, SpikeWriteOnly: true,
	})
	var p page.Page
	for i := 0; i < 20; i++ {
		if err := d.ReadPage(pid(uint64(i+1)), &p); err != nil {
			t.Fatalf("read failed: %v", err)
		}
	}
	if d.Spikes() != 0 {
		t.Fatalf("reads injected %d spikes despite SpikeWriteOnly", d.Spikes())
	}
	for i := 0; i < 5; i++ {
		w := &page.Page{ID: pid(uint64(i + 1))}
		if err := d.WritePage(w); err != nil {
			t.Fatalf("write failed: %v", err)
		}
	}
	if d.Spikes() != 5 {
		t.Fatalf("spikes = %d, want 5 (writes only)", d.Spikes())
	}
}

// TestFaultSetSpikeRuntime: SetSpike swaps the rate and latency at
// runtime — the brownout chaos lever.
func TestFaultSetSpikeRuntime(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{})
	var p page.Page
	for i := 0; i < 10; i++ {
		_ = d.ReadPage(pid(uint64(i+1)), &p)
	}
	if d.Spikes() != 0 {
		t.Fatalf("spikes = %d before SetSpike, want 0", d.Spikes())
	}
	d.SetSpike(1, time.Microsecond)
	for i := 0; i < 10; i++ {
		_ = d.ReadPage(pid(uint64(i+1)), &p)
	}
	if d.Spikes() != 10 {
		t.Fatalf("spikes = %d after SetSpike(1), want 10", d.Spikes())
	}
	d.SetSpike(0, 0)
	before := d.Spikes()
	for i := 0; i < 10; i++ {
		_ = d.ReadPage(pid(uint64(i+1)), &p)
	}
	if d.Spikes() != before {
		t.Fatalf("spikes kept accruing after SetSpike(0)")
	}
}
