package replacer

// Partitioned implements the distributed-lock design the paper's Related
// Work rejects (Section V-A; Oracle Universal Server, ADABAS, Mr.LRU): the
// buffer is split into k hash partitions, each managed by an independent
// instance of the underlying algorithm. In a real system each partition
// gets its own lock (the simulator models that with Config.LockPartitions);
// the price, which the paper emphasises, is that each partition sees only
// its hash slice of the access history:
//
//   - sequence-detecting algorithms (SEQ) never observe consecutive blocks
//     and lose scan resistance;
//   - ghost-based algorithms (2Q, LIRS, ARC) split their history and adapt
//     on fragments;
//   - hot pages still collide on whichever partition holds them.
//
// Pages route to partitions by a hash of their PageID, as Mr.LRU does, so
// a page always returns to the same partition.
type Partitioned struct {
	parts []Policy
	rr    int // round-robin cursor for Evict
	name  string
}

var _ Policy = (*Partitioned)(nil)

// NewPartitioned splits capacity across k instances built by sub. The
// capacity is divided as evenly as possible; every partition holds at
// least one page.
func NewPartitioned(capacity, k int, sub Factory) *Partitioned {
	checkCap("partitioned", capacity)
	if k < 1 || k > capacity {
		panic("replacer: partitioned: k out of range [1, capacity]")
	}
	p := &Partitioned{parts: make([]Policy, k)}
	base, extra := capacity/k, capacity%k
	for i := range p.parts {
		c := base
		if i < extra {
			c++
		}
		p.parts[i] = sub(c)
	}
	p.name = "partitioned-" + p.parts[0].Name()
	return p
}

// Partition returns the index of the partition that owns id.
func (p *Partitioned) Partition(id PageID) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(p.parts)))
}

// Partitions returns the partition count.
func (p *Partitioned) Partitions() int { return len(p.parts) }

func (p *Partitioned) route(id PageID) Policy { return p.parts[p.Partition(id)] }

// Name implements Policy.
func (p *Partitioned) Name() string { return p.name }

// Cap implements Policy.
func (p *Partitioned) Cap() int {
	total := 0
	for _, part := range p.parts {
		total += part.Cap()
	}
	return total
}

// Len implements Policy.
func (p *Partitioned) Len() int {
	total := 0
	for _, part := range p.parts {
		total += part.Len()
	}
	return total
}

// Contains implements Policy.
func (p *Partitioned) Contains(id PageID) bool { return p.route(id).Contains(id) }

// Hit implements Policy: the access reaches only the owning partition.
func (p *Partitioned) Hit(id PageID) { p.route(id).Hit(id) }

// Admit implements Policy: the page enters its hash partition, which
// evicts locally when full — even if other partitions have free space,
// exactly the imbalance drawback the paper notes.
func (p *Partitioned) Admit(id PageID) (PageID, bool) {
	return p.route(id).Admit(id)
}

// Evict implements Policy: partitions are drained round-robin.
func (p *Partitioned) Evict() (PageID, bool) {
	for i := 0; i < len(p.parts); i++ {
		part := p.parts[(p.rr+i)%len(p.parts)]
		if v, ok := part.Evict(); ok {
			p.rr = (p.rr + i + 1) % len(p.parts)
			return v, true
		}
	}
	return 0, false
}

// Remove implements Policy.
func (p *Partitioned) Remove(id PageID) { p.route(id).Remove(id) }
