package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestContentionMutexUncontended(t *testing.T) {
	var m ContentionMutex
	for i := 0; i < 100; i++ {
		m.Lock()
		m.Unlock()
	}
	s := m.Stats()
	if s.Acquisitions != 100 {
		t.Errorf("acquisitions = %d, want 100", s.Acquisitions)
	}
	if s.Contentions != 0 {
		t.Errorf("contentions = %d on an uncontended lock", s.Contentions)
	}
	if s.WaitTime != 0 {
		t.Errorf("wait time %v on an uncontended lock", s.WaitTime)
	}
}

func TestContentionMutexTryLock(t *testing.T) {
	var m ContentionMutex
	if !m.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	m.Unlock()
	s := m.Stats()
	if s.Acquisitions != 1 || s.TryFailures != 1 {
		t.Errorf("acquisitions=%d tryFailures=%d, want 1/1", s.Acquisitions, s.TryFailures)
	}
	if s.Contentions != 0 {
		t.Errorf("TryLock failure counted as contention")
	}
}

func TestContentionMutexBlockingCounts(t *testing.T) {
	var m ContentionMutex
	// Hold times are sampled by default; clock every acquisition so the
	// 20ms hold below is measured rather than (maybe) skipped.
	m.SetProfile(&LockProfile{SampleEvery: 1})
	m.Lock()
	done := make(chan struct{})
	go func() {
		m.Lock() // must block → one contention
		m.Unlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	m.Unlock()
	<-done
	s := m.Stats()
	if s.Contentions != 1 {
		t.Errorf("contentions = %d, want 1", s.Contentions)
	}
	if s.WaitTime < 10*time.Millisecond {
		t.Errorf("wait time %v implausibly small", s.WaitTime)
	}
	if s.HoldTime < 10*time.Millisecond {
		t.Errorf("hold time %v implausibly small", s.HoldTime)
	}
}

func TestContentionMutexMutualExclusion(t *testing.T) {
	var m ContentionMutex
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 80000 {
		t.Errorf("counter = %d, want 80000 (mutual exclusion broken)", counter)
	}
	if got := m.Stats().Acquisitions; got != 80000 {
		t.Errorf("acquisitions = %d, want 80000", got)
	}
}

func TestContentionMutexReset(t *testing.T) {
	var m ContentionMutex
	m.Lock()
	m.Unlock()
	m.Reset()
	if s := m.Stats(); s != (LockStats{}) {
		t.Errorf("stats after reset: %+v", s)
	}
}

func TestContentionPerMillion(t *testing.T) {
	if got := ContentionPerMillion(0, 0); got != 0 {
		t.Errorf("0/0 → %v", got)
	}
	if got := ContentionPerMillion(5, 1_000_000); got != 5 {
		t.Errorf("5 per million → %v", got)
	}
	if got := ContentionPerMillion(1, 2_000_000); got != 0.5 {
		t.Errorf("1 per 2M → %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if mean := h.Mean(); mean != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", mean)
	}
	if h.Max() != 3*time.Millisecond || h.Min() != time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*time.Microsecond || p50 > 650*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
	if h.Quantile(1) < h.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Millisecond, 10)
	h.Record(time.Nanosecond)  // below range
	h.Record(10 * time.Second) // above range
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 10*time.Second {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
	if a.Max() != 5*time.Millisecond {
		t.Errorf("merged max = %v", a.Max())
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	a := NewHistogram(time.Microsecond, time.Second, 10)
	b := NewHistogram(time.Microsecond, time.Second, 20)
	defer func() {
		if recover() == nil {
			t.Error("geometry mismatch not detected")
		}
	}()
	a.Merge(b)
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Record(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 40000 {
		t.Errorf("count = %d, want 40000", h.Count())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, time.Second, 10) },
		func() { NewHistogram(time.Second, time.Second, 10) },
		func() { NewHistogram(time.Microsecond, time.Second, 1) },
		func() { NewLatencyHistogram().Quantile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input accepted")
				}
			}()
			fn()
		}()
	}
}

func TestAccessCounters(t *testing.T) {
	var c AccessCounters
	if c.HitRatio() != 0 {
		t.Error("empty hit ratio nonzero")
	}
	for i := 0; i < 3; i++ {
		c.Hit()
	}
	c.Miss()
	if c.Hits() != 3 || c.Misses() != 1 || c.Accesses() != 4 {
		t.Errorf("counters %d/%d/%d", c.Hits(), c.Misses(), c.Accesses())
	}
	if c.HitRatio() != 0.75 {
		t.Errorf("hit ratio %v, want 0.75", c.HitRatio())
	}
	c.Reset()
	if c.Accesses() != 0 {
		t.Error("reset did not clear")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Errorf("100/1s = %v", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("zero elapsed → %v", got)
	}
}

func TestSummarize(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Errorf("count %d", s.Count)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Errorf("mean %v", s.Mean)
	}
	if s.MaxVal != 100*time.Millisecond {
		t.Errorf("max %v", s.MaxVal)
	}
}

func TestSortDurations(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	SortDurations(ds)
	if ds[0] != 1 || ds[1] != 2 || ds[2] != 3 {
		t.Errorf("sorted: %v", ds)
	}
}
