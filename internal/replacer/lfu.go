package replacer

// LFU evicts the resident page with the smallest access frequency, breaking
// ties by least-recent arrival among pages of equal frequency. It is
// implemented with the standard frequency-bucket list structure (O(1) per
// operation): buckets ordered by ascending frequency, each holding its
// pages in arrival order.
type LFU struct {
	prefetchIndex
	capacity int
	table    map[PageID]*node
	buckets  map[int]*list // frequency → pages at that frequency (front = newest)
	minFreq  int
	length   int
}

var _ Policy = (*LFU)(nil)
var _ Prefetcher = (*LFU)(nil)

// NewLFU returns an LFU policy holding at most capacity pages.
func NewLFU(capacity int) *LFU {
	checkCap("lfu", capacity)
	return &LFU{
		capacity: capacity,
		table:    make(map[PageID]*node, capacity),
		buckets:  make(map[int]*list),
	}
}

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// Cap implements Policy.
func (p *LFU) Cap() int { return p.capacity }

// Len implements Policy.
func (p *LFU) Len() int { return p.length }

// Contains implements Policy.
func (p *LFU) Contains(id PageID) bool {
	_, ok := p.table[id]
	return ok
}

func (p *LFU) bucket(freq int) *list {
	b, ok := p.buckets[freq]
	if !ok {
		b = newList()
		p.buckets[freq] = b
	}
	return b
}

// Hit increments the page's frequency, moving it to the next bucket.
func (p *LFU) Hit(id PageID) {
	nd, ok := p.table[id]
	if !ok {
		return
	}
	old := p.buckets[nd.count]
	old.remove(nd)
	if old.len() == 0 {
		delete(p.buckets, nd.count)
		if p.minFreq == nd.count {
			p.minFreq = nd.count + 1
		}
	}
	nd.count++
	p.bucket(nd.count).pushFront(nd)
}

// Admit inserts a new page with frequency 1, evicting the least-frequently-
// used page (oldest within the lowest-frequency bucket) if at capacity.
func (p *LFU) Admit(id PageID) (victim PageID, evicted bool) {
	mustAbsent("lfu", p.Contains(id))
	if p.length == p.capacity {
		victim, evicted = p.Evict()
	}
	nd := &node{id: id, count: 1}
	p.table[id] = nd
	p.bucket(1).pushFront(nd)
	p.minFreq = 1
	p.length++
	p.note(id, nd)
	return victim, evicted
}

// Evict removes and returns the least-frequently-used page (oldest within
// the lowest-frequency bucket).
func (p *LFU) Evict() (PageID, bool) {
	if p.length == 0 {
		return 0, false
	}
	b, ok := p.buckets[p.minFreq]
	for !ok || b.len() == 0 {
		// minFreq can be stale after removals; advance to the next
		// populated bucket. Bounded by the max frequency seen.
		p.minFreq++
		b, ok = p.buckets[p.minFreq]
	}
	nd := b.popBack()
	if b.len() == 0 {
		delete(p.buckets, p.minFreq)
	}
	delete(p.table, nd.id)
	p.forget(nd.id)
	p.length--
	return nd.id, true
}

// Remove deletes a page from the resident set.
func (p *LFU) Remove(id PageID) {
	nd, ok := p.table[id]
	if !ok {
		return
	}
	b := p.buckets[nd.count]
	b.remove(nd)
	if b.len() == 0 {
		delete(p.buckets, nd.count)
	}
	delete(p.table, id)
	p.forget(id)
	p.length--
	if p.length == 0 {
		p.minFreq = 0
	}
}
