package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"bpwrapper/internal/page"
	"bpwrapper/internal/sched"
)

// TestHotStructPadding pins the cache-line layout the lock-free hit path
// depends on: the frame's state word and tag own the leading line, the
// whole Frame is a multiple of the line size (so frames in the shard's
// slice never share a line), and the bucket is exactly three lines.
func TestHotStructPadding(t *testing.T) {
	if s := unsafe.Sizeof(Frame{}); s%64 != 0 {
		t.Errorf("Frame size %d is not a cache-line multiple", s)
	}
	if off := unsafe.Offsetof(Frame{}.wmu); off != 64 {
		t.Errorf("Frame.wmu at offset %d, want 64: state+tag must own the first line", off)
	}
	if s := unsafe.Sizeof(bucket{}); s != 192 {
		t.Errorf("bucket size %d, want 192 (three cache lines)", s)
	}
}

// TestFramePinStates covers the tryPin outcome matrix against a single
// frame walked through its lifecycle by hand.
func TestFramePinStates(t *testing.T) {
	var f Frame
	f.initFree()
	if _, st := f.tryPin(1); st != pinRecycled {
		t.Fatalf("tryPin on free frame: got %v, want pinRecycled", st)
	}

	f.claimFree()
	f.tagPage.Store(1)
	tag := f.install(false, false)
	if tag.Page != 1 {
		t.Fatalf("install tag = %+v, want page 1", tag)
	}
	f.unpin()

	if got, st := f.tryPin(1); st != pinOK || got != tag {
		t.Fatalf("tryPin(1) = %+v, %v; want %+v, pinOK", got, st, tag)
	}
	if _, st := f.tryPin(2); st != pinRecycled {
		t.Fatalf("tryPin with wrong id: got %v, want pinRecycled", st)
	}

	// A writer's content lock makes readers back off rather than restart.
	f.wmu.Lock()
	f.lockContent() // we hold the only pin, drains immediately
	if _, st := f.tryPin(1); st != pinBusy {
		t.Fatalf("tryPin under wlock: got %v, want pinBusy", st)
	}
	f.unlockContentAndUnpin()
	f.wmu.Unlock()

	// A claimed (recycling) frame refuses pins even before the tag moves.
	s := f.state.Load()
	if !f.tryClaim(s) {
		t.Fatalf("tryClaim of quiescent resident frame failed")
	}
	if _, st := f.tryPin(1); st != pinRecycled {
		t.Fatalf("tryPin on claimed frame: got %v, want pinRecycled", st)
	}
	f.toFree()
	if n := f.state.Load() & framePinMask; n != 0 {
		t.Fatalf("pin count after toFree = %d, want 0", n)
	}
}

// TestFramePinEvictRace hammers one frame with concurrent pinners and an
// evictor that keeps recycling the frame between two identities. The oracle:
// a pin that succeeds for page id must observe that identity (and a clear
// recycling bit) for as long as it is held — i.e. no pin ever lands on a
// recycled generation — and the pin count never underflows (unpin panics on
// underflow) or leaks (must be zero at the end).
func TestFramePinEvictRace(t *testing.T) {
	const (
		idA     = page.PageID(7)
		idB     = page.PageID(11)
		pinners = 4
		iters   = 20000
	)
	var f Frame
	f.initFree()
	f.claimFree()
	f.tagPage.Store(uint64(idA))
	f.install(false, false)
	f.unpin()

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Evictor: claim the frame whenever it is unpinned, swap its identity,
	// republish. Every transition bumps the generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := idA
		for i := 0; i < iters; i++ {
			for {
				s := f.state.Load()
				if s&(framePinMask|frameRecycling|frameWLock) != 0 {
					if stop.Load() {
						return
					}
					continue
				}
				if f.tryClaim(s) {
					break
				}
			}
			if cur == idA {
				cur = idB
			} else {
				cur = idA
			}
			f.tagPage.Store(uint64(cur))
			f.install(false, false)
			f.unpin()
		}
	}()
	for p := 0; p < pinners; p++ {
		want := idA
		if p%2 == 1 {
			want = idB
		}
		wg.Add(1)
		go func(want page.PageID) {
			defer wg.Done()
			defer stop.Store(true)
			for i := 0; i < iters; i++ {
				tag, st := f.tryPin(want)
				if st != pinOK {
					continue
				}
				s := f.state.Load()
				if s&frameRecycling != 0 {
					t.Errorf("pinned frame has recycling bit set (state %#x)", s)
				}
				if got := page.PageID(f.tagPage.Load()); got != want {
					t.Errorf("pin for page %d landed on recycled frame now caching %d (tag %+v)",
						want, got, tag)
				}
				f.unpin()
				if t.Failed() {
					return
				}
			}
		}(want)
	}
	wg.Wait()
	if n := f.state.Load() & framePinMask; n != 0 {
		t.Fatalf("pin count leaked: %d pins outstanding after all goroutines exited", n)
	}
}

// TestBucketTornRead gates a bucket writer mid-seqlock-window via the sched
// hook and asserts the optimistic probe reports the read as torn (unstable)
// for the whole window, then resolves once the writer finishes. Installs
// the process-wide sched hook, so it must not run in parallel with other
// hook users.
func TestBucketTornRead(t *testing.T) {
	var b bucket
	var f Frame
	f.initFree()

	inWindow := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := sched.SetHook(func(pt sched.Point) {
		if pt == sched.BufBucketWrite {
			once.Do(func() {
				close(inWindow)
				<-release
			})
		}
	})
	defer restore()

	done := make(chan struct{})
	go func() {
		defer close(done)
		b.mu.Lock()
		b.insertLocked(42, &f)
		b.mu.Unlock()
	}()

	<-inWindow // writer holds the seqlock odd, paused mid-mutation
	for i := 0; i < 3; i++ {
		if _, stable := b.lookupOptimistic(42); stable {
			t.Errorf("lookupOptimistic reported a stable read inside a writer's seqlock window")
		}
	}
	close(release)
	<-done

	got, stable := b.lookupOptimistic(42)
	if !stable || got != &f {
		t.Fatalf("post-write lookupOptimistic = (%p, %v), want (%p, true)", got, stable, &f)
	}
	if _, stable := b.lookupOptimistic(99); !stable {
		t.Fatalf("definitive miss reported unstable with no writer active")
	}
}

// TestBucketOverflowFallback checks that an optimistic probe refuses to
// report a definitive miss while entries live in the overflow map — the
// page might be resident there, invisible to the lock-free slot scan.
func TestBucketOverflowFallback(t *testing.T) {
	var b bucket
	frames := make([]Frame, bucketSlots+1)
	b.mu.Lock()
	for i := 0; i <= bucketSlots; i++ {
		frames[i].initFree()
		b.insertLocked(page.PageID(i+1), &frames[i])
	}
	b.mu.Unlock()

	// The spilled entry is findable under the lock but not optimistically.
	spilled := page.PageID(bucketSlots + 1)
	if got := b.lookupLocked(spilled); got != &frames[bucketSlots] {
		t.Fatalf("lookupLocked lost the overflow entry")
	}
	if _, stable := b.lookupOptimistic(spilled); stable {
		t.Fatalf("optimistic probe claimed a definitive answer despite overflow entries")
	}
	// Even a probe for an id in the slot array that misses must fall back:
	// stable misses are only trustworthy with an empty overflow.
	if _, stable := b.lookupOptimistic(page.PageID(999)); stable {
		t.Fatalf("optimistic miss reported stable while overflow is nonempty")
	}
	// Draining the overflow restores lock-free definitive misses.
	b.mu.Lock()
	b.removeLocked(spilled)
	b.mu.Unlock()
	if _, stable := b.lookupOptimistic(page.PageID(999)); !stable {
		t.Fatalf("optimistic miss still unstable after overflow drained")
	}
}
