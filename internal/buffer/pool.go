// Package buffer implements the DBMS buffer-pool manager of Section II of
// the BP-Wrapper paper: a fixed array of page frames, a hash table mapping
// page ids to frames with one lock per bucket (uncontended by design, as
// the paper argues), and a replacement policy reached through the
// BP-Wrapper core so that the policy's single global lock — the system's
// one true hot spot — can be relieved by batching and prefetching.
//
// The pool can additionally be hash-partitioned into shards (Config.Shards),
// each shard a self-contained pool slice with its own frames, page table,
// free list, dirty quarantine, and BP-Wrapper + policy instance. The paper
// rejects distributing the *replacement algorithm* because it fragments the
// algorithm's access history (Section V-A); sharding here does exactly
// that, deliberately, so experiment E14 can measure the trade: per-shard
// policy locks dissolve contention, per-shard ghost history costs hit
// ratio. Shards: 1 (the default) is the paper's configuration and is
// byte-for-byte the old monolithic pool.
//
// Since PR 9 the shard topology is no longer fixed at construction: the
// shards live behind an atomically-swappable shardSet and Pool.Reshard
// grows or shrinks the count under live traffic (see reshard.go and
// DESIGN.md §14), so shard count can follow the workload instead of a
// config file — the E14 trade becomes a runtime decision.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/reqtrace"
	"bpwrapper/internal/storage"
)

// ErrNoUnpinnedBuffers is returned when every candidate victim is pinned,
// matching PostgreSQL's "no unpinned buffers available" condition.
var ErrNoUnpinnedBuffers = errors.New("buffer: no unpinned buffers available")

// Config assembles a Pool.
type Config struct {
	// Frames is the number of page slots in the pool, summed across all
	// shards. Required.
	Frames int

	// Shards is the number of hash partitions the pool is split into. Each
	// shard owns its own frames, page table, free list, quarantine, and —
	// critically — its own BP-Wrapper + policy instance, so the policy
	// lock and batching queues are per shard. Zero or one means the
	// classic single-shard pool. Must not exceed Frames. This is only the
	// *initial* topology: Reshard changes it at runtime.
	Shards int

	// Policy is the replacement algorithm instance, sized to Frames. Only
	// valid for single-shard pools (the history of one policy instance
	// cannot be split); the pool takes ownership. Exactly one of Policy
	// and PolicyFactory must be set when Shards <= 1; PolicyFactory is
	// required when Shards > 1 — and for Reshard, which must build policy
	// instances for arbitrary shard counts.
	Policy replacer.Policy

	// PolicyFactory constructs one policy instance per shard, each sized
	// to that shard's frame count. Required for Shards > 1.
	PolicyFactory replacer.Factory

	// Wrapper selects the BP-Wrapper techniques (batching, prefetching,
	// queue tuning), applied to every shard's wrapper. The Validate field
	// is overwritten by the pool with its BufferTag check.
	Wrapper core.Config

	// Device is the backing store, shared by all shards (pages are
	// partitioned by id, so shards never write the same page). Required.
	Device storage.Device

	// WrapShardDevice, when non-nil, builds a per-shard device stack over
	// the shared Device: each shard issues its I/O through
	// WrapShardDevice(shard, Device) instead of Device directly. This is
	// how per-shard resilience layers (BreakerDevice, DeadlineDevice,
	// RetryDevice) are attached so one shard's sick device cannot trip
	// another shard's breaker. The pool probes each stack with
	// storage.FindBreaker/FindDeadline and wires what it finds into that
	// shard's health state machine. Pool.Stats().Device still reports the
	// shared base device's counters. After a Reshard the function is
	// called again with the indices of the new topology.
	WrapShardDevice func(shard int, base storage.Device) storage.Device

	// Health tunes the per-shard health state machine and miss admission
	// control (see HealthConfig). The zero value enables it with
	// defaults; set Health.Disable to turn shedding off.
	Health HealthConfig

	// CloseTimeout bounds how long Close may spend flushing and backing
	// off before giving up with an error. Zero keeps the legacy behavior
	// (the full 8-attempt exponential ladder, ~130ms of sleeps plus
	// flush time). Close never loses data either way — unflushed pages
	// stay dirty or quarantined.
	CloseTimeout time.Duration

	// QuarantineCap bounds the dirty-quarantine list that parks pages
	// across their write-back window (eviction in reclaim, flushes in
	// flushFrame). Zero means 64. The cap is divided across shards
	// (rounded up, minimum one per shard). When a shard's quarantine is
	// full, dirty evictions fail and flush rounds leave frames dirty
	// instead of parking more pages, so memory stays bounded and no data
	// is lost either way. The bound is soft under concurrency:
	// simultaneous evictions may briefly overshoot it by the number of
	// in-flight write-backs.
	QuarantineCap int

	// LockedHitPath forces every table lookup through the bucket mutex,
	// disabling the optimistic seqlock hit path. The default (false) is
	// the production configuration; the locked path exists for A/B
	// measurement (E17) and for the torture differential that checks the
	// two paths are oracle-identical.
	LockedHitPath bool

	// RecorderSize enables the per-shard flight recorder: each shard gets
	// its own lock-free ring of the most recent RecorderSize commit-path
	// events (commits, TryLock failures, forced locks, publishes, combines,
	// evictions, quarantine parks/flushes), rounded up to a power of two.
	// Zero disables recording entirely — the hot paths then pay only a
	// nil check. Dumps are appended to Close errors and are available
	// through FlightDump and the /debug/events endpoint.
	//
	// If Wrapper.Events is set it is shared by every shard and RecorderSize
	// is ignored; normally leave Wrapper.Events nil and set RecorderSize.
	RecorderSize int

	// Trace enables the request-tracing layer (DESIGN.md §15): per-request
	// trace IDs with phase-stamped spans (bucket probe, pin, lock wait,
	// combiner handoff, policy op, device I/O, quarantine park), head
	// sampling plus tail keep. The one tracer is shared by every shard and
	// topology; access it through Pool.Tracer for export. The zero value
	// disables tracing entirely — the access paths then pay one branch.
	Trace reqtrace.Config
}

// Pool is the buffer-pool manager: a router over one or more shards, keyed
// by a PageID hash. All methods are safe for concurrent use; per-backend
// access records flow through Sessions obtained from NewSession.
//
// The shard topology is one atomic pointer load away (cur); Reshard swaps
// it wholesale and migrates pages from the old topology to the new one
// under live traffic. Everything needed to *build* a topology — the frame
// budget, policy factory, wrapper config, device wrapping, health tuning —
// is remembered from Config so new shard sets can be constructed at any
// count.
type Pool struct {
	cur          atomic.Pointer[shardSet]
	device       storage.Device
	closeTimeout time.Duration

	// tracer is the pool-wide request tracer (nil when Config.Trace is
	// disabled); shared across shards and reshard topologies, since spans
	// route to rings by trace ID, not by shard.
	tracer *reqtrace.Tracer

	// Construction recipe for newShardSet.
	frames        int
	wrapperCfg    core.Config
	wrapDevice    func(int, storage.Device) storage.Device
	health        HealthConfig
	quarCap       int
	lockedHitPath bool
	recorderSize  int

	// factory builds per-shard policy instances for reshards; nil for
	// single-shard pools constructed with a bare Policy instance (Reshard
	// then refuses until SwapPolicy installs a factory). Guarded by
	// policyMu because SwapPolicy replaces it at runtime.
	policyMu sync.Mutex
	factory  replacer.Factory

	// dynThreshold is the controller's live batch-threshold override
	// (0 = use the configured value); applied to current shards by
	// SetBatchThreshold and inherited by shards built later.
	dynThreshold atomic.Int32

	// forcedRO mirrors SetReadOnly so shards built by a reshard inherit
	// the operator's read-only floor.
	forcedRO atomic.Bool

	// reshardMu serializes topology and policy swaps; reshards counts
	// completed topology changes.
	reshardMu sync.Mutex
	reshards  atomic.Int64

	// retired holds the shards of fully-drained previous topologies:
	// their frames are empty, but their counters still receive late folds
	// from sessions that stayed idle across the migration, so Stats keeps
	// reading them. retireMu orders the retire-append/prev-clear pair
	// against Stats snapshots (exactly-once counting; see Stats).
	retireMu sync.Mutex
	retired  []*shard

	// obsRegs remembers every registry handed to RegisterObs so the
	// flight recorders of shards built by later reshards can be
	// registered too.
	obsMu   sync.Mutex
	obsRegs []*obs.Registry

	// sampler, when enabled, spatially samples the access stream into a
	// lock-free ring for the controller's shadow ghost caches.
	sampler atomic.Pointer[sampleRing]
}

// Session is a per-backend handle carrying one core.Session per shard
// (each shard has its own wrapper, and a batching queue belongs to exactly
// one wrapper). Sessions must not be shared between goroutines.
//
// A session is bound to one shardSet; when the pool resharded since the
// session's last access, the access path re-binds it: staged hits are
// folded and queued accesses flushed into the old topology's wrappers
// (whose counters remain reachable after retirement), then fresh
// sub-sessions are built for the new topology. Callers never see any of
// this — pins taken before a reshard stay valid (PageRef holds the frame,
// not a route) and the typed errResharded retry is internal.
type Session struct {
	pool *Pool
	set  *shardSet
	subs []*core.Session

	// trace is the session's request-trace context: one Active shared (by
	// pointer) with every per-shard core sub-session, so a request's pool-
	// level spans and its commit-path spans land in the same trace. The
	// zero value is inert until Init binds the pool tracer.
	trace reqtrace.Active

	// stage holds per-shard hit counts not yet folded into the shard's
	// shared counters: the zero-lock hit path must not write a shared
	// cacheline per access, so hits accumulate here (session-local, no
	// contention) and fold in batches of hitFoldInterval, on any miss to
	// the shard, and on Flush. Pool.AccessStats is therefore exact only
	// after the sessions flush.
	stage []hitStage
}

// hitStage is one shard's staged hit counts within a Session.
type hitStage struct {
	hits int64 // hits not yet folded into shard counters
	fast int64 // of those, hits served with zero mutex acquisitions
}

// hitFoldInterval bounds how many hits a session stages per shard before
// folding them into the shard counters, so live Stats lag by at most this
// much per session.
const hitFoldInterval = 1024

// stageHit records one hit against shard idx in session-local memory.
func (s *Session) stageHit(idx int, fast bool) {
	st := &s.stage[idx]
	st.hits++
	if fast {
		st.fast++
	}
	if st.hits >= hitFoldInterval {
		s.foldHits(idx)
	}
}

// foldHits flushes the staged hit counts of shard idx into its shared
// counters.
func (s *Session) foldHits(idx int) {
	st := &s.stage[idx]
	if st.hits == 0 {
		return
	}
	sh := s.set.shards[idx]
	sh.counters.AddHits(st.hits)
	sh.hp.fast.Add(st.fast)
	st.hits, st.fast = 0, 0
}

// rebind moves the session onto set: staged hits and queued accesses are
// folded into the topology they were recorded against (late folds into
// retired shards are safe — their wrappers and tables stay alive), then
// per-shard sub-sessions are rebuilt for the new topology.
func (s *Session) rebind(set *shardSet) {
	for i, sub := range s.subs {
		s.foldHits(i)
		sub.Flush()
	}
	s.set = set
	s.subs = make([]*core.Session, len(set.shards))
	s.stage = make([]hitStage, len(set.shards))
	for i, sh := range set.shards {
		s.subs[i] = sh.wrapper.NewSession()
		s.subs[i].SetTrace(&s.trace)
	}
}

// Flush commits every shard queue's batched accesses to its policy and
// folds the session's staged hit counts into the shard counters.
func (s *Session) Flush() {
	for i, sub := range s.subs {
		s.foldHits(i)
		sub.Flush()
	}
}

// Pending reports the number of accesses batched across all shard queues.
func (s *Session) Pending() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.Pending()
	}
	return n
}

// New constructs a Pool from cfg. It panics on structural misconfiguration
// (these are programming errors, not runtime conditions).
func New(cfg Config) *Pool {
	if cfg.Frames <= 0 {
		panic("buffer: Frames must be positive")
	}
	if cfg.Device == nil {
		panic("buffer: Device is required")
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = 1
	}
	if nshards > cfg.Frames {
		panic(fmt.Sprintf("buffer: Shards %d exceeds Frames %d", nshards, cfg.Frames))
	}
	if nshards > 1 && cfg.PolicyFactory == nil {
		// One policy instance cannot serve several shards: its access
		// history (ghost lists, recency stacks) is a single structure and
		// the whole point of sharding is one instance — one lock — per
		// shard. The caller must say how to build per-shard instances.
		panic("buffer: Shards > 1 requires PolicyFactory (a single Policy instance cannot be split)")
	}
	if cfg.Policy == nil && cfg.PolicyFactory == nil {
		panic("buffer: Policy or PolicyFactory is required")
	}
	if cfg.QuarantineCap <= 0 {
		cfg.QuarantineCap = 64
	}

	p := &Pool{
		device:        cfg.Device,
		closeTimeout:  cfg.CloseTimeout,
		frames:        cfg.Frames,
		tracer:        reqtrace.New(cfg.Trace),
		wrapperCfg:    cfg.Wrapper,
		wrapDevice:    cfg.WrapShardDevice,
		health:        cfg.Health,
		quarCap:       cfg.QuarantineCap,
		lockedHitPath: cfg.LockedHitPath,
		recorderSize:  cfg.RecorderSize,
		factory:       cfg.PolicyFactory,
	}
	initFactory := cfg.PolicyFactory
	if initFactory == nil {
		// Single-shard pool with a bare Policy instance: build epoch 0
		// around it (nshards is 1 here, so the closure runs exactly once).
		// p.factory stays nil, making Reshard refuse until SwapPolicy
		// installs a real factory.
		initFactory = func(int) replacer.Policy { return cfg.Policy }
	}
	p.cur.Store(p.newShardSet(nshards, 0, initFactory))
	return p
}

// newShardSet builds one topology of n shards from the pool's remembered
// construction recipe, splitting the frame and quarantine budgets the same
// way New always has (the first Frames%n shards get one extra frame).
func (p *Pool) newShardSet(n int, epoch uint64, factory replacer.Factory) *shardSet {
	set := &shardSet{epoch: epoch, shards: make([]*shard, n)}
	shardQuar := (p.quarCap + n - 1) / n
	if shardQuar < 1 {
		shardQuar = 1
	}
	base := p.frames / n
	extra := p.frames % n
	for i := range set.shards {
		fn := base
		if i < extra {
			fn++
		}
		pol := factory(fn)
		wcfg := p.wrapperCfg
		if wcfg.Events == nil {
			// One ring per shard: recorders are single-writer-friendly but
			// fully concurrent, and per-shard rings keep a hot shard from
			// scrolling a quiet shard's history out of the ring.
			wcfg.Events = obs.NewRecorder(p.recorderSize)
		}
		if wcfg.Tracer == nil {
			wcfg.Tracer = p.tracer
		}
		dev := p.device
		if p.wrapDevice != nil {
			if dev = p.wrapDevice(i, p.device); dev == nil {
				panic("buffer: WrapShardDevice returned nil")
			}
		}
		sh := &shard{set: set}
		sh.init(fn, pol, wcfg, dev, shardQuar, p.lockedHitPath)
		sh.wireHealth(p.health)
		if p.forcedRO.Load() {
			sh.forced.Store(true)
			sh.evalHealth()
		}
		if t := p.dynThreshold.Load(); t > 0 {
			sh.wrapper.SetBatchThreshold(int(t))
		}
		set.shards[i] = sh
	}
	return set
}

// liveShards returns the shards of the current topology plus, while a
// migration is draining, the previous one — the order every pool-wide
// sweep (flush, background writer, gauges) must walk so no dirty or
// quarantined page is invisible mid-reshard.
func (p *Pool) liveShards() []*shard {
	set := p.cur.Load()
	prev := set.prev.Load()
	if prev == nil {
		return set.shards
	}
	all := make([]*shard, 0, len(set.shards)+len(prev.shards))
	all = append(all, set.shards...)
	return append(all, prev.shards...)
}

// shardFor routes a page id to its owning shard in the current topology.
// The shard index comes from the HIGH bits of the mixed hash while bucket
// selection inside the shard uses the low bits, so the two partitionings
// stay independent (with correlated bits, a shard's buckets would collapse
// to 1/nshards utilization). Single-shard topologies skip the hash
// entirely.
func (p *Pool) shardFor(id page.PageID) *shard {
	return p.cur.Load().shardFor(id)
}

// shardIndexFor is shardFor returning the index; used by invariant checks.
func (p *Pool) shardIndexFor(id page.PageID) int {
	return p.cur.Load().indexFor(id)
}

// NewSession returns a per-backend access session spanning all shards.
// Sessions must not be shared between goroutines.
func (p *Pool) NewSession() *Session {
	s := &Session{pool: p}
	s.trace.Init(p.tracer)
	s.rebind(p.cur.Load())
	return s
}

// SetNextTrace adopts a caller-supplied trace ID (e.g. propagated over the
// wire) for the session's NEXT access: that request is traced regardless of
// head sampling and its spans carry the given ID, stitching the client's
// trace to the server-side pool work. A zero id is ignored.
func (s *Session) SetNextTrace(id uint64) { s.trace.SetNext(id) }

// TraceID reports the trace ID of the session's in-flight request, or zero
// when the current request is untraced. Valid between an access's start and
// its return; callers wanting exemplars must read it before the next access.
func (s *Session) TraceID() uint64 { return s.trace.ID() }

// Tracer exposes the pool's request tracer for export endpoints and tests;
// nil when Config.Trace left tracing disabled.
func (p *Pool) Tracer() *reqtrace.Tracer { return p.tracer }

// Shards reports the number of hash partitions in the current topology.
func (p *Pool) Shards() int { return len(p.cur.Load().shards) }

// ShardOf reports which shard owns page id; useful for tests, chaos
// harnesses, and diagnostics that need to target one shard's traffic.
func (p *Pool) ShardOf(id page.PageID) int { return p.shardIndexFor(id) }

// ShardHealth reports the most recently evaluated health state of one
// shard (the miss path and metric scrapes keep it fresh).
func (p *Pool) ShardHealth(i int) HealthState { return p.cur.Load().shards[i].lastHealth() }

// SetReadOnly pins (or releases) every shard at the ReadOnly floor of the
// health ladder, independent of breaker and quarantine state. While set,
// misses are shed with ErrOverloaded but resident pages keep serving —
// including writes to them, which the quarantine protocol still evicts
// losslessly. It is the graceful-drain hook for network front-ends: lower
// the floor, let in-flight clients finish against resident pages, then
// CloseWithin flushes what is dirty. Unlike the health machinery it also
// applies when HealthConfig.Disable is set — it is an operator action, not
// a health verdict. Releasing returns shards to their evaluated state.
// Shards built by a later Reshard inherit the current setting.
func (p *Pool) SetReadOnly(on bool) {
	p.forcedRO.Store(on)
	for _, sh := range p.liveShards() {
		sh.forced.Store(on)
		sh.evalHealth()
	}
}

// ShardDevice returns the device stack shard i issues its I/O through
// (the shared Device unless Config.WrapShardDevice built a per-shard
// stack).
func (p *Pool) ShardDevice(i int) storage.Device { return p.cur.Load().shards[i].device }

// Wrapper exposes the BP-Wrapper core of shard 0. It is a diagnostic
// accessor for single-shard pools (where shard 0 IS the pool); with
// Shards > 1 use WrapperStats for aggregated figures.
func (p *Pool) Wrapper() *core.Wrapper { return p.cur.Load().shards[0].wrapper }

// WrapperStats returns the BP-Wrapper statistics summed over every
// shard's wrapper — including retired topologies, whose wrappers keep
// receiving late flushes from sessions that re-bound after a reshard.
// Each shard snapshot is internally consistent (hits+misses never exceed
// accesses — see core.Wrapper.Stats), and sums of consistent snapshots
// preserve that bound.
func (p *Pool) WrapperStats() core.Stats {
	cur, prev, retired := p.topologySnapshot()
	var ws core.Stats
	for _, sh := range cur.shards {
		ws = ws.Plus(sh.wrapper.Stats())
	}
	for _, sh := range prevShards(prev) {
		ws = ws.Plus(sh.wrapper.Stats())
	}
	for _, sh := range retired {
		ws = ws.Plus(sh.wrapper.Stats())
	}
	return ws
}

// AccessStats returns the pool's hit/miss counters summed over all shards
// — current, draining, and retired — as one consistent snapshot: within
// each shard hits are read before misses (matching the increment order
// hit-then-miss is impossible — a counted access increments exactly one of
// them), so the derived ratio never observes a torn pair. Sessions stage
// hits locally and fold them in batches (see Session), so the figures are
// exact only once the sessions have called Flush; mid-run they can lag by
// up to hitFoldInterval hits per live session.
func (p *Pool) AccessStats() metrics.AccessSnapshot {
	cur, prev, retired := p.topologySnapshot()
	var a metrics.AccessSnapshot
	for _, sh := range cur.shards {
		a = a.Plus(sh.counters.Snapshot())
	}
	for _, sh := range prevShards(prev) {
		a = a.Plus(sh.counters.Snapshot())
	}
	for _, sh := range retired {
		a = a.Plus(sh.counters.Snapshot())
	}
	return a
}

// topologySnapshot reads the current set, the draining previous set, and
// the retired-shard list as one exactly-once snapshot: retireMu orders it
// against Reshard's finalize step (which appends to retired and clears
// prev under the same mutex), so an old shard is never observed both as
// "draining" and as "retired", and never missed.
func (p *Pool) topologySnapshot() (cur, prev *shardSet, retired []*shard) {
	p.retireMu.Lock()
	cur = p.cur.Load()
	prev = cur.prev.Load()
	retired = append([]*shard(nil), p.retired...)
	p.retireMu.Unlock()
	return cur, prev, retired
}

// prevShards unwraps an optional draining set into its shard list.
func prevShards(prev *shardSet) []*shard {
	if prev == nil {
		return nil
	}
	return prev.shards
}

// Device returns the backing device.
func (p *Pool) Device() storage.Device { return p.device }

// Get pins page id for reading, loading it from the device on a miss. The
// access is recorded through the session per the BP-Wrapper protocol,
// against the wrapper of the shard that owns the page.
func (p *Pool) Get(s *Session, id page.PageID) (*PageRef, error) {
	return p.access(s, id, false)
}

// GetWrite pins page id for writing: the returned reference holds the
// content lock exclusively and permits MarkDirty.
func (p *Pool) GetWrite(s *Session, id page.PageID) (*PageRef, error) {
	return p.access(s, id, true)
}

// access routes one page access through the current topology, re-binding
// the session when the topology moved since its last access and absorbing
// the one reshard race: a shard can be sealed between our cur load and the
// shard operation (the swap is a plain pointer store, deliberately not
// synchronized with readers), in which case the shard's miss path refuses
// with errResharded and we retry against the freshly published set. Hits
// on sealed shards still serve — only loads bounce — so the retry is rare
// and bounded by the reshard rate, not the access rate.
func (p *Pool) access(s *Session, id page.PageID, writable bool) (*PageRef, error) {
	if !id.Valid() {
		return nil, storage.ErrInvalidPage
	}
	p.sampleAccess(id)
	s.trace.Begin()
	for spins := 0; ; spins++ {
		set := p.cur.Load()
		if s.set != set {
			s.rebind(set)
		}
		idx := set.indexFor(id)
		ref, err := set.shards[idx].get(s, idx, id, writable)
		if err == errResharded {
			backoff(spins)
			continue
		}
		s.trace.End(uint64(id), err)
		return ref, err
	}
}

// Invalidate drops page id from the pool (e.g. its table was truncated),
// discarding dirty contents — including any quarantined copy from an
// earlier failed write-back, which must not be drained back to the device
// later. It fails with ErrNoUnpinnedBuffers if the page is pinned.
// During an active reshard both the draining and the current owner shard
// are purged; a copy in mid-migration flight (claimed out of the old
// shard, not yet installed in the new) can escape the purge, so callers
// that invalidate during a reshard should re-invalidate after it
// completes (CheckInvariants-grade exactness needs quiescence anyway).
func (p *Pool) Invalidate(id page.PageID) error {
	for {
		set := p.cur.Load()
		if prev := set.prev.Load(); prev != nil {
			if err := prev.shardFor(id).invalidate(id); err != nil {
				return err
			}
		}
		if err := set.shardFor(id).invalidate(id); err != nil {
			return err
		}
		if p.cur.Load() == set {
			return nil
		}
		// The topology moved while we were purging; redo against the new
		// routing so the page cannot survive in a shard we never visited.
	}
}

// QuarantineLen reports the number of pages currently parked in the dirty
// quarantines of all live shards.
func (p *Pool) QuarantineLen() int {
	n := 0
	for _, sh := range p.liveShards() {
		n += sh.quarantineLen()
	}
	return n
}

// DirtyCount reports the number of dirty resident pages across all live
// shards right now; the figure is advisory under concurrency.
func (p *Pool) DirtyCount() int {
	n := 0
	for _, sh := range p.liveShards() {
		n += sh.dirtyCount()
	}
	return n
}

// drainQuarantine retries the write-back of every quarantined page across
// all live shards; see shard.drainQuarantine for the per-shard semantics.
func (p *Pool) drainQuarantine() (written, failed int, err error) {
	var errs []error
	for _, sh := range p.liveShards() {
		w, f, e := sh.drainQuarantine()
		written += w
		failed += f
		if e != nil {
			errs = append(errs, e)
		}
	}
	return written, failed, errors.Join(errs...)
}

// FlushDirty writes every dirty, unpinned page back to the device — and
// retries every quarantined page — returning the number made durable.
// Pinned dirty pages are skipped. A write failure does not abort the
// sweep: the page stays dirty (or quarantined), the remaining pages and
// shards are still flushed, and the failures are returned joined so the
// caller sees every page that is not yet durable. Each shard drains its
// quarantine before its frame sweep so the sweep's transient parking has
// capacity to work with. During a reshard the draining topology is swept
// too — a dirty page is never invisible to flush, whichever side of the
// migration it is on.
func (p *Pool) FlushDirty() (int, error) {
	n := 0
	var errs []error
	for _, sh := range p.liveShards() {
		sn, err := sh.flushDirty()
		n += sn
		if err != nil {
			errs = append(errs, err)
		}
	}
	return n, errors.Join(errs...)
}

// Close flushes the pool for shutdown: dirty and quarantined pages of
// every shard are written back with bounded retries and exponential
// backoff, so transient device trouble at shutdown does not lose data. It
// returns an error if pages remain non-durable (still failing, or pinned
// dirty) after the retry budget — or after Config.CloseTimeout, if set.
// Close does not stop a BackgroundWriter — the caller owns that — and the
// pool remains usable afterwards.
func (p *Pool) Close() error {
	return p.CloseWithin(p.closeTimeout)
}

// CloseWithin is Close with an explicit time budget: the flush-retry
// ladder gives up as soon as the budget is exhausted instead of sleeping
// out its remaining backoffs. A zero budget means unbounded (the full
// ladder). The budget bounds the backoff sleeps between attempts; each
// FlushDirty itself is bounded only by the device stack (a DeadlineDevice
// in the stack is what makes the whole call promptly abortable against a
// hung device). Giving up never loses data: unflushed pages stay dirty in
// their frames or parked in the quarantine, and a later Close can retry.
func (p *Pool) CloseWithin(budget time.Duration) error {
	const attempts = 8
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	backoff := time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		_, err := p.FlushDirty()
		lastErr = err
		if err == nil && p.QuarantineLen() == 0 {
			if d := p.DirtyCount(); d > 0 {
				lastErr = fmt.Errorf("buffer: %d dirty pages still pinned", d)
			} else {
				return nil
			}
		}
		if i < attempts-1 {
			sleep := backoff
			if !deadline.IsZero() {
				remaining := time.Until(deadline)
				if remaining <= 0 {
					lastErr = fmt.Errorf("buffer: close budget %v exhausted after %d attempts: %w", budget, i+1, lastErr)
					break
				}
				if sleep > remaining {
					sleep = remaining
				}
			}
			time.Sleep(sleep)
			backoff *= 2
		}
	}
	err := fmt.Errorf("buffer: close did not reach a clean state: %w", lastErr)
	// A dirty shutdown is exactly the situation the flight recorder exists
	// for: attach the recent protocol history (evictions, parks, failed
	// flushes) so the error is diagnosable post mortem.
	if dump := p.FlightDump(); dump != "" {
		err = fmt.Errorf("%w\n%s", err, dump)
	}
	return err
}

// Prewarm loads the given pages through a throwaway session so that a
// subsequent measured run starts with the working set resident, as the
// scalability experiments require ("we pre-warm the buffer", Section IV).
func (p *Pool) Prewarm(ids []page.PageID) error {
	s := p.NewSession()
	for _, id := range ids {
		ref, err := p.Get(s, id)
		if err != nil {
			return err
		}
		ref.Release()
	}
	s.Flush()
	return nil
}

// ResetStats zeroes every shard's access counters, hit-path counters, and
// wrapper lock and batching statistics — including draining and retired
// shards, so post-reset totals don't resurrect pre-reset history; used
// between warm-up and measurement phases. Like counters.Reset it is
// quiescent-only — sessions must have flushed their staged hits first.
func (p *Pool) ResetStats() {
	cur, prev, retired := p.topologySnapshot()
	reset := func(sh *shard) {
		sh.counters.Reset()
		sh.hp.reset()
		sh.wrapper.ResetStats()
		sh.migratedOut.Store(0)
	}
	for _, sh := range cur.shards {
		reset(sh)
	}
	for _, sh := range prevShards(prev) {
		reset(sh)
	}
	for _, sh := range retired {
		reset(sh)
	}
}

// ShardStats is the per-shard slice of a Stats snapshot.
type ShardStats struct {
	Frames            int   // page slots owned by this shard
	Free              int   // slots on the shard's free list
	Dirty             int   // dirty resident pages
	Resident          int   // pages tracked by the shard's policy
	Quarantined       int   // quarantined pages awaiting write-back
	Hits              int64 // buffer hits since the last reset
	Misses            int64 // buffer misses since the last reset
	WriteBackFailures int64 // failed write-back attempts

	// Policy is the replacement algorithm currently installed in this
	// shard's wrapper — live information once SwapPolicy can change it at
	// runtime.
	Policy string

	// Hit-path anatomy (see DESIGN.md §12): how resident lookups were
	// served. HitpathFast counts hits that touched no mutex at all;
	// HitpathRetries counts torn optimistic probes that retried;
	// HitpathFallbacks counts lookups that gave up on the seqlock and took
	// the bucket mutex. BucketLockAcqs and FrameLockAcqs count every
	// bucket-mutex / frame-wmu acquisition on the access paths — the E17
	// acceptance figure ("≈ 0 bucket/frame lock acquisitions under a 100%
	// resident read workload") reads straight off them.
	HitpathFast      int64
	HitpathRetries   int64
	HitpathFallbacks int64
	BucketLockAcqs   int64
	FrameLockAcqs    int64

	Health             HealthState // degradation state at snapshot time
	Shed               int64       // misses refused with ErrOverloaded
	QuarantineRefusals int64       // dirty evictions/flushes refused by the cap
	BreakerState       string      // "" when the shard's stack has no breaker
	BreakerTrips       int64
	BreakerRejections  int64
	DeadlineTimeouts   int64 // 0 when the shard's stack has no deadline layer
}

// add folds another shard's snapshot into this one (used for the Retired
// aggregate; gauge-like fields sum, Health takes the worst).
func (ss *ShardStats) add(o ShardStats) {
	ss.Frames += o.Frames
	ss.Free += o.Free
	ss.Dirty += o.Dirty
	ss.Resident += o.Resident
	ss.Quarantined += o.Quarantined
	ss.Hits += o.Hits
	ss.Misses += o.Misses
	ss.WriteBackFailures += o.WriteBackFailures
	ss.HitpathFast += o.HitpathFast
	ss.HitpathRetries += o.HitpathRetries
	ss.HitpathFallbacks += o.HitpathFallbacks
	ss.BucketLockAcqs += o.BucketLockAcqs
	ss.FrameLockAcqs += o.FrameLockAcqs
	ss.Shed += o.Shed
	ss.QuarantineRefusals += o.QuarantineRefusals
	ss.BreakerTrips += o.BreakerTrips
	ss.BreakerRejections += o.BreakerRejections
	ss.DeadlineTimeouts += o.DeadlineTimeouts
	if o.Health > ss.Health {
		ss.Health = o.Health
	}
}

// Stats is a point-in-time operational snapshot of the pool.
//
// Snapshot semantics are relaxed: each counter group is read atomically
// and consistently (per shard, hits before misses, so hits+misses never
// exceed the accesses they imply), but distinct groups — access counters,
// dirty counts, wrapper stats, device stats — are collected one after
// another while workers may still be running, so cross-group comparisons
// (e.g. Misses vs Device.Reads) can be off by in-flight operations.
// Collect at quiescence for exact figures.
type Stats struct {
	Frames   int     // page slots in the current topology, summed over shards
	Shards   int     // number of hash partitions in the current topology
	Free     int     // slots on the current topology's free lists
	Dirty    int     // dirty resident pages (including a draining topology's)
	Resident int     // pages tracked by the current replacement policies
	Hits     int64   // buffer hits since the last reset (all topologies)
	Misses   int64   // buffer misses since the last reset (all topologies)
	HitRatio float64 // hits / (hits + misses), from one consistent snapshot

	// Epoch stamps the current topology (0 until the first reshard);
	// Resharding is true while a previous topology is still draining;
	// Reshards counts completed topology changes; PagesMigrated counts
	// pages carried old→new across all reshards since the last reset.
	Epoch         uint64
	Resharding    bool
	Reshards      int64
	PagesMigrated int64

	// Quarantined is the number of evicted dirty pages whose write-back
	// is unconfirmed (including a draining topology's); WriteBackFailures
	// counts failed write-back attempts (eviction, flush, and
	// quarantine-drain retries). QuarantineCap is the configured pool-wide
	// bound.
	Quarantined       int
	QuarantineCap     int
	WriteBackFailures int64

	// Hit-path anatomy, summed over shards (per-shard breakdown in
	// PerShard; field meanings on ShardStats).
	HitpathFast      int64
	HitpathRetries   int64
	HitpathFallbacks int64
	BucketLockAcqs   int64
	FrameLockAcqs    int64

	// Shed counts misses refused with ErrOverloaded by degraded or
	// read-only shards; Health is the worst shard health at snapshot
	// time (Healthy unless some current shard is degraded — retired
	// shards' health is reported only inside Retired).
	Shed   int64
	Health HealthState

	// Wrapper is the BP-Wrapper statistics summed over all shards;
	// PerShard carries the per-shard breakdown of the pool-level figures
	// for the CURRENT topology only. Retired aggregates every shard of
	// previous topologies (draining or fully retired): their counters
	// still grow (late session folds), and mid-migration their frames
	// still hold real dirty pages, so the pool totals above fold Retired
	// in — except Frames/Free/Resident, which describe the current
	// topology.
	Wrapper  core.Stats
	PerShard []ShardStats
	Retired  ShardStats
	Device   storage.DeviceStats
}

// shardStatsOf snapshots one shard. acc receives the shard's
// hits-before-misses consistent access snapshot.
func shardStatsOf(sh *shard) (ShardStats, metrics.AccessSnapshot) {
	a := sh.counters.Snapshot()
	ss := ShardStats{
		Frames:             len(sh.frames),
		Dirty:              sh.dirtyCount(),
		Quarantined:        sh.quarantineLen(),
		Hits:               a.Hits,
		Misses:             a.Misses,
		WriteBackFailures:  sh.writeBackFailures.Load(),
		Health:             sh.evalHealth(),
		Shed:               sh.shed.Load(),
		QuarantineRefusals: sh.quarRefusals.Load(),
		HitpathFast:        sh.hp.fast.Load(),
		HitpathRetries:     sh.hp.retries.Load(),
		HitpathFallbacks:   sh.hp.fallbacks.Load(),
		BucketLockAcqs:     sh.hp.bucketLocks.Load(),
		FrameLockAcqs:      sh.hp.frameLocks.Load(),
	}
	if sh.breaker != nil {
		bst := sh.breaker.BreakerStats()
		ss.BreakerState = bst.State.String()
		ss.BreakerTrips = bst.Trips
		ss.BreakerRejections = bst.Rejections
	}
	if sh.deadline != nil {
		ss.DeadlineTimeouts = sh.deadline.Timeouts()
	}
	sh.freeMu.Lock()
	ss.Free = len(sh.freeList)
	sh.freeMu.Unlock()
	sh.wrapper.Locked(func(pol replacer.Policy) {
		ss.Resident = pol.Len()
		ss.Policy = pol.Name()
	})
	return ss, a
}

// Stats returns an operational snapshot. It takes each shard's policy lock
// briefly (for the resident count) and scans each frame's state word (for
// the dirty count); intended for monitoring, not hot paths. All pool-level
// counters are folded from the per-shard snapshots by one aggregation
// pass, so the totals and PerShard + Retired always agree and HitRatio
// derives from the same hits/misses pair the snapshot reports. The
// topology is snapshotted through the shard-set epoch (one retireMu-
// ordered read of current/draining/retired), so a concurrent reshard can
// neither double-count a shard nor skip one.
func (p *Pool) Stats() Stats {
	cur, prev, retired := p.topologySnapshot()
	s := Stats{
		Shards:        len(cur.shards),
		Epoch:         cur.epoch,
		Resharding:    prev != nil,
		Reshards:      p.reshards.Load(),
		QuarantineCap: p.quarCap,
		PerShard:      make([]ShardStats, len(cur.shards)),
		Device:        p.device.Stats(),
	}
	var acc metrics.AccessSnapshot
	for i, sh := range cur.shards {
		ss, a := shardStatsOf(sh)
		s.PerShard[i] = ss
		s.Frames += ss.Frames
		s.Free += ss.Free
		s.Dirty += ss.Dirty
		s.Resident += ss.Resident
		s.Quarantined += ss.Quarantined
		s.WriteBackFailures += ss.WriteBackFailures
		s.Shed += ss.Shed
		s.HitpathFast += ss.HitpathFast
		s.HitpathRetries += ss.HitpathRetries
		s.HitpathFallbacks += ss.HitpathFallbacks
		s.BucketLockAcqs += ss.BucketLockAcqs
		s.FrameLockAcqs += ss.FrameLockAcqs
		if ss.Health > s.Health {
			s.Health = ss.Health
		}
		s.PagesMigrated += sh.migratedOut.Load()
		acc = acc.Plus(a)
		s.Wrapper = s.Wrapper.Plus(sh.wrapper.Stats())
	}
	// Previous-topology shards (still draining) and retired shards fold
	// into the Retired aggregate and the pool counter totals: their hits
	// and misses happened to THIS pool, and mid-migration their dirty and
	// quarantined pages are real pages the flush paths still see. Frames/
	// Free/Resident stay current-topology-only (the frame budget would
	// double-count during the drain window).
	old := append(append([]*shard(nil), prevShards(prev)...), retired...)
	for _, sh := range old {
		ss, a := shardStatsOf(sh)
		s.Retired.add(ss)
		s.Dirty += ss.Dirty
		s.Quarantined += ss.Quarantined
		s.WriteBackFailures += ss.WriteBackFailures
		s.Shed += ss.Shed
		s.HitpathFast += ss.HitpathFast
		s.HitpathRetries += ss.HitpathRetries
		s.HitpathFallbacks += ss.HitpathFallbacks
		s.BucketLockAcqs += ss.BucketLockAcqs
		s.FrameLockAcqs += ss.FrameLockAcqs
		s.PagesMigrated += sh.migratedOut.Load()
		acc = acc.Plus(a)
		s.Wrapper = s.Wrapper.Plus(sh.wrapper.Stats())
	}
	s.Hits = acc.Hits
	s.Misses = acc.Misses
	s.HitRatio = acc.HitRatio()
	return s
}

// PinnedFrames reports the number of frames currently holding at least one
// pin; used by tests and diagnostics (at a true quiescent point — no
// outstanding PageRefs, no in-flight operations — it must be zero).
func (p *Pool) PinnedFrames() int {
	n := 0
	for _, sh := range p.liveShards() {
		n += sh.pinnedFrames()
	}
	return n
}

// CheckInvariants verifies the pool's structural invariants shard by
// shard: pin-count sanity, frame/hash-table consistency, free-list
// integrity, the resident-xor-quarantined steady state, policy/table
// agreement, and — across shards — that every resident or quarantined
// page lives in the shard its hash routes to. Retired topologies must be
// fully drained (empty tables, empty quarantines, all frames free). It is
// O(frames + buckets) and takes each lock briefly.
//
// The contract is quiescence: callers must ensure no pool operations are in
// flight (the torture harness calls it after workers join and again after
// Close) — which includes reshards: an in-progress migration is reported
// as a violation rather than checked around. Called concurrently it cannot
// corrupt anything, but it may report perfectly legal in-flight
// transitions — a claimed frame between table removal and the free list, a
// flush window's sanctioned resident+quarantined overlap — as violations.
func (p *Pool) CheckInvariants() error {
	cur, prev, retired := p.topologySnapshot()
	if prev != nil {
		return errors.New("buffer: reshard migration in flight (caller not quiescent)")
	}
	for i, sh := range cur.shards {
		i := i
		owns := func(id page.PageID) bool { return cur.indexFor(id) == i }
		if err := sh.checkInvariants(owns); err != nil {
			return fmt.Errorf("shard %d/%d: %w", i, len(cur.shards), err)
		}
	}
	for i, sh := range retired {
		if !sh.drained() {
			return fmt.Errorf("buffer: retired shard %d not drained (page or frame leaked by migration)", i)
		}
	}
	return nil
}
