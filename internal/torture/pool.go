package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/sched"
	"bpwrapper/internal/storage"
)

// PoolRunConfig shapes a cross-layer torture run: the full
// wrapper × buffer-pool × faulty-device stack under concurrent load.
type PoolRunConfig struct {
	Seed     int64
	Workers  int
	Frames   int
	Pages    int    // working-set size; should exceed Frames to force eviction churn
	Ops      int    // operations per worker per phase
	Phases   int    // bursts separated by quiescent invariant checks
	Policy   string // replacer algorithm name; "" means lru
	Path     Path   // commit path for the pool's wrapper
	Shards   int    // hash partitions of the pool; 0 or 1 is the monolithic pool
	Faults   bool   // inject transient read/write failures and corruption
	BGWriter bool   // run a background writer during the bursts

	// Reshard, when non-empty, runs a resharder goroutine alongside every
	// phase's workers: it walks the schedule in order, applying each shard
	// count to the live pool (grow and shrink both exercise the full
	// seal→migrate→handover protocol under traffic). The resharder is
	// joined before the phase's quiescent checks, so the content, pin,
	// structural, and statistics oracles all run against a settled
	// topology whose retired shards must be fully drained.
	Reshard []int

	// LockedHitPath forces every pool lookup through the bucket mutex
	// instead of the optimistic seqlock path; the hit-path differential
	// runs the same seed both ways and compares reports.
	LockedHitPath bool

	// YieldFrac, when positive, installs the seeded yield injector for the
	// duration of the run, perturbing every sched point — including the
	// optimistic-retry labels (BufHitProbe, BufHitPin, BufBucketWrite).
	// The hook is process-wide: runs with YieldFrac set must not execute
	// concurrently with other hook users.
	YieldFrac float64

	// RecorderSize sizes the per-shard flight recorder whose dump is
	// appended to every oracle failure. Zero means 512 events per shard;
	// negative disables recording.
	RecorderSize int
}

// PoolRunReport summarizes a completed run.
type PoolRunReport struct {
	Reads, Writes  int64 // successful worker operations
	ReadErrors     int64 // tolerated (retry-exhausted) Get failures
	WriteErrors    int64
	Shed           int64 // misses refused by admission control (ErrOverloaded)
	Flushes        int64
	Invariantified int   // quiescent CheckInvariants passes
	Reshards       int64 // topology changes applied during the bursts
}

// tortureTable is the table number the pool run's pages live in; distinct
// from the per-session tables the trace runs use.
const tortureTable = 0x7f

// poolPage returns the real identity of block b.
func poolPage(b int) page.PageID { return page.NewPageID(tortureTable, uint64(b)) }

// stampID encodes (block, version) as the stamp identity: version 0 is the
// pre-loaded content, version v the v-th rewrite. The version rides in the
// table bits, which the content checks decode back.
func stampID(b, version int) page.PageID {
	return page.NewPageID(uint32(0x100+version), uint64(b))
}

// checkStatsConsistency verifies the pool's aggregated snapshot at a
// quiescent point: every session has flushed, so the wrapper aggregates
// must balance exactly (accesses = hits + misses — sessions fold all three
// together), the pool-level counters must equal the per-shard sums, and
// the pool's own hit/miss counters must agree with the wrappers' totals.
// Under load these are only one-sided bounds (see buffer.Stats); at
// quiescence any imbalance is an aggregation bug.
func checkStatsConsistency(pool *buffer.Pool) error {
	st := pool.Stats()
	ws := pool.WrapperStats()
	if ws.Accesses != ws.Hits+ws.Misses {
		return fmt.Errorf("wrapper stats unbalanced at quiescence: accesses=%d hits=%d misses=%d",
			ws.Accesses, ws.Hits, ws.Misses)
	}
	var hits, misses, frames int64
	for _, ss := range st.PerShard {
		hits += ss.Hits
		misses += ss.Misses
		frames += int64(ss.Frames)
	}
	// Shards retired by a reshard keep their lifetime counters (their
	// accesses happened to this pool); the totals fold them in while
	// PerShard covers only the current topology.
	hits += st.Retired.Hits
	misses += st.Retired.Misses
	if st.Hits != hits || st.Misses != misses {
		return fmt.Errorf("pool stats disagree with per-shard + retired sums: pool %d/%d, shards %d/%d",
			st.Hits, st.Misses, hits, misses)
	}
	if int64(st.Frames) != frames {
		return fmt.Errorf("pool frames %d != per-shard sum %d", st.Frames, frames)
	}
	a := pool.AccessStats()
	if a.Hits != st.Hits || a.Misses != st.Misses {
		return fmt.Errorf("AccessStats %d/%d disagrees with Stats %d/%d at quiescence",
			a.Hits, a.Misses, st.Hits, st.Misses)
	}
	return nil
}

// RunPool executes the cross-layer torture run and verifies:
//
//   - content integrity: every page read is a complete stamp of a version
//     consistent with the per-page version counter (no torn or stale-beyond
//     -window reads through the pool);
//   - pin sanity: after each phase and before Close no frame stays pinned;
//   - structural consistency: Pool.CheckInvariants (frame/hash-table/free-
//     list/quarantine agreement plus the policy's own invariants, walking
//     every shard and checking shard-routing ownership) passes at every
//     quiescent point, and the aggregated statistics balance exactly
//     (checkStatsConsistency);
//   - zero lost dirty pages: after Close, the device holds the LAST version
//     written to every page, fault injection notwithstanding.
//
// Every failure message carries the seed.
func RunPool(cfg PoolRunConfig) (*PoolRunReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 32
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 4 * cfg.Frames
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 3
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	if cfg.RecorderSize == 0 {
		cfg.RecorderSize = 512
	} else if cfg.RecorderSize < 0 {
		cfg.RecorderSize = 0
	}

	mem := storage.NewMemDevice()
	fault := storage.NewFaultDevice(mem, storage.FaultConfig{Seed: cfg.Seed})
	var dev storage.Device = storage.NewRetryDevice(
		storage.NewChecksumDevice(fault),
		storage.RetryConfig{MaxAttempts: 6},
	)

	// Pre-load every page at version 0 — through the checksum layer, so
	// corrupted first reads are detected and retried rather than trusted.
	for b := 0; b < cfg.Pages; b++ {
		var pg page.Page
		pg.Stamp(stampID(b, 0))
		pg.ID = poolPage(b)
		if err := dev.WritePage(&pg); err != nil {
			return nil, fmt.Errorf("seed %d: preload: %v", cfg.Seed, err)
		}
	}

	factory, ok := replacer.Factories()[cfg.Policy]
	if !ok {
		return nil, fmt.Errorf("seed %d: unknown policy %q", cfg.Seed, cfg.Policy)
	}
	wcfg := configFor(cfg.Path, 16)
	bcfg := buffer.Config{
		Frames:        cfg.Frames,
		Shards:        cfg.Shards,
		Wrapper:       wcfg,
		Device:        dev,
		RecorderSize:  cfg.RecorderSize,
		LockedHitPath: cfg.LockedHitPath,
	}
	if cfg.Shards > 1 || len(cfg.Reshard) > 0 {
		// Resharding rebuilds per-shard policies at the new capacity, so a
		// schedule needs the factory even for a 1-shard start.
		bcfg.PolicyFactory = factory
	} else {
		// Single-shard runs keep the pre-sharding construction path (one
		// policy instance handed to the pool) so they exercise exactly the
		// configuration the earlier differential suites pinned down.
		bcfg.Policy = factory(cfg.Frames)
	}
	pool := buffer.New(bcfg)

	if cfg.YieldFrac > 0 {
		restore := sched.SetHook(NewYielder(cfg.Seed, cfg.YieldFrac).Hook())
		defer restore()
	}

	// oracleFail attaches the shards' flight-recorder history to a failed
	// oracle: the ring holds the last protocol steps (commits, evictions,
	// quarantine traffic) leading up to the violation, which is usually
	// exactly what a seed-replay debugging session needs first.
	oracleFail := func(err error) error {
		if err == nil {
			return nil
		}
		if dump := pool.FlightDump(); dump != "" {
			return fmt.Errorf("%w\n%s", err, dump)
		}
		return err
	}

	if cfg.Faults {
		fault.SetReadFailRate(0.02)
		fault.SetWriteFailRate(0.05)
		fault.SetCorruptRate(0.01)
	}

	// Shadow model: versions[b] is the last fully written version of block
	// b. Writes to a block are owned by one worker (b mod Workers), so the
	// counter is exact; the version is bumped only after the write ref is
	// released, so a concurrent reader sees a complete stamp of a version
	// in [loadBefore, loadAfter+1].
	versions := make([]atomic.Int64, cfg.Pages)
	var rep PoolRunReport

	var bg *buffer.BackgroundWriter
	startBG := func() {
		if cfg.BGWriter {
			bg = pool.StartBackgroundWriter(buffer.BackgroundWriterConfig{Interval: time.Millisecond})
		}
	}
	stopBG := func() {
		if bg != nil {
			bg.Stop()
			bg = nil
		}
	}

	worker := func(w, phase int, errOut *error) {
		s := pool.NewSession()
		r := rand.New(rand.NewSource(cfg.Seed ^ int64(w)<<20 ^ int64(phase)<<40))
		for op := 0; op < cfg.Ops; op++ {
			b := r.Intn(cfg.Pages)
			switch k := r.Intn(10); {
			case k < 6: // read anywhere, verify content
				v1 := versions[b].Load()
				ref, err := pool.Get(s, poolPage(b))
				if err != nil {
					if cfg.Faults && errors.Is(err, buffer.ErrOverloaded) {
						// A degraded shard shed the miss: the load-shedding
						// contract working as designed under fault pressure.
						atomic.AddInt64(&rep.Shed, 1)
						continue
					}
					if cfg.Faults && storage.Retryable(err) {
						atomic.AddInt64(&rep.ReadErrors, 1)
						continue
					}
					*errOut = fmt.Errorf("seed %d: worker %d phase %d: Get(%d): %v", cfg.Seed, w, phase, b, err)
					return
				}
				var got page.Page
				copy(got.Data[:], ref.Data())
				ref.Release()
				v2 := versions[b].Load()
				okv := false
				for v := v1; v <= v2+1; v++ {
					if got.VerifyStamp(stampID(b, int(v))) {
						okv = true
						break
					}
				}
				if !okv {
					*errOut = fmt.Errorf("seed %d: worker %d phase %d: page %d content matches no version in [%d, %d] — torn or lost write",
						cfg.Seed, w, phase, b, v1, v2+1)
					return
				}
				atomic.AddInt64(&rep.Reads, 1)
			case k < 9: // write, but only to owned blocks
				b = b - b%cfg.Workers + w
				if b >= cfg.Pages {
					continue
				}
				next := int(versions[b].Load()) + 1
				ref, err := pool.GetWrite(s, poolPage(b))
				if err != nil {
					if cfg.Faults && errors.Is(err, buffer.ErrOverloaded) {
						atomic.AddInt64(&rep.Shed, 1)
						continue
					}
					if cfg.Faults && storage.Retryable(err) {
						atomic.AddInt64(&rep.WriteErrors, 1)
						continue
					}
					*errOut = fmt.Errorf("seed %d: worker %d phase %d: GetWrite(%d): %v", cfg.Seed, w, phase, b, err)
					return
				}
				var pg page.Page
				pg.Stamp(stampID(b, next))
				copy(ref.Data(), pg.Data[:])
				ref.MarkDirty()
				ref.Release()
				versions[b].Store(int64(next))
				atomic.AddInt64(&rep.Writes, 1)
			default: // flush (write-back churn racing evictions)
				if _, err := pool.FlushDirty(); err != nil && !(cfg.Faults && storage.Retryable(err)) {
					*errOut = fmt.Errorf("seed %d: worker %d phase %d: FlushDirty: %v", cfg.Seed, w, phase, err)
					return
				}
				atomic.AddInt64(&rep.Flushes, 1)
			}
		}
		s.Flush()
	}

	for phase := 0; phase < cfg.Phases; phase++ {
		startBG()
		errs := make([]error, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w, phase, &errs[w])
			}(w)
		}
		// The resharder walks the schedule while the workers hammer the
		// pool, staggering the topology swaps so migrations overlap live
		// traffic rather than racing each other back to back.
		var reshardErr error
		if len(cfg.Reshard) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, n := range cfg.Reshard {
					time.Sleep(2 * time.Millisecond)
					if err := pool.Reshard(n); err != nil {
						if cfg.Faults {
							// A degraded or read-only shard can legitimately
							// refuse a topology change mid-chaos.
							continue
						}
						reshardErr = fmt.Errorf("seed %d: phase %d: Reshard(%d): %v", cfg.Seed, phase, n, err)
						return
					}
					atomic.AddInt64(&rep.Reshards, 1)
				}
			}()
		}
		wg.Wait()
		stopBG()
		if reshardErr != nil {
			return nil, oracleFail(reshardErr)
		}
		for _, err := range errs {
			if err != nil {
				return nil, oracleFail(err)
			}
		}
		// Quiescent point: no worker, no loader, no background writer.
		if n := pool.PinnedFrames(); n != 0 {
			return nil, oracleFail(fmt.Errorf("seed %d: phase %d: %d frames still pinned at quiescence", cfg.Seed, phase, n))
		}
		if err := pool.CheckInvariants(); err != nil {
			return nil, oracleFail(fmt.Errorf("seed %d: phase %d: %w", cfg.Seed, phase, err))
		}
		if err := checkStatsConsistency(pool); err != nil {
			return nil, oracleFail(fmt.Errorf("seed %d: phase %d: %w", cfg.Seed, phase, err))
		}
		rep.Invariantified++
	}

	// Heal the device so shutdown write-back deterministically succeeds,
	// then verify the zero-lost-dirty-pages guarantee end to end.
	fault.SetReadFailRate(0)
	fault.SetWriteFailRate(0)
	fault.SetCorruptRate(0)
	if err := pool.Close(); err != nil {
		return nil, fmt.Errorf("seed %d: Close: %v", cfg.Seed, err)
	}
	if n := pool.PinnedFrames(); n != 0 {
		return nil, oracleFail(fmt.Errorf("seed %d: %d frames pinned after Close", cfg.Seed, n))
	}
	for b := 0; b < cfg.Pages; b++ {
		var pg page.Page
		if err := mem.ReadPage(poolPage(b), &pg); err != nil {
			return nil, oracleFail(fmt.Errorf("seed %d: post-close read of page %d: %v", cfg.Seed, b, err))
		}
		v := int(versions[b].Load())
		if !pg.VerifyStamp(stampID(b, v)) {
			return nil, oracleFail(fmt.Errorf("seed %d: page %d: device does not hold last written version %d — dirty page lost",
				cfg.Seed, b, v))
		}
	}
	return &rep, nil
}
