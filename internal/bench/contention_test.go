package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bpwrapper/internal/workload"
)

func TestContentionExperimentShape(t *testing.T) {
	rows, err := ContentionExperiment([]int{1, 16}, combineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 1 workload × 2 proc counts × 3 systems
		t.Fatalf("rows=%d, want 6", len(rows))
	}
	get := func(system string, procs int) ContentionRow {
		for _, r := range rows {
			if r.System == system && r.Procs == procs {
				return r
			}
		}
		t.Fatalf("missing row %s/p=%d", system, procs)
		return ContentionRow{}
	}
	base := get("pg2Q", 16)
	bat := get("pgBat", 16)
	fc := get("pgBatFC", 16)
	// The baseline takes the lock once per access; batching commits once
	// per ~threshold accesses, so its acquisition rate must be well below.
	if base.AcquisitionsPerM < 900_000 {
		t.Errorf("pg2Q acquisitions/M = %.0f, want ~1e6 (one lock per access)", base.AcquisitionsPerM)
	}
	if bat.AcquisitionsPerM >= base.AcquisitionsPerM/2 {
		t.Errorf("pgBat acquisitions/M = %.0f not well below pg2Q %.0f", bat.AcquisitionsPerM, base.AcquisitionsPerM)
	}
	// Figure 6's shape: batching slashes blocking acquisitions at scale.
	if bat.ContentionPerM >= base.ContentionPerM {
		t.Errorf("pgBat contention/M %.1f not below pg2Q %.1f at 16 procs", bat.ContentionPerM, base.ContentionPerM)
	}
	if fc.ContentionPerM > bat.ContentionPerM {
		t.Errorf("pgBatFC contention/M %.1f above pgBat %.1f at 16 procs", fc.ContentionPerM, bat.ContentionPerM)
	}
	// Blocking requires waiting: contention and wait time must agree.
	if base.ContentionPerM > 0 && base.WaitNSPerAccess == 0 {
		t.Errorf("pg2Q blocks (%.1f/M) but reports zero wait time", base.ContentionPerM)
	}
	// Determinism: the committed baseline depends on sim-mode runs being
	// exactly reproducible.
	again, err := ContentionExperiment([]int{1, 16}, combineOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("sim run not deterministic: %+v vs %+v", rows[i], again[i])
		}
	}
}

func TestContentionCSVAndJSON(t *testing.T) {
	rows := []ContentionRow{
		{Workload: "tpcw", System: "pg2Q", Procs: 16, ThroughputTPS: 100.5,
			AcquisitionsPerM: 1e6, ContentionPerM: 312.5, TryFailuresPerM: 0, WaitNSPerAccess: 80.25, HoldNSPerAccess: 40.5},
		{Workload: "tpcw", System: "pgBat", Procs: 16, ThroughputTPS: 220,
			AcquisitionsPerM: 250000, ContentionPerM: 4, TryFailuresPerM: 12, WaitNSPerAccess: 1.5, HoldNSPerAccess: 40},
	}
	var csv bytes.Buffer
	if err := CSVContention(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines=%d: %q", len(lines), csv.String())
	}
	if lines[1] != "tpcw,pg2Q,16,100.5,1000000.0,312.50,0.00,80.25,40.50" {
		t.Fatalf("csv row %q", lines[1])
	}

	var js bytes.Buffer
	if err := JSONContention(&js, Options{Seed: 3, Duration: 2 * time.Second}, rows); err != nil {
		t.Fatal(err)
	}
	var rep ContentionReport
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Experiment != "contention" || rep.Mode != "sim" || rep.Seed != 3 || rep.DurationMS != 2000 {
		t.Fatalf("report header %+v", rep)
	}
	if rep.QueueSize != ContentionQueueSize || rep.BatchThreshold != ContentionThreshold {
		t.Fatalf("report tuning %+v", rep)
	}
	if len(rep.Rows) != 2 || rep.Rows[1].TryFailuresPerM != 12 {
		t.Fatalf("report rows %+v", rep.Rows)
	}

	var table bytes.Buffer
	PrintContention(&table, rows)
	for _, want := range []string{"pg2Q", "tpcw", "block/M", "hold ns/a"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table output missing %q:\n%s", want, table.String())
		}
	}
}

func TestContentionRealModeSmoke(t *testing.T) {
	o := Options{
		Mode:          ModeReal,
		TxnsPerWorker: 40,
		Seed:          7,
		Workloads: []workload.Workload{
			workload.NewTableScan(workload.TableScanConfig{}),
		},
	}
	rows, err := ContentionExperiment([]int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.AcquisitionsPerM <= 0 {
			t.Fatalf("row %s/p=%d recorded no acquisitions: %+v", r.System, r.Procs, r)
		}
	}
}
