package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// refStamped reports whether the pinned page carries the stamp of id.
func refStamped(ref *PageRef, id page.PageID) bool {
	var got page.Page
	copy(got.Data[:], ref.Data())
	return got.VerifyStamp(id)
}

func reshardablePool(frames, shards int, wcfg core.Config) (*Pool, *storage.MemDevice) {
	mem := storage.NewMemDevice()
	p := New(Config{
		Frames:        frames,
		Shards:        shards,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Wrapper:       wcfg,
		Device:        mem,
	})
	return p, mem
}

// TestReshardCarriesDirtyPages: unflushed writes must survive a grow AND a
// shrink — the migration steals bytes and the dirty bit from the old shard
// instead of re-reading a stale device copy, and the pages flush correctly
// from the new topology.
func TestReshardCarriesDirtyPages(t *testing.T) {
	p, mem := reshardablePool(16, 1, core.Config{})
	s := p.NewSession()
	for i := uint64(1); i <= 8; i++ {
		dirtyPage(t, p, s, pid(i))
	}

	if err := p.Reshard(4); err != nil {
		t.Fatalf("Reshard(4): %v", err)
	}
	if got := p.Shards(); got != 4 {
		t.Fatalf("Shards()=%d after Reshard(4), want 4", got)
	}
	if epoch, resharding := p.Epoch(); epoch != 1 || resharding {
		t.Fatalf("Epoch()=(%d,%v) after completed reshard, want (1,false)", epoch, resharding)
	}
	if err := p.Reshard(2); err != nil {
		t.Fatalf("Reshard(2): %v", err)
	}

	// The dirty content (stamp of id+stampShift) must still be what reads
	// see, and must not have been silently dropped to the device's stale
	// original.
	for i := uint64(1); i <= 8; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatalf("Get(%d) after reshards: %v", i, err)
		}
		var want page.Page
		want.Stamp(pid(i) + stampShift)
		if string(ref.Data()[:32]) != string(want.Data[:32]) {
			t.Fatalf("page %d content lost across reshards", i)
		}
		ref.Release()
	}

	st := p.Stats()
	if st.Reshards != 2 {
		t.Fatalf("Reshards=%d, want 2", st.Reshards)
	}
	if st.PagesMigrated == 0 {
		t.Fatal("PagesMigrated=0 after two migrations")
	}
	if st.Frames != 16 {
		t.Fatalf("Frames=%d after reshards, want the same 16-frame budget", st.Frames)
	}

	s.Flush()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if _, err := p.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty: %v", err)
	}
	for i := uint64(1); i <= 8; i++ {
		var back page.Page
		if err := mem.ReadPage(pid(i), &back); err != nil {
			t.Fatalf("device read %d: %v", i, err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("page %d not durable after post-reshard flush", i)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReshardUnderConcurrentTraffic: grow 1→4 and shrink 4→2 while reader
// and writer goroutines hammer the pool. No caller may ever observe an
// error (errResharded is internal), and page content must stay exact.
func TestReshardUnderConcurrentTraffic(t *testing.T) {
	p, _ := reshardablePool(64, 1, core.Config{Batching: true, QueueSize: 16, BatchThreshold: 4})
	const pages = 200

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s := p.NewSession()
			defer s.Flush()
			for !stop.Load() {
				id := pid(uint64(rng.Intn(pages)) + 1)
				if rng.Intn(4) == 0 {
					ref, err := p.GetWrite(s, id)
					if err != nil {
						errs <- fmt.Errorf("GetWrite(%v): %w", id, err)
						return
					}
					var want page.Page
					want.Stamp(id + stampShift)
					copy(ref.Data(), want.Data[:])
					ref.MarkDirty()
					ref.Release()
				} else {
					ref, err := p.Get(s, id)
					if err != nil {
						errs <- fmt.Errorf("Get(%v): %w", id, err)
						return
					}
					// Every page is either its stamped original or the
					// writers' deterministic overwrite.
					if !refStamped(ref, id) && !refStamped(ref, id+stampShift) {
						errs <- fmt.Errorf("page %v content is neither original nor overwritten", id)
						ref.Release()
						return
					}
					ref.Release()
				}
			}
		}(int64(w))
	}

	for _, n := range []int{4, 2, 3, 1} {
		time.Sleep(20 * time.Millisecond)
		if err := p.Reshard(n); err != nil {
			t.Fatalf("Reshard(%d) under traffic: %v", n, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("worker: %v", err)
	}

	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent reshards: %v", err)
	}
	st := p.Stats()
	if st.Reshards != 4 {
		t.Fatalf("Reshards=%d, want 4", st.Reshards)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPinAcrossReshard: a PageRef held across a reshard stays valid (it
// pins the frame, not a route), delays only its own page's migration, and
// its dirty write is carried into the new topology after release.
func TestPinAcrossReshard(t *testing.T) {
	p, _ := reshardablePool(16, 1, core.Config{})
	s := p.NewSession()

	ref, err := p.GetWrite(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(2); i <= 6; i++ {
		r, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}

	done := make(chan error, 1)
	go func() { done <- p.Reshard(4) }()

	// The reshard must NOT complete while page 1 is pinned: its migration
	// waits for the pin. Everything else migrates meanwhile.
	select {
	case err := <-done:
		t.Fatalf("Reshard completed despite a pinned page (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, resharding := p.Epoch(); !resharding {
		t.Fatal("migration reported complete while a page is still pinned")
	}

	// The held ref keeps working mid-migration: other pages are already
	// served by the new topology, while this frame is still ours.
	var want page.Page
	want.Stamp(pid(1) + stampShift)
	copy(ref.Data(), want.Data[:])
	ref.MarkDirty()

	// Unpinned pages flow freely during the stalled migration.
	s2 := p.NewSession()
	for i := uint64(2); i <= 6; i++ {
		r, err := p.Get(s2, pid(i))
		if err != nil {
			t.Fatalf("Get(%d) during pin-stalled reshard: %v", i, err)
		}
		r.Release()
	}

	ref.Release()
	if err := <-done; err != nil {
		t.Fatalf("Reshard after release: %v", err)
	}
	if epoch, resharding := p.Epoch(); epoch != 1 || resharding {
		t.Fatalf("Epoch()=(%d,%v), want (1,false)", epoch, resharding)
	}

	// The write performed while pinned-across-the-reshard must be visible.
	r, err := p.Get(s2, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !refStamped(r, pid(1)+stampShift) {
		t.Fatal("write made under a pin held across the reshard was lost")
	}
	r.Release()
	s.Flush()
	s2.Flush()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestQuarantineHandedOverAcrossReshard: pages parked in the quarantine
// (evicted dirty, write-back failing) must survive a reshard losslessly and
// flush once the device heals.
func TestQuarantineHandedOverAcrossReshard(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := New(Config{
		Frames:        4,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Device:        dev,
		Health:        HealthConfig{Disable: true},
	})
	s := p.NewSession()
	for i := uint64(1); i <= 4; i++ {
		dirtyPage(t, p, s, pid(i))
	}
	// Evict the dirty pages with their write-backs failing: they park in
	// the quarantine.
	dev.FailNextWrites(1 << 20)
	for i := uint64(10); i <= 13; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatalf("evicting read %d: %v", i, err)
		}
		ref.Release()
	}
	if q := p.QuarantineLen(); q == 0 {
		t.Fatal("setup failed: nothing quarantined")
	}
	before := p.QuarantineLen()

	if err := p.Reshard(2); err != nil {
		t.Fatalf("Reshard with quarantined pages: %v", err)
	}
	if q := p.QuarantineLen(); q != before {
		t.Fatalf("quarantine len %d after reshard, want %d (lossless handover)", q, before)
	}

	dev.FailNextWrites(0)
	if _, _, err := p.drainQuarantine(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	for i := uint64(1); i <= 4; i++ {
		var back page.Page
		if err := mem.ReadPage(pid(i), &back); err != nil {
			t.Fatalf("device read %d: %v", i, err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("quarantined page %d not durable after reshard + heal", i)
		}
	}
	s.Flush()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestStatsConsistentDuringReshard: concurrent Stats snapshots during a
// migration must never lose counts (hits+misses monotone — a shard counted
// neither twice nor zero times), must always report the full frame budget
// for the current topology, and PerShard must match Shards.
func TestStatsConsistentDuringReshard(t *testing.T) {
	p, _ := reshardablePool(32, 1, core.Config{})
	const pages = 100

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		s := p.NewSession()
		for !stop.Load() {
			ref, err := p.Get(s, pid(uint64(rng.Intn(pages))+1))
			if err == nil {
				ref.Release()
			}
		}
		s.Flush()
	}()

	statsErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastTotal int64
		for !stop.Load() {
			st := p.Stats()
			total := st.Hits + st.Misses
			if total < lastTotal {
				statsErr <- fmt.Errorf("access total went backwards: %d -> %d (shard counted zero times?)", lastTotal, total)
				return
			}
			lastTotal = total
			if st.Frames != 32 {
				statsErr <- fmt.Errorf("Frames=%d mid-reshard, want 32", st.Frames)
				return
			}
			if len(st.PerShard) != st.Shards {
				statsErr <- fmt.Errorf("len(PerShard)=%d but Shards=%d", len(st.PerShard), st.Shards)
				return
			}
		}
	}()

	for _, n := range []int{4, 1, 2, 4} {
		if err := p.Reshard(n); err != nil {
			t.Fatalf("Reshard(%d): %v", n, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-statsErr:
		t.Fatal(err)
	default:
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPoolSwapPolicyLive: swapping the policy on a sharded pool switches
// every shard, keeps the resident pages, updates the recipe used by later
// reshards, and keeps the pool structurally sound.
func TestPoolSwapPolicyLive(t *testing.T) {
	p, _ := reshardablePool(32, 2, core.Config{})
	s := p.NewSession()
	for i := uint64(1); i <= 20; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}

	from, to, err := p.SwapPolicy(func(c int) replacer.Policy { return replacer.NewLIRS(c) })
	if err != nil {
		t.Fatalf("SwapPolicy: %v", err)
	}
	if from != "lru" || to != "lirs" {
		t.Fatalf("swap reported %q -> %q, want lru -> lirs", from, to)
	}
	st := p.Stats()
	for i, ss := range st.PerShard {
		if ss.Policy != "lirs" {
			t.Fatalf("shard %d policy %q after swap, want lirs", i, ss.Policy)
		}
	}
	if st.Resident == 0 {
		t.Fatal("resident set dropped to zero by the swap")
	}

	// Traffic keeps flowing and hits keep landing on the migrated set.
	for i := uint64(1); i <= 20; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}

	// The factory became the pool recipe: a reshard builds lirs shards.
	if err := p.Reshard(4); err != nil {
		t.Fatalf("Reshard after swap: %v", err)
	}
	for i, ss := range p.Stats().PerShard {
		if ss.Policy != "lirs" {
			t.Fatalf("post-reshard shard %d policy %q, want lirs", i, ss.Policy)
		}
	}
	s.Flush()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestSwapPolicyInstallsFactoryForReshard: a single-shard pool built with a
// bare Policy instance cannot reshard until SwapPolicy gives it a factory.
func TestSwapPolicyInstallsFactoryForReshard(t *testing.T) {
	p := newTestPool(8, core.Config{})
	if err := p.Reshard(2); err == nil {
		t.Fatal("Reshard without a factory succeeded")
	}
	if _, _, err := p.SwapPolicy(func(c int) replacer.Policy { return replacer.NewTwoQ(c) }); err != nil {
		t.Fatalf("SwapPolicy: %v", err)
	}
	if err := p.Reshard(2); err != nil {
		t.Fatalf("Reshard after SwapPolicy installed a factory: %v", err)
	}
	if got := p.Stats().PerShard[0].Policy; got != "2q" {
		t.Fatalf("post-reshard policy %q, want 2q", got)
	}
}

// TestSetBatchThresholdSurvivesReshard: the controller's threshold override
// applies to live shards and is inherited by shards built afterwards.
func TestSetBatchThresholdSurvivesReshard(t *testing.T) {
	p, _ := reshardablePool(16, 2, core.Config{Batching: true, QueueSize: 16, BatchThreshold: 8})
	p.SetBatchThreshold(3)
	for i, sh := range p.cur.Load().shards {
		if got := sh.wrapper.BatchThreshold(); got != 3 {
			t.Fatalf("shard %d threshold %d, want 3", i, got)
		}
	}
	if err := p.Reshard(4); err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	for i, sh := range p.cur.Load().shards {
		if got := sh.wrapper.BatchThreshold(); got != 3 {
			t.Fatalf("post-reshard shard %d threshold %d, want 3 (not inherited)", i, got)
		}
	}
	p.SetBatchThreshold(0)
	for i, sh := range p.cur.Load().shards {
		if got := sh.wrapper.BatchThreshold(); got != 8 {
			t.Fatalf("shard %d threshold %d after clear, want configured 8", i, got)
		}
	}
}

// TestReshardRefusals: argument validation and the modes that refuse.
func TestReshardRefusals(t *testing.T) {
	p, _ := reshardablePool(8, 1, core.Config{})
	if err := p.Reshard(0); err == nil {
		t.Fatal("Reshard(0) succeeded")
	}
	if err := p.Reshard(9); err == nil {
		t.Fatal("Reshard(frames+1) succeeded")
	}
	if err := p.Reshard(1); err != nil {
		t.Fatalf("no-op Reshard(1): %v", err)
	}
	if n := p.Stats().Reshards; n != 0 {
		t.Fatalf("no-op reshard counted: %d", n)
	}
	p.SetReadOnly(true)
	if err := p.Reshard(2); err == nil {
		t.Fatal("Reshard on a read-only pool succeeded")
	}
	p.SetReadOnly(false)
	if err := p.Reshard(2); err != nil {
		t.Fatalf("Reshard after clearing read-only: %v", err)
	}
	if _, _, err := p.SwapPolicy(nil); !errors.Is(err, err) || err == nil {
		t.Fatal("SwapPolicy(nil) succeeded")
	}
}

// TestReshardLockedHitPath: the same migration correctness holds with the
// seqlock fast path disabled (the torture differential's locked leg).
func TestReshardLockedHitPath(t *testing.T) {
	mem := storage.NewMemDevice()
	p := New(Config{
		Frames:        16,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Device:        mem,
		LockedHitPath: true,
	})
	s := p.NewSession()
	for i := uint64(1); i <= 8; i++ {
		dirtyPage(t, p, s, pid(i))
	}
	if err := p.Reshard(4); err != nil {
		t.Fatalf("Reshard(4): %v", err)
	}
	for i := uint64(1); i <= 8; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		if !refStamped(ref, pid(i)+stampShift) {
			t.Fatalf("page %d content lost (locked hit path)", i)
		}
		ref.Release()
	}
	s.Flush()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
