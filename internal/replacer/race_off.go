//go:build !race

package replacer

// raceEnabled reports whether the race detector is compiled in. Prefetch
// performs deliberately unsynchronized metadata reads (mirroring hardware
// prefetching); those are suppressed in instrumented builds.
const raceEnabled = false
