package replacer

import "container/heap"

// LRUK implements the LRU-K replacement algorithm (O'Neil, O'Neil &
// Weikum, SIGMOD 1993) for K=2 by default. 2Q — the BP-Wrapper paper's
// headline policy — was introduced as "a low overhead, high performance"
// alternative to exactly this algorithm, so having the original here lets
// the hit-ratio studies show what 2Q approximates.
//
// LRU-K evicts the resident page whose K-th most recent reference is
// oldest (backward K-distance), treating pages with fewer than K
// references as having infinite distance (evicted first, LRU among
// themselves). The Correlated Reference Period of the original paper is
// set to zero: in a DBMS buffer the upper layers have already collapsed
// intra-transaction re-references, as the paper's own deployment notes.
//
// The victim search uses a lazy min-heap keyed by the K-th reference time:
// stale heap entries (for pages re-referenced or evicted since the entry
// was pushed) are skipped on pop, keeping Hit at O(log n) amortized.
type LRUK struct {
	prefetchIndex
	capacity int
	k        int
	clock    int64

	table map[PageID]*lrukEntry
	heap  lrukHeap
}

// lrukEntry is the per-page reference history: a circular buffer of the
// last K reference times.
type lrukEntry struct {
	id      PageID
	hist    []int64 // hist[i]: i-th most recent is maintained via rotation
	n       int     // references recorded (capped at k)
	version uint64  // bumped on every update; stale heap items are skipped
}

// touch implements touchable for prefetching.
func (e *lrukEntry) touch() uint64 {
	s := uint64(e.id) ^ uint64(e.n) ^ e.version
	for _, h := range e.hist {
		s ^= uint64(h)
	}
	return s
}

// kDistanceKey returns the eviction key: the K-th most recent reference
// time, or a value that sorts before every real time when the page has
// fewer than K references (infinite backward distance). Ties among
// <K-reference pages break by their most recent reference (LRU).
func (e *lrukEntry) kDistanceKey(k int) (int64, int64) {
	if e.n < k {
		return -1, e.hist[0] // infinite distance; LRU tie-break
	}
	return e.hist[k-1], e.hist[0]
}

// lrukItem is a heap entry snapshot.
type lrukItem struct {
	entry   *lrukEntry
	version uint64
	kth     int64
	recent  int64
}

type lrukHeap []lrukItem

func (h lrukHeap) Len() int { return len(h) }
func (h lrukHeap) Less(i, j int) bool {
	if h[i].kth != h[j].kth {
		return h[i].kth < h[j].kth
	}
	return h[i].recent < h[j].recent
}
func (h lrukHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lrukHeap) Push(x any)   { *h = append(*h, x.(lrukItem)) }
func (h *lrukHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

var (
	_ Policy     = (*LRUK)(nil)
	_ Prefetcher = (*LRUK)(nil)
)

// NewLRU2 returns an LRU-2 policy, the classic configuration.
func NewLRU2(capacity int) *LRUK { return NewLRUK(capacity, 2) }

// NewLRUK returns an LRU-K policy with explicit K >= 1 (K=1 degenerates to
// plain LRU).
func NewLRUK(capacity, k int) *LRUK {
	checkCap("lru2", capacity)
	if k < 1 {
		panic("replacer: lruk: k must be >= 1")
	}
	return &LRUK{
		capacity: capacity,
		k:        k,
		table:    make(map[PageID]*lrukEntry, capacity),
	}
}

// Name implements Policy.
func (p *LRUK) Name() string { return "lru2" }

// Cap implements Policy.
func (p *LRUK) Cap() int { return p.capacity }

// Len implements Policy.
func (p *LRUK) Len() int { return len(p.table) }

// Contains implements Policy.
func (p *LRUK) Contains(id PageID) bool {
	_, ok := p.table[id]
	return ok
}

// record registers a reference: rotate the history and repush the heap
// snapshot.
func (p *LRUK) record(e *lrukEntry) {
	p.clock++
	// Shift history: newest at [0].
	copy(e.hist[1:], e.hist[:len(e.hist)-1])
	e.hist[0] = p.clock
	if e.n < p.k {
		e.n++
	}
	e.version++
	kth, recent := e.kDistanceKey(p.k)
	heap.Push(&p.heap, lrukItem{entry: e, version: e.version, kth: kth, recent: recent})
	if len(p.heap) > 8*p.capacity {
		p.compact()
	}
}

// compact rebuilds the heap from the live entries, discarding stale
// snapshots; amortized O(1) per operation by the 8× growth trigger.
func (p *LRUK) compact() {
	p.heap = p.heap[:0]
	for _, e := range p.table {
		kth, recent := e.kDistanceKey(p.k)
		p.heap = append(p.heap, lrukItem{entry: e, version: e.version, kth: kth, recent: recent})
	}
	heap.Init(&p.heap)
}

// Hit implements Policy.
func (p *LRUK) Hit(id PageID) {
	if e, ok := p.table[id]; ok {
		p.record(e)
	}
}

// Admit implements Policy.
func (p *LRUK) Admit(id PageID) (victim PageID, evicted bool) {
	mustAbsent("lru2", p.Contains(id))
	if len(p.table) == p.capacity {
		victim, evicted = p.Evict()
	}
	e := &lrukEntry{id: id, hist: make([]int64, p.k)}
	p.table[id] = e
	p.record(e)
	p.note(id, e)
	return victim, evicted
}

// Evict implements Policy: pop heap items until one matches a live,
// current entry; that page has the maximal backward K-distance.
func (p *LRUK) Evict() (PageID, bool) {
	for p.heap.Len() > 0 {
		it := heap.Pop(&p.heap).(lrukItem)
		e := it.entry
		if cur, ok := p.table[e.id]; !ok || cur != e || e.version != it.version {
			continue // stale snapshot
		}
		delete(p.table, e.id)
		p.forget(e.id)
		return e.id, true
	}
	return 0, false
}

// Remove implements Policy. The heap entries become stale and are skipped
// lazily.
func (p *LRUK) Remove(id PageID) {
	if _, ok := p.table[id]; ok {
		delete(p.table, id)
		p.forget(id)
	}
}
