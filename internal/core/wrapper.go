// Package core implements the BP-Wrapper framework from "BP-Wrapper: A
// System Framework Making Any Replacement Algorithms (Almost) Lock
// Contention Free" (Ding, Jiang & Zhang, ICDE 2009).
//
// BP-Wrapper interposes between transaction-processing threads and a
// lock-protected replacement algorithm (a replacer.Policy). It reduces the
// two lock costs the paper identifies:
//
//   - Lock acquisition cost, via *batching* (Section III-A): each thread
//     records page hits in a private FIFO queue and only takes the lock —
//     opportunistically with TryLock once the queue reaches the batch
//     threshold, or forcibly when the queue fills — to commit the whole
//     batch at once.
//   - Lock warm-up cost, via *prefetching* (Section III-B): immediately
//     before requesting the lock, the data the critical section will touch
//     is read (lock-free) so that it is already in the processor cache
//     while the lock is held.
//
// Both techniques are independent of the wrapped algorithm, which is used
// unmodified — the framework property the paper's title claims.
//
// Beyond the paper, the package implements a *flat-combining* commit path
// (Config.FlatCombining, see combine.go): sessions publish their batches
// in per-session slots and whichever session wins the lock applies
// everyone's published work, so a session at the batch threshold never has
// to choose between blocking and re-accumulating.
//
// A Wrapper is shared by all threads; each simulated backend owns a private
// Session (the per-thread FIFO queue of the paper, Figure 3/4). Sessions
// are not safe for concurrent use; the Wrapper is.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/metrics"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/reqtrace"
	"bpwrapper/internal/sched"
)

// Default queue tuning from the paper's evaluation (Section IV-C): "we set
// the FIFO queue size to 64, and batch threshold to 32".
const (
	DefaultQueueSize      = 64
	DefaultBatchThreshold = 32
)

// Config selects which BP-Wrapper techniques are active and tunes the
// batching queue. The zero value disables both techniques, yielding the
// paper's baseline behaviour (one lock acquisition per page access).
type Config struct {
	// Batching enables the per-session FIFO queue. When false every hit
	// acquires the lock immediately (the pg2Q / pgPre configurations).
	Batching bool

	// Prefetching enables the pre-lock metadata walk for policies that
	// implement replacer.Prefetcher.
	Prefetching bool

	// QueueSize is the FIFO queue capacity S. Zero means
	// DefaultQueueSize. Ignored unless Batching is set.
	QueueSize int

	// BatchThreshold is the queue fill level T at which a commit is first
	// attempted with TryLock. Zero means half the queue size, the shape the
	// paper's sensitivity study (Table III) found robust. Values are
	// clamped to [1, QueueSize]. Ignored unless Batching is set.
	BatchThreshold int

	// SharedQueue switches the batching queue from one-per-session to a
	// single queue shared by all sessions (guarded by its own mutex). The
	// paper rejects this design for its synchronization cost and loss of
	// per-thread access ordering (Section III-A); it is implemented here for
	// the ablation experiment that verifies that argument.
	SharedQueue bool

	// FlatCombining replaces the TryLock-or-keep-accumulating commit
	// protocol with flat combining (see combine.go): at the batch
	// threshold a session publishes its batch in a per-session,
	// cache-line-padded slot and tries the lock once — on success it
	// becomes the combiner and applies every session's published batch; on
	// failure it swaps to a spare buffer and keeps recording, never
	// blocking, because the current lock holder drains its slot. The
	// blocking fall-back fires only when both the published batch and the
	// recording queue are full. Ignored unless Batching is set;
	// incompatible with SharedQueue (SharedQueue wins).
	FlatCombining bool

	// AdaptiveThreshold lets each session tune its own batch threshold at
	// run time — an extension of the paper's Table III analysis, which
	// shows the best threshold sits strictly between "tiny batches"
	// (premature commits) and "threshold = queue size" (no TryLock
	// attempts left). A session lowers its threshold after a forced
	// blocking commit (it should have started trying earlier) and raises
	// it after a run of first-attempt TryLock successes (it can afford
	// bigger batches). The threshold moves within
	// [QueueSize/8, 3·QueueSize/4], starting from BatchThreshold.
	// Ignored unless Batching is set; incompatible with SharedQueue.
	AdaptiveThreshold bool

	// Validate, when non-nil, is consulted at commit time for each queued
	// entry; entries for which it returns false are dropped. The buffer
	// manager uses it to discard accesses whose frame was re-used for a
	// different page since the access was queued (the BufferTag check of
	// Section IV-B). With FlatCombining enabled the callback may be
	// invoked from any session's goroutine (the combiner applies other
	// sessions' batches), so it must be safe for concurrent use.
	Validate func(Entry) bool

	// Events, when non-nil, receives flight-recorder events from the
	// commit path: commits, TryLock failures, blocking fallbacks, flat-
	// combining publishes and combiner drains. A nil recorder costs one
	// predictable branch per event site.
	Events *obs.Recorder

	// Tracer, when non-nil, receives request-trace spans from the commit
	// path (lock wait, policy batch apply) and the cross-thread
	// combiner-handoff spans of DESIGN.md §15. Sessions participate once
	// a trace context is attached with Session.SetTrace.
	Tracer *reqtrace.Tracer

	// LockProfile, when non-nil, replaces the wrapper's default sampled
	// lock profile (DefaultSampleEvery with wait/hold histograms). Use it
	// to force always-on clocking in tests or to share histograms.
	LockProfile *metrics.LockProfile
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = DefaultQueueSize
	}
	if c.BatchThreshold <= 0 {
		c.BatchThreshold = c.QueueSize / 2
	}
	if c.BatchThreshold < 1 {
		c.BatchThreshold = 1
	}
	if c.BatchThreshold > c.QueueSize {
		c.BatchThreshold = c.QueueSize
	}
	if !c.Batching {
		c.FlatCombining = false
	}
	if c.SharedQueue {
		// The shared queue has no per-session state to adapt or publish.
		c.AdaptiveThreshold = false
		c.FlatCombining = false
	}
	return c
}

// Entry is one recorded page access: the page identity plus the buffer-tag
// snapshot used for commit-time validation.
type Entry struct {
	ID  page.PageID
	Tag page.BufferTag
}

// Stats aggregates the Wrapper's activity counters.
//
// The per-access counters (Accesses, Hits, Misses) are staged in
// session-private memory and folded into the shared aggregates at commit
// boundaries (commit, miss, flush, and every foldInterval accesses on the
// lock-free hit path), so a snapshot taken while sessions are mid-batch
// may lag by at most one queue's worth per session. Call Session.Flush
// for exact point-in-time numbers.
type Stats struct {
	Accesses    int64 // hits + misses recorded through the wrapper
	Hits        int64
	Misses      int64
	Commits     int64 // commit rounds (lock-holding periods for hits)
	Committed   int64 // hit entries applied to the policy
	Dropped     int64 // hit entries dropped by commit-time validation
	Lock        metrics.LockStats
	ForcedLocks int64 // commits that needed a blocking Lock (queue full)
	TryCommits  int64 // commits obtained via TryLock at the threshold

	// Flat-combining activity (Config.FlatCombining only).
	CombinedBatches int64 // other sessions' published batches applied by a combiner
	CombinedEntries int64 // entries in those batches
	HandoffSaved    int64 // publishes whose TryLock failed: batches handed to the combiner instead of blocking or re-accumulating

	// CombinerPanics counts panics contained inside a combiner drain (a
	// broken policy or validator); each leaves that drain incomplete but
	// the wrapper serviceable.
	CombinerPanics int64
}

// Plus returns the field-wise sum of two snapshots. The sharded pool folds
// its per-shard wrapper snapshots through this one helper so every
// aggregate is produced the same way; summing internally consistent
// snapshots (Hits+Misses ≤ Accesses, see Wrapper.Stats) preserves that
// bound in the total.
func (s Stats) Plus(o Stats) Stats {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Commits += o.Commits
	s.Committed += o.Committed
	s.Dropped += o.Dropped
	s.Lock = s.Lock.Plus(o.Lock)
	s.ForcedLocks += o.ForcedLocks
	s.TryCommits += o.TryCommits
	s.CombinedBatches += o.CombinedBatches
	s.CombinedEntries += o.CombinedEntries
	s.HandoffSaved += o.HandoffSaved
	s.CombinerPanics += o.CombinerPanics
	return s
}

// cacheLineSize separates counter groups with different writer populations
// so a store to one group does not invalidate another group's line (the
// false-sharing fix: before, eight adjacent atomics were bumped on every
// access from every thread).
const cacheLineSize = 64

// cachePad is inserted between independent writer groups in Wrapper.
type cachePad [cacheLineSize]byte

// aggCounters are the folded per-access aggregates. They are written only
// when a session folds its private counts (at most once per batch), never
// on the per-access fast path.
type aggCounters struct {
	accesses atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// commitCounters are written by whichever session is committing — at most
// one batch-commit writer at a time (they are bumped while or immediately
// after holding the policy lock), so they share a line group distinct from
// the lock word and the fold aggregates.
type commitCounters struct {
	commits     atomic.Int64
	committed   atomic.Int64
	dropped     atomic.Int64
	forcedLocks atomic.Int64
	tryCommits  atomic.Int64
}

// combineCounters count flat-combining activity (written by combiners and
// by publishing sessions).
type combineCounters struct {
	combinedBatches atomic.Int64
	combinedEntries atomic.Int64
	handoffSaved    atomic.Int64
	combinerPanics  atomic.Int64
}

// Wrapper couples a replacement policy with its global lock and the
// BP-Wrapper techniques. All methods are safe for concurrent use; the
// per-thread entry points live on Session.
type Wrapper struct {
	// box holds the atomically-swappable policy view: the policy plus the
	// two facts the lock-free paths read about it (whether Hit needs the
	// lock, and the prefetcher interface when enabled). Hot paths load it
	// once per call; SwapPolicy republishes it under the policy lock, so
	// any lock holder sees a stable view.
	box atomic.Pointer[policyBox]

	// dynThreshold is a wrapper-wide batch-threshold override installed at
	// run time (SetBatchThreshold, driven by the control loop); 0 means
	// "use cfg.BatchThreshold". A session's own adaptive threshold takes
	// precedence over it.
	dynThreshold atomic.Int32

	cfg Config

	shared *sharedQueue // non-nil iff cfg.SharedQueue
	fc     *combiner    // non-nil iff cfg.FlatCombining

	events *obs.Recorder    // nil-safe flight recorder (cfg.Events)
	tracer *reqtrace.Tracer // nil-safe request tracer (cfg.Tracer)

	// sessionIDs allocates the per-wrapper session identities the
	// cross-thread handoff spans name ("applied by combiner run R owned
	// by session S").
	sessionIDs atomic.Uint64

	// combineRunIDs allocates combiner-run identities, one per
	// lock-holding period that drains at least one published batch.
	combineRunIDs atomic.Uint64

	// Commit-shape distributions, recorded once per commit/publish/drain
	// (never on the per-access fast path): how large batches are when they
	// commit, and how many published batches a combiner drains per
	// lock-holding period.
	batchSizes  *metrics.CountDist
	combineRuns *metrics.CountDist

	_    cachePad
	lock metrics.ContentionMutex
	_    cachePad
	agg  aggCounters
	_    cachePad
	cc   commitCounters
	_    cachePad
	fcc  combineCounters
	_    cachePad
}

// combineRunCap bounds the dedicated buckets of the combiner-run-length
// distribution; longer runs (more concurrent sessions than this) share
// the overflow bucket, whose exact maximum is still tracked.
const combineRunCap = 32

// policyBox is the immutable view of the wrapped policy that hot paths
// read without the lock. It is published as a unit so a lock-free hit can
// never pair an old policy with a new policy's lockFreeHit flag (or vice
// versa) mid-swap.
type policyBox struct {
	policy      replacer.Policy
	prefetcher  replacer.Prefetcher // nil if unsupported or disabled
	lockFreeHit bool                // policy.Hit needs no lock (clock family)
}

// newPolicyBox derives the hot-path view for a policy under cfg.
func newPolicyBox(policy replacer.Policy, cfg Config) *policyBox {
	b := &policyBox{
		policy:      policy,
		lockFreeHit: !replacer.HitNeedsLock(policy),
	}
	if cfg.Prefetching {
		if pf, ok := policy.(replacer.Prefetcher); ok {
			b.prefetcher = pf
		}
	}
	return b
}

// New returns a Wrapper around policy configured by cfg.
func New(policy replacer.Policy, cfg Config) *Wrapper {
	cfg = cfg.withDefaults()
	w := &Wrapper{
		cfg:         cfg,
		events:      cfg.Events,
		tracer:      cfg.Tracer,
		batchSizes:  metrics.NewCountDist(cfg.QueueSize),
		combineRuns: metrics.NewCountDist(combineRunCap),
	}
	w.box.Store(newPolicyBox(policy, cfg))
	profile := cfg.LockProfile
	if profile == nil {
		// Default profile: sampled hold times plus wait/hold histograms,
		// so every wrapper's lock behaviour is exposable without setup.
		profile = &metrics.LockProfile{
			Wait: metrics.NewHistogram(100*time.Nanosecond, 10*time.Second, 60),
			Hold: metrics.NewHistogram(100*time.Nanosecond, 10*time.Second, 60),
		}
	}
	w.lock.SetProfile(profile)
	if cfg.SharedQueue && cfg.Batching {
		w.shared = &sharedQueue{
			entries: make([]Entry, 0, cfg.QueueSize),
			spare:   make([]Entry, 0, cfg.QueueSize),
		}
	}
	if cfg.FlatCombining {
		w.fc = &combiner{}
	}
	return w
}

// Policy returns the wrapped replacement policy. Callers must hold the
// wrapper's lock (via Locked) before touching it unless they have exclusive
// access to the wrapper; note the policy can change across lock-holding
// periods (SwapPolicy), so do not cache the returned value across them.
func (w *Wrapper) Policy() replacer.Policy { return w.box.Load().policy }

// Config returns the resolved configuration.
func (w *Wrapper) Config() Config { return w.cfg }

// LockProfile returns the profile installed on the policy lock (the
// default sampled profile unless Config.LockProfile overrode it). The
// attached histograms are live: snapshot them for exposition.
func (w *Wrapper) LockProfile() *metrics.LockProfile { return w.lock.Profile() }

// BatchSizes returns the distribution of committed/published batch
// lengths.
func (w *Wrapper) BatchSizes() metrics.CountDistSnapshot { return w.batchSizes.Snapshot() }

// CombineRuns returns the distribution of combiner run lengths: how many
// published batches each combining lock-holding period drained (recorded
// only for periods that drained at least one).
func (w *Wrapper) CombineRuns() metrics.CountDistSnapshot { return w.combineRuns.Snapshot() }

// Events returns the wrapper's flight recorder, nil when disabled.
func (w *Wrapper) Events() *obs.Recorder { return w.events }

// Stats returns a snapshot of the wrapper's counters. See the Stats type
// for the staleness bound on the per-access aggregates.
//
// The snapshot is internally consistent in one direction: Hits + Misses
// never exceed Accesses. Sessions fold their private counts in the order
// accesses, hits, misses (see Session.fold), so this reader loads hits and
// misses FIRST and accesses LAST — any hit or miss it observes comes from
// a fold whose accesses addition is already visible by the time accesses
// is read (Go atomics are sequentially consistent). Reading accesses first
// had the opposite skew: a fold landing between the loads made hits+misses
// transiently exceed accesses, which aggregation-over-shards then amplified.
func (w *Wrapper) Stats() Stats {
	hits := w.agg.hits.Load()
	misses := w.agg.misses.Load()
	return Stats{
		Accesses:        w.agg.accesses.Load(),
		Hits:            hits,
		Misses:          misses,
		Commits:         w.cc.commits.Load(),
		Committed:       w.cc.committed.Load(),
		Dropped:         w.cc.dropped.Load(),
		Lock:            w.lock.Stats(),
		ForcedLocks:     w.cc.forcedLocks.Load(),
		TryCommits:      w.cc.tryCommits.Load(),
		CombinedBatches: w.fcc.combinedBatches.Load(),
		CombinedEntries: w.fcc.combinedEntries.Load(),
		HandoffSaved:    w.fcc.handoffSaved.Load(),
		CombinerPanics:  w.fcc.combinerPanics.Load(),
	}
}

// ResetStats zeroes the wrapper's counters (including the lock's). It must
// not be called while the lock is held.
func (w *Wrapper) ResetStats() {
	w.agg.accesses.Store(0)
	w.agg.hits.Store(0)
	w.agg.misses.Store(0)
	w.cc.commits.Store(0)
	w.cc.committed.Store(0)
	w.cc.dropped.Store(0)
	w.cc.forcedLocks.Store(0)
	w.cc.tryCommits.Store(0)
	w.fcc.combinedBatches.Store(0)
	w.fcc.combinedEntries.Store(0)
	w.fcc.handoffSaved.Store(0)
	w.fcc.combinerPanics.Store(0)
	w.batchSizes.Reset()
	w.combineRuns.Reset()
	w.lock.Reset()
}

// Locked runs fn with the policy lock held. It is the escape hatch the
// buffer manager uses for operations outside the hit/miss protocol
// (invalidation, warm-up preloading).
func (w *Wrapper) Locked(fn func(replacer.Policy)) {
	w.lock.Lock()
	defer w.lock.Unlock()
	fn(w.box.Load().policy)
}

// SetBatchThreshold installs a wrapper-wide batch-threshold override that
// takes effect on each session's next threshold check (no session
// coordination needed: sessions re-read it per access). Values are clamped
// to [1, QueueSize]; t <= 0 removes the override, restoring the configured
// threshold. Sessions running AdaptiveThreshold keep their own value.
func (w *Wrapper) SetBatchThreshold(t int) {
	if t <= 0 {
		w.dynThreshold.Store(0)
		return
	}
	if t > w.cfg.QueueSize {
		t = w.cfg.QueueSize
	}
	w.dynThreshold.Store(int32(t))
}

// BatchThreshold reports the effective wrapper-wide batch threshold (the
// dynamic override if set, else the configured value).
func (w *Wrapper) BatchThreshold() int {
	if t := int(w.dynThreshold.Load()); t > 0 {
		return t
	}
	return w.cfg.BatchThreshold
}

// SwapPolicy replaces the wrapped policy with one built by factory at the
// same capacity, migrating the resident set: the old policy is drained in
// eviction order (least valuable first) and re-admitted into the new one in
// that order, so the most valuable pages are admitted last and the new
// policy's initial ranking approximates the old one's. The whole exchange
// happens under the policy lock, then the hot-path view is republished
// atomically.
//
// Admitting into a policy with queue-local bounds (2Q's A1in, say) can
// evict even below total capacity; such pages fall out of the new policy's
// tracking while their frames stay resident. They are returned as residue
// for the caller (the buffer shard) to reclaim through its normal victim
// path — dropping them silently would strand unevictable frames.
//
// Lock-free hits racing the swap may deliver a reference-bit update to the
// retired policy object (harmless: it is garbage afterwards) or batch into
// queues applied later to the new policy (tag validation still applies).
// Both are the same advisory staleness batching already accepts.
func (w *Wrapper) SwapPolicy(factory replacer.Factory) (from, to string, residue []page.PageID) {
	w.lock.Lock()
	defer w.lock.Unlock()
	old := w.box.Load()
	next := factory(old.policy.Cap())
	from, to = old.policy.Name(), next.Name()
	for {
		id, ok := old.policy.Evict()
		if !ok {
			break
		}
		if v, ev := next.Admit(id); ev {
			residue = append(residue, v)
		}
	}
	w.box.Store(newPolicyBox(next, w.cfg))
	return from, to, residue
}

// CheckInvariants verifies the wrapper's cheap structural invariants under
// the policy lock: the policy's resident count within [0, Cap], and — when
// the policy implements replacer.Checker — the policy's own internal
// consistency (deep O(n) checks only in builds with the torture tag). It is
// safe to call concurrently with sessions; the stats identities (accesses =
// hits + misses, committed + dropped = hits) hold only at quiescence and
// are checked by the torture harness instead.
func (w *Wrapper) CheckInvariants() error {
	w.lock.Lock()
	defer w.lock.Unlock()
	pol := w.box.Load().policy
	n, c := pol.Len(), pol.Cap()
	if n < 0 || n > c {
		return fmt.Errorf("core: policy %s: Len %d outside [0, Cap %d]", pol.Name(), n, c)
	}
	return replacer.Check(pol)
}

// NewSession returns the per-thread handle through which one backend
// records its page accesses. Sessions must not be shared between
// goroutines.
func (w *Wrapper) NewSession() *Session {
	s := &Session{w: w, id: w.sessionIDs.Add(1)}
	if w.cfg.Batching && !w.cfg.SharedQueue {
		s.queue = make([]Entry, 0, w.cfg.QueueSize)
	}
	if w.fc != nil {
		s.slot = w.fc.register(s.id)
		s.fcBox = new([]Entry)
	}
	return s
}

// foldInterval bounds the staleness of the folded aggregates on the
// lock-free hit path (clock family), which has no commit boundary to fold
// at.
const foldInterval = 1024

// Session is the per-thread side of the framework: a private FIFO queue of
// uncommitted hit records (Figure 3 of the paper). Not safe for concurrent
// use.
type Session struct {
	w     *Wrapper
	id    uint64  // wrapper-unique identity, named by handoff spans
	queue []Entry // nil when batching is off or the shared queue is in use

	// trace is the request-trace context shared with the owning pool
	// session (SetTrace); nil disables span stamping. All Active methods
	// are nil-safe, so the untraced cost is one branch per site.
	trace *reqtrace.Active

	// Per-session access counters: plain ints bumped only by the owning
	// goroutine on the per-access fast path and folded into the wrapper's
	// shared aggregates at commit boundaries. This keeps the hot path free
	// of shared-cache-line traffic (the false-sharing fix).
	accesses  int64
	hits      int64
	misses    int64
	sinceFold int

	pf []page.PageID // prefetch id scratch, reused across commits

	slot   *pubSlot // flat-combining publication slot (cfg.FlatCombining)
	fcBox  *[]Entry // box that will carry s.queue on its next publish
	pubLen int      // length of the batch last published in slot (owner-only)

	// Adaptive-threshold state (cfg.AdaptiveThreshold only).
	threshold int // current per-session batch threshold
	trialRuns int // consecutive first-attempt TryLock successes
}

// SetTrace attaches a request-trace context to the session. The buffer
// pool shares one Active between a pool session and its per-shard core
// sessions, so spans stamped here land in the same trace as the pool's
// probe/pin/device spans. A nil context (the default) disables stamping.
func (s *Session) SetTrace(a *reqtrace.Active) { s.trace = a }

// ID returns the session's wrapper-unique identity, as named by the
// cross-thread handoff spans.
func (s *Session) ID() uint64 { return s.id }

// note stages one access in the session-private counters.
func (s *Session) note(hit bool) {
	s.accesses++
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.sinceFold++
}

// fold flushes the session-private counters into the wrapper's shared
// aggregates. Called at commit boundaries, where the session is already
// paying for shared-state traffic.
func (s *Session) fold() {
	if s.accesses == 0 {
		return
	}
	w := s.w
	w.agg.accesses.Add(s.accesses)
	w.agg.hits.Add(s.hits)
	w.agg.misses.Add(s.misses)
	s.accesses, s.hits, s.misses, s.sinceFold = 0, 0, 0, 0
}

// Threshold reports the session's current batch threshold: the session's
// own adaptive value if AdaptiveThreshold has moved it, else the wrapper's
// dynamic override (SetBatchThreshold), else the configured value.
func (s *Session) Threshold() int {
	if s.threshold > 0 {
		return s.threshold
	}
	if t := int(s.w.dynThreshold.Load()); t > 0 {
		return t
	}
	return s.w.cfg.BatchThreshold
}

// adaptDown reacts to a forced blocking commit: start trying earlier.
func (s *Session) adaptDown() {
	if !s.w.cfg.AdaptiveThreshold {
		return
	}
	step := s.w.cfg.QueueSize / 8
	if step < 1 {
		step = 1 // tiny queues: QueueSize/8 rounds to 0, which would freeze adaptation
	}
	s.trialRuns = 0
	s.threshold = s.Threshold() - step
	if s.threshold < step {
		s.threshold = step
	}
}

// adaptUp reacts to a sustained run of first-attempt TryLock successes:
// larger batches amortize better and the lock clearly has headroom.
func (s *Session) adaptUp() {
	if !s.w.cfg.AdaptiveThreshold {
		return
	}
	s.trialRuns++
	if s.trialRuns < 8 {
		return
	}
	s.trialRuns = 0
	max := 3 * s.w.cfg.QueueSize / 4
	if max < 1 {
		max = 1
	}
	s.threshold = s.Threshold() + 1
	if s.threshold > max {
		s.threshold = max
	}
}

// Hit records a buffer hit on id, following the paper's
// replacement_for_page_hit pseudo-code (Figure 4). With batching enabled
// the access is queued and possibly committed in a batch; otherwise the
// lock is taken immediately.
func (s *Session) Hit(id page.PageID, tag page.BufferTag) {
	w := s.w
	s.note(true)
	b := w.box.Load()
	if b.lockFreeHit {
		// Clock-family policy: the hit is an atomic reference-bit update
		// and needs neither lock nor queue. This is the pgClock baseline.
		// A SwapPolicy racing this delivers the bit to the retired policy
		// object — lost advice, not corruption.
		b.policy.Hit(id)
		if s.sinceFold >= foldInterval {
			s.fold()
		}
		return
	}
	if !w.cfg.Batching {
		// No batching (pg2Q / pgPre): one lock acquisition per access.
		if b.prefetcher != nil {
			one := [1]page.PageID{id}
			b.prefetcher.Prefetch(one[:])
		}
		tracing := s.trace.Sampled()
		var t0, t1 int64
		if tracing {
			t0 = s.trace.Now()
		}
		w.lock.Lock()
		if tracing {
			t1 = s.trace.Now()
		}
		w.applyHit(Entry{ID: id, Tag: tag})
		w.lock.Unlock()
		if tracing {
			now := s.trace.Now()
			s.trace.Span(reqtrace.PhaseLockWait, -1, t0, t1-t0, 0, 0)
			s.trace.Span(reqtrace.PhasePolicyOp, -1, t1, now-t1, 1, 0)
		}
		w.cc.commits.Add(1)
		s.fold()
		return
	}
	if w.shared != nil {
		w.shared.record(w, s, Entry{ID: id, Tag: tag})
		// The shared queue is the rejected, always-contending design; its
		// sessions have no private commit boundary, so fold every access.
		s.fold()
		return
	}
	s.queue = append(s.queue, Entry{ID: id, Tag: tag})
	if len(s.queue) < s.Threshold() {
		return
	}
	// Threshold reached: try to commit opportunistically. Flat combining
	// publishes and never blocks; the paper's protocol blocks only when
	// the queue is completely full.
	if w.fc != nil {
		s.fcCommit()
		return
	}
	s.commit(false)
}

// Miss records a buffer miss on id: the lock is always taken (the paper
// notes the acquisition cost is negligible next to the I/O a miss
// implies), any queued hits are committed first — preserving access order —
// and then the policy admits the page, returning the eviction victim.
// This is replacement_for_page_miss in Figure 4.
func (s *Session) Miss(id page.PageID, tag page.BufferTag) (victim page.PageID, evicted bool) {
	w := s.w
	s.note(false)
	s.fold()
	var pending []Entry
	var stolen sqTraceCtx
	switch {
	case w.shared != nil:
		pending, stolen = w.shared.steal()
	case s.queue != nil:
		pending = s.queue
	}
	if pf := w.box.Load().prefetcher; pf != nil {
		s.pf = prefetchInto(pf, s.pf, pending, id)
	}
	sched.Yield(sched.CoreMissLock)
	// The miss path always blocks on the lock and implies device I/O, so
	// the wait is stamped with Slow: an SLO-crossing miss is traceable even
	// when head sampling skipped it.
	t0 := s.trace.Now()
	w.lock.Lock()
	t1 := s.trace.Now()
	s.trace.Slow(reqtrace.PhaseLockWait, -1, t0, t1-t0, uint64(len(pending)), 0)
	s.applyPublished()
	for _, e := range pending {
		w.applyHit(e)
	}
	victim, evicted = w.box.Load().policy.Admit(id)
	if w.fc != nil {
		w.combineLocked(s)
	}
	w.lock.Unlock()
	s.trace.Span(reqtrace.PhasePolicyOp, -1, t1, s.trace.Now()-t1, uint64(len(pending)), uint64(id))
	w.emitSharedHandoff(stolen, s)
	if len(pending) > 0 {
		w.cc.commits.Add(1)
		w.batchSizes.Observe(len(pending))
	}
	if w.shared != nil {
		w.shared.release(pending)
	}
	if s.queue != nil {
		s.queue = s.queue[:0]
	}
	return victim, evicted
}

// MissBegin is the first half of the two-phase miss protocol the buffer
// manager uses: it records the miss, commits any queued hits (preserving
// access order, as in Figure 4), and — when the policy is at capacity —
// evicts a victim to make room, WITHOUT admitting the missing page. The
// caller loads the page and then calls MissAdmit.
//
// Keeping the in-flight page out of the policy until its frame exists means
// concurrent loaders can never choose each other's unfinished pages as
// victims — the frameless-resident deadlock a single-phase protocol allows.
// Single-phase Miss remains available for standalone (simulation, trace
// replay) use, where pages have no frames at all.
func (s *Session) MissBegin(id page.PageID, tag page.BufferTag) (victim page.PageID, evicted bool) {
	w := s.w
	s.note(false)
	s.fold()
	var pending []Entry
	var stolen sqTraceCtx
	switch {
	case w.shared != nil:
		pending, stolen = w.shared.steal()
	case s.queue != nil:
		pending = s.queue
	}
	if pf := w.box.Load().prefetcher; pf != nil {
		s.pf = prefetchInto(pf, s.pf, pending, id)
	}
	sched.Yield(sched.CoreMissLock)
	t0 := s.trace.Now()
	w.lock.Lock()
	t1 := s.trace.Now()
	s.trace.Slow(reqtrace.PhaseLockWait, -1, t0, t1-t0, uint64(len(pending)), 0)
	s.applyPublished()
	for _, e := range pending {
		w.applyHit(e)
	}
	if pol := w.box.Load().policy; pol.Len() >= pol.Cap() {
		victim, evicted = pol.Evict()
	}
	if w.fc != nil {
		w.combineLocked(s)
	}
	w.lock.Unlock()
	s.trace.Span(reqtrace.PhasePolicyOp, -1, t1, s.trace.Now()-t1, uint64(len(pending)), uint64(id))
	w.emitSharedHandoff(stolen, s)
	if len(pending) > 0 {
		w.cc.commits.Add(1)
		w.batchSizes.Observe(len(pending))
	}
	if w.shared != nil {
		w.shared.release(pending)
	}
	if s.queue != nil {
		s.queue = s.queue[:0]
	}
	return victim, evicted
}

// MissAdmit is the second half of the two-phase miss protocol: the page
// has been loaded into its frame and becomes resident in the policy. In
// the rare case a concurrent miss consumed the slot MissBegin freed, Admit
// evicts again and the victim is returned for the caller to reclaim.
func (s *Session) MissAdmit(id page.PageID) (victim page.PageID, evicted bool) {
	w := s.w
	w.lock.Lock()
	victim, evicted = w.box.Load().policy.Admit(id)
	w.lock.Unlock()
	return victim, evicted
}

// Flush commits any queued hit records with a blocking lock acquisition.
// Backends call it when going idle so their history is not stranded. It
// also folds the session's staged access counters, making Wrapper.Stats
// exact for this session.
func (s *Session) Flush() {
	w := s.w
	s.fold()
	if w.shared != nil {
		pending, stolen := w.shared.steal()
		if len(pending) == 0 {
			return
		}
		if pf := w.box.Load().prefetcher; pf != nil {
			s.pf = prefetchInto(pf, s.pf, pending, page.InvalidPageID)
		}
		w.lock.Lock()
		for _, e := range pending {
			w.applyHit(e)
		}
		w.lock.Unlock()
		w.emitSharedHandoff(stolen, s)
		w.cc.commits.Add(1)
		w.batchSizes.Observe(len(pending))
		w.shared.release(pending)
		return
	}
	if w.fc != nil {
		s.fcFlush()
		return
	}
	if len(s.queue) == 0 {
		return
	}
	s.commit(true)
}

// Pending returns the number of uncommitted accesses in this session's
// queue (including, under flat combining, a published batch not yet
// drained by a combiner); used by tests and diagnostics.
func (s *Session) Pending() int {
	if s.w.shared != nil {
		return s.w.shared.pending()
	}
	n := len(s.queue)
	if s.slot != nil && s.slot.pub.Load() != nil {
		// The batch still sitting in the slot is the one this session last
		// published: count its remembered length rather than dereferencing
		// the box, which a combiner may be draining (and recycling — a
		// write to the slice header) concurrently.
		n += s.pubLen
	}
	return n
}

// commit applies the session's queued entries under the lock. When force
// is false it follows the paper's protocol: TryLock at the threshold,
// falling back to a blocking Lock only if the queue is full.
func (s *Session) commit(force bool) {
	w := s.w
	defer s.fold()
	if pf := w.box.Load().prefetcher; pf != nil {
		// Prefetch: warm the cache with the metadata the critical section
		// will touch, immediately before requesting the lock.
		s.pf = prefetchInto(pf, s.pf, s.queue, page.InvalidPageID)
	}
	sched.Yield(sched.CoreCommitTry)
	if force {
		t0 := s.trace.Now()
		w.lock.Lock()
		// A forced Lock is a slow phase: the wait arms tail-keep, so a
		// request stalled behind a long lock-holding period is traceable
		// even when head sampling skipped it.
		s.trace.Slow(reqtrace.PhaseLockWait, -1, t0, s.trace.Now()-t0, uint64(len(s.queue)), 0)
		w.cc.forcedLocks.Add(1)
		w.events.Record(obs.EvForcedLock, uint64(len(s.queue)), 0)
	} else if w.lock.TryLock() {
		w.cc.tryCommits.Add(1)
		w.events.Record(obs.EvCommit, uint64(len(s.queue)), 0)
		if len(s.queue) == s.Threshold() {
			// First-attempt success: the lock has headroom.
			s.adaptUp()
		}
	} else {
		if len(s.queue) < w.cfg.QueueSize {
			// Lock busy and queue not yet full: keep accumulating.
			w.events.Record(obs.EvTryFail, uint64(len(s.queue)), 0)
			return
		}
		t0 := s.trace.Now()
		w.lock.Lock()
		s.trace.Slow(reqtrace.PhaseLockWait, -1, t0, s.trace.Now()-t0, uint64(len(s.queue)), 0)
		w.cc.forcedLocks.Add(1)
		w.events.Record(obs.EvForcedLock, uint64(len(s.queue)), 0)
		// The queue filled before any TryLock succeeded: start trying
		// earlier next time.
		s.adaptDown()
	}
	sched.Yield(sched.CoreCommitApply)
	tracing := s.trace.Sampled()
	var tApply int64
	if tracing {
		tApply = s.trace.Now()
	}
	for _, e := range s.queue {
		w.applyHit(e)
	}
	w.lock.Unlock()
	if tracing {
		s.trace.Span(reqtrace.PhasePolicyOp, -1, tApply, s.trace.Now()-tApply, uint64(len(s.queue)), 0)
	}
	w.cc.commits.Add(1)
	w.batchSizes.Observe(len(s.queue))
	s.queue = s.queue[:0]
}

// applyHit validates one queued entry and delivers it to the policy.
// Callers must hold the lock (which also pins the policy box: SwapPolicy
// republishes it only while holding the same lock, so the load here is
// stable for the whole batch).
func (w *Wrapper) applyHit(e Entry) {
	if w.cfg.Validate != nil && !w.cfg.Validate(e) {
		w.cc.dropped.Add(1)
		return
	}
	w.box.Load().policy.Hit(e.ID)
	w.cc.committed.Add(1)
}

// prefetchInto warms the cache for the queued ids plus the (optional)
// missing page, reusing buf as the id scratch space. It returns the
// (possibly grown) scratch for the caller to retain — after the first few
// commits the id walk is allocation-free.
func prefetchInto(pf replacer.Prefetcher, buf []page.PageID, entries []Entry, extra page.PageID) []page.PageID {
	ids := buf[:0]
	for _, e := range entries {
		ids = append(ids, e.ID)
	}
	if extra.Valid() {
		ids = append(ids, extra)
	}
	pf.Prefetch(ids)
	return ids
}

// sqTraceCtx is the publisher trace context carried with a shared-queue
// batch: which traced request recorded into the batch, when, and from
// which session. The shared queue interleaves all sessions' accesses, so
// the context is the LAST traced recorder — a best-effort attribution
// matching the design's own ambiguity (the paper rejects this queue
// partly because per-thread ordering is lost).
type sqTraceCtx struct {
	id   uint64 // trace ID (0: no traced recorder in this batch)
	at   int64  // when the traced access was recorded
	sess uint64 // recording session's ID
}

// emitSharedHandoff emits the cross-thread handoff span for a stolen
// shared-queue batch, attributing the enqueue→apply wait to the last
// traced recorder's trace.
func (w *Wrapper) emitSharedHandoff(tc sqTraceCtx, applier *Session) {
	if w.tracer == nil || tc.id == 0 {
		return
	}
	w.tracer.Emit(reqtrace.Span{
		Trace: tc.id, Phase: reqtrace.PhaseEnqueue, Shard: -1,
		Flags: reqtrace.FlagCross,
		Start: tc.at, Dur: w.tracer.Now() - tc.at,
		Arg1: w.combineRunIDs.Add(1), Arg2: reqtrace.PackHandoff(tc.sess, applier.id),
	})
}

// sharedQueue is the rejected alternative design of Section III-A: one
// FIFO queue shared by all sessions, with its own mutex. Implemented only
// for the ablation experiment. Batches are recycled through the spare
// buffer so steady-state commits do not allocate.
type sharedQueue struct {
	mu      sync.Mutex
	entries []Entry
	spare   []Entry    // recycled batch buffer (nil while a batch is in flight)
	tc      sqTraceCtx // trace context of the accumulating batch
}

// record appends an entry; when the wrapper's threshold is reached the
// caller attempts a commit following the same TryLock protocol.
func (q *sharedQueue) record(w *Wrapper, s *Session, e Entry) {
	q.mu.Lock()
	q.entries = append(q.entries, e)
	if tid := s.trace.ID(); tid != 0 {
		q.tc = sqTraceCtx{id: tid, at: s.trace.Now(), sess: s.id}
	}
	n := len(q.entries)
	if n < w.cfg.BatchThreshold {
		q.mu.Unlock()
		return
	}
	full := n >= w.cfg.QueueSize
	// Take the batch out while still holding the queue mutex so no other
	// session commits the same entries; recording continues in the spare
	// buffer.
	batch, tc := q.takeLocked()
	q.mu.Unlock()

	if pf := w.box.Load().prefetcher; pf != nil {
		s.pf = prefetchInto(pf, s.pf, batch, page.InvalidPageID)
	}
	if full {
		w.lock.Lock()
		w.cc.forcedLocks.Add(1)
		w.events.Record(obs.EvForcedLock, uint64(len(batch)), 0)
	} else if w.lock.TryLock() {
		w.cc.tryCommits.Add(1)
		w.events.Record(obs.EvCommit, uint64(len(batch)), 0)
	} else {
		// Lock busy: put the batch back (in front — it is older than
		// anything recorded meanwhile) and keep accumulating. The stolen
		// trace context rides back too so the eventual drain still emits
		// its handoff span.
		w.events.Record(obs.EvTryFail, uint64(len(batch)), 0)
		q.requeue(batch, tc)
		return
	}
	for _, e := range batch {
		w.applyHit(e)
	}
	w.lock.Unlock()
	w.emitSharedHandoff(tc, s)
	w.cc.commits.Add(1)
	w.batchSizes.Observe(len(batch))
	q.release(batch)
}

// takeLocked removes and returns the queued entries with their trace
// context, leaving the spare buffer recording. Callers must hold q.mu and
// must hand the returned batch to release or requeue when done.
func (q *sharedQueue) takeLocked() ([]Entry, sqTraceCtx) {
	batch, tc := q.entries, q.tc
	q.tc = sqTraceCtx{}
	if q.spare != nil {
		q.entries = q.spare[:0]
		q.spare = nil
	} else {
		// The other buffer is in flight with another session; a fresh one
		// enters the rotation.
		q.entries = make([]Entry, 0, cap(batch))
	}
	return batch, tc
}

// steal removes and returns all queued entries; the caller must pass the
// batch to release after applying it.
func (q *sharedQueue) steal() ([]Entry, sqTraceCtx) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil, sqTraceCtx{}
	}
	return q.takeLocked()
}

// release returns a drained batch buffer to the rotation.
func (q *sharedQueue) release(batch []Entry) {
	if batch == nil {
		return
	}
	q.mu.Lock()
	if q.spare == nil {
		q.spare = batch[:0]
	}
	q.mu.Unlock()
}

// requeue puts an uncommitted batch back at the front of the queue without
// permanently growing the rotation: the rebuilt queue lives in the batch's
// buffer and the previous recording buffer becomes the spare. The batch's
// trace context is restored unless a newer traced access arrived meanwhile.
func (q *sharedQueue) requeue(batch []Entry, tc sqTraceCtx) {
	q.mu.Lock()
	recorded := q.entries
	batch = append(batch, recorded...)
	q.entries = batch
	if q.tc.id == 0 {
		q.tc = tc
	}
	if q.spare == nil {
		q.spare = recorded[:0]
	}
	q.mu.Unlock()
}

// pending returns the current queue length.
func (q *sharedQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}
