// Trace exposition: the registry carries the pool's request tracers
// (reqtrace.Tracer) alongside its collectors and flight recorders, and the
// HTTP server renders them at /debug/traces — a slowest-N text view for
// terminals and a Chrome trace_event JSON view (chrome://tracing,
// Perfetto) for timelines. The registry also exports the tracer's keep/
// drop counters as bpw_trace_* series so scrape dashboards can watch
// sampling pressure without fetching spans.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"bpwrapper/internal/reqtrace"
)

type tracerEntry struct {
	label string
	tr    *reqtrace.Tracer
}

// RegisterTracer adds a request tracer under label for the /debug/traces
// endpoint and registers its counters as bpw_trace_* metrics. A nil
// tracer (tracing disabled) is accepted and ignored, so pools can call
// this unconditionally.
func (g *Registry) RegisterTracer(label string, tr *reqtrace.Tracer) {
	if tr == nil {
		return
	}
	g.mu.Lock()
	g.tracers = append(g.tracers, tracerEntry{label: label, tr: tr})
	g.mu.Unlock()
	g.Register(func(emit func(Metric)) {
		st := tr.Snapshot()
		l := [][2]string{{"tracer", label}}
		for _, m := range []struct {
			name, help string
			v          int64
		}{
			{"bpw_trace_started_total", "requests seen by the tracer (folded at sample points)", st.Started},
			{"bpw_trace_sampled_total", "head-sampled requests", st.Sampled},
			{"bpw_trace_kept_total", "traces flushed to the head-sample rings", st.KeptMain},
			{"bpw_trace_kept_tail_total", "traces kept for crossing the SLO or erroring", st.KeptTail},
			{"bpw_trace_discarded_total", "armed traces under the SLO, discarded", st.Discarded},
			{"bpw_trace_span_drops_total", "spans lost to per-request scratch overflow", st.SpanDrops},
			{"bpw_trace_emitted_total", "cross-thread spans emitted directly", st.Emitted},
			{"bpw_trace_ring_drops_total", "ring slots overwritten or torn before a reader saw them", st.RingDrops},
		} {
			emit(Metric{Name: m.name, Help: m.help, Type: Counter, Labels: l, Value: float64(m.v)})
		}
	})
}

// tracerEntries snapshots the registered tracers.
func (g *Registry) tracerEntries() []tracerEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]tracerEntry(nil), g.tracers...)
}

// traceGroup is one reconstructed trace: its spans sorted by start time
// and the figures the text view ranks by.
type traceGroup struct {
	id    uint64
	spans []reqtrace.Span
	dur   int64 // root-span duration, or the span envelope without a root
	flags uint8 // union of span flags
}

// gatherTraces snapshots every registered tracer's rings and groups the
// spans by trace ID, slowest trace first.
func (g *Registry) gatherTraces() []traceGroup {
	byID := make(map[uint64]*traceGroup)
	for _, e := range g.tracerEntries() {
		for _, sp := range e.tr.Spans() {
			tg := byID[sp.Trace]
			if tg == nil {
				tg = &traceGroup{id: sp.Trace}
				byID[sp.Trace] = tg
			}
			tg.spans = append(tg.spans, sp)
			tg.flags |= sp.Flags
		}
	}
	out := make([]traceGroup, 0, len(byID))
	for _, tg := range byID {
		sort.Slice(tg.spans, func(i, j int) bool {
			a, b := &tg.spans[i], &tg.spans[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Phase < b.Phase
		})
		lo, hi := int64(0), int64(0)
		for i := range tg.spans {
			sp := &tg.spans[i]
			if sp.Phase == reqtrace.PhaseRequest {
				tg.dur = sp.Dur
			}
			if i == 0 || sp.Start < lo {
				lo = sp.Start
			}
			if end := sp.Start + sp.Dur; i == 0 || end > hi {
				hi = end
			}
		}
		if tg.dur == 0 {
			// Spans without a retained root (e.g. a late cross-thread
			// write-back whose trace scrolled out): rank by the envelope.
			tg.dur = hi - lo
		}
		out = append(out, *tg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].dur != out[j].dur {
			return out[i].dur > out[j].dur
		}
		return out[i].id < out[j].id
	})
	return out
}

// flagString renders a span-flag union compactly (e.g. "sampled|tail").
func flagString(f uint8) string {
	var parts []string
	for _, fl := range []struct {
		bit  uint8
		name string
	}{
		{reqtrace.FlagSampled, "sampled"},
		{reqtrace.FlagTail, "tail"},
		{reqtrace.FlagError, "error"},
		{reqtrace.FlagRemote, "remote"},
		{reqtrace.FlagCross, "cross"},
		{reqtrace.FlagPartial, "partial"},
	} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "|" + p
	}
	return s
}

// WriteTracesText renders the slowest n traces as indented text, one
// block per trace, spans in start order with phase, shard, offset from
// the trace's first span, duration, and args. n <= 0 means all.
func (g *Registry) WriteTracesText(w io.Writer, n int) {
	traces := g.gatherTraces()
	if len(traces) == 0 {
		fmt.Fprintln(w, "no traces retained (tracing disabled, or nothing sampled yet)")
		return
	}
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	for _, tg := range traces {
		fmt.Fprintf(w, "trace %016x  %s  %d spans  %s\n",
			tg.id, durString(tg.dur), len(tg.spans), flagString(tg.flags))
		base := tg.spans[0].Start
		for _, sp := range tg.spans {
			fmt.Fprintf(w, "  +%-12s %-16s shard=%-3d dur=%-12s flags=%s arg1=%d arg2=%d\n",
				durString(sp.Start-base), sp.PhaseName(), sp.Shard,
				durString(sp.Dur), flagString(sp.Flags), sp.Arg1, sp.Arg2)
		}
	}
}

// durString renders nanoseconds for humans without importing time's
// Duration formatting quirks into golden tests (stable µs/ms units).
func durString(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event).
// Timestamps and durations are microseconds per the trace-event spec; the
// trace ID becomes the tid so chrome://tracing and Perfetto lay each
// trace out on its own track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteTracesChrome renders every retained span in the Chrome trace_event
// JSON format, loadable in chrome://tracing or ui.perfetto.dev.
func (g *Registry) WriteTracesChrome(w io.Writer) error {
	var evs []chromeEvent
	for _, tg := range g.gatherTraces() {
		for _, sp := range tg.spans {
			evs = append(evs, chromeEvent{
				Name: sp.PhaseName(), Cat: "bpw", Ph: "X",
				Ts: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
				Pid: 1, Tid: sp.Trace,
				Args: map[string]any{
					"trace": fmt.Sprintf("%016x", sp.Trace),
					"shard": sp.Shard,
					"flags": flagString(sp.Flags),
					"arg1":  sp.Arg1,
					"arg2":  sp.Arg2,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs, "displayTimeUnit": "ns"})
}

// WriteTracesJSON renders the raw grouped spans as JSON — the machine
// format bptrace's fetch mode consumes.
func (g *Registry) WriteTracesJSON(w io.Writer, n int) error {
	traces := g.gatherTraces()
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	type jsonTrace struct {
		Trace  string          `json:"trace"`
		DurNs  int64           `json:"dur_ns"`
		Flags  string          `json:"flags"`
		Phases []string        `json:"phases"`
		Spans  []reqtrace.Span `json:"spans"`
	}
	out := make([]jsonTrace, 0, len(traces))
	for _, tg := range traces {
		jt := jsonTrace{
			Trace: fmt.Sprintf("%016x", tg.id),
			DurNs: tg.dur, Flags: flagString(tg.flags), Spans: tg.spans,
		}
		for _, sp := range tg.spans {
			jt.Phases = append(jt.Phases, sp.PhaseName())
		}
		out = append(out, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"traces": out})
}
