// Package buffer implements the DBMS buffer-pool manager of Section II of
// the BP-Wrapper paper: a fixed array of page frames, a hash table mapping
// page ids to frames with one lock per bucket (uncontended by design, as
// the paper argues), and a replacement policy reached through the
// BP-Wrapper core so that the policy's single global lock — the system's
// one true hot spot — can be relieved by batching and prefetching.
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/sched"
	"bpwrapper/internal/storage"
)

// ErrNoUnpinnedBuffers is returned when every candidate victim is pinned,
// matching PostgreSQL's "no unpinned buffers available" condition.
var ErrNoUnpinnedBuffers = errors.New("buffer: no unpinned buffers available")

// Config assembles a Pool.
type Config struct {
	// Frames is the number of page slots in the pool. Required.
	Frames int

	// Policy is the replacement algorithm instance, sized to Frames.
	// Required; the pool takes ownership (all access goes through the
	// wrapper lock).
	Policy replacer.Policy

	// Wrapper selects the BP-Wrapper techniques (batching, prefetching,
	// queue tuning). The Validate field is overwritten by the pool with its
	// BufferTag check.
	Wrapper core.Config

	// Device is the backing store. Required.
	Device storage.Device

	// QuarantineCap bounds the dirty-quarantine list that parks pages
	// across their write-back window (eviction in reclaim, flushes in
	// flushFrame). Zero means 64. When the quarantine is full, dirty
	// evictions fail and flush rounds leave frames dirty instead of
	// parking more pages, so memory stays bounded and no data is lost
	// either way. The bound is soft under concurrency: simultaneous
	// evictions may briefly overshoot it by the number of in-flight
	// write-backs.
	QuarantineCap int
}

// Pool is the buffer-pool manager. All methods are safe for concurrent
// use; per-backend access records flow through core.Sessions obtained from
// NewSession.
type Pool struct {
	frames  []Frame
	buckets []bucket
	mask    uint64
	wrapper *core.Wrapper
	device  storage.Device

	freeMu   sync.Mutex
	freeList []*Frame

	// quarantine parks copies of dirty pages from the moment their dirty
	// bit is cleared until their write-back is confirmed durable: eviction
	// parks before the frame leaves the page table, and flush paths park
	// before clearing the dirty bit of a still-resident frame. Entries
	// linger when the write fails, so an acknowledged write is never
	// dropped; loads adopt a quarantined copy instead of reading a stale
	// version from the device (which also closes the window where a
	// concurrent miss could re-read a page whose write-back is still in
	// flight).
	quarMu     sync.Mutex
	quarantine map[page.PageID]*page.Page
	quarCap    int

	// wbLocks serializes device write-backs per page (striped by page id,
	// held across the WritePage call in writeQuarantined). Without it, a
	// slow in-flight write of an old copy could land *after* a newer copy
	// of the same page was written and resolved, silently reverting the
	// device.
	wbLocks [wbStripes]sync.Mutex

	writeBackFailures atomic.Int64

	counters metrics.AccessCounters
}

// wbStripes is the number of per-page write-back serialization stripes.
const wbStripes = 64

// bucket is one hash-table partition: a small map guarded by its own
// RWMutex, plus the in-flight load registry used to single-flight misses.
type bucket struct {
	mu     sync.RWMutex
	frames map[page.PageID]*Frame
	loads  map[page.PageID]*loadOp
}

// loadOp coordinates concurrent requests for a page that is being read
// from the device: followers wait on done and then retry their lookup.
type loadOp struct {
	done chan struct{}
	err  error
}

// New constructs a Pool from cfg. It panics on structural misconfiguration
// (these are programming errors, not runtime conditions).
func New(cfg Config) *Pool {
	if cfg.Frames <= 0 {
		panic("buffer: Frames must be positive")
	}
	if cfg.Policy == nil {
		panic("buffer: Policy is required")
	}
	if cfg.Policy.Cap() < cfg.Frames {
		panic(fmt.Sprintf("buffer: policy capacity %d below frame count %d", cfg.Policy.Cap(), cfg.Frames))
	}
	if cfg.Device == nil {
		panic("buffer: Device is required")
	}
	nb := 1
	for nb < 4*cfg.Frames {
		nb <<= 1
	}
	if nb > 1<<16 {
		nb = 1 << 16
	}
	if cfg.QuarantineCap <= 0 {
		cfg.QuarantineCap = 64
	}
	p := &Pool{
		frames:     make([]Frame, cfg.Frames),
		buckets:    make([]bucket, nb),
		mask:       uint64(nb - 1),
		device:     cfg.Device,
		quarantine: make(map[page.PageID]*page.Page),
		quarCap:    cfg.QuarantineCap,
	}
	for i := range p.buckets {
		p.buckets[i].frames = make(map[page.PageID]*Frame)
		p.buckets[i].loads = make(map[page.PageID]*loadOp)
	}
	p.freeList = make([]*Frame, cfg.Frames)
	for i := range p.frames {
		p.freeList[i] = &p.frames[i]
	}
	wcfg := cfg.Wrapper
	wcfg.Validate = p.validTag
	p.wrapper = core.New(cfg.Policy, wcfg)
	return p
}

// NewSession returns a per-backend access session. Sessions must not be
// shared between goroutines.
func (p *Pool) NewSession() *core.Session { return p.wrapper.NewSession() }

// Wrapper exposes the BP-Wrapper core for statistics collection.
func (p *Pool) Wrapper() *core.Wrapper { return p.wrapper }

// Counters exposes the pool's hit/miss counters.
func (p *Pool) Counters() *metrics.AccessCounters { return &p.counters }

// Device returns the backing device.
func (p *Pool) Device() storage.Device { return p.device }

// bucketFor hashes a page id to its table partition.
func (p *Pool) bucketFor(id page.PageID) *bucket {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &p.buckets[h&p.mask]
}

// wbLock returns the write-back serialization stripe for a page id.
func (p *Pool) wbLock(id page.PageID) *sync.Mutex {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &p.wbLocks[h%wbStripes]
}

// validTag is installed as the wrapper's commit-time validator: a queued
// access is applied to the policy only if the page is still cached by the
// same frame generation it was recorded against (Section IV-B).
func (p *Pool) validTag(e core.Entry) bool {
	b := p.bucketFor(e.ID)
	b.mu.RLock()
	f, ok := b.frames[e.ID]
	b.mu.RUnlock()
	if !ok {
		return false
	}
	return f.Tag().Matches(e.Tag)
}

// Get pins page id for reading, loading it from the device on a miss. The
// access is recorded through the session per the BP-Wrapper protocol.
func (p *Pool) Get(s *core.Session, id page.PageID) (*PageRef, error) {
	return p.get(s, id, false)
}

// GetWrite pins page id for writing: the returned reference holds the
// content lock exclusively and permits MarkDirty.
func (p *Pool) GetWrite(s *core.Session, id page.PageID) (*PageRef, error) {
	return p.get(s, id, true)
}

func (p *Pool) get(s *core.Session, id page.PageID, writable bool) (*PageRef, error) {
	if !id.Valid() {
		return nil, storage.ErrInvalidPage
	}
	for {
		b := p.bucketFor(id)
		b.mu.RLock()
		f := b.frames[id]
		b.mu.RUnlock()
		if f != nil {
			tag, ok := f.tryPin(id)
			if !ok {
				// Frame recycled between lookup and pin; retry.
				continue
			}
			p.counters.Hit()
			s.Hit(id, tag)
			return p.ref(f, id, tag, writable), nil
		}
		ref, retry, err := p.load(s, id, writable)
		if err != nil {
			return nil, err
		}
		if !retry {
			return ref, nil
		}
	}
}

// ref completes a pinned reference by taking the content lock.
func (p *Pool) ref(f *Frame, id page.PageID, tag page.BufferTag, writable bool) *PageRef {
	if writable {
		f.contentMu.Lock()
	} else {
		f.contentMu.RLock()
	}
	return &PageRef{frame: f, id: id, tag: tag, writable: writable}
}

// load handles a miss: it single-flights concurrent requests for the same
// page, obtains a frame (free or evicted), reads the page, and installs the
// frame in the table. retry is true when the caller lost the race and
// should restart its lookup.
func (p *Pool) load(s *core.Session, id page.PageID, writable bool) (ref *PageRef, retry bool, err error) {
	b := p.bucketFor(id)
	b.mu.Lock()
	if _, ok := b.frames[id]; ok {
		// Installed while we were acquiring the lock.
		b.mu.Unlock()
		return nil, true, nil
	}
	if op, ok := b.loads[id]; ok {
		// Another backend is loading this page: wait and retry.
		b.mu.Unlock()
		<-op.done
		if op.err != nil {
			return nil, false, op.err
		}
		return nil, true, nil
	}
	op := &loadOp{done: make(chan struct{})}
	b.loads[id] = op
	b.mu.Unlock()

	finish := func(e error) {
		op.err = e
		b.mu.Lock()
		delete(b.loads, id)
		b.mu.Unlock()
		close(op.done)
	}

	p.counters.Miss()
	f, err := p.acquireFrame(s, id)
	if err != nil {
		finish(err)
		return nil, false, err
	}
	// The frame is exclusively ours (pinned once, not in any bucket), so
	// the device read can fill it without the content lock. A quarantined
	// copy — a dirty page whose eviction write-back has not been confirmed
	// durable — takes precedence over the device, which may hold a stale
	// version; adopting it keeps the frame dirty so it is written back
	// again later.
	adopted := false
	if q := p.quarantineTake(id); q != nil {
		f.data = *q
		adopted = true
	} else if err := p.device.ReadPage(id, &f.data); err != nil {
		p.abandonFrame(f)
		finish(err)
		return nil, false, err
	}
	var tag page.BufferTag
	f.mu.Lock()
	f.tag.Page = id
	f.tag.Gen++
	f.dirty = adopted
	tag = f.tag
	f.mu.Unlock()

	sched.Yield(sched.BufLoadInstall)
	b.mu.Lock()
	b.frames[id] = f
	b.mu.Unlock()

	// Second phase of the miss protocol: the page has a frame and a table
	// entry, so it may now become policy-resident. If a concurrent miss
	// consumed the slot MissBegin freed, Admit evicts again and the spare
	// victim's frame is recycled onto the free list.
	if victim, evicted := s.MissAdmit(id); evicted {
		p.recycle(victim)
	}
	finish(nil)
	return p.ref(f, id, tag, writable), false, nil
}

// recycle reclaims a surplus victim's frame onto the free list, churning
// through further candidates if the first is pinned.
func (p *Pool) recycle(victim page.PageID) {
	for attempt := 0; attempt <= 2*len(p.frames); attempt++ {
		if victim.Valid() {
			if f, ok := p.reclaim(victim); ok {
				f.mu.Lock()
				f.pins = 0
				f.mu.Unlock()
				p.freeMu.Lock()
				p.freeList = append(p.freeList, f)
				p.freeMu.Unlock()
				return
			}
		}
		runtime.Gosched()
		v, ok := p.nextVictim(victim, page.InvalidPageID)
		if !ok {
			return // nothing evictable; the pool is simply over-admitted by pins
		}
		victim = v
	}
}

// acquireFrame produces an empty, once-pinned frame for page id: from the
// free list during warm-up, otherwise by evicting the policy's victim. The
// access is recorded as a miss through the session (taking the policy lock
// and committing any batched hits, per Figure 4 of the paper); the page
// itself is admitted later by MissAdmit, once loaded.
func (p *Pool) acquireFrame(s *core.Session, id page.PageID) (*Frame, error) {
	victim, evicted := s.MissBegin(id, page.BufferTag{})
	if !evicted {
		p.freeMu.Lock()
		n := len(p.freeList)
		if n == 0 {
			p.freeMu.Unlock()
			// The policy admitted without eviction but no free frame
			// exists — possible only after Remove/invalidate churn; fall
			// back to evicting explicitly.
			return p.reclaimLoop(id, page.InvalidPageID)
		}
		f := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		p.freeMu.Unlock()
		f.mu.Lock()
		f.pins = 1
		f.mu.Unlock()
		return f, nil
	}
	return p.reclaimLoop(id, victim)
}

// reclaimLoop turns an eviction victim into a reusable frame, retrying
// through the policy when the victim is pinned or mid-load. Bounded by
// twice the pool size, after which every buffer is presumed pinned.
func (p *Pool) reclaimLoop(id, victim page.PageID) (*Frame, error) {
	for attempt := 0; attempt <= 2*len(p.frames); attempt++ {
		if victim.Valid() {
			if f, ok := p.reclaim(victim); ok {
				return f, nil
			}
		}
		// Victim unusable (pinned, mid-load, or none yet): let the pinning
		// goroutines run — short pins are released in microseconds, but a
		// tight retry loop can exhaust its attempts before the scheduler
		// ever lets an unpin happen — then exchange the victim for a
		// different candidate under the policy lock.
		runtime.Gosched()
		v, ok := p.nextVictim(victim, id)
		if !ok {
			return nil, ErrNoUnpinnedBuffers
		}
		victim = v
	}
	return nil, ErrNoUnpinnedBuffers
}

// nextVictim re-admits a wrongly evicted page prev (its frame turned out to
// be pinned) and returns the replacement victim the policy chose instead;
// with an invalid prev it simply asks the policy to evict one more page.
// protect is the page currently being loaded: if the exchange throws it
// out, it is immediately re-admitted so its residency survives (Admit never
// returns the page it admits, so this terminates).
func (p *Pool) nextVictim(prev, protect page.PageID) (page.PageID, bool) {
	var victim page.PageID
	var evicted bool
	p.wrapper.Locked(func(pol replacer.Policy) {
		if prev.Valid() && !pol.Contains(prev) {
			victim, evicted = pol.Admit(prev)
			if !evicted {
				// The policy had spare capacity (two-phase misses leave a
				// slot open while a page is in flight), so the
				// re-admission displaced nothing; take a fresh victim
				// explicitly.
				victim, evicted = pol.Evict()
			}
		} else {
			// prev was re-admitted by a concurrent loader (or there is no
			// prev): take a fresh victim without admitting anything.
			victim, evicted = pol.Evict()
		}
		if evicted && protect.Valid() && victim == protect {
			victim, evicted = pol.Admit(protect)
		}
	})
	return victim, evicted
}

// reclaim tries to take exclusive ownership of the victim's frame: it
// succeeds only if the frame is unpinned, writing back dirty contents and
// removing the table entry. On success the frame is returned pinned once
// with an invalid tag.
//
// Dirty victims are evicted losslessly: the page copy is parked in the
// quarantine *before* the table entry disappears, then written back. While
// the copy is quarantined a concurrent miss for the same page adopts it
// (see load) instead of re-reading a possibly stale version from the
// device. If the write-back fails the copy simply stays quarantined —
// drained later by the background writer, FlushDirty, or Close — so an
// acknowledged write is never dropped. When the quarantine is already at
// capacity the eviction is refused up front and the caller churns to
// another (ideally clean) victim.
func (p *Pool) reclaim(victim page.PageID) (*Frame, bool) {
	b := p.bucketFor(victim)
	b.mu.RLock()
	f := b.frames[victim]
	b.mu.RUnlock()
	if f == nil {
		// Policy said resident but the table has no entry: the page is
		// mid-load by another backend (its frame is pinned anyway).
		return nil, false
	}
	f.mu.Lock()
	if f.tag.Page != victim || f.pins > 0 {
		f.mu.Unlock()
		return nil, false
	}
	needWriteback := f.dirty
	if needWriteback && p.quarantineFull() {
		// No room to guarantee durability for another dirty page; leave
		// this frame untouched and let the caller try a different victim.
		f.mu.Unlock()
		return nil, false
	}
	f.pins = 1 // claim
	var wb *page.Page
	if needWriteback {
		c := f.data
		wb = &c
		f.dirty = false
	}
	f.tag.Page = page.InvalidPageID
	f.mu.Unlock()

	sched.Yield(sched.BufReclaimClaim)
	if needWriteback {
		p.quarantinePut(victim, wb)
	}

	b.mu.Lock()
	delete(b.frames, victim)
	b.mu.Unlock()

	if needWriteback {
		sched.Yield(sched.BufQuarantinePark)
		if _, err := p.writeQuarantined(victim, wb); err != nil {
			// The copy stays quarantined; the page is safe and the failure
			// observable via Stats. The frame itself is still reusable.
			p.writeBackFailures.Add(1)
		}
	}
	return f, true
}

// writeQuarantined makes the quarantined copy of id durable and resolves
// its entry. All quarantine-backed writes go through here: the per-page
// stripe lock is held across the device call so write-backs of the same
// page are serialized — an old copy's slow write finishes before a newer
// copy's write starts, and can therefore never land after (and silently
// revert) it. Under the stripe lock the entry is re-validated first: a
// copy that was adopted by a miss, superseded by a newer eviction, or
// purged by Invalidate is skipped rather than written, returning
// (false, nil). On write failure the entry stays quarantined.
func (p *Pool) writeQuarantined(id page.PageID, copy *page.Page) (wrote bool, err error) {
	l := p.wbLock(id)
	l.Lock()
	defer l.Unlock()
	p.quarMu.Lock()
	cur := p.quarantine[id]
	p.quarMu.Unlock()
	if cur != copy {
		return false, nil
	}
	if err := p.device.WritePage(copy); err != nil {
		return false, err
	}
	p.quarantineResolve(id, copy)
	return true, nil
}

// quarantinePut parks a page copy under its id. At most one entry per page
// can exist. In steady state a page is either pool-resident or
// quarantined, never both; the one sanctioned overlap is a flush of a
// still-resident frame (flushFrame), which parks the copy *before*
// clearing the dirty bit — while that entry exists it is byte-identical
// to the frame, so an eviction in the write window stays lossless.
func (p *Pool) quarantinePut(id page.PageID, copy *page.Page) {
	p.quarMu.Lock()
	p.quarantine[id] = copy
	p.quarMu.Unlock()
}

// quarantineTake removes and returns the quarantined copy of id, if any.
// Used by the miss path to adopt the newest acknowledged version.
func (p *Pool) quarantineTake(id page.PageID) *page.Page {
	p.quarMu.Lock()
	q := p.quarantine[id]
	if q != nil {
		delete(p.quarantine, id)
	}
	p.quarMu.Unlock()
	return q
}

// quarantineResolve removes the entry for id if it is still the exact copy
// the caller parked; a concurrent miss may already have adopted it (and
// will write the same bytes back again later, which is merely redundant).
func (p *Pool) quarantineResolve(id page.PageID, copy *page.Page) {
	p.quarMu.Lock()
	if p.quarantine[id] == copy {
		delete(p.quarantine, id)
	}
	p.quarMu.Unlock()
}

func (p *Pool) quarantineFull() bool {
	p.quarMu.Lock()
	full := len(p.quarantine) >= p.quarCap
	p.quarMu.Unlock()
	return full
}

// QuarantineLen reports the number of pages currently parked in the
// dirty quarantine.
func (p *Pool) QuarantineLen() int {
	p.quarMu.Lock()
	n := len(p.quarantine)
	p.quarMu.Unlock()
	return n
}

// drainQuarantine retries the write-back of every quarantined page,
// returning the number made durable, the number that failed again, and
// the join of per-page failures. Entries stay mapped while their write is
// in flight so a concurrent miss can still adopt them; a snapshot entry
// that was adopted or superseded before its write starts is skipped by
// writeQuarantined (counted neither written nor failed), and per-page
// serialization there guarantees a stale snapshot write can never land
// after a newer successful write of the same page.
func (p *Pool) drainQuarantine() (written, failed int, err error) {
	p.quarMu.Lock()
	snap := make(map[page.PageID]*page.Page, len(p.quarantine))
	for id, copy := range p.quarantine {
		snap[id] = copy
	}
	p.quarMu.Unlock()
	var errs []error
	for id, copy := range snap {
		wrote, werr := p.writeQuarantined(id, copy)
		if werr != nil {
			p.writeBackFailures.Add(1)
			failed++
			errs = append(errs, fmt.Errorf("quarantined page %v: %w", id, werr))
			continue
		}
		if wrote {
			written++
		}
	}
	return written, failed, errors.Join(errs...)
}

// abandonFrame returns a claimed frame to the free list after a failed
// load. The page was never admitted to the policy (two-phase protocol), so
// no policy rollback is needed.
func (p *Pool) abandonFrame(f *Frame) {
	f.mu.Lock()
	f.pins = 0
	f.tag = page.BufferTag{}
	f.mu.Unlock()
	p.freeMu.Lock()
	p.freeList = append(p.freeList, f)
	p.freeMu.Unlock()
}

// purgeQuarantine discards any quarantined copy of id. Taking the
// write-back stripe first waits out an in-flight write of the page and
// makes later snapshot writes skip (their entry is gone), so discarded
// bytes cannot be resurrected onto the device after the purge.
func (p *Pool) purgeQuarantine(id page.PageID) {
	l := p.wbLock(id)
	l.Lock()
	p.quarMu.Lock()
	delete(p.quarantine, id)
	p.quarMu.Unlock()
	l.Unlock()
}

// Invalidate drops page id from the pool (e.g. its table was truncated),
// discarding dirty contents — including any quarantined copy from an
// earlier failed write-back, which must not be drained back to the device
// later. It fails with ErrNoUnpinnedBuffers if the page is pinned.
func (p *Pool) Invalidate(id page.PageID) error {
	b := p.bucketFor(id)
	b.mu.RLock()
	f := b.frames[id]
	b.mu.RUnlock()
	if f == nil {
		p.purgeQuarantine(id)
		return nil
	}
	f.mu.Lock()
	if f.tag.Page != id {
		f.mu.Unlock()
		p.purgeQuarantine(id)
		return nil
	}
	if f.pins > 0 {
		f.mu.Unlock()
		return ErrNoUnpinnedBuffers
	}
	f.pins = 1
	f.tag.Page = page.InvalidPageID
	f.dirty = false
	f.mu.Unlock()

	b.mu.Lock()
	delete(b.frames, id)
	b.mu.Unlock()

	p.purgeQuarantine(id)

	p.wrapper.Locked(func(pol replacer.Policy) {
		pol.Remove(id)
	})
	f.mu.Lock()
	f.pins = 0
	f.mu.Unlock()
	p.freeMu.Lock()
	p.freeList = append(p.freeList, f)
	p.freeMu.Unlock()
	return nil
}

// flushFrame writes one dirty, unpinned frame back to the device in the
// same order reclaim uses: park a copy in the quarantine first, then clear
// the dirty bit, then write, and resolve the entry only once the write is
// durable. Parking before the bit clears closes the window where the
// frame looks clean while its write is still in flight — an eviction in
// that window would otherwise drop the page with no write-back and no
// quarantine entry, and a subsequent miss would re-read a stale version
// from the device. It returns (false, nil) when the frame needs no flush,
// the quarantine is at capacity (the frame stays dirty for a later
// round), or the parked copy was adopted/superseded before the write.
func (p *Pool) flushFrame(f *Frame) (bool, error) {
	f.mu.Lock()
	if !f.dirty || f.pins > 0 || !f.tag.Page.Valid() {
		f.mu.Unlock()
		return false, nil
	}
	id := f.tag.Page
	wb := f.data
	p.quarMu.Lock()
	if len(p.quarantine) >= p.quarCap {
		// No room to guarantee durability across the write window; keep
		// the frame dirty and let a later round (with the quarantine
		// drained) retry, so the cap bounds every insertion path.
		p.quarMu.Unlock()
		f.mu.Unlock()
		return false, nil
	}
	p.quarantine[id] = &wb
	p.quarMu.Unlock()
	f.dirty = false
	f.mu.Unlock()

	sched.Yield(sched.BufFlushClear)
	wrote, err := p.writeQuarantined(id, &wb)
	if err == nil {
		return wrote, nil
	}
	p.writeBackFailures.Add(1)
	f.mu.Lock()
	if f.tag.Page == id {
		// Frame still resident: retry from the frame. Withdraw our parked
		// copy (unless superseded) to restore the resident-xor-quarantined
		// steady state; holding f.mu here makes the withdrawal atomic with
		// respect to eviction, which cannot proceed until we release it.
		p.quarMu.Lock()
		if p.quarantine[id] == &wb {
			delete(p.quarantine, id)
		}
		p.quarMu.Unlock()
		f.dirty = true
		f.mu.Unlock()
	} else {
		// Frame recycled while the write was in flight: the copy either
		// still sits in the quarantine (drained later) or was adopted by a
		// re-load into a dirty frame. Either way the bytes are safe.
		f.mu.Unlock()
	}
	return false, fmt.Errorf("page %v: %w", id, err)
}

// FlushDirty writes every dirty, unpinned page back to the device — and
// retries every quarantined page — returning the number made durable.
// Pinned dirty pages are skipped. A write failure does not abort the
// sweep: the page stays dirty (or quarantined), the remaining pages are
// still flushed, and the failures are returned joined so the caller sees
// every page that is not yet durable. The quarantine is drained first so
// the frame sweep's transient parking has capacity to work with.
func (p *Pool) FlushDirty() (int, error) {
	var errs []error
	qn, _, qerr := p.drainQuarantine()
	n := qn
	if qerr != nil {
		errs = append(errs, qerr)
	}
	for i := range p.frames {
		wrote, err := p.flushFrame(&p.frames[i])
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if wrote {
			n++
		}
	}
	return n, errors.Join(errs...)
}

// Close flushes the pool for shutdown: dirty and quarantined pages are
// written back with bounded retries and exponential backoff, so transient
// device trouble at shutdown does not lose data. It returns an error if
// pages remain non-durable (still failing, or pinned dirty) after the
// retry budget. Close does not stop a BackgroundWriter — the caller owns
// that — and the pool remains usable afterwards.
func (p *Pool) Close() error {
	const attempts = 8
	backoff := time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		_, err := p.FlushDirty()
		lastErr = err
		if err == nil && p.QuarantineLen() == 0 {
			if d := p.DirtyCount(); d > 0 {
				lastErr = fmt.Errorf("buffer: %d dirty pages still pinned", d)
			} else {
				return nil
			}
		}
		if i < attempts-1 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return fmt.Errorf("buffer: close did not reach a clean state: %w", lastErr)
}

// Prewarm loads the given pages through a throwaway session so that a
// subsequent measured run starts with the working set resident, as the
// scalability experiments require ("we pre-warm the buffer", Section IV).
func (p *Pool) Prewarm(ids []page.PageID) error {
	s := p.NewSession()
	for _, id := range ids {
		ref, err := p.Get(s, id)
		if err != nil {
			return err
		}
		ref.Release()
	}
	s.Flush()
	return nil
}

// ResetStats zeroes the pool's access counters and the wrapper's lock and
// batching statistics; used between warm-up and measurement phases.
func (p *Pool) ResetStats() {
	p.counters.Reset()
	p.wrapper.ResetStats()
}

// Stats is a point-in-time operational snapshot of the pool.
type Stats struct {
	Frames   int     // total page slots
	Free     int     // slots on the free list
	Dirty    int     // dirty resident pages
	Resident int     // pages tracked by the replacement policy
	Hits     int64   // buffer hits since the last reset
	Misses   int64   // buffer misses since the last reset
	HitRatio float64 // hits / (hits + misses)

	// Quarantined is the number of evicted dirty pages whose write-back
	// is unconfirmed; WriteBackFailures counts failed write-back attempts
	// (eviction, flush, and quarantine-drain retries).
	Quarantined       int
	WriteBackFailures int64

	Wrapper core.Stats
	Device  storage.DeviceStats
}

// Stats returns an operational snapshot. It takes the policy lock briefly
// (for the resident count) and each frame's mutex (for the dirty count);
// intended for monitoring, not hot paths.
func (p *Pool) Stats() Stats {
	s := Stats{
		Frames:            len(p.frames),
		Dirty:             p.DirtyCount(),
		Hits:              p.counters.Hits(),
		Misses:            p.counters.Misses(),
		Quarantined:       p.QuarantineLen(),
		WriteBackFailures: p.writeBackFailures.Load(),
		Wrapper:           p.wrapper.Stats(),
		Device:            p.device.Stats(),
	}
	s.HitRatio = p.counters.HitRatio()
	p.freeMu.Lock()
	s.Free = len(p.freeList)
	p.freeMu.Unlock()
	p.wrapper.Locked(func(pol replacer.Policy) { s.Resident = pol.Len() })
	return s
}

// PinnedFrames reports the number of frames currently holding at least one
// pin; used by tests and diagnostics (at a true quiescent point — no
// outstanding PageRefs, no in-flight operations — it must be zero).
func (p *Pool) PinnedFrames() int {
	n := 0
	for i := range p.frames {
		f := &p.frames[i]
		f.mu.Lock()
		if f.pins > 0 {
			n++
		}
		f.mu.Unlock()
	}
	return n
}

// CheckInvariants verifies the pool's structural invariants: pin-count
// sanity, frame/hash-table consistency, free-list integrity, the
// resident-xor-quarantined steady state, and policy/table agreement. It is
// O(frames + buckets) and takes each lock briefly.
//
// The contract is quiescence: callers must ensure no pool operations are in
// flight (the torture harness calls it after workers join and again after
// Close). Called concurrently it cannot corrupt anything, but it may report
// perfectly legal in-flight transitions — a claimed frame between table
// removal and the free list, a flush window's sanctioned resident+
// quarantined overlap — as violations.
func (p *Pool) CheckInvariants() error {
	// Snapshot the table: page → frame, taking each bucket lock once.
	mapped := make(map[page.PageID]*Frame, len(p.frames))
	for i := range p.buckets {
		b := &p.buckets[i]
		b.mu.RLock()
		for id, f := range b.frames {
			mapped[id] = f
		}
		nLoads := len(b.loads)
		b.mu.RUnlock()
		if nLoads != 0 {
			return fmt.Errorf("buffer: %d loads in flight during invariant check (caller not quiescent)", nLoads)
		}
	}
	byFrame := make(map[*Frame]page.PageID, len(mapped))
	for id, f := range mapped {
		if prev, dup := byFrame[f]; dup {
			return fmt.Errorf("buffer: frame mapped twice, as %v and %v", prev, id)
		}
		byFrame[f] = id
		f.mu.Lock()
		tag, pins := f.tag, f.pins
		f.mu.Unlock()
		if tag.Page != id {
			return fmt.Errorf("buffer: table entry %v points at frame caching %v", id, tag.Page)
		}
		if pins < 0 {
			return fmt.Errorf("buffer: page %v: negative pin count %d", id, pins)
		}
	}
	// Free-list integrity: unpinned, untagged, unmapped, no duplicates.
	p.freeMu.Lock()
	free := append([]*Frame(nil), p.freeList...)
	p.freeMu.Unlock()
	onFree := make(map[*Frame]bool, len(free))
	for _, f := range free {
		if onFree[f] {
			return errors.New("buffer: frame on free list twice")
		}
		onFree[f] = true
		if id, ok := byFrame[f]; ok {
			return fmt.Errorf("buffer: frame on free list while mapped as %v", id)
		}
		f.mu.Lock()
		tag, pins := f.tag, f.pins
		f.mu.Unlock()
		if tag.Page.Valid() {
			return fmt.Errorf("buffer: free frame still tagged %v", tag.Page)
		}
		if pins != 0 {
			return fmt.Errorf("buffer: free frame has %d pins", pins)
		}
	}
	// Every frame is accounted for exactly once: mapped or free.
	if len(mapped)+len(free) != len(p.frames) {
		return fmt.Errorf("buffer: %d mapped + %d free != %d frames (frame leaked or in flight)",
			len(mapped), len(free), len(p.frames))
	}
	// Quarantine: disjoint from the resident set at quiescence (the one
	// sanctioned overlap is a flush's in-flight write window), and within
	// its soft capacity bound.
	p.quarMu.Lock()
	quar := make([]page.PageID, 0, len(p.quarantine))
	for id := range p.quarantine {
		quar = append(quar, id)
	}
	p.quarMu.Unlock()
	for _, id := range quar {
		if _, resident := mapped[id]; resident {
			return fmt.Errorf("buffer: page %v both resident and quarantined at quiescence", id)
		}
	}
	if len(quar) > p.quarCap+len(p.frames) {
		return fmt.Errorf("buffer: quarantine %d far beyond cap %d", len(quar), p.quarCap)
	}
	// Policy agreement: every policy-resident page must have a table entry
	// (a frameless resident would be unevictable and unservable). The
	// reverse — a table entry the policy no longer tracks — is legal residue
	// of eviction churn against pinned frames and is not flagged.
	var perr error
	p.wrapper.Locked(func(pol replacer.Policy) {
		n := pol.Len()
		inTable := 0
		for id := range mapped {
			if pol.Contains(id) {
				inTable++
			}
		}
		if n != inTable {
			perr = fmt.Errorf("buffer: policy tracks %d residents but only %d have table entries", n, inTable)
		}
	})
	if perr != nil {
		return perr
	}
	return p.wrapper.CheckInvariants()
}
