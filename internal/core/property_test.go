package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// wrapperScenario is a generated single-session access sequence plus queue
// tuning for property tests.
type wrapperScenario struct {
	QueueSize int
	Threshold int
	Capacity  int
	Trace     []uint16
}

// Generate implements quick.Generator.
func (wrapperScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	qs := 1 + r.Intn(64)
	return reflect.ValueOf(wrapperScenario{
		QueueSize: qs,
		Threshold: 1 + r.Intn(qs),
		Capacity:  1 + r.Intn(48),
		Trace: func() []uint16 {
			tr := make([]uint16, 300+r.Intn(1200))
			span := uint16(1 + r.Intn(96))
			for i := range tr {
				tr[i] = uint16(r.Intn(int(span)))
			}
			return tr
		}(),
	})
}

// runScenario drives one session and returns the op sequence the policy
// observed.
func runScenario(s wrapperScenario, cfg Config) []string {
	rec := newRecording(s.Capacity)
	w := New(rec, cfg)
	sess := w.NewSession()
	for _, v := range s.Trace {
		id := pid(uint64(v))
		if rec.Contains(id) {
			sess.Hit(id, page.BufferTag{Page: id})
		} else {
			sess.Miss(id, page.BufferTag{Page: id})
		}
	}
	sess.Flush()
	return rec.ops
}

// TestQuickBatchingOrderPreservation property-tests the paper's central
// correctness claim over random traces and queue tunings: with a single
// session, the policy observes exactly the same operation sequence with
// batching as without — deferral changes timing, never order or content.
func TestQuickBatchingOrderPreservation(t *testing.T) {
	prop := func(s wrapperScenario) bool {
		plain := runScenario(s, Config{})
		batched := runScenario(s, Config{
			Batching:       true,
			QueueSize:      s.QueueSize,
			BatchThreshold: s.Threshold,
		})
		if len(plain) != len(batched) {
			return false
		}
		for i := range plain {
			if plain[i] != batched[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueueNeverOverflows property-tests the queue bound: a session's
// pending count never exceeds the configured queue size, whatever the
// trace, even when the lock is persistently busy.
func TestQuickQueueNeverOverflows(t *testing.T) {
	prop := func(s wrapperScenario) bool {
		w := New(replacer.NewLRU(s.Capacity), Config{
			Batching:       true,
			QueueSize:      s.QueueSize,
			BatchThreshold: s.Threshold,
		})
		// Hold the lock the whole time so TryLock always fails: the
		// session must bound its queue via forced blocking commits, which
		// here acquire the lock only when we let go briefly.
		sess := w.NewSession()
		pol := w.Policy()
		for _, v := range s.Trace {
			id := pid(uint64(v))
			if pol.Contains(id) {
				sess.Hit(id, page.BufferTag{Page: id})
			} else {
				sess.Miss(id, page.BufferTag{Page: id})
			}
			if sess.Pending() > s.QueueSize {
				return false
			}
		}
		sess.Flush()
		return sess.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatsConsistent property-tests the accounting identities:
// accesses = hits + misses, and every hit is eventually committed or
// dropped.
func TestQuickStatsConsistent(t *testing.T) {
	prop := func(s wrapperScenario) bool {
		w := New(replacer.NewLRU(s.Capacity), Config{
			Batching:       true,
			QueueSize:      s.QueueSize,
			BatchThreshold: s.Threshold,
		})
		sess := w.NewSession()
		pol := w.Policy()
		for _, v := range s.Trace {
			id := pid(uint64(v))
			if pol.Contains(id) {
				sess.Hit(id, page.BufferTag{Page: id})
			} else {
				sess.Miss(id, page.BufferTag{Page: id})
			}
		}
		sess.Flush()
		st := w.Stats()
		if st.Accesses != int64(len(s.Trace)) {
			return false
		}
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		return st.Committed+st.Dropped == st.Hits
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
