#!/bin/sh
# Regenerates results/BENCH_combine.json, the committed benchmark baseline
# for the commit-path comparison (baseline vs batched vs flat-combined).
#
# The run is fully deterministic: sim mode, fixed seed, fixed virtual
# duration. Re-running on any machine reproduces the committed file
# byte-for-byte; a diff after a change to internal/core or internal/sim is
# a real behavioural difference, not noise.
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp combine -format json -duration 500ms -seed 1 \
    > results/BENCH_combine.json
echo "wrote results/BENCH_combine.json"
