#!/bin/sh
# Regenerates results/BENCH_server.json, the committed baseline for the
# server experiment (E18): the byte/op ledger of a loopback bpserver
# driven through the binary wire protocol.
#
# The run is fully deterministic: one client replays a seeded op stream
# synchronously per pipelined burst, frames are fixed-length, and the
# counter snapshot is taken at quiescence before any STATS call (the
# STATS JSON is the one variable-length frame). The committed numbers
# pin the wire format's byte accounting — request/response taxonomy,
# bytes in/out, the pool's hit/miss split, and the malformed-frame
# containment count — and reproduce byte-for-byte on any machine. (The
# fleet-scaling half of E18 needs -mode real and is inherently
# machine-dependent, so it is never committed.)
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp server -format json -seed 1 \
    > results/BENCH_server.json
echo "wrote results/BENCH_server.json"
