package buffer

import (
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// shardedGatePool builds a hash-partitioned pool whose device stack is
// mem ← fault ← gate, so tests can both inject write failures and hold a
// chosen page's write in flight at the device boundary.
func shardedGatePool(shards, frames int) (*Pool, *gateDevice, *storage.FaultDevice, *storage.MemDevice) {
	mem := storage.NewMemDevice()
	fault := storage.NewFaultDevice(mem, storage.FaultConfig{})
	gate := newGateDevice(fault)
	p := New(Config{
		Frames:        frames,
		Shards:        shards,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Wrapper:       core.Config{Batching: true, QueueSize: 8, BatchThreshold: 4},
		Device:        gate,
	})
	return p, gate, fault, mem
}

// idsInShard returns n page ids (block numbers counting up from start)
// that the pool routes to shard idx.
func idsInShard(p *Pool, idx, n int, start uint64) []page.PageID {
	var out []page.PageID
	for b := start; len(out) < n; b++ {
		id := pid(b)
		if p.shardIndexFor(id) == idx {
			out = append(out, id)
		}
	}
	return out
}

// TestCloseRacingBGWriterRoundOnAnotherShard pins down the cross-shard
// shutdown race: a background-writer round holds shard 0's quarantined
// write in flight at the device while Close runs concurrently. Shard 1's
// own write-backs must proceed independently in that window (its stripe
// locks are per shard), Close must wait for — not skip — the in-flight
// page, and after both finish the device must hold every page: neither
// the race nor the duplicate drain may lose a quarantined copy.
func TestCloseRacingBGWriterRoundOnAnotherShard(t *testing.T) {
	p, gate, fault, mem := shardedGatePool(2, 8) // 4 frames per shard
	s := p.NewSession()

	shard0 := idsInShard(p, 0, 6, 1)
	idA := shard0[0]                      // the page that will be quarantined
	shard1 := idsInShard(p, 1, 6, 10_000) // distinct block range, shard 1
	idB := shard1[0]

	dirtyPage(t, p, s, idA)
	dirtyPage(t, p, s, idB)

	// Park idA in shard 0's quarantine via a failed eviction write-back:
	// five more shard-0 pages overflow its four frames, LRU evicts dirty
	// idA, and the dead device rejects the write.
	fault.SetWriteFailRate(1)
	for _, id := range shard0[1:] {
		ref, err := p.Get(s, id)
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	if q := p.QuarantineLen(); q != 1 {
		t.Fatalf("quarantined=%d after failed eviction on shard 0, want 1", q)
	}
	fault.SetWriteFailRate(0)

	// Hold the quarantine retry of idA in flight: the background writer's
	// round enters shard 0's drain and blocks inside the device write,
	// holding idA's per-shard write-back stripe.
	entered, release := gate.arm(idA)
	bg := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Millisecond})
	<-entered

	// Cross-shard independence: while shard 0's write is held, evicting
	// dirty idB from shard 1 must complete its write-back — shard 1's
	// stripes are its own, so nothing serializes it behind shard 0.
	for _, id := range shard1[1:] {
		ref, err := p.Get(s, id)
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	var back page.Page
	if err := mem.ReadPage(idB, &back); err != nil {
		t.Fatalf("shard 1 write-back did not reach the device during shard 0's in-flight write: %v", err)
	}
	if !back.VerifyStamp(idB + stampShift) {
		t.Fatal("shard 1 wrote stale bytes during shard 0's in-flight write")
	}

	// Close racing the held round: its drain of shard 0 must queue behind
	// the in-flight write on the stripe, not complete early and not drop
	// the page.
	closeErr := make(chan error, 1)
	go func() { closeErr <- p.Close() }()
	select {
	case err := <-closeErr:
		t.Fatalf("Close returned (%v) while shard 0's quarantined write was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	bg.Stop()

	// Nothing lost anywhere: the in-flight copy of idA landed exactly once
	// (Close's duplicate snapshot write was skipped by re-validation), and
	// every page of both shards is durable at its last written version.
	if q := p.QuarantineLen(); q != 0 {
		t.Fatalf("%d entries left quarantined after Close", q)
	}
	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("%d dirty pages left after Close", d)
	}
	if !mustRead(t, mem, idA).VerifyStamp(idA + stampShift) {
		t.Fatal("shard 0's quarantined page lost across the Close/bgwriter race")
	}
	if !mustRead(t, mem, idB).VerifyStamp(idB + stampShift) {
		t.Fatal("shard 1's page lost across the Close/bgwriter race")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// mustRead fetches id from the raw memory device.
func mustRead(t *testing.T, mem *storage.MemDevice, id page.PageID) *page.Page {
	t.Helper()
	var pg page.Page
	if err := mem.ReadPage(id, &pg); err != nil {
		t.Fatalf("device read of %v: %v", id, err)
	}
	return &pg
}
