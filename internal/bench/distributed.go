package bench

import (
	"fmt"
	"io"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/sim"
	"bpwrapper/internal/trace"
	"bpwrapper/internal/workload"
)

// Experiment E10 — the distributed-lock alternative of Section V-A.
//
// The paper's Related Work argues that splitting the buffer into multiple
// lists, each under its own lock (Oracle Universal Server, ADABAS, Mr.LRU),
// is not a substitute for BP-Wrapper: contention drops only with many
// partitions, hot pages still collide on whichever partition holds them,
// and the partitioned history breaks algorithms that need the global access
// order. This experiment quantifies both halves of the argument: the
// scalability side on the simulator, the history side as hit ratios on an
// identical trace.

// DistributedRow is one scalability point of the lock-design comparison.
type DistributedRow struct {
	Workload       string
	System         string // pg2Q, pgDist-<k>, pgBatPre
	Procs          int
	ThroughputTPS  float64
	ContentionPerM float64
}

// AblationDistributedLocks compares the naive global lock, hash-partitioned
// locks at each partition count, and BP-Wrapper, at the given processor
// count. It always runs on the simulator (the distributed-lock design
// exists only there; the real pool implements the paper's single-lock
// architecture).
func AblationDistributedLocks(procs int, partitionCounts []int, o Options) ([]DistributedRow, error) {
	o = o.withDefaults()
	if len(partitionCounts) == 0 {
		partitionCounts = []int{4, 16, 64}
	}
	var rows []DistributedRow
	for _, wl := range o.Workloads {
		params := o.simParamsFor(wl)
		runOne := func(name string, cfg sim.Config) error {
			cfg.Procs = procs
			cfg.Workers = o.WorkersPerProc * procs
			cfg.Workload = wl
			cfg.Prewarm = true
			cfg.Duration = sim.Time(o.Duration)
			cfg.Seed = o.Seed
			cfg.Params = &params
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			rows = append(rows, DistributedRow{
				Workload:       wl.Name(),
				System:         name,
				Procs:          procs,
				ThroughputTPS:  res.ThroughputTPS,
				ContentionPerM: res.ContentionPerM,
			})
			return nil
		}
		if err := runOne("pg2Q", sim.Config{Policy: "2q"}); err != nil {
			return nil, err
		}
		for _, k := range partitionCounts {
			name := fmt.Sprintf("pgDist-%d", k)
			if err := runOne(name, sim.Config{Policy: "2q", LockPartitions: k}); err != nil {
				return nil, err
			}
		}
		if err := runOne("pgBatPre", sim.Config{Policy: "2q", Batching: true, Prefetching: true}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PartitionHitRow is one hit-ratio measurement of the history-splitting
// cost.
type PartitionHitRow struct {
	Policy     string
	Partitions int // 1 = global
	HitRatio   float64
}

// AblationPartitionHitRatio replays one scan-plus-point-lookup trace
// through each policy globally and hash-partitioned, exposing the history
// damage Section V-A describes: SEQ loses sequence detection entirely, and
// the ghost-based algorithms adapt on fragments.
func AblationPartitionHitRatio(policies []string, partitionCounts []int, capacity int, seed int64) ([]PartitionHitRow, error) {
	if len(policies) == 0 {
		policies = []string{"seq", "2q", "lirs", "lru"}
	}
	if len(partitionCounts) == 0 {
		partitionCounts = []int{8, 64}
	}
	if capacity <= 0 {
		capacity = 1024
	}
	wl := scanMixWorkload{
		scanTable: workload.NewTable(1, 1<<22), // effectively endless: scans never revisit
		scanLen:   200,
		point:     workload.NewZipf(workload.SyntheticConfig{Pages: 1 << 14, TxnLen: 24, TableID: 100}),
	}
	tr := trace.Record(wl, 8, 250, seed)
	factories := replacer.Factories()
	var rows []PartitionHitRow
	for _, name := range policies {
		f, ok := factories[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown policy %q", name)
		}
		res := trace.Replay(f(capacity), tr)
		rows = append(rows, PartitionHitRow{Policy: name, Partitions: 1, HitRatio: res.HitRatio()})
		for _, k := range partitionCounts {
			p := replacer.NewPartitioned(capacity, k, f)
			res := trace.Replay(p, tr)
			rows = append(rows, PartitionHitRow{Policy: name, Partitions: k, HitRatio: res.HitRatio()})
		}
	}
	return rows, nil
}

// scanMixWorkload interleaves *one-shot* sequential scans — each scan
// reads the next fresh range of an effectively endless table, so scanned
// pages are never re-referenced — with Zipf point lookups over a separate
// hot table. This is the access shape where sequence detection earns its
// keep: caching one-shot scan pages is pure waste, and a policy that can
// recognise the sequence protects the point-lookup working set.
type scanMixWorkload struct {
	scanTable workload.Table
	scanLen   uint64
	point     workload.Workload
}

func (m scanMixWorkload) Name() string { return "scan+point" }

func (m scanMixWorkload) DataPages() int {
	return int(m.scanTable.Pages()) + m.point.DataPages()
}

func (m scanMixWorkload) Pages() []page.PageID {
	// Only the point-lookup table is a cacheable working set; the scan
	// table is intentionally unbounded for any realistic buffer.
	return m.point.Pages()
}

func (m scanMixWorkload) NewStream(w int, seed int64) workload.Stream {
	return &scanMixStream{
		m: m,
		// Stripe the streams far apart so their scan ranges never overlap.
		cursor: uint64(w) * (m.scanTable.Pages() / 64),
		point:  m.point.NewStream(w, seed+1),
	}
}

type scanMixStream struct {
	m      scanMixWorkload
	cursor uint64
	point  workload.Stream
	n      int
}

func (s *scanMixStream) NextTxn(buf []workload.Access) []workload.Access {
	s.n++
	if s.n%4 == 0 {
		for i := uint64(0); i < s.m.scanLen; i++ {
			buf = append(buf, workload.Access{Page: s.m.scanTable.Page(s.cursor)})
			s.cursor++
		}
		return buf
	}
	return s.point.NextTxn(buf)
}

// PrintDistributed renders the E10 scalability comparison.
func PrintDistributed(w io.Writer, rows []DistributedRow) {
	fmt.Fprintln(w, "Ablation — distributed locks (Section V-A) vs BP-Wrapper")
	fmt.Fprintf(w, "%-12s %-12s %6s %14s %14s\n", "workload", "system", "procs", "tps", "cont/M")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %6d %14.0f %14.1f\n",
			r.Workload, r.System, r.Procs, r.ThroughputTPS, r.ContentionPerM)
	}
}

// PrintPartitionHitRatio renders the E10 history-splitting comparison.
func PrintPartitionHitRatio(w io.Writer, rows []PartitionHitRow) {
	fmt.Fprintln(w, "Ablation — hit-ratio cost of partitioning the access history")
	fmt.Fprintln(w, "(scan + point-lookup trace; partitions hide block adjacency and split ghosts)")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "policy", "partitions", "hit ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %11.2f%%\n", r.Policy, r.Partitions, 100*r.HitRatio)
	}
}

// Experiment E11 — extension: the adaptive batch threshold.
//
// Table III shows the fixed threshold has a sweet spot between premature
// commits and TryLock starvation; the adaptive variant (core.Config.
// AdaptiveThreshold) finds it at run time. This experiment compares a bad
// fixed threshold, the paper's recommended fixed threshold, and the
// adaptive one.

// AdaptiveRow is one measurement of the adaptive-threshold comparison.
type AdaptiveRow struct {
	Workload       string
	Config         string // "fixed-<n>" or "adaptive"
	ThroughputTPS  float64
	ContentionPerM float64
}

// AblationAdaptiveThreshold compares fixed thresholds against the adaptive
// tuner at the given processor count on the simulator.
func AblationAdaptiveThreshold(procs int, fixed []int, o Options) ([]AdaptiveRow, error) {
	o = o.withDefaults()
	if len(fixed) == 0 {
		fixed = []int{64, 32}
	}
	var rows []AdaptiveRow
	for _, wl := range o.Workloads {
		params := o.simParamsFor(wl)
		run := func(label string, threshold int, adaptive bool) error {
			res, err := sim.Run(sim.Config{
				Procs:             procs,
				Workers:           o.WorkersPerProc * procs,
				Policy:            "2q",
				Batching:          true,
				QueueSize:         64,
				BatchThreshold:    threshold,
				AdaptiveThreshold: adaptive,
				Workload:          wl,
				Prewarm:           true,
				Duration:          sim.Time(o.Duration),
				Seed:              o.Seed,
				Params:            &params,
			})
			if err != nil {
				return err
			}
			rows = append(rows, AdaptiveRow{
				Workload:       wl.Name(),
				Config:         label,
				ThroughputTPS:  res.ThroughputTPS,
				ContentionPerM: res.ContentionPerM,
			})
			return nil
		}
		for _, thr := range fixed {
			if err := run(fmt.Sprintf("fixed-%d", thr), thr, false); err != nil {
				return nil, err
			}
		}
		if err := run("adaptive", 32, true); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintAdaptive renders the E11 comparison.
func PrintAdaptive(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "Extension — adaptive batch threshold (queue 64)")
	fmt.Fprintf(w, "%-12s %-10s %14s %14s\n", "workload", "config", "tps", "cont/M")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %14.0f %14.1f\n",
			r.Workload, r.Config, r.ThroughputTPS, r.ContentionPerM)
	}
}
