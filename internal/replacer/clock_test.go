package replacer

import "testing"

func clockRef(t *testing.T, p *Clock, id PageID) int32 {
	t.Helper()
	v, ok := p.table.Load(id)
	if !ok {
		t.Fatalf("page %v not resident", id)
	}
	return v.(*clockNode).ref.Load()
}

// TestGClockWeightDecay verifies the generalized clock's usage-count
// scheme: hits saturate the counter at maxCount, and every sweep pass
// decays each counter by exactly one, so a heavily used page survives
// maxCount sweep passes, not forever.
func TestGClockWeightDecay(t *testing.T) {
	// A two-frame ring makes the decay schedule exact: every sweep starts
	// at page 1, decrements its counter by one, and evicts the zero-count
	// newcomer behind it.
	p := NewGClock(2, 5)
	p.Admit(tid(1))
	p.Admit(tid(2))
	for i := 0; i < 9; i++ {
		p.Hit(tid(1)) // 9 hits, counter must saturate at 5
	}
	if got := clockRef(t, p, tid(1)); got != 5 {
		t.Fatalf("page 1 ref = %d after 9 hits, want saturation at 5", got)
	}
	for i := uint64(3); i <= 7; i++ {
		victim, evicted := p.Admit(tid(i))
		if err := CheckDeep(p); err != nil {
			t.Fatal(err)
		}
		if !evicted || victim != tid(i-1) {
			t.Fatalf("admit %d: victim = %v (evicted=%v), want %v — weighted page evicted early", i, victim, evicted, tid(i-1))
		}
		if got, want := clockRef(t, p, tid(1)), int32(5-(i-2)); got != want {
			t.Fatalf("admit %d: page 1 ref = %d, want exactly one decay per sweep pass (%d)", i, got, want)
		}
	}
	// The weight is spent; the next sweep must take page 1 itself.
	if victim, _ := p.Admit(tid(8)); victim != tid(1) {
		t.Fatalf("victim = %v, want the fully decayed page 1", victim)
	}
}

// TestGClockHitConcurrentWithSweep drives lock-free hits against a
// serialized admit/evict loop: the CAS loop must keep every counter in
// [0, maxCount] (the deep invariant checker verifies) and -race must stay
// quiet.
func TestGClockHitConcurrentWithSweep(t *testing.T) {
	p := NewGClock(8, 5)
	for i := uint64(0); i < 8; i++ {
		p.Admit(tid(i))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			p.Hit(tid(uint64(i) % 16))
		}
	}()
	// The policy lock serializes Admit/Evict in production; emulate that
	// by keeping all structural ops on this goroutine.
	for i := uint64(8); i < 400; i++ {
		if !p.Contains(tid(i % 16)) {
			p.Admit(tid(i % 16))
		}
		p.Evict()
		if p.Len() > p.Cap() {
			t.Fatalf("Len %d > Cap %d", p.Len(), p.Cap())
		}
	}
	<-done
	if err := CheckDeep(p); err != nil {
		t.Fatal(err)
	}
}
