package server

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/reqtrace"
	"bpwrapper/internal/storage"
)

// conn is one served connection: a socket, its buffered reader/writer,
// and the buffer.Session that makes this client a first-class BP-Wrapper
// backend — its accesses batch through the session's per-shard queues
// exactly like an in-process worker's.
type conn struct {
	srv    *Server
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	fr     frameReader
	sess   *buffer.Session
	tracer *reqtrace.Tracer // the pool's request tracer; nil when disabled
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:    s,
		nc:     nc,
		br:     bufio.NewReaderSize(&countingReader{nc: nc, n: &s.c.bytesIn}, s.cfg.ReadBufSize),
		bw:     bufio.NewWriterSize(&countingWriter{nc: nc, n: &s.c.bytesOut}, s.cfg.WriteBufSize),
		sess:   s.pool.NewSession(),
		tracer: s.pool.Tracer(),
	}
	c.fr.r = c.br
	return c
}

// countingReader/countingWriter fold socket byte counts into the server
// counters without another wrapper layer in the hot loop.
type countingReader struct {
	nc net.Conn
	n  *atomic.Int64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.nc.Read(p)
	r.n.Add(int64(n))
	return n, err
}

type countingWriter struct {
	nc net.Conn
	n  *atomic.Int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.nc.Write(p)
	w.n.Add(int64(n))
	return n, err
}

// serve is the connection's request loop. The batching contract: decode
// and answer every request already buffered before flushing responses or
// blocking for more bytes, so a pipelined burst that arrived in one
// kernel read is served as one batch through one session — and produces
// one response flush.
func (c *conn) serve() {
	s := c.srv
	defer func() {
		// Fold the session's batched accesses into its shard queues so a
		// vanished client's recorded history still reaches the policy.
		c.sess.Flush()
		c.flushBestEffort()
		c.nc.Close()
		s.unregister(c)
		s.wg.Done()
	}()
	for {
		code, reqID, payload, err := c.fr.next()
		if err != nil {
			// Clean EOF is a client hanging up between frames; anything
			// else — malformed frame, mid-frame cut, drain poke — retires
			// the connection too. Responses already produced are flushed
			// by the deferred path either way.
			if isFrameError(err) {
				s.c.badFrames.Add(1)
			}
			if s.state.Load() >= stateClosing {
				s.c.drainedConns.Add(1)
			}
			return
		}
		// Strip the trace-context extension: the flagged payload starts
		// with the client's 8-byte trace ID, adopted below so the pool's
		// spans for this request carry the client's trace.
		op := code &^ TraceFlag
		var tid uint64
		if code&TraceFlag != 0 {
			if len(payload) < 8 {
				// Either a truncated trace prefix or a legacy client using
				// a high code byte: indistinguishable, so answer and close
				// like any unknown opcode.
				c.respondBad(reqID, "trace context requires an 8-byte prefix")
				c.flush()
				return
			}
			tid = be.Uint64(payload)
			payload = payload[8:]
		}
		s.c.inflight.Add(1)
		var t0 int64
		if tid != 0 && c.tracer != nil {
			t0 = c.tracer.Now()
		}
		start := time.Now()
		ok := c.handle(op, reqID, payload, tid)
		if op > 0 && op < opMax && s.c.lat[op] != nil {
			s.c.lat[op].RecordTraced(time.Since(start), tid)
		}
		if tid != 0 && c.tracer != nil {
			// The server-op span covers decode-to-response for the whole
			// request, bracketing the pool spans the adopted trace emitted.
			c.tracer.Emit(reqtrace.Span{
				Trace: tid, Phase: reqtrace.PhaseServer, Shard: -1,
				Flags: reqtrace.FlagRemote,
				Start: t0, Dur: c.tracer.Now() - t0,
				Arg1: uint64(op), Arg2: reqID,
			})
		}
		s.c.inflight.Add(-1)
		if !ok {
			return // unknown opcode after BadRequest response: resync is impossible
		}
		if c.br.Buffered() == 0 {
			if !c.flush() {
				return
			}
		}
	}
}

// handle dispatches one request and writes its response into the write
// buffer. It returns false when the connection cannot continue (the
// opcode was unknown, so frame alignment is unprovable). tid, when
// non-zero, is the client's propagated trace ID, adopted for the pool
// access so one trace spans client, server, pool, and device.
func (c *conn) handle(code byte, reqID uint64, payload []byte, tid uint64) bool {
	s := c.srv
	if code > 0 && code < opMax {
		s.c.reqs[code].Add(1)
	}
	// Past the drain grace nothing is applied: buffered requests get a
	// typed DRAINING answer so pipelining clients can tell "refused" from
	// "vanished" — an acknowledged write is durable, a DRAINING one never
	// happened.
	if s.state.Load() >= stateClosing {
		c.respond(StatusDraining, reqID, []byte("server draining"))
		return true
	}
	switch code {
	case OpGet:
		if len(payload) != 8 {
			c.respondBad(reqID, "GET payload must be 8 bytes")
			return true
		}
		id := page.PageID(be.Uint64(payload))
		if tid != 0 {
			c.sess.SetNextTrace(tid)
		}
		ref, err := s.pool.Get(c.sess, id)
		if err != nil {
			c.respondErr(reqID, err)
			return true
		}
		c.respond(StatusOK, reqID, ref.Data())
		ref.Release()
	case OpPut:
		if len(payload) != putPayloadLen {
			c.respondBad(reqID, "PUT payload must be PageID + one page")
			return true
		}
		id := page.PageID(be.Uint64(payload))
		if tid != 0 {
			c.sess.SetNextTrace(tid)
		}
		ref, err := s.pool.GetWrite(c.sess, id)
		if err != nil {
			c.respondErr(reqID, err)
			return true
		}
		copy(ref.Data(), payload[8:])
		ref.MarkDirty()
		ref.Release()
		c.respond(StatusOK, reqID, nil)
	case OpInvalidate:
		if len(payload) != 8 {
			c.respondBad(reqID, "INVALIDATE payload must be 8 bytes")
			return true
		}
		id := page.PageID(be.Uint64(payload))
		if !id.Valid() {
			c.respondErr(reqID, storage.ErrInvalidPage)
			return true
		}
		if err := s.pool.Invalidate(id); err != nil {
			c.respondErr(reqID, err)
			return true
		}
		c.respond(StatusOK, reqID, nil)
	case OpFlush:
		c.sess.Flush()
		n, err := s.pool.FlushDirty()
		if err != nil {
			c.respondErr(reqID, err)
			return true
		}
		var cnt [8]byte
		be.PutUint64(cnt[:], uint64(n))
		c.respond(StatusOK, reqID, cnt[:])
	case OpStats:
		c.respond(StatusOK, reqID, s.remoteStatsPayload())
	default:
		c.respondBad(reqID, "unknown opcode")
		c.flush()
		return false
	}
	return true
}

// respond appends one response frame to the write buffer. A write
// deadline covers the append because bufio flushes implicitly when the
// buffer fills — the slow-reader backpressure bound must hold there too,
// not only on the explicit batch flush.
func (c *conn) respond(status byte, reqID uint64, payload []byte) {
	if status < statusMax {
		c.srv.c.resps[status].Add(1)
	}
	c.armWriteDeadline()
	var hdr [4 + frameHeaderLen]byte
	be.PutUint32(hdr[:4], uint32(frameHeaderLen+len(payload)))
	hdr[4] = status
	be.PutUint64(hdr[5:], reqID)
	c.bw.Write(hdr[:])  //nolint:errcheck // bufio errors are sticky; flush reports them
	c.bw.Write(payload) //nolint:errcheck
}

func (c *conn) respondErr(reqID uint64, err error) {
	c.respond(statusForErr(err), reqID, []byte(err.Error()))
}

func (c *conn) respondBad(reqID uint64, msg string) {
	c.srv.c.badFrames.Add(1)
	c.respond(StatusBadRequest, reqID, []byte(msg))
}

// flush pushes buffered responses to the socket under the write
// deadline. It reports false — and retires the connection — when the
// client is not draining its receive window fast enough.
func (c *conn) flush() bool {
	c.armWriteDeadline()
	if err := c.bw.Flush(); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			c.srv.c.writeTimeouts.Add(1)
		}
		return false
	}
	return true
}

// flushBestEffort is the deferred exit flush: bounded by a short
// deadline so a vanished client cannot hold the handler in its exit
// path.
func (c *conn) flushBestEffort() {
	c.nc.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	c.bw.Flush()                                                  //nolint:errcheck
}

func (c *conn) armWriteDeadline() {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t)) //nolint:errcheck
	}
}

// isFrameError reports whether a read-loop error indicates a framing
// violation rather than a closed/poked connection.
func isFrameError(err error) bool {
	return err != nil && (errors.Is(err, ErrMalformedFrame) || errors.Is(err, ErrFrameTooLarge))
}
