package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/control"
	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
	"bpwrapper/internal/trace"
	"bpwrapper/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment E19 — the self-tuning pool: the internal/control loop driving
// online resharding and policy hot-swap on workloads where the configured
// topology or policy is measurably wrong.
//
// Two deterministic phases, both replayed sequentially (one goroutine, one
// session, direct commits, controller Steps at a fixed access cadence), so
// the JSON document is byte-stable and lands in the repository as the CI
// drift baseline:
//
//   - reshard recovery: E14 measured SEQ losing hit ratio when sharding
//     fragments its sequence history (19.44% at 1 shard → 17.27% at 2+ on
//     the scan+point trace). Phase A starts the same trace on a 4-shard
//     pool and lets the controller compare the incumbent's unsharded ghost
//     score against the actual hit ratio: the fragmentation gap walks the
//     topology back down, and the recovered ratio is reported against both
//     static baselines. Acceptance: the tuned pool recovers at least half
//     of the measured loss.
//   - policy hot-swap: a cyclic loop over twice the frame budget is the
//     canonical anti-LRU trace — 2Q's queues evict every page just before
//     its reuse while LIRS pins a stable LIR set. Phase B configures 2Q,
//     lets the shadow ghost caches score the candidates on the sampled
//     stream, and reports the hit ratio before and after the controller
//     swaps the pool to the scorer's pick.

// Tuner phase tuning. Phase A reuses the E14 trace shape and frame budget
// (ShardHitFrames) so its baselines line up with BENCH_shard.json; the
// controller cadence and margins below are the experiment's configuration,
// not defaults.
const (
	tunerStepEvery   = 4096 // accesses between controller Steps
	tunerMaxPasses   = 6    // tuning passes before the measurement pass
	tunerSampleRate  = 1    // full-stream shadow: SEQ's sequence detection needs unbroken runs, which spatial subsampling would scatter
	tunerGapMargin   = 0.01 // ghost-vs-actual gap that shrinks the topology
	tunerLoopPages   = 512  // phase B loop length
	tunerLoopFrames  = 256  // phase B frame budget (half the loop)
	tunerLoopPasses  = 8    // phase B tuning passes
	tunerLoopTable   = 77   // table id of the loop pages
	tunerSwapPat     = 2    // phase B swap patience (Steps)
	tunerSwapMargin  = 0.05
	tunerLoopSamples = 1 // phase B samples every access: full-stream shadows
)

// TunerAction is one controller actuation, tagged with the tuning pass it
// happened in.
type TunerAction struct {
	Pass   int    `json:"pass"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// TunerReshardPhase is phase A: reshard recovery under sequential load.
type TunerReshardPhase struct {
	Policy         string        `json:"policy"`
	StartShards    int           `json:"start_shards"`
	FinalShards    int           `json:"final_shards"`
	Baseline1      float64       `json:"baseline_1shard_hit_ratio"`
	BaselineStart  float64       `json:"baseline_4shard_hit_ratio"`
	TunedRatio     float64       `json:"tuned_hit_ratio"`
	RecoveredFrac  float64       `json:"recovered_fraction"`
	Actions        []TunerAction `json:"actions"`
	MeasuredAccess int64         `json:"measured_accesses"`
}

// TunerSwapPhase is phase B: policy hot-swap on an anti-LRU loop.
type TunerSwapPhase struct {
	Configured     string        `json:"configured_policy"`
	FinalPolicy    string        `json:"final_policy"`
	LoopPages      int           `json:"loop_pages"`
	Frames         int           `json:"frames"`
	StaticRatio    float64       `json:"static_hit_ratio"`
	TunedRatio     float64       `json:"tuned_hit_ratio"`
	Actions        []TunerAction `json:"actions"`
	MeasuredAccess int64         `json:"measured_accesses"`
}

// TunerReport is the full E19 result.
type TunerReport struct {
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	HitFrames  int               `json:"hit_frames"`
	Reshard    TunerReshardPhase `json:"reshard"`
	Swap       TunerSwapPhase    `json:"swap"`
}

// TunerExperiment runs E19. Both phases are deterministic regardless of
// Options.Mode; only the seed is consulted.
func TunerExperiment(o Options) (*TunerReport, error) {
	o = o.withDefaults()
	rep := &TunerReport{
		Experiment: "tuner",
		Seed:       o.Seed,
		HitFrames:  ShardHitFrames,
	}
	reshard, err := tunerReshardPhase(o.Seed)
	if err != nil {
		return nil, err
	}
	rep.Reshard = reshard
	swap, err := tunerSwapPhase()
	if err != nil {
		return nil, err
	}
	rep.Swap = swap
	return rep, nil
}

// tunerTrace regenerates the E14 scan+point trace so the baselines line up
// with BENCH_shard.json.
func tunerTrace(seed int64) *trace.Trace {
	wl := scanMixWorkload{
		scanTable: workload.NewTable(1, 1<<22),
		scanLen:   200,
		point:     workload.NewZipf(workload.SyntheticConfig{Pages: 1 << 14, TxnLen: 24, TableID: 100}),
	}
	return trace.Record(wl, 8, shardHitTraceTxns, seed)
}

// replayPass drives one full pass of the trace through the pool, calling
// step (if non-nil) every tunerStepEvery accesses.
func replayPass(pool *buffer.Pool, s *buffer.Session, tr *trace.Trace, step func()) error {
	for i, a := range tr.Accesses {
		ref, err := pool.Get(s, a.Page)
		if err != nil {
			return fmt.Errorf("tuner replay: %w", err)
		}
		ref.Release()
		if step != nil && (i+1)%tunerStepEvery == 0 {
			s.Flush()
			step()
		}
	}
	s.Flush()
	return nil
}

// tunerReshardPhase runs phase A.
func tunerReshardPhase(seed int64) (TunerReshardPhase, error) {
	const policy = "seq"
	const startShards = 4
	tr := tunerTrace(seed)
	f := replacer.Factories()[policy]

	// Static baselines: the same replay on fixed 1- and 4-shard pools.
	base1, err := shardHitPoint(policy, f, 1, tr)
	if err != nil {
		return TunerReshardPhase{}, err
	}
	baseN, err := shardHitPoint(policy, f, startShards, tr)
	if err != nil {
		return TunerReshardPhase{}, err
	}

	pool := buffer.New(buffer.Config{
		Frames:        ShardHitFrames,
		Shards:        startShards,
		PolicyFactory: f,
		Wrapper:       core.Config{}, // direct commits: the phase measures history, not locks
		Device:        storage.NewNullDevice(),
	})
	defer pool.Close()
	ctl := control.New(control.Config{
		Pool:            pool,
		SampleRate:      tunerSampleRate,
		RingSize:        1 << 15,
		Candidates:      []string{policy}, // incumbent only: isolate the reshard rule
		GapMargin:       tunerGapMargin,
		ReshardCooldown: 2,
		MinShards:       1,
	})
	defer ctl.Stop()

	ph := TunerReshardPhase{
		Policy:        policy,
		StartShards:   startShards,
		Baseline1:     base1.HitRatio,
		BaselineStart: baseN.HitRatio,
		Actions:       []TunerAction{},
	}
	s := pool.NewSession()
	for pass := 0; pass < tunerMaxPasses && pool.Shards() > 1; pass++ {
		p := pass
		err := replayPass(pool, s, tr, func() {
			for _, a := range ctl.Step() {
				ph.Actions = append(ph.Actions, TunerAction{Pass: p, Kind: string(a.Kind), Detail: a.Detail})
			}
		})
		if err != nil {
			return TunerReshardPhase{}, err
		}
	}
	ph.FinalShards = pool.Shards()

	// Measurement pass against the settled topology, no controller Steps.
	before := pool.AccessStats()
	if err := replayPass(pool, s, tr, nil); err != nil {
		return TunerReshardPhase{}, err
	}
	after := pool.AccessStats()
	dHits := after.Hits - before.Hits
	dAcc := after.Accesses() - before.Accesses()
	ph.MeasuredAccess = dAcc
	if dAcc > 0 {
		ph.TunedRatio = float64(dHits) / float64(dAcc)
	}
	if gap := ph.Baseline1 - ph.BaselineStart; gap > 0 {
		ph.RecoveredFrac = (ph.TunedRatio - ph.BaselineStart) / gap
	}
	return ph, nil
}

// loopPass drives one cyclic pass over the phase B loop.
func loopPass(pool *buffer.Pool, s *buffer.Session, step func()) error {
	for i := 0; i < tunerLoopPages; i++ {
		id := page.NewPageID(tunerLoopTable, uint64(i)+1)
		ref, err := pool.Get(s, id)
		if err != nil {
			return fmt.Errorf("tuner loop: %w", err)
		}
		ref.Release()
	}
	s.Flush()
	if step != nil {
		step()
	}
	return nil
}

// tunerSwapPhase runs phase B.
func tunerSwapPhase() (TunerSwapPhase, error) {
	const configured = "2q"
	factories := replacer.Factories()

	// Static baseline: the configured policy, no controller; the last pass
	// is the steady-state ratio.
	static := buffer.New(buffer.Config{
		Frames:        tunerLoopFrames,
		PolicyFactory: factories[configured],
		Wrapper:       core.Config{},
		Device:        storage.NewNullDevice(),
	})
	ss := static.NewSession()
	var staticRatio float64
	for pass := 0; pass < tunerLoopPasses; pass++ {
		before := static.AccessStats()
		if err := loopPass(static, ss, nil); err != nil {
			static.Close()
			return TunerSwapPhase{}, err
		}
		after := static.AccessStats()
		if d := after.Accesses() - before.Accesses(); d > 0 {
			staticRatio = float64(after.Hits-before.Hits) / float64(d)
		}
	}
	static.Close()

	tuned := buffer.New(buffer.Config{
		Frames:        tunerLoopFrames,
		PolicyFactory: factories[configured],
		Wrapper:       core.Config{},
		Device:        storage.NewNullDevice(),
	})
	defer tuned.Close()
	ctl := control.New(control.Config{
		Pool:         tuned,
		SampleRate:   tunerLoopSamples,
		RingSize:     1 << 14,
		Candidates:   []string{"2q", "lirs", "clockpro"},
		SwapMargin:   tunerSwapMargin,
		SwapPatience: tunerSwapPat,
		MinWindow:    tunerLoopPages,
		MaxShards:    1, // single-shard phase: isolate the swap rule
	})
	defer ctl.Stop()

	ph := TunerSwapPhase{
		Configured:  configured,
		LoopPages:   tunerLoopPages,
		Frames:      tunerLoopFrames,
		StaticRatio: staticRatio,
		Actions:     []TunerAction{},
	}
	ts := tuned.NewSession()
	for pass := 0; pass < tunerLoopPasses; pass++ {
		p := pass
		err := loopPass(tuned, ts, func() {
			for _, a := range ctl.Step() {
				ph.Actions = append(ph.Actions, TunerAction{Pass: p, Kind: string(a.Kind), Detail: a.Detail})
			}
		})
		if err != nil {
			return TunerSwapPhase{}, err
		}
	}

	// Measurement pass: steady state under the swapped-in policy.
	before := tuned.AccessStats()
	if err := loopPass(tuned, ts, nil); err != nil {
		return TunerSwapPhase{}, err
	}
	after := tuned.AccessStats()
	if d := after.Accesses() - before.Accesses(); d > 0 {
		ph.TunedRatio = float64(after.Hits-before.Hits) / float64(d)
		ph.MeasuredAccess = d
	}
	ph.FinalPolicy = tuned.Stats().PerShard[0].Policy
	return ph, nil
}

// JSONTuner writes the report as the committed-baseline JSON document.
func JSONTuner(w io.Writer, rep *TunerReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintTuner renders both phases.
func PrintTuner(w io.Writer, rep *TunerReport) {
	fmt.Fprintln(w, "Self-tuning pool (E19) — controller vs misconfigured topology and policy")
	r := rep.Reshard
	fmt.Fprintf(w, "\nPhase A — reshard recovery (%s, scan+point trace, %d frames)\n", r.Policy, rep.HitFrames)
	fmt.Fprintf(w, "  static %d-shard baseline  %6.2f%%\n", r.StartShards, 100*r.BaselineStart)
	fmt.Fprintf(w, "  static 1-shard baseline  %6.2f%%\n", 100*r.Baseline1)
	fmt.Fprintf(w, "  tuned (final %d shards)   %6.2f%%  (recovered %.0f%% of the loss)\n",
		r.FinalShards, 100*r.TunedRatio, 100*r.RecoveredFrac)
	for _, a := range r.Actions {
		fmt.Fprintf(w, "    pass %d: %-13s %s\n", a.Pass, a.Kind, a.Detail)
	}
	s := rep.Swap
	fmt.Fprintf(w, "\nPhase B — policy hot-swap (loop of %d pages over %d frames)\n", s.LoopPages, s.Frames)
	fmt.Fprintf(w, "  static %-9s %6.2f%%\n", s.Configured, 100*s.StaticRatio)
	fmt.Fprintf(w, "  tuned  %-9s %6.2f%%\n", s.FinalPolicy, 100*s.TunedRatio)
	for _, a := range s.Actions {
		fmt.Fprintf(w, "    pass %d: %-13s %s\n", a.Pass, a.Kind, a.Detail)
	}
}

// CSVTuner writes both phases in long form.
func CSVTuner(w io.Writer, rep *TunerReport) error {
	if _, err := fmt.Fprintln(w, "phase,arm,policy,shards,hit_ratio"); err != nil {
		return err
	}
	r := rep.Reshard
	rows := []struct {
		phase, arm, policy string
		shards             int
		ratio              float64
	}{
		{"reshard", "static", r.Policy, r.StartShards, r.BaselineStart},
		{"reshard", "static", r.Policy, 1, r.Baseline1},
		{"reshard", "tuned", r.Policy, r.FinalShards, r.TunedRatio},
		{"swap", "static", rep.Swap.Configured, 1, rep.Swap.StaticRatio},
		{"swap", "tuned", rep.Swap.FinalPolicy, 1, rep.Swap.TunedRatio},
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.6f\n",
			row.phase, row.arm, row.policy, row.shards, row.ratio); err != nil {
			return err
		}
	}
	return nil
}
