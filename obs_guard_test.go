// The observability overhead guard: the flight recorder, lock profiling,
// and commit-shape distributions must stay off the per-access critical
// path. BenchmarkWrapperHitObs isolates the recorder's tax on the bare
// wrapper loop; TestObsOverheadGuard enforces the ≤3% budget on the
// system fast path (pool.Get) when explicitly asked to — timing
// assertions are opt-in so ordinary `go test ./...` stays
// machine-independent.
package bpwrapper_test

import (
	"math"
	"os"
	"strconv"
	"testing"

	"bpwrapper"
)

// obsGuardIDs is the hot set both guard variants cycle through.
func obsGuardIDs() []bpwrapper.PageID {
	ids := make([]bpwrapper.PageID, 1024)
	for i := range ids {
		ids[i] = bpwrapper.NewPageID(1, uint64(i))
	}
	return ids
}

// obsHitLoop drives the bare batched wrapper hit path — the narrowest
// loop the recorder sits on — with an optional flight recorder.
func obsHitLoop(b *testing.B, rec *bpwrapper.Recorder) {
	p, ok := bpwrapper.NewPolicy("2q", 1024)
	if !ok {
		b.Fatal("2q policy not registered")
	}
	w := bpwrapper.NewWrapper(p, bpwrapper.WrapperConfig{Batching: true, Events: rec})
	ids := obsGuardIDs()
	for _, id := range ids {
		p.Admit(id)
	}
	s := w.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%1024]
		s.Hit(id, bpwrapper.BufferTag{Page: id})
	}
	b.StopTimer()
	s.Flush()
}

// obsGetLoop drives the system fast path — pool.Get on a fully cached
// batched pool — with observability either off (no recorder, no registry)
// or fully on (per-shard flight recorders plus a registered exposition
// registry, exactly what `-obs` enables in bpbench/bpload).
func obsGetLoop(b *testing.B, obsOn bool) {
	policy, ok := bpwrapper.NewPolicy("2q", 1024)
	if !ok {
		b.Fatal("2q policy not registered")
	}
	cfg := bpwrapper.PoolConfig{
		Frames:  1024,
		Policy:  policy,
		Wrapper: bpwrapper.WrapperConfig{Batching: true},
		Device:  bpwrapper.NewMemDevice(),
	}
	if obsOn {
		cfg.RecorderSize = 4096
	}
	pool := bpwrapper.NewPool(cfg)
	if obsOn {
		pool.RegisterObs(bpwrapper.NewObsRegistry())
	}
	ids := obsGuardIDs()
	if err := pool.Prewarm(ids); err != nil {
		b.Fatal(err)
	}
	s := pool.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := pool.Get(s, ids[i%1024])
		if err != nil {
			b.Fatal(err)
		}
		ref.Release()
	}
	b.StopTimer()
	s.Flush()
}

// BenchmarkWrapperHitObs measures the recorder's tax on the bare batched
// hit path: flight recorder attached vs detached. Lock profiling and the
// batch-size distribution are on in both cases — they are the production
// default — so the delta isolates the recorder's ring writes.
func BenchmarkWrapperHitObs(b *testing.B) {
	b.Run("recorder-off", func(b *testing.B) { obsHitLoop(b, nil) })
	b.Run("recorder-on", func(b *testing.B) { obsHitLoop(b, bpwrapper.NewRecorder(4096)) })
}

// BenchmarkPoolGetObs measures the same comparison on the system fast
// path, the quantity the guard below enforces.
func BenchmarkPoolGetObs(b *testing.B) {
	b.Run("obs-off", func(b *testing.B) { obsGetLoop(b, false) })
	b.Run("obs-on", func(b *testing.B) { obsGetLoop(b, true) })
}

// TestObsOverheadGuard asserts the obs-on pool.Get path is within the
// observability budget of the obs-off path. Timing-based, so it only
// runs when BPW_OBS_GUARD=1 (CI sets it in the bench-smoke job); the
// budget defaults to 3% and can be widened with BPW_OBS_GUARD_PCT for
// noisy hosts.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("BPW_OBS_GUARD") == "" {
		t.Skip("timing guard; set BPW_OBS_GUARD=1 to run")
	}
	pct := 3.0
	if s := os.Getenv("BPW_OBS_GUARD_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("BPW_OBS_GUARD_PCT: %v", err)
		}
		pct = v
	}

	// Best-of-N per variant to shed scheduler and frequency-scaling
	// noise: the minimum is the cleanest estimate of the true cost of a
	// tight uncontended loop.
	const rounds = 7
	best := func(obsOn bool) float64 {
		min := math.MaxFloat64
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(func(b *testing.B) { obsGetLoop(b, obsOn) })
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < min {
				min = ns
			}
		}
		return min
	}
	off := best(false)
	on := best(true)

	overhead := (on - off) / off * 100
	t.Logf("pool.Get: obs-off %.2f ns/op, obs-on %.2f ns/op, overhead %.2f%% (budget %.1f%%)", off, on, overhead, pct)
	if on > off*(1+pct/100) {
		t.Errorf("observability overhead %.2f%% exceeds %.1f%% budget", overhead, pct)
	}
}
