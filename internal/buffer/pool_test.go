package buffer

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

func pid(n uint64) page.PageID { return page.NewPageID(1, n) }

func newTestPool(frames int, wcfg core.Config) *Pool {
	return New(Config{
		Frames:  frames,
		Policy:  replacer.NewLRU(frames),
		Wrapper: wcfg,
		Device:  storage.NewMemDevice(),
	})
}

func TestGetLoadsAndHits(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()

	ref, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	var want page.Page
	want.Stamp(pid(1))
	if string(ref.Data()[:16]) != string(want.Data[:16]) {
		t.Fatal("loaded page content wrong")
	}
	ref.Release()

	ref, err = p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.Release()

	// Hits are staged session-locally; Flush folds them into the shard
	// counters before the exact-count assertion.
	s.Flush()
	if h, m := p.AccessStats().Hits, p.AccessStats().Misses; h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 2, Policy: replacer.NewLRU(2), Device: dev})
	s := p.NewSession()

	ref, err := p.GetWrite(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.Data()[0] = 0x77
	ref.MarkDirty()
	ref.Release()

	// Force pid(1) out by filling the pool.
	for i := uint64(2); i <= 4; i++ {
		r, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}

	var back page.Page
	if err := dev.ReadPage(pid(1), &back); err != nil {
		t.Fatal(err)
	}
	if back.Data[0] != 0x77 {
		t.Fatal("dirty page not written back on eviction")
	}

	// Reloading must observe the modification.
	r, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Data()[0] != 0x77 {
		t.Fatal("reload lost the modification")
	}
	r.Release()
}

func TestPinnedPageNotEvicted(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()

	pinned, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	// pid(1) is LRU from here on, but it is pinned: the pool must always
	// reclaim the other frame, never the pinned one.
	r2, err := p.Get(s, pid(2))
	if err != nil {
		t.Fatal(err)
	}
	r2.Release()
	for i := uint64(3); i < 10; i++ {
		r, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	// The pinned reference must still be valid and correct.
	var want page.Page
	want.Stamp(pid(1))
	if string(pinned.Data()[:32]) != string(want.Data[:32]) {
		t.Fatal("pinned page was recycled")
	}
	pinned.Release()
}

func TestAllPinnedFails(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()
	r1, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Get(s, pid(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s, pid(3)); !errors.Is(err, ErrNoUnpinnedBuffers) {
		t.Fatalf("err=%v, want ErrNoUnpinnedBuffers", err)
	}
	r1.Release()
	r2.Release()
	// With pins gone the pool recovers.
	r3, err := p.Get(s, pid(3))
	if err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	r3.Release()
}

func TestReleasePanicsTwice(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()
	r, _ := p.Get(s, pid(1))
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release not detected")
		}
	}()
	r.Release()
}

func TestMarkDirtyOnReadRefPanics(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()
	r, _ := p.Get(s, pid(1))
	defer r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty on read-only ref not detected")
		}
	}()
	r.MarkDirty()
}

func TestInvalidate(t *testing.T) {
	p := newTestPool(4, core.Config{})
	s := p.NewSession()
	r, _ := p.GetWrite(s, pid(1))
	r.Data()[0] = 0xEE
	r.MarkDirty()

	if err := p.Invalidate(pid(1)); !errors.Is(err, ErrNoUnpinnedBuffers) {
		t.Fatalf("invalidating a pinned page: %v", err)
	}
	r.Release()
	if err := p.Invalidate(pid(1)); err != nil {
		t.Fatal(err)
	}
	// Dirty data must be discarded, not written back.
	r2, _ := p.Get(s, pid(1))
	if r2.Data()[0] == 0xEE {
		t.Fatal("invalidate leaked dirty data")
	}
	r2.Release()
	// Invalidating an absent page is a no-op.
	if err := p.Invalidate(pid(99)); err != nil {
		t.Fatal(err)
	}
}

func TestFlushDirty(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{Frames: 4, Policy: replacer.NewLRU(4), Device: dev})
	s := p.NewSession()
	for i := uint64(1); i <= 3; i++ {
		r, _ := p.GetWrite(s, pid(i))
		r.Data()[0] = byte(i)
		r.MarkDirty()
		r.Release()
	}
	n, err := p.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("flushed %d, want 3", n)
	}
	for i := uint64(1); i <= 3; i++ {
		var back page.Page
		dev.ReadPage(pid(i), &back)
		if back.Data[0] != byte(i) {
			t.Fatalf("page %d not flushed", i)
		}
	}
	// Second flush finds nothing dirty.
	if n, _ := p.FlushDirty(); n != 0 {
		t.Fatalf("second flush wrote %d", n)
	}
}

func TestPrewarmEliminatesMisses(t *testing.T) {
	p := newTestPool(64, core.Config{Batching: true})
	ids := make([]page.PageID, 64)
	for i := range ids {
		ids[i] = pid(uint64(i))
	}
	if err := p.Prewarm(ids); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	s := p.NewSession()
	for round := 0; round < 10; round++ {
		for _, id := range ids {
			r, err := p.Get(s, id)
			if err != nil {
				t.Fatal(err)
			}
			r.Release()
		}
	}
	s.Flush()
	if m := p.AccessStats().Misses; m != 0 {
		t.Fatalf("%d misses after prewarm", m)
	}
	if hr := p.AccessStats().HitRatio(); hr != 1 {
		t.Fatalf("hit ratio %v", hr)
	}
}

func TestConcurrentGetSamePage(t *testing.T) {
	p := newTestPool(8, core.Config{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.NewSession()
			for i := 0; i < 200; i++ {
				r, err := p.Get(s, pid(5))
				if err != nil {
					t.Error(err)
					return
				}
				if !r.Tag().Page.Valid() {
					t.Error("invalid tag on pinned ref")
				}
				r.Release()
			}
		}()
	}
	wg.Wait()
	// The page must have been read from the device exactly once.
	if reads := p.Device().Stats().Reads; reads != 1 {
		t.Fatalf("device reads=%d, want 1 (single-flight broken)", reads)
	}
}

func TestConcurrentChurnIntegrity(t *testing.T) {
	// Heavy concurrent access with far more pages than frames: every read
	// must observe either the stamp or the last written content.
	const frames = 32
	p := New(Config{
		Frames:  frames,
		Policy:  replacer.NewTwoQ(frames),
		Wrapper: core.Config{Batching: true, Prefetching: true, QueueSize: 16, BatchThreshold: 8},
		Device:  storage.NewMemDevice(),
	})
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			s := p.NewSession()
			defer s.Flush()
			for i := 0; i < 3000; i++ {
				id := pid(r.Uint64() % 200)
				if r.Intn(4) == 0 {
					ref, err := p.GetWrite(s, id)
					if err != nil {
						t.Error(err)
						return
					}
					// Deterministic overwrite: the page keeps its stamp
					// except byte 0 becomes 0xFF.
					ref.Data()[0] = 0xFF
					ref.MarkDirty()
					ref.Release()
				} else {
					ref, err := p.Get(s, id)
					if err != nil {
						t.Error(err)
						return
					}
					var want page.Page
					want.Stamp(id)
					d := ref.Data()
					if d[0] != 0xFF && d[0] != want.Data[0] {
						t.Errorf("page %v byte0=%x: torn content", id, d[0])
						ref.Release()
						return
					}
					if string(d[1:64]) != string(want.Data[1:64]) {
						t.Errorf("page %v tail corrupted", id)
						ref.Release()
						return
					}
					ref.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	if p.AccessStats().Accesses() != workers*3000 {
		t.Fatalf("accesses=%d", p.AccessStats().Accesses())
	}
}

func TestValidatorDropsRecycledFrames(t *testing.T) {
	// Stale queued entries are inherently cross-session: a session's own
	// miss commits its queue before evicting, but another session's miss
	// can recycle a frame that a first session has queued hits against.
	// The commit-time BufferTag validation (Section IV-B) must drop them.
	p := New(Config{
		Frames:  2,
		Policy:  replacer.NewLRU(2),
		Wrapper: core.Config{Batching: true, QueueSize: 32, BatchThreshold: 32},
		Device:  storage.NewMemDevice(),
	})
	s1 := p.NewSession()
	s2 := p.NewSession()

	// s1 loads X and queues hits on it.
	for i := 0; i < 4; i++ {
		r, err := p.Get(s1, pid(1))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	if s1.Pending() == 0 {
		t.Fatal("test setup: no hits queued")
	}

	// s2's misses evict X and recycle its frame.
	for i := uint64(2); i < 8; i++ {
		r, err := p.Get(s2, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}

	// s1's queued hits on X are now stale and must be dropped at commit.
	s1.Flush()
	st := p.Wrapper().Stats()
	if st.Dropped == 0 {
		t.Fatal("expected stale queued entries to be dropped")
	}
	if st.Committed+st.Dropped != st.Hits {
		t.Fatalf("committed(%d)+dropped(%d) != hits(%d)", st.Committed, st.Dropped, st.Hits)
	}
}

func TestPoolConfigValidation(t *testing.T) {
	dev := storage.NewMemDevice()
	for _, cfg := range []Config{
		{Frames: 0, Policy: replacer.NewLRU(4), Device: dev},
		{Frames: 4, Policy: nil, Device: dev},
		{Frames: 4, Policy: replacer.NewLRU(2), Device: dev}, // policy too small
		{Frames: 4, Policy: replacer.NewLRU(4), Device: nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGetInvalidPage(t *testing.T) {
	p := newTestPool(2, core.Config{})
	s := p.NewSession()
	if _, err := p.Get(s, page.InvalidPageID); err == nil {
		t.Fatal("invalid page id accepted")
	}
}

func TestClockPoolLockFreeHits(t *testing.T) {
	// The pgClock configuration: hits must not acquire the policy lock.
	p := New(Config{
		Frames:  16,
		Policy:  replacer.NewClock(16),
		Wrapper: core.Config{},
		Device:  storage.NewMemDevice(),
	})
	ids := make([]page.PageID, 16)
	for i := range ids {
		ids[i] = pid(uint64(i))
	}
	if err := p.Prewarm(ids); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	s := p.NewSession()
	for i := 0; i < 1000; i++ {
		r, err := p.Get(s, ids[i%16])
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	st := p.Wrapper().Stats()
	if st.Lock.Acquisitions != 0 {
		t.Fatalf("clock hit path acquired the lock %d times", st.Lock.Acquisitions)
	}
}

func TestPoolStatsSnapshot(t *testing.T) {
	p := newTestPool(8, core.Config{Batching: true})
	s := p.NewSession()
	for i := uint64(1); i <= 4; i++ {
		r, err := p.GetWrite(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.MarkDirty()
		r.Release()
	}
	r, _ := p.Get(s, pid(1))
	r.Release()
	s.Flush()

	st := p.Stats()
	if st.Frames != 8 {
		t.Errorf("frames %d", st.Frames)
	}
	if st.Free != 4 {
		t.Errorf("free %d, want 4", st.Free)
	}
	if st.Dirty != 4 {
		t.Errorf("dirty %d, want 4", st.Dirty)
	}
	if st.Resident != 4 {
		t.Errorf("resident %d, want 4", st.Resident)
	}
	if st.Hits != 1 || st.Misses != 4 {
		t.Errorf("hits/misses %d/%d", st.Hits, st.Misses)
	}
	if st.HitRatio != 0.2 {
		t.Errorf("hit ratio %v", st.HitRatio)
	}
	if st.Device.Reads != 4 {
		t.Errorf("device reads %d", st.Device.Reads)
	}
	if st.Wrapper.Accesses != 5 {
		t.Errorf("wrapper accesses %d", st.Wrapper.Accesses)
	}
}
