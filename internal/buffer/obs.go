// Exposition bridge: the pool walks its shards into an obs.Registry so
// that one /metrics scrape (or /debug/vars poll) sees every layer —
// per-shard lock contention, batch-size and combiner-run distributions,
// access counters, quarantine depth, write-back failures, flight-recorder
// pressure — plus the pool-level device counters. The dependency points
// one way only: buffer imports obs, never the reverse.
package buffer

import (
	"fmt"
	"strconv"
	"strings"

	"bpwrapper/internal/obs"
	"bpwrapper/internal/replacer"
)

// RegisterObs registers the pool's collectors and per-shard flight
// recorders with reg. Collection happens at scrape time and reads only
// lock-free snapshots, except the resident-page gauge (a brief policy-lock
// acquisition per shard, same as Stats) and the free-list gauge (the
// free-list mutex) — fine at scrape cadence, not meant for hot paths.
func (p *Pool) RegisterObs(reg *obs.Registry) {
	reg.Register(p.collect)
	// The request tracer (nil when tracing is off — RegisterTracer ignores
	// it) powers /debug/traces and the bpw_trace_* counters.
	reg.RegisterTracer("pool", p.tracer)
	set := p.cur.Load()
	for i, sh := range set.shards {
		if rec := sh.events; rec != nil {
			reg.RegisterRecorder(recorderName(set.epoch, i), rec)
		}
	}
	// Remember the registry so shards built by later reshards get their
	// recorders registered too (registerRecorders).
	p.obsMu.Lock()
	p.obsRegs = append(p.obsRegs, reg)
	p.obsMu.Unlock()
}

// recorderName labels a shard's flight recorder. Epoch 0 keeps the
// historical "shard N" names; later topologies are suffixed so a registry
// that outlives a reshard exposes both histories unambiguously.
func recorderName(epoch uint64, i int) string {
	if epoch == 0 {
		return fmt.Sprintf("shard %d", i)
	}
	return fmt.Sprintf("shard %d @e%d", i, epoch)
}

// registerRecorders wires a freshly built topology's flight recorders into
// every registry the pool was registered with (called by Reshard after
// publishing the new set).
func (p *Pool) registerRecorders(set *shardSet) {
	p.obsMu.Lock()
	regs := append([]*obs.Registry(nil), p.obsRegs...)
	p.obsMu.Unlock()
	for _, reg := range regs {
		for i, sh := range set.shards {
			if rec := sh.events; rec != nil {
				reg.RegisterRecorder(recorderName(set.epoch, i), rec)
			}
		}
	}
}

// collect emits the full metric tree. Series are labelled {shard="i"};
// pool-level series (shard count, device counters) carry no labels.
func (p *Pool) collect(emit func(obs.Metric)) {
	c := func(name, help string, labels [][2]string, v float64) {
		emit(obs.Metric{Name: name, Help: help, Type: obs.Counter, Labels: labels, Value: v})
	}
	g := func(name, help string, labels [][2]string, v float64) {
		emit(obs.Metric{Name: name, Help: help, Type: obs.Gauge, Labels: labels, Value: v})
	}

	set := p.cur.Load()
	g("bpw_shards", "hash partitions in the pool", nil, float64(len(set.shards)))
	g("bpw_pool_epoch", "current shard-topology epoch (bumped by each reshard)", nil, float64(set.epoch))
	resharding := 0.0
	if set.prev.Load() != nil {
		resharding = 1
	}
	g("bpw_resharding", "1 while a previous topology is still draining", nil, resharding)
	c("bpw_reshards_total", "completed online reshards", nil, float64(p.reshards.Load()))
	migrated := int64(0)
	_, _, retired := p.topologySnapshot()
	for _, sh := range p.liveShards() {
		migrated += sh.migratedOut.Load()
	}
	for _, sh := range retired {
		migrated += sh.migratedOut.Load()
	}
	c("bpw_pages_migrated_total", "pages carried across topologies by reshards", nil, float64(migrated))

	for i, sh := range set.shards {
		l := [][2]string{{"shard", strconv.Itoa(i)}}
		sh.wrapper.Locked(func(pol replacer.Policy) {
			g("bpw_policy_in_use", "replacement policy installed in the shard (value always 1)",
				append(l[:1:1], [2]string{"policy", pol.Name()}), 1)
		})
		ws := sh.wrapper.Stats()

		// Lock contention: scalar totals plus the sampled distributions.
		c("bpw_lock_acquisitions_total", "policy-lock acquisitions", l, float64(ws.Lock.Acquisitions))
		c("bpw_lock_contentions_total", "policy-lock acquisitions that blocked", l, float64(ws.Lock.Contentions))
		c("bpw_lock_try_failures_total", "failed TryLock attempts at the batch threshold", l, float64(ws.Lock.TryFailures))
		c("bpw_lock_wait_seconds_total", "total time blocked on the policy lock", l, ws.Lock.WaitTime.Seconds())
		c("bpw_lock_hold_seconds_total", "estimated total policy-lock holding time (sampled)", l, ws.Lock.HoldTime.Seconds())
		if lp := sh.wrapper.LockProfile(); lp != nil {
			if lp.Wait != nil {
				hs := lp.Wait.Snapshot()
				emit(obs.Metric{Name: "bpw_lock_wait_seconds", Help: "contended policy-lock wait time",
					Type: obs.Histogram, Labels: l, Hist: &hs})
			}
			if lp.Hold != nil {
				hs := lp.Hold.Snapshot()
				emit(obs.Metric{Name: "bpw_lock_hold_seconds", Help: "sampled policy-lock holding time",
					Type: obs.Histogram, Labels: l, Hist: &hs})
			}
		}

		// Commit-protocol activity (Sections III-A/III-B of the paper).
		c("bpw_accesses_total", "page accesses recorded through the wrapper", l, float64(ws.Accesses))
		c("bpw_commits_total", "commit rounds (lock-holding periods for hits)", l, float64(ws.Commits))
		c("bpw_committed_entries_total", "batched hit entries applied to the policy", l, float64(ws.Committed))
		c("bpw_dropped_entries_total", "hit entries dropped by commit-time validation", l, float64(ws.Dropped))
		c("bpw_forced_locks_total", "commits that needed a blocking lock (queue full)", l, float64(ws.ForcedLocks))
		c("bpw_try_commits_total", "commits obtained via TryLock at the threshold", l, float64(ws.TryCommits))
		c("bpw_combined_batches_total", "other sessions' batches applied by a combiner", l, float64(ws.CombinedBatches))
		c("bpw_combined_entries_total", "entries in combined batches", l, float64(ws.CombinedEntries))
		c("bpw_handoff_saved_total", "publishes handed to a combiner instead of blocking", l, float64(ws.HandoffSaved))
		bs := sh.wrapper.BatchSizes()
		emit(obs.Metric{Name: "bpw_batch_size", Help: "entries per committed batch",
			Type: obs.Histogram, Labels: l, Dist: &bs})
		cr := sh.wrapper.CombineRuns()
		emit(obs.Metric{Name: "bpw_combine_run_length", Help: "published batches drained per combiner run",
			Type: obs.Histogram, Labels: l, Dist: &cr})

		// Buffer-manager state.
		a := sh.counters.Snapshot()
		c("bpw_hits_total", "buffer hits", l, float64(a.Hits))
		c("bpw_misses_total", "buffer misses", l, float64(a.Misses))

		// Hit-path anatomy (DESIGN.md §12): a retry storm or a rising
		// fallback rate means the optimistic seqlock path is degrading
		// into the locked path, visible live here and in bpstat.
		c("bpw_hitpath_fast_total", "hits served with zero mutex acquisitions", l, float64(sh.hp.fast.Load()))
		c("bpw_hitpath_retries_total", "optimistic probes retried after a torn seqlock read", l, float64(sh.hp.retries.Load()))
		c("bpw_hitpath_fallbacks_total", "lookups that fell back to the bucket mutex", l, float64(sh.hp.fallbacks.Load()))
		c("bpw_bucket_lock_acquisitions_total", "bucket-mutex acquisitions on access paths", l, float64(sh.hp.bucketLocks.Load()))
		c("bpw_frame_lock_acquisitions_total", "frame write-mutex acquisitions", l, float64(sh.hp.frameLocks.Load()))
		g("bpw_frames", "page slots owned by the shard", l, float64(len(sh.frames)))
		sh.freeMu.Lock()
		free := len(sh.freeList)
		sh.freeMu.Unlock()
		g("bpw_free_frames", "slots on the free list", l, float64(free))
		g("bpw_dirty_pages", "dirty resident pages", l, float64(sh.dirtyCount()))
		g("bpw_quarantined_pages", "pages parked awaiting confirmed write-back", l, float64(sh.quarantineLen()))
		resident := 0
		sh.wrapper.Locked(func(pol replacer.Policy) { resident = pol.Len() })
		g("bpw_resident_pages", "pages tracked by the replacement policy", l, float64(resident))
		c("bpw_writeback_failures_total", "failed write-back attempts", l, float64(sh.writeBackFailures.Load()))

		// Health and graceful degradation. The gauge re-evaluates at
		// scrape time so a dashboard sees transitions even on an idle
		// shard (a miss would otherwise have to arrive first).
		g("bpw_health_state", "shard health: 0 healthy, 1 degraded, 2 read-only", l, float64(sh.evalHealth()))
		c("bpw_shed_total", "misses refused by admission control", l, float64(sh.shed.Load()))
		c("bpw_health_transitions_total", "health state changes", l, float64(sh.healthTransitions.Load()))
		c("bpw_quarantine_refusals_total", "dirty write-backs refused by the quarantine cap", l, float64(sh.quarRefusals.Load()))
		g("bpw_miss_inflight", "admitted misses currently in flight", l, float64(sh.missInflight.Load()))
		if sh.breaker != nil {
			bst := sh.breaker.BreakerStats()
			g("bpw_breaker_state", "circuit breaker: 0 closed, 1 open, 2 half-open", l, float64(bst.State))
			c("bpw_breaker_trips_total", "circuit-breaker trips", l, float64(bst.Trips))
			c("bpw_breaker_rejections_total", "operations rejected while open", l, float64(bst.Rejections))
			c("bpw_breaker_probes_total", "half-open probe operations", l, float64(bst.Probes))
			c("bpw_breaker_probe_failures_total", "probes that reopened the circuit", l, float64(bst.ProbeFails))
		}
		if sh.deadline != nil {
			c("bpw_deadline_timeouts_total", "device operations abandoned at their deadline", l, float64(sh.deadline.Timeouts()))
			c("bpw_deadline_canceled_total", "device operations canceled by stop", l, float64(sh.deadline.Canceled()))
		}
		c("bpw_combiner_panics_total", "panics contained inside combiner drains", l, float64(ws.CombinerPanics))

		// Flight-recorder pressure: how much history the ring has seen and
		// how much has scrolled out (or been torn) since startup.
		if rec := sh.events; rec != nil {
			c("bpw_flight_events_total", "events recorded by the flight recorder", l, float64(rec.Seq()))
			c("bpw_flight_dropped_total", "flight-recorder events overwritten or torn", l, float64(rec.Dropped()))
		}
	}

	ds := p.device.Stats()
	c("bpw_device_reads_total", "page reads issued to the device", nil, float64(ds.Reads))
	c("bpw_device_writes_total", "page writes issued to the device", nil, float64(ds.Writes))
	c("bpw_device_read_seconds_total", "wall time in ReadPage", nil, ds.ReadTime.Seconds())
	c("bpw_device_write_seconds_total", "wall time in WritePage", nil, ds.WriteTime.Seconds())
	c("bpw_device_read_errors_total", "failed page reads", nil, float64(ds.ReadErrors))
	c("bpw_device_write_errors_total", "failed page writes", nil, float64(ds.WriteErrors))
	c("bpw_device_retries_total", "retry attempts by a RetryDevice", nil, float64(ds.Retries))
	c("bpw_device_corrupt_pages_total", "checksum mismatches detected", nil, float64(ds.CorruptPages))
}

// RegisterObs adds the background writer's counters to reg under the
// bpw_bgwriter_* names.
func (w *BackgroundWriter) RegisterObs(reg *obs.Registry) {
	reg.Register(func(emit func(obs.Metric)) {
		s := w.Stats()
		for _, m := range []struct {
			name, help string
			v          int64
		}{
			{"bpw_bgwriter_rounds_total", "completed write-back rounds", s.Rounds},
			{"bpw_bgwriter_written_total", "pages made durable by the writer", s.Written},
			{"bpw_bgwriter_write_failures_total", "failed background write attempts", s.WriteFailures},
			{"bpw_bgwriter_backoff_rounds_total", "rounds that triggered backoff", s.BackoffRounds},
			{"bpw_bgwriter_panic_recoveries_total", "round panics contained by the writer", s.PanicRecoveries},
		} {
			emit(obs.Metric{Name: m.name, Help: m.help, Type: obs.Counter, Value: float64(m.v)})
		}
	})
}

// FlightDump renders every shard's flight recorder as text, newest last,
// for failure reports (Close errors, torture-oracle dumps). It returns ""
// when recording is disabled, so callers can append it unconditionally.
func (p *Pool) FlightDump() string {
	var sb strings.Builder
	set := p.cur.Load()
	for i, sh := range set.shards {
		if rec := sh.events; rec != nil {
			sb.WriteString(rec.DumpString(recorderName(set.epoch, i)))
		}
	}
	if prev := set.prev.Load(); prev != nil {
		for i, sh := range prev.shards {
			if rec := sh.events; rec != nil {
				sb.WriteString(rec.DumpString(recorderName(prev.epoch, i) + " (draining)"))
			}
		}
	}
	return sb.String()
}
