package core

import (
	"testing"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// White-box tests for the adaptive-threshold state machine: exact step
// sizes, the [QueueSize/8, 3·QueueSize/4] clamp band, the 8-run trial
// counter behind adaptUp, and the paths that must NOT adapt (Flush).

func adaptiveSession(queueSize, threshold int) *Session {
	w := New(replacer.NewLRU(64), Config{
		Batching: true, AdaptiveThreshold: true,
		QueueSize: queueSize, BatchThreshold: threshold,
	})
	return w.NewSession()
}

func TestAdaptDownStepAndFloor(t *testing.T) {
	s := adaptiveSession(32, 16)
	// Each forced commit steps down by QueueSize/8 = 4.
	for i, want := range []int{12, 8, 4, 4, 4} {
		s.adaptDown()
		if got := s.Threshold(); got != want {
			t.Fatalf("after %d adaptDown calls: threshold=%d, want %d", i+1, got, want)
		}
	}
}

func TestAdaptUpNeedsEightTrialRuns(t *testing.T) {
	s := adaptiveSession(32, 8)
	for i := 0; i < 7; i++ {
		s.adaptUp()
		if got := s.Threshold(); got != 8 {
			t.Fatalf("threshold moved to %d after only %d trial runs", got, i+1)
		}
	}
	s.adaptUp() // 8th consecutive first-attempt success
	if got := s.Threshold(); got != 9 {
		t.Fatalf("threshold=%d after 8 trial runs, want 9", got)
	}
	// The counter must reset: another single success is not enough.
	s.adaptUp()
	if got := s.Threshold(); got != 9 {
		t.Fatalf("threshold=%d: trial counter did not reset after a bump", got)
	}
}

func TestAdaptUpCeiling(t *testing.T) {
	s := adaptiveSession(32, 8)
	for i := 0; i < 8*40; i++ { // far more than needed to reach the ceiling
		s.adaptUp()
	}
	if got, want := s.Threshold(), 3*32/4; got != want {
		t.Fatalf("threshold=%d, want ceiling %d", got, want)
	}
}

func TestAdaptDownResetsTrialRuns(t *testing.T) {
	s := adaptiveSession(32, 16)
	for i := 0; i < 7; i++ {
		s.adaptUp()
	}
	s.adaptDown() // a forced commit interrupts the run
	if got := s.Threshold(); got != 12 {
		t.Fatalf("threshold=%d after adaptDown, want 12", got)
	}
	s.adaptUp() // would be the 8th without the reset
	if got := s.Threshold(); got != 12 {
		t.Fatalf("threshold=%d: trial run survived a forced commit", got)
	}
}

func TestAdaptTinyQueueClampsToOne(t *testing.T) {
	s := adaptiveSession(4, 2) // floor QueueSize/8 = 0 → clamps to 1
	for i := 0; i < 10; i++ {
		s.adaptDown()
	}
	if got := s.Threshold(); got != 1 {
		t.Fatalf("threshold=%d on a tiny queue, want floor 1", got)
	}
}

func TestAdaptNoopWhenDisabled(t *testing.T) {
	w := New(replacer.NewLRU(64), Config{Batching: true, QueueSize: 32, BatchThreshold: 16})
	s := w.NewSession()
	s.adaptDown()
	s.adaptUp()
	if got := s.Threshold(); got != 16 {
		t.Fatalf("threshold=%d moved with AdaptiveThreshold disabled", got)
	}
}

// TestFlushDoesNotAdapt: Flush is a voluntary drain, not a contention
// signal — it must neither lower the threshold nor count as (or disturb) a
// first-attempt TryLock success run.
func TestFlushDoesNotAdapt(t *testing.T) {
	s := adaptiveSession(32, 16)
	for i := 0; i < 7; i++ {
		s.adaptUp() // mid-run: one success short of a bump
	}
	s.queue = append(s.queue, Entry{ID: pid(1)}) // something to flush
	s.w.Policy().Admit(pid(1))
	s.Flush()
	if got := s.Threshold(); got != 16 {
		t.Fatalf("threshold=%d after Flush, want 16 (unchanged)", got)
	}
	if s.trialRuns != 7 {
		t.Fatalf("trialRuns=%d after Flush, want 7 (undisturbed)", s.trialRuns)
	}
	s.adaptUp() // completing the run must still bump
	if got := s.Threshold(); got != 17 {
		t.Fatalf("threshold=%d, want 17", got)
	}
}

// TestAdaptiveWithFlatCombining: the flat-combining commit path feeds the
// same state machine — first-attempt publish+TryLock successes count as
// trial runs, and the bounded-memory fall-back steps the threshold down.
func TestAdaptiveWithFlatCombining(t *testing.T) {
	w := New(replacer.NewLRU(64), Config{
		Batching: true, FlatCombining: true, AdaptiveThreshold: true,
		QueueSize: 32, BatchThreshold: 8,
	})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})

	// Uncontended: every threshold crossing publishes and wins the lock on
	// the first try; after 8 such commits the threshold moves up.
	for round := 0; round < 8; round++ {
		thr := s.Threshold() // snapshot: the 8th commit bumps it mid-round
		for i := 0; i < thr; i++ {
			s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		}
	}
	if got := s.Threshold(); got != 9 {
		t.Fatalf("threshold=%d after 8 uncontended FC commits, want 9", got)
	}

	// Contended until both buffers fill: the forced fall-back must adapt
	// down from wherever the threshold sits.
	release := holdLock(w)
	for i := 0; i < 9+32-1; i++ { // publish 9, then fill the 32-entry queue
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	release()
	s.Hit(pid(1), page.BufferTag{Page: pid(1)}) // queue full → forced commit
	if got, want := s.Threshold(), 9-32/8; got != want {
		t.Fatalf("threshold=%d after FC forced commit, want %d", got, want)
	}
	if st := w.Stats(); st.ForcedLocks != 1 {
		t.Fatalf("forcedLocks=%d, want 1", st.ForcedLocks)
	}
}
