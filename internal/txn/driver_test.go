package txn

import (
	"testing"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/core"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
	"bpwrapper/internal/workload"
)

func testPool(frames int, policy replacer.Policy, wcfg core.Config) *buffer.Pool {
	return buffer.New(buffer.Config{
		Frames:  frames,
		Policy:  policy,
		Wrapper: wcfg,
		Device:  storage.NewMemDevice(),
	})
}

func TestRunBasic(t *testing.T) {
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 200, TxnLen: 10})
	pool := testPool(200, replacer.NewTwoQ(200), core.Config{Batching: true})
	if err := pool.Prewarm(w.Pages()); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pool:          pool,
		Workload:      w,
		Workers:       4,
		TxnsPerWorker: 100,
		Seed:          1,
		TouchBytes:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 400 {
		t.Fatalf("txns=%d, want 400", res.Txns)
	}
	if res.Accesses != 4000 {
		t.Fatalf("accesses=%d, want 4000", res.Accesses)
	}
	if res.ThroughputTPS <= 0 {
		t.Fatal("zero throughput")
	}
	if res.Response.Count != 400 {
		t.Fatalf("response samples=%d", res.Response.Count)
	}
	if res.Response.Mean <= 0 {
		t.Fatal("zero mean response time")
	}
	if res.HitRatio != 1 {
		t.Fatalf("hit ratio %v after prewarm", res.HitRatio)
	}
}

func TestRunDuration(t *testing.T) {
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 100, TxnLen: 5})
	pool := testPool(100, replacer.NewLRU(100), core.Config{})
	pool.Prewarm(w.Pages())
	start := time.Now()
	res, err := Run(Config{
		Pool:     pool,
		Workload: w,
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 100*time.Millisecond || e > 3*time.Second {
		t.Fatalf("run took %v for a 100ms budget", e)
	}
	if res.Txns == 0 {
		t.Fatal("no transactions completed")
	}
}

func TestRunValidation(t *testing.T) {
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 10})
	pool := testPool(10, replacer.NewLRU(10), core.Config{})
	if _, err := Run(Config{Pool: pool, Workload: w}); err == nil {
		t.Fatal("missing stop condition accepted")
	}
	if _, err := Run(Config{Workload: w, Duration: time.Millisecond}); err == nil {
		t.Fatal("missing pool accepted")
	}
	if _, err := Run(Config{Pool: pool, Duration: time.Millisecond}); err == nil {
		t.Fatal("missing workload accepted")
	}
}

func TestRunWithMisses(t *testing.T) {
	// Buffer far smaller than data: the driver must survive constant
	// eviction traffic and report a believable hit ratio.
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 2000, TxnLen: 10})
	pool := testPool(100, replacer.NewTwoQ(100), core.Config{Batching: true, Prefetching: true})
	res, err := Run(Config{
		Pool:          pool,
		Workload:      w,
		Workers:       4,
		TxnsPerWorker: 200,
		Seed:          3,
		TouchBytes:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio <= 0 || res.HitRatio >= 1 {
		t.Fatalf("hit ratio %v, want in (0,1)", res.HitRatio)
	}
	if res.Wrapper.Misses == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestRunContentionMetrics(t *testing.T) {
	// Unbatched 2Q under heavy concurrency must record lock contention;
	// that is the paper's whole premise.
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 500, TxnLen: 20})
	pool := testPool(500, replacer.NewTwoQ(500), core.Config{})
	pool.Prewarm(w.Pages())
	res, err := Run(Config{
		Pool:          pool,
		Workload:      w,
		Workers:       8,
		Procs:         4,
		TxnsPerWorker: 500,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wrapper.Lock.Acquisitions == 0 {
		t.Fatal("no lock acquisitions on the unbatched path")
	}
	if res.LockTimePerAccess <= 0 {
		t.Fatal("no lock time recorded")
	}
}

func TestDefaultWorkers(t *testing.T) {
	w := workload.NewZipf(workload.SyntheticConfig{Pages: 50, TxnLen: 2})
	pool := testPool(50, replacer.NewLRU(50), core.Config{})
	res, err := Run(Config{
		Pool:          pool,
		Workload:      w,
		Procs:         2,
		TxnsPerWorker: 10,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 {
		t.Fatalf("workers=%d, want 2×procs=4", res.Workers)
	}
}
