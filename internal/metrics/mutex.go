// Package metrics provides the measurement machinery used throughout the
// BP-Wrapper reproduction: a contention-instrumented mutex matching the
// paper's lock-contention definition, cheap atomic counters, and latency
// histograms for response-time reporting.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// ContentionMutex is a mutual-exclusion lock that counts how often a lock
// request could not be satisfied immediately, which is exactly the paper's
// definition of a lock contention ("a lock request cannot be immediately
// satisfied and a process context switch occurs", Section IV-D).
//
// Lock first attempts a non-blocking acquisition; if that fails it records
// one contention event, blocks, and accumulates the time spent waiting.
// Hold time is accumulated between a successful acquisition and the matching
// Unlock so that experiments can report average lock-holding time per
// access (Figure 2).
//
// The zero value is an unlocked mutex ready for use.
type ContentionMutex struct {
	mu sync.Mutex

	acquisitions atomic.Int64 // successful Lock/TryLock acquisitions
	contentions  atomic.Int64 // Lock calls that had to block
	tryFailures  atomic.Int64 // TryLock calls that returned false
	waitNanos    atomic.Int64 // total time blocked in Lock
	holdNanos    atomic.Int64 // total time between acquisition and Unlock

	// lockedAt is written only by the lock holder (between acquisition and
	// Unlock), so a plain field would be unsynchronized with the *next*
	// holder; an atomic keeps the race detector quiet at negligible cost.
	lockedAt atomic.Int64
}

// Lock acquires the mutex, recording a contention event if the lock was not
// immediately available.
func (m *ContentionMutex) Lock() {
	if m.mu.TryLock() {
		m.acquisitions.Add(1)
		m.lockedAt.Store(time.Now().UnixNano())
		return
	}
	m.contentions.Add(1)
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	m.waitNanos.Add(now.Sub(start).Nanoseconds())
	m.acquisitions.Add(1)
	m.lockedAt.Store(now.UnixNano())
}

// TryLock attempts to acquire the mutex without blocking and reports whether
// it succeeded. Failed attempts are counted separately from contentions:
// in the BP-Wrapper protocol a failed TryLock is an expected, cheap outcome
// (the access stays queued), not a blocking event.
func (m *ContentionMutex) TryLock() bool {
	if m.mu.TryLock() {
		m.acquisitions.Add(1)
		m.lockedAt.Store(time.Now().UnixNano())
		return true
	}
	m.tryFailures.Add(1)
	return false
}

// Unlock releases the mutex, accumulating the hold time since acquisition.
func (m *ContentionMutex) Unlock() {
	m.holdNanos.Add(time.Now().UnixNano() - m.lockedAt.Load())
	m.mu.Unlock()
}

// LockStats is a snapshot of a ContentionMutex's counters.
type LockStats struct {
	Acquisitions int64         // successful acquisitions (Lock + TryLock)
	Contentions  int64         // Lock calls that blocked
	TryFailures  int64         // TryLock calls that failed
	WaitTime     time.Duration // total time blocked in Lock
	HoldTime     time.Duration // total time the lock was held
}

// Plus returns the field-wise sum of two snapshots, for aggregating the
// per-shard policy locks of a sharded pool into one figure.
func (s LockStats) Plus(o LockStats) LockStats {
	s.Acquisitions += o.Acquisitions
	s.Contentions += o.Contentions
	s.TryFailures += o.TryFailures
	s.WaitTime += o.WaitTime
	s.HoldTime += o.HoldTime
	return s
}

// Stats returns a snapshot of the mutex's counters. It may be called
// concurrently with lock operations; the fields are individually consistent.
func (m *ContentionMutex) Stats() LockStats {
	return LockStats{
		Acquisitions: m.acquisitions.Load(),
		Contentions:  m.contentions.Load(),
		TryFailures:  m.tryFailures.Load(),
		WaitTime:     time.Duration(m.waitNanos.Load()),
		HoldTime:     time.Duration(m.holdNanos.Load()),
	}
}

// Reset zeroes all counters. It must not be called while the mutex is held
// or being acquired.
func (m *ContentionMutex) Reset() {
	m.acquisitions.Store(0)
	m.contentions.Store(0)
	m.tryFailures.Store(0)
	m.waitNanos.Store(0)
	m.holdNanos.Store(0)
}

// ContentionPerMillion converts raw contention and access counts into the
// paper's reporting unit: lock contentions per million page accesses.
func ContentionPerMillion(contentions, accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(contentions) * 1e6 / float64(accesses)
}
