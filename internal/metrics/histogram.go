package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram. Buckets grow geometrically
// from Min to Max; values outside the range are clamped into the first or
// last bucket. It is safe for concurrent use by multiple recorders.
//
// Response-time reporting in the paper (Figures 6 and 7) needs only the
// mean, but percentiles are cheap to provide and useful for examples.
type Histogram struct {
	mu      sync.Mutex
	min     float64 // lower bound of bucket 0, nanoseconds
	growth  float64 // geometric growth factor between buckets
	buckets []int64
	count   int64
	sum     float64 // nanoseconds
	maxSeen float64
	minSeen float64

	// exemplars holds at most one traced observation per bucket (newest
	// wins), following the OpenMetrics exemplar model: a scrape can point
	// from a latency bucket straight to a request trace. Allocated lazily
	// by the first RecordTraced, so untraced histograms pay nothing.
	exemplars map[int]Exemplar
}

// Exemplar pairs one observation with the request trace that produced it.
type Exemplar struct {
	Value   time.Duration
	TraceID uint64
	At      time.Time
}

// NewHistogram creates a histogram covering [min, max] with the given number
// of geometric buckets. It panics on nonsensical arguments so that
// misconfiguration fails fast in tests rather than silently mis-binning.
func NewHistogram(min, max time.Duration, buckets int) *Histogram {
	if min <= 0 || max <= min || buckets < 2 {
		panic(fmt.Sprintf("metrics: invalid histogram bounds [%v, %v] x %d", min, max, buckets))
	}
	lo, hi := float64(min.Nanoseconds()), float64(max.Nanoseconds())
	return &Histogram{
		min:     lo,
		growth:  math.Pow(hi/lo, 1/float64(buckets)),
		buckets: make([]int64, buckets),
		minSeen: math.Inf(1),
	}
}

// NewLatencyHistogram returns a histogram with bounds suitable for
// transaction response times in the simulator: 100 ns to 100 s.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100*time.Nanosecond, 100*time.Second, 120)
}

// bucketIndex bins one observation (in nanoseconds) into its bucket.
func (h *Histogram) bucketIndex(ns float64) int {
	idx := 0
	if ns > h.min {
		idx = int(math.Log(ns/h.min) / math.Log(h.growth))
		// Floating-point log can land an exact bucket boundary on either
		// side of the integer; re-check against the computed bucket's
		// bounds and shift by one if needed so binning is exact.
		if idx < len(h.buckets)-1 && ns > h.min*math.Pow(h.growth, float64(idx+1)) {
			idx++
		}
		if idx > 0 && ns <= h.min*math.Pow(h.growth, float64(idx)) {
			idx--
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	return idx
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.RecordTraced(d, 0)
}

// RecordTraced adds one observation and, when traceID is non-zero, stores
// it as the exemplar of its bucket — so a scrape of the histogram can link
// the bucket to a concrete request trace. A zero traceID is a plain Record.
func (h *Histogram) RecordTraced(d time.Duration, traceID uint64) {
	ns := float64(d.Nanoseconds())
	idx := h.bucketIndex(ns)
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += ns
	if ns > h.maxSeen {
		h.maxSeen = ns
	}
	if ns < h.minSeen {
		h.minSeen = ns
	}
	if traceID != 0 {
		if h.exemplars == nil {
			h.exemplars = make(map[int]Exemplar)
		}
		h.exemplars[idx] = Exemplar{Value: d, TraceID: traceID, At: time.Now()}
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of the recorded observations, or 0 if none.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Max returns the largest recorded observation, or 0 if none.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.maxSeen)
}

// Min returns the smallest recorded observation, or 0 if none.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.minSeen)
}

// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1) using the
// geometric upper bound of the bucket containing the quantile rank. The
// extremes are exact: Quantile(0) is the smallest observation and
// Quantile(1) the largest, so single-bucket histograms report their true
// range instead of a bucket bound. An empty histogram returns 0 for any q.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q == 0 {
		return time.Duration(h.minSeen)
	}
	if q == 1 {
		return time.Duration(h.maxSeen)
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			upper := h.min * math.Pow(h.growth, float64(i+1))
			// Clamp the bucket bound into the observed range: values are
			// clamped into the edge buckets at Record time, so the
			// geometric bound can overshoot maxSeen or (for observations
			// below the histogram floor) undershoot minSeen.
			if upper > h.maxSeen {
				upper = h.maxSeen
			}
			if upper < h.minSeen {
				upper = h.minSeen
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.maxSeen)
}

// Merge adds other's observations into h. Both histograms must have been
// created with identical bounds and bucket counts; Merge panics otherwise.
// It is the cheap way to combine per-worker histograms after a run without
// sharing one lock during it.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	defer other.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.min != other.min || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		panic("metrics: Merge of histograms with different geometry")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.maxSeen > h.maxSeen {
			h.maxSeen = other.maxSeen
		}
		if other.minSeen < h.minSeen {
			h.minSeen = other.minSeen
		}
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.maxSeen = 0
	h.minSeen = math.Inf(1)
	h.exemplars = nil
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets,
// shaped for exposition: Bounds[i] is the inclusive upper bound of
// Counts[i], and Sum is the total of all observations.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Count  int64
	Sum    time.Duration

	// Exemplars maps bucket index → the newest traced observation that
	// landed there; nil when the histogram never saw a traced record.
	Exemplars map[int]Exemplar
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) from the snapshot's
// buckets, returning the upper bound of the bucket containing the
// quantile rank. Unlike Histogram.Quantile it has no min/max refinement —
// snapshots carry buckets only — so it is an exposition-grade figure: the
// same number a Prometheus histogram_quantile would derive from the
// bucket series. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the histogram's current contents for exposition (e.g.
// Prometheus bucket output). Trailing empty buckets are trimmed to keep
// scrape payloads small; the full geometry is recoverable from the bounds.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	last := -1
	for i, c := range h.buckets {
		if c != 0 {
			last = i
		}
	}
	s := HistogramSnapshot{
		Bounds: make([]time.Duration, last+1),
		Counts: make([]int64, last+1),
		Count:  h.count,
		Sum:    time.Duration(h.sum),
	}
	for i := 0; i <= last; i++ {
		s.Bounds[i] = time.Duration(h.min * math.Pow(h.growth, float64(i+1)))
		s.Counts[i] = h.buckets[i]
	}
	if len(h.exemplars) > 0 {
		s.Exemplars = make(map[int]Exemplar, len(h.exemplars))
		for i, e := range h.exemplars {
			if i <= last {
				s.Exemplars[i] = e
			}
		}
	}
	return s
}

// Summary describes a distribution compactly for reports.
type Summary struct {
	Count          int64
	Mean, P50, P99 time.Duration
	MinVal, MaxVal time.Duration
}

// Summarize returns a Summary of the histogram's current contents.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.Count(),
		Mean:   h.Mean(),
		P50:    h.Quantile(0.50),
		P99:    h.Quantile(0.99),
		MinVal: h.Min(),
		MaxVal: h.Max(),
	}
}

// SortDurations sorts a slice of durations ascending; a small helper for
// exact-percentile computations in tests and tools.
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
