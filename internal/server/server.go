package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/page"
)

// Config assembles a Server.
type Config struct {
	// Pool is the buffer pool the server fronts. Required. The server
	// does not own the pool's lifecycle except during Drain, which
	// lowers the read-only floor and ends with Pool.CloseWithin.
	Pool *buffer.Pool

	// Addr is the TCP listen address; ":0" picks a free port (tests).
	Addr string

	// MaxConns bounds concurrently served connections; excess accepts
	// are closed immediately and counted. Zero means 1024.
	MaxConns int

	// WriteTimeout bounds how long one response write may block on a
	// slow or vanished reader before the connection is abandoned — the
	// per-connection backpressure valve that keeps one stuck client
	// from parking a handler goroutine forever. Zero means 10s.
	WriteTimeout time.Duration

	// ReadBufSize and WriteBufSize size the per-connection buffers.
	// The read buffer is the batching window: every request the kernel
	// delivered in one syscall is decoded and served before responses
	// are flushed. Zero means 32 KB read, 64 KB write.
	ReadBufSize  int
	WriteBufSize int

	// DrainGrace is how long Drain keeps serving after lowering the
	// pool's read-only floor, so in-flight clients finish their tails
	// against resident pages before connections are retired. Zero
	// means 50ms.
	DrainGrace time.Duration
}

// Connection/server lifecycle states.
const (
	stateRunning  int32 = iota
	stateDraining       // listener closed, pool read-only, grace running
	stateClosing        // grace over: remaining requests answered DRAINING
	stateClosed
)

// counters is the server's operational counter block, exported through
// RegisterObs. All fields are atomics: handlers update them lock-free.
type counters struct {
	accepted      atomic.Int64
	rejected      atomic.Int64 // accepts refused by MaxConns
	active        atomic.Int64 // currently served connections
	inflight      atomic.Int64 // requests decoded but not yet answered
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	badFrames     atomic.Int64 // malformed frames / unknown opcodes
	writeTimeouts atomic.Int64 // connections abandoned on write backpressure
	drains        atomic.Int64
	drainedConns  atomic.Int64 // connections retired by a drain poke

	reqs  [opMax]atomic.Int64
	resps [statusMax]atomic.Int64
	lat   [opMax]*metrics.Histogram // per-op handle latency
}

func (c *counters) init() {
	for op := byte(1); op < opMax; op++ {
		c.lat[op] = metrics.NewLatencyHistogram()
	}
}

// Server is a TCP page-cache front-end over one buffer.Pool.
type Server struct {
	cfg   Config
	pool  *buffer.Pool
	ln    net.Listener
	state atomic.Int32

	mu    sync.Mutex
	conns map[*conn]struct{}

	wg sync.WaitGroup // connection handlers
	c  counters
}

// New binds cfg.Addr and starts accepting connections in the background.
func New(cfg Config) (*Server, error) {
	if cfg.Pool == nil {
		return nil, errors.New("server: Config.Pool is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.ReadBufSize <= 0 {
		cfg.ReadBufSize = 32 << 10
	}
	if cfg.WriteBufSize <= 0 {
		cfg.WriteBufSize = 64 << 10
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 50 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:   cfg,
		pool:  cfg.Pool,
		ln:    ln,
		conns: make(map[*conn]struct{}),
	}
	s.c.init()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:7071".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Pool returns the fronted pool.
func (s *Server) Pool() *buffer.Pool { return s.pool }

func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Drain or Close
		}
		if s.state.Load() != stateRunning {
			nc.Close()
			continue
		}
		if s.c.active.Load() >= int64(s.cfg.MaxConns) {
			s.c.rejected.Add(1)
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.mu.Lock()
		// Re-check under the registry lock: a drain that snapshotted the
		// connection set must not miss a connection registered after it.
		if s.state.Load() != stateRunning {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.c.accepted.Add(1)
		s.c.active.Add(1)
		s.wg.Add(1)
		go c.serve()
	}
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.c.active.Add(-1)
}

// Drain retires the server gracefully within budget:
//
//  1. stop accepting, lower the pool's read-only floor
//     (Pool.SetReadOnly) — resident pages keep serving over the wire
//     while misses shed as typed OVERLOADED responses;
//  2. after DrainGrace, poke every connection off its blocking read.
//     Requests already buffered are answered with DRAINING, responses
//     already produced are flushed, then connections close — every
//     request is either answered or provably unread, never half-applied;
//  3. flush the pool with Pool.CloseWithin on the remaining budget, so
//     the whole retirement is bounded and no acknowledged write is lost.
//
// A zero budget means 30s. Calling Drain on a draining or closed server
// returns ErrDraining.
func (s *Server) Drain(budget time.Duration) error {
	if budget <= 0 {
		budget = 30 * time.Second
	}
	if !s.state.CompareAndSwap(stateRunning, stateDraining) {
		return ErrDraining
	}
	s.c.drains.Add(1)
	deadline := time.Now().Add(budget)
	s.ln.Close()
	s.pool.SetReadOnly(true)

	grace := s.cfg.DrainGrace
	if rem := time.Until(deadline) / 4; grace > rem {
		grace = rem
	}
	if grace > 0 {
		time.Sleep(grace)
	}
	s.state.Store(stateClosing)
	s.pokeConns()

	// Wait for the handlers, reserving part of the budget for the pool
	// flush; stragglers (a handler stuck in a slow write) are cut off by
	// force-closing their sockets, after which exit is prompt.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	waitBudget := time.Until(deadline) / 2
	if waitBudget < 10*time.Millisecond {
		waitBudget = 10 * time.Millisecond
	}
	select {
	case <-done:
	case <-time.After(waitBudget):
		s.closeConns()
		<-done
	}
	s.state.Store(stateClosed)

	rem := time.Until(deadline)
	if rem <= 0 {
		rem = time.Millisecond
	}
	return s.pool.CloseWithin(rem)
}

// pokeConns knocks every registered connection off its blocking read by
// expiring its read deadline. Requests already sitting in a connection's
// read buffer are still decoded and answered (bufio serves buffered bytes
// regardless of the deadline); only the blocking wait for *new* bytes is
// interrupted.
func (s *Server) pokeConns() {
	past := time.Unix(1, 0)
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(past) //nolint:errcheck // poke is best-effort
	}
	s.mu.Unlock()
}

// closeConns force-closes every registered connection's socket.
func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
}

// Close shuts the server down abruptly: listener and connections are
// closed without grace and the pool is left untouched. Tests and error
// paths use it; production retirement is Drain.
func (s *Server) Close() error {
	s.state.Store(stateClosed)
	err := s.ln.Close()
	s.closeConns()
	s.wg.Wait()
	return err
}

// remoteStatsPayload builds the STATS response: a compact JSON snapshot
// combining pool and server counters (see client.RemoteStats).
func (s *Server) remoteStatsPayload() []byte {
	st := s.pool.Stats()
	rs := RemoteStats{
		Frames:      st.Frames,
		Shards:      st.Shards,
		Hits:        st.Hits,
		Misses:      st.Misses,
		Shed:        st.Shed,
		Dirty:       st.Dirty,
		Quarantined: st.Quarantined,
		Health:      st.Health.String(),
		Conns:       s.c.active.Load(),
		Draining:    s.state.Load() != stateRunning,
	}
	b, err := json.Marshal(rs)
	if err != nil { // structurally impossible; keep the wire coherent
		return []byte("{}")
	}
	return b
}

// Stats is a point-in-time snapshot of the server's counter block —
// the same numbers RegisterObs exports, in struct form for harnesses
// that need exact values (the E18 bench ledger) without scraping.
type Stats struct {
	Accepted      int64
	Rejected      int64
	Active        int64
	Inflight      int64
	BytesIn       int64
	BytesOut      int64
	BadFrames     int64
	WriteTimeouts int64
	Drains        int64
	DrainedConns  int64
	Requests      map[string]int64 // by op name ("get", "put", …)
	Responses     map[string]int64 // by status name ("ok", "draining", …)
}

// Stats snapshots the server counters. Counter reads are individually
// atomic, not mutually consistent — fine for ledgers taken at
// quiescence and progress displays, which are the intended uses.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:      s.c.accepted.Load(),
		Rejected:      s.c.rejected.Load(),
		Active:        s.c.active.Load(),
		Inflight:      s.c.inflight.Load(),
		BytesIn:       s.c.bytesIn.Load(),
		BytesOut:      s.c.bytesOut.Load(),
		BadFrames:     s.c.badFrames.Load(),
		WriteTimeouts: s.c.writeTimeouts.Load(),
		Drains:        s.c.drains.Load(),
		DrainedConns:  s.c.drainedConns.Load(),
		Requests:      make(map[string]int64),
		Responses:     make(map[string]int64),
	}
	for op := byte(1); op < opMax; op++ {
		if n := s.c.reqs[op].Load(); n > 0 {
			st.Requests[opName(op)] = n
		}
	}
	for code := byte(0); code < statusMax; code++ {
		if n := s.c.resps[code].Load(); n > 0 {
			st.Responses[statusName(code)] = n
		}
	}
	return st
}

// RemoteStats is the STATS payload: the slice of Pool.Stats a remote
// operator can act on, plus the server's own connection gauge.
type RemoteStats struct {
	Frames      int    `json:"frames"`
	Shards      int    `json:"shards"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Shed        int64  `json:"shed"`
	Dirty       int    `json:"dirty"`
	Quarantined int    `json:"quarantined"`
	Health      string `json:"health"`
	Conns       int64  `json:"conns"`
	Draining    bool   `json:"draining"`
}

// validPutPayload reports whether a PUT payload carries a PageID plus
// exactly one page.
const putPayloadLen = 8 + page.Size
