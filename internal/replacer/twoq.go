package replacer

// TwoQ is the full version of the 2Q replacement algorithm (Johnson &
// Shasha, VLDB 1994), the advanced algorithm the BP-Wrapper paper plugs into
// PostgreSQL as its representative high-hit-ratio policy (pg2Q and all the
// pgBat/pgPre/pgBatPre systems).
//
// Resident pages live either on the A1in FIFO (seen once, recently) or on
// the Am LRU list (proven re-reference). Pages evicted from A1in leave a
// ghost entry on the A1out FIFO; a miss that finds its ghost on A1out is
// admitted directly into Am. Hits on A1in pages do not move them (that is
// the "full" 2Q's correlated-reference filter); hits on Am pages move them
// to the MRU end — the operation the paper's batching defers.
type TwoQ struct {
	prefetchIndex
	capacity int
	kin      int // max length of A1in
	kout     int // max length of A1out (ghosts)

	table map[PageID]*node // resident and ghost entries
	a1in  *list            // front = newest
	a1out *list            // ghosts; front = newest
	am    *list            // front = MRU
}

var (
	_ Policy     = (*TwoQ)(nil)
	_ Prefetcher = (*TwoQ)(nil)
)

// NewTwoQ returns a 2Q policy with the paper-recommended tuning:
// Kin = capacity/4 and Kout = capacity/2 (each at least 1).
func NewTwoQ(capacity int) *TwoQ {
	return NewTwoQTuned(capacity, max(1, capacity/4), max(1, capacity/2))
}

// NewTwoQTuned returns a 2Q policy with explicit Kin (A1in capacity) and
// Kout (A1out ghost capacity) parameters.
func NewTwoQTuned(capacity, kin, kout int) *TwoQ {
	checkCap("2q", capacity)
	if kin < 1 || kin > capacity {
		panic("replacer: 2q: kin out of range [1, capacity]")
	}
	if kout < 1 {
		panic("replacer: 2q: kout must be >= 1")
	}
	return &TwoQ{
		capacity: capacity,
		kin:      kin,
		kout:     kout,
		table:    make(map[PageID]*node, capacity+kout),
		a1in:     newList(),
		a1out:    newList(),
		am:       newList(),
	}
}

// Name implements Policy.
func (p *TwoQ) Name() string { return "2q" }

// Cap implements Policy.
func (p *TwoQ) Cap() int { return p.capacity }

// Len implements Policy.
func (p *TwoQ) Len() int { return p.a1in.len() + p.am.len() }

// Contains reports whether id is resident (on A1in or Am; ghosts on A1out
// are not resident).
func (p *TwoQ) Contains(id PageID) bool {
	nd, ok := p.table[id]
	return ok && !nd.ghost
}

// Hit records an access to a resident page: Am pages move to the MRU end;
// A1in pages deliberately stay put (2Q's correlated-reference filter).
// Ghost or absent ids are ignored.
func (p *TwoQ) Hit(id PageID) {
	nd, ok := p.table[id]
	if !ok || nd.ghost {
		return
	}
	if nd.hot { // on Am
		p.am.moveToFront(nd)
	}
	// On A1in: no action, by design.
}

// Admit makes id resident after a miss. A ghost hit on A1out promotes the
// page straight into Am; otherwise it enters A1in. If the buffer is full a
// victim is reclaimed first, preferring A1in once it exceeds Kin.
func (p *TwoQ) Admit(id PageID) (victim PageID, evicted bool) {
	nd, present := p.table[id]
	if present && !nd.ghost {
		mustAbsent("2q", true)
	}
	if present {
		// Ghost hit: detach the ghost now so that reclaim's A1out trimming
		// cannot free the very entry we are promoting.
		p.a1out.remove(nd)
		delete(p.table, id)
	}
	if p.Len() == p.capacity {
		victim = p.reclaim()
		evicted = true
	}
	if present {
		// The page has proven re-reference; admit straight into Am.
		nd.ghost = false
		nd.hot = true
		p.table[id] = nd
		p.am.pushFront(nd)
	} else {
		nd = &node{id: id}
		p.table[id] = nd
		p.a1in.pushFront(nd)
	}
	p.note(id, nd)
	return victim, evicted
}

// reclaim frees one resident slot following 2Q's rule: if A1in holds more
// than Kin pages (or Am is empty), evict A1in's oldest page and remember it
// on A1out; otherwise evict Am's LRU page with no ghost.
func (p *TwoQ) reclaim() PageID {
	if p.a1in.len() > 0 && (p.a1in.len() >= p.kin || p.am.len() == 0) {
		nd := p.a1in.popBack()
		p.forget(nd.id)
		// Keep the entry as a ghost on A1out.
		nd.ghost = true
		p.a1out.pushFront(nd)
		if p.a1out.len() > p.kout {
			old := p.a1out.popBack()
			delete(p.table, old.id)
		}
		return nd.id
	}
	nd := p.am.popBack()
	delete(p.table, nd.id)
	p.forget(nd.id)
	return nd.id
}

// Evict removes and returns one resident page following the 2Q reclaim
// rule.
func (p *TwoQ) Evict() (PageID, bool) {
	if p.Len() == 0 {
		return 0, false
	}
	return p.reclaim(), true
}

// Remove deletes a page from the resident set (and drops any ghost entry).
func (p *TwoQ) Remove(id PageID) {
	nd, ok := p.table[id]
	if !ok {
		return
	}
	switch {
	case nd.ghost:
		p.a1out.remove(nd)
	case nd.hot:
		p.am.remove(nd)
		p.forget(id)
	default:
		p.a1in.remove(nd)
		p.forget(id)
	}
	delete(p.table, id)
}

// QueueLengths reports the current (A1in, A1out, Am) list lengths; used by
// invariant tests and diagnostics.
func (p *TwoQ) QueueLengths() (a1in, a1out, am int) {
	return p.a1in.len(), p.a1out.len(), p.am.len()
}
