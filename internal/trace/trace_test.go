package trace

import (
	"bytes"
	"math"
	"testing"

	"bpwrapper/internal/replacer"
	"bpwrapper/internal/workload"
)

func testTrace() *Trace {
	wl := workload.NewTPCW(workload.TPCWConfig{Items: 1000, Customers: 1000, Workers: 8})
	return Record(wl, 8, 100, 42)
}

func TestRecordDeterministic(t *testing.T) {
	a := testTrace()
	b := testTrace()
	if a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
	if a.Len() == 0 || a.DistinctPages() == 0 {
		t.Fatal("empty trace")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	a := testTrace()
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var b Trace
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d: %v vs %v", i, a.Accesses[i], b.Accesses[i])
		}
	}
}

func TestSerializationBadMagic(t *testing.T) {
	var b Trace
	if _, err := b.ReadFrom(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReplayCountsConsistent(t *testing.T) {
	tr := testTrace()
	p := replacer.NewLRU(500)
	res := Replay(p, tr)
	if res.Accesses != int64(tr.Len()) {
		t.Fatalf("accesses %d, want %d", res.Accesses, tr.Len())
	}
	if res.Hits+res.Misses != res.Accesses {
		t.Fatalf("hits+misses != accesses")
	}
	if res.Misses < int64(tr.DistinctPages()) && p.Cap() >= tr.DistinctPages() {
		t.Fatalf("fewer misses (%d) than distinct pages (%d) at full capacity", res.Misses, tr.DistinctPages())
	}
	if res.HitRatio() <= 0 || res.HitRatio() >= 1 {
		t.Fatalf("hit ratio %v", res.HitRatio())
	}
}

// TestBatchingPreservesHitRatio is the E9 fidelity experiment in test
// form: the paper's Figure 8 shows the hit-ratio curves of the batched and
// unbatched systems overlapping. For a *single* access stream the overlap
// is in fact exact: every deferred batch commits before the next miss (the
// only residency-changing event), so the policy reaches each decision
// point in an identical state. This test demands exact equality; the
// bounded multi-stream divergence is exercised through the live pool in
// package buffer.
func TestBatchingPreservesHitRatio(t *testing.T) {
	tr := testTrace()
	for _, name := range []string{"2q", "lirs", "lru", "mq", "arc", "lru2"} {
		for _, capacity := range []int{64, 256, 1024} {
			plain, _ := replacer.New(name, capacity)
			batched, _ := replacer.New(name, capacity)
			a := Replay(plain, tr)
			b := ReplayBatched(batched, tr, 64, 32)
			if a.Accesses != b.Accesses {
				t.Fatalf("%s/%d: access counts differ", name, capacity)
			}
			if diff := math.Abs(a.HitRatio() - b.HitRatio()); diff != 0 {
				t.Errorf("%s/cap=%d: batched hit ratio %.6f vs plain %.6f (single-stream replay must be exact)",
					name, capacity, b.HitRatio(), a.HitRatio())
			}
		}
	}
}

func TestSweep(t *testing.T) {
	tr := testTrace()
	rows, err := Sweep(tr, []string{"lru", "clock", "2q"}, []int{64, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Hit ratio must be monotone in capacity for each policy on this
	// skewed trace (not guaranteed in theory for non-stack algorithms, but
	// robust at this scale — a violation would signal a broken policy).
	for _, name := range []string{"lru", "clock", "2q"} {
		var small, big float64
		for _, r := range rows {
			if r.Policy != name {
				continue
			}
			if r.Capacity == 64 {
				small = r.Result.HitRatio()
			} else {
				big = r.Result.HitRatio()
			}
		}
		if big <= small {
			t.Errorf("%s: hit ratio not increasing with capacity (%.4f -> %.4f)", name, small, big)
		}
	}
	if _, err := Sweep(tr, []string{"bogus"}, []int{64}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
