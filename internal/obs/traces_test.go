package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bpwrapper/internal/metrics"
	"bpwrapper/internal/reqtrace"
)

// seedTracer builds an enabled tracer holding two traces: trace 1 slow
// (50µs, with a device read) and trace 2 fast (1µs).
func seedTracer(t *testing.T) *reqtrace.Tracer {
	t.Helper()
	tr := reqtrace.New(reqtrace.Config{Enable: true})
	tr.Emit(reqtrace.Span{Trace: 1, Phase: reqtrace.PhaseRequest, Shard: -1,
		Flags: reqtrace.FlagSampled, Start: 100, Dur: 50_000, Arg1: 7})
	tr.Emit(reqtrace.Span{Trace: 1, Phase: reqtrace.PhaseDeviceRead, Shard: 0,
		Flags: reqtrace.FlagSampled, Start: 120, Dur: 40_000, Arg2: 7})
	tr.Emit(reqtrace.Span{Trace: 2, Phase: reqtrace.PhaseRequest, Shard: -1,
		Flags: reqtrace.FlagSampled, Start: 100, Dur: 1_000, Arg1: 9})
	return tr
}

func TestWriteTracesText(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterTracer("off", nil) // disabled tracers are accepted and ignored
	reg.RegisterTracer("pool", seedTracer(t))

	var sb strings.Builder
	reg.WriteTracesText(&sb, 0)
	out := sb.String()
	i1 := strings.Index(out, "trace 0000000000000001")
	i2 := strings.Index(out, "trace 0000000000000002")
	if i1 < 0 || i2 < 0 {
		t.Fatalf("traces missing from text view:\n%s", out)
	}
	if i1 > i2 {
		t.Fatalf("slowest trace not first:\n%s", out)
	}
	for _, want := range []string{"device-read", "50.000µs", "sampled", "2 spans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text view missing %q:\n%s", want, out)
		}
	}

	// The slowest-N limit prunes the fast trace.
	sb.Reset()
	reg.WriteTracesText(&sb, 1)
	if out := sb.String(); strings.Contains(out, "0000000000000002") {
		t.Fatalf("n=1 leaked the fast trace:\n%s", out)
	}

	// An empty registry explains itself instead of printing nothing.
	sb.Reset()
	NewRegistry().WriteTracesText(&sb, 0)
	if !strings.Contains(sb.String(), "no traces") {
		t.Fatalf("empty view not self-explanatory: %q", sb.String())
	}
}

func TestWriteTracesChrome(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterTracer("pool", seedTracer(t))
	var sb strings.Builder
	if err := reg.WriteTracesChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want complete events", ev.Ph)
		}
		if ev.Name == "device-read" {
			found = true
			// Nanosecond spans become microsecond trace_event fields.
			if ev.Dur != 40 || ev.Ts != 0.12 || ev.Tid != 1 {
				t.Fatalf("device-read event mistranslated: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("device-read span missing from chrome output")
	}
}

func TestWriteTracesJSON(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterTracer("pool", seedTracer(t))
	var sb strings.Builder
	if err := reg.WriteTracesJSON(&sb, 1); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []struct {
			Trace  string   `json:"trace"`
			DurNs  int64    `json:"dur_ns"`
			Phases []string `json:"phases"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].Trace != "0000000000000001" || doc.Traces[0].DurNs != 50_000 {
		t.Fatalf("json view = %+v", doc.Traces)
	}
	if len(doc.Traces[0].Phases) != 2 || doc.Traces[0].Phases[0] != "request" {
		t.Fatalf("phases = %v", doc.Traces[0].Phases)
	}
}

func TestRegisterTracerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterTracer("pool", seedTracer(t))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `bpw_trace_emitted_total{tracer="pool"} 3`) {
		t.Fatalf("tracer counters missing:\n%s", out)
	}
}

func TestPrometheusExemplars(t *testing.T) {
	reg := NewRegistry()
	h := metrics.NewHistogram(time.Microsecond, time.Second, 12)
	h.RecordTraced(5*time.Millisecond, 0xabc)
	h.Record(8 * time.Microsecond) // untraced: its bucket carries no exemplar
	reg.Register(func(emit func(Metric)) {
		hs := h.Snapshot()
		emit(Metric{Name: "bpw_server_op_seconds", Type: Histogram,
			Labels: [][2]string{{"op", "get"}}, Hist: &hs})
	})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="0000000000000abc"} 0.005`) {
		t.Fatalf("exemplar missing from bucket lines:\n%s", out)
	}
	// Exactly one bucket line carries the exemplar.
	if got := strings.Count(out, "trace_id="); got != 1 {
		t.Fatalf("%d exemplar annotations, want 1:\n%s", got, out)
	}
}

func TestJSONTreeQuantiles(t *testing.T) {
	tree := testRegistry().JSONTree()
	wait := tree["bpw_lock_wait_seconds"].([]any)[0].(map[string]any)
	p50 := wait["p50_seconds"].(float64)
	p99 := wait["p99_seconds"].(float64)
	p999 := wait["p999_seconds"].(float64)
	// testRegistry records 5µs and 30ms: the median bound sits near the
	// small observation, the tails at or above the large one.
	if p50 <= 0 || p50 > 1e-3 {
		t.Fatalf("p50_seconds = %v, want a microsecond-scale bound", p50)
	}
	if p99 < 0.03 || p999 < p99 {
		t.Fatalf("p99=%v p999=%v, want tail bounds covering the 30ms sample", p99, p999)
	}
}

func TestTraceAndEventEndpoints(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(8)
	for i := 0; i < 5; i++ {
		rec.Record(EvEvict, uint64(i), 0)
	}
	reg.RegisterRecorder("shard 0", rec)
	reg.RegisterTracer("pool", seedTracer(t))
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path, wantType string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
			t.Fatalf("GET %s: Content-Type %q, want %q", path, ct, wantType)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// /debug/events honors ?n= and renders newest-first.
	ev := get("/debug/events?n=2", "text/plain")
	if !strings.Contains(ev, "newest 2 of 5") || strings.Contains(ev, "[0]") {
		t.Fatalf("/debug/events?n=2 wrong:\n%s", ev)
	}
	if i4, i3 := strings.Index(ev, "[4]"), strings.Index(ev, "[3]"); i4 < 0 || i4 > i3 {
		t.Fatalf("/debug/events not newest-first:\n%s", ev)
	}
	// A malformed n falls back to the default rather than erroring.
	if out := get("/debug/events?n=bogus", "text/plain"); !strings.Contains(out, "[0]") {
		t.Fatalf("malformed ?n= should dump everything:\n%s", out)
	}

	if out := get("/debug/traces", "text/plain"); !strings.Contains(out, "trace 0000000000000001") {
		t.Fatalf("/debug/traces text missing trace:\n%s", out)
	}
	if out := get("/debug/traces?format=chrome", "application/json"); !strings.Contains(out, `"traceEvents"`) {
		t.Fatalf("/debug/traces?format=chrome not trace_event JSON:\n%s", out)
	}
	if out := get("/debug/traces?format=json&n=1", "application/json"); !strings.Contains(out, `"dur_ns": 50000`) {
		t.Fatalf("/debug/traces?format=json wrong:\n%s", out)
	}
	if out := get("/metrics", "text/plain"); !strings.Contains(out, "bpw_trace_emitted_total") {
		t.Fatalf("/metrics missing tracer counters:\n%s", out)
	}
}
