package buffer

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/page"
)

// Frame state word layout, in the style of PostgreSQL's BufferDesc.state:
// the pin count, dirty bit, lifecycle flags, and the frame generation are
// packed into one atomic.Uint64 so the entire hit-path pin protocol is a
// single CAS with no mutex.
//
//	bits  0..17  pin count (readers + one claim pin during transitions)
//	bit  18      dirty — page bytes differ from the device copy
//	bit  19      recycling — the frame is NOT resident: free, mid-load, or
//	             claimed by eviction/invalidation; tryPin must refuse it
//	bit  20      wlock — a writer holds the content exclusively (its wmu is
//	             held and readers have drained); tryPin backs off
//	bits 21..63  generation — bumped on EVERY ownership transition (claim
//	             from the table, claim from the free list, install), never
//	             reused, so a stale state snapshot can never CAS onto a
//	             frame that was recycled in between (ABA defense)
const (
	framePinBits   = 18
	framePinMask   = 1<<framePinBits - 1
	frameDirty     = 1 << 18
	frameRecycling = 1 << 19
	frameWLock     = 1 << 20
	frameGenShift  = 21
)

// stateGen extracts the generation bits of a state word.
func stateGen(s uint64) uint64 { return s >> frameGenShift }

// pinStatus is tryPin's outcome.
type pinStatus uint8

const (
	// pinOK: the pin is held and the returned tag is the live one.
	pinOK pinStatus = iota
	// pinRecycled: the frame no longer caches the requested page (or is
	// mid-transition); the caller must restart its table lookup.
	pinRecycled
	// pinBusy: the frame still caches the page but a writer holds it
	// exclusively (or the pin count is saturated); back off and retry.
	pinBusy
)

// Frame is one buffer slot: an 8 KB page image plus the metadata PostgreSQL
// keeps in a BufferDesc — the identity of the cached copy and the packed
// state word above. There is no frame mutex: pins are CAS transitions on
// the state word, and the only lock left is wmu, taken exclusively by
// writers (GetWrite) to serialize content-exclusive access among
// themselves; the resident-read path never touches it.
//
// The state word and the tag live alone on the leading cache line (and the
// struct is padded to a multiple of the line size), so pin CAS traffic on
// one frame never invalidates a neighbour frame's hot line through false
// sharing.
type Frame struct {
	state   atomic.Uint64
	tagPage atomic.Uint64 // page.PageID of the cached copy; InvalidPageID when not resident
	_       [48]byte      // state+tag own the first cache line

	// wmu serializes writers (GetWrite) on this frame. Writers acquire it
	// WITHOUT holding a pin — a pinned waiter would deadlock the current
	// holder's reader-drain — then pin, re-validate the tag, and set the
	// wlock bit. The read hit path never acquires it.
	wmu sync.Mutex

	data page.Page
	_    [48]byte // round the struct to a cache-line multiple
}

// initFree puts a zero-value frame into the free state (recycling, no
// pins, no tag). Called once per frame at pool construction.
func (f *Frame) initFree() {
	f.tagPage.Store(uint64(page.InvalidPageID))
	f.state.Store(frameRecycling)
}

// TagSnapshot returns the frame's buffer tag from a lock-free two-load
// read: state, tag, state again. The snapshot is valid only if the frame
// was stably resident across both loads — same generation, recycling bit
// clear — because tagPage changes only inside a recycling window that is
// bracketed by generation bumps. ok is false while the frame is free,
// mid-load, or being reclaimed.
func (f *Frame) TagSnapshot() (page.BufferTag, bool) {
	s1 := f.state.Load()
	p := page.PageID(f.tagPage.Load())
	s2 := f.state.Load()
	if (s1|s2)&frameRecycling != 0 || stateGen(s1) != stateGen(s2) {
		return page.BufferTag{}, false
	}
	return page.BufferTag{Page: p, Gen: stateGen(s1)}, true
}

// Tag returns the frame's current buffer tag, lock-free: a seq-validated
// read of the state word and tag (see TagSnapshot). While the caller holds
// a pin the answer is stable — a pinned frame cannot be recycled. Without
// a pin the frame may be mid-transition, in which case the zero tag is
// returned after a few snapshot attempts.
func (f *Frame) Tag() page.BufferTag {
	for attempt := 0; attempt < 4; attempt++ {
		if t, ok := f.TagSnapshot(); ok {
			return t
		}
	}
	return page.BufferTag{}
}

// tryPin attempts to take a pin on the frame, atomically verifying that it
// still caches page id. The CAS doubles as the validation: any reclaim of
// the frame bumps the generation, so a successful CAS against the loaded
// state proves the tag read between load and CAS was the live one.
func (f *Frame) tryPin(id page.PageID) (page.BufferTag, pinStatus) {
	for {
		s := f.state.Load()
		if s&frameRecycling != 0 {
			return page.BufferTag{}, pinRecycled
		}
		if s&frameWLock != 0 || s&framePinMask == framePinMask {
			return page.BufferTag{}, pinBusy
		}
		if page.PageID(f.tagPage.Load()) != id {
			return page.BufferTag{}, pinRecycled
		}
		if f.state.CompareAndSwap(s, s+1) {
			return page.BufferTag{Page: id, Gen: stateGen(s)}, pinOK
		}
	}
}

// unpin drops one pin with a single fetch-and-sub.
func (f *Frame) unpin() {
	if n := f.state.Add(^uint64(0)); n&framePinMask == framePinMask {
		panic("buffer: unpin of unpinned frame")
	}
}

// tryClaim CASes the frame from the loaded state s — which must carry zero
// pins, no writer, and be resident (dirty is allowed: the claim clears it
// and the now-exclusive caller copies the bytes out for write-back) — into the
// recycling state: one claim pin, generation bumped. A successful claim
// grants exclusive ownership (tryPin refuses recycling frames and the gen
// bump invalidates every stale snapshot), so the caller may then touch
// data and tagPage with plain accesses published later by install or
// toFree.
func (f *Frame) tryClaim(s uint64) bool {
	if s&(framePinMask|frameRecycling|frameWLock) != 0 {
		panic("buffer: tryClaim of a pinned or non-resident state")
	}
	return f.state.CompareAndSwap(s, (stateGen(s)+1)<<frameGenShift|frameRecycling|1)
}

// claimFree takes ownership of a frame popped off the free list: the claim
// pin is set and the generation bumped while the recycling bit stays up
// until install publishes the new identity. The caller owns the frame
// exclusively (it is on no list and in no table), so a plain store
// suffices — no concurrent CAS can target a recycling frame.
func (f *Frame) claimFree() {
	s := f.state.Load()
	f.state.Store((stateGen(s)+1)<<frameGenShift | frameRecycling | 1)
}

// install publishes a claimed frame as resident: generation bumped,
// recycling cleared, the claim pin retained for the caller, the dirty bit
// and writer lock set as requested. It returns the tag readers will
// validate against. wlock is set by the miss path when the caller already
// holds wmu and wants content-exclusive access without a drain wait.
func (f *Frame) install(dirty, wlock bool) page.BufferTag {
	gen := stateGen(f.state.Load()) + 1
	s := gen<<frameGenShift | 1
	if dirty {
		s |= frameDirty
	}
	if wlock {
		s |= frameWLock
	}
	f.state.Store(s)
	return page.BufferTag{Page: page.PageID(f.tagPage.Load()), Gen: gen}
}

// toFree parks an exclusively owned (claimed) frame in the free state:
// recycling stays set, the claim pin drops, the tag is invalidated. The
// generation is NOT bumped here — the claim that granted ownership already
// did, and the next claimFree will again.
func (f *Frame) toFree() {
	f.tagPage.Store(uint64(page.InvalidPageID))
	f.state.Store(stateGen(f.state.Load())<<frameGenShift | frameRecycling)
}

// setDirty sets the dirty bit (CAS loop; Go 1.22 has no atomic Or).
func (f *Frame) setDirty() {
	for {
		s := f.state.Load()
		if s&frameDirty != 0 || f.state.CompareAndSwap(s, s|frameDirty) {
			return
		}
	}
}

// lockContent escalates a pinned frame to content-exclusive access for a
// writer that holds wmu: set the wlock bit (stopping new reader pins),
// then wait for the existing readers to drain down to the writer's own
// pin. The spin escalates from Gosched to short sleeps so a long-held
// reader reference does not burn a core.
func (f *Frame) lockContent() {
	for {
		s := f.state.Load()
		if f.state.CompareAndSwap(s, s|frameWLock) {
			break
		}
	}
	for spins := 0; f.state.Load()&framePinMask != 1; spins++ {
		backoff(spins)
	}
}

// unlockContentAndUnpin releases a writer's exclusive hold in one CAS:
// wlock cleared and the writer's pin dropped together, so no window exists
// where the frame looks writer-locked but unpinned (or vice versa).
func (f *Frame) unlockContentAndUnpin() {
	for {
		s := f.state.Load()
		if s&framePinMask == 0 {
			panic("buffer: unpin of unpinned frame")
		}
		if f.state.CompareAndSwap(s, (s&^uint64(frameWLock))-1) {
			return
		}
	}
}

// backoff yields the processor, escalating to microsecond sleeps after a
// burst of scheduler yields, for spin loops that may wait on another
// goroutine's pin or lock.
func backoff(spins int) {
	if spins < 64 {
		runtime.Gosched()
	} else {
		time.Sleep(time.Microsecond)
	}
}

// PageRef is a pinned reference to a buffered page. The referenced bytes
// stay valid — and the page stays ineligible for eviction — until Release
// is called. A PageRef must be released exactly once and is not safe for
// concurrent use. Released references are recycled through a pool (the
// resident hit path must not allocate), so holding a PageRef past its
// Release — like holding its Data slice — is undefined: the released
// checks below catch stale use only until the object is reissued.
type PageRef struct {
	frame    *Frame
	id       page.PageID
	tag      page.BufferTag
	writable bool
	released bool
}

// refPool recycles PageRefs so a resident Get stays allocation-free.
var refPool = sync.Pool{New: func() any { return new(PageRef) }}

// newPageRef issues a recycled (or fresh) reference.
func newPageRef(f *Frame, id page.PageID, tag page.BufferTag, writable bool) *PageRef {
	r := refPool.Get().(*PageRef)
	*r = PageRef{frame: f, id: id, tag: tag, writable: writable}
	return r
}

// ID returns the referenced page's identity.
func (r *PageRef) ID() page.PageID { return r.id }

// Frame returns the underlying buffer frame, for diagnostics and tests.
func (r *PageRef) Frame() *Frame { return r.frame }

// Tag returns the buffer tag of the cached copy this reference pins.
func (r *PageRef) Tag() page.BufferTag { return r.tag }

// Data returns the page bytes. The slice aliases the buffer frame: it is
// valid only until Release, and must not be written through unless the
// reference was obtained with GetWrite.
func (r *PageRef) Data() []byte {
	if r.released {
		panic("buffer: Data on released PageRef")
	}
	return r.frame.data.Data[:]
}

// MarkDirty records that the caller modified the page, scheduling a
// write-back before the frame can be recycled. It panics on read-only
// references: that is always a caller bug.
func (r *PageRef) MarkDirty() {
	if r.released {
		panic("buffer: MarkDirty on released PageRef")
	}
	if !r.writable {
		panic("buffer: MarkDirty on read-only PageRef")
	}
	r.frame.setDirty()
}

// Release drops the pin (and, for writable references, the content lock
// and the frame's writer mutex). It panics on double release.
func (r *PageRef) Release() {
	if r.released {
		panic("buffer: double Release of PageRef")
	}
	r.released = true
	if r.writable {
		r.frame.unlockContentAndUnpin()
		r.frame.wmu.Unlock()
	} else {
		r.frame.unpin()
	}
	refPool.Put(r)
}
