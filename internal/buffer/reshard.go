// Online resharding: the pool's shard topology is an atomically-swappable
// shardSet, and Reshard grows or shrinks the shard count under live traffic
// with incremental page migration — no stop-the-world.
//
// The protocol (DESIGN.md §14):
//
//  1. Build the new topology: a fresh shardSet of n shards splitting the
//     same total frame budget, each with its own policy instance (from the
//     pool's PolicyFactory), wrapper, page table, free list and quarantine.
//  2. Seal the old shards: their miss path refuses new loads with
//     errResharded (hits on still-resident pages keep serving).
//  3. Publish: one atomic pointer swap makes every subsequent access route
//     through the new set. The new set's prev pointer keeps the old set
//     reachable for the double-lookup window.
//  4. Migrate: a driver session faults every old resident through the new
//     topology. The new set's miss path, before touching the device, steals
//     the page from the old owner shard (stealPage): it waits out in-flight
//     old loads and pins, claims the frame, and carries the bytes AND the
//     dirty bit across, so an unflushed write is never lost and never read
//     stale from the device. Quarantined-only pages (parked copies whose
//     write-back has not been confirmed) are handed over map-to-map under
//     the old write-back stripe, which also serializes against any
//     in-flight write of the same page.
//  5. Finalize: once the old set holds no residents, no quarantined copies,
//     and every frame is back on its free list, the prev pointer is
//     cleared. The old shard structs are retired — kept reachable so
//     counters staged by sessions that were idle across the whole
//     migration still fold into totals (Stats folds retired shards into
//     its Retired aggregate).
//
// Pinned pages never block traffic, only the migration of that one page:
// stealPage waits for the pin to drain while every other page moves on.
package buffer

import (
	"errors"
	"fmt"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"sync/atomic"
)

// errResharded is the internal retry signal: the operation routed to a
// shard that was sealed by a topology swap between the routing decision and
// the shard operation. Pool.Get/GetWrite retry against the freshly loaded
// set, so callers never observe it.
var errResharded = errors.New("buffer: shard sealed by reshard, retry against the new topology")

// shardSet is one immutable shard topology: the epoch stamps it, shards is
// fixed at construction, and only prev mutates (cleared exactly once when
// the migration out of the previous topology completes).
type shardSet struct {
	epoch  uint64
	shards []*shard

	// prev points at the still-draining previous topology while a
	// migration is in flight, nil otherwise. The miss path consults it for
	// the double-lookup window; pool-wide sweeps (flush, bgwriter, stats)
	// walk both sets so no dirty page is invisible mid-migration.
	prev atomic.Pointer[shardSet]
}

// indexFor routes a page id to its owning shard within this set — the same
// mix64 high-bits keying the fixed topology used, so a one-shard set skips
// the hash entirely and epoch 0 routes bit-for-bit like the old []shard.
func (ss *shardSet) indexFor(id page.PageID) int {
	if len(ss.shards) == 1 {
		return 0
	}
	return int((mix64(uint64(id)) >> 32) % uint64(len(ss.shards)))
}

// shardFor returns the shard owning id in this set.
func (ss *shardSet) shardFor(id page.PageID) *shard { return ss.shards[ss.indexFor(id)] }

// Reshard changes the pool's shard count to n under live traffic,
// returning once the migration is complete and the old topology fully
// drained. It requires a PolicyFactory (per-shard policy instances must be
// constructible at any count); pools built with a single Policy instance
// gain one via SwapPolicy. Reshard serializes with itself and with
// SwapPolicy; concurrent traffic keeps flowing throughout — the only waits
// are per-page (a pinned page delays its own migration until unpinned).
func (p *Pool) Reshard(n int) error {
	if n <= 0 {
		return fmt.Errorf("buffer: Reshard(%d): shard count must be positive", n)
	}
	if n > p.frames {
		return fmt.Errorf("buffer: Reshard(%d) exceeds Frames %d", n, p.frames)
	}
	p.reshardMu.Lock()
	defer p.reshardMu.Unlock()
	old := p.cur.Load()
	if len(old.shards) == n {
		return nil
	}
	factory := p.policyFactory()
	if factory == nil {
		return errors.New("buffer: resharding requires Config.PolicyFactory (or a prior SwapPolicy)")
	}
	if p.forcedRO.Load() {
		// Migration loads pages through the new set's miss path, which a
		// read-only floor sheds; resharding a drained pool is pointless
		// anyway.
		return errors.New("buffer: cannot reshard a pool forced read-only")
	}

	next := p.newShardSet(n, old.epoch+1, factory)
	next.prev.Store(old)
	for _, sh := range old.shards {
		sh.sealed.Store(true)
	}
	p.cur.Store(next)
	p.registerRecorders(next)

	// Migrate until the old topology is empty. Each pass faults the old
	// residents through the new set (whose miss path steals bytes + dirty
	// bit from the old owner), then hands over quarantined-only copies.
	// Passes repeat because in-flight pre-seal loads can still install
	// into old shards, evictions can park new quarantine entries, and a
	// degraded new shard can transiently shed a migration miss.
	ms := p.NewSession()
	for pass := 0; ; pass++ {
		for _, osh := range old.shards {
			for _, id := range osh.residentIDs() {
				if ref, err := p.Get(ms, id); err == nil {
					ref.Release()
				}
			}
			for _, id := range osh.quarantineIDs() {
				osh.handOverQuarantine(id, next.shardFor(id))
			}
		}
		done := true
		for _, osh := range old.shards {
			if !osh.drained() {
				done = false
				break
			}
		}
		if done {
			break
		}
		backoff(pass)
	}
	ms.Flush()

	// Finalize: retire the old shards (their counters stay reachable for
	// Stats — late hit folds from long-idle sessions still land) and close
	// the double-lookup window. Both under retireMu so a Stats snapshot
	// can never count an old shard both as "draining" and as "retired".
	p.retireMu.Lock()
	p.retired = append(p.retired, old.shards...)
	next.prev.Store(nil)
	p.retireMu.Unlock()
	p.reshards.Add(1)
	return nil
}

// SwapPolicy hot-swaps every current shard's replacement policy to
// instances built by factory, migrating each policy's resident set into
// the new instance (in eviction order, so the pages the old policy valued
// most are the ones the new policy saw admitted last). The factory also
// becomes the pool's policy recipe: later reshards build the new policy.
// It serializes with Reshard, so a swap never races a topology change.
func (p *Pool) SwapPolicy(factory replacer.Factory) (from, to string, err error) {
	if factory == nil {
		return "", "", errors.New("buffer: SwapPolicy requires a factory")
	}
	p.reshardMu.Lock()
	defer p.reshardMu.Unlock()
	p.policyMu.Lock()
	p.factory = factory
	p.policyMu.Unlock()
	set := p.cur.Load()
	for _, sh := range set.shards {
		var residue []page.PageID
		from, to, residue = sh.wrapper.SwapPolicy(factory)
		// Seeding the new policy can evict below capacity (queue-local
		// bounds, 2Q's A1in say); those pages fell out of policy tracking
		// while their frames stayed resident. Reclaim them through the
		// shard's normal victim path so no frame is stranded unevictable.
		for _, v := range residue {
			sh.recycle(nil, v)
		}
	}
	return from, to, nil
}

// policyFactory reads the pool's current policy recipe (nil until a
// factory exists — see Config.PolicyFactory and SwapPolicy).
func (p *Pool) policyFactory() replacer.Factory {
	p.policyMu.Lock()
	defer p.policyMu.Unlock()
	return p.factory
}

// SetBatchThreshold retunes the batch threshold of every current shard's
// wrapper live (see core.Wrapper.SetBatchThreshold), and remembers the
// value so shards built by later reshards inherit it. Zero restores the
// configured threshold.
func (p *Pool) SetBatchThreshold(t int) {
	p.dynThreshold.Store(int32(t))
	for _, sh := range p.cur.Load().shards {
		sh.wrapper.SetBatchThreshold(t)
	}
}

// Epoch reports the current topology's epoch (0 until the first reshard)
// and whether a migration out of the previous topology is still draining.
func (p *Pool) Epoch() (epoch uint64, resharding bool) {
	set := p.cur.Load()
	return set.epoch, set.prev.Load() != nil
}

// ---------------------------------------------------------------------------
// Old-shard migration primitives (called only on sealed shards).

// stealPage extracts page id from a sealed shard for installation in the
// new topology: it waits out an in-flight load, claims the frame (waiting
// out pins and writers), copies the bytes into dst, and reports whether
// the page was dirty — an unconfirmed quarantined copy counts as dirty, so
// the new shard re-writes rather than trusting a possibly-stale device.
// The final write-back-stripe lock/unlock waits out any in-flight old
// write of this page, so a later write from the new topology can never be
// overtaken (and silently reverted) by an old one.
func (sh *shard) stealPage(id page.PageID, dst *page.Page) (dirty, found bool) {
	b := sh.bucketFor(id)
	spins := 0
	for {
		b.mu.Lock()
		if op, ok := b.loads[id]; ok {
			// A pre-seal load is still in flight: wait for it to install
			// (or fail), then re-probe.
			b.mu.Unlock()
			<-op.done
			continue
		}
		f := b.lookupLocked(id)
		b.mu.Unlock()
		if f == nil {
			break
		}
		s := f.state.Load()
		if s&frameRecycling != 0 || page.PageID(f.tagPage.Load()) != id {
			continue // recycled under us; re-probe the table
		}
		if s&(framePinMask|frameWLock) != 0 {
			// Pinned or writer-held: wait it out. Only this page's
			// migration stalls; the reshard keeps draining other pages.
			backoff(spins)
			spins++
			continue
		}
		if !f.tryClaim(s) {
			continue
		}
		dirty = s&frameDirty != 0
		*dst = f.data
		b.mu.Lock()
		b.removeLocked(id)
		b.mu.Unlock()
		sh.wrapper.Locked(func(pol replacer.Policy) { pol.Remove(id) })
		f.toFree()
		sh.freeMu.Lock()
		sh.freeList = append(sh.freeList, f)
		sh.freeMu.Unlock()
		// A parked flush copy of this page (the sanctioned
		// resident+quarantined overlap) is superseded by the frame bytes
		// we just took — but its write-back was not confirmed, so the page
		// must leave here dirty even if the frame looked clean.
		if q := sh.quarantineTake(id); q != nil {
			dirty = true
		}
		found = true
		break
	}
	if !found {
		// Not resident: an evicted-dirty page may still be parked in the
		// quarantine with its write-back unconfirmed. Adopt it as dirty.
		if q := sh.quarantineTake(id); q != nil {
			*dst = *q
			dirty, found = true, true
		}
	}
	// Serialize with any in-flight old write-back of this page: after this
	// lock/unlock, no old write of id is still in the air, so the new
	// topology's future write of id cannot be reverted by a stale one.
	l := sh.wbLock(id)
	l.Lock()
	//lint:ignore SA2001 the empty critical section IS the barrier
	l.Unlock()
	if found {
		sh.migratedOut.Add(1)
	}
	return dirty, found
}

// residentIDs snapshots the ids currently mapped by the shard's page
// table. Taken bucket by bucket under the bucket mutex (a migration sweep,
// not an access path — it deliberately bypasses the hit-path lock
// accounting).
func (sh *shard) residentIDs() []page.PageID {
	var ids []page.PageID
	for i := range sh.buckets {
		b := &sh.buckets[i]
		b.mu.Lock()
		b.forEachLocked(func(id page.PageID, _ *Frame) { ids = append(ids, id) })
		b.mu.Unlock()
	}
	return ids
}

// quarantineIDs snapshots the ids currently parked in the quarantine.
func (sh *shard) quarantineIDs() []page.PageID {
	sh.quarMu.Lock()
	ids := make([]page.PageID, 0, len(sh.quarantine))
	for id := range sh.quarantine {
		ids = append(ids, id)
	}
	sh.quarMu.Unlock()
	return ids
}

// handOverQuarantine moves a quarantined-only copy of id from this sealed
// shard into dst's quarantine, losslessly: the old write-back stripe is
// held across the whole handover, so an in-flight old write either
// completes first (resolving the entry — nothing to move) or, arriving
// later, revalidates against the now-empty map and skips. Pages that still
// have a resident frame are skipped — the frame is the newer copy and
// stealPage migrates it (withdrawing the parked copy) instead.
func (sh *shard) handOverQuarantine(id page.PageID, dst *shard) {
	l := sh.wbLock(id)
	l.Lock()
	defer l.Unlock()
	b := sh.bucketFor(id)
	b.mu.Lock()
	resident := b.lookupLocked(id) != nil
	b.mu.Unlock()
	if resident {
		return
	}
	sh.quarMu.Lock()
	c := sh.quarantine[id]
	delete(sh.quarantine, id)
	delete(sh.quarTrace, id)
	sh.quarMu.Unlock()
	if c != nil {
		// The destination cap is a soft bound (same as concurrent
		// evictions): durability wins over the bound during a handover.
		dst.quarantinePut(id, c, nil)
	}
}

// drained reports whether this sealed shard is fully migrated: nothing
// resident, nothing quarantined, no load in flight, and every frame back
// on the free list (a frame mid-claim or still pinned keeps it false).
func (sh *shard) drained() bool {
	sh.freeMu.Lock()
	free := len(sh.freeList)
	sh.freeMu.Unlock()
	if free != len(sh.frames) {
		return false
	}
	if sh.quarantineLen() != 0 {
		return false
	}
	for i := range sh.buckets {
		b := &sh.buckets[i]
		b.mu.Lock()
		n := 0
		b.forEachLocked(func(page.PageID, *Frame) { n++ })
		inflight := len(b.loads)
		b.mu.Unlock()
		if n != 0 || inflight != 0 {
			return false
		}
	}
	return true
}
