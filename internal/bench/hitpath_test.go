package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestHitpathCounters runs the deterministic E17 sweep and checks the
// acceptance shape directly: the optimistic path serves every hit with
// zero lock acquisitions, the locked path pays a bucket lock per access
// (at least), and both arms see the identical fully-resident workload.
func TestHitpathCounters(t *testing.T) {
	rep, err := HitpathExperiment(1, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScaleRows) != 0 {
		t.Fatalf("sim mode produced %d scale rows, want none", len(rep.ScaleRows))
	}
	if len(rep.CounterRows) != 4 {
		t.Fatalf("got %d counter rows, want 4", len(rep.CounterRows))
	}
	for _, r := range rep.CounterRows {
		if r.Accesses != hitpathAccesses || r.Hits != hitpathAccesses {
			t.Errorf("%s/shards=%d: accesses=%d hits=%d, want %d fully-resident hits",
				r.Path, r.Shards, r.Accesses, r.Hits, hitpathAccesses)
		}
		switch r.Path {
		case "optimistic":
			if r.Fast != r.Hits {
				t.Errorf("optimistic/shards=%d: fast=%d != hits=%d", r.Shards, r.Fast, r.Hits)
			}
			if r.BucketLockAcqs != 0 || r.FrameLockAcqs != 0 {
				t.Errorf("optimistic/shards=%d: lock acquisitions bucket=%d frame=%d, want 0/0",
					r.Shards, r.BucketLockAcqs, r.FrameLockAcqs)
			}
			if r.Retries != 0 || r.Fallbacks != 0 {
				t.Errorf("optimistic/shards=%d single-threaded: retries=%d fallbacks=%d, want 0/0",
					r.Shards, r.Retries, r.Fallbacks)
			}
		case "locked":
			if r.Fast != 0 {
				t.Errorf("locked/shards=%d: fast=%d, want 0", r.Shards, r.Fast)
			}
			if r.BucketLockAcqs < r.Accesses {
				t.Errorf("locked/shards=%d: bucket locks %d < accesses %d",
					r.Shards, r.BucketLockAcqs, r.Accesses)
			}
		}
	}

	// The committed document is byte-stable: a second run must be equal.
	again, err := HitpathExperiment(1, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := JSONHitpath(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := JSONHitpath(&b, again); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("hitpath counter sweep not deterministic across runs")
	}

	var decoded HitpathReport
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("baseline JSON does not round-trip: %v", err)
	}
	var txt, csv bytes.Buffer
	PrintHitpath(&txt, rep)
	if !strings.Contains(txt.String(), "Lock-free hit path (E17)") {
		t.Fatalf("PrintHitpath missing header:\n%s", txt.String())
	}
	if err := CSVHitpath(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 1+len(rep.CounterRows) {
		t.Fatalf("CSV row count %d, want %d", got, 1+len(rep.CounterRows))
	}
}
