package workload

import (
	"bpwrapper/internal/page"
)

// TableScanConfig tunes the TableScan workload, the paper's synthetic
// benchmark: "It makes concurrent queries, each of which scans an entire
// table" (Section IV-C).
type TableScanConfig struct {
	// Tables is the number of distinct tables scanned. Zero means 16.
	Tables int

	// PagesPerTable is each table's size. The paper's tables hold 10,000
	// rows of ~200 bytes, about 250 pages at 8 KB. Zero means 250.
	PagesPerTable int
}

func (c TableScanConfig) withDefaults() TableScanConfig {
	if c.Tables <= 0 {
		c.Tables = 16
	}
	if c.PagesPerTable <= 0 {
		c.PagesPerTable = 250
	}
	return c
}

// tableScan implements Workload.
type tableScan struct {
	cfg    TableScanConfig
	tables []Table
}

// NewTableScan returns the TableScan workload.
func NewTableScan(cfg TableScanConfig) Workload {
	cfg = cfg.withDefaults()
	ts := &tableScan{cfg: cfg}
	for i := 0; i < cfg.Tables; i++ {
		ts.tables = append(ts.tables, NewTable(uint32(i+1), uint64(cfg.PagesPerTable)))
	}
	return ts
}

// Name implements Workload.
func (ts *tableScan) Name() string { return "tablescan" }

// DataPages implements Workload.
func (ts *tableScan) DataPages() int { return ts.cfg.Tables * ts.cfg.PagesPerTable }

// Pages implements Workload: every table page is in the working set.
func (ts *tableScan) Pages() []page.PageID {
	ids := make([]page.PageID, 0, ts.DataPages())
	for _, t := range ts.tables {
		ids = t.appendAll(ids)
	}
	return ids
}

// NewStream implements Workload. Each transaction is one full sequential
// scan of a randomly chosen table.
func (ts *tableScan) NewStream(w int, seed int64) Stream {
	return &tableScanStream{w: ts, r: newRand(seed, w)}
}

type tableScanStream struct {
	w *tableScan
	r interface{ Intn(int) int }
}

// NextTxn implements Stream: a complete scan of one table.
func (st *tableScanStream) NextTxn(buf []Access) []Access {
	t := st.w.tables[st.r.Intn(len(st.w.tables))]
	for b := uint64(0); b < t.Pages(); b++ {
		buf = append(buf, Access{Page: t.Page(b)})
	}
	return buf
}
