module bpwrapper

go 1.22
