#!/bin/sh
# Regenerates results/BENCH_hitpath.json, the committed baseline for the
# hitpath experiment (E17): the hit-path anatomy counters of the lock-free
# resident-read path vs the locked lookup path.
#
# The run is fully deterministic: one goroutine replays a seeded access
# stream over a fully resident pool (null device, direct commits), so the
# counters — accesses, hits, fast hits, retries, fallbacks, bucket/frame
# lock acquisitions — are exact and reproduce byte-for-byte on any
# machine. The committed numbers ARE the acceptance claim: the optimistic
# rows must show fast == hits and zero lock acquisitions. (The scaling
# half of E17 needs -mode real and is inherently machine-dependent, so it
# is never committed.)
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp hitpath -format json -seed 1 \
    > results/BENCH_hitpath.json
echo "wrote results/BENCH_hitpath.json"
