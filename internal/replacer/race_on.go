//go:build race

package replacer

// raceEnabled reports whether the race detector is compiled in. See
// race_off.go.
const raceEnabled = true
