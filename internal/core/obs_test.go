package core

import (
	"testing"
	"time"

	"bpwrapper/internal/metrics"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

func obsEntry(i int) (page.PageID, page.BufferTag) {
	id := page.NewPageID(1, uint64(i))
	return id, page.BufferTag{}
}

func countKinds(evs []obs.Event) map[obs.EventKind]int {
	m := map[obs.EventKind]int{}
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

func TestCommitPathEmitsFlightEvents(t *testing.T) {
	rec := obs.NewRecorder(256)
	w := New(replacer.NewLRU(64), Config{
		Batching:       true,
		QueueSize:      8,
		BatchThreshold: 4,
		Events:         rec,
	})
	s := w.NewSession()
	for i := 0; i < 64; i++ {
		id, tag := obsEntry(i % 16)
		s.Hit(id, tag)
	}
	s.Flush()
	kinds := countKinds(rec.Events())
	if kinds[obs.EvCommit] == 0 {
		t.Fatalf("no commit events recorded: %v", kinds)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == obs.EvCommit && (ev.Arg1 == 0 || ev.Arg1 > 8) {
			t.Fatalf("commit batch length %d outside (0, queue]", ev.Arg1)
		}
	}
}

func TestCommitPathTryFailAndForcedEvents(t *testing.T) {
	rec := obs.NewRecorder(256)
	w := New(replacer.NewLRU(64), Config{
		Batching:       true,
		QueueSize:      4,
		BatchThreshold: 2,
		Events:         rec,
	})
	s := w.NewSession()
	// Hold the lock so the session's TryLock fails at the threshold and a
	// blocking commit fires when the queue fills.
	w.lock.Lock()
	for i := 0; i < 3; i++ {
		id, tag := obsEntry(i)
		s.Hit(id, tag)
	}
	kinds := countKinds(rec.Events())
	if kinds[obs.EvTryFail] == 0 {
		t.Fatalf("no trylock-fail events while lock held: %v", kinds)
	}
	if kinds[obs.EvForcedLock] != 0 {
		t.Fatalf("forced lock before the queue filled: %v", kinds)
	}
	done := make(chan struct{})
	go func() {
		id, tag := obsEntry(3)
		s.Hit(id, tag) // queue full → blocking commit
		close(done)
	}()
	// Release only once the committer is provably blocked in Lock, so the
	// forced-lock path is taken deterministically.
	for w.Stats().Lock.Contentions == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	w.lock.Unlock()
	<-done
	kinds = countKinds(rec.Events())
	if kinds[obs.EvForcedLock] != 1 {
		t.Fatalf("forced-lock events = %d, want 1: %v", kinds[obs.EvForcedLock], kinds)
	}
}

func TestFlatCombiningEmitsPublishAndCombine(t *testing.T) {
	rec := obs.NewRecorder(256)
	w := New(replacer.NewLRU(64), Config{
		Batching:       true,
		FlatCombining:  true,
		QueueSize:      8,
		BatchThreshold: 2,
		Events:         rec,
	})
	s := w.NewSession()
	for i := 0; i < 8; i++ {
		id, tag := obsEntry(i)
		s.Hit(id, tag)
	}
	s.Flush()
	kinds := countKinds(rec.Events())
	if kinds[obs.EvPublish] == 0 {
		t.Fatalf("no publish events: %v", kinds)
	}
	if kinds[obs.EvCombine] == 0 {
		t.Fatalf("no combine events: %v", kinds)
	}
	cr := w.CombineRuns()
	if cr.Count == 0 {
		t.Fatal("combiner run-length distribution empty")
	}
	if cr.Max < 1 {
		t.Fatalf("combine run max = %d", cr.Max)
	}
}

func TestBatchSizeDistribution(t *testing.T) {
	w := New(replacer.NewLRU(64), Config{
		Batching:       true,
		QueueSize:      8,
		BatchThreshold: 4,
	})
	s := w.NewSession()
	for i := 0; i < 40; i++ {
		id, tag := obsEntry(i % 16)
		s.Hit(id, tag)
	}
	s.Flush()
	bs := w.BatchSizes()
	if bs.Count == 0 {
		t.Fatal("batch-size distribution empty")
	}
	if bs.Max > 8 {
		t.Fatalf("batch size %d exceeds queue size", bs.Max)
	}
	var total int64
	for _, c := range bs.Buckets {
		total += c
	}
	if total != bs.Count {
		t.Fatalf("bucket sum %d != count %d", total, bs.Count)
	}
	// Commits at the TryLock threshold dominate an uncontended run.
	if bs.Buckets[4] == 0 {
		t.Fatalf("no threshold-sized batches: %+v", bs)
	}
}

func TestDefaultLockProfileAttached(t *testing.T) {
	w := New(replacer.NewLRU(16), Config{Batching: true})
	p := w.LockProfile()
	if p == nil || p.Wait == nil || p.Hold == nil {
		t.Fatal("default lock profile with histograms not attached")
	}
	if p.SampleEvery != 0 && p.SampleEvery != metrics.DefaultSampleEvery {
		t.Fatalf("unexpected default sample period %d", p.SampleEvery)
	}
}

func TestConfigLockProfileOverride(t *testing.T) {
	custom := &metrics.LockProfile{SampleEvery: 1}
	w := New(replacer.NewLRU(16), Config{LockProfile: custom})
	if w.LockProfile() != custom {
		t.Fatal("Config.LockProfile not installed")
	}
	s := w.NewSession()
	id, tag := obsEntry(0)
	s.Hit(id, tag)
	if got := w.Stats().Lock.HoldSamples; got == 0 {
		t.Fatalf("always-sample profile recorded %d hold samples", got)
	}
}

func TestResetStatsClearsDistributions(t *testing.T) {
	w := New(replacer.NewLRU(64), Config{Batching: true, QueueSize: 4, BatchThreshold: 2})
	s := w.NewSession()
	for i := 0; i < 8; i++ {
		id, tag := obsEntry(i)
		s.Hit(id, tag)
	}
	s.Flush()
	if w.BatchSizes().Count == 0 {
		t.Fatal("no batches before reset")
	}
	w.ResetStats()
	if w.BatchSizes().Count != 0 || w.CombineRuns().Count != 0 {
		t.Fatal("ResetStats left distribution observations")
	}
}

func TestNilRecorderCommitPath(t *testing.T) {
	// Events disabled: the entire protocol must run with zero recorder
	// overhead paths taken (nil-safe Record).
	w := New(replacer.NewLRU(64), Config{Batching: true, FlatCombining: true, QueueSize: 4, BatchThreshold: 2})
	if w.Events() != nil {
		t.Fatal("recorder unexpectedly enabled")
	}
	s := w.NewSession()
	for i := 0; i < 16; i++ {
		id, tag := obsEntry(i % 8)
		s.Hit(id, tag)
	}
	s.Flush()
	if w.Stats().Accesses != 16 {
		t.Fatalf("accesses = %d", w.Stats().Accesses)
	}
}
