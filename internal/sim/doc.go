package sim

// This file documents the simulation model's load-bearing choices; the
// implementation lives in kernel.go (virtual-time executor), resources.go
// (CPU bank, disk, lock), and model.go (the DBMS protocol and costs).
//
// # Scheduling model
//
// Workers (backend threads) outnumber processors two to one, as in the
// paper's overcommitted configuration. A runnable worker occupies a
// processor until its scheduler quantum (Params.TimeSlice, default 3 ms)
// expires, it blocks on the replacement lock, or it starts disk I/O; it
// then re-queues FIFO. Quantum scheduling is what makes single-processor
// runs nearly contention-free (a thread performs thousands of accesses per
// slice, so it practically never loses the CPU inside the tiny critical
// section), matching the paper's observation that 1-CPU contention is too
// small to plot.
//
// Critical sections are modelled as non-preemptible: a quantum that
// expires mid-CS takes effect at the next preemptible step. A strict FIFO
// run queue would otherwise park a lock holder behind up to
// (workers−procs) full quanta, manufacturing convoys that priority boosts
// prevent in real schedulers.
//
// # Lock model
//
// The replacement lock is exclusive with FIFO waiters and *barging*
// try-acquisition: TryLock takes a free lock even when waiters are parked,
// like a real futex/spinlock trylock. Barging is essential — it is what
// lets BP-Wrapper's TryLock protocol drain batches opportunistically
// instead of joining the convoy.
//
// A blocked acquirer gives up its processor while parked. When a release
// wakes it, it first reacquires a processor (paying Params.CtxSwitch
// dispatch latency) and only then competes for the lock again, possibly
// losing to a barger and re-parking. Granting the lock before the thread
// has a CPU would book scheduling delay as lock-hold time; an earlier
// revision of this model did exactly that and produced metastable convoys
// with 97% apparent lock utilization.
//
// # Prefetching model
//
// The prefetch pass costs Params.PrefetchWork outside the lock and records
// the lock's acquisition version. If no other acquisition intervened by
// the time the lock is granted, the critical section's cache-warm-up cost
// (Params.LockWarmup) is waived; otherwise another processor has dirtied
// the protected data and the lines must be assumed invalidated, so the
// full warm-up is paid. This mechanism yields the paper's observed
// behaviour without special-casing: prefetching helps at low processor
// counts and fades exactly as acquisition frequency grows (Section IV-D's
// explanation).
//
// # Work jitter
//
// Per-access transaction work is UserWork ±25% from a per-worker
// deterministic xorshift. Identical per-access costs phase-lock the
// workers into synchronized lock arrivals — an artifact of determinism
// that timing noise prevents on real hardware.
//
// # What is real and what is virtual
//
// The replacement policies (package replacer) and workload streams
// (package workload) are the real implementations; every Contains/Hit/
// Admit decision, and therefore every hit ratio and victim choice, is
// exact. Only time is virtual: operation costs are charged from Params
// instead of being measured. Determinism: the same Config always produces
// the identical Result.
