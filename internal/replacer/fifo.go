package replacer

// FIFO evicts pages in arrival order, ignoring hits entirely. It is the
// weakest baseline in the suite but useful in hit-ratio comparisons and as
// the degenerate case many approximation arguments start from.
type FIFO struct {
	prefetchIndex
	capacity int
	table    map[PageID]*node
	lst      *list // front = newest, back = oldest
}

var _ Policy = (*FIFO)(nil)
var _ Prefetcher = (*FIFO)(nil)

// NewFIFO returns a FIFO policy holding at most capacity pages.
func NewFIFO(capacity int) *FIFO {
	checkCap("fifo", capacity)
	return &FIFO{
		capacity: capacity,
		table:    make(map[PageID]*node, capacity),
		lst:      newList(),
	}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// Cap implements Policy.
func (p *FIFO) Cap() int { return p.capacity }

// Len implements Policy.
func (p *FIFO) Len() int { return p.lst.len() }

// Contains implements Policy.
func (p *FIFO) Contains(id PageID) bool {
	_, ok := p.table[id]
	return ok
}

// Hit is a no-op for FIFO (arrival order is unaffected by accesses).
func (p *FIFO) Hit(id PageID) {}

// Admit inserts a new page at the head of the queue, evicting the oldest
// page if the policy is at capacity.
func (p *FIFO) Admit(id PageID) (victim PageID, evicted bool) {
	mustAbsent("fifo", p.Contains(id))
	if p.Len() == p.capacity {
		victim, evicted = p.Evict()
	}
	nd := &node{id: id}
	p.table[id] = nd
	p.lst.pushFront(nd)
	p.note(id, nd)
	return victim, evicted
}

// Evict removes and returns the oldest page.
func (p *FIFO) Evict() (PageID, bool) {
	nd := p.lst.popBack()
	if nd == nil {
		return 0, false
	}
	delete(p.table, nd.id)
	p.forget(nd.id)
	return nd.id, true
}

// Remove deletes a page from the resident set.
func (p *FIFO) Remove(id PageID) {
	if nd, ok := p.table[id]; ok {
		p.lst.remove(nd)
		delete(p.table, id)
		p.forget(id)
	}
}
