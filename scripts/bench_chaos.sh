#!/bin/sh
# Regenerates results/BENCH_chaos.json, the committed baseline for the
# chaos experiment (E16): the event ledger of the graceful-degradation
# machinery (per-shard circuit breakers, miss admission control,
# quarantine-pressure health) under four scripted fault campaigns —
# brownout, harddown, quarantine pressure, and recovery.
#
# The run is fully deterministic: a scripted tick clock replaces
# time.Now inside the breakers, retry backoffs are no-op sleeps, fault
# rates are only ever 0 or 1, and a single goroutine drives every
# operation in a fixed order. Re-running on any machine reproduces the
# committed file byte-for-byte; a diff after a change to internal/buffer
# or internal/storage is a real protocol difference (a shed happening
# earlier, a breaker tripping later), not scheduling noise.
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp chaos -format json -seed 1 \
    > results/BENCH_chaos.json
echo "wrote results/BENCH_chaos.json"
