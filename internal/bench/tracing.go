package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/reqtrace"
	"bpwrapper/internal/storage"
)

// ---------------------------------------------------------------------------
// Experiment E20 — request-latency decomposition via the reqtrace layer
// (DESIGN.md §15): one goroutine replays a seeded access stream through
// pg2Q, pgBat and pgBatFC with tracing at SampleEvery=1 on a virtual tick
// clock, then decomposes p50/p99 request latency by phase for hits and
// misses separately.
//
// The virtual clock advances one tick per reading, so a span's duration
// is the exact number of clock reads between its start and end — a
// machine-independent proxy for "how many timed steps this phase took".
// Everything is deterministic from the seed: the committed
// results/BENCH_tracing.json must reproduce byte-for-byte on any machine,
// and the committed numbers ARE the acceptance claims:
//
//   - every arm keeps exactly one trace per access (kept == accesses,
//     zero ring drops: nothing the tracer promised to retain was lost);
//   - miss p99 decomposes into device-read ticks that hit traces never
//     show (hits have no device-read phase rows at all);
//   - the batching arms show the combiner-handoff/lock-wait anatomy the
//     unbatched arm lacks.

// Tracing-experiment tuning: a working set at twice the frame count so the
// steady state mixes hits with evicting misses, and one write in every
// writeEvery accesses so the dirty write-back path (quarantine park +
// device write) appears in the decomposition.
const (
	TracingFrames     = 256
	TracingPages      = TracingFrames * 2
	tracingAccesses   = 1 << 13
	tracingWriteEvery = 8
)

// tracingSystems are the three arms: the naive integration, the paper's
// batching, and the flat-combining extension.
var tracingSystems = []System{System2Q, SystemBat, SystemFC}

// TracingArmRow is one system's summary: access totals, the tracer's
// keep/drop ledger, and the root-span latency quantiles (in virtual
// ticks) split by hit and miss.
type TracingArmRow struct {
	System    string `json:"system"`
	Accesses  int64  `json:"accesses"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Kept      int64  `json:"kept"`       // traces retained (head rings + tail)
	SpanDrops int64  `json:"span_drops"` // spans lost to scratch overflow
	RingDrops int64  `json:"ring_drops"` // ring slots overwritten or torn
	Emitted   int64  `json:"emitted"`    // cross-thread spans

	HitP50  int64 `json:"hit_p50_ticks"`
	HitP99  int64 `json:"hit_p99_ticks"`
	MissP50 int64 `json:"miss_p50_ticks"`
	MissP99 int64 `json:"miss_p99_ticks"`
}

// TracingPhaseRow is one (system, hit/miss, phase) cell of the
// decomposition: how many spans of that phase the class's traces carried
// and the tick quantiles of their durations.
type TracingPhaseRow struct {
	System string `json:"system"`
	Class  string `json:"class"` // "hit" or "miss"
	Phase  string `json:"phase"`
	Count  int64  `json:"count"`
	P50    int64  `json:"p50_ticks"`
	P99    int64  `json:"p99_ticks"`
	Max    int64  `json:"max_ticks"`
}

// TracingReport is the full E20 result.
type TracingReport struct {
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	Frames     int               `json:"frames"`
	Pages      int               `json:"pages"`
	Accesses   int               `json:"accesses"`
	Arms       []TracingArmRow   `json:"arms"`
	Phases     []TracingPhaseRow `json:"phases"`
}

// TracingExperiment runs E20: each arm single-threaded over the same
// seeded stream, fully traced on a virtual tick clock.
func TracingExperiment(o Options) (*TracingReport, error) {
	o = o.withDefaults()
	rep := &TracingReport{
		Experiment: "tracing",
		Seed:       o.Seed,
		Frames:     TracingFrames,
		Pages:      TracingPages,
		Accesses:   tracingAccesses,
	}
	for _, sys := range tracingSystems {
		arm, phases, err := tracingPoint(sys, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("tracing %s: %w", sys.Name, err)
		}
		rep.Arms = append(rep.Arms, arm)
		rep.Phases = append(rep.Phases, phases...)
	}
	return rep, nil
}

// tracingPoint drives one arm and decomposes its spans.
func tracingPoint(sys System, seed int64) (TracingArmRow, []TracingPhaseRow, error) {
	pol, ok := replacer.New(sys.Policy, TracingFrames)
	if !ok {
		return TracingArmRow{}, nil, fmt.Errorf("unknown policy %q", sys.Policy)
	}
	var tick int64
	pool := buffer.New(buffer.Config{
		Frames:  TracingFrames,
		Policy:  pol,
		Wrapper: sys.WrapperConfig(0, 0),
		Device:  storage.NewNullDevice(),
		Trace: reqtrace.Config{
			Enable:      true,
			SampleEvery: 1, // trace every request: the decomposition wants the census, not a sample
			SLO:         time.Hour,
			RingSize:    1 << 16, // retain every span; the committed RingDrops==0 proves it
			Clock:       func() int64 { tick++; return tick },
		},
	})
	s := pool.NewSession()
	r := uint64(seed)*0x9e3779b97f4a7c15 + 1
	var pg page.Page
	for i := 0; i < tracingAccesses; i++ {
		r = splitmix64(&r)
		id := page.PageID(r%uint64(TracingPages) + 1)
		if i%tracingWriteEvery == tracingWriteEvery-1 {
			ref, err := pool.GetWrite(s, id)
			if err != nil {
				return TracingArmRow{}, nil, err
			}
			pg.Stamp(id)
			copy(ref.Data(), pg.Data[:])
			ref.MarkDirty()
			ref.Release()
			continue
		}
		ref, err := pool.Get(s, id)
		if err != nil {
			return TracingArmRow{}, nil, err
		}
		ref.Release()
	}
	s.Flush()

	st := pool.Stats()
	ts := pool.Tracer().Snapshot()
	arm := TracingArmRow{
		System:    sys.Name,
		Accesses:  st.Hits + st.Misses,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Kept:      ts.KeptMain + ts.KeptTail,
		SpanDrops: ts.SpanDrops,
		RingDrops: ts.RingDrops,
		Emitted:   ts.Emitted,
	}

	// Group the retained spans into traces and classify each trace: a
	// device-read span means the request missed.
	type traceAcc struct {
		spans []reqtrace.Span
		miss  bool
	}
	byID := make(map[uint64]*traceAcc)
	for _, sp := range pool.Tracer().Spans() {
		ta := byID[sp.Trace]
		if ta == nil {
			ta = &traceAcc{}
			byID[sp.Trace] = ta
		}
		ta.spans = append(ta.spans, sp)
		if sp.Phase == reqtrace.PhaseDeviceRead {
			ta.miss = true
		}
	}
	type cell struct {
		class string
		phase reqtrace.Phase
	}
	durs := make(map[cell][]int64)
	var hitRoots, missRoots []int64
	for _, ta := range byID {
		class := "hit"
		if ta.miss {
			class = "miss"
		}
		for _, sp := range ta.spans {
			durs[cell{class, sp.Phase}] = append(durs[cell{class, sp.Phase}], sp.Dur)
			if sp.Phase == reqtrace.PhaseRequest {
				if ta.miss {
					missRoots = append(missRoots, sp.Dur)
				} else {
					hitRoots = append(hitRoots, sp.Dur)
				}
			}
		}
	}
	arm.HitP50, arm.HitP99 = tickQuantiles(hitRoots)
	arm.MissP50, arm.MissP99 = tickQuantiles(missRoots)

	cells := make([]cell, 0, len(durs))
	for c := range durs {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].class != cells[j].class {
			return cells[i].class < cells[j].class
		}
		return cells[i].phase < cells[j].phase
	})
	rows := make([]TracingPhaseRow, 0, len(cells))
	for _, c := range cells {
		ds := durs[c]
		p50, p99 := tickQuantiles(ds)
		max := int64(0)
		for _, d := range ds {
			if d > max {
				max = d
			}
		}
		rows = append(rows, TracingPhaseRow{
			System: sys.Name, Class: c.class, Phase: c.phase.String(),
			Count: int64(len(ds)), P50: p50, P99: p99, Max: max,
		})
	}
	return arm, rows, nil
}

// tickQuantiles returns the exact p50 and p99 of the samples (ceil-rank
// convention); (0, 0) when empty.
func tickQuantiles(ds []int64) (p50, p99 int64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]int64(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) int64 {
		r := int(q*float64(len(sorted)) + 0.9999999)
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return sorted[r-1]
	}
	return rank(0.50), rank(0.99)
}

// JSONTracing writes the report as the committed-baseline JSON document.
func JSONTracing(w io.Writer, rep *TracingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintTracing renders the arm summaries and the phase decomposition.
func PrintTracing(w io.Writer, rep *TracingReport) {
	fmt.Fprintln(w, "Request-latency decomposition (E20) — reqtrace spans on a virtual tick clock")
	fmt.Fprintf(w, "\nPer-arm summary (%d accesses over %d pages in %d frames; durations in clock ticks)\n",
		rep.Accesses, rep.Pages, rep.Frames)
	fmt.Fprintf(w, "  %-9s %9s %8s %8s %8s %6s %6s %8s %8s %9s %9s\n",
		"system", "accesses", "hits", "misses", "kept", "sdrop", "rdrop", "hit-p50", "hit-p99", "miss-p50", "miss-p99")
	for _, a := range rep.Arms {
		fmt.Fprintf(w, "  %-9s %9d %8d %8d %8d %6d %6d %8d %8d %9d %9d\n",
			a.System, a.Accesses, a.Hits, a.Misses, a.Kept, a.SpanDrops, a.RingDrops,
			a.HitP50, a.HitP99, a.MissP50, a.MissP99)
	}
	fmt.Fprintln(w, "\nPhase decomposition — span counts and tick quantiles by hit/miss class")
	fmt.Fprintf(w, "  %-9s %-5s %-17s %8s %7s %7s %7s\n",
		"system", "class", "phase", "count", "p50", "p99", "max")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  %-9s %-5s %-17s %8d %7d %7d %7d\n",
			p.System, p.Class, p.Phase, p.Count, p.P50, p.P99, p.Max)
	}
}

// CSVTracing writes the phase decomposition in long form, arm summaries
// first.
func CSVTracing(w io.Writer, rep *TracingReport) error {
	if _, err := fmt.Fprintln(w, "kind,system,class,phase,count,p50_ticks,p99_ticks,max_ticks,accesses,hits,misses,kept,span_drops,ring_drops,hit_p50,hit_p99,miss_p50,miss_p99"); err != nil {
		return err
	}
	for _, a := range rep.Arms {
		if _, err := fmt.Fprintf(w, "arm,%s,,,,,,,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			a.System, a.Accesses, a.Hits, a.Misses, a.Kept, a.SpanDrops, a.RingDrops,
			a.HitP50, a.HitP99, a.MissP50, a.MissP99); err != nil {
			return err
		}
	}
	for _, p := range rep.Phases {
		if _, err := fmt.Fprintf(w, "phase,%s,%s,%s,%d,%d,%d,%d,,,,,,,,,,\n",
			p.System, p.Class, p.Phase, p.Count, p.P50, p.P99, p.Max); err != nil {
			return err
		}
	}
	return nil
}
