// Command bpload drives the real (goroutine-based) buffer pool with a
// chosen workload and prints live statistics — the operational companion
// to the experiment harnesses, useful for eyeballing behaviour on the
// machine at hand.
//
// Examples:
//
//	bpload -workload tpcc -frames 4096 -policy lirs -duration 10s
//	bpload -workload ycsb-a -policy 2q -batching=false       # feel the lock
//	bpload -workload zipf -frames 512 -disk 250µs            # I/O bound
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bpwrapper"
	"bpwrapper/internal/txn"
)

func main() {
	var (
		wlName      = flag.String("workload", "tpcw", "workload name (see bpwrapper.WorkloadByName)")
		policyName  = flag.String("policy", "2q", "replacement algorithm")
		frames      = flag.Int("frames", 0, "buffer frames (0 = full working set)")
		workers     = flag.Int("workers", 8, "concurrent backends")
		duration    = flag.Duration("duration", 5*time.Second, "run length")
		batching    = flag.Bool("batching", true, "BP-Wrapper batching")
		prefetching = flag.Bool("prefetching", true, "BP-Wrapper prefetching")
		adaptive    = flag.Bool("adaptive", false, "adaptive batch threshold")
		diskLat     = flag.Duration("disk", 0, "simulated disk read latency (0 = instant memory device)")
		bgwriter    = flag.Bool("bgwriter", true, "run the background writer")
		statsEvery  = flag.Duration("stats", time.Second, "live stats interval")
		seed        = flag.Int64("seed", 1, "workload seed")
		obsAddr     = flag.String("obs", "", "serve /metrics, /debug/vars, /debug/events and pprof on this address (e.g. :6060)")
		recorder    = flag.Int("recorder", 4096, "per-shard flight-recorder ring size (0 disables)")
	)
	flag.Parse()

	wl, err := bpwrapper.WorkloadByName(*wlName)
	if err != nil {
		fatal(err)
	}
	nFrames := *frames
	if nFrames <= 0 {
		nFrames = wl.DataPages()
	}
	policy, ok := bpwrapper.NewPolicy(*policyName, nFrames)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	var device bpwrapper.Device = bpwrapper.NewMemDevice()
	if *diskLat > 0 {
		device = bpwrapper.NewSimDisk(bpwrapper.NewMemDevice(), bpwrapper.SimDiskConfig{ReadLatency: *diskLat})
	}
	pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
		Frames: nFrames,
		Policy: policy,
		Wrapper: bpwrapper.WrapperConfig{
			Batching:          *batching,
			Prefetching:       *prefetching,
			AdaptiveThreshold: *adaptive,
		},
		Device:       device,
		RecorderSize: *recorder,
	})
	var bw *bpwrapper.BackgroundWriter
	if *bgwriter {
		bw = pool.StartBackgroundWriter(bpwrapper.BackgroundWriterConfig{})
		defer bw.Stop()
	}
	if *obsAddr != "" {
		reg := bpwrapper.NewObsRegistry()
		pool.RegisterObs(reg)
		if bw != nil {
			bw.RegisterObs(reg)
		}
		srv, err := bpwrapper.NewObsServer(*obsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("obs: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	fmt.Printf("bpload: %s over %d frames (%s, batching=%v prefetching=%v), %d workers, %v\n",
		wl.Name(), nFrames, *policyName, *batching, *prefetching, *workers, *duration)

	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		var lastHits, lastMisses int64
		for {
			select {
			case <-ticker.C:
				st := pool.Stats()
				dh, dm := st.Hits-lastHits, st.Misses-lastMisses
				lastHits, lastMisses = st.Hits, st.Misses
				hr := 0.0
				if dh+dm > 0 {
					hr = float64(dh) / float64(dh+dm)
				}
				fmt.Printf("  %8d acc/s  hit %5.1f%%  dirty %4d  free %4d  lock acq %d  contended %d\n",
					(dh+dm)*int64(time.Second / *statsEvery), 100*hr,
					st.Dirty, st.Free, st.Wrapper.Lock.Acquisitions, st.Wrapper.Lock.Contentions)
			case <-stop:
				return
			}
		}
	}()

	res, err := txn.Run(txn.Config{
		Pool:       pool,
		Workload:   wl,
		Workers:    *workers,
		Duration:   *duration,
		Seed:       *seed,
		TouchBytes: true,
	})
	close(stop)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ncompleted %d txns in %v (%.0f tps)\n", res.Txns, res.Elapsed.Round(time.Millisecond), res.ThroughputTPS)
	fmt.Printf("accesses    %d (hit ratio %.2f%%)\n", res.Accesses, 100*res.HitRatio)
	fmt.Printf("response    mean %v  p50 %v  p99 %v\n",
		res.Response.Mean.Round(time.Microsecond),
		res.Response.P50.Round(time.Microsecond),
		res.Response.P99.Round(time.Microsecond))
	fmt.Printf("lock        %d acquisitions, %d contended, %d TryLock failures\n",
		res.Wrapper.Lock.Acquisitions, res.Wrapper.Lock.Contentions, res.Wrapper.Lock.TryFailures)
	fmt.Printf("batching    %d commits (%d TryLock, %d forced), %d stale dropped\n",
		res.Wrapper.Commits, res.Wrapper.TryCommits, res.Wrapper.ForcedLocks, res.Wrapper.Dropped)
	if n, err := pool.FlushDirty(); err == nil && n > 0 {
		fmt.Printf("flushed     %d dirty pages on shutdown\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpload:", err)
	os.Exit(1)
}
