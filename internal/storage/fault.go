package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/page"
)

// Error taxonomy for the fault-tolerance stack. Devices that fail wrap one
// of these sentinels so callers can classify failures with errors.Is:
//
//   - ErrTransient: the operation may succeed if retried (a RetryDevice
//     retries it automatically).
//   - ErrPermanent: retrying is pointless; the error must be surfaced.
//   - ErrCorruptPage: the bytes read do not match the checksum recorded at
//     write time — a torn or bit-rotted page. Retryable, because rereading
//     a transiently corrupted transfer can succeed.
var (
	ErrTransient   = errors.New("storage: transient device error")
	ErrPermanent   = errors.New("storage: permanent device error")
	ErrCorruptPage = errors.New("storage: page checksum mismatch")
)

// Retryable reports whether err is worth retrying: transient faults and
// checksum mismatches (the next read may return an intact copy); permanent
// errors and invalid-argument errors are not.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrCorruptPage)
}

// FaultConfig tunes a FaultDevice's probabilistic injection. All
// probabilities are in [0, 1] and are evaluated with a deterministic
// seeded generator, so a given (seed, operation sequence) always injects
// the same faults.
type FaultConfig struct {
	// Seed feeds the deterministic fault generator.
	Seed int64

	// ReadFailProb is the probability that a read fails.
	ReadFailProb float64

	// WriteFailProb is the probability that a write fails.
	WriteFailProb float64

	// CorruptProb is the probability that a read succeeds but returns a
	// page with one byte flipped, modelling torn writes and bit rot. A
	// ChecksumDevice layered above detects these as ErrCorruptPage.
	CorruptProb float64

	// SpikeProb is the probability that an operation stalls for
	// SpikeLatency before proceeding, modelling a degraded device.
	SpikeProb float64

	// SpikeLatency is the stall duration. Zero with SpikeProb > 0 means
	// 1ms.
	SpikeLatency time.Duration

	// SpikeWriteOnly restricts latency spikes to writes, modelling a
	// device whose write path is wedged while reads stay healthy (the
	// "stuck write" chaos scenario). The spike variate is still drawn
	// for reads so the deterministic sequence does not shift.
	SpikeWriteOnly bool

	// Permanent makes injected failures wrap ErrPermanent instead of
	// ErrTransient, modelling a dead sector rather than a flaky bus.
	Permanent bool
}

// FaultDevice wraps a Device with deterministic, seedable fault injection:
// transient or permanent read/write errors, latency spikes, and page
// corruption. It is the library form of the ad-hoc flaky devices the
// failure tests used to hand-roll, and the substrate of the bpbench
// -exp faults experiment.
//
// Besides the probabilistic FaultConfig knobs, deterministic triggers are
// available for tests: FailNextReads/FailNextWrites fail an exact number
// of upcoming operations, and SetFailPage fails every read of one page
// until cleared. All methods are safe for concurrent use.
type FaultDevice struct {
	backing Device

	mu  sync.Mutex // guards rng and the probabilistic config
	rng uint64
	cfg FaultConfig

	failPage              atomic.Uint64 // PageID whose reads always fail (0 = none)
	failReads, failWrites atomic.Int64  // countdowns of operations to fail

	injectedReadFaults  atomic.Int64
	injectedWriteFaults atomic.Int64
	injectedCorruptions atomic.Int64
	injectedSpikes      atomic.Int64
}

// NewFaultDevice wraps backing with fault injection per cfg.
func NewFaultDevice(backing Device, cfg FaultConfig) *FaultDevice {
	if cfg.SpikeLatency <= 0 {
		cfg.SpikeLatency = time.Millisecond
	}
	return &FaultDevice{
		backing: backing,
		rng:     uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		cfg:     cfg,
	}
}

// FailNextReads makes the next n reads fail; n <= 0 clears the countdown.
func (d *FaultDevice) FailNextReads(n int64) { d.failReads.Store(n) }

// FailNextWrites makes the next n writes fail; n <= 0 clears the countdown.
func (d *FaultDevice) FailNextWrites(n int64) { d.failWrites.Store(n) }

// SetFailPage makes every read of id fail until cleared with
// page.InvalidPageID.
func (d *FaultDevice) SetFailPage(id page.PageID) { d.failPage.Store(uint64(id)) }

// SetReadFailRate replaces the probabilistic read-failure rate.
func (d *FaultDevice) SetReadFailRate(p float64) {
	d.mu.Lock()
	d.cfg.ReadFailProb = p
	d.mu.Unlock()
}

// SetWriteFailRate replaces the probabilistic write-failure rate. Setting
// it to 1 kills all writes; 0 restores the device.
func (d *FaultDevice) SetWriteFailRate(p float64) {
	d.mu.Lock()
	d.cfg.WriteFailProb = p
	d.mu.Unlock()
}

// SetCorruptRate replaces the probabilistic read-corruption rate.
func (d *FaultDevice) SetCorruptRate(p float64) {
	d.mu.Lock()
	d.cfg.CorruptProb = p
	d.mu.Unlock()
}

// SetSpike replaces the probabilistic latency-spike rate and duration.
// A non-positive latency keeps the current one.
func (d *FaultDevice) SetSpike(p float64, latency time.Duration) {
	d.mu.Lock()
	d.cfg.SpikeProb = p
	if latency > 0 {
		d.cfg.SpikeLatency = latency
	}
	d.mu.Unlock()
}

// SetSpikeWriteOnly restricts (or unrestricts) latency spikes to writes.
func (d *FaultDevice) SetSpikeWriteOnly(writeOnly bool) {
	d.mu.Lock()
	d.cfg.SpikeWriteOnly = writeOnly
	d.mu.Unlock()
}

// Spikes reports the latency spikes injected so far.
func (d *FaultDevice) Spikes() int64 { return d.injectedSpikes.Load() }

// Backing returns the wrapped device, letting callers walk a wrapper
// stack.
func (d *FaultDevice) Backing() Device { return d.backing }

// Injected reports the faults injected so far: failed reads, failed
// writes, and corrupted reads.
func (d *FaultDevice) Injected() (reads, writes, corruptions int64) {
	return d.injectedReadFaults.Load(), d.injectedWriteFaults.Load(), d.injectedCorruptions.Load()
}

// takeTicket atomically consumes one unit of a failure countdown. The
// load-then-CAS loop makes concurrent callers claim distinct tickets (a
// plain Load-then-Add pair would double-decrement under contention).
func takeTicket(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n <= 0 {
			return false
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// rand returns the next deterministic uniform variate in [0, 1).
// Callers must hold d.mu.
func (d *FaultDevice) rand() float64 {
	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// decide rolls the probabilistic dice for one operation in a single locked
// section so the variate sequence is deterministic for a given op order.
func (d *FaultDevice) decide(read bool) (fail, corrupt bool, spike time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	failProb := d.cfg.WriteFailProb
	if read {
		failProb = d.cfg.ReadFailProb
	}
	if d.cfg.SpikeProb > 0 && d.rand() < d.cfg.SpikeProb {
		if !read || !d.cfg.SpikeWriteOnly {
			spike = d.cfg.SpikeLatency
		}
	}
	if failProb > 0 && d.rand() < failProb {
		fail = true
	}
	if read && d.cfg.CorruptProb > 0 && d.rand() < d.cfg.CorruptProb {
		corrupt = true
	}
	return fail, corrupt, spike
}

func (d *FaultDevice) errFor(op string, id page.PageID) error {
	sentinel := ErrTransient
	d.mu.Lock()
	if d.cfg.Permanent {
		sentinel = ErrPermanent
	}
	d.mu.Unlock()
	return fmt.Errorf("storage: injected %s fault on page %v: %w", op, id, sentinel)
}

// ReadPage implements Device.
func (d *FaultDevice) ReadPage(id page.PageID, p *page.Page) error {
	if uint64(id) == d.failPage.Load() && id.Valid() {
		d.injectedReadFaults.Add(1)
		return d.errFor("read", id)
	}
	if takeTicket(&d.failReads) {
		d.injectedReadFaults.Add(1)
		return d.errFor("read", id)
	}
	fail, corrupt, spike := d.decide(true)
	if spike > 0 {
		d.injectedSpikes.Add(1)
		time.Sleep(spike)
	}
	if fail {
		d.injectedReadFaults.Add(1)
		return d.errFor("read", id)
	}
	if err := d.backing.ReadPage(id, p); err != nil {
		return err
	}
	if corrupt {
		d.mu.Lock()
		i := int(d.rand() * page.Size)
		d.mu.Unlock()
		if i >= page.Size {
			i = page.Size - 1
		}
		p.Data[i] ^= 0xFF
		d.injectedCorruptions.Add(1)
	}
	return nil
}

// WritePage implements Device.
func (d *FaultDevice) WritePage(p *page.Page) error {
	if takeTicket(&d.failWrites) {
		d.injectedWriteFaults.Add(1)
		return d.errFor("write", p.ID)
	}
	fail, _, spike := d.decide(false)
	if spike > 0 {
		d.injectedSpikes.Add(1)
		time.Sleep(spike)
	}
	if fail {
		d.injectedWriteFaults.Add(1)
		return d.errFor("write", p.ID)
	}
	return d.backing.WritePage(p)
}

// Stats implements Device: the backing device's counters plus the faults
// injected by this layer.
func (d *FaultDevice) Stats() DeviceStats {
	s := d.backing.Stats()
	s.ReadErrors += d.injectedReadFaults.Load()
	s.WriteErrors += d.injectedWriteFaults.Load()
	return s
}
