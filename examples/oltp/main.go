// OLTP: the paper's DBT-2 scenario on the real (goroutine) stack. A
// TPC-C-like order-entry workload — New-Order, Payment, Order-Status,
// Delivery and Stock-Level transactions over warehouse-scaled tables —
// runs against the real buffer pool with a buffer far smaller than the
// database and a latency-simulating disk, the Figure 8 regime where hit
// ratio decides throughput. Dirty pages (Payment updates warehouse and
// district rows on nearly every transaction) are written back on eviction.
package main

import (
	"fmt"
	"log"
	"time"

	"bpwrapper"
	"bpwrapper/internal/txn"
)

func main() {
	wl := bpwrapper.NewTPCC(bpwrapper.TPCCConfig{Warehouses: 4, Items: 5000, Customers: 1500})
	dbPages := wl.DataPages()
	fmt.Printf("TPC-C-like database: %d pages (%.0f MB)\n\n", dbPages, float64(dbPages)*8192/(1<<20))

	fmt.Printf("%-8s %10s %12s %12s %12s %10s\n",
		"policy", "buffer%", "hit ratio", "txns/sec", "p99 resp", "writebacks")
	for _, name := range []string{"clock", "2q", "lirs"} {
		for _, frac := range []float64{0.05, 0.25} {
			frames := int(float64(dbPages) * frac)
			policy, _ := bpwrapper.NewPolicy(name, frames)
			disk := bpwrapper.NewSimDisk(bpwrapper.NewMemDevice(), bpwrapper.SimDiskConfig{
				ReadLatency: 250 * time.Microsecond,
				Parallelism: 8,
			})
			pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
				Frames:  frames,
				Policy:  policy,
				Wrapper: bpwrapper.WrapperConfig{Batching: true, Prefetching: true},
				Device:  disk,
			})
			res, err := txn.Run(txn.Config{
				Pool:       pool,
				Workload:   wl,
				Workers:    8,
				Duration:   700 * time.Millisecond,
				Seed:       42,
				TouchBytes: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Flush remaining dirty pages, as a checkpoint would.
			if _, err := pool.FlushDirty(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %9.0f%% %11.1f%% %12.0f %12s %10d\n",
				name, 100*frac, 100*res.HitRatio, res.ThroughputTPS,
				res.Response.P99.Round(10*time.Microsecond), disk.Stats().Writes)
		}
	}
	fmt.Println("\nSmall buffers are I/O bound: the advanced algorithms' higher hit")
	fmt.Println("ratios buy real throughput — the paper's motivation for wrapping")
	fmt.Println("them instead of settling for clock.")
}
