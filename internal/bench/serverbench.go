package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/server"
	"bpwrapper/internal/storage"
	"bpwrapper/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment E18 — serving the pool over the wire (DESIGN.md §13): a
// loopback bpserver driven through the binary protocol, answering two
// questions:
//
//   - ledger: one client replays a seeded op stream (GET/PUT/INVALIDATE
//     with a closing FLUSH) synchronously per burst, per (shards ×
//     pipeline-depth) arm, plus one deliberately malformed frame on a
//     second connection. Every number — per-op request counts, per-status
//     response counts, bytes in/out, the pool's hit/miss split — is exact
//     and byte-identical on any machine: the op stream is a fixed
//     function of the seed, frames are fixed-size, and the snapshot is
//     taken at quiescence BEFORE any STATS call (the STATS JSON length is
//     the one nondeterministic frame). This is the committed
//     results/BENCH_server.json baseline, drift-checked by CI: it pins
//     the wire format's byte accounting, the request taxonomy, and that
//     bad frames are counted and contained.
//   - scaling: a RunFleet sweep over worker counts against the same
//     loopback server — wall-clock throughput, real mode only, never
//     committed.

// Server-experiment tuning: a working set that fits the pool so the
// ledger arms measure protocol accounting, not eviction noise.
const (
	ServerFrames = 256
	ServerPages  = 192
	serverOps    = 4096
)

// ServerLedgerRow is one (shards, pipeline) arm of the deterministic
// ledger. All fields are exact post-quiescence totals.
type ServerLedgerRow struct {
	Shards    int              `json:"shards"`
	Pipeline  int              `json:"pipeline"`
	Ops       int64            `json:"ops"`
	Requests  map[string]int64 `json:"requests"`  // by op name
	Responses map[string]int64 `json:"responses"` // by status name
	BytesIn   int64            `json:"bytes_in"`
	BytesOut  int64            `json:"bytes_out"`
	Hits      int64            `json:"hits"`
	Misses    int64            `json:"misses"`
	Flushed   int64            `json:"flushed"`    // pages written by the closing FLUSH
	BadFrames int64            `json:"bad_frames"` // from the malformed-frame probe
}

// ServerScaleRow is one (workers) point of the real-mode fleet sweep.
type ServerScaleRow struct {
	Workers    int     `json:"workers"`
	Txns       int64   `json:"txns"`
	TPS        float64 `json:"tps"`
	Reads      int64   `json:"reads"`
	Writes     int64   `json:"writes"`
	Overloaded int64   `json:"overloaded"`
	BurstP99Ns float64 `json:"burst_p99_ns"`
}

// ServerReport is the full E18 result; LedgerRows is always present (and
// is the committed baseline), ScaleRows only in real mode.
type ServerReport struct {
	Experiment string            `json:"experiment"`
	Mode       string            `json:"mode"`
	Seed       int64             `json:"seed"`
	Frames     int               `json:"frames"`
	Pages      int               `json:"pages"`
	LedgerRows []ServerLedgerRow `json:"ledger_rows"`
	ScaleRows  []ServerScaleRow  `json:"scale_rows,omitempty"`
}

// ServerExperiment runs E18. The ledger always runs; the fleet sweep
// runs only in real mode, over worker counts 1,2,4,… capped at procs.
func ServerExperiment(procs int, o Options) (*ServerReport, error) {
	o = o.withDefaults()
	rep := &ServerReport{
		Experiment: "server",
		Mode:       string(o.Mode),
		Seed:       o.Seed,
		Frames:     ServerFrames,
		Pages:      ServerPages,
	}
	for _, shards := range []int{1, 2} {
		for _, pipeline := range []int{1, 16} {
			row, err := serverLedgerArm(shards, pipeline, o.Seed)
			if err != nil {
				return nil, fmt.Errorf("server ledger shards=%d pipeline=%d: %w", shards, pipeline, err)
			}
			rep.LedgerRows = append(rep.LedgerRows, row)
		}
	}
	if o.Mode == ModeReal {
		wl := workload.Workload(nil)
		if len(o.Workloads) > 0 {
			wl = o.Workloads[0]
		} else {
			var err error
			wl, err = workload.ByName("tpcc")
			if err != nil {
				return nil, err
			}
		}
		for w := 1; w <= procs; w *= 2 {
			row, err := serverScalePoint(wl, w, o)
			if err != nil {
				return nil, fmt.Errorf("server scaling workers=%d: %w", w, err)
			}
			rep.ScaleRows = append(rep.ScaleRows, row)
		}
	}
	return rep, nil
}

// serverPool builds one arm's pool: memory device, LRU, defaults
// elsewhere — the arm measures the protocol layer, not the policy.
func serverPool(shards int) *buffer.Pool {
	cfg := buffer.Config{
		Frames: ServerFrames,
		Shards: shards,
		Device: storage.NewMemDevice(),
	}
	f := replacer.Factories()["lru"]
	if shards > 1 {
		cfg.PolicyFactory = f
	} else {
		cfg.Policy = f(ServerFrames)
	}
	return buffer.New(cfg)
}

// serverLedgerArm drives one (shards, pipeline) arm: the seeded op
// stream through one client, the malformed-frame probe through another,
// then a quiescent snapshot of the server and pool counters.
func serverLedgerArm(shards, pipeline int, seed int64) (ServerLedgerRow, error) {
	pool := serverPool(shards)
	srv, err := server.New(server.Config{Pool: pool, Addr: "127.0.0.1:0"})
	if err != nil {
		return ServerLedgerRow{}, err
	}
	defer srv.Close()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		return ServerLedgerRow{}, err
	}
	defer c.Close()

	// The op stream: a fixed function of the seed. 60% GET, 30% PUT,
	// 10% INVALIDATE over the working set, pipelined at the arm's depth.
	r := uint64(seed)*0x9e3779b97f4a7c15 + 1
	var ops []server.Op
	pages := make([]page.Page, pipeline)
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		results, err := c.Do(ops)
		ops = ops[:0]
		if err != nil {
			return err
		}
		for i := range results {
			if results[i].Err != nil {
				return fmt.Errorf("op %d: %w", i, results[i].Err)
			}
		}
		return nil
	}
	for i := 0; i < serverOps; i++ {
		r = splitmix64(&r)
		id := page.NewPageID(1, r%ServerPages)
		r = splitmix64(&r)
		switch {
		case r%10 < 6:
			ops = append(ops, server.Op{Code: server.OpGet, Page: id})
		case r%10 < 9:
			pg := &pages[len(ops)]
			pg.Stamp(id)
			ops = append(ops, server.Op{Code: server.OpPut, Page: id, Data: pg.Data[:]})
		default:
			ops = append(ops, server.Op{Code: server.OpInvalidate, Page: id})
		}
		if len(ops) >= pipeline {
			if err := flush(); err != nil {
				return ServerLedgerRow{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return ServerLedgerRow{}, err
	}
	flushed, err := c.Flush()
	if err != nil {
		return ServerLedgerRow{}, err
	}

	// The malformed-frame probe: a length word below the header minimum.
	// The server must count it and retire only that connection.
	bad, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		return ServerLedgerRow{}, err
	}
	if _, err := bad.Write([]byte{0x00, 0x00, 0x00, 0x03}); err != nil {
		bad.Close()
		return ServerLedgerRow{}, err
	}
	bad.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().BadFrames == 0 {
		if time.Now().After(deadline) {
			return ServerLedgerRow{}, fmt.Errorf("malformed frame never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// Quiescent snapshot, BEFORE any STATS call: the STATS response is
	// the one frame whose length varies, and it must stay out of the
	// committed byte ledger.
	st := srv.Stats()
	pst := pool.Stats()
	row := ServerLedgerRow{
		Shards:    shards,
		Pipeline:  pipeline,
		Ops:       serverOps,
		Requests:  st.Requests,
		Responses: st.Responses,
		BytesIn:   st.BytesIn,
		BytesOut:  st.BytesOut,
		Hits:      pst.Hits,
		Misses:    pst.Misses,
		Flushed:   int64(flushed),
		BadFrames: st.BadFrames,
	}
	if err := pool.Close(); err != nil {
		return ServerLedgerRow{}, err
	}
	return row, nil
}

// serverScalePoint runs one fleet point against a fresh loopback server.
func serverScalePoint(wl workload.Workload, workers int, o Options) (ServerScaleRow, error) {
	pool := serverPool(2)
	srv, err := server.New(server.Config{Pool: pool, Addr: "127.0.0.1:0"})
	if err != nil {
		return ServerScaleRow{}, err
	}
	res, err := server.RunFleet(server.FleetConfig{
		Addr:          srv.Addr(),
		Workload:      wl,
		Workers:       workers,
		Duration:      o.Duration,
		Seed:          o.Seed,
		PipelineDepth: 8,
	})
	if err != nil {
		srv.Close()
		return ServerScaleRow{}, err
	}
	if err := srv.Drain(30 * time.Second); err != nil {
		return ServerScaleRow{}, err
	}
	row := ServerScaleRow{
		Workers:    workers,
		Txns:       res.Counters.Txns,
		Reads:      res.Counters.Reads,
		Writes:     res.Counters.Writes,
		Overloaded: res.Counters.Overloaded,
	}
	if res.Elapsed > 0 {
		row.TPS = float64(res.Counters.Txns) / res.Elapsed.Seconds()
	}
	if res.Latency.Count() > 0 {
		row.BurstP99Ns = float64(res.Latency.Quantile(0.99).Nanoseconds())
	}
	return row, nil
}

// JSONServer writes the report as the committed-baseline JSON document.
// Only LedgerRows are deterministic; scripts/bench_server.sh therefore
// runs in sim mode, where ScaleRows are absent and the document is
// byte-stable.
func JSONServer(w io.Writer, rep *ServerReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintServer renders both sweeps.
func PrintServer(w io.Writer, rep *ServerReport) {
	fmt.Fprintln(w, "Serving over the wire (E18) — loopback bpserver protocol ledger")
	fmt.Fprintf(w, "\nByte/op ledger (%d seeded ops over %d pages in %d frames, 1 client)\n",
		serverOps, rep.Pages, rep.Frames)
	fmt.Fprintf(w, "  %6s %9s %7s %7s %7s %7s %10s %12s %8s %8s %8s\n",
		"shards", "pipeline", "gets", "puts", "inval", "flush", "bytes_in", "bytes_out", "hits", "misses", "badfrm")
	for _, r := range rep.LedgerRows {
		fmt.Fprintf(w, "  %6d %9d %7d %7d %7d %7d %10d %12d %8d %8d %8d\n",
			r.Shards, r.Pipeline,
			r.Requests["get"], r.Requests["put"], r.Requests["invalidate"], r.Requests["flush"],
			r.BytesIn, r.BytesOut, r.Hits, r.Misses, r.BadFrames)
	}
	if len(rep.ScaleRows) == 0 {
		fmt.Fprintln(w, "\n(fleet sweep requires -mode real: it measures wall-clock throughput over TCP)")
		return
	}
	fmt.Fprintln(w, "\nRemote fleet scaling — transactions/s by worker count")
	fmt.Fprintf(w, "  %7s %10s %12s %10s %10s %8s %12s\n",
		"workers", "txns", "tps", "reads", "writes", "shed", "burst p99")
	for _, r := range rep.ScaleRows {
		fmt.Fprintf(w, "  %7d %10d %12.0f %10d %10d %8d %12s\n",
			r.Workers, r.Txns, r.TPS, r.Reads, r.Writes, r.Overloaded,
			time.Duration(r.BurstP99Ns).Round(time.Microsecond))
	}
}

// CSVServer writes both sweeps in long form, ledger rows first.
func CSVServer(w io.Writer, rep *ServerReport) error {
	if _, err := fmt.Fprintln(w, "kind,shards,pipeline,workers,gets,puts,invalidates,flushes,bytes_in,bytes_out,hits,misses,bad_frames,txns,tps,reads,writes,overloaded"); err != nil {
		return err
	}
	for _, r := range rep.LedgerRows {
		if _, err := fmt.Fprintf(w, "ledger,%d,%d,,%d,%d,%d,%d,%d,%d,%d,%d,%d,,,,,\n",
			r.Shards, r.Pipeline,
			r.Requests["get"], r.Requests["put"], r.Requests["invalidate"], r.Requests["flush"],
			r.BytesIn, r.BytesOut, r.Hits, r.Misses, r.BadFrames); err != nil {
			return err
		}
	}
	for _, r := range rep.ScaleRows {
		if _, err := fmt.Fprintf(w, "scaling,,,%d,,,,,,,,,,%d,%.1f,%d,%d,%d\n",
			r.Workers, r.Txns, r.TPS, r.Reads, r.Writes, r.Overloaded); err != nil {
			return err
		}
	}
	return nil
}
