package buffer

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// blockingReadDevice parks the next `block` reads on a gate so tests can
// hold a miss in flight at the device while probing admission control.
type blockingReadDevice struct {
	storage.Device
	gate    chan struct{}
	entered chan struct{}
	block   atomic.Int64
}

func (d *blockingReadDevice) ReadPage(id page.PageID, p *page.Page) error {
	if d.block.Add(-1) >= 0 {
		d.entered <- struct{}{}
		<-d.gate
	}
	return d.Device.ReadPage(id, p)
}

func (d *blockingReadDevice) Backing() storage.Device { return d.Device }

// panicDevice panics on writes when armed, to exercise the background
// writer's panic containment.
type panicDevice struct {
	storage.Device
	panicWrites atomic.Bool
}

func (d *panicDevice) WritePage(p *page.Page) error {
	if d.panicWrites.Load() {
		panic("injected write panic")
	}
	return d.Device.WritePage(p)
}

func (d *panicDevice) Backing() storage.Device { return d.Device }

// shardBreaker fetches the breaker from a shard's device stack.
func shardBreaker(t *testing.T, p *Pool, i int) *storage.BreakerDevice {
	t.Helper()
	b, ok := storage.FindBreaker(p.ShardDevice(i))
	if !ok {
		t.Fatalf("shard %d has no breaker in its device stack", i)
	}
	return b
}

// TestHealthQuarantinePressureDegrades walks a shard down the full
// degradation ladder on quarantine depth alone: half-full quarantine →
// Degraded, full → ReadOnly (misses shed with ErrOverloaded, resident
// pages — reads and writes — keep serving), and back to Healthy once the
// device recovers and the quarantine drains, with no page lost.
func TestHealthQuarantinePressureDegrades(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := New(Config{
		Frames:        4,
		Policy:        replacer.NewLRU(4),
		Device:        dev,
		QuarantineCap: 2,
	})
	s := p.NewSession()
	for i := uint64(1); i <= 4; i++ {
		dirtyPage(t, p, s, pid(i))
	}
	if st := p.Stats(); st.Health != Healthy {
		t.Fatalf("health=%v before any fault, want Healthy", st.Health)
	}
	dev.SetWriteFailRate(1)

	// Each miss evicts a dirty page whose write-back fails and parks it.
	ref, err := p.Get(s, pid(10))
	if err != nil {
		t.Fatalf("first miss under failing writes: %v", err)
	}
	ref.Release()
	if st := p.Stats(); st.Health != Degraded {
		t.Fatalf("health=%v at quarantine 1/2, want Degraded", st.Health)
	}
	ref, err = p.Get(s, pid(11))
	if err != nil {
		t.Fatalf("second miss (Degraded admits bounded misses): %v", err)
	}
	ref.Release()
	if st := p.Stats(); st.Health != ReadOnly {
		t.Fatalf("health=%v at quarantine 2/2, want ReadOnly", st.Health)
	}

	// Read-only: misses are shed without touching the device...
	readsBefore := mem.Stats().Reads
	if _, err := p.Get(s, pid(12)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("miss on read-only shard: err=%v, want ErrOverloaded", err)
	}
	if got := mem.Stats().Reads; got != readsBefore {
		t.Fatalf("shed miss still reached the device (%d reads, was %d)", got, readsBefore)
	}
	// ...but resident pages keep serving, including writes.
	ref, err = p.Get(s, pid(10))
	if err != nil {
		t.Fatalf("resident read on read-only shard: %v", err)
	}
	ref.Release()
	wref, err := p.GetWrite(s, pid(11))
	if err != nil {
		t.Fatalf("resident write on read-only shard: %v", err)
	}
	wref.MarkDirty()
	wref.Release()
	st := p.Stats()
	if st.Shed == 0 {
		t.Fatal("Stats().Shed did not count the shed miss")
	}
	if st.PerShard[0].Health != ReadOnly {
		t.Fatalf("ShardStats health=%v, want ReadOnly", st.PerShard[0].Health)
	}

	// Recovery: drain the quarantine and the shard heals; the shed page
	// loads normally and nothing dirtied was lost.
	dev.SetWriteFailRate(0)
	if err := p.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	if st := p.Stats(); st.Health != Healthy {
		t.Fatalf("health=%v after drain, want Healthy", st.Health)
	}
	ref, err = p.Get(s, pid(12))
	if err != nil {
		t.Fatalf("miss after recovery: %v", err)
	}
	ref.Release()
	for i := uint64(1); i <= 4; i++ {
		var back page.Page
		if err := mem.ReadPage(pid(i), &back); err != nil {
			t.Fatal(err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("page %d lost across the degradation episode", i)
		}
	}
}

// breakerPool builds a two-shard pool where each shard's I/O runs through
// its own FaultDevice+BreakerDevice stack, so one shard's faults cannot
// trip the other's breaker.
func breakerPool(t *testing.T, bcfg storage.BreakerConfig) (*Pool, *storage.MemDevice, []*storage.FaultDevice) {
	t.Helper()
	mem := storage.NewMemDevice()
	faults := make([]*storage.FaultDevice, 2)
	p := New(Config{
		Frames:        8,
		Shards:        2,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Device:        mem,
		WrapShardDevice: func(shard int, base storage.Device) storage.Device {
			faults[shard] = storage.NewFaultDevice(base, storage.FaultConfig{})
			return storage.NewBreakerDevice(faults[shard], bcfg)
		},
	})
	return p, mem, faults
}

// TestHealthBreakerIsolatesSickShard trips one shard's breaker with read
// faults and checks the blast radius: that shard goes ReadOnly (misses
// shed before the device, resident pages keep serving) while the other
// shard stays Healthy and serves misses untouched.
func TestHealthBreakerIsolatesSickShard(t *testing.T) {
	p, _, faults := breakerPool(t, storage.BreakerConfig{
		Window:      8,
		MinSamples:  4,
		OpenTimeout: time.Hour, // stays open for the whole test
	})
	s := p.NewSession()

	shard0 := idsInShard(p, 0, 4, 1)
	shard1 := idsInShard(p, 1, 4, 10_000)
	for _, id := range append(append([]page.PageID{}, shard0[:2]...), shard1[:2]...) {
		ref, err := p.Get(s, id)
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}

	// Fault shard 0's reads until its breaker trips (4 failures at the
	// default 0.5 threshold with MinSamples 4).
	faults[0].SetReadFailRate(1)
	for i := 2; i < len(shard0); i++ {
		p.Get(s, shard0[i]) // errors expected; feeding the breaker window
	}
	for i := 0; shardBreaker(t, p, 0).State() != storage.BreakerOpen; i++ {
		if i >= 16 {
			t.Fatal("breaker never opened under a 100% read-fault rate")
		}
		p.Get(s, shard0[2+i%2])
	}

	if _, err := p.Get(s, idsInShard(p, 0, 6, 1)[5]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("miss on breaker-open shard: err=%v, want ErrOverloaded", err)
	}
	if h := p.ShardHealth(0); h != ReadOnly {
		t.Fatalf("sick shard health=%v, want ReadOnly", h)
	}

	// Resident pages on the sick shard still serve from memory.
	ref, err := p.Get(s, shard0[0])
	if err != nil {
		t.Fatalf("resident read on breaker-open shard: %v", err)
	}
	ref.Release()

	// The healthy shard is untouched: misses flow, health stays Healthy.
	for _, id := range shard1 {
		ref, err := p.Get(s, id)
		if err != nil {
			t.Fatalf("healthy shard miss: %v", err)
		}
		ref.Release()
	}
	if h := p.ShardHealth(1); h != Healthy {
		t.Fatalf("healthy shard health=%v, want Healthy", h)
	}
	st := p.Stats()
	if st.PerShard[0].BreakerState != "open" {
		t.Fatalf("ShardStats breaker state=%q, want open", st.PerShard[0].BreakerState)
	}
	if st.PerShard[0].BreakerTrips == 0 {
		t.Fatal("ShardStats did not report the breaker trip")
	}
	if st.PerShard[1].BreakerState != "closed" {
		t.Fatalf("healthy shard breaker state=%q, want closed", st.PerShard[1].BreakerState)
	}
}

// TestHealthBreakerRecovery closes the recovery loop that shedding could
// otherwise deadlock: with the shard ReadOnly no miss reaches the device,
// so the breaker's own open-timeout must surface through State() as
// half-open, demoting the shard to Degraded, whose admitted misses are
// the probes that re-close the circuit.
func TestHealthBreakerRecovery(t *testing.T) {
	p, _, faults := breakerPool(t, storage.BreakerConfig{
		Window:         8,
		MinSamples:     4,
		OpenTimeout:    30 * time.Millisecond,
		ProbeProb:      1, // every admitted op is a probe
		HalfOpenProbes: 1,
	})
	s := p.NewSession()
	shard0 := idsInShard(p, 0, 8, 1)

	faults[0].SetReadFailRate(1)
	for i := 0; i < 8 && shardBreaker(t, p, 0).State() != storage.BreakerOpen; i++ {
		p.Get(s, shard0[i%4])
	}
	if st := shardBreaker(t, p, 0).State(); st != storage.BreakerOpen {
		t.Fatalf("breaker state=%v after fault storm, want open", st)
	}
	if _, err := p.Get(s, shard0[4]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("miss while open: err=%v, want ErrOverloaded", err)
	}

	// Heal the device and let the open timeout lapse. The next miss must
	// be admitted (Degraded) as a probe and close the circuit.
	faults[0].SetReadFailRate(0)
	time.Sleep(40 * time.Millisecond)
	ref, err := p.Get(s, shard0[5])
	if err != nil {
		t.Fatalf("probe miss after open timeout: %v", err)
	}
	ref.Release()
	if st := shardBreaker(t, p, 0).State(); st != storage.BreakerClosed {
		t.Fatalf("breaker state=%v after successful probe, want closed", st)
	}
	ref, err = p.Get(s, shard0[6])
	if err != nil {
		t.Fatalf("miss after recovery: %v", err)
	}
	ref.Release()
	if h := p.ShardHealth(0); h != Healthy {
		t.Fatalf("shard health=%v after recovery, want Healthy", h)
	}
}

// TestHealthDegradedAdmissionBound holds one admitted miss in flight at
// the device while the shard is Degraded with MaxInflightMisses=1: the
// next miss must be shed with ErrOverloaded, and admitted again once the
// first resolves.
func TestHealthDegradedAdmissionBound(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	blk := &blockingReadDevice{
		Device:  dev,
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 1),
	}
	p := New(Config{
		Frames:        4,
		Policy:        replacer.NewLRU(4),
		Device:        blk,
		QuarantineCap: 4,
		Health:        HealthConfig{MaxInflightMisses: 1},
	})
	s := p.NewSession()
	for i := uint64(1); i <= 4; i++ {
		dirtyPage(t, p, s, pid(i))
	}

	// Park two failed write-backs to push the shard to Degraded (2/4).
	dev.SetWriteFailRate(1)
	for _, n := range []uint64{10, 11} {
		ref, err := p.Get(s, pid(n))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	dev.SetWriteFailRate(0)
	if st := p.Stats(); st.Health != Degraded {
		t.Fatalf("health=%v at quarantine 2/4, want Degraded", st.Health)
	}

	// Hold one admitted miss at the device.
	blk.block.Store(1)
	done := make(chan error, 1)
	go func() {
		ref, err := p.Get(p.NewSession(), pid(20))
		if err == nil {
			ref.Release()
		}
		done <- err
	}()
	<-blk.entered

	if _, err := p.Get(s, pid(21)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second concurrent miss while degraded: err=%v, want ErrOverloaded", err)
	}
	close(blk.gate)
	if err := <-done; err != nil {
		t.Fatalf("admitted miss failed: %v", err)
	}

	// The in-flight slot freed: the same miss is admitted now.
	ref, err := p.Get(s, pid(21))
	if err != nil {
		t.Fatalf("miss after slot freed: %v", err)
	}
	ref.Release()
	if st := p.Stats(); st.Shed != 1 {
		t.Fatalf("Shed=%d, want exactly the one bounded shed", st.Shed)
	}
}

// TestBackgroundWriterPanicContainment arms a device wrapper that panics
// on write and checks the writer goroutine survives: the panic is
// counted, captured with a flight dump, the round's parked page stays
// lossless in quarantine, and after disarming, the writer drains it.
func TestBackgroundWriterPanicContainment(t *testing.T) {
	mem := storage.NewMemDevice()
	pd := &panicDevice{Device: mem}
	p := New(Config{
		Frames: 4,
		Policy: replacer.NewLRU(4),
		Device: pd,
	})
	s := p.NewSession()
	dirtyPage(t, p, s, pid(1))
	pd.panicWrites.Store(true)

	w := p.StartBackgroundWriter(BackgroundWriterConfig{Interval: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().PanicRecoveries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background writer never recorded a panic recovery")
		}
		time.Sleep(time.Millisecond)
	}
	lp := w.LastPanic()
	if !strings.Contains(lp, "injected write panic") {
		t.Fatalf("LastPanic missing the panic value:\n%s", lp)
	}
	if !strings.Contains(lp, "flight recorder") && !strings.Contains(lp, "shard") {
		t.Fatalf("LastPanic carries no flight dump:\n%s", lp)
	}

	// The writer survived; disarm and it must still drain everything.
	pd.panicWrites.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for p.DirtyCount() > 0 || p.QuarantineLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("writer did not drain after disarm: dirty=%d quarantined=%d",
				p.DirtyCount(), p.QuarantineLen())
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	var back page.Page
	if err := mem.ReadPage(pid(1), &back); err != nil {
		t.Fatal(err)
	}
	if !back.VerifyStamp(pid(1) + stampShift) {
		t.Fatal("page lost across the contained panic")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseWithinBudget bounds shutdown against a dead device: CloseWithin
// must give up within its budget (not sleep out the full retry ladder),
// lose nothing, and a later Close after recovery must succeed.
func TestCloseWithinBudget(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := New(Config{
		Frames: 4,
		Policy: replacer.NewLRU(4),
		Device: dev,
	})
	s := p.NewSession()
	for i := uint64(1); i <= 3; i++ {
		dirtyPage(t, p, s, pid(i))
	}
	dev.SetWriteFailRate(1)

	start := time.Now()
	err := p.CloseWithin(5 * time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("CloseWithin with a dead device returned nil")
	}
	if !strings.Contains(err.Error(), "close budget") {
		t.Fatalf("error does not name the exhausted budget: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("CloseWithin(5ms) took %v; budget did not bound the ladder", elapsed)
	}

	dev.SetWriteFailRate(0)
	if err := p.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		var back page.Page
		if err := mem.ReadPage(pid(i), &back); err != nil {
			t.Fatal(err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("page %d lost across the bounded shutdown", i)
		}
	}
}

// TestSetReadOnlyForcesShedding pins the pool at the forced ReadOnly
// floor: misses shed with ErrOverloaded immediately, resident pages keep
// serving (reads and writes), and releasing the floor re-admits misses.
// The forced floor must also override HealthConfig.Disable — it is the
// drain hook, not a health verdict.
func TestSetReadOnlyForcesShedding(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		p := New(Config{
			Frames: 4,
			Policy: replacer.NewLRU(4),
			Device: storage.NewMemDevice(),
			Health: HealthConfig{Disable: disabled},
		})
		s := p.NewSession()
		ref, err := p.Get(s, pid(1))
		if err != nil {
			t.Fatalf("disabled=%v: warm Get: %v", disabled, err)
		}
		ref.Release()

		p.SetReadOnly(true)
		if st := p.ShardHealth(0); st != ReadOnly {
			t.Fatalf("disabled=%v: health=%v after SetReadOnly, want ReadOnly", disabled, st)
		}
		if _, err := p.Get(s, pid(2)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("disabled=%v: miss under forced read-only: err=%v, want ErrOverloaded", disabled, err)
		}
		ref, err = p.Get(s, pid(1))
		if err != nil {
			t.Fatalf("disabled=%v: resident read under forced read-only: %v", disabled, err)
		}
		ref.Release()
		ref, err = p.GetWrite(s, pid(1))
		if err != nil {
			t.Fatalf("disabled=%v: resident write under forced read-only: %v", disabled, err)
		}
		ref.Data()[0]++
		ref.MarkDirty()
		ref.Release()
		shed := p.Stats().Shed
		if shed == 0 {
			t.Fatalf("disabled=%v: forced read-only shed nothing", disabled)
		}

		p.SetReadOnly(false)
		ref, err = p.Get(s, pid(2))
		if err != nil {
			t.Fatalf("disabled=%v: miss after releasing read-only: %v", disabled, err)
		}
		ref.Release()
		s.Flush()
		if err := p.Close(); err != nil {
			t.Fatalf("disabled=%v: Close: %v", disabled, err)
		}
	}
}
