package reqtrace

import "sync/atomic"

// ring is a lock-free span ring using the seqlock slot protocol of the
// obs flight recorder (internal/obs/recorder.go): a writer claims a slot
// with one atomic add, stores the payload into all-atomic words bracketed
// by begin/end sequence stamps, and a reader snapshots slots and discards
// any whose brackets disagree (a write raced the read). Writers never
// wait; readers never block writers.
type slot struct {
	begin atomic.Uint64
	trace atomic.Uint64
	meta  atomic.Uint64 // phase | shard<<8 | flags<<40
	start atomic.Int64
	dur   atomic.Int64
	arg1  atomic.Uint64
	arg2  atomic.Uint64
	end   atomic.Uint64
}

type ring struct {
	mask  uint64
	seq   atomic.Uint64
	torn  atomic.Uint64
	slots []slot
}

// newRing rounds size up to a power of two, minimum 8.
func newRing(size int) *ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

func packMeta(ph Phase, shard int32, flags uint8) uint64 {
	return uint64(ph) | uint64(uint32(shard))<<8 | uint64(flags)<<40
}

func unpackMeta(m uint64) (Phase, int32, uint8) {
	return Phase(m & 0xff), int32(uint32(m >> 8)), uint8(m >> 40)
}

func (r *ring) put(sp Span) {
	i := r.seq.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.begin.Store(i + 1)
	s.trace.Store(sp.Trace)
	s.meta.Store(packMeta(sp.Phase, sp.Shard, sp.Flags))
	s.start.Store(sp.Start)
	s.dur.Store(sp.Dur)
	s.arg1.Store(sp.Arg1)
	s.arg2.Store(sp.Arg2)
	s.end.Store(i + 1)
}

// snapshot appends every intact slot to out, skipping empty and torn
// slots (brackets disagree: a writer was mid-store).
func (r *ring) snapshot(out []Span) []Span {
	for i := range r.slots {
		s := &r.slots[i]
		b := s.begin.Load()
		if b == 0 {
			continue
		}
		sp := Span{
			Trace: s.trace.Load(),
			Start: s.start.Load(),
			Dur:   s.dur.Load(),
			Arg1:  s.arg1.Load(),
			Arg2:  s.arg2.Load(),
		}
		sp.Phase, sp.Shard, sp.Flags = unpackMeta(s.meta.Load())
		if s.end.Load() != b {
			r.torn.Add(1)
			continue
		}
		out = append(out, sp)
	}
	return out
}

// dropped counts spans lost to overwrites plus torn snapshot reads.
func (r *ring) dropped() int64 {
	n := int64(r.seq.Load()) - int64(len(r.slots))
	if n < 0 {
		n = 0
	}
	return n + int64(r.torn.Load())
}
