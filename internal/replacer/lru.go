package replacer

// LRU is the classic least-recently-used replacement algorithm: resident
// pages form a recency list; a hit moves the page to the MRU end; eviction
// takes the LRU end. This is the algorithm whose clock approximation
// (CLOCK) stock PostgreSQL adopted for scalability, and the canonical
// example used throughout the BP-Wrapper paper.
type LRU struct {
	prefetchIndex
	capacity int
	table    map[PageID]*node
	lst      *list // front = MRU, back = LRU
}

var _ Policy = (*LRU)(nil)
var _ Prefetcher = (*LRU)(nil)

// NewLRU returns an LRU policy holding at most capacity pages.
func NewLRU(capacity int) *LRU {
	checkCap("lru", capacity)
	return &LRU{
		capacity: capacity,
		table:    make(map[PageID]*node, capacity),
		lst:      newList(),
	}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Cap implements Policy.
func (p *LRU) Cap() int { return p.capacity }

// Len implements Policy.
func (p *LRU) Len() int { return p.lst.len() }

// Contains implements Policy.
func (p *LRU) Contains(id PageID) bool {
	_, ok := p.table[id]
	return ok
}

// Hit moves the page to the MRU position. Non-resident ids are ignored.
func (p *LRU) Hit(id PageID) {
	if nd, ok := p.table[id]; ok {
		p.lst.moveToFront(nd)
	}
}

// Admit inserts a new page at the MRU position, evicting the LRU page if
// the policy is at capacity.
func (p *LRU) Admit(id PageID) (victim PageID, evicted bool) {
	mustAbsent("lru", p.Contains(id))
	if p.Len() == p.capacity {
		victim, evicted = p.Evict()
	}
	nd := &node{id: id}
	p.table[id] = nd
	p.lst.pushFront(nd)
	p.note(id, nd)
	return victim, evicted
}

// Evict removes and returns the page at the LRU position.
func (p *LRU) Evict() (PageID, bool) {
	nd := p.lst.popBack()
	if nd == nil {
		return 0, false
	}
	delete(p.table, nd.id)
	p.forget(nd.id)
	return nd.id, true
}

// Remove deletes a page from the resident set.
func (p *LRU) Remove(id PageID) {
	if nd, ok := p.table[id]; ok {
		p.lst.remove(nd)
		delete(p.table, id)
		p.forget(id)
	}
}
