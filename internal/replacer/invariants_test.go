package replacer

import (
	"math/rand"
	"strings"
	"testing"
)

// driveChecked runs a mixed Hit/Admit/Evict/Remove workload against a
// policy, calling CheckDeep after every operation so the O(n) structural
// walks run regardless of the torture build tag.
func driveChecked(t *testing.T, p Policy, seed int64, steps int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	span := uint64(4 * p.Cap())
	if span < 8 {
		span = 8
	}
	for i := 0; i < steps; i++ {
		id := tid(r.Uint64() % span)
		switch op := r.Intn(10); {
		case op < 6: // access
			if p.Contains(id) {
				p.Hit(id)
			} else {
				p.Admit(id)
			}
		case op < 7: // phantom hit: must be ignored
			p.Hit(tid(span + r.Uint64()%span))
		case op < 8: // explicit eviction
			p.Evict()
		default: // external removal (buffer-pool invalidation path)
			if p.Contains(id) {
				p.Remove(id)
			}
		}
		if err := CheckDeep(p); err != nil {
			t.Fatalf("seed %d step %d: %v", seed, i, err)
		}
	}
}

// TestDeepInvariantsAllPolicies deep-checks every algorithm after every
// operation of a randomized workload, at several capacities.
func TestDeepInvariantsAllPolicies(t *testing.T) {
	for name, factory := range Factories() {
		for _, capacity := range []int{1, 3, 16, 64} {
			name, factory := name, factory
			capacity := capacity
			t.Run(name+"/cap="+itoa(capacity), func(t *testing.T) {
				t.Parallel()
				driveChecked(t, factory(capacity), int64(capacity)*31+7, 3000)
			})
		}
	}
}

// TestCheckerImplementedByAll ensures no policy silently opts out of
// invariant checking: Check must reach a real checker for each factory.
func TestCheckerImplementedByAll(t *testing.T) {
	for name, factory := range Factories() {
		p := factory(4)
		if _, ok := p.(Checker); !ok {
			t.Errorf("%s does not implement Checker", name)
		}
		if _, ok := p.(deepChecker); !ok {
			t.Errorf("%s does not implement the deep checker hook", name)
		}
	}
}

// TestInvariantCheckDetectsCorruption corrupts a policy's internals and
// confirms CheckDeep reports it — the mutation check that proves the
// walks actually bite.
func TestInvariantCheckDetectsCorruption(t *testing.T) {
	t.Run("lru-count-drift", func(t *testing.T) {
		pol, _ := New("lru", 8)
		p := pol.(*LRU)
		for i := uint64(0); i < 8; i++ {
			p.Admit(tid(i))
		}
		// Desynchronize table from list the way a lost-update bug would.
		delete(p.table, tid(3))
		err := CheckDeep(p)
		if err == nil {
			t.Fatal("corrupted LRU passed CheckDeep")
		}
		if !strings.Contains(err.Error(), "lru") {
			t.Fatalf("error does not identify the policy: %v", err)
		}
	})
	t.Run("arc-target-range", func(t *testing.T) {
		pol, _ := New("arc", 8)
		p := pol.(*ARC)
		for i := uint64(0); i < 8; i++ {
			p.Admit(tid(i))
		}
		p.p = p.capacity + 1
		if err := CheckDeep(p); err == nil {
			t.Fatal("out-of-range ARC target passed CheckDeep")
		}
	})
	t.Run("clock-ref-overflow", func(t *testing.T) {
		pol, _ := New("gclock", 4)
		p := pol.(*Clock)
		p.Admit(tid(0))
		v, _ := p.table.Load(tid(0))
		v.(*clockNode).ref.Store(int32(p.maxCount + 1))
		if err := CheckDeep(p); err == nil {
			t.Fatal("over-limit GCLOCK reference count passed CheckDeep")
		}
	})
	t.Run("mq-ghost-on-queue", func(t *testing.T) {
		pol, _ := New("mq", 4)
		p := pol.(*MQ)
		for i := uint64(0); i < 6; i++ {
			p.Admit(tid(i))
		}
		// Flag a resident node as a ghost without moving it.
		for _, q := range p.queues {
			if q.len() > 0 {
				q.root.next.ghost = true
				break
			}
		}
		if err := CheckDeep(p); err == nil {
			t.Fatal("ghost-flagged resident MQ node passed CheckDeep")
		}
	})
}
