package page

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewPageIDRoundTrip(t *testing.T) {
	cases := []struct {
		table uint32
		block uint64
	}{
		{1, 0},
		{1, 1},
		{42, 1 << 20},
		{1<<20 - 1, 1<<44 - 1},
	}
	for _, c := range cases {
		id := NewPageID(c.table, c.block)
		if id.Table() != c.table || id.Block() != c.block {
			t.Errorf("NewPageID(%d,%d) round-trips to (%d,%d)", c.table, c.block, id.Table(), id.Block())
		}
		if !id.Valid() {
			t.Errorf("NewPageID(%d,%d) reports invalid", c.table, c.block)
		}
	}
}

func TestQuickPageIDRoundTrip(t *testing.T) {
	prop := func(table uint32, block uint64) bool {
		table = table%(1<<20-1) + 1
		block %= 1 << 44
		id := NewPageID(table, block)
		return id.Table() == table && id.Block() == block && id.Valid()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageIDValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPageID(0, 5) },
		func() { NewPageID(1<<20, 0) },
		func() { NewPageID(3, 1<<44) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range PageID accepted")
				}
			}()
			fn()
		}()
	}
}

func TestInvalidPageID(t *testing.T) {
	if InvalidPageID.Valid() {
		t.Error("InvalidPageID reports valid")
	}
	if got := InvalidPageID.String(); got != "invalid" {
		t.Errorf("InvalidPageID.String() = %q", got)
	}
	if got := NewPageID(7, 9).String(); got != "7:9" {
		t.Errorf("String() = %q, want 7:9", got)
	}
}

func TestBufferTagMatches(t *testing.T) {
	a := BufferTag{Page: NewPageID(1, 2), Gen: 3}
	if !a.Matches(a) {
		t.Error("tag does not match itself")
	}
	if a.Matches(BufferTag{Page: a.Page, Gen: 4}) {
		t.Error("generation mismatch matched")
	}
	if a.Matches(BufferTag{Page: NewPageID(1, 3), Gen: 3}) {
		t.Error("page mismatch matched")
	}
}

func TestStampVerify(t *testing.T) {
	var p Page
	id := NewPageID(5, 77)
	p.Stamp(id)
	if p.ID != id {
		t.Errorf("Stamp set ID %v", p.ID)
	}
	if !p.VerifyStamp(id) {
		t.Error("VerifyStamp rejects its own stamp")
	}
	if p.VerifyStamp(NewPageID(5, 78)) {
		t.Error("VerifyStamp accepts wrong id")
	}
	p.Data[100]++
	if p.VerifyStamp(id) {
		t.Error("VerifyStamp accepts corrupted page")
	}
}

func TestStampDistinct(t *testing.T) {
	// Different pages must get different contents (overwhelmingly likely;
	// check a sample).
	r := rand.New(rand.NewSource(1))
	var a, b Page
	for i := 0; i < 50; i++ {
		x := NewPageID(uint32(r.Intn(100)+1), r.Uint64()%1000)
		y := NewPageID(uint32(r.Intn(100)+1), r.Uint64()%1000)
		if x == y {
			continue
		}
		a.Stamp(x)
		b.Stamp(y)
		if a.Data == b.Data {
			t.Fatalf("pages %v and %v stamp identically", x, y)
		}
	}
}

func TestChecksumStable(t *testing.T) {
	var p Page
	p.Stamp(NewPageID(2, 2))
	c1 := p.Checksum()
	c2 := p.Checksum()
	if c1 != c2 {
		t.Error("checksum not deterministic")
	}
	p.Data[0] ^= 1
	if p.Checksum() == c1 {
		t.Error("checksum ignores corruption")
	}
}

func TestQuickStampRoundTrip(t *testing.T) {
	prop := func(table uint32, block uint64) bool {
		table = table%1000 + 1
		block %= 1 << 30
		id := NewPageID(table, block)
		var p Page
		p.Stamp(id)
		return p.VerifyStamp(id)
	}
	cfg := &quick.Config{MaxCount: 25, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(uint32(r.Uint64()))
		vs[1] = reflect.ValueOf(r.Uint64())
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
