package replacer

// SEQ is a sequence-detecting, scan-resistant replacement policy in the
// spirit of SEQ (Glass & Cao, SIGMETRICS 1997) and of the sequential-scan
// handling in DB2's buffer policy — the class of algorithms the BP-Wrapper
// paper singles out as impossible to approximate with clocks or to
// partition across distributed locks, because they must observe the
// *globally ordered* miss stream to recognise sequences (Sections I and
// V-A).
//
// Detection: per table, a miss whose block number immediately follows the
// previous missed block extends a run; once a run reaches the detection
// threshold the table is considered mid-scan and subsequent admissions are
// marked as scan pages. Scan pages live on their own list and are evicted
// first (a completed scan's pages are worthless); a scan page that gets
// re-referenced is promoted to the main LRU list.
//
// The property the reproduction exercises: split the page space across k
// hash partitions (the distributed-lock design) and each partition sees
// only every k-th block of a scan — consecutive-block detection never
// fires, the scans pollute the buffer, and the hit ratio collapses. See
// the "distributed" experiment in internal/bench.
type SEQ struct {
	prefetchIndex
	capacity  int
	threshold int
	table     map[PageID]*node
	main      *list // front = MRU
	scan      *list // scan-marked pages; front = MRU, evicted from back first

	lastMiss map[uint32]uint64 // per-table: last missed block number
	runLen   map[uint32]int    // per-table: current consecutive-miss run
}

var (
	_ Policy     = (*SEQ)(nil)
	_ Prefetcher = (*SEQ)(nil)
)

// DefaultSEQThreshold is the consecutive-miss run length that flags a
// sequential scan.
const DefaultSEQThreshold = 4

// NewSEQ returns a SEQ policy with the default detection threshold.
func NewSEQ(capacity int) *SEQ { return NewSEQTuned(capacity, DefaultSEQThreshold) }

// NewSEQTuned returns a SEQ policy with an explicit detection threshold
// (the number of consecutive-block misses that marks a table as mid-scan).
func NewSEQTuned(capacity, threshold int) *SEQ {
	checkCap("seq", capacity)
	if threshold < 2 {
		panic("replacer: seq: threshold must be >= 2")
	}
	return &SEQ{
		capacity:  capacity,
		threshold: threshold,
		table:     make(map[PageID]*node, capacity),
		main:      newList(),
		scan:      newList(),
		lastMiss:  make(map[uint32]uint64),
		runLen:    make(map[uint32]int),
	}
}

// Name implements Policy.
func (p *SEQ) Name() string { return "seq" }

// Cap implements Policy.
func (p *SEQ) Cap() int { return p.capacity }

// Len implements Policy.
func (p *SEQ) Len() int { return p.main.len() + p.scan.len() }

// Contains implements Policy.
func (p *SEQ) Contains(id PageID) bool {
	_, ok := p.table[id]
	return ok
}

// ScanResident reports how many resident pages are currently scan-marked;
// used by tests and diagnostics.
func (p *SEQ) ScanResident() int { return p.scan.len() }

// Hit refreshes the page's recency; a re-referenced scan page has proven
// reuse and is promoted to the main list.
func (p *SEQ) Hit(id PageID) {
	nd, ok := p.table[id]
	if !ok {
		return
	}
	if nd.ghost { // ghost flag doubles as the scan marker here
		p.scan.remove(nd)
		nd.ghost = false
		p.main.pushFront(nd)
		return
	}
	p.main.moveToFront(nd)
}

// Admit records the miss in the per-table sequence detector and admits the
// page, marking it as a scan page when its table is mid-scan. Scan pages
// are evicted before any main-list page.
func (p *SEQ) Admit(id PageID) (victim PageID, evicted bool) {
	mustAbsent("seq", p.Contains(id))
	tab, block := id.Table(), id.Block()
	if last, ok := p.lastMiss[tab]; ok && block == last+1 {
		p.runLen[tab]++
	} else {
		p.runLen[tab] = 1
	}
	p.lastMiss[tab] = block
	inScan := p.runLen[tab] >= p.threshold

	if p.Len() == p.capacity {
		victim, evicted = p.Evict()
	}
	nd := &node{id: id, ghost: inScan}
	p.table[id] = nd
	if inScan {
		p.scan.pushFront(nd)
	} else {
		p.main.pushFront(nd)
	}
	p.note(id, nd)
	return victim, evicted
}

// Evict removes the oldest scan page if any exist, otherwise the main
// list's LRU page.
func (p *SEQ) Evict() (PageID, bool) {
	nd := p.scan.popBack()
	if nd == nil {
		nd = p.main.popBack()
	}
	if nd == nil {
		return 0, false
	}
	delete(p.table, nd.id)
	p.forget(nd.id)
	return nd.id, true
}

// Remove deletes a page from the resident set.
func (p *SEQ) Remove(id PageID) {
	nd, ok := p.table[id]
	if !ok {
		return
	}
	if nd.ghost {
		p.scan.remove(nd)
	} else {
		p.main.remove(nd)
	}
	delete(p.table, id)
	p.forget(id)
}
