// Access sampling for the control loop: the pool can spatially sample its
// access stream into a small lock-free ring that the controller drains to
// feed shadow ghost caches (policy scoring). Sampling must cost the hit
// path almost nothing, so the filter is one hash-and-compare and the
// record is one fetch-add plus one relaxed store; entries may be torn or
// overwritten under bursts, which is acceptable — the consumer is a
// statistical scorer, not an oracle.
package buffer

import (
	"sync/atomic"

	"bpwrapper/internal/page"
)

// sampleRing is a fixed-size power-of-two ring of sampled page ids.
// Producers claim slots with a fetch-add and store the id; the consumer
// chases the head with a cursor. No generation tags: a slot overwritten
// between claim and read simply yields the newer id, and a torn read of
// the head can at worst re-deliver or skip a few samples.
type sampleRing struct {
	rate uint64 // keep ids with mix64(id) % rate == 0
	mask uint64
	head atomic.Uint64
	slot []atomic.Uint64
}

// newSampleRing builds a ring of at least size slots keeping 1/rate of the
// page-id space.
func newSampleRing(rate, size int) *sampleRing {
	if rate < 1 {
		rate = 1
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &sampleRing{
		rate: uint64(rate),
		mask: uint64(n - 1),
		slot: make([]atomic.Uint64, n),
	}
}

// observe records id if it falls in the sampled slice of the id space.
// The filter is spatial (SHARDS-style): a fixed pseudo-random 1/rate of
// all PAGES is sampled, every access to them kept, so reuse distances
// within the sample mirror the full stream and a ghost cache of
// capacity/rate emulates a full-size cache.
func (r *sampleRing) observe(id page.PageID) {
	if mix64(uint64(id))%r.rate != 0 {
		return
	}
	h := r.head.Add(1) - 1
	r.slot[h&r.mask].Store(uint64(id))
}

// drain copies the samples recorded since cursor into out, returning the
// count and the next cursor. If the producer lapped the cursor, the oldest
// still-resident window is returned (older samples are lost, which the
// scorer tolerates).
func (r *sampleRing) drain(cursor uint64, out []page.PageID) (n int, next uint64) {
	head := r.head.Load()
	if head == cursor {
		return 0, cursor
	}
	if head-cursor > r.mask+1 {
		cursor = head - r.mask - 1
	}
	for cursor != head && n < len(out) {
		out[n] = page.PageID(r.slot[cursor&r.mask].Load())
		cursor++
		n++
	}
	return n, cursor
}

// EnableSampling turns on access sampling: a pseudo-random 1/rate of the
// page-id space is sampled into a ring of ringSize entries (rounded up to
// a power of two; 0 means 4096) that Samples drains. Calling it again
// replaces the ring (and resets the sample stream); rate <= 0 disables
// sampling.
func (p *Pool) EnableSampling(rate, ringSize int) {
	if rate <= 0 {
		p.sampler.Store(nil)
		return
	}
	if ringSize <= 0 {
		ringSize = 4096
	}
	p.sampler.Store(newSampleRing(rate, ringSize))
}

// SampleRate reports the active sampling rate (0 when disabled).
func (p *Pool) SampleRate() int {
	r := p.sampler.Load()
	if r == nil {
		return 0
	}
	return int(r.rate)
}

// Samples drains sampled page ids recorded since cursor into out,
// returning how many were written and the cursor to pass next time. Start
// with cursor 0. Single consumer assumed (the controller).
func (p *Pool) Samples(cursor uint64, out []page.PageID) (int, uint64) {
	r := p.sampler.Load()
	if r == nil {
		return 0, cursor
	}
	return r.drain(cursor, out)
}

// sampleAccess is the access-path hook: one nil check when sampling is
// off.
func (p *Pool) sampleAccess(id page.PageID) {
	if r := p.sampler.Load(); r != nil {
		r.observe(id)
	}
}
