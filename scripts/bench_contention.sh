#!/bin/sh
# Regenerates results/BENCH_contention.json, the committed baseline for
# the E15 lock-contention anatomy sweep (acquisitions, blocking
# acquisitions, failed TryLocks, wait/hold time per access for pg2Q vs
# pgBat vs pgBatFC at 1..16 processors).
#
# The run is fully deterministic: sim mode, fixed seed, fixed virtual
# duration. Re-running on any machine reproduces the committed file
# byte-for-byte; a diff after a change to internal/core, internal/sim, or
# the lock instrumentation is a real behavioural difference, not noise.
set -eu
cd "$(dirname "$0")/.."

mkdir -p results
go run ./cmd/bpbench -exp contention -format json -duration 500ms -seed 1 \
    > results/BENCH_contention.json
echo "wrote results/BENCH_contention.json"
