package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramQuantileExtremesEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0) != 0 || h.Quantile(1) != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantiles nonzero: q0=%v q1=%v q50=%v",
			h.Quantile(0), h.Quantile(1), h.Quantile(0.5))
	}
}

func TestHistogramQuantileExtremesSingleValue(t *testing.T) {
	h := NewLatencyHistogram()
	v := 137 * time.Microsecond
	h.Record(v)
	if got := h.Quantile(0); got != v {
		t.Fatalf("Quantile(0) = %v, want exact min %v", got, v)
	}
	if got := h.Quantile(1); got != v {
		t.Fatalf("Quantile(1) = %v, want exact max %v", got, v)
	}
	// Interior quantiles of a single observation are clamped into the
	// observed range, so they also equal the value.
	if got := h.Quantile(0.5); got != v {
		t.Fatalf("Quantile(0.5) = %v, want %v", got, v)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// Two observations that land in the same bucket: quantiles must stay
	// within [min, max] rather than report the bucket's geometric bound.
	h := NewHistogram(time.Microsecond, time.Second, 2)
	lo, hi := 2*time.Microsecond, 3*time.Microsecond
	h.Record(lo)
	h.Record(hi)
	if got := h.Quantile(0); got != lo {
		t.Fatalf("Quantile(0) = %v, want %v", got, lo)
	}
	if got := h.Quantile(1); got != hi {
		t.Fatalf("Quantile(1) = %v, want %v", got, hi)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", q, got, lo, hi)
		}
	}
}

func TestHistogramQuantileBelowRangeObservation(t *testing.T) {
	// An observation below the histogram floor is clamped into bucket 0;
	// quantiles must not report a bound below the actual minimum's bucket
	// yet also never below minSeen's... the clamp keeps results in
	// [minSeen, maxSeen].
	h := NewHistogram(time.Millisecond, time.Second, 8)
	h.Record(time.Microsecond) // far below floor
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < time.Microsecond || got > time.Millisecond*2 {
			t.Fatalf("Quantile(%v) = %v for a single clamped-low observation", q, got)
		}
	}
}

func TestHistogramRecordExactBoundaries(t *testing.T) {
	// Exact powers of the growth factor sit on bucket boundaries where
	// floating-point log is allowed to wobble; binning must still place
	// every observation in a bucket whose bounds contain it.
	h := NewHistogram(time.Microsecond, time.Second, 24)
	growth := h.growth
	for i := 0; i <= 24; i++ {
		ns := h.min
		for k := 0; k < i; k++ {
			ns *= growth
		}
		h.Record(time.Duration(ns))
	}
	if h.Count() != 25 {
		t.Fatalf("count = %d", h.Count())
	}
	// Quantiles over boundary values stay monotone and in range.
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, got, prev)
		}
		if got < h.Min() || got > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, got, h.Min(), h.Max())
		}
		prev = got
	}
}

// TestHistogramQuantileProperties is a randomized property test: for any
// recorded multiset, quantiles are monotone in q, bounded by [Min, Max],
// exact at the extremes, and Merge behaves like recording the union.
func TestHistogramQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := NewLatencyHistogram()
		b := NewLatencyHistogram()
		union := NewLatencyHistogram()
		n := 1 + rng.Intn(200)
		var min, max time.Duration
		for i := 0; i < n; i++ {
			v := time.Duration(1+rng.Int63n(int64(10*time.Second))) * time.Nanosecond
			dst := a
			if rng.Intn(2) == 0 {
				dst = b
			}
			dst.Record(v)
			union.Record(v)
			if min == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		a.Merge(b)
		if a.Count() != union.Count() {
			t.Fatalf("trial %d: merged count %d != union count %d", trial, a.Count(), union.Count())
		}
		if a.Quantile(0) != min || a.Quantile(1) != max {
			t.Fatalf("trial %d: extremes (%v, %v) != observed (%v, %v)",
				trial, a.Quantile(0), a.Quantile(1), min, max)
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			got := a.Quantile(q)
			if got < prev {
				t.Fatalf("trial %d: quantiles not monotone at q=%.2f", trial, q)
			}
			if got < min || got > max {
				t.Fatalf("trial %d: Quantile(%.2f) = %v outside [%v, %v]", trial, q, got, min, max)
			}
			if got != union.Quantile(q) {
				t.Fatalf("trial %d: merge-vs-union quantile mismatch at q=%.2f: %v != %v",
					trial, q, got, union.Quantile(q))
			}
			prev = got
		}
	}
}

func TestHistogramSnapshotShape(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 16)
	if s := h.Snapshot(); len(s.Bounds) != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot not empty: %+v", s)
	}
	h.Record(2 * time.Microsecond)
	h.Record(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Bounds) != len(s.Counts) {
		t.Fatalf("bounds/counts length mismatch: %d/%d", len(s.Bounds), len(s.Counts))
	}
	var total int64
	for i, c := range s.Counts {
		total += c
		if i > 0 && s.Bounds[i] <= s.Bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v then %v", i, s.Bounds[i-1], s.Bounds[i])
		}
	}
	if total != 2 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	if s.Sum != 2*time.Microsecond+500*time.Millisecond {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", got)
	}

	h := NewHistogram(time.Microsecond, time.Second, 32)
	for i := 0; i < 99; i++ {
		h.Record(10 * time.Microsecond)
	}
	h.Record(100 * time.Millisecond)
	s := h.Snapshot()

	// The snapshot quantile is the bucket's upper bound: monotone in q,
	// and never below the live histogram's refined figure.
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("snapshot quantile not monotone at q=%v: %v < %v", q, got, prev)
		}
		prev = got
	}
	if p50 := s.Quantile(0.5); p50 < 10*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want a bound near the 10µs mass", p50)
	}
	// The single 100ms outlier sits in the last populated bucket, so the
	// extreme tail must reach at least it.
	if p999 := s.Quantile(0.999); p999 < 100*time.Millisecond {
		t.Fatalf("p999 = %v, want >= the 100ms outlier", p999)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range q did not panic")
		}
	}()
	s.Quantile(1.5)
}
