package replacer

import "sync"

// touchable is the contract between prefetchIndex and the per-policy
// metadata entry types: touch performs the read-only field walk that
// constitutes the prefetch, returning a throwaway checksum so the compiler
// cannot eliminate the loads.
type touchable interface {
	touch() uint64
}

// prefetchIndex gives a policy a lock-free view of its page→entry mapping
// so that BP-Wrapper's prefetching technique (Section III-B) can be
// implemented safely in Go.
//
// The paper's prefetch reads the replacement algorithm's shared metadata
// *without holding the lock*; on hardware this is safe because the reads
// only warm the cache and coherence invalidates stale lines. In Go the
// policy's primary map cannot be read concurrently with writes (the runtime
// aborts on concurrent map access), so each prefetch-capable policy
// additionally maintains this sync.Map side index: updated under the policy
// lock on admit/evict/remove (rare, miss-path events), read lock-free by
// Prefetch.
//
// The entry *field* reads in the walk are intentionally unsynchronized —
// that racy read is the prefetch. The values are never used for decisions,
// only summed into a sink to defeat dead-code elimination. Under the race
// detector the field walk is skipped (see race_on.go) so instrumented test
// runs stay clean while regular builds keep the real behaviour.
type prefetchIndex struct {
	m sync.Map // PageID → touchable
}

// note publishes id→entry. Callers must hold the policy lock.
func (px *prefetchIndex) note(id PageID, e touchable) { px.m.Store(id, e) }

// forget removes id. Callers must hold the policy lock.
func (px *prefetchIndex) forget(id PageID) { px.m.Delete(id) }

// Prefetch walks the metadata for ids read-only, loading the entry fields a
// subsequent commit would touch (list links and per-page flags) into the
// processor cache. It is safe to call concurrently with policy mutation;
// stale or missing entries are harmless.
func (px *prefetchIndex) Prefetch(ids []PageID) {
	if raceEnabled {
		// Resolving pointers through the sync.Map is safe, but the field
		// walk is a deliberate data race; skip it in instrumented builds.
		return
	}
	var sink uint64
	for _, id := range ids {
		if v, ok := px.m.Load(id); ok {
			sink ^= v.(touchable).touch()
		}
	}
	prefetchSink = sink
}

// prefetchSink receives the xor of all prefetched fields so the compiler
// cannot eliminate the reads. It carries no meaning.
var prefetchSink uint64

// touch implements touchable for the shared node type: it reads the fields
// a commit would access — the page's own metadata and the neighbouring link
// pointers ("the forward and/or backward pointers involved in the movement
// of accessed pages", Section III-B).
func (nd *node) touch() uint64 {
	s := uint64(nd.id) ^ uint64(nd.count) ^ uint64(nd.level) ^ uint64(nd.tick)
	if nd.ref {
		s ^= 1
	}
	if nd.hot {
		s ^= 2
	}
	if nd.ghost {
		s ^= 4
	}
	if p := nd.prev; p != nil {
		s ^= uint64(p.id)
	}
	if n := nd.next; n != nil {
		s ^= uint64(n.id)
	}
	return s
}
