package server

import (
	"testing"
	"time"

	"bpwrapper/internal/page"
	"bpwrapper/internal/workload"
)

// countingWorkload is a tiny deterministic workload: every transaction
// touches txnLen pages of a 64-page table, the last access of each
// transaction a write, so a run's exact operation totals are computable
// in closed form — which is what lets the fold test pin exact numbers.
type countingWorkload struct{ txnLen int }

func (w countingWorkload) Name() string   { return "counting" }
func (w countingWorkload) DataPages() int { return 64 }
func (w countingWorkload) Pages() []page.PageID {
	ids := make([]page.PageID, 64)
	for i := range ids {
		ids[i] = page.NewPageID(1, uint64(i))
	}
	return ids
}

func (w countingWorkload) NewStream(worker int, seed int64) workload.Stream {
	return &countingStream{w: w, worker: worker}
}

type countingStream struct {
	w      countingWorkload
	worker int
	n      uint64
}

func (s *countingStream) NextTxn(buf []workload.Access) []workload.Access {
	for i := 0; i < s.w.txnLen; i++ {
		buf = append(buf, workload.Access{
			Page:  page.NewPageID(1, (s.n+uint64(i)+uint64(s.worker)*7)%64),
			Write: i == s.w.txnLen-1,
		})
		s.n++
	}
	return buf
}

// TestFleetFoldRegression is the counter-fold regression: a run whose
// per-worker transaction count (3) is far below the live publication
// interval (32) must still report exact totals in FleetResult — the
// summary comes from the post-join fold of per-worker counters, never
// from the lagging live view a fast exit leaves partial.
func TestFleetFoldRegression(t *testing.T) {
	srv, _, done := newTestServer(t, 128, 1, Config{})
	defer done()

	const (
		workers = 4
		txns    = 3 // < livePublishEvery: the live view never fires
		txnLen  = 5
	)
	live := &FleetLive{}
	res, err := RunFleet(FleetConfig{
		Addr:          srv.Addr(),
		Workload:      countingWorkload{txnLen: txnLen},
		Workers:       workers,
		TxnsPerWorker: txns,
		Seed:          1,
		PipelineDepth: 4,
		Live:          live,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}

	wantTxns := int64(workers * txns)
	wantWrites := int64(workers * txns) // one write per txn
	wantReads := int64(workers * txns * (txnLen - 1))
	c := res.Counters
	if c.Txns != wantTxns || c.Writes != wantWrites || c.Reads != wantReads {
		t.Fatalf("folded counters txns=%d reads=%d writes=%d, want %d/%d/%d",
			c.Txns, c.Reads, c.Writes, wantTxns, wantReads, wantWrites)
	}
	if c.Errors != 0 || c.Overloaded != 0 || c.Draining != 0 {
		t.Fatalf("unexpected failures in counters: %+v", c)
	}
	if len(res.PerWorker) != workers {
		t.Fatalf("PerWorker has %d entries, want %d", len(res.PerWorker), workers)
	}
	var sum FleetCounters
	for _, pw := range res.PerWorker {
		if pw.Txns != txns {
			t.Fatalf("per-worker txns %d, want %d", pw.Txns, txns)
		}
		sum.add(pw)
	}
	if sum != c {
		t.Fatalf("folded counters %+v != per-worker sum %+v", c, sum)
	}
	// The workers' deferred publish also lands the tail in the live view
	// (it lags during the run but must converge at exit).
	if got := live.Txns.Load(); got != wantTxns {
		t.Fatalf("live view txns %d after join, want %d", got, wantTxns)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("latency histogram empty after a completed run")
	}
}

// TestFleetAgainstDrain verifies a mid-run graceful drain ends the fleet
// cleanly: workers stop on DRAINING/transport cut without reporting run
// failure, and everything acknowledged OK before the drain is counted.
func TestFleetAgainstDrain(t *testing.T) {
	srv, _, done := newTestServer(t, 128, 2, Config{DrainGrace: 20 * time.Millisecond})
	defer done()

	fleetDone := make(chan *FleetResult, 1)
	go func() {
		res, err := RunFleet(FleetConfig{
			Addr:          srv.Addr(),
			Workload:      countingWorkload{txnLen: 4},
			Workers:       4,
			Duration:      5 * time.Second, // the drain, not the clock, ends it
			Seed:          2,
			PipelineDepth: 8,
		})
		if err != nil {
			t.Errorf("RunFleet: %v", err)
		}
		fleetDone <- res
	}()

	time.Sleep(50 * time.Millisecond) // let traffic flow
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain under load: %v", err)
	}
	res := <-fleetDone
	if res == nil {
		t.Fatal("fleet returned no result")
	}
	if res.Counters.Txns == 0 {
		t.Fatal("fleet did no work before the drain")
	}
	if res.Elapsed >= 5*time.Second {
		t.Fatalf("fleet ran out the clock (%v); the drain should have ended it", res.Elapsed)
	}
}
