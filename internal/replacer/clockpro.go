package replacer

// CLOCK-Pro (Jiang, Chen & Zhang, USENIX 2005) is the clock-based
// approximation of LIRS. All page metadata — hot pages, resident cold
// pages, and non-resident cold pages still in their test period — sits on
// one circular list swept by three hands:
//
//   - handCold points at the oldest resident cold page and produces
//     victims;
//   - handHot points at the oldest hot page and demotes hot pages whose
//     reference bits are clear;
//   - handTest terminates test periods to bound the non-resident metadata
//     at the cache size.
//
// A cold page re-referenced during its test period is promoted to hot; the
// cold-page allocation target adapts up on non-resident (ghost) hits and
// down when test periods expire unused.
//
// The BP-Wrapper paper cites CLOCK-Pro as a clock approximation that gives
// up history fidelity for lock avoidance; this implementation exists so the
// hit-ratio experiments can compare it against real LIRS.
type ClockPro struct {
	prefetchIndex
	capacity   int
	coldTarget int // adaptive allocation for resident cold pages, in [1, capacity]

	table    map[PageID]*cpEntry
	handHot  *cpEntry
	handCold *cpEntry
	handTest *cpEntry
	nHot     int
	nColdRes int
	nNR      int // non-resident pages in their test period
}

// cpEntry is a CLOCK-Pro ring element.
type cpEntry struct {
	prev, next *cpEntry
	id         PageID
	hot        bool
	resident   bool
	test       bool // cold page currently in its test period
	ref        bool
}

// touch implements touchable for prefetching.
func (e *cpEntry) touch() uint64 {
	s := uint64(e.id)
	if e.hot {
		s ^= 1
	}
	if e.resident {
		s ^= 2
	}
	if e.test {
		s ^= 4
	}
	if e.ref {
		s ^= 8
	}
	if p := e.prev; p != nil {
		s ^= uint64(p.id)
	}
	if n := e.next; n != nil {
		s ^= uint64(n.id)
	}
	return s
}

var (
	_ Policy     = (*ClockPro)(nil)
	_ Prefetcher = (*ClockPro)(nil)
)

// NewClockPro returns a CLOCK-Pro policy holding at most capacity resident
// pages, with the cold allocation target initialised to capacity/2.
func NewClockPro(capacity int) *ClockPro {
	checkCap("clockpro", capacity)
	return &ClockPro{
		capacity:   capacity,
		coldTarget: max(1, capacity/2),
		table:      make(map[PageID]*cpEntry, 2*capacity),
	}
}

// Name implements Policy.
func (p *ClockPro) Name() string { return "clockpro" }

// Cap implements Policy.
func (p *ClockPro) Cap() int { return p.capacity }

// Len implements Policy.
func (p *ClockPro) Len() int { return p.nHot + p.nColdRes }

// Counts reports (hot, resident cold, non-resident) entry counts; used by
// invariant tests.
func (p *ClockPro) Counts() (hot, coldRes, nonResident int) {
	return p.nHot, p.nColdRes, p.nNR
}

// Contains reports whether id is resident.
func (p *ClockPro) Contains(id PageID) bool {
	e, ok := p.table[id]
	return ok && e.resident
}

// Hit sets the page's reference bit, the clock-family hit operation.
func (p *ClockPro) Hit(id PageID) {
	e, ok := p.table[id]
	if !ok || !e.resident {
		return
	}
	e.ref = true
}

// insertHead links e into the ring at the "list head" position (just
// behind handHot, as in the paper). If the ring is empty all hands start
// at e.
func (p *ClockPro) insertHead(e *cpEntry) {
	if p.handHot == nil {
		e.prev, e.next = e, e
		p.handHot, p.handCold, p.handTest = e, e, e
		return
	}
	at := p.handHot.prev
	e.prev, e.next = at, p.handHot
	at.next = e
	p.handHot.prev = e
}

// unlink removes e from the ring, advancing any hand that points at it.
func (p *ClockPro) unlink(e *cpEntry) {
	if e.next == e {
		p.handHot, p.handCold, p.handTest = nil, nil, nil
	} else {
		if p.handHot == e {
			p.handHot = e.next
		}
		if p.handCold == e {
			p.handCold = e.next
		}
		if p.handTest == e {
			p.handTest = e.next
		}
		e.prev.next = e.next
		e.next.prev = e.prev
	}
	e.prev, e.next = nil, nil
}

// Admit makes id resident after a miss. A non-resident (test-period) hit
// promotes the page to hot and grows the cold allocation; a plain miss
// admits the page as a cold page in its test period.
func (p *ClockPro) Admit(id PageID) (victim PageID, evicted bool) {
	e, present := p.table[id]
	if present && e.resident {
		mustAbsent("clockpro", true)
	}
	if present {
		// Ghost hit during test period: the page has a small reuse
		// distance. Grow the cold allocation and re-admit as hot.
		p.coldTarget = min(p.coldTarget+1, p.capacity)
		p.unlink(e)
		delete(p.table, id)
		p.nNR--
	}
	if p.Len() == p.capacity {
		victim = p.runHandCold()
		evicted = true
	}
	ne := &cpEntry{id: id, resident: true}
	if present {
		ne.hot = true
		p.insertHead(ne)
		p.table[id] = ne
		p.nHot++
		for p.nHot > p.capacity-min(p.coldTarget, p.capacity-1) {
			p.runHandHot()
		}
	} else {
		ne.test = true
		p.insertHead(ne)
		p.table[id] = ne
		p.nColdRes++
		for p.nNR > p.capacity {
			p.runHandTest()
		}
	}
	p.note(id, ne)
	return victim, evicted
}

// Evict removes and returns the page handCold selects.
func (p *ClockPro) Evict() (PageID, bool) {
	if p.Len() == 0 {
		return 0, false
	}
	return p.runHandCold(), true
}

// runHandCold sweeps handCold until it evicts one resident cold page,
// returning its id. Referenced cold pages in their test period are promoted
// to hot on the way; referenced cold pages out of test get a renewed test
// period at the head.
func (p *ClockPro) runHandCold() PageID {
	if p.nColdRes == 0 {
		// All resident pages are hot; demote one to produce a cold victim
		// candidate.
		p.runHandHot()
	}
	for {
		e := p.handCold
		p.handCold = e.next
		if !e.resident || e.hot {
			continue
		}
		if e.ref {
			e.ref = false
			if e.test {
				// Re-accessed within its test period: promote to hot.
				e.hot = true
				e.test = false
				p.nColdRes--
				p.nHot++
				for p.nHot > p.capacity-min(p.coldTarget, p.capacity-1) {
					p.runHandHot()
				}
				if p.nColdRes == 0 {
					p.runHandHot()
				}
			} else {
				// Re-accessed but out of test: give it a fresh test period
				// at the head.
				p.unlink(e)
				e.test = true
				p.insertHead(e)
			}
			continue
		}
		// Unreferenced resident cold page: evict it.
		e.resident = false
		p.forget(e.id)
		p.nColdRes--
		if e.test {
			// Keep as a non-resident page for the rest of its test period.
			p.nNR++
			for p.nNR > p.capacity {
				p.runHandTest()
			}
		} else {
			p.unlink(e)
			delete(p.table, e.id)
		}
		return e.id
	}
}

// runHandHot demotes one hot page to cold-resident status, clearing
// reference bits on the way (second chance).
func (p *ClockPro) runHandHot() {
	if p.nHot == 0 {
		return
	}
	for {
		e := p.handHot
		p.handHot = e.next
		if !e.hot {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		e.hot = false
		e.test = false
		p.nHot--
		p.nColdRes++
		return
	}
}

// runHandTest terminates one test period: a passed non-resident page is
// removed from the metadata; a resident cold page merely leaves its test
// period, shrinking the cold allocation.
func (p *ClockPro) runHandTest() {
	if p.nNR == 0 {
		return
	}
	for {
		e := p.handTest
		p.handTest = e.next
		if e.hot {
			continue
		}
		if !e.resident {
			p.unlink(e)
			delete(p.table, e.id)
			p.nNR--
			return
		}
		if e.test {
			// A resident cold page whose test period expires unused:
			// shrink the cold allocation.
			e.test = false
			p.coldTarget = max(1, p.coldTarget-1)
		}
	}
}

// Remove deletes a page from the resident set or the test-period history.
func (p *ClockPro) Remove(id PageID) {
	e, ok := p.table[id]
	if !ok {
		return
	}
	switch {
	case e.hot:
		p.nHot--
		p.forget(id)
	case e.resident:
		p.nColdRes--
		p.forget(id)
	default:
		p.nNR--
	}
	p.unlink(e)
	delete(p.table, id)
}
