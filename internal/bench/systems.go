// Package bench implements the BP-Wrapper paper's evaluation (Section IV):
// the five tested system configurations of Table I and one experiment
// function per table and figure, each returning typed rows and able to
// print itself in the paper's shape.
//
// Absolute numbers will differ from the paper's 2007-era Itanium SMP and
// Xeon hosts; the experiments are designed so the *shapes* reproduce: who
// wins, by what rough factor, and where the crossovers fall.
package bench

import (
	"fmt"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/core"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// System is one tested configuration from Table I of the paper.
type System struct {
	// Name is the paper's system name (pgClock, pg2Q, pgBat, pgPre,
	// pgBatPre).
	Name string

	// Policy is the replacement algorithm name in package replacer.
	Policy string

	// Batching and Prefetching select the BP-Wrapper techniques.
	Batching    bool
	Prefetching bool

	// FlatCombining selects the flat-combining commit path, the
	// beyond-the-paper extension measured by the combine experiment. Not
	// part of Table I.
	FlatCombining bool
}

// The five systems of Table I.
var (
	// SystemClock is stock PostgreSQL 8.2's configuration: the clock
	// algorithm, lock-free on hits — the scalability optimum the paper
	// measures everything against.
	SystemClock = System{Name: "pgClock", Policy: "clock"}

	// System2Q replaces clock with 2Q and no contention reduction: the
	// paper's baseline for an advanced algorithm naively integrated.
	System2Q = System{Name: "pg2Q", Policy: "2q"}

	// SystemBat is pg2Q plus the batching technique.
	SystemBat = System{Name: "pgBat", Policy: "2q", Batching: true}

	// SystemPre is pg2Q plus the prefetching technique.
	SystemPre = System{Name: "pgPre", Policy: "2q", Prefetching: true}

	// SystemBatPre enables both techniques: the full BP-Wrapper.
	SystemBatPre = System{Name: "pgBatPre", Policy: "2q", Batching: true, Prefetching: true}

	// SystemFC is pgBat with the flat-combining commit path — the
	// beyond-the-paper configuration of the combine experiment. It is not
	// in Systems(): Table I has exactly the paper's five rows.
	SystemFC = System{Name: "pgBatFC", Policy: "2q", Batching: true, FlatCombining: true}
)

// Systems returns the five configurations in the paper's order.
func Systems() []System {
	return []System{SystemClock, System2Q, SystemBat, SystemPre, SystemBatPre}
}

// SystemByName resolves a system by its Table I name.
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("bench: unknown system %q", name)
}

// WithPolicy returns a copy of the system using a different replacement
// algorithm; used by the policy-independence ablation (the paper reports
// repeating its experiments with LIRS and MQ in place of 2Q).
func (s System) WithPolicy(policy string) System {
	s.Policy = policy
	s.Name = s.Name + "/" + policy
	return s
}

// WrapperConfig materialises the system's core.Config with the paper's
// queue tuning (size 64, threshold 32) unless overridden by the caller.
func (s System) WrapperConfig(queueSize, batchThreshold int) core.Config {
	return core.Config{
		Batching:       s.Batching,
		Prefetching:    s.Prefetching,
		FlatCombining:  s.FlatCombining,
		QueueSize:      queueSize,
		BatchThreshold: batchThreshold,
	}
}

// NewPool builds a buffer pool of the given frame count for this system.
// queueSize/batchThreshold of zero mean the paper's defaults.
func (s System) NewPool(frames int, device storage.Device, queueSize, batchThreshold int) (*buffer.Pool, error) {
	pol, ok := replacer.New(s.Policy, frames)
	if !ok {
		return nil, fmt.Errorf("bench: system %s uses unknown policy %q", s.Name, s.Policy)
	}
	return buffer.New(buffer.Config{
		Frames:  frames,
		Policy:  pol,
		Wrapper: s.WrapperConfig(queueSize, batchThreshold),
		Device:  device,
	}), nil
}

// buildPool constructs a pool with an explicit wrapper configuration (used
// by ablations that tweak fields beyond queue tuning).
func buildPool(s System, frames int, wcfg core.Config) (*buffer.Pool, error) {
	pol, ok := replacer.New(s.Policy, frames)
	if !ok {
		return nil, fmt.Errorf("bench: system %s uses unknown policy %q", s.Name, s.Policy)
	}
	return buffer.New(buffer.Config{
		Frames:  frames,
		Policy:  pol,
		Wrapper: wcfg,
		Device:  storage.NewNullDevice(),
	}), nil
}

// buildPoolObs is buildPool plus live observability: when o.Obs is set the
// pool gets per-shard flight recorders and takes over the registry (the
// previous point's collectors are cleared), so a `bpbench -obs` listener
// always serves the pool of the point currently running. With o.Obs nil it
// is buildPool exactly — no recorder, no registration, no overhead.
func buildPoolObs(s System, frames int, wcfg core.Config, o Options) (*buffer.Pool, error) {
	pol, ok := replacer.New(s.Policy, frames)
	if !ok {
		return nil, fmt.Errorf("bench: system %s uses unknown policy %q", s.Name, s.Policy)
	}
	cfg := buffer.Config{
		Frames:  frames,
		Policy:  pol,
		Wrapper: wcfg,
		Device:  storage.NewNullDevice(),
	}
	if o.Obs != nil {
		cfg.RecorderSize = 4096
	}
	pool := buffer.New(cfg)
	if o.Obs != nil {
		o.Obs.Clear()
		pool.RegisterObs(o.Obs)
	}
	return pool, nil
}
