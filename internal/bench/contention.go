package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"bpwrapper/internal/sim"
	"bpwrapper/internal/txn"
	"bpwrapper/internal/workload"
)

// ---------------------------------------------------------------------------
// Experiment E15 — lock-contention anatomy: the Figure 6 view. Where E12
// compares the commit paths by throughput, this sweep reports the lock
// behaviour itself — acquisitions, blocking acquisitions, failed TryLocks,
// and wait/hold time per access — for baseline (pg2Q), batched (pgBat),
// and flat-combined (pgBatFC) across processor counts. It is the offline
// twin of the live lock histograms the obs registry exports: the same
// quantities, measured in a controlled sweep and committed as a baseline.
//
// Like E12 it runs the small queue (8) and threshold (4) so the lock stays
// busy enough for the protocols to differ; at the paper's 64/32 tuning
// both batched paths sit at the contention-free floor.

// ContentionQueueSize and ContentionThreshold are the queue tuning of the
// contention sweep (shared with the combine experiment by design, so E12
// and E15 describe the same operating point).
const (
	ContentionQueueSize = CombineQueueSize
	ContentionThreshold = CombineThreshold
)

// ContentionRow is one (workload, system, procs) point of the sweep. The
// per-million figures are normalized by page accesses, the paper's
// reporting unit; the per-access times are in nanoseconds (virtual
// nanoseconds in sim mode).
type ContentionRow struct {
	Workload string `json:"workload"`
	System   string `json:"system"` // pg2Q, pgBat, pgBatFC
	Procs    int    `json:"procs"`

	ThroughputTPS    float64 `json:"throughput_tps"`
	AcquisitionsPerM float64 `json:"acquisitions_per_m"`
	ContentionPerM   float64 `json:"contention_per_m"`
	TryFailuresPerM  float64 `json:"try_failures_per_m"`
	WaitNSPerAccess  float64 `json:"wait_ns_per_access"`
	HoldNSPerAccess  float64 `json:"hold_ns_per_access"`
}

// ContentionExperiment measures the lock anatomy of the three commit paths
// for every workload and processor count, fully cached and pre-warmed.
func ContentionExperiment(procsList []int, o Options) ([]ContentionRow, error) {
	o = o.withDefaults()
	if len(procsList) == 0 {
		procsList = []int{1, 2, 4, 8, 16}
	}
	systems := []System{System2Q, SystemBat, SystemFC}
	var rows []ContentionRow
	for _, wl := range o.Workloads {
		for _, procs := range procsList {
			for _, sys := range systems {
				row, err := contentionPoint(sys, wl, procs, o)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p=%d: %w", wl.Name(), sys.Name, procs, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// perMillion normalizes a count by accesses.
func perMillion(n, accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(n) / float64(accesses) * 1e6
}

// perAccess normalizes nanoseconds by accesses.
func perAccess(nanos, accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(nanos) / float64(accesses)
}

// contentionPoint measures one combination. Like combinePoint it bypasses
// runPoint: the generic Point carries only the blended contention figure,
// not the full lock anatomy.
func contentionPoint(sys System, wl workload.Workload, procs int, o Options) (ContentionRow, error) {
	row := ContentionRow{Workload: wl.Name(), System: sys.Name, Procs: procs}
	if o.Mode == ModeReal {
		pool, err := buildPoolObs(sys, wl.DataPages(), sys.WrapperConfig(ContentionQueueSize, ContentionThreshold), o)
		if err != nil {
			return ContentionRow{}, err
		}
		if err := pool.Prewarm(wl.Pages()); err != nil {
			return ContentionRow{}, err
		}
		cfg := txn.Config{
			Pool:          pool,
			Workload:      wl,
			Workers:       o.WorkersPerProc * procs,
			Procs:         procs,
			Seed:          o.Seed,
			TouchBytes:    true,
			Duration:      o.Duration,
			TxnsPerWorker: o.TxnsPerWorker,
		}
		if o.TxnsPerWorker > 0 {
			cfg.Duration = 0
		}
		res, err := txn.Run(cfg)
		if err != nil {
			return ContentionRow{}, err
		}
		acc := res.Wrapper.Accesses
		row.ThroughputTPS = res.ThroughputTPS
		row.AcquisitionsPerM = perMillion(res.Wrapper.Lock.Acquisitions, acc)
		row.ContentionPerM = res.ContentionPerM
		row.TryFailuresPerM = perMillion(res.Wrapper.Lock.TryFailures, acc)
		row.WaitNSPerAccess = perAccess(res.Wrapper.Lock.WaitTime.Nanoseconds(), acc)
		row.HoldNSPerAccess = perAccess(res.Wrapper.Lock.HoldTime.Nanoseconds(), acc)
		return row, nil
	}
	params := o.simParamsFor(wl)
	res, err := sim.Run(sim.Config{
		Procs:          procs,
		Workers:        o.WorkersPerProc * procs,
		Policy:         sys.Policy,
		Batching:       sys.Batching,
		Prefetching:    sys.Prefetching,
		FlatCombining:  sys.FlatCombining,
		QueueSize:      ContentionQueueSize,
		BatchThreshold: ContentionThreshold,
		Workload:       wl,
		Prewarm:        true,
		Duration:       sim.Time(o.Duration),
		Seed:           o.Seed,
		Params:         &params,
	})
	if err != nil {
		return ContentionRow{}, err
	}
	row.ThroughputTPS = res.ThroughputTPS
	row.AcquisitionsPerM = perMillion(res.Lock.Acquisitions, res.Accesses)
	row.ContentionPerM = res.ContentionPerM
	row.TryFailuresPerM = perMillion(res.Lock.TryFailures, res.Accesses)
	row.WaitNSPerAccess = perAccess(int64(res.Lock.WaitTime), res.Accesses)
	row.HoldNSPerAccess = perAccess(int64(res.Lock.HoldTime), res.Accesses)
	return row, nil
}

// ContentionReport is the JSON shape committed as
// results/BENCH_contention.json.
type ContentionReport struct {
	Experiment     string          `json:"experiment"`
	Mode           string          `json:"mode"`
	Seed           int64           `json:"seed"`
	DurationMS     int64           `json:"duration_ms"`
	QueueSize      int             `json:"queue_size"`
	BatchThreshold int             `json:"batch_threshold"`
	Rows           []ContentionRow `json:"rows"`
}

// JSONContention writes the committed-baseline JSON document.
func JSONContention(w io.Writer, o Options, rows []ContentionRow) error {
	o = o.withDefaults()
	rep := ContentionReport{
		Experiment:     "contention",
		Mode:           string(o.Mode),
		Seed:           o.Seed,
		DurationMS:     o.Duration.Milliseconds(),
		QueueSize:      ContentionQueueSize,
		BatchThreshold: ContentionThreshold,
		Rows:           rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintContention renders the sweep per workload: one line per
// (procs, system), the lock anatomy side by side.
func PrintContention(w io.Writer, rows []ContentionRow) {
	fmt.Fprintf(w, "Lock-contention anatomy — per million accesses / per access (queue %d, threshold %d)\n",
		ContentionQueueSize, ContentionThreshold)
	lastWl := ""
	for _, r := range rows {
		if r.Workload != lastWl {
			fmt.Fprintf(w, "\n%s\n", r.Workload)
			fmt.Fprintf(w, "  %5s  %-8s  %12s  %12s  %12s  %12s  %10s  %10s\n",
				"procs", "system", "tps", "acq/M", "block/M", "tryfail/M", "wait ns/a", "hold ns/a")
			lastWl = r.Workload
		}
		fmt.Fprintf(w, "  %5d  %-8s  %12.0f  %12.0f  %12.1f  %12.1f  %10.1f  %10.1f\n",
			r.Procs, r.System, r.ThroughputTPS, r.AcquisitionsPerM, r.ContentionPerM,
			r.TryFailuresPerM, r.WaitNSPerAccess, r.HoldNSPerAccess)
	}
}

// CSVContention writes the rows in long form.
func CSVContention(w io.Writer, rows []ContentionRow) error {
	if _, err := fmt.Fprintln(w, "workload,system,procs,throughput_tps,acquisitions_per_m,contention_per_m,try_failures_per_m,wait_ns_per_access,hold_ns_per_access"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f\n",
			r.Workload, r.System, r.Procs, r.ThroughputTPS, r.AcquisitionsPerM,
			r.ContentionPerM, r.TryFailuresPerM, r.WaitNSPerAccess, r.HoldNSPerAccess); err != nil {
			return err
		}
	}
	return nil
}
