package core

import (
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
)

// recordingPolicy captures the exact operation sequence delivered to it and
// detects unserialized access with a plain (non-atomic) counter.
type recordingPolicy struct {
	inner replacer.Policy
	ops   []string
	calls int // intentionally unguarded: races surface under -race
}

func newRecording(capacity int) *recordingPolicy {
	return &recordingPolicy{inner: replacer.NewLRU(capacity)}
}

func (r *recordingPolicy) Name() string                 { return "recording" }
func (r *recordingPolicy) Cap() int                     { return r.inner.Cap() }
func (r *recordingPolicy) Len() int                     { return r.inner.Len() }
func (r *recordingPolicy) Contains(id page.PageID) bool { return r.inner.Contains(id) }

func (r *recordingPolicy) Hit(id page.PageID) {
	r.calls++
	r.ops = append(r.ops, "h"+id.String())
	r.inner.Hit(id)
}

func (r *recordingPolicy) Admit(id page.PageID) (page.PageID, bool) {
	r.calls++
	r.ops = append(r.ops, "m"+id.String())
	return r.inner.Admit(id)
}

func (r *recordingPolicy) Evict() (page.PageID, bool) { return r.inner.Evict() }
func (r *recordingPolicy) Remove(id page.PageID)      { r.inner.Remove(id) }

func pid(n uint64) page.PageID { return page.NewPageID(1, n) }

// access drives the session like a buffer manager would: Hit when the
// policy thinks the page resident, Miss otherwise. Single-session use only.
func access(w *Wrapper, s *Session, rec *recordingPolicy, id page.PageID) {
	// With one session we can consult residency directly: pending queued
	// hits never change residency.
	if rec.Contains(id) {
		s.Hit(id, page.BufferTag{Page: id})
	} else {
		s.Miss(id, page.BufferTag{Page: id})
	}
}

func TestUnbatchedAppliesImmediately(t *testing.T) {
	rec := newRecording(4)
	w := New(rec, Config{})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Hit(pid(1), page.BufferTag{})
	if got := len(rec.ops); got != 2 {
		t.Fatalf("ops=%v, want immediate application", rec.ops)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending=%d in unbatched mode", s.Pending())
	}
	st := w.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBatchingDefersUntilThreshold(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, QueueSize: 8, BatchThreshold: 4})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	for i := 0; i < 3; i++ {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	if got := len(rec.ops); got != 1 {
		t.Fatalf("policy saw %d ops before threshold, want 1 (the miss)", got)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending=%d, want 3", s.Pending())
	}
	// Fourth hit reaches the threshold; lock is free, so TryLock commits.
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	if got := len(rec.ops); got != 5 {
		t.Fatalf("policy saw %d ops after threshold commit, want 5", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending=%d after commit", s.Pending())
	}
	st := w.Stats()
	if st.TryCommits != 1 || st.ForcedLocks != 0 {
		t.Fatalf("stats %+v: want one TryLock commit", st)
	}
}

func TestBatchingBlocksOnlyWhenFull(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, QueueSize: 6, BatchThreshold: 3})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})

	// Hold the lock from elsewhere so TryLock fails.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		w.Locked(func(replacer.Policy) {
			close(held)
			<-release
		})
	}()
	<-held
	for i := 0; i < 5; i++ {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	if s.Pending() != 5 {
		t.Fatalf("pending=%d, want 5 (lock busy, queue not full)", s.Pending())
	}
	// The sixth hit fills the queue: the session must block until the lock
	// frees, then commit all six.
	committed := make(chan struct{})
	go func() {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		close(committed)
	}()
	// Give the goroutine time to reach the blocking Lock before releasing.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-committed:
		t.Fatal("queue-full commit did not block on the held lock")
	default:
	}
	close(release)
	<-committed
	if s.Pending() != 0 {
		t.Fatalf("pending=%d after forced commit", s.Pending())
	}
	st := w.Stats()
	if st.ForcedLocks != 1 {
		t.Fatalf("forcedLocks=%d, want 1", st.ForcedLocks)
	}
	if st.Lock.Contentions == 0 {
		t.Fatal("blocking commit not counted as contention")
	}
}

func TestMissFlushesQueueInOrder(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, QueueSize: 16, BatchThreshold: 16})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Miss(pid(2), page.BufferTag{})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Hit(pid(2), page.BufferTag{Page: pid(2)})
	s.Miss(pid(3), page.BufferTag{})
	want := []string{"m" + pid(1).String(), "m" + pid(2).String(),
		"h" + pid(1).String(), "h" + pid(2).String(), "m" + pid(3).String()}
	if len(rec.ops) != len(want) {
		t.Fatalf("ops=%v want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("op[%d]=%s want %s (order not preserved)", i, rec.ops[i], want[i])
		}
	}
}

// TestBatchedSequenceEqualsUnbatched is the order-preservation property the
// paper claims: for a single thread, the operation sequence delivered to
// the policy is identical with and without batching — only the timing
// differs.
func TestBatchedSequenceEqualsUnbatched(t *testing.T) {
	trace := make([]page.PageID, 0, 5000)
	for i := 0; i < 5000; i++ {
		trace = append(trace, pid(uint64(i*i)%97))
	}

	run := func(cfg Config) []string {
		rec := newRecording(32)
		w := New(rec, cfg)
		s := w.NewSession()
		for _, id := range trace {
			access(w, s, rec, id)
		}
		s.Flush()
		return rec.ops
	}

	plain := run(Config{})
	batched := run(Config{Batching: true, QueueSize: 64, BatchThreshold: 32})
	if len(plain) != len(batched) {
		t.Fatalf("op counts differ: %d vs %d", len(plain), len(batched))
	}
	for i := range plain {
		if plain[i] != batched[i] {
			t.Fatalf("op[%d]: %s vs %s", i, plain[i], batched[i])
		}
	}
}

func TestFlushCommitsPending(t *testing.T) {
	rec := newRecording(8)
	w := New(rec, Config{Batching: true, QueueSize: 64, BatchThreshold: 64})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	if len(rec.ops) != 1 {
		t.Fatalf("premature commit: %v", rec.ops)
	}
	s.Flush()
	if len(rec.ops) != 3 {
		t.Fatalf("flush did not commit: %v", rec.ops)
	}
	s.Flush() // idempotent on empty queue
	if len(rec.ops) != 3 {
		t.Fatalf("empty flush changed state: %v", rec.ops)
	}
}

func TestValidateDropsStaleEntries(t *testing.T) {
	rec := newRecording(8)
	goodTag := page.BufferTag{Page: pid(1), Gen: 1}
	w := New(rec, Config{
		Batching:  true,
		QueueSize: 8,
		Validate:  func(e Entry) bool { return e.Tag == goodTag },
	})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Hit(pid(1), goodTag)
	s.Hit(pid(1), page.BufferTag{Page: pid(1), Gen: 2}) // stale
	s.Flush()
	st := w.Stats()
	if st.Committed != 1 || st.Dropped != 1 {
		t.Fatalf("committed=%d dropped=%d, want 1/1", st.Committed, st.Dropped)
	}
	if len(rec.ops) != 2 { // miss + one valid hit
		t.Fatalf("ops=%v", rec.ops)
	}
}

func TestLockFreeHitBypassesLock(t *testing.T) {
	clock := replacer.NewClock(8)
	w := New(clock, Config{Batching: true})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	before := w.Stats().Lock.Acquisitions
	for i := 0; i < 100; i++ {
		s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	}
	s.Flush() // fold the staged per-session counters; must not take the lock
	st := w.Stats()
	if st.Lock.Acquisitions != before {
		t.Fatalf("clock hits acquired the lock %d times", st.Lock.Acquisitions-before)
	}
	if st.Hits != 100 {
		t.Fatalf("hits=%d", st.Hits)
	}
	if s.Pending() != 0 {
		t.Fatalf("clock hits were queued (pending=%d)", s.Pending())
	}
}

func TestSharedQueueCommits(t *testing.T) {
	rec := newRecording(32)
	w := New(rec, Config{Batching: true, SharedQueue: true, QueueSize: 8, BatchThreshold: 4})
	s1 := w.NewSession()
	s2 := w.NewSession()
	s1.Miss(pid(1), page.BufferTag{})
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s2.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	if len(rec.ops) != 1 {
		t.Fatalf("shared queue committed early: %v", rec.ops)
	}
	s2.Hit(pid(1), page.BufferTag{Page: pid(1)}) // 4th queued entry → commit
	if len(rec.ops) != 5 {
		t.Fatalf("shared queue did not commit at threshold: %v", rec.ops)
	}
	// A miss from either session steals the shared queue.
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s2.Miss(pid(2), page.BufferTag{})
	if len(rec.ops) != 7 {
		t.Fatalf("miss did not flush shared queue: %v", rec.ops)
	}
}

func TestConcurrentSessionsSerializePolicy(t *testing.T) {
	rec := newRecording(512)
	w := New(rec, Config{Batching: true, QueueSize: 16, BatchThreshold: 8})
	// Preload pages so hits dominate.
	w.Locked(func(p replacer.Policy) {
		for i := uint64(0); i < 256; i++ {
			p.Admit(pid(i))
		}
	})
	const workers, perWorker = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := w.NewSession()
			for i := 0; i < perWorker; i++ {
				id := pid(uint64((g*31 + i)) % 256)
				s.Hit(id, page.BufferTag{Page: id})
			}
			s.Flush()
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Hits != workers*perWorker {
		t.Fatalf("hits=%d want %d", st.Hits, workers*perWorker)
	}
	// The recording policy's unguarded counter equals the op count only if
	// every policy call happened under the lock. The 256 preload Admits
	// went through Locked, which bypasses the wrapper's stats.
	if rec.calls != len(rec.ops) || int64(rec.calls) != st.Committed+st.Misses+256 {
		t.Fatalf("calls=%d ops=%d committed=%d: policy access not serialized",
			rec.calls, len(rec.ops), st.Committed)
	}
}

func TestConfigDefaults(t *testing.T) {
	w := New(replacer.NewLRU(4), Config{Batching: true})
	cfg := w.Config()
	if cfg.QueueSize != DefaultQueueSize {
		t.Errorf("QueueSize=%d", cfg.QueueSize)
	}
	if cfg.BatchThreshold != DefaultQueueSize/2 {
		t.Errorf("BatchThreshold=%d", cfg.BatchThreshold)
	}
	w2 := New(replacer.NewLRU(4), Config{Batching: true, QueueSize: 10, BatchThreshold: 99})
	if got := w2.Config().BatchThreshold; got != 10 {
		t.Errorf("threshold not clamped to queue size: %d", got)
	}
}

func TestResetStats(t *testing.T) {
	w := New(replacer.NewLRU(4), Config{Batching: true, QueueSize: 4, BatchThreshold: 2})
	s := w.NewSession()
	s.Miss(pid(1), page.BufferTag{})
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Flush()
	w.ResetStats()
	st := w.Stats()
	if st.Accesses != 0 || st.Commits != 0 || st.Lock.Acquisitions != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
}

func TestPrefetchingConfig(t *testing.T) {
	// Prefetching with a supporting policy must not change behaviour.
	rec := replacer.NewTwoQ(32)
	w := New(rec, Config{Batching: true, Prefetching: true, QueueSize: 8, BatchThreshold: 4})
	s := w.NewSession()
	for i := uint64(0); i < 100; i++ {
		id := pid(i % 20)
		if rec.Contains(id) {
			s.Hit(id, page.BufferTag{Page: id})
		} else {
			s.Miss(id, page.BufferTag{})
		}
	}
	s.Flush()
	st := w.Stats()
	if st.Accesses != 100 {
		t.Fatalf("accesses=%d", st.Accesses)
	}
}

func TestAdaptiveThresholdMovesDown(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, AdaptiveThreshold: true, QueueSize: 32, BatchThreshold: 16})
	s := w.NewSession()
	if s.Threshold() != 16 {
		t.Fatalf("initial threshold %d", s.Threshold())
	}
	// Hold the lock so every TryLock fails and the queue fills, forcing a
	// blocking commit — the adaptation must lower the threshold.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		w.Locked(func(replacer.Policy) {
			close(held)
			<-release
		})
	}()
	<-held
	done := make(chan struct{})
	go func() {
		for i := 0; i < 32; i++ {
			s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		}
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	close(release)
	<-done
	if s.Threshold() >= 16 {
		t.Fatalf("threshold %d did not move down after a forced commit", s.Threshold())
	}
	if s.Threshold() < 32/8 {
		t.Fatalf("threshold %d fell below the floor", s.Threshold())
	}
}

func TestAdaptiveThresholdMovesUp(t *testing.T) {
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, AdaptiveThreshold: true, QueueSize: 32, BatchThreshold: 8})
	s := w.NewSession()
	// Uncontended lock: every threshold crossing succeeds on the first
	// TryLock; after 8 such commits the threshold creeps up by one.
	for round := 0; round < 8*9; round++ {
		for i := 0; i < s.Threshold(); i++ {
			s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		}
	}
	if s.Threshold() <= 8 {
		t.Fatalf("threshold %d did not move up under an uncontended lock", s.Threshold())
	}
	if s.Threshold() > 3*32/4 {
		t.Fatalf("threshold %d exceeded the ceiling", s.Threshold())
	}
}

func TestAdaptiveThresholdBounded(t *testing.T) {
	// Long mixed run: the threshold must stay within its documented band.
	rec := newRecording(64)
	w := New(rec, Config{Batching: true, AdaptiveThreshold: true, QueueSize: 64})
	s := w.NewSession()
	for i := 0; i < 50000; i++ {
		s.Hit(pid(uint64(i%3)), page.BufferTag{Page: pid(uint64(i % 3))})
		thr := s.Threshold()
		if thr < 64/8 || thr > 3*64/4 {
			t.Fatalf("threshold %d escaped [8, 48] at step %d", thr, i)
		}
	}
	s.Flush()
}

func TestMissBeginMissAdmitProtocol(t *testing.T) {
	rec := newRecording(2)
	w := New(rec, Config{Batching: true, QueueSize: 8, BatchThreshold: 8})
	s := w.NewSession()

	// Fill via the two-phase path.
	if v, ev := s.MissBegin(pid(1), page.BufferTag{}); ev {
		t.Fatalf("eviction on empty policy: %v", v)
	}
	s.MissAdmit(pid(1))
	s.MissBegin(pid(2), page.BufferTag{})
	s.MissAdmit(pid(2))

	// Queue some hits, then a miss at capacity: MissBegin must commit the
	// queue first (order preserved) and evict without admitting.
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	v, ev := s.MissBegin(pid(3), page.BufferTag{})
	if !ev {
		t.Fatal("no eviction at capacity")
	}
	if rec.Contains(pid(3)) {
		t.Fatal("MissBegin admitted the page")
	}
	if rec.Contains(v) {
		t.Fatalf("victim %v still resident", v)
	}
	// The queued hit must have been applied before the eviction.
	want := []string{"m" + pid(1).String(), "m" + pid(2).String(), "h" + pid(1).String()}
	for i, op := range want {
		if rec.ops[i] != op {
			t.Fatalf("op[%d]=%s want %s", i, rec.ops[i], op)
		}
	}
	if v2, ev2 := s.MissAdmit(pid(3)); ev2 {
		t.Fatalf("MissAdmit evicted %v with a free slot", v2)
	}
	if !rec.Contains(pid(3)) {
		t.Fatal("MissAdmit did not admit")
	}

	st := w.Stats()
	if st.Misses != 3 {
		t.Fatalf("misses=%d, want 3", st.Misses)
	}
}

func TestMissAdmitEvictsWhenSlotStolen(t *testing.T) {
	pol := replacer.NewLRU(2)
	w := New(pol, Config{})
	s := w.NewSession()
	s.MissBegin(pid(1), page.BufferTag{})
	s.MissAdmit(pid(1))
	s.MissBegin(pid(2), page.BufferTag{})
	s.MissAdmit(pid(2))
	// Begin a miss (evicts pid(1)), then steal the freed slot before the
	// admit, as a concurrent loader would.
	if v, ev := s.MissBegin(pid(3), page.BufferTag{}); !ev || v != pid(1) {
		t.Fatalf("victim %v/%v", v, ev)
	}
	w.Locked(func(p replacer.Policy) { p.Admit(pid(9)) })
	v, ev := s.MissAdmit(pid(3))
	if !ev {
		t.Fatal("MissAdmit did not evict after losing the slot")
	}
	if v != pid(2) && v != pid(9) {
		t.Fatalf("unexpected spare victim %v", v)
	}
	if !pol.Contains(pid(3)) {
		t.Fatal("page not admitted")
	}
}

func TestMissBeginFlushesSharedQueue(t *testing.T) {
	rec := newRecording(8)
	w := New(rec, Config{Batching: true, SharedQueue: true, QueueSize: 16, BatchThreshold: 16})
	s1 := w.NewSession()
	s2 := w.NewSession()
	s1.MissBegin(pid(1), page.BufferTag{})
	s1.MissAdmit(pid(1))
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s2.Hit(pid(1), page.BufferTag{Page: pid(1)})
	if len(rec.ops) != 1 {
		t.Fatalf("premature commit: %v", rec.ops)
	}
	s2.MissBegin(pid(2), page.BufferTag{})
	if len(rec.ops) != 3 { // miss1 + two committed hits
		t.Fatalf("MissBegin did not flush the shared queue: %v", rec.ops)
	}
	s2.MissAdmit(pid(2))
}

func TestSharedQueueFlushAndPending(t *testing.T) {
	rec := newRecording(8)
	w := New(rec, Config{Batching: true, SharedQueue: true, QueueSize: 32, BatchThreshold: 32})
	s1 := w.NewSession()
	s2 := w.NewSession()
	s1.MissBegin(pid(1), page.BufferTag{})
	s1.MissAdmit(pid(1))
	s1.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s2.Hit(pid(1), page.BufferTag{Page: pid(1)})
	// Pending reflects the one shared queue from either session.
	if s1.Pending() != 2 || s2.Pending() != 2 {
		t.Fatalf("pending %d/%d, want 2/2", s1.Pending(), s2.Pending())
	}
	// Flush from either session drains the shared queue.
	s2.Flush()
	if s1.Pending() != 0 {
		t.Fatalf("pending %d after shared flush", s1.Pending())
	}
	if len(rec.ops) != 3 {
		t.Fatalf("ops=%v", rec.ops)
	}
	// Empty shared flush is a no-op.
	s1.Flush()
	if len(rec.ops) != 3 {
		t.Fatalf("empty flush changed state: %v", rec.ops)
	}
}

func TestSharedQueueFlushWithPrefetch(t *testing.T) {
	pol := replacer.NewTwoQ(16)
	w := New(pol, Config{Batching: true, SharedQueue: true, Prefetching: true, QueueSize: 32, BatchThreshold: 32})
	s := w.NewSession()
	s.MissBegin(pid(1), page.BufferTag{})
	s.MissAdmit(pid(1))
	s.Hit(pid(1), page.BufferTag{Page: pid(1)})
	s.Flush()
	if got := w.Stats().Committed; got != 1 {
		t.Fatalf("committed=%d", got)
	}
}

func TestSharedQueueFullForcesCommit(t *testing.T) {
	rec := newRecording(8)
	w := New(rec, Config{Batching: true, SharedQueue: true, QueueSize: 4, BatchThreshold: 4})
	s := w.NewSession()
	s.MissBegin(pid(1), page.BufferTag{})
	s.MissAdmit(pid(1))
	// Hold the lock so the threshold TryLock fails; the shared queue puts
	// the batch back until it is full, then blocks.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		w.Locked(func(replacer.Policy) {
			close(held)
			<-release
		})
	}()
	<-held
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			s.Hit(pid(1), page.BufferTag{Page: pid(1)})
		}
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("full shared queue did not block on the held lock")
	default:
	}
	close(release)
	<-done
	if got := w.Stats().Committed; got != 4 {
		t.Fatalf("committed=%d, want 4", got)
	}
}

func TestAdaptDownFloor(t *testing.T) {
	w := New(replacer.NewLRU(4), Config{Batching: true, AdaptiveThreshold: true, QueueSize: 4, BatchThreshold: 1})
	s := w.NewSession()
	// QueueSize/8 == 0 → floor must clamp to 1 and never go below.
	for i := 0; i < 10; i++ {
		s.adaptDown()
	}
	if s.Threshold() != 1 {
		t.Fatalf("threshold %d, want floor 1", s.Threshold())
	}
}
