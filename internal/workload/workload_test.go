package workload

import (
	"testing"

	"bpwrapper/internal/page"
)

// allWorkloads returns one instance of every built-in workload at a small
// scale suitable for tests.
func allWorkloads() []Workload {
	return []Workload{
		NewTPCW(TPCWConfig{Items: 1000, Customers: 2000, Workers: 8}),
		NewTPCC(TPCCConfig{Warehouses: 2, Items: 1000, Customers: 300, Workers: 8}),
		NewTableScan(TableScanConfig{Tables: 4, PagesPerTable: 50}),
		NewZipf(SyntheticConfig{Pages: 1000}),
		NewUniform(SyntheticConfig{Pages: 1000}),
		NewHotspot(SyntheticConfig{Pages: 1000}),
		NewLoop(SyntheticConfig{Pages: 1000}),
	}
}

func collect(w Workload, worker int, seed int64, txns int) []Access {
	st := w.NewStream(worker, seed)
	var all []Access
	buf := make([]Access, 0, 512)
	for i := 0; i < txns; i++ {
		buf = st.NextTxn(buf[:0])
		all = append(all, buf...)
	}
	return all
}

func TestDeterminism(t *testing.T) {
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			a := collect(w, 3, 42, 50)
			b := collect(w, 3, 42, 50)
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("access %d differs: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestWorkersDecorrelated(t *testing.T) {
	for _, w := range allWorkloads() {
		if w.Name() == "loop" || w.Name() == "tablescan" {
			continue // deliberately similar across workers
		}
		t.Run(w.Name(), func(t *testing.T) {
			a := collect(w, 0, 42, 20)
			b := collect(w, 1, 42, 20)
			same := 0
			n := min(len(a), len(b))
			for i := 0; i < n; i++ {
				if a[i].Page == b[i].Page {
					same++
				}
			}
			// Some overlap is expected (hot index roots); identical streams
			// are not.
			if same == n {
				t.Fatal("workers 0 and 1 produce identical streams")
			}
		})
	}
}

func TestAccessesWithinDeclaredPages(t *testing.T) {
	for _, w := range allWorkloads() {
		t.Run(w.Name(), func(t *testing.T) {
			declared := make(map[page.PageID]bool, w.DataPages())
			for _, id := range w.Pages() {
				if declared[id] {
					t.Fatalf("Pages() lists %v twice", id)
				}
				declared[id] = true
			}
			if len(declared) != w.DataPages() {
				t.Fatalf("Pages() has %d entries, DataPages()=%d", len(declared), w.DataPages())
			}
			for worker := 0; worker < 4; worker++ {
				for _, a := range collect(w, worker, 7, 100) {
					if !declared[a.Page] {
						t.Fatalf("worker %d accessed undeclared page %v", worker, a.Page)
					}
					if !a.Page.Valid() {
						t.Fatalf("invalid page id emitted")
					}
				}
			}
		})
	}
}

func TestTableScanScansWholeTables(t *testing.T) {
	w := NewTableScan(TableScanConfig{Tables: 3, PagesPerTable: 40})
	st := w.NewStream(0, 1)
	buf := st.NextTxn(nil)
	if len(buf) != 40 {
		t.Fatalf("scan length %d, want 40", len(buf))
	}
	table := buf[0].Page.Table()
	for i, a := range buf {
		if a.Page.Table() != table {
			t.Fatalf("scan crossed tables at %d", i)
		}
		if a.Page.Block() != uint64(i) {
			t.Fatalf("scan not sequential: block %d at position %d", a.Page.Block(), i)
		}
		if a.Write {
			t.Fatal("scan contains writes")
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	w := NewZipf(SyntheticConfig{Pages: 10000, TxnLen: 100})
	counts := make(map[page.PageID]int)
	for _, a := range collect(w, 0, 9, 200) {
		counts[a.Page]++
	}
	// The most popular page should absorb far more than the uniform share.
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	total := 200 * 100
	if best < total/100 {
		t.Fatalf("hottest page has %d/%d accesses; Zipf skew missing", best, total)
	}
}

func TestHotspotRatio(t *testing.T) {
	cfg := SyntheticConfig{Pages: 1000, TxnLen: 100, HotFraction: 0.2, HotProbability: 0.8}
	w := NewHotspot(cfg)
	hot, total := 0, 0
	for _, a := range collect(w, 0, 3, 300) {
		if a.Page.Block() < 200 {
			hot++
		}
		total++
	}
	ratio := float64(hot) / float64(total)
	if ratio < 0.75 || ratio > 0.85 {
		t.Fatalf("hot ratio %.3f, want ~0.8", ratio)
	}
}

func TestLoopIsCyclic(t *testing.T) {
	w := NewLoop(SyntheticConfig{Pages: 10, TxnLen: 25})
	accs := collect(w, 0, 1, 2)
	for i, a := range accs {
		if a.Page.Block() != uint64(i%10) {
			t.Fatalf("position %d: block %d, want %d", i, a.Page.Block(), i%10)
		}
	}
}

func TestTPCWHasWritesAndReads(t *testing.T) {
	w := NewTPCW(TPCWConfig{Items: 1000, Customers: 1000, Workers: 4})
	reads, writes := 0, 0
	for _, a := range collect(w, 0, 5, 500) {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	if writes == 0 {
		t.Fatal("TPC-W stream has no writes")
	}
	if reads < writes {
		t.Fatalf("TPC-W should be read-mostly: %d reads, %d writes", reads, writes)
	}
}

func TestTPCCWriteHeavierThanTPCW(t *testing.T) {
	frac := func(w Workload) float64 {
		writes, total := 0, 0
		for _, a := range collect(w, 0, 5, 500) {
			if a.Write {
				writes++
			}
			total++
		}
		return float64(writes) / float64(total)
	}
	tpcw := frac(NewTPCW(TPCWConfig{Items: 1000, Customers: 1000, Workers: 4}))
	tpcc := frac(NewTPCC(TPCCConfig{Warehouses: 2, Items: 1000, Customers: 300, Workers: 4}))
	if tpcc <= tpcw {
		t.Fatalf("TPC-C write fraction %.3f not above TPC-W's %.3f", tpcc, tpcw)
	}
}

func TestTPCCIndexRootIsHot(t *testing.T) {
	// The defining OLTP property: a few index-root pages absorb a large
	// share of all accesses. This skew is what makes the replacement
	// algorithm's lock a hot spot in the first place.
	w := NewTPCC(TPCCConfig{Warehouses: 2, Items: 1000, Customers: 300, Workers: 4})
	counts := make(map[page.PageID]int)
	total := 0
	for worker := 0; worker < 4; worker++ {
		for _, a := range collect(w, worker, 7, 200) {
			counts[a.Page]++
			total++
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < total/50 {
		t.Fatalf("hottest page only %d/%d accesses; expected sharp skew", best, total)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"tpcw", "dbt1", "tpcc", "dbt2", "tablescan", "scan", "zipf", "uniform", "hotspot", "loop"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestIndexWalkShape(t *testing.T) {
	ix := NewIndex(5, 100000, 200, 200)
	buf := ix.Walk(nil, 12345)
	if len(buf) != 3 {
		t.Fatalf("walk length %d", len(buf))
	}
	if buf[0].Page != page.NewPageID(5, 0) {
		t.Fatalf("walk does not start at the root: %v", buf[0].Page)
	}
	for _, a := range buf {
		if a.Write {
			t.Fatal("index walk contains writes")
		}
		if a.Page.Block() >= ix.Pages() {
			t.Fatalf("walk page %v outside index", a.Page)
		}
	}
	// Same key, same path; nearby keys share the root.
	again := ix.Walk(nil, 12345)
	for i := range buf {
		if buf[i] != again[i] {
			t.Fatal("walk not deterministic")
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tab := NewTable(9, 10)
	if tab.Pages() != 10 {
		t.Fatalf("Pages()=%d", tab.Pages())
	}
	if tab.Page(23) != page.NewPageID(9, 3) {
		t.Fatalf("Page(23)=%v, want wraparound to block 3", tab.Page(23))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page table accepted")
		}
	}()
	NewTable(1, 0)
}
