// Package sim is a deterministic discrete-event simulator of a symmetric
// multiprocessor executing the DBMS buffer-manager protocol of the
// BP-Wrapper paper.
//
// The paper's scalability results (Figures 2, 6, 7; Tables II, III) were
// measured on a 16-processor SGI Altix 350 and an 8-core Dell PowerEdge
// 1900. Reproducing parallel lock contention requires parallel hardware;
// on a small host (this reproduction was built on a single-core machine)
// the contention the paper studies cannot physically occur. Following the
// substitution methodology in DESIGN.md, this package simulates the
// hardware: virtual processors, a virtual policy lock with FIFO blocking
// and context-switch costs, critical-section cache-warmup costs that the
// prefetching technique removes (Figure 5 of the paper), and a bounded-
// parallelism disk. The replacement policies and workload streams are the
// real ones from internal/replacer and internal/workload, so hit ratios
// and victim choices are exact; only *time* is virtual.
//
// The kernel below is a process-oriented virtual-time executor in the
// style of SimPy: each simulated thread runs as a goroutine, but exactly
// one runs at a time, handing control back to the kernel whenever it
// performs a timed or blocking operation. Execution is fully deterministic:
// the event queue breaks time ties by sequence number, and all resource
// queues are FIFO.
package sim

import "container/heap"

// Time is virtual nanoseconds since simulation start.
type Time int64

// event is a scheduled wakeup for a process.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	p   *Process
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Kernel is the virtual-time executor. Create one with NewKernel, add
// processes with Spawn, then call Run. Not safe for concurrent use (the
// whole point is that simulated concurrency is deterministic).
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	running int // live processes (spawned, not finished)

	// handoff synchronizes the kernel with the single running process:
	// the kernel sends control to a process via its resume channel and
	// waits on yield for it to block, sleep, or finish.
	yield chan struct{}
}

// NewKernel returns an empty simulation.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Process is one simulated thread of execution. Its body runs as a
// goroutine that must interact with virtual time only through the
// process's methods (Sleep, resource acquire/release); between those calls
// it has the kernel to itself.
type Process struct {
	k      *Kernel
	resume chan struct{}
	// dead reports the body returned; used by the kernel to stop waiting.
	dead bool
}

// Spawn registers a new process whose body starts at the current virtual
// time.
func (k *Kernel) Spawn(body func(p *Process)) *Process {
	p := &Process{k: k, resume: make(chan struct{})}
	k.running++
	go func() {
		<-p.resume // wait for the kernel to schedule us the first time
		body(p)
		p.dead = true
		k.running--
		k.yield <- struct{}{}
	}()
	k.schedule(p, 0)
	return p
}

// schedule enqueues a wakeup for p after delay d.
func (k *Kernel) schedule(p *Process, d Time) {
	k.seq++
	heap.Push(&k.events, event{at: k.now + d, seq: k.seq, p: p})
}

// Run executes events until the queue drains (every process finished or is
// blocked forever) or until virtual time exceeds horizon (0 means no
// horizon). It returns the final virtual time.
func (k *Kernel) Run(horizon Time) Time {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if horizon > 0 && e.at > horizon {
			k.now = horizon
			break
		}
		k.now = e.at
		e.p.resume <- struct{}{}
		<-k.yield
	}
	return k.now
}

// pause returns control to the kernel and blocks the calling process until
// its next scheduled wakeup.
func (p *Process) pause() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of pure virtual delay (no resource
// held). d may be zero (the process re-queues behind simultaneous events).
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.k.schedule(p, d)
	p.pause()
}

// block parks the process with no scheduled wakeup; a resource will
// schedule it when granted.
func (p *Process) block() {
	p.pause()
}

// unblock schedules a parked process to resume after delay d.
func (p *Process) unblock(d Time) {
	p.k.schedule(p, d)
}

// Now returns the current virtual time (valid while the process runs).
func (p *Process) Now() Time { return p.k.now }
