package buffer

import (
	"strings"
	"testing"

	"bpwrapper/internal/core"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

func TestFlightRecorderDisabledByDefault(t *testing.T) {
	p := newTestPool(4, core.Config{Batching: true, QueueSize: 4, BatchThreshold: 2})
	if dump := p.FlightDump(); dump != "" {
		t.Fatalf("dump without recorders: %q", dump)
	}
	s := p.NewSession()
	for i := uint64(1); i <= 8; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	s.Flush()
	if p.cur.Load().shards[0].events != nil {
		t.Fatal("recorder allocated with RecorderSize 0")
	}
}

func TestFlightRecorderCapturesEvictionAndQuarantine(t *testing.T) {
	dev := storage.NewMemDevice()
	p := New(Config{
		Frames:       2,
		Policy:       replacer.NewLRU(2),
		Device:       dev,
		RecorderSize: 64,
	})
	s := p.NewSession()
	// Dirty a page, then force it out: eviction must park the copy in the
	// quarantine and flush it, leaving all three buffer events in the ring.
	ref, err := p.GetWrite(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.MarkDirty()
	ref.Release()
	for i := uint64(2); i <= 4; i++ {
		r, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}
	kinds := map[obs.EventKind]int{}
	for _, ev := range p.cur.Load().shards[0].events.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []obs.EventKind{obs.EvEvict, obs.EvQuarantinePark, obs.EvQuarantineFlush} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events recorded: %v", k, kinds)
		}
	}
	dump := p.FlightDump()
	for _, want := range []string{"shard 0", "evict", "quarantine-park", "quarantine-flush"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestPerShardRecordersAreIndependent(t *testing.T) {
	p := New(Config{
		Frames:        8,
		Shards:        2,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Device:        storage.NewMemDevice(),
		RecorderSize:  32,
	})
	if p.cur.Load().shards[0].events == p.cur.Load().shards[1].events {
		t.Fatal("shards share one recorder")
	}
	for i := range p.cur.Load().shards {
		if p.cur.Load().shards[i].events == nil {
			t.Fatalf("shard %d recorder missing", i)
		}
	}
}

func TestRegisterObsExposition(t *testing.T) {
	p := New(Config{
		Frames:        8,
		Shards:        2,
		PolicyFactory: func(n int) replacer.Policy { return replacer.NewLRU(n) },
		Wrapper:       core.Config{Batching: true, QueueSize: 8, BatchThreshold: 4},
		Device:        storage.NewMemDevice(),
		RecorderSize:  32,
	})
	s := p.NewSession()
	for i := uint64(1); i <= 32; i++ {
		ref, err := p.Get(s, pid(i%12+1))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	s.Flush()

	reg := obs.NewRegistry()
	p.RegisterObs(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`bpw_lock_acquisitions_total{shard="0"}`,
		`bpw_lock_acquisitions_total{shard="1"}`,
		`bpw_lock_wait_seconds_bucket{shard="0",le=`,
		`bpw_lock_hold_seconds_count{shard="0"}`,
		`bpw_batch_size_bucket{shard="0",le=`,
		`bpw_combine_run_length_count{shard="1"}`,
		`bpw_hits_total{shard="0"}`,
		`bpw_quarantined_pages{shard="1"} 0`,
		`bpw_flight_events_total{shard="0"}`,
		`bpw_flight_dropped_total{shard="1"}`,
		"bpw_shards 2",
		"bpw_device_reads_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}

	// The JSON tree must carry the same series for bpstat/expvar use.
	tree := reg.JSONTree()
	acq, ok := tree["bpw_lock_acquisitions_total"].([]any)
	if !ok || len(acq) != 2 {
		t.Fatalf("acquisitions series: %#v", tree["bpw_lock_acquisitions_total"])
	}
}

func TestRegisterObsBackgroundWriter(t *testing.T) {
	p := newTestPool(4, core.Config{})
	w := p.StartBackgroundWriter(BackgroundWriterConfig{})
	defer w.Stop()
	reg := obs.NewRegistry()
	w.RegisterObs(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bpw_bgwriter_rounds_total") {
		t.Fatalf("bgwriter counters missing:\n%s", sb.String())
	}
}

func TestCloseErrorCarriesFlightDump(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := New(Config{
		Frames:       2,
		Policy:       replacer.NewLRU(2),
		Device:       dev,
		RecorderSize: 64,
	})
	s := p.NewSession()
	ref, err := p.GetWrite(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.MarkDirty()
	ref.Release()
	dev.FailNextWrites(1 << 30) // every retry attempt fails
	cerr := p.Close()
	if cerr == nil {
		t.Fatal("Close succeeded with an unwritable device")
	}
	msg := cerr.Error()
	for _, want := range []string{"close did not reach a clean state", "flight recorder", "shard 0"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("close error missing %q:\n%s", want, msg)
		}
	}
	dev.FailNextWrites(0)
	if err := p.Close(); err != nil {
		t.Fatalf("pool not usable after failed close: %v", err)
	}
}
