package buffer

import (
	"sync"
	"testing"
	"time"

	"bpwrapper/internal/core"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

// gateDevice holds one armed page's next write at the device boundary so
// tests can open a write-in-flight window deterministically: the entered
// channel closes when the held write has been issued, and the write
// completes only after release is closed. All other I/O passes through.
type gateDevice struct {
	storage.Device
	mu      sync.Mutex
	target  page.PageID
	armed   bool
	entered chan struct{}
	release chan struct{}
}

func newGateDevice(d storage.Device) *gateDevice { return &gateDevice{Device: d} }

func (d *gateDevice) arm(id page.PageID) (entered, release chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.target, d.armed = id, true
	d.entered = make(chan struct{})
	d.release = make(chan struct{})
	return d.entered, d.release
}

func (d *gateDevice) WritePage(p *page.Page) error {
	d.mu.Lock()
	hold := d.armed && p.ID == d.target
	var entered, release chan struct{}
	if hold {
		d.armed = false
		entered, release = d.entered, d.release
	}
	d.mu.Unlock()
	if hold {
		close(entered)
		<-release
	}
	return d.Device.WritePage(p)
}

// TestStaleWriteBackCannotRevertNewerWrite pins down the lost-update
// interleaving: a quarantined copy v1 whose retry write is in flight is
// adopted by a miss, modified to v2, and re-evicted. The v2 write-back
// must be ordered after the in-flight v1 write (per-page stripe in
// writeQuarantined), so the device ends at v2 — before the fix, v2 could
// land first and the late v1 write silently reverted it.
func TestStaleWriteBackCannotRevertNewerWrite(t *testing.T) {
	mem := storage.NewMemDevice()
	fault := storage.NewFaultDevice(mem, storage.FaultConfig{})
	gate := newGateDevice(fault)
	p := New(Config{
		Frames:  4,
		Policy:  replacer.NewLRU(4),
		Wrapper: core.Config{Batching: true, QueueSize: 8, BatchThreshold: 4},
		Device:  gate,
	})
	s := p.NewSession()

	// Park v1 in the quarantine via a failed eviction write-back.
	dirtyPage(t, p, s, pid(1))
	fault.SetWriteFailRate(1)
	for i := uint64(10); i < 18; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	if p.QuarantineLen() != 1 {
		t.Fatalf("quarantined=%d after failed eviction, want 1", p.QuarantineLen())
	}
	fault.SetWriteFailRate(0)

	// Start a quarantine drain and hold its v1 write in flight.
	entered, release := gate.arm(pid(1))
	var drainErr error
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		_, _, drainErr = p.drainQuarantine()
	}()
	<-entered

	// Adopt v1 while the write is in flight, then modify to v2.
	ref, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	var got page.Page
	copy(got.Data[:], ref.Data())
	ref.Release()
	if !got.VerifyStamp(pid(1) + stampShift) {
		t.Fatal("adoption during in-flight write served stale bytes")
	}
	ref, err = p.GetWrite(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	var v2 page.Page
	v2.Stamp(pid(1) + 2*stampShift)
	copy(ref.Data(), v2.Data[:])
	ref.MarkDirty()
	ref.Release()

	// Re-evict page 1: its v2 write-back must wait for the in-flight v1.
	evictDone := make(chan struct{})
	go func() {
		defer close(evictDone)
		es := p.NewSession()
		for i := uint64(30); i < 35; i++ {
			ref, err := p.Get(es, pid(i))
			if err != nil {
				t.Error(err)
				return
			}
			ref.Release()
		}
	}()
	// Give the evicting write-back time to queue behind the stripe, then
	// let v1 land. The fix guarantees v2 is written strictly after.
	time.Sleep(100 * time.Millisecond)
	close(release)
	<-drainDone
	<-evictDone
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}

	var back page.Page
	if err := mem.ReadPage(pid(1), &back); err != nil {
		t.Fatal(err)
	}
	if !back.VerifyStamp(pid(1) + 2*stampShift) {
		t.Fatal("stale in-flight write reverted the device to v1 after v2 was written")
	}
	if p.QuarantineLen() != 0 {
		t.Fatalf("%d entries left quarantined", p.QuarantineLen())
	}
}

// TestFlushParksBeforeClearingDirty checks the flush write window: while a
// flush's write is in flight the frame no longer looks dirty, so an
// eviction in that window must find the page parked in the quarantine and
// a subsequent miss must adopt those bytes — not re-read a stale version
// from the device.
func TestFlushParksBeforeClearingDirty(t *testing.T) {
	mem := storage.NewMemDevice()
	gate := newGateDevice(mem)
	p := New(Config{
		Frames:  4,
		Policy:  replacer.NewLRU(4),
		Wrapper: core.Config{Batching: true, QueueSize: 8, BatchThreshold: 4},
		Device:  gate,
	})
	s := p.NewSession()

	dirtyPage(t, p, s, pid(1))
	entered, release := gate.arm(pid(1))
	var flushErr error
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		_, flushErr = p.FlushDirty()
	}()
	<-entered

	// The write is in flight: the frame is clean but the copy must be
	// parked so the page cannot be silently dropped by an eviction.
	if q := p.QuarantineLen(); q != 1 {
		t.Fatalf("quarantined=%d during in-flight flush write, want 1", q)
	}
	if d := p.DirtyCount(); d != 0 {
		t.Fatalf("dirty=%d during in-flight flush write, want 0", d)
	}

	// Evict the now-clean page 1, then miss on it: adoption must serve
	// the flushed bytes, not the device's (stale) synthesized content.
	for i := uint64(10); i < 14; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	ref, err := p.Get(s, pid(1))
	if err != nil {
		t.Fatal(err)
	}
	var got page.Page
	copy(got.Data[:], ref.Data())
	ref.Release()
	if !got.VerifyStamp(pid(1) + stampShift) {
		t.Fatal("miss during in-flight flush write read stale device data")
	}

	close(release)
	<-flushDone
	if flushErr != nil {
		t.Fatalf("FlushDirty: %v", flushErr)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var back page.Page
	if err := mem.ReadPage(pid(1), &back); err != nil {
		t.Fatal(err)
	}
	if !back.VerifyStamp(pid(1) + stampShift) {
		t.Fatal("page contents never reached storage")
	}
}

// TestInvalidateDiscardsQuarantinedCopy checks that invalidating a page
// also discards its quarantined copy: a page evicted with a failed
// write-back and then invalidated must not be resurrected onto the device
// by a later quarantine drain.
func TestInvalidateDiscardsQuarantinedCopy(t *testing.T) {
	p, dev, mem := flakyPool(4)
	s := p.NewSession()

	dirtyPage(t, p, s, pid(1))
	dev.SetWriteFailRate(1)
	for i := uint64(10); i < 18; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	if p.QuarantineLen() != 1 {
		t.Fatalf("quarantined=%d after failed eviction, want 1", p.QuarantineLen())
	}
	dev.SetWriteFailRate(0)

	if err := p.Invalidate(pid(1)); err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if q := p.QuarantineLen(); q != 0 {
		t.Fatalf("quarantined=%d after Invalidate, want 0", q)
	}
	if _, err := p.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty: %v", err)
	}
	if n := mem.Len(); n != 0 {
		t.Fatalf("device holds %d pages after invalidate+flush; discarded data was resurrected", n)
	}
}

// TestFlushRespectsQuarantineCap checks the cap bounds every insertion
// path: with the quarantine full of failed entries, flushes leave frames
// dirty instead of parking past the cap — and recovery still drains
// everything to storage.
func TestFlushRespectsQuarantineCap(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := New(Config{
		Frames:        4,
		Policy:        replacer.NewLRU(4),
		Device:        dev,
		QuarantineCap: 1,
		// A full quarantine flips the shard read-only under health
		// admission; disable it so the flush-cap path itself is exercised.
		Health: HealthConfig{Disable: true},
	})
	s := p.NewSession()
	dirtyPage(t, p, s, pid(1))
	dirtyPage(t, p, s, pid(2))
	dev.SetWriteFailRate(1)

	// Fill the quarantine: evicting dirty page 1 fails its write-back.
	for i := uint64(10); i < 16; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	if p.QuarantineLen() != 1 {
		t.Fatalf("quarantined=%d, want 1 (cap)", p.QuarantineLen())
	}
	if p.DirtyCount() != 1 {
		t.Fatalf("dirty=%d, want page 2 still resident dirty", p.DirtyCount())
	}

	// A flush with the quarantine at capacity must not park past the cap;
	// page 2 stays dirty for a later round rather than risking loss.
	if _, err := p.FlushDirty(); err == nil {
		t.Fatal("flush with a dead device and full quarantine returned nil error")
	}
	if q := p.QuarantineLen(); q > 1 {
		t.Fatalf("quarantine grew to %d entries past its cap of 1", q)
	}
	if p.DirtyCount() != 1 {
		t.Fatalf("dirty=%d after capped flush, want 1", p.DirtyCount())
	}

	dev.SetWriteFailRate(0)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := uint64(1); i <= 2; i++ {
		var back page.Page
		if err := mem.ReadPage(pid(i), &back); err != nil {
			t.Fatal(err)
		}
		if !back.VerifyStamp(pid(i) + stampShift) {
			t.Fatalf("page %d lost across the capped-flush episode", i)
		}
	}
}
