//go:build torture

package replacer

// deepInvariants enables the O(n) structural walks in CheckInvariants.
// Production builds keep the checks O(1); torture-tagged builds (nightly
// CI, local debugging) pay for full link/flag/table verification on every
// check. Mirrors the raceEnabled build-tag-const pattern.
const deepInvariants = true
