// Benchmarks regenerating the BP-Wrapper paper's tables and figures, one
// testing.B target per exhibit, plus wall-clock micro-benchmarks of the
// real implementation.
//
// The figure/table benches run the deterministic multiprocessor simulator
// (see DESIGN.md) and attach the paper's metrics — throughput, average
// lock contention per million accesses, per-access lock time — as custom
// benchmark metrics; the ns/op of those benches measures the simulator
// itself and is not the reproduced quantity. Run with:
//
//	go test -bench=. -benchmem
//
// For full, publication-length sweeps use cmd/bpbench instead.
package bpwrapper_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bpwrapper"
	"bpwrapper/internal/bench"
	"bpwrapper/internal/storage"
	"bpwrapper/internal/trace"
	"bpwrapper/internal/txn"
	"bpwrapper/internal/workload"
)

// benchOptions keeps simulator runs short enough for testing.B iteration
// while still reaching steady state.
func benchOptions() bench.Options {
	return bench.Options{
		Duration: 30 * time.Millisecond,
		Seed:     1,
		Workloads: []workload.Workload{
			workload.NewTPCW(workload.TPCWConfig{Items: 2000, Customers: 2000, Workers: 64}),
		},
	}
}

// BenchmarkFig2BatchSize regenerates Figure 2: average lock acquisition +
// holding time per page access as the batch size sweeps 1..64 at 16
// processors.
func BenchmarkFig2BatchSize(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var last []bench.BatchSizeRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig2BatchSize(16, []int{batch}, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			b.ReportMetric(float64(last[0].LockTimePerAccess.Nanoseconds()), "lockns/access")
			b.ReportMetric(last[0].ContentionPerM, "contention/M")
		})
	}
}

// BenchmarkFig6Scalability regenerates the Figure 6 envelope: the five
// systems at 16 processors (the full processor sweep is in cmd/bpbench).
func BenchmarkFig6Scalability(b *testing.B) {
	for _, sys := range bench.Systems() {
		b.Run(sys.Name+"/p=16", func(b *testing.B) {
			var last []bench.ScalabilityRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.Scalability([]bench.System{sys}, []int{16}, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			b.ReportMetric(last[0].ThroughputTPS, "tps")
			b.ReportMetric(last[0].ContentionPerM, "contention/M")
			b.ReportMetric(float64(last[0].AvgResponse.Microseconds()), "resp_us")
		})
	}
}

// BenchmarkFig7Scalability regenerates the Figure 7 envelope (8-core
// machine).
func BenchmarkFig7Scalability(b *testing.B) {
	for _, sys := range bench.Systems() {
		b.Run(sys.Name+"/p=8", func(b *testing.B) {
			var last []bench.ScalabilityRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.Scalability([]bench.System{sys}, []int{8}, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			b.ReportMetric(last[0].ThroughputTPS, "tps")
			b.ReportMetric(last[0].ContentionPerM, "contention/M")
		})
	}
}

// BenchmarkTableIIQueueSize regenerates Table II: queue-size sensitivity
// at 16 processors, threshold = size/2.
func BenchmarkTableIIQueueSize(b *testing.B) {
	for _, qs := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("queue=%d", qs), func(b *testing.B) {
			var last []bench.QueueSizeRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.TableIIQueueSize(16, []int{qs}, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			b.ReportMetric(last[0].ThroughputTPS, "tps")
			b.ReportMetric(last[0].ContentionPerM, "contention/M")
		})
	}
}

// BenchmarkTableIIIThreshold regenerates Table III: batch-threshold
// sensitivity with queue size 64.
func BenchmarkTableIIIThreshold(b *testing.B) {
	for _, thr := range []int{1, 2, 4, 8, 16, 32, 48, 64} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			var last []bench.ThresholdRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.TableIIIThreshold(16, []int{thr}, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			b.ReportMetric(last[0].ThroughputTPS, "tps")
			b.ReportMetric(last[0].ContentionPerM, "contention/M")
		})
	}
}

// BenchmarkFig8Overall regenerates Figure 8's envelope: hit ratio and
// throughput at a small and a full-size buffer for the three compared
// systems.
func BenchmarkFig8Overall(b *testing.B) {
	o := benchOptions()
	o.Duration = 60 * time.Millisecond
	for _, frac := range []float64{1.0 / 16, 1} {
		b.Run(fmt.Sprintf("buffer=%.4f", frac), func(b *testing.B) {
			var last []bench.OverallRow
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig8Overall(8, []float64{frac}, storage.SimDiskConfig{}, o)
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			for _, r := range last {
				b.ReportMetric(100*r.HitRatio, "hit%_"+r.System)
				b.ReportMetric(r.ThroughputTPS, "tps_"+r.System)
			}
		})
	}
}

// BenchmarkAblationSharedQueue regenerates the private-vs-shared queue
// ablation (Section III-A's design argument).
func BenchmarkAblationSharedQueue(b *testing.B) {
	var last []bench.SharedQueueRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationSharedQueue(16, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.ThroughputTPS, "tps_"+r.Design)
	}
}

// BenchmarkAblationPolicies regenerates the policy-independence ablation
// (LIRS and MQ wrapped in place of 2Q).
func BenchmarkAblationPolicies(b *testing.B) {
	var last []bench.PolicyRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationPolicies(16, []string{"2q", "lirs", "mq"}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.ThroughputTPS, "tps_"+r.Policy+"_"+r.System)
	}
}

// BenchmarkHitRatioFidelity regenerates the E9 extension: batched vs plain
// hit ratios on an identical trace (the Figure 8 curve overlap).
func BenchmarkHitRatioFidelity(b *testing.B) {
	wl := workload.NewTPCW(workload.TPCWConfig{Items: 1000, Customers: 1000, Workers: 8})
	tr := trace.Record(wl, 8, 100, 42)
	var plainHR, batchedHR float64
	for i := 0; i < b.N; i++ {
		plain, _ := bpwrapper.NewPolicy("2q", 256)
		batched, _ := bpwrapper.NewPolicy("2q", 256)
		plainHR = trace.Replay(plain, tr).HitRatio()
		batchedHR = trace.ReplayBatched(batched, tr, 64, 32).HitRatio()
	}
	b.ReportMetric(100*plainHR, "hit%_plain")
	b.ReportMetric(100*batchedHR, "hit%_batched")
	b.ReportMetric(100*(batchedHR-plainHR), "hit%_delta")
}

// ---------------------------------------------------------------------------
// Wall-clock micro-benchmarks of the real implementation.

// BenchmarkPolicyHit measures the per-hit cost of each replacement
// algorithm's bookkeeping (the work BP-Wrapper batches under the lock).
func BenchmarkPolicyHit(b *testing.B) {
	for _, name := range bpwrapper.PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, _ := bpwrapper.NewPolicy(name, 4096)
			ids := make([]bpwrapper.PageID, 4096)
			for i := range ids {
				ids[i] = bpwrapper.NewPageID(1, uint64(i))
				p.Admit(ids[i])
			}
			r := rand.New(rand.NewSource(1))
			order := make([]int, 1<<14)
			for i := range order {
				order[i] = r.Intn(len(ids))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Hit(ids[order[i%len(order)]])
			}
		})
	}
}

// BenchmarkPolicyAdmit measures the miss-path cost (admission + eviction).
func BenchmarkPolicyAdmit(b *testing.B) {
	for _, name := range bpwrapper.PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, _ := bpwrapper.NewPolicy(name, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := bpwrapper.NewPageID(1, uint64(i))
				if !p.Contains(id) {
					p.Admit(id)
				}
			}
		})
	}
}

// BenchmarkWrapperHit compares the real per-hit cost through the wrapper:
// unbatched (lock per access) vs batched (lock per 32 accesses) vs the
// lock-free clock path.
func BenchmarkWrapperHit(b *testing.B) {
	cases := []struct {
		name   string
		policy string
		cfg    bpwrapper.WrapperConfig
	}{
		{"2q-unbatched", "2q", bpwrapper.WrapperConfig{}},
		{"2q-batched", "2q", bpwrapper.WrapperConfig{Batching: true}},
		{"2q-batched-prefetch", "2q", bpwrapper.WrapperConfig{Batching: true, Prefetching: true}},
		{"clock-lockfree", "clock", bpwrapper.WrapperConfig{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p, _ := bpwrapper.NewPolicy(c.policy, 1024)
			w := bpwrapper.NewWrapper(p, c.cfg)
			ids := make([]bpwrapper.PageID, 1024)
			for i := range ids {
				ids[i] = bpwrapper.NewPageID(1, uint64(i))
				p.Admit(ids[i])
			}
			s := w.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[i%1024]
				s.Hit(id, bpwrapper.BufferTag{Page: id})
			}
			b.StopTimer()
			s.Flush()
		})
	}
}

// BenchmarkPoolGet measures the full buffer-manager hit path: hash lookup,
// pin, access record, unpin.
func BenchmarkPoolGet(b *testing.B) {
	for _, batching := range []bool{false, true} {
		name := "unbatched"
		if batching {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			policy, _ := bpwrapper.NewPolicy("2q", 1024)
			pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
				Frames:  1024,
				Policy:  policy,
				Wrapper: bpwrapper.WrapperConfig{Batching: batching},
				Device:  bpwrapper.NewMemDevice(),
			})
			ids := make([]bpwrapper.PageID, 1024)
			for i := range ids {
				ids[i] = bpwrapper.NewPageID(1, uint64(i))
			}
			if err := pool.Prewarm(ids); err != nil {
				b.Fatal(err)
			}
			s := pool.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := pool.Get(s, ids[i%1024])
				if err != nil {
					b.Fatal(err)
				}
				ref.Release()
			}
			b.StopTimer()
			s.Flush()
		})
	}
}

// BenchmarkPoolConcurrent measures the real pool under concurrent load on
// this host (contention shapes depend on the host's core count; the
// simulator benches above are the calibrated reproduction).
func BenchmarkPoolConcurrent(b *testing.B) {
	for _, sys := range []bench.System{bench.System2Q, bench.SystemBatPre, bench.SystemClock} {
		b.Run(sys.Name, func(b *testing.B) {
			wl := workload.NewZipf(workload.SyntheticConfig{Pages: 2048, TxnLen: 16})
			pool, err := sys.NewPool(2048, storage.NewNullDevice(), 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.Prewarm(wl.Pages()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := txn.Run(txn.Config{
				Pool:          pool,
				Workload:      wl,
				Workers:       8,
				TxnsPerWorker: int64(b.N/8 + 1),
				Seed:          1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputTPS, "txn/s")
			b.ReportMetric(res.ContentionPerM, "contention/M")
		})
	}
}

// BenchmarkTraceReplay measures pure policy-simulation throughput, the
// inner loop of the hit-ratio studies.
func BenchmarkTraceReplay(b *testing.B) {
	wl := workload.NewZipf(workload.SyntheticConfig{Pages: 8192, TxnLen: 32})
	tr := trace.Record(wl, 4, 200, 3)
	for _, name := range []string{"lru", "clock", "2q", "lirs", "arc"} {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(tr.Len()))
			for i := 0; i < b.N; i++ {
				p, _ := bpwrapper.NewPolicy(name, 1024)
				trace.Replay(p, tr)
			}
		})
	}
}

// BenchmarkAblationDistributedLocks regenerates the Section V-A
// comparison: hash-partitioned locks vs the global lock vs BP-Wrapper.
func BenchmarkAblationDistributedLocks(b *testing.B) {
	var last []bench.DistributedRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationDistributedLocks(16, []int{16}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.ThroughputTPS, "tps_"+r.System)
		b.ReportMetric(r.ContentionPerM, "contM_"+r.System)
	}
}

// BenchmarkAblationPartitionHitRatio regenerates the history-splitting
// cost: global vs partitioned hit ratios for the order-sensitive policies.
func BenchmarkAblationPartitionHitRatio(b *testing.B) {
	var last []bench.PartitionHitRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationPartitionHitRatio([]string{"seq", "lirs"}, []int{8}, 1024, 7)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(100*r.HitRatio, fmt.Sprintf("hit%%_%s_p%d", r.Policy, r.Partitions))
	}
}

// BenchmarkAblationAdaptiveThreshold regenerates the E11 extension: the
// self-tuning batch threshold vs fixed settings.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	var last []bench.AdaptiveRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationAdaptiveThreshold(16, []int{64, 32}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.ThroughputTPS, "tps_"+r.Config)
		b.ReportMetric(r.ContentionPerM, "contM_"+r.Config)
	}
}

// BenchmarkCombine regenerates the E12 commit-path comparison envelope:
// baseline vs batched vs flat-combined at 16 processors (the full
// processor sweep and the committed baseline live in cmd/bpbench and
// results/BENCH_combine.json).
func BenchmarkCombine(b *testing.B) {
	var last []bench.CombineRow
	for i := 0; i < b.N; i++ {
		rows, err := bench.CombineExperiment([]int{16}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.ThroughputTPS, "tps_"+r.System)
	}
	for _, r := range last {
		if r.System == "pgBatFC" {
			b.ReportMetric(float64(r.HandoffSaved), "handoffs")
			b.ReportMetric(float64(r.CombinedBatches), "combined")
		}
	}
}
