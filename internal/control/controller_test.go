package control

import (
	"strings"
	"testing"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/core"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/storage"
)

func pid(n uint64) page.PageID { return page.NewPageID(1, n) }

func countKind(acts []Action, k ActionKind) int {
	n := 0
	for _, a := range acts {
		if a.Kind == k {
			n++
		}
	}
	return n
}

// drive loops the session over pages [1..loop] n times, releasing every
// ref, and flushes so the pool counters are exact before the next Step.
func drive(t *testing.T, p *buffer.Pool, s *buffer.Session, loop, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := pid(uint64(i%loop) + 1)
		ref, err := p.Get(s, id)
		if err != nil {
			t.Fatalf("Get(%v): %v", id, err)
		}
		ref.Release()
	}
	s.Flush()
}

// TestControllerSwapsPolicyOnLoopTrace: a 2Q pool fed a cyclic loop larger
// than the cache is the canonical wrong-policy setup — LIRS pins a stable
// LIR set while LRU-family stacks thrash. The controller's shadow scorer
// must detect it from the sampled stream and hot-swap the pool to lirs,
// then hold there without flapping.
func TestControllerSwapsPolicyOnLoopTrace(t *testing.T) {
	p := buffer.New(buffer.Config{
		Frames:        64,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewTwoQ(c) },
		Device:        storage.NewMemDevice(),
	})
	defer p.Close()
	c := New(Config{
		Pool:       p,
		SampleRate: 1, // shadow every access: fully deterministic
		RingSize:   1 << 14,
		Candidates: []string{"2q", "lirs"},
		MinWindow:  256,
	})
	defer c.Stop()

	s := p.NewSession()
	swapped := false
	for round := 0; round < 20 && !swapped; round++ {
		drive(t, p, s, 128, 1000)
		acts := c.Step()
		swapped = countKind(acts, ActSwapPolicy) > 0
	}
	if !swapped {
		t.Fatalf("controller never swapped policy; scores: %v", c.Scores())
	}
	st := p.Stats()
	if got := st.PerShard[0].Policy; got != "lirs" {
		t.Fatalf("pool policy %q after swap, want lirs", got)
	}
	if la := c.LastAction(); la.Kind != ActSwapPolicy || !strings.Contains(la.Detail, "2q->lirs") {
		t.Fatalf("LastAction = %+v, want swap-policy 2q->lirs", la)
	}

	// Stability: lirs is now both incumbent and best; further steps on the
	// same trace must not swap again.
	for round := 0; round < 8; round++ {
		drive(t, p, s, 128, 1000)
		if acts := c.Step(); countKind(acts, ActSwapPolicy) > 0 {
			t.Fatalf("policy flapped on round %d: %v", round, acts)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after hot-swap: %v", err)
	}
}

// TestControllerReshardsDownOnFragmentationGap: a 4-shard pool whose hash
// happens to overload one shard (its loop share exceeds its per-shard
// capacity) thrashes there, while the unsharded ghost simulation fits the
// whole loop. The ghost-minus-actual gap with quiet locks must trigger a
// reshard down.
func TestControllerReshardsDownOnFragmentationGap(t *testing.T) {
	p := buffer.New(buffer.Config{
		Frames:        256, // 64 per shard at 4 shards
		Shards:        4,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Device:        storage.NewMemDevice(),
	})
	defer p.Close()

	// Build an adversarial working set: ~90 pages routed to shard 0 (so
	// its 64-frame LRU loops hopelessly) plus 150 spread over the rest —
	// 240 total, comfortably inside the unsharded 256-frame budget.
	var hot, rest []page.PageID
	for n := uint64(1); len(hot) < 90 || len(rest) < 150; n++ {
		id := pid(n)
		if p.ShardOf(id) == 0 {
			if len(hot) < 90 {
				hot = append(hot, id)
			}
		} else if len(rest) < 150 {
			rest = append(rest, id)
		}
	}
	workset := append(append([]page.PageID(nil), hot...), rest...)

	c := New(Config{
		Pool:       p,
		SampleRate: 4,
		RingSize:   1 << 14,
		Candidates: []string{"lru"}, // incumbent only: isolate the reshard rule
		MinWindow:  256,
	})
	defer c.Stop()

	s := p.NewSession()
	reshards := 0
	for round := 0; round < 12 && reshards == 0; round++ {
		for pass := 0; pass < 2; pass++ {
			for _, id := range workset {
				ref, err := p.Get(s, id)
				if err != nil {
					t.Fatalf("Get(%v): %v", id, err)
				}
				ref.Release()
			}
		}
		s.Flush()
		reshards += countKind(c.Step(), ActReshardDown)
	}
	if reshards == 0 {
		t.Fatalf("controller never resharded down; shards=%d scores=%v", p.Shards(), c.Scores())
	}
	if got := p.Shards(); got != 2 {
		t.Fatalf("Shards()=%d after reshard-down, want 2", got)
	}
	if la := c.LastAction(); la.Kind != ActReshardDown {
		t.Fatalf("LastAction=%+v, want reshard-down", la)
	}

	// Cooldown: the very next steps must not reshard again even though the
	// gap may persist while the 2-shard topology warms.
	for round := 0; round < 3; round++ {
		drive(t, p, s, 64, 600)
		for _, a := range c.Step() {
			if a.Kind == ActReshardDown || a.Kind == ActReshardUp {
				t.Fatalf("resharded during cooldown: %+v", a)
			}
		}
	}
}

// TestControllerThresholdCutAndRestore: a window dominated by forced
// (queue-full, blocking) commits must cut the batch threshold by a
// quarter; clean windows must walk it back and eventually restore the
// configured value.
func TestControllerThresholdCutAndRestore(t *testing.T) {
	p := buffer.New(buffer.Config{
		Frames:        32,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Wrapper:       core.Config{Batching: true, QueueSize: 4, BatchThreshold: 4},
		Device:        storage.NewMemDevice(),
	})
	defer p.Close()
	c := New(Config{
		Pool:       p,
		Candidates: []string{"lru"},
		MinWindow:  8,
		MaxShards:  1, // the blocked window spikes lock wait; pin the topology
	})
	defer c.Stop()

	// Flush on a non-empty queue is itself a forced (blocking) commit, so
	// every "clean" window below drives an exact multiple of the current
	// threshold: the queue is empty when drive flushes.
	s := p.NewSession()
	drive(t, p, s, 16, 64) // make pages resident and take the baseline step
	c.Step()

	// Hold the shard's policy lock so the session's hit queue fills to
	// QueueSize and the overflow commit is forced to block.
	w := p.Wrapper()
	held := make(chan struct{})
	release := make(chan struct{})
	go w.Locked(func(replacer.Policy) { close(held); <-release })
	<-held
	blocked := make(chan struct{})
	go func() {
		drive(t, p, s, 4, 8) // hits only; the 5th enqueue forces a blocking commit
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("driver never blocked on a forced commit — no contention generated")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-blocked
	s.Flush()

	acts := c.Step()
	if countKind(acts, ActThresholdCut) != 1 {
		t.Fatalf("forced-heavy window did not cut the threshold: %v (wrapper stats %+v)", acts, p.WrapperStats())
	}
	if got := w.BatchThreshold(); got != 3 {
		t.Fatalf("threshold %d after cut, want 3 (= 4*3/4)", got)
	}

	// A clean window restores the configured threshold (3 + max(1, 4/8)
	// reaches the base, clearing the override). 63 accesses = 21 exact
	// batches of the cut threshold 3, so the flush is a no-op.
	drive(t, p, s, 16, 63)
	acts = c.Step()
	if countKind(acts, ActThresholdUp) != 1 {
		t.Fatalf("clean window did not raise the threshold: %v", acts)
	}
	if got := w.BatchThreshold(); got != 4 {
		t.Fatalf("threshold %d after restore, want configured 4", got)
	}
}

// TestControllerWriterSteering: a quarantine deeper than half its cap must
// switch the background writer to fast mode (quarter interval, quadruple
// burst); a drained quarantine must restore the configured rate.
func TestControllerWriterSteering(t *testing.T) {
	mem := storage.NewMemDevice()
	dev := storage.NewFaultDevice(mem, storage.FaultConfig{})
	p := buffer.New(buffer.Config{
		Frames:        8,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Device:        dev,
		QuarantineCap: 8,
		Health:        buffer.HealthConfig{Disable: true},
	})
	defer p.Close()
	// A deliberately slow writer so it cannot drain the quarantine behind
	// the test's back.
	w := p.StartBackgroundWriter(buffer.BackgroundWriterConfig{
		Interval: time.Hour, MaxPagesPerRound: 2,
	})
	defer w.Stop()
	c := New(Config{Pool: p, Writer: w, Candidates: []string{"lru"}})
	defer c.Stop()

	s := p.NewSession()
	// Park 5 dirty pages (> cap/2 = 4) in the quarantine: write them, then
	// evict with the device failing.
	for i := uint64(1); i <= 5; i++ {
		ref, err := p.GetWrite(s, pid(i))
		if err != nil {
			t.Fatal(err)
		}
		ref.MarkDirty()
		ref.Release()
	}
	dev.FailNextWrites(1 << 20)
	for i := uint64(10); i <= 17; i++ {
		ref, err := p.Get(s, pid(i))
		if err != nil {
			t.Fatalf("evicting read %d: %v", i, err)
		}
		ref.Release()
	}
	if q := p.QuarantineLen(); q <= 4 {
		t.Fatalf("setup: quarantine %d, need > 4", q)
	}

	acts := c.Step()
	if countKind(acts, ActWriterFast) != 1 {
		t.Fatalf("deep quarantine did not speed the writer: %v", acts)
	}
	iv, burst := w.Rate()
	if iv != time.Hour/4 || burst != 8 {
		t.Fatalf("fast rate = (%v, %d), want (%v, 8)", iv, burst, time.Hour/4)
	}
	// Already fast: no repeated action.
	if acts := c.Step(); countKind(acts, ActWriterFast) != 0 {
		t.Fatalf("writer-fast re-issued while already fast: %v", acts)
	}

	// Heal the device and drain; the controller must relax the writer.
	dev.FailNextWrites(0)
	if _, err := p.FlushDirty(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if q := p.QuarantineLen(); q != 0 {
		t.Fatalf("quarantine %d after heal+flush, want 0", q)
	}
	acts = c.Step()
	if countKind(acts, ActWriterRelax) != 1 {
		t.Fatalf("drained quarantine did not relax the writer: %v", acts)
	}
	iv, burst = w.Rate()
	if iv != time.Hour || burst != 2 {
		t.Fatalf("relaxed rate = (%v, %d), want configured (%v, 2)", iv, burst, time.Hour)
	}
}

// TestSkewSuppression: the skew measure that gates reshard-up — a window
// where one shard absorbs most of the traffic must read far above 1.0, and
// a balanced window must read ~1.0.
func TestSkewSuppression(t *testing.T) {
	mk := func(deltas []int64) buffer.Stats {
		st := buffer.Stats{PerShard: make([]buffer.ShardStats, len(deltas))}
		for i, d := range deltas {
			st.PerShard[i].Hits = d
		}
		return st
	}
	c := &Controller{last: mk([]int64{0, 0, 0, 0})}
	if got := c.skew(mk([]int64{100, 100, 100, 100})); got != 1.0 {
		t.Fatalf("balanced skew = %v, want 1.0", got)
	}
	if got := c.skew(mk([]int64{970, 10, 10, 10})); got < 3.5 {
		t.Fatalf("hot-shard skew = %v, want >> SkewLimit", got)
	}
	c = &Controller{last: mk([]int64{0})}
	if got := c.skew(mk([]int64{1000})); got != 1.0 {
		t.Fatalf("single-shard skew = %v, want 1.0", got)
	}
}

// TestControllerObsExposition: bpw_control_* metrics render with the step
// counter, zero-filled per-kind action counters, per-candidate ghost
// scores, and the last action as an info gauge.
func TestControllerObsExposition(t *testing.T) {
	p := buffer.New(buffer.Config{
		Frames:        64,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewTwoQ(c) },
		Device:        storage.NewMemDevice(),
	})
	defer p.Close()
	c := New(Config{
		Pool:       p,
		SampleRate: 1,
		RingSize:   1 << 14,
		Candidates: []string{"2q", "lirs"},
		MinWindow:  256,
	})
	defer c.Stop()
	reg := obs.NewRegistry()
	c.RegisterObs(reg)

	s := p.NewSession()
	for round := 0; round < 20; round++ {
		drive(t, p, s, 128, 1000)
		if acts := c.Step(); countKind(acts, ActSwapPolicy) > 0 {
			break
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"bpw_control_steps_total",
		`bpw_control_actions_total{kind="swap-policy"}`,
		`bpw_control_actions_total{kind="reshard-down"}`,
		`bpw_control_policy_score{policy="2q"}`,
		`bpw_control_policy_score{policy="lirs"}`,
		"bpw_control_batch_threshold",
		`bpw_control_last_action{kind="swap-policy"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestControllerStartStop: the ticker goroutine runs Steps and Stop is
// idempotent (including on a never-started controller).
func TestControllerStartStop(t *testing.T) {
	p := buffer.New(buffer.Config{
		Frames:        8,
		PolicyFactory: func(c int) replacer.Policy { return replacer.NewLRU(c) },
		Device:        storage.NewMemDevice(),
	})
	defer p.Close()
	c := New(Config{Pool: p, Interval: time.Millisecond, Candidates: []string{"lru"}})
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.Steps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Steps() == 0 {
		t.Fatal("started controller never stepped")
	}
	c.Stop()
	c.Stop() // idempotent

	c2 := New(Config{Pool: p, Candidates: []string{"lru"}})
	c2.Stop() // never started: must not hang
}
