package bench

import (
	"fmt"
	"io"
	"time"

	"bpwrapper/internal/storage"
	"bpwrapper/internal/txn"
)

// The faults experiment measures how much of BP-Wrapper's batching benefit
// survives a degraded storage device. The paper evaluates contention on
// healthy hardware; related work on contention under adverse conditions
// (lock-holding times inflated by slow I/O) predicts that batching matters
// *more* when misses stall longer, because the replacement-policy lock is
// held across fewer, larger critical sections. Each workload runs on an
// undersized buffer (so the device is actually exercised) with the batched
// and unbatched wrappers, against a healthy device and against the same
// device wrapped in deterministic fault injection + checksums + retries.

// FaultRow is one measured (workload, system, device-condition) point.
type FaultRow struct {
	Workload string
	System   string
	Faulty   bool

	ThroughputTPS float64
	HitRatio      float64

	// Fault-path observability, from Pool.Stats after the run.
	Retries           int64
	ReadErrors        int64
	WriteErrors       int64
	CorruptDetected   int64
	Quarantined       int
	WriteBackFailures int64
}

// FaultProfile is the injected degradation used by the faulty half of the
// experiment. The rates are chosen so that the retry layer (8 attempts)
// heals essentially every fault: the degradation measured is pure overhead
// — retry sleeps, latency spikes, redundant write-backs — not failed
// transactions.
var FaultProfile = storage.FaultConfig{
	ReadFailProb:  0.02,
	WriteFailProb: 0.02,
	CorruptProb:   0.005,
	SpikeProb:     0.01,
	SpikeLatency:  200 * time.Microsecond,
}

// FaultTolerance measures throughput and hit-ratio degradation under
// injected storage faults for the batched vs unbatched wrapper. It always
// runs in real mode (fault latency is wall-clock); the buffer is sized to
// 1/8 of each workload's data so misses reach the device.
func FaultTolerance(procs int, o Options) ([]FaultRow, error) {
	o = o.withDefaults()
	systems := []System{System2Q, SystemBat}
	var rows []FaultRow
	for _, wl := range o.Workloads {
		frames := wl.DataPages() / 8
		if frames < 64 {
			frames = 64
		}
		for _, sys := range systems {
			for _, faulty := range []bool{false, true} {
				var dev storage.Device = storage.NewMemDevice()
				if faulty {
					profile := FaultProfile
					profile.Seed = o.Seed
					dev = storage.NewFaultDevice(dev, profile)
				}
				dev = storage.NewRetryDevice(storage.NewChecksumDevice(dev), storage.RetryConfig{
					MaxAttempts: 8,
					BaseBackoff: 20 * time.Microsecond,
					MaxBackoff:  time.Millisecond,
					Seed:        o.Seed,
				})
				pool, err := sys.NewPool(frames, dev, 0, 0)
				if err != nil {
					return nil, err
				}
				cfg := txn.Config{
					Pool:          pool,
					Workload:      wl,
					Workers:       o.WorkersPerProc * procs,
					Procs:         procs,
					Seed:          o.Seed,
					TouchBytes:    true,
					Duration:      o.Duration,
					TxnsPerWorker: o.TxnsPerWorker,
				}
				if o.TxnsPerWorker > 0 {
					cfg.Duration = 0
				}
				res, err := txn.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("faults %s/%s faulty=%v: %w", wl.Name(), sys.Name, faulty, err)
				}
				st := pool.Stats()
				rows = append(rows, FaultRow{
					Workload:          wl.Name(),
					System:            sys.Name,
					Faulty:            faulty,
					ThroughputTPS:     res.ThroughputTPS,
					HitRatio:          res.HitRatio,
					Retries:           st.Device.Retries,
					ReadErrors:        st.Device.ReadErrors,
					WriteErrors:       st.Device.WriteErrors,
					CorruptDetected:   st.Device.CorruptPages,
					Quarantined:       st.Quarantined,
					WriteBackFailures: st.WriteBackFailures,
				})
			}
		}
	}
	return rows, nil
}

// PrintFaults renders the experiment: per workload, the healthy and faulty
// throughput of each system and the retained fraction, plus the fault-path
// counters observed on the faulty run.
func PrintFaults(w io.Writer, rows []FaultRow) {
	fmt.Fprintln(w, "Fault tolerance — throughput under a degraded device (batched vs unbatched)")
	type pair struct{ healthy, faulty *FaultRow }
	byKey := map[string]*pair{}
	var order []string
	for i := range rows {
		r := &rows[i]
		k := r.Workload + "/" + r.System
		p, ok := byKey[k]
		if !ok {
			p = &pair{}
			byKey[k] = p
			order = append(order, k)
		}
		if r.Faulty {
			p.faulty = r
		} else {
			p.healthy = r
		}
	}
	fmt.Fprintf(w, "%-22s %12s %12s %9s %9s %8s %8s %8s %6s\n",
		"workload/system", "healthy tps", "faulty tps", "retained", "hit", "retries", "errors", "corrupt", "wbfail")
	for _, k := range order {
		p := byKey[k]
		if p.healthy == nil || p.faulty == nil {
			continue
		}
		retained := 0.0
		if p.healthy.ThroughputTPS > 0 {
			retained = p.faulty.ThroughputTPS / p.healthy.ThroughputTPS
		}
		fmt.Fprintf(w, "%-22s %12.0f %12.0f %8.1f%% %8.1f%% %8d %8d %8d %6d\n",
			k, p.healthy.ThroughputTPS, p.faulty.ThroughputTPS, retained*100,
			p.faulty.HitRatio*100, p.faulty.Retries,
			p.faulty.ReadErrors+p.faulty.WriteErrors, p.faulty.CorruptDetected,
			p.faulty.WriteBackFailures)
	}
}

// CSVFaults writes the rows as CSV.
func CSVFaults(w io.Writer, rows []FaultRow) error {
	header := []string{"workload", "system", "faulty", "tps", "hit_ratio",
		"retries", "read_errors", "write_errors", "corrupt_pages", "quarantined", "writeback_failures"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.System, fmt.Sprintf("%v", r.Faulty),
			f(r.ThroughputTPS), f(r.HitRatio), d(r.Retries), d(r.ReadErrors),
			d(r.WriteErrors), d(r.CorruptDetected), d(int64(r.Quarantined)), d(r.WriteBackFailures)}
	})
}
