package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bpwrapper/internal/core"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/obs"
	"bpwrapper/internal/page"
	"bpwrapper/internal/replacer"
	"bpwrapper/internal/reqtrace"
	"bpwrapper/internal/sched"
	"bpwrapper/internal/storage"
)

// quarCtx is the trace context of the request that parked a quarantine
// entry: the trace ID and the park timestamp, so the eventual write-back
// can be attributed with its full park-to-durable latency.
type quarCtx struct {
	trace uint64
	at    int64
}

// shard is one hash partition of the pool: a self-contained buffer manager
// owning its slice of the frames, its own page table, free list, dirty
// quarantine, write-back stripes, and — crucially — its own core.Wrapper
// around its own replacement-policy instance. The policy lock, batching
// queues, and flat-combining slots are therefore per shard: sharding the
// pool multiplies the paper's single hot spot into Shards independent ones,
// at the cost of splitting the replacement algorithm's access history
// (Section V-A), which the E14 experiment quantifies.
//
// A shard never sees a page another shard owns: Pool routes every PageID to
// exactly one shard, so all the single-pool invariants from PR 1 (lossless
// dirty eviction, per-page write-back ordering, quarantine capping) hold
// per shard unchanged. With Shards: 1 the single shard IS the old
// monolithic pool, bit for bit.
//
// Since the lock-free hit-path rewrite (DESIGN.md §12), a resident-page
// read acquires no mutex at all: the table lookup is a seqlock-validated
// probe of open-addressed bucket slots, and the pin is one CAS on the
// frame's packed state word. The bucket mutex is writer-only (miss
// install, eviction, invalidation), and the per-frame wmu is taken only
// by GetWrite.
type shard struct {
	frames  []Frame
	buckets []bucket
	mask    uint64
	wrapper *core.Wrapper
	device  storage.Device

	// set points back at the topology this shard belongs to; the miss
	// path follows set.prev during a reshard to steal still-resident
	// pages from the draining topology (reshard.go).
	set *shardSet

	// sealed is raised by Reshard just before the new topology is
	// published: a sealed shard refuses new loads with errResharded
	// (resident hits keep serving) so its population can only shrink.
	sealed atomic.Bool

	// migratedOut counts pages carried out of this shard by stealPage
	// during a reshard.
	migratedOut atomic.Int64

	// lockedHitPath forces every lookup through the bucket mutex (the
	// pre-rewrite behavior), for A/B benchmarking (E17) and the torture
	// differential that proves the optimistic path oracle-identical.
	lockedHitPath bool

	freeMu   sync.Mutex
	freeList []*Frame

	// quarantine parks copies of dirty pages from the moment their dirty
	// bit is cleared until their write-back is confirmed durable: eviction
	// parks before the frame leaves the page table, and flush paths park
	// before clearing the dirty bit of a still-resident frame. Entries
	// linger when the write fails, so an acknowledged write is never
	// dropped; loads adopt a quarantined copy instead of reading a stale
	// version from the device (which also closes the window where a
	// concurrent miss could re-read a page whose write-back is still in
	// flight).
	quarMu     sync.Mutex
	quarantine map[page.PageID]*page.Page
	quarCap    int

	// quarTrace remembers, per parked page, which traced request did the
	// parking (DESIGN.md §15): when the background writer or a flush sweep
	// later makes the copy durable, the park-to-durable interval is emitted
	// as a cross-thread span on that request's trace. Best-effort — entries
	// exist only for traced parkers and follow the quarantine entry's
	// lifecycle (adopted, superseded, and purged entries drop theirs).
	// Guarded by quarMu.
	quarTrace map[page.PageID]quarCtx

	// wbLocks serializes device write-backs per page (striped by page id,
	// held across the WritePage call in writeQuarantined). Without it, a
	// slow in-flight write of an old copy could land *after* a newer copy
	// of the same page was written and resolved, silently reverting the
	// device.
	wbLocks [wbStripes]sync.Mutex

	// tracer is the pool-wide request tracer (via the wrapper config; nil
	// when tracing is disabled). Shard code uses it only for cross-thread
	// emits — request-scoped spans go through the session's Active.
	tracer *reqtrace.Tracer

	writeBackFailures atomic.Int64

	// healthState drives graceful degradation: breaker/quarantine-driven
	// health evaluation and miss admission control (see health.go).
	healthState

	counters metrics.AccessCounters

	// hp counts hit-path outcomes: fast (zero-lock) hits, torn-read
	// retries, locked fallbacks, and every bucket/frame mutex acquisition
	// on the access paths — the numbers E17 and the bpw_hitpath_* series
	// are built from.
	hp hitpathCounters

	// events is the shard's flight recorder (nil when disabled). The same
	// ring the shard's wrapper traces its commit protocol into also receives
	// the buffer-layer events — eviction, quarantine park/flush — so a dump
	// shows one interleaved history of the shard's recent protocol activity.
	events *obs.Recorder
}

// hitpathCounters tracks how resident-page lookups were served. fast is
// folded in from per-session staging (see Session.stageHit); the slow-path
// counters are bumped directly — they are rare by construction, so their
// cacheline traffic is irrelevant.
type hitpathCounters struct {
	fast        atomic.Int64 // hits served with zero mutex acquisitions
	retries     atomic.Int64 // optimistic probes retried after a torn read
	fallbacks   atomic.Int64 // lookups that gave up and took the bucket mutex
	bucketLocks atomic.Int64 // bucket mutex acquisitions (all access paths)
	frameLocks  atomic.Int64 // frame wmu acquisitions (writer paths)
}

func (hp *hitpathCounters) reset() {
	hp.fast.Store(0)
	hp.retries.Store(0)
	hp.fallbacks.Store(0)
	hp.bucketLocks.Store(0)
	hp.frameLocks.Store(0)
}

// wbStripes is the number of per-page write-back serialization stripes.
const wbStripes = 64

// bucketSlots is the open-addressed capacity of one bucket. The table is
// sized at four buckets per frame, so the expected occupancy is 0.25
// entries per bucket and the overflow map is essentially never used.
const bucketSlots = 8

// maxOptimisticRetries bounds how often a torn optimistic probe is retried
// before the lookup falls back to the bucket mutex.
const maxOptimisticRetries = 4

// bucket is one hash-table partition, readable without locks: a seqlock
// (the same even/odd protocol as the obs recorder) over a small
// open-addressed array of page-id → frame slots. Readers snapshot seq,
// probe the slots with atomic loads, and re-validate seq; an odd or
// changed seq means a writer was mutating and the probe result is torn.
// Writers — miss install, eviction, invalidation — mutate only under mu,
// bumping seq to odd before the first store and back to even after the
// last, so mu is writer-only and never appears on the hit path.
//
// The rare overflow beyond bucketSlots spills into a map that readers
// cannot probe lock-free; overflowN is read inside the seq window so an
// optimistic probe knows to fall back to the mutex rather than report a
// (false) definitive miss. The struct is padded to a multiple of the
// cache-line size so writers on one bucket never invalidate a neighbor
// bucket's slots under a reader.
type bucket struct {
	seq       atomic.Uint64
	ids       [bucketSlots]atomic.Uint64
	frames    [bucketSlots]atomic.Pointer[Frame]
	overflowN atomic.Int32
	_         [4]byte

	mu       sync.Mutex
	overflow map[page.PageID]*Frame // lazily allocated; guarded by mu
	loads    map[page.PageID]*loadOp
	_        [24]byte // pad to 192 bytes: 3 cache lines, no straddling neighbor
}

// lookupOptimistic probes the bucket without any lock. stable is false
// when the probe raced a writer (torn seq) or the page might live in the
// overflow map — in both cases the caller must retry or fall back to the
// mutex. With stable true, f is the frame caching id, or nil for a
// definitive miss.
func (b *bucket) lookupOptimistic(id page.PageID) (f *Frame, stable bool) {
	s1 := b.seq.Load()
	if s1&1 != 0 {
		return nil, false
	}
	for i := 0; i < bucketSlots; i++ {
		if page.PageID(b.ids[i].Load()) == id {
			f = b.frames[i].Load()
			break
		}
	}
	ov := b.overflowN.Load()
	if b.seq.Load() != s1 {
		return nil, false
	}
	if f == nil && ov != 0 {
		return nil, false
	}
	return f, true
}

// lookupLocked probes the bucket under mu (or at quiescence).
func (b *bucket) lookupLocked(id page.PageID) *Frame {
	for i := 0; i < bucketSlots; i++ {
		if page.PageID(b.ids[i].Load()) == id {
			return b.frames[i].Load()
		}
	}
	if b.overflow != nil {
		return b.overflow[id]
	}
	return nil
}

// insertLocked maps id → f. Caller holds mu; the seq bump makes any
// overlapping optimistic probe retry.
func (b *bucket) insertLocked(id page.PageID, f *Frame) {
	b.seq.Add(1)
	sched.Yield(sched.BufBucketWrite)
	defer b.seq.Add(1)
	for i := 0; i < bucketSlots; i++ {
		if b.ids[i].Load() == 0 {
			b.frames[i].Store(f)
			b.ids[i].Store(uint64(id))
			return
		}
	}
	if b.overflow == nil {
		b.overflow = make(map[page.PageID]*Frame)
	}
	b.overflow[id] = f
	b.overflowN.Add(1)
}

// removeLocked unmaps id. Caller holds mu.
func (b *bucket) removeLocked(id page.PageID) {
	b.seq.Add(1)
	sched.Yield(sched.BufBucketWrite)
	defer b.seq.Add(1)
	for i := 0; i < bucketSlots; i++ {
		if page.PageID(b.ids[i].Load()) == id {
			b.ids[i].Store(0)
			b.frames[i].Store(nil)
			return
		}
	}
	if b.overflow != nil {
		if _, ok := b.overflow[id]; ok {
			delete(b.overflow, id)
			b.overflowN.Add(-1)
		}
	}
}

// forEachLocked visits every mapping. Caller holds mu (or is quiescent).
func (b *bucket) forEachLocked(fn func(page.PageID, *Frame)) {
	for i := 0; i < bucketSlots; i++ {
		if id := page.PageID(b.ids[i].Load()); id.Valid() {
			fn(id, b.frames[i].Load())
		}
	}
	for id, f := range b.overflow {
		fn(id, f)
	}
}

// loadOp coordinates concurrent requests for a page that is being read
// from the device: followers wait on done and then retry their lookup.
type loadOp struct {
	done chan struct{}
	err  error
}

// init sizes and wires one shard for frames page slots.
func (sh *shard) init(frames int, pol replacer.Policy, wcfg core.Config, device storage.Device, quarCap int, lockedHitPath bool) {
	if pol.Cap() < frames {
		panic(fmt.Sprintf("buffer: policy capacity %d below shard frame count %d", pol.Cap(), frames))
	}
	nb := 1
	for nb < 4*frames {
		nb <<= 1
	}
	if nb > 1<<16 {
		nb = 1 << 16
	}
	sh.frames = make([]Frame, frames)
	sh.buckets = make([]bucket, nb)
	sh.mask = uint64(nb - 1)
	sh.device = device
	sh.lockedHitPath = lockedHitPath
	sh.quarantine = make(map[page.PageID]*page.Page)
	sh.quarTrace = make(map[page.PageID]quarCtx)
	sh.quarCap = quarCap
	sh.tracer = wcfg.Tracer
	sh.freeList = make([]*Frame, frames)
	for i := range sh.frames {
		sh.frames[i].initFree()
		sh.freeList[i] = &sh.frames[i]
	}
	wcfg.Validate = sh.validTag
	sh.events = wcfg.Events
	sh.wrapper = core.New(pol, wcfg)
}

// bucketFor hashes a page id to its table partition within the shard.
func (sh *shard) bucketFor(id page.PageID) *bucket {
	return &sh.buckets[mix64(uint64(id))&sh.mask]
}

// lockBucket takes a bucket's writer mutex, counting the acquisition so
// the E17 "zero locks on the hit path" claim is measurable, not asserted.
func (sh *shard) lockBucket(b *bucket) {
	b.mu.Lock()
	sh.hp.bucketLocks.Add(1)
}

// wbLock returns the write-back serialization stripe for a page id.
func (sh *shard) wbLock(id page.PageID) *sync.Mutex {
	return &sh.wbLocks[mix64(uint64(id))%wbStripes]
}

// validTag is installed as the shard wrapper's commit-time validator: a
// queued access is applied to the policy only if the page is still cached
// by the same frame generation it was recorded against (Section IV-B).
// Like the hit path it reads lock-free — an optimistic bucket probe plus a
// seq-validated tag snapshot — falling back to the bucket mutex only on a
// torn read, so commits do not reintroduce the lookup locks the hit path
// shed.
func (sh *shard) validTag(e core.Entry) bool {
	b := sh.bucketFor(e.ID)
	f := sh.lookupAny(b, e.ID)
	if f == nil {
		return false
	}
	t, ok := f.TagSnapshot()
	return ok && t.Matches(e.Tag)
}

// lookupAny resolves id to its frame, optimistically when allowed and
// stable, under the bucket mutex otherwise. Used by the non-hit paths
// (commit validation, eviction, invalidation) that need a plain answer
// without the hit path's retry accounting.
func (sh *shard) lookupAny(b *bucket, id page.PageID) *Frame {
	if !sh.lockedHitPath {
		if f, stable := b.lookupOptimistic(id); stable {
			return f
		}
	}
	sh.lockBucket(b)
	f := b.lookupLocked(id)
	b.mu.Unlock()
	return f
}

// hitLookup is the Get-path table probe: optimistic with bounded retries,
// then the mutex. fast reports that the answer came from a zero-lock
// stable probe.
func (sh *shard) hitLookup(b *bucket, id page.PageID) (f *Frame, fast bool) {
	if !sh.lockedHitPath {
		for attempt := 0; ; attempt++ {
			f, stable := b.lookupOptimistic(id)
			if stable {
				return f, true
			}
			if attempt >= maxOptimisticRetries {
				break
			}
			sh.hp.retries.Add(1)
			sched.Yield(sched.BufHitProbe)
		}
		sh.hp.fallbacks.Add(1)
	}
	sh.lockBucket(b)
	f = b.lookupLocked(id)
	b.mu.Unlock()
	return f, false
}

// get serves one page access for session ps (whose core sub-session for
// this shard is ps.subs[idx]). On a resident read it performs no mutex
// acquisition and writes no shared cacheline except the pin CAS: seqlock
// probe → tryPin → done, with the pin CAS itself revalidating the tag
// generation (DESIGN.md §12). Writable accesses serialize on the frame's
// wmu and drain readers before returning.
func (sh *shard) get(ps *Session, idx int, id page.PageID, writable bool) (*PageRef, error) {
	sub := ps.subs[idx]
	b := sh.bucketFor(id)
	// Span stamping is gated on the request being head-sampled (or wire-
	// adopted): an untraced hit pays exactly this one branch — no clock
	// read, no scratch write — which is what keeps tracing inside the ≤3%
	// hit-path budget (DESIGN.md §15). Slow-phase arming happens on the
	// miss path (load), never here.
	tracing := ps.trace.Sampled()
	var t0 int64
	spins := 0
	for {
		if tracing {
			t0 = ps.trace.Now()
		}
		f, fast := sh.hitLookup(b, id)
		if tracing {
			var fastArg uint64
			if fast {
				fastArg = 1
			}
			ps.trace.Span(reqtrace.PhaseBucketProbe, idx, t0, ps.trace.Now()-t0, fastArg, uint64(id))
		}
		if f == nil {
			ref, retry, err := sh.load(ps, idx, id, writable)
			if err != nil {
				return nil, err
			}
			if !retry {
				return ref, nil
			}
			continue
		}
		if writable {
			// Writers queue on wmu WITHOUT holding a pin: a pinned waiter
			// would deadlock the current holder's reader drain. Only after
			// the mutex is ours do we pin and re-validate that the frame
			// still caches id.
			if tracing {
				t0 = ps.trace.Now()
			}
			f.wmu.Lock()
			sh.hp.frameLocks.Add(1)
			tag, st := f.tryPin(id)
			if st != pinOK {
				f.wmu.Unlock()
				if st == pinBusy {
					backoff(spins)
					spins++
				}
				continue
			}
			f.lockContent()
			if tracing {
				ps.trace.Span(reqtrace.PhasePin, idx, t0, ps.trace.Now()-t0, 1, uint64(id))
			}
			ps.stageHit(idx, false)
			sub.Hit(id, tag)
			return newPageRef(f, id, tag, true), nil
		}
		sched.Yield(sched.BufHitPin)
		if tracing {
			t0 = ps.trace.Now()
		}
		tag, st := f.tryPin(id)
		switch st {
		case pinOK:
			if tracing {
				ps.trace.Span(reqtrace.PhasePin, idx, t0, ps.trace.Now()-t0, 0, uint64(id))
			}
			ps.stageHit(idx, fast)
			sub.Hit(id, tag)
			return newPageRef(f, id, tag, false), nil
		case pinBusy:
			// A writer holds the frame exclusively; wait it out.
			backoff(spins)
			spins++
		case pinRecycled:
			// Frame recycled between lookup and pin; retry the lookup.
		}
	}
}

// load handles a miss: it single-flights concurrent requests for the same
// page, obtains a frame (free or evicted), reads the page, and installs the
// frame in the table. retry is true when the caller lost the race and
// should restart its lookup.
func (sh *shard) load(ps *Session, idx int, id page.PageID, writable bool) (ref *PageRef, retry bool, err error) {
	sub := ps.subs[idx]
	b := sh.bucketFor(id)
	sh.lockBucket(b)
	if b.lookupLocked(id) != nil {
		// Installed while we were acquiring the lock.
		b.mu.Unlock()
		return nil, true, nil
	}
	if sh.sealed.Load() {
		// The topology swapped between the caller's routing decision and
		// this load: refuse under the bucket mutex — after the seal, no
		// NEW loadOp can ever register here, which is what lets a reshard's
		// stealPage treat a load-free, frame-free bucket as definitively
		// not holding the page. The caller retries against the new set.
		b.mu.Unlock()
		return nil, false, errResharded
	}
	if op, ok := b.loads[id]; ok {
		// Another backend is loading this page: wait and retry.
		b.mu.Unlock()
		<-op.done
		if op.err != nil {
			return nil, false, op.err
		}
		return nil, true, nil
	}
	if b.loads == nil {
		b.loads = make(map[page.PageID]*loadOp)
	}
	op := &loadOp{done: make(chan struct{})}
	b.loads[id] = op
	b.mu.Unlock()

	finish := func(e error) {
		op.err = e
		sh.lockBucket(b)
		delete(b.loads, id)
		b.mu.Unlock()
		close(op.done)
	}

	// Fold this session's staged hits before counting the miss, so the
	// shard counters never show a miss "ahead of" hits that actually
	// preceded it.
	ps.foldHits(idx)
	sh.counters.Miss()
	// Admission control: a degraded shard bounds in-flight misses and a
	// read-only shard sheds them all, before any frame is claimed or
	// device I/O issued. Followers waiting on the loadOp receive the same
	// ErrOverloaded, which is correct — they were asking for the same
	// uncached page.
	releaseMiss, err := sh.admitMiss(id)
	if err != nil {
		finish(err)
		return nil, false, err
	}
	defer releaseMiss()
	f, err := sh.acquireFrame(&ps.trace, sub, id)
	if err != nil {
		finish(err)
		return nil, false, err
	}
	// The frame is exclusively ours — claimed: recycling bit up, gen
	// bumped, one claim pin — so the fill below can use plain stores.
	// Source precedence, newest copy first:
	//
	//  1. During a reshard, the draining topology: stealPage carries the
	//     bytes AND the dirty bit across from the old owner shard, so an
	//     unflushed write migrates instead of being shadowed by a stale
	//     device read.
	//  2. This shard's own quarantine — a dirty page whose write-back has
	//     not been confirmed durable takes precedence over the device.
	//     Checked AFTER the steal so a copy handed over mid-steal
	//     (handOverQuarantine moving a quarantined-only page while we
	//     probed the old shard) is still found. The two sources cannot
	//     both hold the page: a page quarantined here was already
	//     admitted here, so the old topology gave it up long ago.
	//  3. The device.
	//
	// Adopting from 1 or 2 keeps the frame dirty so the page is written
	// back again later.
	adopted := false
	stolen := false
	if prev := sh.set.prev.Load(); prev != nil {
		var dirty bool
		if dirty, stolen = prev.shardFor(id).stealPage(id, &f.data); stolen {
			adopted = dirty
		}
	}
	if !stolen {
		if q := sh.quarantineTake(id); q != nil {
			f.data = *q
			adopted = true
		} else {
			// Device reads are slow phases: they lazily arm the trace, so
			// every miss that touches the device is a tail candidate even
			// when head sampling skipped it.
			t0 := ps.trace.Now()
			rerr := sh.device.ReadPage(id, &f.data)
			var errArg uint64
			if rerr != nil {
				errArg = 1
			}
			ps.trace.Slow(reqtrace.PhaseDeviceRead, idx, t0, ps.trace.Now()-t0, errArg, uint64(id))
			if rerr != nil {
				sh.abandonFrame(f)
				finish(rerr)
				return nil, false, rerr
			}
		}
	}
	f.tagPage.Store(uint64(id))
	if writable {
		// Take the writer mutex while the frame is still exclusively ours
		// and install with the wlock bit pre-set: no reader can have
		// pinned yet, so there is no drain wait — and no deadlock against
		// a competing writer that finds the frame the instant it is
		// published.
		f.wmu.Lock()
		sh.hp.frameLocks.Add(1)
	}
	tag := f.install(adopted, writable)

	sched.Yield(sched.BufLoadInstall)
	sh.lockBucket(b)
	b.insertLocked(id, f)
	b.mu.Unlock()

	// Second phase of the miss protocol: the page has a frame and a table
	// entry, so it may now become policy-resident. If a concurrent miss
	// consumed the slot MissBegin freed, Admit evicts again and the spare
	// victim's frame is recycled onto the free list.
	if victim, evicted := sub.MissAdmit(id); evicted {
		sh.recycle(&ps.trace, victim)
	}
	finish(nil)
	return newPageRef(f, id, tag, writable), false, nil
}

// recycle reclaims a surplus victim's frame onto the free list, churning
// through further candidates if the first is pinned.
func (sh *shard) recycle(a *reqtrace.Active, victim page.PageID) {
	for attempt := 0; attempt <= 2*len(sh.frames); attempt++ {
		if victim.Valid() {
			if f, ok := sh.reclaim(a, victim); ok {
				f.toFree()
				sh.freeMu.Lock()
				sh.freeList = append(sh.freeList, f)
				sh.freeMu.Unlock()
				return
			}
		}
		runtime.Gosched()
		v, ok := sh.nextVictim(victim, page.InvalidPageID)
		if !ok {
			return // nothing evictable; the shard is simply over-admitted by pins
		}
		victim = v
	}
}

// acquireFrame produces an empty, once-claimed frame for page id: from the
// free list during warm-up, otherwise by evicting the policy's victim. The
// access is recorded as a miss through the session (taking the policy lock
// and committing any batched hits, per Figure 4 of the paper); the page
// itself is admitted later by MissAdmit, once loaded.
func (sh *shard) acquireFrame(a *reqtrace.Active, sub *core.Session, id page.PageID) (*Frame, error) {
	victim, evicted := sub.MissBegin(id, page.BufferTag{})
	if !evicted {
		sh.freeMu.Lock()
		n := len(sh.freeList)
		if n == 0 {
			sh.freeMu.Unlock()
			// The policy admitted without eviction but no free frame
			// exists — possible only after Remove/invalidate churn; fall
			// back to evicting explicitly.
			return sh.reclaimLoop(a, id, page.InvalidPageID)
		}
		f := sh.freeList[n-1]
		sh.freeList = sh.freeList[:n-1]
		sh.freeMu.Unlock()
		f.claimFree()
		return f, nil
	}
	return sh.reclaimLoop(a, id, victim)
}

// reclaimLoop turns an eviction victim into a reusable frame, retrying
// through the policy when the victim is pinned or mid-load. Bounded by
// twice the shard size, after which every buffer is presumed pinned —
// or, when the dirty quarantine is saturated (so dirty victims are being
// refused rather than pinned), ErrQuarantineFull distinguishes overload
// from a genuinely over-pinned pool.
func (sh *shard) reclaimLoop(a *reqtrace.Active, id, victim page.PageID) (*Frame, error) {
	for attempt := 0; attempt <= 2*len(sh.frames); attempt++ {
		if sh.sealed.Load() {
			// A topology swap landed mid-load: stealPage is draining this
			// shard's frames (and policy entries) out from under us, so a
			// victim may never materialize here. Bounce the caller to the
			// new topology instead of reporting a phantom pin exhaustion.
			return nil, errResharded
		}
		if victim.Valid() {
			if f, ok := sh.reclaim(a, victim); ok {
				return f, nil
			}
		}
		// Victim unusable (pinned, mid-load, or none yet): let the pinning
		// goroutines run — short pins are released in microseconds, but a
		// tight retry loop can exhaust its attempts before the scheduler
		// ever lets an unpin happen — then exchange the victim for a
		// different candidate under the policy lock.
		runtime.Gosched()
		v, ok := sh.nextVictim(victim, id)
		if !ok {
			return nil, sh.reclaimFailure()
		}
		victim = v
	}
	return nil, sh.reclaimFailure()
}

// reclaimFailure picks the error for an exhausted reclaim. A shard sealed
// by a reshard is checked first — the migration's stealPage drains frames
// and policy entries concurrently, so "no victim found" on a sealed shard
// means the pages moved, not that they are pinned; the caller retries
// against the new topology. Otherwise a saturated quarantine means dirty
// evictions were refused for durability-bound reasons, not that every
// buffer is pinned.
func (sh *shard) reclaimFailure() error {
	if sh.sealed.Load() {
		return errResharded
	}
	if sh.quarantineFull() {
		return ErrQuarantineFull
	}
	return ErrNoUnpinnedBuffers
}

// nextVictim re-admits a wrongly evicted page prev (its frame turned out to
// be pinned) and returns the replacement victim the policy chose instead;
// with an invalid prev it simply asks the policy to evict one more page.
// protect is the page currently being loaded: if the exchange throws it
// out, it is immediately re-admitted so its residency survives (Admit never
// returns the page it admits, so this terminates).
func (sh *shard) nextVictim(prev, protect page.PageID) (page.PageID, bool) {
	var victim page.PageID
	var evicted bool
	sh.wrapper.Locked(func(pol replacer.Policy) {
		if prev.Valid() && !pol.Contains(prev) {
			victim, evicted = pol.Admit(prev)
			if !evicted {
				// The policy had spare capacity (two-phase misses leave a
				// slot open while a page is in flight), so the
				// re-admission displaced nothing; take a fresh victim
				// explicitly.
				victim, evicted = pol.Evict()
			}
		} else {
			// prev was re-admitted by a concurrent loader (or there is no
			// prev): take a fresh victim without admitting anything.
			victim, evicted = pol.Evict()
		}
		if evicted && protect.Valid() && victim == protect {
			victim, evicted = pol.Admit(protect)
		}
	})
	return victim, evicted
}

// reclaim tries to take exclusive ownership of the victim's frame: it
// succeeds only if the frame is unpinned, writing back dirty contents and
// removing the table entry. On success the frame is returned claimed
// (recycling, one claim pin, generation bumped) with its old tag still in
// tagPage — harmless, since the recycling bit makes every tryPin refuse it
// until install or toFree overwrites the identity.
//
// The claim itself is one CAS (tryClaim): it can only succeed against a
// state with zero pins and no writer, and the generation bump means any
// reader that probed the table before us and pins after us must fail its
// pin CAS — the lookup→pin race is settled by the state word alone, no
// frame mutex (DESIGN.md §12).
//
// Dirty victims are evicted losslessly: the page copy is parked in the
// quarantine *before* the table entry disappears, then written back. While
// the copy is quarantined a concurrent miss for the same page adopts it
// (see load) instead of re-reading a possibly stale version from the
// device. If the write-back fails the copy simply stays quarantined —
// drained later by the background writer, FlushDirty, or Close — so an
// acknowledged write is never dropped. When the quarantine is already at
// capacity the eviction is refused up front and the caller churns to
// another (ideally clean) victim.
func (sh *shard) reclaim(a *reqtrace.Active, victim page.PageID) (*Frame, bool) {
	b := sh.bucketFor(victim)
	f := sh.lookupAny(b, victim)
	if f == nil {
		// Policy said resident but the table has no entry: the page is
		// mid-load by another backend (its frame is claimed anyway).
		return nil, false
	}
	var s uint64
	for {
		s = f.state.Load()
		if s&(frameRecycling|frameWLock) != 0 || s&framePinMask != 0 {
			return nil, false
		}
		if page.PageID(f.tagPage.Load()) != victim {
			return nil, false
		}
		if s&frameDirty != 0 && sh.quarantineFull() {
			// No room to guarantee durability for another dirty page; leave
			// this frame untouched and let the caller try a different victim.
			sh.quarRefusals.Add(1)
			return nil, false
		}
		if f.tryClaim(s) {
			break
		}
		// Lost a race (a reader pinned, a writer dirtied…); re-evaluate.
	}
	needWriteback := s&frameDirty != 0
	var wb *page.Page
	if needWriteback {
		// The claim made the frame exclusively ours: the copy reads
		// stable bytes.
		c := f.data
		wb = &c
	}

	var dirtyArg uint64
	if needWriteback {
		dirtyArg = 1
	}
	sh.events.Record(obs.EvEvict, uint64(victim), dirtyArg)

	sched.Yield(sched.BufReclaimClaim)
	if needWriteback {
		// Parking a dirty victim means a device write follows inline: a
		// slow phase, so it lazily arms the trace (the request is paying
		// another page's write-back — exactly the latency a decomposition
		// must surface).
		t0 := a.Now()
		sh.quarantinePut(victim, wb, a)
		a.Slow(reqtrace.PhaseQuarantine, -1, t0, a.Now()-t0, 1, uint64(victim))
	}

	sh.lockBucket(b)
	b.removeLocked(victim)
	b.mu.Unlock()

	if needWriteback {
		sched.Yield(sched.BufQuarantinePark)
		t0 := a.Now()
		_, werr := sh.writeQuarantined(victim, wb, a.ID())
		var errArg uint64
		if werr != nil {
			errArg = 1
		}
		a.Slow(reqtrace.PhaseDeviceWrite, -1, t0, a.Now()-t0, errArg, uint64(victim))
		if werr != nil {
			// The copy stays quarantined; the page is safe and the failure
			// observable via Stats. The frame itself is still reusable.
			sh.writeBackFailures.Add(1)
		}
	}
	return f, true
}

// writeQuarantined makes the quarantined copy of id durable and resolves
// its entry. All quarantine-backed writes go through here: the per-page
// stripe lock is held across the device call so write-backs of the same
// page are serialized — an old copy's slow write finishes before a newer
// copy's write starts, and can therefore never land after (and silently
// revert) it. Under the stripe lock the entry is re-validated first: a
// copy that was adopted by a miss, superseded by a newer eviction, or
// purged by Invalidate is skipped rather than written, returning
// (false, nil). On write failure the entry stays quarantined.
//
// self is the caller's trace ID (0 for the background writer and flush
// sweeps): when the resolved entry was parked by a DIFFERENT traced
// request, its park-to-durable interval is emitted as a cross-thread span
// on the parking request's trace — "evicted by request R, made durable
// N ns later by another thread".
func (sh *shard) writeQuarantined(id page.PageID, copy *page.Page, self uint64) (wrote bool, err error) {
	l := sh.wbLock(id)
	l.Lock()
	defer l.Unlock()
	sh.quarMu.Lock()
	cur := sh.quarantine[id]
	sh.quarMu.Unlock()
	if cur != copy {
		return false, nil
	}
	if err := sh.device.WritePage(copy); err != nil {
		return false, err
	}
	tc := sh.quarantineResolve(id, copy)
	if sh.tracer != nil && tc.trace != 0 && tc.trace != self {
		sh.tracer.Emit(reqtrace.Span{
			Trace: tc.trace, Phase: reqtrace.PhaseDeviceWrite, Shard: -1,
			Flags: reqtrace.FlagCross | reqtrace.FlagTail,
			Start: tc.at, Dur: sh.tracer.Now() - tc.at, Arg2: uint64(id),
		})
	}
	sh.events.Record(obs.EvQuarantineFlush, uint64(id), 0)
	return true, nil
}

// quarantinePut parks a page copy under its id. At most one entry per page
// can exist. In steady state a page is either shard-resident or
// quarantined, never both; the one sanctioned overlap is a flush of a
// still-resident frame (flushFrame), which parks the copy *before*
// clearing the dirty bit — while that entry exists it is byte-identical
// to the frame, so an eviction in the write window stays lossless.
// a, when non-nil and traced, attributes the park so a later write-back by
// another thread can be stitched onto the parking request's trace.
func (sh *shard) quarantinePut(id page.PageID, copy *page.Page, a *reqtrace.Active) {
	tid := a.ID()
	sh.quarMu.Lock()
	sh.quarantine[id] = copy
	if tid != 0 {
		sh.quarTrace[id] = quarCtx{trace: tid, at: a.Now()}
	} else {
		delete(sh.quarTrace, id)
	}
	n := len(sh.quarantine)
	sh.quarMu.Unlock()
	sh.events.Record(obs.EvQuarantinePark, uint64(id), uint64(n))
}

// quarantineTake removes and returns the quarantined copy of id, if any.
// Used by the miss path to adopt the newest acknowledged version.
func (sh *shard) quarantineTake(id page.PageID) *page.Page {
	sh.quarMu.Lock()
	q := sh.quarantine[id]
	if q != nil {
		delete(sh.quarantine, id)
		delete(sh.quarTrace, id)
	}
	sh.quarMu.Unlock()
	return q
}

// quarantineResolve removes the entry for id if it is still the exact copy
// the caller parked; a concurrent miss may already have adopted it (and
// will write the same bytes back again later, which is merely redundant).
// It returns the parker's trace context (zero when untraced or when the
// entry was already gone) so the resolving write can be attributed.
func (sh *shard) quarantineResolve(id page.PageID, copy *page.Page) quarCtx {
	var tc quarCtx
	sh.quarMu.Lock()
	if sh.quarantine[id] == copy {
		delete(sh.quarantine, id)
		tc = sh.quarTrace[id]
		delete(sh.quarTrace, id)
	}
	sh.quarMu.Unlock()
	return tc
}

func (sh *shard) quarantineFull() bool {
	sh.quarMu.Lock()
	full := len(sh.quarantine) >= sh.quarCap
	sh.quarMu.Unlock()
	return full
}

// quarantineLen reports the number of pages currently parked in this
// shard's dirty quarantine.
func (sh *shard) quarantineLen() int {
	sh.quarMu.Lock()
	n := len(sh.quarantine)
	sh.quarMu.Unlock()
	return n
}

// drainQuarantine retries the write-back of every quarantined page,
// returning the number made durable, the number that failed again, and
// the join of per-page failures. Entries stay mapped while their write is
// in flight so a concurrent miss can still adopt them; a snapshot entry
// that was adopted or superseded before its write starts is skipped by
// writeQuarantined (counted neither written nor failed), and per-page
// serialization there guarantees a stale snapshot write can never land
// after a newer successful write of the same page.
func (sh *shard) drainQuarantine() (written, failed int, err error) {
	sh.quarMu.Lock()
	snap := make(map[page.PageID]*page.Page, len(sh.quarantine))
	for id, copy := range sh.quarantine {
		snap[id] = copy
	}
	sh.quarMu.Unlock()
	var errs []error
	for id, copy := range snap {
		wrote, werr := sh.writeQuarantined(id, copy, 0)
		if werr != nil {
			sh.writeBackFailures.Add(1)
			failed++
			errs = append(errs, fmt.Errorf("quarantined page %v: %w", id, werr))
			continue
		}
		if wrote {
			written++
		}
	}
	return written, failed, errors.Join(errs...)
}

// abandonFrame returns a claimed frame to the free list after a failed
// load. The page was never admitted to the policy (two-phase protocol), so
// no policy rollback is needed.
func (sh *shard) abandonFrame(f *Frame) {
	f.toFree()
	sh.freeMu.Lock()
	sh.freeList = append(sh.freeList, f)
	sh.freeMu.Unlock()
}

// purgeQuarantine discards any quarantined copy of id. Taking the
// write-back stripe first waits out an in-flight write of the page and
// makes later snapshot writes skip (their entry is gone), so discarded
// bytes cannot be resurrected onto the device after the purge.
func (sh *shard) purgeQuarantine(id page.PageID) {
	l := sh.wbLock(id)
	l.Lock()
	sh.quarMu.Lock()
	delete(sh.quarantine, id)
	delete(sh.quarTrace, id)
	sh.quarMu.Unlock()
	l.Unlock()
}

// invalidate drops page id from the shard (e.g. its table was truncated),
// discarding dirty contents — including any quarantined copy from an
// earlier failed write-back, which must not be drained back to the device
// later. It fails with ErrNoUnpinnedBuffers if the page is pinned.
func (sh *shard) invalidate(id page.PageID) error {
	b := sh.bucketFor(id)
	f := sh.lookupAny(b, id)
	if f == nil {
		sh.purgeQuarantine(id)
		return nil
	}
	for {
		s := f.state.Load()
		if s&frameRecycling != 0 || page.PageID(f.tagPage.Load()) != id {
			// Recycled under us: the page is already gone from the table.
			sh.purgeQuarantine(id)
			return nil
		}
		if s&(framePinMask|frameWLock) != 0 {
			return ErrNoUnpinnedBuffers
		}
		if f.tryClaim(s) {
			break
		}
	}

	sh.lockBucket(b)
	b.removeLocked(id)
	b.mu.Unlock()

	sh.purgeQuarantine(id)

	sh.wrapper.Locked(func(pol replacer.Policy) {
		pol.Remove(id)
	})
	f.toFree()
	sh.freeMu.Lock()
	sh.freeList = append(sh.freeList, f)
	sh.freeMu.Unlock()
	return nil
}

// flushFrame writes one dirty, unpinned frame back to the device in the
// same order reclaim uses: park a copy in the quarantine first, then clear
// the dirty bit, then write, and resolve the entry only once the write is
// durable. Parking before the bit clears closes the window where the
// frame looks clean while its write is still in flight — an eviction in
// that window would otherwise drop the page with no write-back and no
// quarantine entry, and a subsequent miss would re-read a stale version
// from the device.
//
// Pinning replaces the old frame mutex for copy stability: the flusher
// CASes a pin onto a zero-pin dirty frame, which excludes eviction (needs
// pins == 0) and stalls any writer's reader-drain until the copy is taken
// and the pin dropped. A frame with readers is skipped, preserving the old
// skip-if-pinned semantics. It returns (false, nil) when the frame needs
// no flush, the quarantine is at capacity (the frame stays dirty for a
// later round), or the parked copy was adopted/superseded before the
// write.
func (sh *shard) flushFrame(f *Frame) (bool, error) {
	var s uint64
	var id page.PageID
	for {
		s = f.state.Load()
		if s&(frameRecycling|frameWLock) != 0 || s&frameDirty == 0 || s&framePinMask != 0 {
			return false, nil
		}
		id = page.PageID(f.tagPage.Load())
		if !id.Valid() {
			return false, nil
		}
		if f.state.CompareAndSwap(s, s+1) {
			// The CAS doubles as validation: any recycle since the loads
			// above would have bumped the generation and failed it.
			break
		}
	}
	wb := f.data
	sh.quarMu.Lock()
	if len(sh.quarantine) >= sh.quarCap {
		// No room to guarantee durability across the write window; keep
		// the frame dirty and let a later round (with the quarantine
		// drained) retry, so the cap bounds every insertion path.
		sh.quarMu.Unlock()
		f.unpin()
		sh.quarRefusals.Add(1)
		return false, nil
	}
	sh.quarantine[id] = &wb
	// The flusher parks on its own behalf, not a request's: drop any
	// stale parker attribution a superseded entry left behind.
	delete(sh.quarTrace, id)
	sh.quarMu.Unlock()
	for {
		cur := f.state.Load()
		if f.state.CompareAndSwap(cur, cur&^uint64(frameDirty)) {
			break
		}
	}
	f.unpin()

	sched.Yield(sched.BufFlushClear)
	wrote, err := sh.writeQuarantined(id, &wb, 0)
	if err == nil {
		return wrote, nil
	}
	sh.writeBackFailures.Add(1)
	// Re-dirty the frame if it is still this page (same generation), so the
	// failed bytes are flushed again from the frame later. Setting the bit
	// BEFORE withdrawing the parked copy means there is no instant where
	// the frame is clean with no quarantine entry — an eviction in that gap
	// would silently drop the page. If the re-dirty lands and an eviction
	// immediately parks its own (byte-identical) copy, our withdrawal
	// compares pointers and no-ops; if the frame was recycled, the copy
	// stays quarantined (or was adopted by a re-load) and the bytes remain
	// safe either way.
	for {
		cur := f.state.Load()
		if stateGen(cur) != stateGen(s) || cur&frameRecycling != 0 {
			break // recycled while the write was in flight
		}
		if f.state.CompareAndSwap(cur, cur|frameDirty) {
			sh.quarantineResolve(id, &wb)
			break
		}
	}
	return false, fmt.Errorf("page %v: %w", id, err)
}

// flushDirty writes every dirty, unpinned page of this shard back to the
// device — and retries every quarantined page — returning the number made
// durable. The quarantine is drained first so the frame sweep's transient
// parking has capacity to work with.
func (sh *shard) flushDirty() (int, error) {
	var errs []error
	qn, _, qerr := sh.drainQuarantine()
	n := qn
	if qerr != nil {
		errs = append(errs, qerr)
	}
	for i := range sh.frames {
		wrote, err := sh.flushFrame(&sh.frames[i])
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if wrote {
			n++
		}
	}
	return n, errors.Join(errs...)
}

// dirtyCount reports the number of dirty resident frames in the shard
// right now.
func (sh *shard) dirtyCount() int {
	n := 0
	for i := range sh.frames {
		s := sh.frames[i].state.Load()
		if s&frameDirty != 0 && s&frameRecycling == 0 {
			n++
		}
	}
	return n
}

// pinnedFrames reports the number of frames currently holding at least one
// pin (including transition claim pins).
func (sh *shard) pinnedFrames() int {
	n := 0
	for i := range sh.frames {
		if sh.frames[i].state.Load()&framePinMask != 0 {
			n++
		}
	}
	return n
}

// checkInvariants verifies the shard's structural invariants (see
// Pool.CheckInvariants for the contract). owns reports whether a page id
// routes to this shard; a mapped or quarantined page owned by a different
// shard is a routing bug, not eviction residue.
func (sh *shard) checkInvariants(owns func(page.PageID) bool) error {
	// Snapshot the table: page → frame, taking each bucket lock once.
	mapped := make(map[page.PageID]*Frame, len(sh.frames))
	for i := range sh.buckets {
		b := &sh.buckets[i]
		b.mu.Lock()
		if b.seq.Load()&1 != 0 {
			b.mu.Unlock()
			return errors.New("buffer: bucket seqlock left odd (writer died mid-update)")
		}
		b.forEachLocked(func(id page.PageID, f *Frame) {
			mapped[id] = f
		})
		nLoads := len(b.loads)
		b.mu.Unlock()
		if nLoads != 0 {
			return fmt.Errorf("buffer: %d loads in flight during invariant check (caller not quiescent)", nLoads)
		}
	}
	byFrame := make(map[*Frame]page.PageID, len(mapped))
	for id, f := range mapped {
		if !owns(id) {
			return fmt.Errorf("buffer: page %v resident in a shard that does not own it", id)
		}
		if f == nil {
			return fmt.Errorf("buffer: table entry %v maps to no frame", id)
		}
		if prev, dup := byFrame[f]; dup {
			return fmt.Errorf("buffer: frame mapped twice, as %v and %v", prev, id)
		}
		byFrame[f] = id
		s := f.state.Load()
		if s&frameRecycling != 0 {
			return fmt.Errorf("buffer: page %v mapped to a recycling frame", id)
		}
		if got := page.PageID(f.tagPage.Load()); got != id {
			return fmt.Errorf("buffer: table entry %v points at frame caching %v", id, got)
		}
	}
	// Free-list integrity: recycling, unpinned, untagged, unmapped, no
	// duplicates.
	sh.freeMu.Lock()
	free := append([]*Frame(nil), sh.freeList...)
	sh.freeMu.Unlock()
	onFree := make(map[*Frame]bool, len(free))
	for _, f := range free {
		if onFree[f] {
			return errors.New("buffer: frame on free list twice")
		}
		onFree[f] = true
		if id, ok := byFrame[f]; ok {
			return fmt.Errorf("buffer: frame on free list while mapped as %v", id)
		}
		s := f.state.Load()
		if id := page.PageID(f.tagPage.Load()); id.Valid() {
			return fmt.Errorf("buffer: free frame still tagged %v", id)
		}
		if s&frameRecycling == 0 {
			return errors.New("buffer: free frame not in recycling state")
		}
		if pins := s & framePinMask; pins != 0 {
			return fmt.Errorf("buffer: free frame has %d pins", pins)
		}
	}
	// Every frame is accounted for exactly once: mapped or free.
	if len(mapped)+len(free) != len(sh.frames) {
		return fmt.Errorf("buffer: %d mapped + %d free != %d frames (frame leaked or in flight)",
			len(mapped), len(free), len(sh.frames))
	}
	// Quarantine: disjoint from the resident set at quiescence (the one
	// sanctioned overlap is a flush's in-flight write window), within its
	// soft capacity bound, and owned by this shard.
	sh.quarMu.Lock()
	quar := make([]page.PageID, 0, len(sh.quarantine))
	for id := range sh.quarantine {
		quar = append(quar, id)
	}
	sh.quarMu.Unlock()
	for _, id := range quar {
		if !owns(id) {
			return fmt.Errorf("buffer: page %v quarantined in a shard that does not own it", id)
		}
		if _, resident := mapped[id]; resident {
			return fmt.Errorf("buffer: page %v both resident and quarantined at quiescence", id)
		}
	}
	if len(quar) > sh.quarCap+len(sh.frames) {
		return fmt.Errorf("buffer: quarantine %d far beyond cap %d", len(quar), sh.quarCap)
	}
	// Policy agreement: every policy-resident page must have a table entry
	// (a frameless resident would be unevictable and unservable). The
	// reverse — a table entry the policy no longer tracks — is legal residue
	// of eviction churn against pinned frames and is not flagged.
	var perr error
	sh.wrapper.Locked(func(pol replacer.Policy) {
		n := pol.Len()
		inTable := 0
		for id := range mapped {
			if pol.Contains(id) {
				inTable++
			}
		}
		if n != inTable {
			perr = fmt.Errorf("buffer: policy tracks %d residents but only %d have table entries", n, inTable)
		}
	})
	if perr != nil {
		return perr
	}
	return sh.wrapper.CheckInvariants()
}

// mix64 is the 64-bit finalizer of MurmurHash3: a full-avalanche mix whose
// output bits are all independent of one another, so the pool can route
// shards off the high bits and buckets off the low bits of the same hash
// without correlating the two.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
