// Quickstart: build a buffer pool with an advanced replacement algorithm
// (2Q) made lock-contention free by BP-Wrapper, serve some page requests
// from concurrent workers, and inspect the lock statistics.
package main

import (
	"fmt"
	"log"
	"sync"

	"bpwrapper"
)

func main() {
	const frames = 1024

	// An advanced replacement algorithm. Its data structure needs a global
	// lock — the contention BP-Wrapper exists to remove.
	policy, ok := bpwrapper.NewPolicy("2q", frames)
	if !ok {
		log.Fatal("unknown policy")
	}

	pool := bpwrapper.NewPool(bpwrapper.PoolConfig{
		Frames: frames,
		Policy: policy,
		// Both BP-Wrapper techniques, with the paper's queue tuning
		// (size 64, threshold 32).
		Wrapper: bpwrapper.WrapperConfig{Batching: true, Prefetching: true},
		Device:  bpwrapper.NewMemDevice(),
	})

	// Eight workers hammer a skewed set of pages. Each worker owns one
	// Session — the private FIFO queue of the paper.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := pool.NewSession()
			defer sess.Flush() // commit any queued hit records
			for i := 0; i < 20000; i++ {
				// Zipf-ish skew: low-numbered blocks are hot.
				block := uint64(i*(w+3)) % 512 % uint64(1+i%97)
				ref, err := pool.Get(sess, bpwrapper.NewPageID(1, block))
				if err != nil {
					log.Fatal(err)
				}
				_ = ref.Data()[0] // use the page while pinned
				ref.Release()
			}
		}(w)
	}
	wg.Wait()

	st := pool.Wrapper().Stats()
	fmt.Printf("accesses:          %d (%.1f%% hits)\n",
		st.Accesses, 100*float64(st.Hits)/float64(st.Accesses))
	fmt.Printf("lock acquisitions: %d (%.1f accesses per acquisition)\n",
		st.Lock.Acquisitions, float64(st.Accesses)/float64(st.Lock.Acquisitions))
	fmt.Printf("blocking waits:    %d\n", st.Lock.Contentions)
	fmt.Printf("batched commits:   %d via TryLock, %d forced\n", st.TryCommits, st.ForcedLocks)
	fmt.Printf("stale records dropped by tag validation: %d\n", st.Dropped)

	// Without batching every one of those accesses would have been a lock
	// acquisition; print the reduction factor BP-Wrapper achieved.
	fmt.Printf("lock-acquisition reduction: %.0fx\n",
		float64(st.Accesses)/float64(st.Lock.Acquisitions))
}
