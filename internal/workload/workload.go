// Package workload generates the page-access streams that drive the
// BP-Wrapper experiments. It provides Go analogues of the three benchmarks
// the paper uses — DBT-1 (TPC-W-like web bookstore), DBT-2 (TPC-C-like
// OLTP), and TableScan (concurrent sequential scans) — plus the synthetic
// distributions (uniform, Zipfian, hotspot, looping-sequential) used by the
// hit-ratio studies.
//
// Generators are deterministic: the same (seed, worker) pair always yields
// the same stream, so experiments are reproducible and hit-ratio
// comparisons across policies are exact.
//
// We do not have the OSDL DBT kits or a SQL engine; what the experiments
// need from a workload is its *page reference stream*: which buffer pages a
// transaction touches, in what order, with what skew, and with what
// read/write mix. Each generator therefore models its benchmark's schema as
// tables and B-tree indexes laid out over page ranges and emits the page
// walks its transactions would perform.
package workload

import (
	"fmt"
	"math/rand"

	"bpwrapper/internal/page"
)

// Access is one page touch within a transaction.
type Access struct {
	Page  page.PageID
	Write bool
}

// Workload describes a benchmark: its working set and per-worker streams.
type Workload interface {
	// Name returns a short identifier ("tpcw", "tpcc", "tablescan", ...).
	Name() string

	// Pages returns the hot working set — every page the workload can
	// touch in steady state, used for pre-warming and pool sizing in the
	// zero-miss scalability experiments. Generators whose total data
	// exceeds any sensible buffer (for the I/O-bound experiments) return
	// only the always-hot core here and report the full span via DataPages.
	Pages() []page.PageID

	// DataPages returns the total number of distinct pages the workload
	// can reference (the database size, in pages).
	DataPages() int

	// NewStream returns worker w's access stream. Streams are independent
	// and not safe for concurrent use.
	NewStream(w int, seed int64) Stream
}

// Stream produces transactions: bounded sequences of page accesses.
type Stream interface {
	// NextTxn appends the next transaction's accesses to buf and returns
	// the extended slice. Implementations reuse buf's capacity; callers
	// must consume the result before the next call.
	NextTxn(buf []Access) []Access
}

// mix derives a per-worker RNG seed from a base seed, decorrelating workers
// without losing determinism (splitmix64 finalizer).
func mix(seed int64, w int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(w+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func newRand(seed int64, w int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, w)))
}

// Table is a contiguous range of data pages belonging to one relation.
type Table struct {
	id    uint32
	pages uint64
}

// NewTable defines a table with the given relation number and page count.
func NewTable(id uint32, pages uint64) Table {
	if pages == 0 {
		panic("workload: table with zero pages")
	}
	return Table{id: id, pages: pages}
}

// Pages returns the table's size in pages.
func (t Table) Pages() uint64 { return t.pages }

// Page returns the PageID of the table's block b (modulo the table size,
// so generators can pass raw keys).
func (t Table) Page(b uint64) page.PageID {
	return page.NewPageID(t.id, b%t.pages)
}

// appendAll appends every page of the table to ids.
func (t Table) appendAll(ids []page.PageID) []page.PageID {
	for b := uint64(0); b < t.pages; b++ {
		ids = append(ids, page.NewPageID(t.id, b))
	}
	return ids
}

// Index models a B-tree over a key space as three page levels: a single
// (extremely hot) root, a level of internal pages, and a level of leaves.
// Index pages are what give OLTP buffer traces their sharp skew — the
// paper's lock-contention results depend on that skew because every
// transaction hits the same few root pages.
type Index struct {
	id     uint32
	keys   uint64
	leaves uint64
	inner  uint64
}

// NewIndex defines an index with the given relation number over a key
// space, with roughly keysPerLeaf keys per leaf page and fanout internal
// fan-in.
func NewIndex(id uint32, keys, keysPerLeaf uint64, fanout uint64) Index {
	if keys == 0 || keysPerLeaf == 0 || fanout == 0 {
		panic("workload: invalid index geometry")
	}
	leaves := (keys + keysPerLeaf - 1) / keysPerLeaf
	inner := (leaves + fanout - 1) / fanout
	return Index{id: id, keys: keys, leaves: leaves, inner: inner}
}

// Pages returns the index's total page count (root + internal + leaves).
func (ix Index) Pages() uint64 { return 1 + ix.inner + ix.leaves }

// Walk appends the root→internal→leaf page path for key to buf (all
// reads).
func (ix Index) Walk(buf []Access, key uint64) []Access {
	leaf := key % ix.keys * ix.leaves / ix.keys
	inner := leaf * ix.inner / ix.leaves
	buf = append(buf,
		Access{Page: page.NewPageID(ix.id, 0)},               // root
		Access{Page: page.NewPageID(ix.id, 1+inner)},         // internal
		Access{Page: page.NewPageID(ix.id, 1+ix.inner+leaf)}, // leaf
	)
	return buf
}

// appendAll appends every page of the index to ids.
func (ix Index) appendAll(ids []page.PageID) []page.PageID {
	total := ix.Pages()
	for b := uint64(0); b < total; b++ {
		ids = append(ids, page.NewPageID(ix.id, b))
	}
	return ids
}

// ByName constructs one of the built-in workloads at its default scale.
func ByName(name string) (Workload, error) {
	switch name {
	case "tpcw", "dbt1":
		return NewTPCW(TPCWConfig{}), nil
	case "tpcc", "dbt2":
		return NewTPCC(TPCCConfig{}), nil
	case "tablescan", "scan":
		return NewTableScan(TableScanConfig{}), nil
	case "zipf":
		return NewZipf(SyntheticConfig{}), nil
	case "uniform":
		return NewUniform(SyntheticConfig{}), nil
	case "hotspot":
		return NewHotspot(SyntheticConfig{}), nil
	case "loop":
		return NewLoop(SyntheticConfig{}), nil
	case "ycsb", "ycsb-a":
		return NewYCSB(YCSBConfig{Mix: 'A'}), nil
	case "ycsb-b":
		return NewYCSB(YCSBConfig{Mix: 'B'}), nil
	case "ycsb-c":
		return NewYCSB(YCSBConfig{Mix: 'C'}), nil
	case "ycsb-d":
		return NewYCSB(YCSBConfig{Mix: 'D'}), nil
	case "ycsb-e":
		return NewYCSB(YCSBConfig{Mix: 'E'}), nil
	case "ycsb-f":
		return NewYCSB(YCSBConfig{Mix: 'F'}), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}
