package replacer

import "fmt"

// This file gives every policy a CheckInvariants method: the cheap O(1)
// structural identities each algorithm promises (count bookkeeping, list
// length identities, adaptation targets within range) plus deep O(n) walks
// (link integrity, flag consistency, table/list agreement) that are only
// enabled in builds with the `torture` tag — see torture_on.go — or when
// forced via CheckDeep. The torture harness calls these between operations
// and at quiescent points, so the checks must never mutate policy state.

// Checker is implemented by policies that can verify their own structural
// invariants. CheckInvariants must be called with the same serialization
// its other methods require (the policy lock) and must not mutate state.
type Checker interface {
	CheckInvariants() error
}

// Check runs p's invariant checker if it implements one (all policies in
// this package do). Callers must hold the policy lock.
func Check(p Policy) error {
	if c, ok := p.(Checker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// deepChecker is the unexported two-level hook behind Checker.
type deepChecker interface {
	checkInvariants(deep bool) error
}

// CheckDeep runs p's invariant checker with the deep O(n) walks forced on,
// regardless of build tags. Callers must hold the policy lock.
func CheckDeep(p Policy) error {
	if c, ok := p.(deepChecker); ok {
		return c.checkInvariants(true)
	}
	return Check(p)
}

// walkList verifies a list's link integrity and node flags, returning the
// walked length. fn (optional) is applied to every node. The walk is
// bounded by the recorded length so a cyclic corruption cannot hang it.
func walkList(policy, name string, l *list, fn func(*node) error) (int, error) {
	n := 0
	for nd := l.root.next; nd != &l.root; nd = nd.next {
		if nd.next.prev != nd || nd.prev.next != nd {
			return n, fmt.Errorf("replacer: %s: %s: broken links at %v", policy, name, nd.id)
		}
		n++
		if n > l.n {
			return n, fmt.Errorf("replacer: %s: %s: walk exceeds recorded length %d", policy, name, l.n)
		}
		if fn != nil {
			if err := fn(nd); err != nil {
				return n, err
			}
		}
	}
	if n != l.n {
		return n, fmt.Errorf("replacer: %s: %s: walked %d nodes, recorded length %d", policy, name, n, l.n)
	}
	return n, nil
}

// inTable checks that a walked node is the table's entry for its id.
func inTable(policy, name string, table map[PageID]*node, nd *node) error {
	if got, ok := table[nd.id]; !ok || got != nd {
		return fmt.Errorf("replacer: %s: %s node %v not backed by table entry", policy, name, nd.id)
	}
	return nil
}

// ---- LRU ----

func (p *LRU) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *LRU) checkInvariants(deep bool) error {
	if p.lst.len() != len(p.table) {
		return fmt.Errorf("replacer: lru: list %d != table %d", p.lst.len(), len(p.table))
	}
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: lru: Len %d > cap %d", p.Len(), p.capacity)
	}
	if !deep {
		return nil
	}
	_, err := walkList("lru", "list", p.lst, func(nd *node) error {
		return inTable("lru", "list", p.table, nd)
	})
	return err
}

// ---- FIFO ----

func (p *FIFO) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *FIFO) checkInvariants(deep bool) error {
	if p.lst.len() != len(p.table) {
		return fmt.Errorf("replacer: fifo: list %d != table %d", p.lst.len(), len(p.table))
	}
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: fifo: Len %d > cap %d", p.Len(), p.capacity)
	}
	if !deep {
		return nil
	}
	_, err := walkList("fifo", "list", p.lst, func(nd *node) error {
		return inTable("fifo", "list", p.table, nd)
	})
	return err
}

// ---- LFU ----

func (p *LFU) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *LFU) checkInvariants(deep bool) error {
	if p.length != len(p.table) {
		return fmt.Errorf("replacer: lfu: length %d != table %d", p.length, len(p.table))
	}
	if p.length > p.capacity {
		return fmt.Errorf("replacer: lfu: length %d > cap %d", p.length, p.capacity)
	}
	sum := 0
	for freq, b := range p.buckets {
		if b.len() == 0 {
			return fmt.Errorf("replacer: lfu: empty bucket retained at freq %d", freq)
		}
		sum += b.len()
	}
	if sum != p.length {
		return fmt.Errorf("replacer: lfu: bucket sum %d != length %d", sum, p.length)
	}
	if !deep {
		return nil
	}
	for freq, b := range p.buckets {
		_, err := walkList("lfu", fmt.Sprintf("bucket[%d]", freq), b, func(nd *node) error {
			if nd.count != freq {
				return fmt.Errorf("replacer: lfu: node %v has freq %d in bucket %d", nd.id, nd.count, freq)
			}
			return inTable("lfu", "bucket", p.table, nd)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- LRU-K ----

func (p *LRUK) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *LRUK) checkInvariants(deep bool) error {
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: %s: Len %d > cap %d", p.Name(), p.Len(), p.capacity)
	}
	if !deep {
		return nil
	}
	for id, e := range p.table {
		if e.id != id {
			return fmt.Errorf("replacer: %s: table[%v] holds entry for %v", p.Name(), id, e.id)
		}
		if len(e.hist) != p.k {
			return fmt.Errorf("replacer: %s: entry %v history length %d != k %d", p.Name(), id, len(e.hist), p.k)
		}
		if e.n < 1 || e.n > p.k {
			return fmt.Errorf("replacer: %s: entry %v has %d recorded references, want [1, %d]", p.Name(), id, e.n, p.k)
		}
	}
	return nil
}

// ---- 2Q ----

func (p *TwoQ) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *TwoQ) checkInvariants(deep bool) error {
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: 2q: Len %d > cap %d", p.Len(), p.capacity)
	}
	if got, want := len(p.table), p.a1in.len()+p.am.len()+p.a1out.len(); got != want {
		return fmt.Errorf("replacer: 2q: table %d != a1in+am+a1out %d", got, want)
	}
	if p.a1out.len() > p.kout {
		return fmt.Errorf("replacer: 2q: a1out %d > kout %d", p.a1out.len(), p.kout)
	}
	if !deep {
		return nil
	}
	checks := []struct {
		name  string
		l     *list
		ghost bool
		hot   bool
	}{
		{"a1in", p.a1in, false, false},
		{"am", p.am, false, true},
		{"a1out", p.a1out, true, false},
	}
	for _, c := range checks {
		_, err := walkList("2q", c.name, c.l, func(nd *node) error {
			if nd.ghost != c.ghost || nd.hot != c.hot {
				return fmt.Errorf("replacer: 2q: %s node %v has ghost=%v hot=%v", c.name, nd.id, nd.ghost, nd.hot)
			}
			return inTable("2q", c.name, p.table, nd)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- LIRS ----

func (p *LIRS) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *LIRS) checkInvariants(deep bool) error {
	if p.nResident > p.capacity {
		return fmt.Errorf("replacer: lirs: resident %d > cap %d", p.nResident, p.capacity)
	}
	if p.nLIR > p.llirs {
		return fmt.Errorf("replacer: lirs: LIR count %d > target %d", p.nLIR, p.llirs)
	}
	if got, want := p.q.Len(), p.nResident-p.nLIR; got != want {
		return fmt.Errorf("replacer: lirs: Q holds %d, want resident-LIR = %d", got, want)
	}
	if p.ghostAge.Len() > p.ghostCap {
		return fmt.Errorf("replacer: lirs: %d ghosts > cap %d", p.ghostAge.Len(), p.ghostCap)
	}
	if !deep {
		return nil
	}
	var lir, hir, ghost int
	for id, e := range p.table {
		if e.id != id {
			return fmt.Errorf("replacer: lirs: table[%v] holds entry for %v", id, e.id)
		}
		switch e.state {
		case lirsLIR:
			lir++
			if e.sElem == nil {
				return fmt.Errorf("replacer: lirs: LIR page %v off the recency stack", id)
			}
			if e.qElem != nil {
				return fmt.Errorf("replacer: lirs: LIR page %v on the HIR queue", id)
			}
		case lirsHIR:
			hir++
			if e.qElem == nil {
				return fmt.Errorf("replacer: lirs: resident HIR page %v off the queue", id)
			}
		case lirsHIRGhost:
			ghost++
			if e.gElem == nil {
				return fmt.Errorf("replacer: lirs: ghost %v off the age FIFO", id)
			}
			if e.qElem != nil {
				return fmt.Errorf("replacer: lirs: ghost %v on the resident queue", id)
			}
		default:
			return fmt.Errorf("replacer: lirs: entry %v has impossible state %d", id, e.state)
		}
	}
	if lir != p.nLIR {
		return fmt.Errorf("replacer: lirs: counted %d LIR pages, recorded %d", lir, p.nLIR)
	}
	if lir+hir != p.nResident {
		return fmt.Errorf("replacer: lirs: counted %d residents, recorded %d", lir+hir, p.nResident)
	}
	if ghost != p.ghostAge.Len() {
		return fmt.Errorf("replacer: lirs: counted %d ghosts, age FIFO holds %d", ghost, p.ghostAge.Len())
	}
	return nil
}

// ---- SEQ ----

func (p *SEQ) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *SEQ) checkInvariants(deep bool) error {
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: seq: Len %d > cap %d", p.Len(), p.capacity)
	}
	if got, want := len(p.table), p.main.len()+p.scan.len(); got != want {
		return fmt.Errorf("replacer: seq: table %d != main+scan %d", got, want)
	}
	if !deep {
		return nil
	}
	for _, lc := range []struct {
		name string
		l    *list
	}{{"main", p.main}, {"scan", p.scan}} {
		_, err := walkList("seq", lc.name, lc.l, func(nd *node) error {
			return inTable("seq", lc.name, p.table, nd)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- ARC / CAR ----

// checkARCShape verifies the list-length identities ARC and CAR share: the
// directory invariants of the ARC paper (|T1|+|T2| ≤ c, |T1|+|B1| ≤ c,
// total ≤ 2c) plus the adaptation target's range.
func checkARCShape(name string, capacity, target int, table map[PageID]*node, t1, t2, b1, b2 *list) error {
	if t1.len()+t2.len() > capacity {
		return fmt.Errorf("replacer: %s: T1+T2 = %d > cap %d", name, t1.len()+t2.len(), capacity)
	}
	if t1.len()+b1.len() > capacity {
		return fmt.Errorf("replacer: %s: T1+B1 = %d > cap %d", name, t1.len()+b1.len(), capacity)
	}
	total := t1.len() + t2.len() + b1.len() + b2.len()
	if total > 2*capacity {
		return fmt.Errorf("replacer: %s: directory %d > 2×cap %d", name, total, 2*capacity)
	}
	if len(table) != total {
		return fmt.Errorf("replacer: %s: table %d != directory %d", name, len(table), total)
	}
	if target < 0 || target > capacity {
		return fmt.Errorf("replacer: %s: target p=%d outside [0, %d]", name, target, capacity)
	}
	return nil
}

// checkARCFlags deep-walks the four lists verifying the ghost/hot flag
// pattern both ARC and CAR maintain: T1 fresh, T2 proven, B1/B2 their
// ghosts.
func checkARCFlags(name string, table map[PageID]*node, t1, t2, b1, b2 *list) error {
	checks := []struct {
		lname string
		l     *list
		ghost bool
		hot   bool
	}{
		{"t1", t1, false, false},
		{"t2", t2, false, true},
		{"b1", b1, true, false},
		{"b2", b2, true, true},
	}
	for _, c := range checks {
		_, err := walkList(name, c.lname, c.l, func(nd *node) error {
			if nd.ghost != c.ghost || nd.hot != c.hot {
				return fmt.Errorf("replacer: %s: %s node %v has ghost=%v hot=%v", name, c.lname, nd.id, nd.ghost, nd.hot)
			}
			return inTable(name, c.lname, table, nd)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *ARC) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *ARC) checkInvariants(deep bool) error {
	if err := checkARCShape("arc", p.capacity, p.p, p.table, p.t1, p.t2, p.b1, p.b2); err != nil {
		return err
	}
	if !deep {
		return nil
	}
	return checkARCFlags("arc", p.table, p.t1, p.t2, p.b1, p.b2)
}

func (p *CAR) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *CAR) checkInvariants(deep bool) error {
	if err := checkARCShape("car", p.capacity, p.p, p.table, p.t1, p.t2, p.b1, p.b2); err != nil {
		return err
	}
	if !deep {
		return nil
	}
	return checkARCFlags("car", p.table, p.t1, p.t2, p.b1, p.b2)
}

// ---- CLOCK / GCLOCK ----

func (p *Clock) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *Clock) checkInvariants(deep bool) error {
	if p.length > p.capacity {
		return fmt.Errorf("replacer: %s: length %d > cap %d", p.name, p.length, p.capacity)
	}
	if (p.hand == nil) != (p.length == 0) {
		return fmt.Errorf("replacer: %s: hand nil=%v with length %d", p.name, p.hand == nil, p.length)
	}
	if !deep {
		return nil
	}
	tabled := 0
	p.table.Range(func(_, _ any) bool { tabled++; return true })
	if tabled != p.length {
		return fmt.Errorf("replacer: %s: table %d != length %d", p.name, tabled, p.length)
	}
	if p.hand == nil {
		return nil
	}
	n := 0
	for nd := p.hand; ; nd = nd.next {
		if nd.next.prev != nd || nd.prev.next != nd {
			return fmt.Errorf("replacer: %s: broken ring links at %v", p.name, nd.id)
		}
		if ref := nd.ref.Load(); ref < 0 || ref > p.maxCount {
			return fmt.Errorf("replacer: %s: page %v reference count %d outside [0, %d]", p.name, nd.id, ref, p.maxCount)
		}
		if v, ok := p.table.Load(nd.id); !ok || v.(*clockNode) != nd {
			return fmt.Errorf("replacer: %s: ring node %v not backed by table entry", p.name, nd.id)
		}
		n++
		if n > p.length {
			return fmt.Errorf("replacer: %s: ring walk exceeds length %d", p.name, p.length)
		}
		if nd.next == p.hand {
			break
		}
	}
	if n != p.length {
		return fmt.Errorf("replacer: %s: ring holds %d nodes, length %d", p.name, n, p.length)
	}
	return nil
}

// ---- CLOCK-Pro ----

func (p *ClockPro) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *ClockPro) checkInvariants(deep bool) error {
	if p.Len() > p.capacity {
		return fmt.Errorf("replacer: clockpro: Len %d > cap %d", p.Len(), p.capacity)
	}
	if p.nNR > p.capacity {
		return fmt.Errorf("replacer: clockpro: %d non-resident pages > cap %d", p.nNR, p.capacity)
	}
	if p.coldTarget < 1 || p.coldTarget > p.capacity {
		return fmt.Errorf("replacer: clockpro: cold target %d outside [1, %d]", p.coldTarget, p.capacity)
	}
	if got, want := len(p.table), p.nHot+p.nColdRes+p.nNR; got != want {
		return fmt.Errorf("replacer: clockpro: table %d != hot+cold+nonres %d", got, want)
	}
	if (p.handHot == nil) != (len(p.table) == 0) {
		return fmt.Errorf("replacer: clockpro: hands nil=%v with %d entries", p.handHot == nil, len(p.table))
	}
	if !deep {
		return nil
	}
	if p.handHot == nil {
		return nil
	}
	var hot, coldRes, nonRes, n int
	for e := p.handHot; ; e = e.next {
		if e.next.prev != e || e.prev.next != e {
			return fmt.Errorf("replacer: clockpro: broken ring links at %v", e.id)
		}
		switch {
		case e.hot:
			hot++
			if !e.resident {
				return fmt.Errorf("replacer: clockpro: hot page %v not resident", e.id)
			}
			if e.test {
				return fmt.Errorf("replacer: clockpro: hot page %v in a test period", e.id)
			}
		case e.resident:
			coldRes++
		default:
			nonRes++
			if !e.test {
				return fmt.Errorf("replacer: clockpro: non-resident page %v outside its test period", e.id)
			}
		}
		if got, ok := p.table[e.id]; !ok || got != e {
			return fmt.Errorf("replacer: clockpro: ring node %v not backed by table entry", e.id)
		}
		n++
		if n > len(p.table) {
			return fmt.Errorf("replacer: clockpro: ring walk exceeds table size %d", len(p.table))
		}
		if e.next == p.handHot {
			break
		}
	}
	if hot != p.nHot || coldRes != p.nColdRes || nonRes != p.nNR {
		return fmt.Errorf("replacer: clockpro: counted hot/cold/nonres %d/%d/%d, recorded %d/%d/%d",
			hot, coldRes, nonRes, p.nHot, p.nColdRes, p.nNR)
	}
	for _, hand := range []*cpEntry{p.handCold, p.handTest} {
		if hand == nil {
			return fmt.Errorf("replacer: clockpro: a hand is nil while the ring holds %d entries", n)
		}
	}
	return nil
}

// ---- MQ ----

func (p *MQ) CheckInvariants() error { return p.checkInvariants(deepInvariants) }

func (p *MQ) checkInvariants(deep bool) error {
	if p.length > p.capacity {
		return fmt.Errorf("replacer: mq: length %d > cap %d", p.length, p.capacity)
	}
	sum := 0
	for _, q := range p.queues {
		sum += q.len()
	}
	if sum != p.length {
		return fmt.Errorf("replacer: mq: queue sum %d != length %d", sum, p.length)
	}
	if got, want := len(p.table), p.length+p.qout.len(); got != want {
		return fmt.Errorf("replacer: mq: table %d != resident+ghosts %d", got, want)
	}
	if p.qout.len() > p.qoutCap {
		return fmt.Errorf("replacer: mq: qout %d > cap %d", p.qout.len(), p.qoutCap)
	}
	if !deep {
		return nil
	}
	for k, q := range p.queues {
		_, err := walkList("mq", fmt.Sprintf("queue[%d]", k), q, func(nd *node) error {
			if nd.ghost {
				return fmt.Errorf("replacer: mq: ghost %v on frequency queue %d", nd.id, k)
			}
			if nd.level != k {
				return fmt.Errorf("replacer: mq: node %v has level %d on queue %d", nd.id, nd.level, k)
			}
			if nd.level != p.queueFor(nd.count) && nd.level >= p.queueFor(nd.count) {
				// A node may sit BELOW its frequency's natural queue after
				// expiry demotion, never above it.
				return fmt.Errorf("replacer: mq: node %v (freq %d) above its natural queue %d",
					nd.id, nd.count, p.queueFor(nd.count))
			}
			return inTable("mq", "queue", p.table, nd)
		})
		if err != nil {
			return err
		}
	}
	_, err := walkList("mq", "qout", p.qout, func(nd *node) error {
		if !nd.ghost {
			return fmt.Errorf("replacer: mq: resident page %v on the ghost queue", nd.id)
		}
		return inTable("mq", "qout", p.table, nd)
	})
	return err
}
