package torture

import "testing"

// FuzzCommitPathOrder fuzzes the batched and flat-combining commit paths
// with arbitrary (seed, shape) traces, asserting the order-preservation
// oracle on the applied log. Deterministic mode keeps each input cheap and
// any counterexample exactly replayable from the corpus entry.
func FuzzCommitPathOrder(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(50), uint8(30), uint8(0), uint8(4))
	f.Add(int64(42), uint8(6), uint16(200), uint8(10), uint8(1), uint8(8))
	f.Add(int64(-7), uint8(1), uint16(1), uint8(0), uint8(2), uint8(1))
	f.Add(int64(1<<40), uint8(8), uint16(300), uint8(90), uint8(3), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, sessions uint8, length uint16, missPct, pathSel, queueSize uint8) {
		ns := 1 + int(sessions)%8
		nl := int(length) % 512
		qs := 1 + int(queueSize)%64
		paths := Paths()
		p := paths[int(pathSel)%len(paths)]
		tr := NewTrace(seed, ns, nl, float64(missPct%101)/100)
		res, err := RunDeterministic(tr, p, qs)
		if err != nil {
			t.Fatalf("%v (%s)", err, ReportSeed(seed))
		}
		if err := CheckOracle(tr, res.Log); err != nil {
			t.Fatalf("%v (%s)", err, ReportSeed(seed))
		}
		if got, want := len(res.Log), tr.Total(); got != want {
			t.Fatalf("seed %d: path %s applied %d of %d accesses", seed, p, got, want)
		}
	})
}
