package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bpwrapper/internal/page"
)

func TestFaultDeviceCountdownExact(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{})
	d.FailNextReads(3)
	var p page.Page
	fails := 0
	for i := 0; i < 10; i++ {
		if err := d.ReadPage(pid(uint64(i+1)), &p); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("injected error does not wrap ErrTransient: %v", err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("countdown injected %d failures, want exactly 3", fails)
	}
}

// TestFaultDeviceCountdownConcurrent is the regression test for the racy
// Load-then-Add countdown the old test-local flakyDevice used: N tickets
// must produce exactly N failures no matter how many goroutines race.
func TestFaultDeviceCountdownConcurrent(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{})
	const tickets = 100
	d.FailNextReads(tickets)
	var fails atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var p page.Page
			for i := 0; i < 200; i++ {
				if err := d.ReadPage(pid(uint64(g*1000+i+1)), &p); err != nil {
					fails.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := fails.Load(); n != tickets {
		t.Fatalf("%d injected failures, want exactly %d", n, tickets)
	}
}

func TestFaultDeviceFailPage(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{})
	d.SetFailPage(pid(7))
	var p page.Page
	if err := d.ReadPage(pid(7), &p); !errors.Is(err, ErrTransient) {
		t.Fatalf("read of failed page: %v", err)
	}
	if err := d.ReadPage(pid(8), &p); err != nil {
		t.Fatalf("unrelated page affected: %v", err)
	}
	d.SetFailPage(page.InvalidPageID)
	if err := d.ReadPage(pid(7), &p); err != nil {
		t.Fatalf("page still failing after clear: %v", err)
	}
}

func TestFaultDevicePermanentTaxonomy(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{Permanent: true})
	d.FailNextWrites(1)
	var p page.Page
	p.Stamp(pid(1))
	err := d.WritePage(&p)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("permanent fault does not wrap ErrPermanent: %v", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("permanent fault wraps ErrTransient")
	}
	if Retryable(err) {
		t.Fatal("permanent fault classified retryable")
	}
}

func TestFaultDeviceDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []bool {
		d := NewFaultDevice(NewMemDevice(), FaultConfig{Seed: seed, ReadFailProb: 0.3})
		var outcomes []bool
		var p page.Page
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, d.ReadPage(pid(uint64(i+1)), &p) != nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails < 20 || fails > 120 {
		t.Fatalf("%d/200 failures at p=0.3, want roughly 60", fails)
	}
}

func TestFaultDeviceStatsCountInjections(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), FaultConfig{})
	d.FailNextReads(2)
	d.FailNextWrites(1)
	var p page.Page
	p.Stamp(pid(1))
	d.ReadPage(pid(1), &p)
	d.ReadPage(pid(1), &p)
	d.ReadPage(pid(1), &p) // succeeds
	d.WritePage(&p)        // fails
	d.WritePage(&p)        // succeeds
	s := d.Stats()
	if s.ReadErrors != 2 || s.WriteErrors != 1 {
		t.Fatalf("ReadErrors=%d WriteErrors=%d, want 2/1", s.ReadErrors, s.WriteErrors)
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("backing Reads=%d Writes=%d, want 1/1", s.Reads, s.Writes)
	}
}

func TestRetryDeviceRecoversTransient(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{})
	rd := NewRetryDevice(fd, RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}})
	fd.FailNextReads(3) // exactly exhaust the retries, last attempt succeeds
	var p page.Page
	if err := rd.ReadPage(pid(1), &p); err != nil {
		t.Fatalf("retry did not recover from 3 transient faults: %v", err)
	}
	if !p.VerifyStamp(pid(1)) {
		t.Fatal("recovered read returned wrong bytes")
	}
	if got := rd.Stats().Retries; got != 3 {
		t.Fatalf("Retries=%d, want 3", got)
	}
}

func TestRetryDeviceExhaustsAndSurfaces(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{})
	rd := NewRetryDevice(fd, RetryConfig{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	fd.FailNextReads(10)
	var p page.Page
	err := rd.ReadPage(pid(1), &p)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retry lost the error: %v", err)
	}
	if rd.Exhausted() != 1 {
		t.Fatalf("Exhausted=%d, want 1", rd.Exhausted())
	}
	if got := rd.Stats().Retries; got != 2 {
		t.Fatalf("Retries=%d, want 2 (3 attempts)", got)
	}
}

func TestRetryDeviceDoesNotRetryPermanent(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{Permanent: true})
	attempts := 0
	rd := NewRetryDevice(fd, RetryConfig{MaxAttempts: 5, Sleep: func(time.Duration) { attempts++ }})
	fd.FailNextWrites(5)
	var p page.Page
	p.Stamp(pid(1))
	if err := rd.WritePage(&p); !errors.Is(err, ErrPermanent) {
		t.Fatalf("err=%v, want permanent", err)
	}
	if attempts != 0 {
		t.Fatalf("slept %d times retrying a permanent error", attempts)
	}
	if err := rd.ReadPage(page.InvalidPageID, &p); !errors.Is(err, ErrInvalidPage) {
		t.Fatalf("invalid page err=%v", err)
	}
	if got := rd.Stats().Retries; got != 0 {
		t.Fatalf("Retries=%d, want 0", got)
	}
}

func TestRetryDeviceBackoffGrowsAndCaps(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{})
	var sleeps []time.Duration
	rd := NewRetryDevice(fd, RetryConfig{
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Jitter:      -1, // exact values
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	fd.FailNextReads(10)
	var p page.Page
	rd.ReadPage(pid(1), &p)
	want := []time.Duration{1, 2, 4, 4, 4}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times, want %d", len(sleeps), len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (exponential growth capped at max)", i, sleeps[i], want[i])
		}
	}
}

func TestChecksumDeviceDetectsCorruption(t *testing.T) {
	fd := NewFaultDevice(NewMemDevice(), FaultConfig{})
	cd := NewChecksumDevice(fd)
	var w page.Page
	w.Stamp(pid(9))
	if err := cd.WritePage(&w); err != nil {
		t.Fatal(err)
	}
	var r page.Page
	if err := cd.ReadPage(pid(9), &r); err != nil {
		t.Fatalf("clean read flagged: %v", err)
	}
	fd.SetCorruptRate(1)
	err := cd.ReadPage(pid(9), &r)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupted read err=%v, want ErrCorruptPage", err)
	}
	if !Retryable(err) {
		t.Fatal("ErrCorruptPage must be retryable")
	}
	if got := cd.Stats().CorruptPages; got != 1 {
		t.Fatalf("CorruptPages=%d, want 1", got)
	}
	// Unwritten pages have no recorded checksum and pass through.
	fd.SetCorruptRate(0)
	if err := cd.ReadPage(pid(1000), &r); err != nil {
		t.Fatalf("unstamped page flagged: %v", err)
	}
}

// TestFaultStackEndToEnd composes the full production stack
// Retry(Checksum(Fault(Mem))) and proves a corrupted transfer is detected
// and transparently healed by a retry.
func TestFaultStackEndToEnd(t *testing.T) {
	mem := NewMemDevice()
	fd := NewFaultDevice(mem, FaultConfig{})
	cd := NewChecksumDevice(fd)
	rd := NewRetryDevice(cd, RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}})

	var w page.Page
	w.Stamp(pid(5))
	w.Data[0] = 0x42
	if err := rd.WritePage(&w); err != nil {
		t.Fatal(err)
	}
	fd.SetCorruptRate(1)
	var r page.Page
	errFirst := cd.ReadPage(pid(5), &r)
	if !errors.Is(errFirst, ErrCorruptPage) {
		t.Fatalf("direct corrupted read err=%v", errFirst)
	}
	fd.SetCorruptRate(0.5) // flaky: some reads corrupt, retries heal
	ok := false
	for i := 0; i < 5; i++ {
		if err := rd.ReadPage(pid(5), &r); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("retry stack never healed a half-corrupt read in 5 tries")
	}
	if r.Data != w.Data {
		t.Fatal("healed read returned wrong bytes")
	}
	s := rd.Stats()
	if s.CorruptPages == 0 {
		t.Fatal("stack stats do not surface detected corruptions")
	}
}
