package workload

import (
	"testing"

	"bpwrapper/internal/page"
)

func ycsb(mix byte) *YCSB {
	return NewYCSB(YCSBConfig{Records: 5000, Mix: mix, Workers: 8})
}

func TestYCSBMixes(t *testing.T) {
	writeFrac := map[byte]float64{}
	for _, mix := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		w := ycsb(mix)
		if w.Name() != "ycsb-"+string(mix) {
			t.Fatalf("name %q", w.Name())
		}
		declared := make(map[page.PageID]bool)
		for _, id := range w.Pages() {
			declared[id] = true
		}
		writes, total := 0, 0
		for worker := 0; worker < 4; worker++ {
			for _, a := range collect(w, worker, 11, 100) {
				if !declared[a.Page] {
					t.Fatalf("mix %c: undeclared page %v", mix, a.Page)
				}
				if a.Write {
					writes++
				}
				total++
			}
		}
		writeFrac[mix] = float64(writes) / float64(total)
	}
	// The defining ordering of the standard mixes.
	if writeFrac['C'] != 0 {
		t.Errorf("workload C write fraction %.3f, want 0", writeFrac['C'])
	}
	if !(writeFrac['A'] > writeFrac['B']) {
		t.Errorf("A (%.3f) not more write-heavy than B (%.3f)", writeFrac['A'], writeFrac['B'])
	}
	// Each op is ~4 accesses (3 index reads + 1 data page), so A's 50%%
	// data-page update rate is ~12.5%% of all accesses.
	if writeFrac['A'] < 0.08 || writeFrac['A'] > 0.2 {
		t.Errorf("A write fraction %.3f, want ~0.125 of all accesses", writeFrac['A'])
	}
	if writeFrac['F'] < 0.15 {
		t.Errorf("F write fraction %.3f; read-modify-write should write often", writeFrac['F'])
	}
}

func TestYCSBDeterministic(t *testing.T) {
	for _, mix := range []byte{'A', 'D', 'E'} {
		a := collect(ycsb(mix), 2, 99, 30)
		b := collect(ycsb(mix), 2, 99, 30)
		if len(a) != len(b) {
			t.Fatalf("mix %c lengths differ", mix)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mix %c access %d differs", mix, i)
			}
		}
	}
}

func TestYCSBSkew(t *testing.T) {
	w := ycsb('C')
	counts := map[page.PageID]int{}
	total := 0
	for _, a := range collect(w, 0, 5, 400) {
		if a.Page.Table() == 1 { // data pages only
			counts[a.Page]++
			total++
		}
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < total/200 {
		t.Fatalf("hottest data page %d/%d; Zipf skew missing", best, total)
	}
}

func TestYCSBValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix accepted")
		}
	}()
	NewYCSB(YCSBConfig{Mix: 'Z'})
}

func TestYCSBScanLengths(t *testing.T) {
	w := ycsb('E')
	st := w.NewStream(0, 3)
	buf := st.NextTxn(nil)
	if len(buf) < 10 {
		t.Fatalf("workload E txn only %d accesses; scans expected", len(buf))
	}
}
