package server

import (
	"bpwrapper/internal/obs"
)

// RegisterObs adds the server's counters to reg, so the same /metrics and
// /debug/vars endpoints (and bpstat) that cover the pool cover its
// network front-end. Naming follows the repo convention: bpw_server_*.
func (s *Server) RegisterObs(reg *obs.Registry) {
	reg.Register(func(emit func(obs.Metric)) {
		counter := func(name, help string, v int64) {
			emit(obs.Metric{Name: name, Help: help, Type: obs.Counter, Value: float64(v)})
		}
		gauge := func(name, help string, v int64) {
			emit(obs.Metric{Name: name, Help: help, Type: obs.Gauge, Value: float64(v)})
		}
		counter("bpw_server_conns_accepted_total", "Connections accepted", s.c.accepted.Load())
		counter("bpw_server_conns_rejected_total", "Connections refused by the MaxConns limit", s.c.rejected.Load())
		gauge("bpw_server_conns_active", "Connections currently served", s.c.active.Load())
		gauge("bpw_server_inflight", "Requests decoded but not yet answered", s.c.inflight.Load())
		counter("bpw_server_bytes_in_total", "Bytes read from client sockets", s.c.bytesIn.Load())
		counter("bpw_server_bytes_out_total", "Bytes written to client sockets", s.c.bytesOut.Load())
		counter("bpw_server_bad_frames_total", "Malformed frames and unknown opcodes", s.c.badFrames.Load())
		counter("bpw_server_write_timeouts_total", "Connections abandoned on write backpressure", s.c.writeTimeouts.Load())
		counter("bpw_server_drains_total", "Graceful drains initiated", s.c.drains.Load())
		counter("bpw_server_drained_conns_total", "Connections retired by a drain", s.c.drainedConns.Load())
		gauge("bpw_server_draining", "1 while the server is draining or closed", boolGauge(s.state.Load() != stateRunning))

		for op := byte(1); op < opMax; op++ {
			emit(obs.Metric{
				Name:   "bpw_server_requests_total",
				Help:   "Requests decoded, by operation",
				Type:   obs.Counter,
				Labels: [][2]string{{"op", opName(op)}},
				Value:  float64(s.c.reqs[op].Load()),
			})
		}
		for st := byte(0); st < statusMax; st++ {
			emit(obs.Metric{
				Name:   "bpw_server_responses_total",
				Help:   "Responses sent, by status",
				Type:   obs.Counter,
				Labels: [][2]string{{"status", statusName(st)}},
				Value:  float64(s.c.resps[st].Load()),
			})
		}
		for op := byte(1); op < opMax; op++ {
			if h := s.c.lat[op]; h != nil {
				snap := h.Snapshot()
				emit(obs.Metric{
					Name:   "bpw_server_op_seconds",
					Help:   "Request handle latency, by operation",
					Type:   obs.Histogram,
					Labels: [][2]string{{"op", opName(op)}},
					Hist:   &snap,
				})
			}
		}
		gauge("bpw_server_max_conns", "Configured connection limit", int64(s.cfg.MaxConns))
	})
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
