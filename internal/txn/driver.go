// Package txn drives a buffer pool with concurrent transaction-processing
// backends, reproducing the measurement methodology of the BP-Wrapper
// paper's evaluation (Section IV): N worker goroutines (the PostgreSQL
// back-end processes) execute workload transactions against the pool while
// GOMAXPROCS bounds true parallelism (the CPU-affinity masks of the paper),
// and throughput, response time, hit ratio, and lock contention are
// collected.
package txn

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bpwrapper/internal/buffer"
	"bpwrapper/internal/core"
	"bpwrapper/internal/metrics"
	"bpwrapper/internal/workload"
)

// Config describes one measured run.
type Config struct {
	// Pool is the buffer pool under test. Required.
	Pool *buffer.Pool

	// Workload supplies per-worker access streams. Required.
	Workload workload.Workload

	// Workers is the number of backend goroutines. The paper keeps more
	// active backends than processors so the system is overcommitted;
	// zero means 2×Procs.
	Workers int

	// Procs bounds parallelism via GOMAXPROCS for the duration of the run
	// ("the number of processors"). Zero leaves GOMAXPROCS unchanged.
	Procs int

	// Duration stops the run after this much wall time, if positive.
	Duration time.Duration

	// TxnsPerWorker stops each worker after that many transactions, if
	// positive. At least one of Duration and TxnsPerWorker must be set.
	TxnsPerWorker int64

	// Seed makes the workload streams deterministic.
	Seed int64

	// TouchBytes, when true, reads (and for write accesses, writes) a byte
	// of each pinned page, making the pin hold a realistic content access.
	TouchBytes bool
}

// Result aggregates a run's measurements.
type Result struct {
	Workers int
	Procs   int

	Txns     int64
	Accesses int64
	Elapsed  time.Duration

	// ThroughputTPS is committed transactions per second.
	ThroughputTPS float64

	// Response summarizes per-transaction latency.
	Response metrics.Summary

	// HitRatio is the pool's buffer hit ratio during the run.
	HitRatio float64

	// Wrapper is the BP-Wrapper core's activity snapshot (lock statistics,
	// batching counters).
	Wrapper core.Stats

	// ContentionPerM is the paper's reporting metric: blocking lock
	// acquisitions per million page accesses.
	ContentionPerM float64

	// LockTimePerAccess is Figure 2's metric: (lock wait + hold time)
	// divided by page accesses.
	LockTimePerAccess time.Duration
}

// Run executes one measured run and returns its Result. The pool's
// statistics are reset at the start, so a caller that wants a warm buffer
// should Prewarm first.
func Run(cfg Config) (Result, error) {
	if cfg.Pool == nil || cfg.Workload == nil {
		return Result{}, errors.New("txn: Pool and Workload are required")
	}
	if cfg.Duration <= 0 && cfg.TxnsPerWorker <= 0 {
		return Result{}, errors.New("txn: set Duration or TxnsPerWorker")
	}
	if cfg.Procs > 0 {
		prev := runtime.GOMAXPROCS(cfg.Procs)
		defer runtime.GOMAXPROCS(prev)
	}
	workers := cfg.Workers
	if workers <= 0 {
		procs := cfg.Procs
		if procs <= 0 {
			procs = runtime.GOMAXPROCS(0)
		}
		workers = 2 * procs
	}

	cfg.Pool.ResetStats()

	var (
		stop     atomic.Bool
		txns     atomic.Int64
		wg       sync.WaitGroup
		workErrs = make([]error, workers)
		hists    = make([]*metrics.Histogram, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		hists[w] = metrics.NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workErrs[w] = runWorker(&cfg, w, &stop, &txns, hists[w])
		}(w)
	}
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	wg.Wait()
	elapsed := time.Since(start)

	for w, err := range workErrs {
		if err != nil {
			return Result{}, fmt.Errorf("txn: worker %d: %w", w, err)
		}
	}

	resp := metrics.NewLatencyHistogram()
	for _, h := range hists {
		resp.Merge(h)
	}
	ws := cfg.Pool.WrapperStats()
	res := Result{
		Workers:        workers,
		Procs:          cfg.Procs,
		Txns:           txns.Load(),
		Accesses:       ws.Accesses,
		Elapsed:        elapsed,
		ThroughputTPS:  metrics.Throughput(txns.Load(), elapsed),
		Response:       resp.Summarize(),
		HitRatio:       cfg.Pool.AccessStats().HitRatio(),
		Wrapper:        ws,
		ContentionPerM: metrics.ContentionPerMillion(ws.Lock.Contentions, ws.Accesses),
	}
	if ws.Accesses > 0 {
		res.LockTimePerAccess = (ws.Lock.WaitTime + ws.Lock.HoldTime) / time.Duration(ws.Accesses)
	}
	return res, nil
}

// runWorker is one backend: it executes transactions from its private
// stream until told to stop, recording per-transaction latency.
func runWorker(cfg *Config, w int, stop *atomic.Bool, txns *atomic.Int64, hist *metrics.Histogram) error {
	sess := cfg.Pool.NewSession()
	defer sess.Flush()
	stream := cfg.Workload.NewStream(w, cfg.Seed)
	buf := make([]workload.Access, 0, 256)
	var done int64
	for !stop.Load() {
		if cfg.TxnsPerWorker > 0 && done >= cfg.TxnsPerWorker {
			return nil
		}
		buf = stream.NextTxn(buf[:0])
		begin := time.Now()
		if err := execute(cfg, sess, buf); err != nil {
			return err
		}
		hist.Record(time.Since(begin))
		done++
		txns.Add(1)
	}
	return nil
}

// execute performs one transaction's page accesses: pin, touch, release.
func execute(cfg *Config, sess *buffer.Session, accesses []workload.Access) error {
	for _, a := range accesses {
		var ref *buffer.PageRef
		var err error
		if a.Write {
			ref, err = cfg.Pool.GetWrite(sess, a.Page)
		} else {
			ref, err = cfg.Pool.Get(sess, a.Page)
		}
		if err != nil {
			return err
		}
		if cfg.TouchBytes {
			data := ref.Data()
			b := data[int(a.Page)%len(data)]
			if a.Write {
				data[int(a.Page)%len(data)] = b + 1
				ref.MarkDirty()
			} else {
				sink.Store(uint32(b))
			}
		} else if a.Write {
			ref.MarkDirty()
		}
		ref.Release()
	}
	return nil
}

// sink swallows touched bytes so the compiler keeps the reads.
var sink atomic.Uint32
