package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server exposes a Registry over HTTP:
//
//	/metrics        Prometheus text exposition (with trace exemplars)
//	/debug/vars     expvar-style JSON (standard vars + the registry tree)
//	/debug/events   flight-recorder dump (plain text, newest first; ?n= limits)
//	/debug/traces   retained request traces: slowest-N text by default,
//	                ?format=chrome for trace_event JSON (chrome://tracing,
//	                Perfetto), ?format=json for raw grouped spans; ?n= limits
//	/debug/pprof/*  the standard pprof handlers
//
// It owns its listener so tests can pass ":0" and read the bound address
// back; it never touches the process-global expvar/pprof registration, so
// any number of servers can coexist (and be torn down) in one process.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr (host:port; ":0" picks a free port) and starts
// serving the registry in a background goroutine.
func NewServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &Server{reg: reg, ln: ln}
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:6060".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the served registry, so callers holding only the
// server can keep registering collectors.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// The connection is gone; nothing useful to do.
		return
	}
}

// handleVars mimics the standard expvar handler — the process-global vars
// (cmdline, memstats) in the same JSON shape — and adds the registry tree
// under "bpwrapper". Serving it ourselves avoids expvar.Publish, which
// panics on duplicate names when multiple pools or tests expose metrics
// in one process.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: ", "bpwrapper")
	s.reg.WriteJSON(w) //nolint:errcheck // best-effort over HTTP
	fmt.Fprintf(w, "}\n")
}

// handleEvents dumps the flight recorders newest-first; ?n= bounds how
// many events each recorder prints (default all surviving).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.DumpRecordersTail(w, queryInt(r, "n", 0))
}

// handleTraces renders the retained request traces. The default is the
// slowest-N text view (?n=, default 10); ?format=chrome emits Chrome
// trace_event JSON and ?format=json the raw grouped spans.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.reg.WriteTracesChrome(w) //nolint:errcheck // best-effort over HTTP
	case "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.reg.WriteTracesJSON(w, queryInt(r, "n", 0)) //nolint:errcheck
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.WriteTracesText(w, queryInt(r, "n", 10))
	}
}

// queryInt parses an integer query parameter, falling back to def when
// absent or malformed (debug endpoints shrug at bad input).
func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
