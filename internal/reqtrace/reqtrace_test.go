package reqtrace

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// tick installs a deterministic clock advancing 100ns per read.
func tick() func() int64 {
	var c int64
	return func() int64 { c += 100; return c }
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.NextID() != 0 || tr.Now() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not inert")
	}
	tr.Emit(Span{Trace: 1})
	if (tr.Snapshot() != Stats{}) {
		t.Fatal("nil tracer has stats")
	}
	if New(Config{}) != nil {
		t.Fatal("disabled config should yield nil tracer")
	}
	var a Active
	a.Init(nil)
	a.Begin()
	a.Span(PhasePin, 0, 1, 2, 0, 0)
	a.Slow(PhaseDeviceRead, 0, 1, 2, 0, 0)
	a.End(0, nil)
	if a.Sampled() || a.ID() != 0 {
		t.Fatal("disabled Active not inert")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{Enable: true, SampleEvery: 4, Clock: tick()})
	var a Active
	a.Init(tr)
	sampled := 0
	for i := 0; i < 16; i++ {
		a.Begin()
		if a.Sampled() {
			sampled++
			a.Span(PhaseBucketProbe, 0, a.Now(), 100, 0, 0)
		}
		a.End(uint64(i), nil)
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4", sampled)
	}
	spans := tr.Spans()
	roots, probes := 0, 0
	for _, sp := range spans {
		switch sp.Phase {
		case PhaseRequest:
			roots++
			if sp.Flags&FlagSampled == 0 {
				t.Fatalf("root missing sampled flag: %+v", sp)
			}
		case PhaseBucketProbe:
			probes++
		}
	}
	if roots != 4 || probes != 4 {
		t.Fatalf("got %d roots, %d probes, want 4/4", roots, probes)
	}
	st := tr.Snapshot()
	if st.Started != 16 || st.Sampled != 4 || st.KeptMain != 4 || st.KeptTail != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTailKeepArmsOnSlowPhase(t *testing.T) {
	// SampleEvery huge: nothing head-sampled. A request that stamps a
	// slow phase and crosses the SLO must still be retained (tail ring);
	// one under the SLO must be discarded.
	var c int64
	clock := func() int64 { c += 100; return c }
	tr := New(Config{Enable: true, SampleEvery: 1 << 30, SLO: time.Microsecond, Clock: clock})
	var a Active
	a.Begin() // uninitialised Active is inert
	a.Init(tr)

	// Slow request: device read of 5µs >> 1µs SLO.
	a.Begin()
	if a.Sampled() {
		t.Fatal("unexpected head sample")
	}
	t0 := tr.Now()
	c += 5000 // the device read burns 5µs
	a.Slow(PhaseDeviceRead, 2, t0, tr.Now()-t0, 77, 0)
	a.End(77, nil)

	// Fast armed request: 100ns device read, under the SLO → discarded.
	a.Begin()
	t1 := tr.Now()
	a.Slow(PhaseDeviceRead, 2, t1, 10, 78, 0)
	a.End(78, nil)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (root+device of the slow trace): %+v", len(spans), spans)
	}
	var root, dev *Span
	for i := range spans {
		switch spans[i].Phase {
		case PhaseRequest:
			root = &spans[i]
		case PhaseDeviceRead:
			dev = &spans[i]
		}
	}
	if root == nil || dev == nil || root.Trace != dev.Trace {
		t.Fatalf("tail trace incoherent: %+v", spans)
	}
	if root.Flags&FlagTail == 0 || root.Flags&FlagPartial == 0 {
		t.Fatalf("root flags %b missing tail/partial", root.Flags)
	}
	if dev.Shard != 2 || dev.Arg1 != 77 {
		t.Fatalf("device span %+v", dev)
	}
	st := tr.Snapshot()
	if st.KeptTail != 1 || st.Discarded != 1 || st.KeptMain != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorAlwaysKept(t *testing.T) {
	tr := New(Config{Enable: true, SampleEvery: 1 << 30, SLO: time.Hour, Clock: tick()})
	var a Active
	a.Init(tr)
	a.Begin()
	a.Slow(PhaseDeviceRead, 0, tr.Now(), 100, 5, 0)
	a.End(5, errors.New("boom"))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("error trace not kept: %+v", spans)
	}
	for _, sp := range spans {
		if sp.Phase == PhaseRequest && (sp.Flags&FlagError == 0 || sp.Arg2 != 1) {
			t.Fatalf("root not error-marked: %+v", sp)
		}
	}
}

func TestAdoptedIDSpansRemote(t *testing.T) {
	tr := New(Config{Enable: true, SampleEvery: 1 << 30, Clock: tick()})
	var a Active
	a.Init(tr)
	a.SetNext(0xdeadbeef)
	a.Begin()
	if !a.Sampled() || a.ID() != 0xdeadbeef {
		t.Fatalf("adoption failed: sampled=%v id=%x", a.Sampled(), a.ID())
	}
	a.Span(PhasePin, 1, a.Now(), 50, 0, 0)
	a.End(9, nil)
	// Next request reverts to head sampling.
	a.Begin()
	if a.Sampled() {
		t.Fatal("adoption leaked into the next request")
	}
	a.End(10, nil)
	for _, sp := range tr.Spans() {
		if sp.Trace != 0xdeadbeef || sp.Flags&FlagRemote == 0 {
			t.Fatalf("span not tagged remote: %+v", sp)
		}
	}
}

func TestEmitCrossThread(t *testing.T) {
	tr := New(Config{Enable: true, Clock: tick()})
	tr.Emit(Span{Trace: 42, Phase: PhaseEnqueue, Flags: FlagCross, Start: 1, Dur: 300, Arg1: 7, Arg2: 3})
	tr.Emit(Span{Trace: 0}) // ignored
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Arg1 != 7 || spans[0].Flags&FlagCross == 0 {
		t.Fatalf("emit: %+v", spans)
	}
	if tr.Snapshot().Emitted != 1 {
		t.Fatal("emitted counter")
	}
}

func TestScratchOverflowKeepsRoot(t *testing.T) {
	tr := New(Config{Enable: true, SampleEvery: 1, Clock: tick()})
	var a Active
	a.Init(tr)
	a.Begin()
	for i := 0; i < maxScratch+4; i++ {
		a.Span(PhasePin, 0, a.Now(), 10, uint64(i), 0)
	}
	a.End(1, nil)
	spans := tr.Spans()
	if len(spans) != maxScratch {
		t.Fatalf("got %d spans, want %d", len(spans), maxScratch)
	}
	roots := 0
	for _, sp := range spans {
		if sp.Phase == PhaseRequest {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("root spans = %d", roots)
	}
	if tr.Snapshot().SpanDrops == 0 {
		t.Fatal("overflow not accounted")
	}
}

func TestRingWrapAndConcurrency(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 100; i++ {
		r.put(Span{Trace: uint64(i + 1), Phase: PhasePin, Start: int64(i)})
	}
	if got := len(r.snapshot(nil)); got != 8 {
		t.Fatalf("ring kept %d, want 8", got)
	}
	if r.dropped() != 92 {
		t.Fatalf("dropped %d, want 92", r.dropped())
	}

	// Concurrent writers vs a snapshotting reader: under -race this
	// validates the all-atomic slot protocol, and no returned span may
	// mix fields from different writes (trace encodes the writer, arg1
	// the iteration; phase must stay valid).
	r2 := newRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				r2.put(Span{Trace: uint64(g + 1), Phase: PhaseDeviceRead, Arg1: uint64(i)})
			}
		}(g)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range r2.snapshot(nil) {
				if sp.Phase != PhaseDeviceRead || sp.Trace == 0 || sp.Trace > 4 {
					panic("torn span leaked")
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := PhaseRequest; p < phaseMax; p++ {
		s := p.String()
		if s == "" || seen[s] {
			t.Fatalf("phase %d name %q duplicate or empty", p, s)
		}
		seen[s] = true
	}
	if Phase(200).String() != "phase(200)" {
		t.Fatalf("unknown phase formatting: %q", Phase(200).String())
	}
}
